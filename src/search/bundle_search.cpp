#include "search/bundle_search.hpp"

#include "detect/yolo_head.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "train/trainer.hpp"

namespace sky::search {

nn::ModulePtr build_sketch(const BundleSpec& spec, const BundleEvalConfig& cfg, Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    int in_ch = 3;
    for (int s = 0; s < cfg.sketch_stacks; ++s) {
        const int out_ch = cfg.base_channels * (s + 1);
        seq->add(instantiate(spec, in_ch, out_ch, nn::Act::kReLU, rng));
        seq->emplace<nn::MaxPool2>();
        in_ch = out_ch;
    }
    seq->emplace<nn::PWConv1>(in_ch, 10, /*bias=*/true, rng);  // fixed bbox back-end
    return seq;
}

std::vector<BundleEval> evaluate_bundles(const std::vector<BundleSpec>& candidates,
                                         data::DetectionDataset& dataset,
                                         const hwsim::FpgaModel& fpga,
                                         const BundleEvalConfig& cfg) {
    std::vector<BundleEval> evals;
    evals.reserve(candidates.size());
    const detect::YoloHead head;
    for (const BundleSpec& spec : candidates) {
        Rng rng(cfg.seed);  // same init stream for every candidate: fair sketches
        BundleEval ev;
        ev.spec = spec;

        // Hardware probe: one bundle instance at representative width/shape.
        Rng probe_rng(cfg.seed ^ 0xB0B);
        nn::ModulePtr probe = instantiate(spec, cfg.probe_channels, cfg.probe_channels,
                                          nn::Act::kReLU6, probe_rng);
        const hwsim::FpgaEstimate est =
            fpga.estimate(*probe, {1, cfg.probe_channels, cfg.probe_h, cfg.probe_w},
                          cfg.fpga);
        ev.latency_us = est.latency_ms * 1e3;
        ev.dsp = est.resources.dsp;
        ev.bram18k = est.resources.bram18k;

        // Software probe: fast-train the sketch.
        nn::ModulePtr sketch = build_sketch(spec, cfg, rng);
        train::DetectTrainConfig tc;
        tc.steps = cfg.train_steps;
        tc.batch = cfg.train_batch;
        tc.multi_scale = false;
        tc.val_images = 32;
        Rng train_rng(cfg.seed ^ 0x7141);
        ev.sketch_iou = train_detector(*sketch, head, dataset, tc, train_rng).val_iou;
        evals.push_back(std::move(ev));
    }
    for (std::size_t i : pareto_front(evals)) evals[i].pareto = true;
    return evals;
}

std::vector<std::size_t> pareto_front(const std::vector<BundleEval>& evals) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < evals.size() && !dominated; ++j) {
            if (i == j) continue;
            const bool no_worse = evals[j].sketch_iou >= evals[i].sketch_iou &&
                                  evals[j].latency_us <= evals[i].latency_us;
            const bool better = evals[j].sketch_iou > evals[i].sketch_iou ||
                                evals[j].latency_us < evals[i].latency_us;
            dominated = no_worse && better;
        }
        if (!dominated) front.push_back(i);
    }
    return front;
}

}  // namespace sky::search
