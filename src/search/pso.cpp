#include "search/pso.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "detect/yolo_head.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "train/trainer.hpp"

namespace sky::search {

PsoSearch::PsoSearch(std::vector<BundleSpec> groups, PsoConfig cfg,
                     data::DetectionDataset& data, const hwsim::GpuModel& gpu,
                     const hwsim::FpgaModel& fpga)
    : groups_(std::move(groups)), cfg_(cfg), data_(data), gpu_(gpu), fpga_(fpga),
      rng_(cfg.seed) {}

nn::ModulePtr PsoSearch::build_particle_net(const Particle& p, nn::Act act, Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    int in_ch = 3;
    for (std::size_t i = 0; i < p.channels.size(); ++i) {
        seq->add(instantiate(p.bundle, in_ch, p.channels[i], act, rng));
        in_ch = p.channels[i];
        if (std::find(p.pool_after.begin(), p.pool_after.end(), static_cast<int>(i)) !=
            p.pool_after.end())
            seq->emplace<nn::MaxPool2>();
    }
    seq->emplace<nn::PWConv1>(in_ch, 10, /*bias=*/true, rng);
    return seq;
}

double PsoSearch::fitness(double accuracy, double gpu_ms, double fpga_ms) const {
    // Eq. 1 with alpha < 0: deviations from the per-platform latency
    // requirement are penalised, FPGA more strongly than GPU.
    const double penalty = cfg_.beta_fpga * std::abs(fpga_ms - cfg_.target_fpga_ms) +
                           cfg_.beta_gpu * std::abs(gpu_ms - cfg_.target_gpu_ms);
    return accuracy + cfg_.alpha * penalty * 0.01;
}

void PsoSearch::evaluate(Particle& p, int iteration) {
    Rng rng(cfg_.seed ^ (static_cast<std::uint64_t>(iteration) << 32) ^
            static_cast<std::uint64_t>(p.channels.empty() ? 0 : p.channels[0]));
    nn::ModulePtr net = build_particle_net(p, nn::Act::kReLU, rng);

    // Latency estimation on both targets (§4.2 "Latency estimation").
    const Shape probe{1, 3, data_.config().height, data_.config().width};
    p.gpu_latency_ms = gpu_.estimate(*net, probe).latency_ms;
    p.fpga_latency_ms = fpga_.estimate(*net, probe).latency_ms;

    // Fast training, with the budget growing over iterations (e_itr).
    train::DetectTrainConfig tc;
    tc.steps = cfg_.base_train_steps * (iteration + 1);
    tc.batch = cfg_.train_batch;
    tc.multi_scale = false;
    tc.val_images = cfg_.val_images;
    const detect::YoloHead head;
    Rng train_rng(cfg_.seed ^ 0x99);
    p.accuracy = train_detector(*net, head, data_, tc, train_rng).val_iou;
    p.fitness = fitness(p.accuracy, p.gpu_latency_ms, p.fpga_latency_ms);
}

void PsoSearch::evolve_toward(Particle& p, const Particle& best) {
    // dim1: move each channel count a random fraction toward the group best.
    for (std::size_t i = 0; i < p.channels.size(); ++i) {
        const int diff = best.channels[i] - p.channels[i];
        const double frac = rng_.uniform();
        int c = p.channels[i] + static_cast<int>(std::lround(frac * diff));
        // Small mutation keeps diversity.
        if (rng_.chance(0.3)) c += rng_.uniform_int(-8, 8);
        c = std::clamp((c + 3) / 4 * 4, cfg_.min_channels, cfg_.max_channels);
        p.channels[i] = c;
    }
    // dim2: copy a random subset of pooling positions from the best.
    for (std::size_t i = 0; i < p.pool_after.size(); ++i) {
        if (rng_.chance(0.5)) p.pool_after[i] = best.pool_after[i];
        if (rng_.chance(0.2))
            p.pool_after[i] = rng_.uniform_int(0, cfg_.stack_len - 1);
    }
    std::sort(p.pool_after.begin(), p.pool_after.end());
    p.pool_after.erase(std::unique(p.pool_after.begin(), p.pool_after.end()),
                       p.pool_after.end());
    while (static_cast<int>(p.pool_after.size()) < cfg_.num_pools) {
        const int pos = rng_.uniform_int(0, cfg_.stack_len - 1);
        if (std::find(p.pool_after.begin(), p.pool_after.end(), pos) == p.pool_after.end())
            p.pool_after.push_back(pos);
    }
    std::sort(p.pool_after.begin(), p.pool_after.end());
}

PsoResult PsoSearch::run() {
    // Population generation.
    std::vector<std::vector<Particle>> swarm(groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        for (int j = 0; j < cfg_.particles_per_group; ++j) {
            Particle p;
            p.bundle = groups_[g];
            for (int s = 0; s < cfg_.stack_len; ++s) {
                const int lo = cfg_.min_channels;
                const int hi = cfg_.max_channels;
                p.channels.push_back(
                    std::clamp((rng_.uniform_int(lo, hi) + 3) / 4 * 4, lo, hi));
            }
            while (static_cast<int>(p.pool_after.size()) < cfg_.num_pools) {
                const int pos = rng_.uniform_int(0, cfg_.stack_len - 1);
                if (std::find(p.pool_after.begin(), p.pool_after.end(), pos) ==
                    p.pool_after.end())
                    p.pool_after.push_back(pos);
            }
            std::sort(p.pool_after.begin(), p.pool_after.end());
            swarm[g].push_back(std::move(p));
        }
    }

    PsoResult result;
    result.group_best.resize(groups_.size());
    for (int itr = 0; itr < cfg_.iterations; ++itr) {
        // Fast training + performance estimation for all particles.
        for (auto& group : swarm)
            for (Particle& p : group) evaluate(p, itr);

        // Group bests and global best.
        for (std::size_t g = 0; g < swarm.size(); ++g) {
            const Particle* best = &swarm[g][0];
            for (const Particle& p : swarm[g])
                if (p.fitness > best->fitness) best = &p;
            if (best->fitness > result.group_best[g].fitness)
                result.group_best[g] = *best;
            if (best->fitness > result.global_best.fitness) result.global_best = *best;
        }
        result.best_fitness_history.push_back(result.global_best.fitness);
        obs::resolve(cfg_.log, cfg_.verbose)
            .infof("PSO iter %d: best fitness %.4f (acc %.3f, fpga %.2f ms)", itr,
                   result.global_best.fitness, result.global_best.accuracy,
                   result.global_best.fpga_latency_ms);

        // Velocity calculation and particle update (within each group).
        if (itr + 1 < cfg_.iterations)
            for (std::size_t g = 0; g < swarm.size(); ++g)
                for (Particle& p : swarm[g]) evolve_toward(p, result.group_best[g]);
    }
    return result;
}

}  // namespace sky::search
