// The complete three-stage bottom-up design flow (Fig. 3): Stage 1 Bundle
// selection -> Stage 2 group-based PSO search -> Stage 3 manual feature
// addition (bypass + reordering, ReLU6).  run_flow() is the end-to-end
// driver used by examples/nas_search.cpp and the search bench.
#pragma once

#include "obs/logger.hpp"
#include "search/bundle_search.hpp"
#include "search/pso.hpp"

namespace sky::search {

struct FlowConfig {
    BundleEvalConfig stage1;
    PsoConfig stage2;
    int max_groups = 3;  ///< Pareto bundles carried into Stage 2
    /// Stage 3: training budget when comparing feature additions.
    int stage3_train_steps = 150;
    int stage3_batch = 8;
    bool verbose = false;  ///< with no explicit `log`, selects the stdout sink
    /// Progress sink for all three stages (propagated into the PSO unless
    /// stage2 installs its own); nullptr falls back to `verbose`.
    obs::Logger* log = nullptr;
};

struct FeatureAdditionResult {
    std::string description;
    double val_iou = 0.0;
    double fpga_latency_ms = 0.0;
};

struct FlowResult {
    std::vector<BundleEval> stage1;
    PsoResult stage2;
    std::vector<FeatureAdditionResult> stage3;  ///< plain / +ReLU6 / +bypass variants
};

[[nodiscard]] FlowResult run_flow(data::DetectionDataset& dataset,
                                  const hwsim::GpuModel& gpu, const hwsim::FpgaModel& fpga,
                                  const FlowConfig& cfg);

}  // namespace sky::search
