// Stage 2 of the bottom-up flow (§4.2): hardware-aware DNN search with
// group-based particle swarm optimisation (Algorithm 1).
//
// Each particle is a DNN built from one Bundle type, described by two
// tunable dimensions: dim1 — the output channel count of every Bundle
// replication; dim2 — the positions of the pooling layers between Bundles.
// Particles of the same Bundle type form a group and only evolve within it
// (velocity pulls toward the group best); the global best is tracked across
// groups.  Fitness is Eq. 1:
//     Fit_j = Acc_j + alpha * sum_h beta_h * |Est_h(n_j) - Req_h|
// with alpha < 0 (the latency term is a penalty) and beta_FPGA > beta_GPU
// because the FPGA budget binds harder (§4.2).
#pragma once

#include "data/synth_detection.hpp"
#include "hwsim/fpga_model.hpp"
#include "hwsim/gpu_model.hpp"
#include "obs/logger.hpp"
#include "skynet/bundle.hpp"

namespace sky::search {

struct Particle {
    BundleSpec bundle;
    std::vector<int> channels;    ///< dim1: out channels per Bundle replication
    std::vector<int> pool_after;  ///< dim2: bundle indices followed by a 2x2 pool
    double accuracy = 0.0;
    double gpu_latency_ms = 0.0;
    double fpga_latency_ms = 0.0;
    double fitness = -1e30;
};

struct PsoConfig {
    int particles_per_group = 3;
    int iterations = 3;
    int stack_len = 4;       ///< Bundles per candidate DNN
    int num_pools = 2;       ///< pooling layers to place
    int min_channels = 8;
    int max_channels = 64;
    // Eq. 1 parameters.
    float alpha = -1.0f;
    float beta_fpga = 1.0f;
    float beta_gpu = 0.25f;
    double target_fpga_ms = 3.0;  ///< Req_h
    double target_gpu_ms = 1.0;
    // Training budget; e_itr = base * (itr + 1), growing as the paper does.
    int base_train_steps = 40;
    int train_batch = 8;
    int val_images = 32;
    std::uint64_t seed = 1234;
    bool verbose = false;  ///< with no explicit `log`, selects the stdout sink
    obs::Logger* log = nullptr;
};

struct PsoResult {
    Particle global_best;
    std::vector<Particle> group_best;          ///< one per group
    std::vector<double> best_fitness_history;  ///< per iteration
};

class PsoSearch {
public:
    PsoSearch(std::vector<BundleSpec> groups, PsoConfig cfg, data::DetectionDataset& data,
              const hwsim::GpuModel& gpu, const hwsim::FpgaModel& fpga);

    [[nodiscard]] PsoResult run();

    /// Build the trainable DNN a particle encodes (with the fixed YOLO
    /// back-end appended).
    [[nodiscard]] static nn::ModulePtr build_particle_net(const Particle& p, nn::Act act,
                                                          Rng& rng);

    /// Eq. 1.
    [[nodiscard]] double fitness(double accuracy, double gpu_ms, double fpga_ms) const;

private:
    void evaluate(Particle& p, int iteration);
    void evolve_toward(Particle& p, const Particle& best);

    std::vector<BundleSpec> groups_;
    PsoConfig cfg_;
    data::DetectionDataset& data_;
    const hwsim::GpuModel& gpu_;
    const hwsim::FpgaModel& fpga_;
    Rng rng_;
};

}  // namespace sky::search
