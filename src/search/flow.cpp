#include "search/flow.hpp"

#include "core/thread_pool.hpp"
#include "obs/trace.hpp"
#include "skynet/skynet_model.hpp"
#include "train/trainer.hpp"

namespace sky::search {

FlowResult run_flow(data::DetectionDataset& dataset, const hwsim::GpuModel& gpu,
                    const hwsim::FpgaModel& fpga, const FlowConfig& cfg) {
    obs::Logger& log = obs::resolve(cfg.log, cfg.verbose);
    obs::Span flow_span("flow", "search");
    log.infof("kernel engine: %d thread(s)", core::ThreadPool::global().size());
    FlowResult result;

    // ---- Stage 1: Bundle selection and evaluation.
    std::vector<BundleSpec> selected;
    {
        obs::Span span("flow/stage1-bundle-selection", "search");
        result.stage1 = evaluate_bundles(enumerate_bundles(), dataset, fpga, cfg.stage1);
        for (const BundleEval& ev : result.stage1)
            if (ev.pareto && static_cast<int>(selected.size()) < cfg.max_groups)
                selected.push_back(ev.spec);
        if (selected.empty()) selected.push_back(skynet_bundle());
    }
    log.infof("Stage 1: %zu bundles evaluated, %zu selected", result.stage1.size(),
              selected.size());
    for (const auto& ev : result.stage1)
        log.infof("  %-12s iou %.3f  lat %.1f us  dsp %d  bram %d %s",
                  ev.spec.name.c_str(), ev.sketch_iou, ev.latency_us, ev.dsp, ev.bram18k,
                  ev.pareto ? "[pareto]" : "");

    // ---- Stage 2: group-based PSO over the selected bundles.
    {
        obs::Span span("flow/stage2-pso", "search");
        PsoConfig stage2 = cfg.stage2;
        if (!stage2.log) stage2.log = cfg.log;
        stage2.verbose = stage2.verbose || cfg.verbose;
        PsoSearch pso(selected, stage2, dataset, gpu, fpga);
        result.stage2 = pso.run();
    }

    // ---- Stage 3: feature addition on top of the discovered family.
    // The paper adds the bypass+reordering and swaps ReLU for ReLU6; we
    // compare exactly those steps on the SkyNet topology at search width.
    obs::Span stage3_span("flow/stage3-feature-addition", "search");
    struct Variant {
        const char* desc;
        SkyNetVariant v;
        nn::Act act;
    };
    const Variant variants[3] = {
        {"chain (no bypass), ReLU", SkyNetVariant::kA, nn::Act::kReLU},
        {"chain (no bypass), ReLU6", SkyNetVariant::kA, nn::Act::kReLU6},
        {"+bypass+reorder, ReLU6", SkyNetVariant::kC, nn::Act::kReLU6},
    };
    const detect::YoloHead head;
    for (const Variant& v : variants) {
        obs::Span span(v.desc, "search");
        Rng rng(cfg.stage2.seed ^ 0x57A6E3);
        SkyNetConfig sc;
        sc.variant = v.v;
        sc.act = v.act;
        sc.width_mult = 0.25f;
        SkyNetModel model = build_skynet(sc, rng);
        train::DetectTrainConfig tc;
        tc.steps = cfg.stage3_train_steps;
        tc.batch = cfg.stage3_batch;
        tc.multi_scale = false;
        tc.val_images = 48;
        Rng train_rng(cfg.stage2.seed ^ 0x3A6E);
        FeatureAdditionResult fr;
        fr.description = v.desc;
        fr.val_iou = train_detector(*model.net, head, dataset, tc, train_rng).val_iou;
        fr.fpga_latency_ms =
            fpga.estimate(*model.net,
                          {1, 3, dataset.config().height, dataset.config().width})
                .latency_ms;
        result.stage3.push_back(std::move(fr));
        log.infof("Stage 3: %-28s iou %.3f  fpga %.2f ms",
                  result.stage3.back().description.c_str(), result.stage3.back().val_iou,
                  result.stage3.back().fpga_latency_ms);
    }
    (void)gpu;
    return result;
}

}  // namespace sky::search
