// Stage 1 of the bottom-up flow (§4.1): Bundle selection and evaluation.
//
// Every candidate Bundle from the component pool is scored two ways:
//  - hardware: latency and resources of a representative instantiation on
//    the target FPGA (the paper evaluates against the FPGA because its
//    budget is the more restrictive of the two targets);
//  - software: the validation accuracy of a "DNN sketch" — a network with a
//    fixed front-end (input) and back-end (bounding-box head) and the
//    candidate Bundle stacked in the middle — after fast training.
// Bundles on the (accuracy, latency) Pareto frontier proceed to Stage 2.
#pragma once

#include "data/synth_detection.hpp"
#include "hwsim/fpga_model.hpp"
#include "skynet/bundle.hpp"

namespace sky::search {

struct BundleEvalConfig {
    int sketch_stacks = 3;      ///< Bundle replications in the sketch
    int base_channels = 16;     ///< sketch channel ladder: base, 2x, 3x
    int train_steps = 120;      ///< "quick training" budget (paper: 20 epochs)
    int train_batch = 8;
    int probe_h = 40;           ///< shape used for hardware evaluation
    int probe_w = 80;
    int probe_channels = 48;
    hwsim::FpgaBuildConfig fpga;
    std::uint64_t seed = 99;
};

struct BundleEval {
    BundleSpec spec;
    double sketch_iou = 0.0;   ///< accuracy potential
    double latency_us = 0.0;   ///< FPGA latency of the probe instantiation
    int dsp = 0;
    int bram18k = 0;
    bool pareto = false;
};

/// Build the DNN sketch for a bundle: [bundle, pool] x stacks + YOLO head.
[[nodiscard]] nn::ModulePtr build_sketch(const BundleSpec& spec,
                                         const BundleEvalConfig& cfg, Rng& rng);

/// Evaluate all candidate bundles on `dataset`; marks the Pareto-optimal
/// ones (maximise sketch_iou, minimise latency_us).
[[nodiscard]] std::vector<BundleEval> evaluate_bundles(
    const std::vector<BundleSpec>& candidates, data::DetectionDataset& dataset,
    const hwsim::FpgaModel& fpga, const BundleEvalConfig& cfg);

/// Indices of Pareto-optimal entries (max iou, min latency).
[[nodiscard]] std::vector<std::size_t> pareto_front(const std::vector<BundleEval>& evals);

}  // namespace sky::search
