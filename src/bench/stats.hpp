// Outlier-robust repeat statistics for the measurement harness.
//
// A benchmark that reports one number is reporting noise: cold caches, a
// background daemon, a CPU frequency ramp.  The harness therefore times every
// measured region N times and summarises the samples with order statistics —
// median as the representative value, MAD (median absolute deviation from the
// median) as the noise scale — which a single outlier run cannot drag the way
// it drags a mean.  benchdiff later scales its regression threshold by the
// MAD, so a noisy metric gets a proportionally wider gate than a quiet one.
#pragma once

#include <vector>

namespace sky::bench {

/// Median of `v` (average of the two middle elements for even sizes);
/// 0 for an empty vector.  Takes a copy: callers keep their sample order.
[[nodiscard]] double median(std::vector<double> v);

/// Summary of N repeated measurements of the same quantity.
struct RepeatStats {
    std::vector<double> samples;  ///< in measurement order
    double median = 0.0;          ///< representative value
    double mad = 0.0;   ///< median absolute deviation from the median
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;

    [[nodiscard]] int repeats() const { return static_cast<int>(samples.size()); }

    /// Build the summary from raw samples (empty input -> all zeros).
    [[nodiscard]] static RepeatStats from_samples(std::vector<double> samples);

    /// A single already-summarised value (repeats = 1, mad = 0).
    [[nodiscard]] static RepeatStats from_value(double value);
};

}  // namespace sky::bench
