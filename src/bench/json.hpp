// Minimal JSON reader/writer helpers for the bench subsystem.
//
// The harness *emits* BENCH documents and benchdiff *reads* them back, so the
// repo needs one (small) JSON implementation it fully controls: a
// recursive-descent parser into an ordered DOM plus the two formatting
// helpers every exporter in this codebase otherwise re-implements (number
// formatting that round-trips doubles and emits `null` for non-finite
// values, and string escaping).  It parses the full JSON grammar — objects,
// arrays, strings with escapes, numbers, literals — but is tuned for
// machine-written documents: no comments, no trailing commas, UTF-8 passed
// through verbatim.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace sky::bench::json {

/// One parsed JSON value.  Object members keep document order so diffs and
/// error messages read in the same order as the file.
class Value {
public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
    [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
    [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
    [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

    /// Object member lookup; nullptr when absent or not an object.
    [[nodiscard]] const Value* get(const std::string& key) const;
    /// Member `key` as a number, or `fallback` when absent / wrong type.
    [[nodiscard]] double num_or(const std::string& key, double fallback) const;
    /// Member `key` as a string, or `fallback` when absent / wrong type.
    [[nodiscard]] std::string str_or(const std::string& key,
                                     const std::string& fallback) const;
};

/// Parse `text` into `out`.  On failure returns false and sets `err` to a
/// "line:col: message" description of the first error.
bool parse(const std::string& text, Value& out, std::string& err);

/// Parse the file at `path`; false on I/O or parse error (described in `err`).
bool parse_file(const std::string& path, Value& out, std::string& err);

/// JSON number literal that round-trips a double; non-finite values become
/// `null` so emitted documents always parse.
[[nodiscard]] std::string num(double v);

/// `s` with JSON string escapes applied (quotes, backslashes, control chars).
[[nodiscard]] std::string escape(const std::string& s);

}  // namespace sky::bench::json
