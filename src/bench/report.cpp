#include "bench/report.hpp"

#include <fstream>
#include <sstream>

#include "bench/json.hpp"

namespace sky::bench {

const char* to_string(Direction d) {
    switch (d) {
        case Direction::kLowerIsBetter: return "lower_is_better";
        case Direction::kHigherIsBetter: return "higher_is_better";
        case Direction::kInfo: break;
    }
    return "info";
}

Direction direction_from_string(const std::string& s) {
    if (s == "lower_is_better") return Direction::kLowerIsBetter;
    if (s == "higher_is_better") return Direction::kHigherIsBetter;
    return Direction::kInfo;
}

void Report::record(const std::string& name, RepeatStats stats, std::string unit,
                    Direction direction) {
    metrics_[name] = MetricRecord{std::move(unit), direction, std::move(stats)};
}

void Report::record(const std::string& name, double value, std::string unit,
                    Direction direction) {
    record(name, RepeatStats::from_value(value), std::move(unit), direction);
}

void Report::merge_registry(const obs::Registry& registry, const std::string& prefix) {
    const obs::RegistrySnapshot snap = registry.snapshot();
    for (const auto& [name, v] : snap.counters) counters_[prefix + name] = v;
    for (const auto& [name, v] : snap.gauges) gauges_[prefix + name] = v;
    for (const auto& [name, h] : snap.histograms) histograms_[prefix + name] = h;
}

const MetricRecord* Report::find(const std::string& name) const {
    const auto it = metrics_.find(name);
    return it == metrics_.end() ? nullptr : &it->second;
}

std::string Report::to_json(const Fingerprint& fp) const {
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"" << kSchema << "\",\n";
    os << "  \"bench\": \"" << json::escape(name_) << "\",\n";
    os << "  \"fingerprint\": " << bench::to_json(fp, 2) << ",\n";

    os << "  \"metrics\": {";
    bool first = true;
    for (const auto& [name, m] : metrics_) {
        os << (first ? "" : ",") << "\n    \"" << json::escape(name) << "\": {";
        os << "\"value\": " << json::num(m.stats.median);
        os << ", \"unit\": \"" << json::escape(m.unit) << "\"";
        os << ", \"direction\": \"" << to_string(m.direction) << "\"";
        os << ", \"repeats\": " << m.stats.repeats();
        os << ", \"median\": " << json::num(m.stats.median);
        os << ", \"mad\": " << json::num(m.stats.mad);
        os << ", \"min\": " << json::num(m.stats.min);
        os << ", \"max\": " << json::num(m.stats.max);
        os << ", \"mean\": " << json::num(m.stats.mean);
        os << ", \"samples\": [";
        for (std::size_t i = 0; i < m.stats.samples.size(); ++i)
            os << (i ? ", " : "") << json::num(m.stats.samples[i]);
        os << "]}";
        first = false;
    }
    os << (metrics_.empty() ? "" : "\n  ") << "},\n";

    os << "  \"registry\": {\n    \"counters\": {";
    first = true;
    for (const auto& [name, v] : counters_) {
        os << (first ? "" : ",") << "\n      \"" << json::escape(name)
           << "\": " << json::num(v);
        first = false;
    }
    os << (counters_.empty() ? "" : "\n    ") << "},\n    \"gauges\": {";
    first = true;
    for (const auto& [name, v] : gauges_) {
        os << (first ? "" : ",") << "\n      \"" << json::escape(name)
           << "\": " << json::num(v);
        first = false;
    }
    os << (gauges_.empty() ? "" : "\n    ") << "},\n    \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        os << (first ? "" : ",") << "\n      \"" << json::escape(name) << "\": {";
        os << "\"count\": " << h.count << ", \"sum\": " << json::num(h.sum);
        os << ", \"min\": " << json::num(h.min) << ", \"max\": " << json::num(h.max);
        os << ", \"p50\": " << json::num(h.percentile(0.50));
        os << ", \"p95\": " << json::num(h.percentile(0.95));
        os << ", \"p99\": " << json::num(h.percentile(0.99)) << "}";
        first = false;
    }
    os << (histograms_.empty() ? "" : "\n    ") << "}\n  }\n}\n";
    return os.str();
}

bool Report::save_json(const std::string& path, const Fingerprint& fp) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_json(fp);
    return static_cast<bool>(out);
}

void Report::clear() {
    name_.clear();
    metrics_.clear();
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

}  // namespace sky::bench
