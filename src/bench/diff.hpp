// Noise-aware comparison of two BENCH documents (the benchdiff core).
//
// For every metric present in both documents the gate computes a tolerance
//
//   tol = max(rel_tol * |baseline.median|,
//             mad_k * 1.4826 * max(baseline.mad, candidate.mad),
//             min_abs)
//
// (1.4826 scales a MAD to a Gaussian sigma) and flags a regression only when
// the candidate median moved beyond tol in the metric's *worse* direction —
// up for lower_is_better, down for higher_is_better.  Improvements never
// fail, whatever their size; "info" metrics are reported but never gate.
// A gated metric that disappears from the candidate is a failure by default
// (a deleted headline number must be a conscious decision), downgradable
// with allow_missing.  Fingerprint fields that differ between the two
// documents are surfaced as notes, so a cross-machine or cross-flags
// comparison is visibly one.
#pragma once

#include <string>
#include <vector>

#include "bench/json.hpp"
#include "bench/report.hpp"

namespace sky::bench {

struct DiffOptions {
    double rel_tol = 0.10;  ///< relative tolerance on the baseline median
    double mad_k = 4.0;     ///< noise gate width in MAD-derived sigmas
    double min_abs = 1e-9;  ///< absolute floor (exact-zero baselines)
    bool allow_missing = false;  ///< gated baseline metric absent from candidate
    /// Fail (exit 1) on schema drift between the documents: a wrong `schema`
    /// field or a metric present only in the candidate.  Off by default — the
    /// CI perf lane compares against a checked-in baseline that legitimately
    /// lags new metrics, so drift is surfaced as a NOTICE instead.
    bool strict_schema = false;
};

enum class DeltaKind {
    kUnchanged,     ///< within tolerance
    kImproved,      ///< beyond tolerance in the better direction (never fails)
    kRegressed,     ///< beyond tolerance in the worse direction
    kMissing,       ///< in baseline only
    kNew,           ///< in candidate only (informational)
    kIncomparable,  ///< unit mismatch between the documents
};

struct MetricDelta {
    std::string name;
    std::string unit;
    Direction direction = Direction::kInfo;
    double base_median = 0.0;
    double cand_median = 0.0;
    double base_mad = 0.0;
    double cand_mad = 0.0;
    double delta = 0.0;      ///< cand - base
    double tolerance = 0.0;  ///< the gate width applied
    DeltaKind kind = DeltaKind::kUnchanged;
};

struct DiffReport {
    std::vector<MetricDelta> deltas;  ///< baseline order, then candidate-only
    std::vector<std::string> notes;   ///< fingerprint drift, schema remarks
    int compared = 0;
    int regressions = 0;
    int improvements = 0;
    bool fail = false;  ///< regression (or disallowed missing metric) found
};

/// Compare two parsed BENCH documents.  Schema mismatches are recorded as
/// notes and the comparison proceeds on a best-effort basis.
[[nodiscard]] DiffReport diff_documents(const json::Value& baseline,
                                        const json::Value& candidate,
                                        const DiffOptions& opts = {});

/// Human-readable table + summary line.
[[nodiscard]] std::string render_text(const DiffReport& report);
/// Machine-readable JSON ({"fail": ..., "deltas": [...], "notes": [...]}).
[[nodiscard]] std::string render_json(const DiffReport& report);
/// One `path:1: [benchdiff] message` line per finding, for the GitHub
/// problem matcher (.github/problem-matchers/benchdiff.json).
[[nodiscard]] std::string render_github(const DiffReport& report,
                                        const std::string& baseline_path);

}  // namespace sky::bench
