#include "bench/fingerprint.hpp"

#include <cstdlib>
#include <sstream>
#include <thread>

#include "bench/json.hpp"
#include "core/thread_pool.hpp"

// Build metadata injected by src/CMakeLists.txt on this translation unit
// only, so a new commit rebuilds one file, not the library.
#ifndef SKYNET_GIT_SHA_DEFAULT
#define SKYNET_GIT_SHA_DEFAULT "unknown"
#endif
#ifndef SKYNET_CXX_FLAGS
#define SKYNET_CXX_FLAGS ""
#endif
#ifndef SKYNET_BUILD_TYPE
#define SKYNET_BUILD_TYPE ""
#endif

namespace sky::bench {
namespace {

std::string compiler_id() {
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

}  // namespace

Fingerprint local_fingerprint() {
    Fingerprint fp;
    // The env var wins over the configure-time default: CI exports the exact
    // sha it checked out, while a local incremental build may be several
    // commits past the last cmake run.
    const char* sha = std::getenv("SKYNET_GIT_SHA");
    fp.git_sha = (sha != nullptr && *sha != '\0') ? sha : SKYNET_GIT_SHA_DEFAULT;
    fp.compiler = compiler_id();
    fp.flags = SKYNET_CXX_FLAGS;
    fp.build_type = SKYNET_BUILD_TYPE;
    fp.threads = core::ThreadPool::env_threads();
    if (const char* scale = std::getenv("SKYNET_BENCH_SCALE")) {
        const double s = std::atof(scale);
        if (s > 0.0) fp.bench_scale = s;
    }
    fp.cpu_cores = std::thread::hardware_concurrency();
    return fp;
}

std::string to_json(const Fingerprint& fp, int indent) {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    std::ostringstream os;
    os << "{\n";
    os << pad << "  \"git_sha\": \"" << json::escape(fp.git_sha) << "\",\n";
    os << pad << "  \"compiler\": \"" << json::escape(fp.compiler) << "\",\n";
    os << pad << "  \"flags\": \"" << json::escape(fp.flags) << "\",\n";
    os << pad << "  \"build_type\": \"" << json::escape(fp.build_type) << "\",\n";
    os << pad << "  \"skynet_threads\": " << fp.threads << ",\n";
    os << pad << "  \"bench_scale\": " << json::num(fp.bench_scale) << ",\n";
    os << pad << "  \"cpu_cores\": " << fp.cpu_cores << "\n";
    os << pad << "}";
    return os.str();
}

}  // namespace sky::bench
