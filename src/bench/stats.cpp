#include "bench/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sky::bench {

double median(std::vector<double> v) {
    if (v.empty()) return 0.0;
    const std::size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
    double m = v[mid];
    if (v.size() % 2 == 0) {
        // Even size: average with the largest element of the lower half.
        const double lower =
            *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
        m = 0.5 * (m + lower);
    }
    return m;
}

RepeatStats RepeatStats::from_samples(std::vector<double> samples) {
    RepeatStats s;
    if (samples.empty()) return s;
    s.median = bench::median(samples);
    std::vector<double> dev;
    dev.reserve(samples.size());
    for (const double x : samples) dev.push_back(std::fabs(x - s.median));
    s.mad = bench::median(std::move(dev));
    const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
    s.min = *lo;
    s.max = *hi;
    s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
             static_cast<double>(samples.size());
    s.samples = std::move(samples);
    return s;
}

RepeatStats RepeatStats::from_value(double value) {
    return from_samples({value});
}

}  // namespace sky::bench
