// The BENCH document: a versioned, self-describing benchmark report.
//
// Schema "sky.bench.v1":
//
//   {
//     "schema": "sky.bench.v1",
//     "bench": "bench_kernels",
//     "fingerprint": { git_sha, compiler, flags, build_type,
//                      skynet_threads, bench_scale, cpu_cores },
//     "metrics": {
//       "<name>": { "value": <median>, "unit": "ms",
//                   "direction": "lower_is_better",
//                   "repeats": 5, "median": m, "mad": d,
//                   "min": a, "max": b, "mean": u, "samples": [...] }
//     },
//     "registry": { "counters": {...}, "gauges": {...},
//                   "histograms": { "<name>": { count, sum, min, max,
//                                               p50, p95, p99 } } }
//   }
//
// Every metric carries its unit and its improvement direction, so a reader
// (benchdiff, a dashboard) needs no out-of-band table to know that
// `fwd_ms` going up is bad and `gflops` going up is good.  The "registry"
// section holds folded obs::Registry content — serve-engine latency
// histograms, per-layer GraphProfiler gauges — as supporting detail:
// benchdiff reports on "metrics" only.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "bench/fingerprint.hpp"
#include "bench/stats.hpp"
#include "obs/registry.hpp"

namespace sky::bench {

/// The schema identifier emitted in (and required of) BENCH documents.
inline constexpr const char* kSchema = "sky.bench.v1";

/// Which way "better" points for a metric.  kInfo metrics are recorded and
/// diffed for display but never gate a regression check.
enum class Direction { kInfo, kLowerIsBetter, kHigherIsBetter };

[[nodiscard]] const char* to_string(Direction d);
/// Parses the schema's direction strings; unknown strings map to kInfo.
[[nodiscard]] Direction direction_from_string(const std::string& s);

struct MetricRecord {
    std::string unit;  ///< "ms", "fps", "GFLOP/s", "x", "iou", ...
    Direction direction = Direction::kInfo;
    RepeatStats stats;
};

/// Accumulates one bench binary's results and serialises the document.
/// Single-threaded by design: benches record from main() only.
class Report {
public:
    void set_name(std::string name) { name_ = std::move(name); }
    [[nodiscard]] const std::string& name() const { return name_; }

    /// Record a metric with full repeat statistics; re-recording a name
    /// replaces it.
    void record(const std::string& name, RepeatStats stats, std::string unit,
                Direction direction);
    /// Record a single-sample metric (repeats = 1, mad = 0).
    void record(const std::string& name, double value, std::string unit,
                Direction direction);

    /// Fold a metrics registry snapshot into the document's "registry"
    /// section, prefixing every folded name with `prefix`.
    void merge_registry(const obs::Registry& registry, const std::string& prefix = "");

    [[nodiscard]] const MetricRecord* find(const std::string& name) const;
    [[nodiscard]] std::size_t metric_count() const { return metrics_.size(); }

    [[nodiscard]] std::string to_json(const Fingerprint& fp) const;
    bool save_json(const std::string& path, const Fingerprint& fp) const;

    void clear();

private:
    std::string name_;
    std::map<std::string, MetricRecord> metrics_;
    // Folded registry content, keyed by (possibly prefixed) metric name.
    std::map<std::string, double> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, obs::HistogramSnapshot> histograms_;
};

}  // namespace sky::bench
