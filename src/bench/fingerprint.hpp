// Environment fingerprint for BENCH documents.
//
// A throughput number is meaningless without the configuration that produced
// it: the same binary at SKYNET_THREADS=1 vs =8, or -O0 vs -O2, differs by an
// order of magnitude.  Every BENCH document therefore embeds a fingerprint
// block — git revision, compiler and flags, build type, resolved thread
// count, bench scale, and host core count — and benchdiff prints the fields
// that differ between baseline and candidate so a "regression" caused by
// comparing across configurations is visible as exactly that.
#pragma once

#include <string>

namespace sky::bench {

struct Fingerprint {
    std::string git_sha;     ///< SKYNET_GIT_SHA env, else the configure-time sha
    std::string compiler;    ///< compiler id + version string
    std::string flags;       ///< CMAKE_CXX_FLAGS + per-config flags at build time
    std::string build_type;  ///< CMAKE_BUILD_TYPE
    int threads = 0;         ///< resolved SKYNET_THREADS (pool size benches run at)
    double bench_scale = 1.0;  ///< SKYNET_BENCH_SCALE (step-budget multiplier)
    unsigned cpu_cores = 0;    ///< std::thread::hardware_concurrency()
};

/// Fingerprint of the current process/build.
[[nodiscard]] Fingerprint local_fingerprint();

/// The fingerprint as one JSON object (no trailing newline), indented with
/// `indent` spaces per line for embedding in a larger document.
[[nodiscard]] std::string to_json(const Fingerprint& fp, int indent);

}  // namespace sky::bench
