// The sky::bench measurement harness.
//
// Every bench/bench_*.cpp binary is a thin script over this library:
//
//   int main(int argc, char** argv) {
//       bench::RepeatStats t = bench::run("kernels.conv3x3.fwd_ms", "ms",
//                                         bench::Direction::kLowerIsBetter,
//                                         [&] { conv.forward(x); });
//       bench::record("kernels.conv3x3.gflops", flops / (t.median * 1e6),
//                     "GFLOP/s", bench::Direction::kHigherIsBetter);
//       return bench::finish(argc, argv);       // honours --json <path>
//   }
//
// run() performs a calibrated warmup (repeats until two consecutive timings
// agree, so the first measured sample is not a cold-cache outlier), then N
// timed repeats summarised as median/MAD/min — the repeat statistics
// benchdiff's noise-aware regression gate is built on.  finish() writes the
// versioned BENCH document (schema, environment fingerprint, per-metric
// units and repeat stats; see bench/report.hpp) when the binary is invoked
// with `--json <path>`.
#pragma once

#include <functional>
#include <string>

#include "bench/report.hpp"
#include "bench/stats.hpp"

namespace sky::bench {

/// Scaled step budget: `base` times the SKYNET_BENCH_SCALE env var (e.g. 0.1
/// for a smoke run, 4 for a long run), rounded to nearest and clamped to >= 1
/// so SKYNET_BENCH_SCALE=1 is exactly the default budget.
[[nodiscard]] int steps(int base);

/// Print a horizontal rule of `n` copies of `c`.
void rule(char c = '-', int n = 72);

/// The process-wide report finish() serialises.  Benches normally go through
/// run()/record(); tests reach in to inspect or clear it.
[[nodiscard]] Report& report();

/// Record one result.  `unit` names the measurement unit ("ms", "fps",
/// "iou", ...); `direction` tells benchdiff which way regressions point.
void record(const std::string& name, double value, const std::string& unit,
            Direction direction = Direction::kInfo);
/// Record a fully repeat-measured result.
void record(const std::string& name, const RepeatStats& stats, const std::string& unit,
            Direction direction = Direction::kInfo);

struct RunOptions {
    int repeats = 5;      ///< timed samples (clamped to >= 1)
    int min_warmup = 1;   ///< warmup runs always performed
    int max_warmup = 4;   ///< warmup cap when timings refuse to settle
    double warmup_tolerance = 0.25;  ///< consecutive-run agreement to stop early
};

/// Calibrated warmup + `opts.repeats` timed runs of `fn`; returns the wall
/// time statistics in milliseconds without recording anything.
[[nodiscard]] RepeatStats run_timed(const std::function<void()>& fn,
                                    const RunOptions& opts = {});

/// run_timed + record: times `fn` and records the stats under `name`.
RepeatStats run(const std::string& name, const std::string& unit, Direction direction,
                const std::function<void()>& fn, const RunOptions& opts = {});

/// Fold an obs::Registry (serve-engine metrics, GraphProfiler exports) into
/// the report's "registry" section under `prefix`.
void merge_registry(const obs::Registry& registry, const std::string& prefix = "");

/// Call as the bench's return statement.  Handles `--json <path>` by writing
/// the BENCH document (bench name taken from argv[0]); a `--json` with no
/// path argument is a usage error (exit 2).  Unknown arguments are left for
/// the bench itself.  Returns the process exit code.
int finish(int argc, char** argv);

}  // namespace sky::bench
