#include "bench/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sky::bench {
namespace {

// MAD -> sigma for a Gaussian; the usual consistency constant.
constexpr double kMadToSigma = 1.4826;

struct ParsedMetric {
    std::string name;
    std::string unit;
    Direction direction = Direction::kInfo;
    double median = 0.0;
    double mad = 0.0;
};

std::vector<ParsedMetric> parse_metrics(const json::Value& doc) {
    std::vector<ParsedMetric> out;
    const json::Value* metrics = doc.get("metrics");
    if (metrics == nullptr || !metrics->is_object()) return out;
    for (const auto& [name, m] : metrics->object) {
        if (!m.is_object()) continue;
        ParsedMetric pm;
        pm.name = name;
        pm.unit = m.str_or("unit", "");
        pm.direction = direction_from_string(m.str_or("direction", "info"));
        pm.median = m.num_or("median", m.num_or("value", 0.0));
        pm.mad = m.num_or("mad", 0.0);
        out.push_back(std::move(pm));
    }
    return out;
}

const ParsedMetric* find(const std::vector<ParsedMetric>& metrics,
                         const std::string& name) {
    for (const ParsedMetric& m : metrics)
        if (m.name == name) return &m;
    return nullptr;
}

void note_fingerprint_drift(const json::Value& baseline, const json::Value& candidate,
                            std::vector<std::string>& notes) {
    const json::Value* bf = baseline.get("fingerprint");
    const json::Value* cf = candidate.get("fingerprint");
    if (bf == nullptr || cf == nullptr || !bf->is_object() || !cf->is_object()) return;
    for (const char* key : {"compiler", "flags", "build_type"}) {
        const std::string b = bf->str_or(key, ""), c = cf->str_or(key, "");
        if (b != c)
            notes.push_back(std::string("fingerprint ") + key + " differs: baseline '" +
                            b + "' vs candidate '" + c + "'");
    }
    for (const char* key : {"skynet_threads", "cpu_cores", "bench_scale"}) {
        const double b = bf->num_or(key, 0.0), c = cf->num_or(key, 0.0);
        if (b != c)
            notes.push_back(std::string("fingerprint ") + key + " differs: baseline " +
                            json::num(b) + " vs candidate " + json::num(c));
    }
}

std::string format_delta(const MetricDelta& d) {
    char buf[256];
    const double pct =
        d.base_median != 0.0 ? 100.0 * d.delta / std::fabs(d.base_median) : 0.0;
    std::snprintf(buf, sizeof buf, "%s: %.6g -> %.6g %s (%+.1f%%, tol %.6g)",
                  d.name.c_str(), d.base_median, d.cand_median, d.unit.c_str(), pct,
                  d.tolerance);
    return buf;
}

}  // namespace

DiffReport diff_documents(const json::Value& baseline, const json::Value& candidate,
                          const DiffOptions& opts) {
    DiffReport report;

    const std::string bs = baseline.str_or("schema", "");
    const std::string cs = candidate.str_or("schema", "");
    if (bs != kSchema) {
        report.notes.push_back("baseline schema is '" + bs + "', expected '" + kSchema +
                               "'");
        if (opts.strict_schema) report.fail = true;
    }
    if (cs != kSchema) {
        report.notes.push_back("candidate schema is '" + cs + "', expected '" + kSchema +
                               "'");
        if (opts.strict_schema) report.fail = true;
    }
    note_fingerprint_drift(baseline, candidate, report.notes);

    const std::vector<ParsedMetric> base = parse_metrics(baseline);
    const std::vector<ParsedMetric> cand = parse_metrics(candidate);

    for (const ParsedMetric& b : base) {
        MetricDelta d;
        d.name = b.name;
        d.unit = b.unit;
        d.direction = b.direction;
        d.base_median = b.median;
        d.base_mad = b.mad;

        const ParsedMetric* c = find(cand, b.name);
        if (c == nullptr) {
            d.kind = DeltaKind::kMissing;
            if (b.direction != Direction::kInfo && !opts.allow_missing)
                report.fail = true;
            report.deltas.push_back(std::move(d));
            continue;
        }
        if (c->unit != b.unit) {
            d.kind = DeltaKind::kIncomparable;
            d.unit = b.unit + "|" + c->unit;
            if (b.direction != Direction::kInfo && !opts.allow_missing)
                report.fail = true;
            report.deltas.push_back(std::move(d));
            continue;
        }

        d.cand_median = c->median;
        d.cand_mad = c->mad;
        d.delta = c->median - b.median;
        const double noise = opts.mad_k * kMadToSigma * std::max(b.mad, c->mad);
        d.tolerance =
            std::max({opts.rel_tol * std::fabs(b.median), noise, opts.min_abs});
        ++report.compared;

        // Signed movement toward "worse": positive = regression direction.
        double worse = 0.0;
        if (b.direction == Direction::kLowerIsBetter) worse = d.delta;
        if (b.direction == Direction::kHigherIsBetter) worse = -d.delta;

        if (b.direction != Direction::kInfo && worse > d.tolerance) {
            d.kind = DeltaKind::kRegressed;
            ++report.regressions;
            report.fail = true;
        } else if (b.direction != Direction::kInfo && -worse > d.tolerance) {
            d.kind = DeltaKind::kImproved;
            ++report.improvements;
        } else {
            d.kind = DeltaKind::kUnchanged;
        }
        report.deltas.push_back(std::move(d));
    }

    for (const ParsedMetric& c : cand) {
        if (find(base, c.name) != nullptr) continue;
        MetricDelta d;
        d.name = c.name;
        d.unit = c.unit;
        d.direction = c.direction;
        d.cand_median = c.median;
        d.cand_mad = c.mad;
        d.kind = DeltaKind::kNew;
        if (opts.strict_schema) report.fail = true;
        report.deltas.push_back(std::move(d));
    }

    return report;
}

std::string render_text(const DiffReport& report) {
    std::ostringstream os;
    for (const std::string& note : report.notes) os << "note: " << note << "\n";
    for (const MetricDelta& d : report.deltas) {
        switch (d.kind) {
            case DeltaKind::kRegressed:
                os << "REGRESSION  " << format_delta(d) << "\n";
                break;
            case DeltaKind::kImproved:
                os << "improved    " << format_delta(d) << "\n";
                break;
            case DeltaKind::kMissing:
                os << (d.direction != Direction::kInfo ? "MISSING     " : "missing     ")
                   << d.name << " (present in baseline only)\n";
                break;
            case DeltaKind::kNew:
                os << "new         " << d.name << " = " << json::num(d.cand_median)
                   << " " << d.unit << "\n";
                break;
            case DeltaKind::kIncomparable:
                os << "UNIT DRIFT  " << d.name << " (" << d.unit << ")\n";
                break;
            case DeltaKind::kUnchanged:
                os << "ok          " << format_delta(d) << "\n";
                break;
        }
    }
    // Candidate-only metrics get their own NOTICE block: they are invisible
    // to the gate (nothing to compare against), so a forgotten baseline
    // refresh must at least be loud in the text report.
    std::vector<const MetricDelta*> fresh;
    for (const MetricDelta& d : report.deltas)
        if (d.kind == DeltaKind::kNew) fresh.push_back(&d);
    if (!fresh.empty()) {
        os << "NOTICE: " << fresh.size()
           << " metric(s) absent from baseline (not gated until the baseline "
              "is refreshed):\n";
        for (const MetricDelta* d : fresh)
            os << "  " << d->name << " = " << json::num(d->cand_median) << " "
               << d->unit << "\n";
    }
    os << "benchdiff: " << report.compared << " compared, " << report.regressions
       << " regression(s), " << report.improvements << " improvement(s) -> "
       << (report.fail ? "FAIL" : "PASS") << "\n";
    return os.str();
}

std::string render_json(const DiffReport& report) {
    std::ostringstream os;
    os << "{\n  \"fail\": " << (report.fail ? "true" : "false");
    os << ",\n  \"compared\": " << report.compared;
    os << ",\n  \"regressions\": " << report.regressions;
    os << ",\n  \"improvements\": " << report.improvements;
    os << ",\n  \"notes\": [";
    for (std::size_t i = 0; i < report.notes.size(); ++i)
        os << (i ? ", " : "") << "\"" << json::escape(report.notes[i]) << "\"";
    os << "],\n  \"deltas\": [";
    bool first = true;
    for (const MetricDelta& d : report.deltas) {
        const char* kind = "unchanged";
        switch (d.kind) {
            case DeltaKind::kImproved: kind = "improved"; break;
            case DeltaKind::kRegressed: kind = "regressed"; break;
            case DeltaKind::kMissing: kind = "missing"; break;
            case DeltaKind::kNew: kind = "new"; break;
            case DeltaKind::kIncomparable: kind = "incomparable"; break;
            case DeltaKind::kUnchanged: break;
        }
        os << (first ? "" : ",") << "\n    {\"name\": \"" << json::escape(d.name)
           << "\", \"kind\": \"" << kind << "\", \"unit\": \"" << json::escape(d.unit)
           << "\", \"direction\": \"" << to_string(d.direction)
           << "\", \"base\": " << json::num(d.base_median)
           << ", \"candidate\": " << json::num(d.cand_median)
           << ", \"delta\": " << json::num(d.delta)
           << ", \"tolerance\": " << json::num(d.tolerance) << "}";
        first = false;
    }
    os << (report.deltas.empty() ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

std::string render_github(const DiffReport& report, const std::string& baseline_path) {
    std::ostringstream os;
    for (const MetricDelta& d : report.deltas) {
        if (d.kind == DeltaKind::kRegressed)
            os << baseline_path << ":1: [benchdiff] regression: " << format_delta(d)
               << "\n";
        else if (d.kind == DeltaKind::kMissing && d.direction != Direction::kInfo)
            os << baseline_path << ":1: [benchdiff] gated metric '" << d.name
               << "' missing from candidate\n";
        else if (d.kind == DeltaKind::kIncomparable)
            os << baseline_path << ":1: [benchdiff] unit drift on '" << d.name << "' ("
               << d.unit << ")\n";
    }
    return os.str();
}

}  // namespace sky::bench
