#include "bench/harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sky::bench {
namespace {

using Clock = std::chrono::steady_clock;

double time_once_ms(const std::function<void()>& fn) {
    const auto t0 = Clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// argv[0] without its directory part — the document's "bench" name.
std::string bench_name(const char* argv0) {
    std::string name = argv0 != nullptr ? argv0 : "";
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    return name.empty() ? "bench" : name;
}

}  // namespace

int steps(int base) {
    if (const char* env = std::getenv("SKYNET_BENCH_SCALE")) {
        const double scale = std::atof(env);
        if (scale > 0.0)
            return std::max(1, static_cast<int>(std::lround(base * scale)));
    }
    return std::max(1, base);
}

void rule(char c, int n) {
    for (int i = 0; i < n; ++i) std::putchar(c);
    std::putchar('\n');
}

Report& report() {
    static Report instance;
    return instance;
}

void record(const std::string& name, double value, const std::string& unit,
            Direction direction) {
    report().record(name, value, unit, direction);
}

void record(const std::string& name, const RepeatStats& stats, const std::string& unit,
            Direction direction) {
    report().record(name, stats, unit, direction);
}

RepeatStats run_timed(const std::function<void()>& fn, const RunOptions& opts) {
    // Calibrated warmup: keep running until two consecutive timings agree
    // within warmup_tolerance (caches faulted in, frequency settled), bounded
    // by [min_warmup, max_warmup] runs.
    const int min_warmup = std::max(0, opts.min_warmup);
    const int max_warmup = std::max(min_warmup, opts.max_warmup);
    double prev = -1.0;
    for (int w = 0; w < max_warmup; ++w) {
        const double t = time_once_ms(fn);
        if (w + 1 >= min_warmup && prev > 0.0 && t > 0.0) {
            const double hi = std::max(prev, t), lo = std::min(prev, t);
            if ((hi - lo) / hi <= opts.warmup_tolerance) break;
        }
        prev = t;
    }

    const int repeats = std::max(1, opts.repeats);
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(repeats));
    for (int r = 0; r < repeats; ++r) samples.push_back(time_once_ms(fn));
    return RepeatStats::from_samples(std::move(samples));
}

RepeatStats run(const std::string& name, const std::string& unit, Direction direction,
                const std::function<void()>& fn, const RunOptions& opts) {
    RepeatStats stats = run_timed(fn, opts);
    report().record(name, stats, unit, direction);
    return stats;
}

void merge_registry(const obs::Registry& registry, const std::string& prefix) {
    report().merge_registry(registry, prefix);
}

int finish(int argc, char** argv) {
    if (report().name().empty() && argc > 0) report().set_name(bench_name(argv[0]));
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--json") continue;
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: --json requires a path argument\n",
                         bench_name(argc > 0 ? argv[0] : nullptr).c_str());
            return 2;
        }
        const char* path = argv[++i];
        if (!report().save_json(path, local_fingerprint())) {
            std::fprintf(stderr, "failed to write bench report to %s\n", path);
            return 1;
        }
        std::printf("wrote bench report to %s\n", path);
    }
    return 0;
}

}  // namespace sky::bench
