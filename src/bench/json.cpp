#include "bench/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sky::bench::json {
namespace {

/// Cursor over the input with line/column tracking for error messages.
struct Parser {
    const std::string& text;
    std::size_t pos = 0;
    std::string err;

    [[nodiscard]] bool at_end() const { return pos >= text.size(); }
    [[nodiscard]] char peek() const { return at_end() ? '\0' : text[pos]; }

    bool fail(const std::string& message) {
        if (!err.empty()) return false;  // keep the first error
        int line = 1, col = 1;
        for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        err = std::to_string(line) + ":" + std::to_string(col) + ": " + message;
        return false;
    }

    void skip_ws() {
        while (!at_end()) {
            const char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos;
        }
    }

    bool literal(const char* word, std::size_t n) {
        if (text.compare(pos, n, word) != 0) return fail("invalid literal");
        pos += n;
        return true;
    }

    bool parse_string(std::string& out) {
        ++pos;  // opening quote
        while (true) {
            if (at_end()) return fail("unterminated string");
            const char c = text[pos++];
            if (c == '"') return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (at_end()) return fail("unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos + 4 > text.size()) return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else return fail("bad \\u escape digit");
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs are not
                    // produced by any exporter in this repo).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default: return fail("unknown escape");
            }
        }
    }

    bool parse_value(Value& out, int depth) {
        if (depth > 64) return fail("nesting too deep");
        skip_ws();
        if (at_end()) return fail("unexpected end of input");
        const char c = peek();
        if (c == '{') {
            out.kind = Value::Kind::kObject;
            ++pos;
            skip_ws();
            if (peek() == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skip_ws();
                if (peek() != '"') return fail("expected object key");
                std::string key;
                if (!parse_string(key)) return false;
                skip_ws();
                if (peek() != ':') return fail("expected ':'");
                ++pos;
                Value member;
                if (!parse_value(member, depth + 1)) return false;
                out.object.emplace_back(std::move(key), std::move(member));
                skip_ws();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                if (peek() == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            out.kind = Value::Kind::kArray;
            ++pos;
            skip_ws();
            if (peek() == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Value element;
                if (!parse_value(element, depth + 1)) return false;
                out.array.push_back(std::move(element));
                skip_ws();
                if (peek() == ',') {
                    ++pos;
                    continue;
                }
                if (peek() == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = Value::Kind::kString;
            return parse_string(out.str);
        }
        if (c == 't') {
            out.kind = Value::Kind::kBool;
            out.boolean = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out.kind = Value::Kind::kBool;
            out.boolean = false;
            return literal("false", 5);
        }
        if (c == 'n') {
            out.kind = Value::Kind::kNull;
            return literal("null", 4);
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            const char* begin = text.c_str() + pos;
            char* end = nullptr;
            out.kind = Value::Kind::kNumber;
            out.number = std::strtod(begin, &end);
            if (end == begin) return fail("invalid number");
            pos += static_cast<std::size_t>(end - begin);
            return true;
        }
        return fail("unexpected character");
    }
};

}  // namespace

const Value* Value::get(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [name, value] : object)
        if (name == key) return &value;
    return nullptr;
}

double Value::num_or(const std::string& key, double fallback) const {
    const Value* v = get(key);
    return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string Value::str_or(const std::string& key, const std::string& fallback) const {
    const Value* v = get(key);
    return v != nullptr && v->is_string() ? v->str : fallback;
}

bool parse(const std::string& text, Value& out, std::string& err) {
    Parser p{text};
    out = Value{};
    if (!p.parse_value(out, 0)) {
        err = p.err;
        return false;
    }
    p.skip_ws();
    if (!p.at_end()) {
        p.fail("trailing content after document");
        err = p.err;
        return false;
    }
    return true;
}

bool parse_file(const std::string& path, Value& out, std::string& err) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str(), out, err);
}

std::string num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

}  // namespace sky::bench::json
