#include "io/dataset_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace sky::io {

void write_ppm(const Tensor& image, const std::string& path) {
    const Shape s = image.shape();
    if (s.c < 3) throw std::invalid_argument("write_ppm: need 3 channels");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
    out << "P6\n" << s.w << " " << s.h << "\n255\n";
    std::vector<unsigned char> row(static_cast<std::size_t>(s.w) * 3);
    for (int y = 0; y < s.h; ++y) {
        for (int x = 0; x < s.w; ++x)
            for (int c = 0; c < 3; ++c)
                row[static_cast<std::size_t>(x) * 3 + static_cast<std::size_t>(c)] =
                    static_cast<unsigned char>(
                        std::clamp(image.at(0, c, y, x), 0.0f, 1.0f) * 255.0f + 0.5f);
        out.write(reinterpret_cast<const char*>(row.data()),
                  static_cast<std::streamsize>(row.size()));
    }
    if (!out) throw std::runtime_error("write_ppm: write failed");
}

Tensor read_ppm(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_ppm: cannot open " + path);
    std::string magic;
    int w = 0, h = 0, maxval = 0;
    in >> magic >> w >> h >> maxval;
    if (magic != "P6" || maxval != 255 || w <= 0 || h <= 0)
        throw std::runtime_error("read_ppm: unsupported PPM " + path);
    in.get();  // the single whitespace after the header
    Tensor img({1, 3, h, w});
    std::vector<unsigned char> row(static_cast<std::size_t>(w) * 3);
    for (int y = 0; y < h; ++y) {
        in.read(reinterpret_cast<char*>(row.data()),
                static_cast<std::streamsize>(row.size()));
        if (!in) throw std::runtime_error("read_ppm: truncated " + path);
        for (int x = 0; x < w; ++x)
            for (int c = 0; c < 3; ++c)
                img.at(0, c, y, x) =
                    static_cast<float>(
                        row[static_cast<std::size_t>(x) * 3 +
                            static_cast<std::size_t>(c)]) /
                    255.0f;
    }
    return img;
}

ExportStats export_detection_dataset(data::DetectionDataset& dataset, int count,
                                     const std::string& dir) {
    std::ofstream csv(dir + "/labels.csv", std::ios::trunc);
    if (!csv) throw std::runtime_error("export: cannot open " + dir + "/labels.csv");
    csv << "image,cx,cy,w,h\n";
    ExportStats stats;
    for (int i = 0; i < count; ++i) {
        const data::DetectionBatch b = dataset.batch(1);
        char name[32];
        std::snprintf(name, sizeof(name), "img_%06d.ppm", i);
        write_ppm(b.images, dir + "/" + name);
        for (const detect::BBox& box : b.boxes) {
            csv << name << "," << box.cx << "," << box.cy << "," << box.w << ","
                << box.h << "\n";
            ++stats.boxes;
        }
        ++stats.images;
    }
    if (!csv) throw std::runtime_error("export: CSV write failed");
    return stats;
}

std::vector<LabeledImage> read_labels(const std::string& dir) {
    std::ifstream csv(dir + "/labels.csv");
    if (!csv) throw std::runtime_error("read_labels: cannot open " + dir + "/labels.csv");
    std::string line;
    std::getline(csv, line);  // header
    std::vector<LabeledImage> out;
    std::map<std::string, std::size_t> index;
    while (std::getline(csv, line)) {
        if (line.empty()) continue;
        std::stringstream ss(line);
        std::string file, tok;
        detect::BBox box;
        std::getline(ss, file, ',');
        std::getline(ss, tok, ',');
        box.cx = std::stof(tok);
        std::getline(ss, tok, ',');
        box.cy = std::stof(tok);
        std::getline(ss, tok, ',');
        box.w = std::stof(tok);
        std::getline(ss, tok, ',');
        box.h = std::stof(tok);
        auto it = index.find(file);
        if (it == index.end()) {
            index.emplace(file, out.size());
            out.push_back({file, {box}});
        } else {
            out[it->second].boxes.push_back(box);
        }
    }
    return out;
}

}  // namespace sky::io
