// Dataset materialisation: write synthetic scenes to disk as binary PPM
// images plus a CSV label index, and read them back.  Lets the synthetic
// workloads interoperate with external tooling (image viewers, other
// training stacks) and gives the repo a stable on-disk corpus format.
//
// Layout:
//   <dir>/labels.csv          image,cx,cy,w,h   (one row per box)
//   <dir>/img_000000.ppm      P6 binary, 8-bit RGB
#pragma once

#include <string>

#include "data/synth_detection.hpp"

namespace sky::io {

/// Write a {1,3,H,W} tensor in [0,1] as binary P6 PPM.
void write_ppm(const Tensor& image, const std::string& path);

/// Read a binary P6 PPM back into a {1,3,H,W} tensor in [0,1].
[[nodiscard]] Tensor read_ppm(const std::string& path);

struct ExportStats {
    int images = 0;
    int boxes = 0;
};

/// Generate `count` single-target samples from `dataset` and materialise
/// them under `dir` (which must exist).  Returns counts.
ExportStats export_detection_dataset(data::DetectionDataset& dataset, int count,
                                     const std::string& dir);

struct LabeledImage {
    std::string file;
    std::vector<detect::BBox> boxes;
};

/// Parse labels.csv back into per-image box lists (ordered as written).
[[nodiscard]] std::vector<LabeledImage> read_labels(const std::string& dir);

}  // namespace sky::io
