// Terminal visualisation: render an image tensor (and optional boxes) as
// ASCII art.  The examples use this so detection and tracking results are
// inspectable in a terminal-only environment — each character cell shows
// luminance, box borders are drawn with '#' (prediction) and '+' (ground
// truth).
#pragma once

#include <string>

#include "detect/bbox.hpp"
#include "tensor/tensor.hpp"

namespace sky::io {

struct VizBox {
    detect::BBox box;
    char glyph = '#';
};

/// Render item `n` of `image` {N,3,H,W} to a `cols`-wide ASCII block
/// (rows follow from the aspect ratio; terminal cells are ~2x taller than
/// wide, which the renderer compensates for).
[[nodiscard]] std::string render_ascii(const Tensor& image, int n,
                                       const std::vector<VizBox>& boxes, int cols = 72);

}  // namespace sky::io
