#include "io/ascii_viz.hpp"

#include <algorithm>
#include <cmath>

namespace sky::io {
namespace {

// Dark -> bright luminance ramp.
constexpr char kRamp[] = " .:-=+*%@";
constexpr int kRampLen = static_cast<int>(sizeof(kRamp)) - 2;

}  // namespace

std::string render_ascii(const Tensor& image, int n, const std::vector<VizBox>& boxes,
                         int cols) {
    const Shape s = image.shape();
    cols = std::max(8, cols);
    // A terminal character is ~2x taller than wide: halve the row count.
    const int rows =
        std::max(4, static_cast<int>(std::lround(static_cast<double>(cols) * s.h /
                                                 (2.0 * s.w))));
    std::vector<std::string> canvas(static_cast<std::size_t>(rows),
                                    std::string(static_cast<std::size_t>(cols), ' '));
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            const int y = std::clamp(
                static_cast<int>((static_cast<double>(r) + 0.5) / rows * s.h), 0,
                s.h - 1);
            const int x = std::clamp(
                static_cast<int>((static_cast<double>(c) + 0.5) / cols * s.w), 0,
                s.w - 1);
            float lum = 0.0f;
            for (int ch = 0; ch < std::min(3, s.c); ++ch) lum += image.at(n, ch, y, x);
            lum /= static_cast<float>(std::min(3, s.c));
            const int idx = std::clamp(static_cast<int>(lum * kRampLen), 0, kRampLen);
            canvas[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
                kRamp[idx];
        }
    }
    // Box borders on top.
    for (const VizBox& vb : boxes) {
        const int x1 = std::clamp(static_cast<int>(vb.box.x1() * cols), 0, cols - 1);
        const int x2 = std::clamp(static_cast<int>(vb.box.x2() * cols), 0, cols - 1);
        const int y1 = std::clamp(static_cast<int>(vb.box.y1() * rows), 0, rows - 1);
        const int y2 = std::clamp(static_cast<int>(vb.box.y2() * rows), 0, rows - 1);
        for (int x = x1; x <= x2; ++x) {
            canvas[static_cast<std::size_t>(y1)][static_cast<std::size_t>(x)] = vb.glyph;
            canvas[static_cast<std::size_t>(y2)][static_cast<std::size_t>(x)] = vb.glyph;
        }
        for (int y = y1; y <= y2; ++y) {
            canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x1)] = vb.glyph;
            canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x2)] = vb.glyph;
        }
    }
    std::string out;
    out.reserve(static_cast<std::size_t>(rows) * (static_cast<std::size_t>(cols) + 1));
    for (const std::string& line : canvas) {
        out += line;
        out += '\n';
    }
    return out;
}

}  // namespace sky::io
