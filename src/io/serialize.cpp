#include "io/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sky::io {
namespace {

constexpr char kMagic[4] = {'S', 'K', 'Y', 'W'};
constexpr std::uint32_t kVersion = 1;

void write_or_throw(std::ofstream& out, const void* data, std::streamsize bytes) {
    out.write(static_cast<const char*>(data), bytes);
    if (!out) throw std::runtime_error("save_weights: write failed");
}

void read_or_throw(std::ifstream& in, void* data, std::streamsize bytes) {
    in.read(static_cast<char*>(data), bytes);
    if (!in) throw std::runtime_error("load_weights: unexpected end of file");
}

}  // namespace

namespace {

/// Parameters first, then non-trainable state (BN running statistics) —
/// everything a checkpoint needs to reproduce eval-mode behaviour.
std::vector<Tensor*> checkpoint_tensors(nn::Module& net) {
    std::vector<nn::ParamRef> params;
    net.collect_params(params);
    std::vector<Tensor*> tensors;
    tensors.reserve(params.size());
    for (const nn::ParamRef& p : params) tensors.push_back(p.value);
    net.collect_state(tensors);
    return tensors;
}

}  // namespace

void save_weights(nn::Module& net, const std::string& path) {
    const std::vector<Tensor*> tensors = checkpoint_tensors(net);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_weights: cannot open " + path);
    write_or_throw(out, kMagic, 4);
    write_or_throw(out, &kVersion, sizeof(kVersion));
    const std::uint64_t count = tensors.size();
    write_or_throw(out, &count, sizeof(count));
    for (const Tensor* t : tensors) {
        const Shape& s = t->shape();
        const std::int32_t dims[4] = {s.n, s.c, s.h, s.w};
        write_or_throw(out, dims, sizeof(dims));
        const std::uint64_t elems = static_cast<std::uint64_t>(t->size());
        write_or_throw(out, &elems, sizeof(elems));
        write_or_throw(out, t->data(),
                       static_cast<std::streamsize>(elems * sizeof(float)));
    }
}

void load_weights(nn::Module& net, const std::string& path) {
    const std::vector<Tensor*> tensors = checkpoint_tensors(net);
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("load_weights: cannot open " + path);
    char magic[4];
    read_or_throw(in, magic, 4);
    if (std::memcmp(magic, kMagic, 4) != 0)
        throw std::runtime_error("load_weights: bad magic in " + path);
    std::uint32_t version = 0;
    read_or_throw(in, &version, sizeof(version));
    if (version != kVersion)
        throw std::runtime_error("load_weights: unsupported version");
    std::uint64_t count = 0;
    read_or_throw(in, &count, sizeof(count));
    if (count != tensors.size())
        throw std::runtime_error("load_weights: tensor count mismatch (file " +
                                 std::to_string(count) + ", net " +
                                 std::to_string(tensors.size()) + ")");
    for (Tensor* t : tensors) {
        std::int32_t dims[4];
        read_or_throw(in, dims, sizeof(dims));
        const Shape expect = t->shape();
        if (dims[0] != expect.n || dims[1] != expect.c || dims[2] != expect.h ||
            dims[3] != expect.w)
            throw std::runtime_error("load_weights: shape mismatch");
        std::uint64_t elems = 0;
        read_or_throw(in, &elems, sizeof(elems));
        if (elems != static_cast<std::uint64_t>(t->size()))
            throw std::runtime_error("load_weights: element count mismatch");
        read_or_throw(in, t->data(),
                      static_cast<std::streamsize>(elems * sizeof(float)));
    }
}

std::int64_t serialized_size(nn::Module& net) {
    const std::vector<Tensor*> tensors = checkpoint_tensors(net);
    std::int64_t bytes = 4 + sizeof(std::uint32_t) + sizeof(std::uint64_t);
    for (const Tensor* t : tensors)
        bytes += 4 * sizeof(std::int32_t) + sizeof(std::uint64_t) +
                 t->size() * static_cast<std::int64_t>(sizeof(float));
    return bytes;
}

}  // namespace sky::io
