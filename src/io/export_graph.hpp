// Topology export: serialise a network's layer structure (not its weights)
// to a JSON document — layer names, kinds, shapes, MACs, parameters, and
// for Graphs the node edges.  Lets external tooling (visualisers,
// spreadsheet analyses) consume the architecture without linking the
// library.
#pragma once

#include <string>

#include "nn/graph.hpp"

namespace sky::io {

/// JSON for any module: a flat `layers` array from enumerate().
[[nodiscard]] std::string export_layers_json(const nn::Module& net, const Shape& input);

/// JSON for a Graph: `nodes` with kind/inputs plus the flat layer table of
/// each module node.
[[nodiscard]] std::string export_graph_json(const nn::Graph& graph, const Shape& input);

}  // namespace sky::io
