#include "io/export_graph.hpp"

#include <sstream>

namespace sky::io {
namespace {

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void append_layer(std::ostringstream& os, const nn::LayerInfo& li, bool first) {
    if (!first) os << ",";
    os << "\n    {\"name\": \"" << escape(li.name) << "\", \"kind\": \"" << li.kind
       << "\", \"in\": " << li.in.str() << ", \"out\": " << li.out.str()
       << ", \"macs\": " << li.macs << ", \"params\": " << li.params << "}";
}

}  // namespace

std::string export_layers_json(const nn::Module& net, const Shape& input) {
    std::vector<nn::LayerInfo> layers;
    net.enumerate(input, layers);
    std::ostringstream os;
    os << "{\n  \"input\": " << input.str() << ",\n  \"layers\": [";
    bool first = true;
    for (const auto& li : layers) {
        append_layer(os, li, first);
        first = false;
    }
    os << "\n  ]\n}\n";
    return os.str();
}

std::string export_graph_json(const nn::Graph& graph, const Shape& input) {
    std::ostringstream os;
    os << "{\n  \"input\": " << input.str() << ",\n  \"output_node\": "
       << graph.output_node() << ",\n  \"nodes\": [";
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
        if (i) os << ",";
        os << "\n    {\"id\": " << i << ", \"kind\": \"";
        switch (graph.node_kind(i)) {
            case nn::Graph::NodeKind::kInput: os << "input"; break;
            case nn::Graph::NodeKind::kModule: os << "module"; break;
            case nn::Graph::NodeKind::kConcat: os << "concat"; break;
            case nn::Graph::NodeKind::kAdd: os << "add"; break;
        }
        os << "\", \"inputs\": [";
        const auto& ins = graph.node_inputs(i);
        for (std::size_t j = 0; j < ins.size(); ++j) {
            if (j) os << ", ";
            os << ins[j];
        }
        os << "]";
        if (const nn::Module* m = graph.node_module(i))
            os << ", \"module\": \"" << escape(m->name()) << "\", \"layer_kind\": \""
               << m->kind() << "\", \"params\": " << m->param_count();
        os << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

}  // namespace sky::io
