// Weight serialization: save/load all parameters AND non-trainable state
// (BN running statistics) of a network to a simple binary container, so a
// trained model reloads with identical eval-mode behaviour.
//
// Format (little-endian):
//   magic "SKYW" | u32 version | u64 tensor count |
//   per tensor: 4 x i32 shape | u64 element count | f32 data[]
// Loading requires an identically-structured network (same parameter order
// and shapes) — the natural contract for a builder-based model zoo.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace sky::io {

/// Serialise every parameter of `net` to `path`.  Throws std::runtime_error
/// on I/O failure.
void save_weights(nn::Module& net, const std::string& path);

/// Load parameters saved by save_weights into `net`.  Throws
/// std::runtime_error on I/O failure or any shape/count mismatch.
void load_weights(nn::Module& net, const std::string& path);

/// Byte size the file will have (header + payload), for tests/tools.
[[nodiscard]] std::int64_t serialized_size(nn::Module& net);

}  // namespace sky::io
