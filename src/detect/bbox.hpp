// Axis-aligned bounding boxes and IoU.
//
// Boxes are stored in normalised image coordinates (centre x/y, width,
// height, all in [0,1]) so the same ground truth works across the
// multi-scale training resolutions the paper uses.
#pragma once

#include <vector>

namespace sky::detect {

struct BBox {
    float cx = 0.0f;
    float cy = 0.0f;
    float w = 0.0f;
    float h = 0.0f;

    [[nodiscard]] float x1() const { return cx - w * 0.5f; }
    [[nodiscard]] float y1() const { return cy - h * 0.5f; }
    [[nodiscard]] float x2() const { return cx + w * 0.5f; }
    [[nodiscard]] float y2() const { return cy + h * 0.5f; }
    [[nodiscard]] float area() const { return w * h; }
};

/// Intersection-over-union of two boxes; 0 when either is degenerate.
[[nodiscard]] float iou(const BBox& a, const BBox& b);

/// IoU of the width/height pair only (both boxes centred at the origin);
/// used for anchor matching.
[[nodiscard]] float wh_iou(float w1, float h1, float w2, float h2);

/// Clip a box to the unit square.
[[nodiscard]] BBox clip_unit(const BBox& b);

}  // namespace sky::detect
