#include "detect/metrics.hpp"

#include <stdexcept>

namespace sky::detect {

double mean_iou(const std::vector<BBox>& pred, const std::vector<BBox>& gt) {
    if (pred.size() != gt.size())
        throw std::invalid_argument("mean_iou: size mismatch");
    if (pred.empty()) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i < pred.size(); ++i) acc += iou(pred[i], gt[i]);
    return acc / static_cast<double>(pred.size());
}

double success_rate(const std::vector<BBox>& pred, const std::vector<BBox>& gt,
                    double threshold) {
    if (pred.size() != gt.size())
        throw std::invalid_argument("success_rate: size mismatch");
    if (pred.empty()) return 0.0;
    int hits = 0;
    for (std::size_t i = 0; i < pred.size(); ++i)
        if (iou(pred[i], gt[i]) > threshold) ++hits;
    return static_cast<double>(hits) / static_cast<double>(pred.size());
}

}  // namespace sky::detect
