// YOLO-style single-object detection head, adapted as in the paper:
// "SkyNet adapts the YOLO detector head by removing the classification
// output and use two anchors for bounding box regression" (§5.1).
//
// The backbone emits a raw map of shape {n, 5*A, gh, gw} (A anchors, 5
// values per anchor: tx, ty, tw, th, objectness).  Decoding follows YOLOv2:
//   cx = (gx + sigmoid(tx)) / gw        w = anchor_w * exp(tw)
//   cy = (gy + sigmoid(ty)) / gh        h = anchor_h * exp(th)
// DAC-SDC is single-object, so decode() returns the box of the
// highest-objectness anchor cell per image.
//
// The head also owns the training loss (squared error on the responsible
// anchor's box terms + binary cross-entropy on objectness) and produces the
// gradient w.r.t. the raw map, which feeds straight into Graph::backward.
#pragma once

#include "detect/bbox.hpp"
#include "detect/nms.hpp"
#include "tensor/tensor.hpp"

namespace sky::detect {

struct Anchor {
    float w;  ///< normalised to image width
    float h;  ///< normalised to image height
};

/// Loss weights, YOLOv2-style.
struct YoloLossConfig {
    float coord_weight = 5.0f;
    float noobj_weight = 0.5f;
    float obj_weight = 1.0f;
};

class YoloHead {
public:
    /// Default: the two anchors used by our SkyNet configuration, one small
    /// and one medium, chosen from the Fig. 6 size statistics.
    explicit YoloHead(std::vector<Anchor> anchors = {{0.05f, 0.08f}, {0.15f, 0.22f}});

    [[nodiscard]] int num_anchors() const { return static_cast<int>(anchors_.size()); }
    [[nodiscard]] int out_channels() const { return 5 * num_anchors(); }
    [[nodiscard]] const std::vector<Anchor>& anchors() const { return anchors_; }

    /// Best box per batch item.
    [[nodiscard]] std::vector<BBox> decode(const Tensor& raw) const;

    /// All boxes with objectness above `conf_threshold`, per batch item,
    /// NMS-suppressed at `nms_iou` (multi-object mode; see detect/nms.hpp).
    [[nodiscard]] std::vector<std::vector<Detection>> decode_all(
        const Tensor& raw, float conf_threshold = 0.5f, float nms_iou = 0.45f) const;

    /// Loss for single-object ground truth; writes dL/d(raw) into `grad`
    /// (same shape as raw).  Returns mean loss over the batch.
    float loss(const Tensor& raw, const std::vector<BBox>& gt, Tensor& grad,
               const YoloLossConfig& cfg = YoloLossConfig{}) const;

    /// Multi-object variant: any number of ground-truth boxes per image.
    /// Each box claims its (best-anchor, cell) pair; unclaimed cells are
    /// negatives.  DAC-SDC itself is single-object, but the dense grid makes
    /// this a free generalisation (used with decode_all / sample_multi).
    float loss_multi(const Tensor& raw, const std::vector<std::vector<BBox>>& gt,
                     Tensor& grad, const YoloLossConfig& cfg = YoloLossConfig{}) const;

private:
    std::vector<Anchor> anchors_;
};

}  // namespace sky::detect
