#include "detect/bbox.hpp"

#include <algorithm>

namespace sky::detect {

float iou(const BBox& a, const BBox& b) {
    const float ix1 = std::max(a.x1(), b.x1());
    const float iy1 = std::max(a.y1(), b.y1());
    const float ix2 = std::min(a.x2(), b.x2());
    const float iy2 = std::min(a.y2(), b.y2());
    const float iw = std::max(0.0f, ix2 - ix1);
    const float ih = std::max(0.0f, iy2 - iy1);
    const float inter = iw * ih;
    const float uni = a.area() + b.area() - inter;
    return uni > 0.0f ? inter / uni : 0.0f;
}

float wh_iou(float w1, float h1, float w2, float h2) {
    const float inter = std::min(w1, w2) * std::min(h1, h2);
    const float uni = w1 * h1 + w2 * h2 - inter;
    return uni > 0.0f ? inter / uni : 0.0f;
}

BBox clip_unit(const BBox& b) {
    const float x1 = std::clamp(b.x1(), 0.0f, 1.0f);
    const float y1 = std::clamp(b.y1(), 0.0f, 1.0f);
    const float x2 = std::clamp(b.x2(), 0.0f, 1.0f);
    const float y2 = std::clamp(b.y2(), 0.0f, 1.0f);
    return BBox{(x1 + x2) * 0.5f, (y1 + y2) * 0.5f, x2 - x1, y2 - y1};
}

}  // namespace sky::detect
