#include "detect/yolo_head.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sky::detect {
namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

YoloHead::YoloHead(std::vector<Anchor> anchors) : anchors_(std::move(anchors)) {
    if (anchors_.empty()) throw std::invalid_argument("YoloHead needs >= 1 anchor");
}

std::vector<BBox> YoloHead::decode(const Tensor& raw) const {
    const Shape s = raw.shape();
    const int A = num_anchors();
    if (s.c != 5 * A)
        throw std::invalid_argument("YoloHead::decode: expected " +
                                    std::to_string(5 * A) + " channels, got " +
                                    std::to_string(s.c));
    std::vector<BBox> out(static_cast<std::size_t>(s.n));
    for (int n = 0; n < s.n; ++n) {
        float best_obj = -1e30f;
        BBox best{};
        for (int a = 0; a < A; ++a) {
            const float* tx = raw.plane(n, a * 5 + 0);
            const float* ty = raw.plane(n, a * 5 + 1);
            const float* tw = raw.plane(n, a * 5 + 2);
            const float* th = raw.plane(n, a * 5 + 3);
            const float* to = raw.plane(n, a * 5 + 4);
            for (int gy = 0; gy < s.h; ++gy) {
                for (int gx = 0; gx < s.w; ++gx) {
                    const std::int64_t i = static_cast<std::int64_t>(gy) * s.w + gx;
                    if (to[i] > best_obj) {
                        best_obj = to[i];
                        best.cx = (static_cast<float>(gx) + sigmoid(tx[i])) /
                                  static_cast<float>(s.w);
                        best.cy = (static_cast<float>(gy) + sigmoid(ty[i])) /
                                  static_cast<float>(s.h);
                        best.w = anchors_[static_cast<std::size_t>(a)].w *
                                 std::exp(std::min(tw[i], 8.0f));
                        best.h = anchors_[static_cast<std::size_t>(a)].h *
                                 std::exp(std::min(th[i], 8.0f));
                    }
                }
            }
        }
        out[static_cast<std::size_t>(n)] = clip_unit(best);
    }
    return out;
}

std::vector<std::vector<Detection>> YoloHead::decode_all(const Tensor& raw,
                                                         float conf_threshold,
                                                         float nms_iou) const {
    const Shape s = raw.shape();
    const int A = num_anchors();
    if (s.c != 5 * A)
        throw std::invalid_argument("YoloHead::decode_all: channel count mismatch");
    std::vector<std::vector<Detection>> out(static_cast<std::size_t>(s.n));
    for (int n = 0; n < s.n; ++n) {
        std::vector<Detection> dets;
        for (int a = 0; a < A; ++a) {
            const float* tx = raw.plane(n, a * 5 + 0);
            const float* ty = raw.plane(n, a * 5 + 1);
            const float* tw = raw.plane(n, a * 5 + 2);
            const float* th = raw.plane(n, a * 5 + 3);
            const float* to = raw.plane(n, a * 5 + 4);
            for (int gy = 0; gy < s.h; ++gy) {
                for (int gx = 0; gx < s.w; ++gx) {
                    const std::int64_t i = static_cast<std::int64_t>(gy) * s.w + gx;
                    const float score = sigmoid(to[i]);
                    if (score < conf_threshold) continue;
                    Detection d;
                    d.score = score;
                    d.box.cx = (static_cast<float>(gx) + sigmoid(tx[i])) /
                               static_cast<float>(s.w);
                    d.box.cy = (static_cast<float>(gy) + sigmoid(ty[i])) /
                               static_cast<float>(s.h);
                    d.box.w = anchors_[static_cast<std::size_t>(a)].w *
                              std::exp(std::min(tw[i], 8.0f));
                    d.box.h = anchors_[static_cast<std::size_t>(a)].h *
                              std::exp(std::min(th[i], 8.0f));
                    d.box = clip_unit(d.box);
                    dets.push_back(d);
                }
            }
        }
        out[static_cast<std::size_t>(n)] = nms(std::move(dets), nms_iou);
    }
    return out;
}

float YoloHead::loss(const Tensor& raw, const std::vector<BBox>& gt, Tensor& grad,
                     const YoloLossConfig& cfg) const {
    const Shape s = raw.shape();
    const int A = num_anchors();
    if (static_cast<int>(gt.size()) != s.n)
        throw std::invalid_argument("YoloHead::loss: gt size mismatch");
    grad = Tensor(s);
    double total = 0.0;
    const float inv_n = 1.0f / static_cast<float>(s.n);
    for (int n = 0; n < s.n; ++n) {
        const BBox& g = gt[static_cast<std::size_t>(n)];
        // Responsible cell and anchor.
        const int gx = std::clamp(static_cast<int>(g.cx * static_cast<float>(s.w)), 0, s.w - 1);
        const int gy = std::clamp(static_cast<int>(g.cy * static_cast<float>(s.h)), 0, s.h - 1);
        int best_a = 0;
        float best_match = -1.0f;
        for (int a = 0; a < A; ++a) {
            const float m = wh_iou(g.w, g.h, anchors_[static_cast<std::size_t>(a)].w,
                                   anchors_[static_cast<std::size_t>(a)].h);
            if (m > best_match) {
                best_match = m;
                best_a = a;
            }
        }
        for (int a = 0; a < A; ++a) {
            const float* to = raw.plane(n, a * 5 + 4);
            float* gobj = grad.plane(n, a * 5 + 4);
            for (int cy = 0; cy < s.h; ++cy) {
                for (int cx = 0; cx < s.w; ++cx) {
                    const std::int64_t i = static_cast<std::int64_t>(cy) * s.w + cx;
                    const bool responsible = (a == best_a && cx == gx && cy == gy);
                    const float target = responsible ? 1.0f : 0.0f;
                    const float p = sigmoid(to[i]);
                    const float w = responsible ? cfg.obj_weight : cfg.noobj_weight;
                    // BCE with logits: dL/dlogit = p - target.
                    const float eps = 1e-7f;
                    total += -w *
                             (target * std::log(p + eps) +
                              (1.0f - target) * std::log(1.0f - p + eps)) *
                             inv_n;
                    gobj[i] += w * (p - target) * inv_n;
                }
            }
        }
        // Box terms on the responsible anchor cell.
        const std::int64_t i = static_cast<std::int64_t>(gy) * s.w + gx;
        const float* tx = raw.plane(n, best_a * 5 + 0);
        const float* ty = raw.plane(n, best_a * 5 + 1);
        const float* tw = raw.plane(n, best_a * 5 + 2);
        const float* th = raw.plane(n, best_a * 5 + 3);
        float* gtx = grad.plane(n, best_a * 5 + 0);
        float* gty = grad.plane(n, best_a * 5 + 1);
        float* gtw = grad.plane(n, best_a * 5 + 2);
        float* gth = grad.plane(n, best_a * 5 + 3);
        const Anchor& an = anchors_[static_cast<std::size_t>(best_a)];
        const float target_tx = g.cx * static_cast<float>(s.w) - static_cast<float>(gx);
        const float target_ty = g.cy * static_cast<float>(s.h) - static_cast<float>(gy);
        const float target_tw = std::log(std::max(g.w, 1e-4f) / an.w);
        const float target_th = std::log(std::max(g.h, 1e-4f) / an.h);
        const float px = sigmoid(tx[i]);
        const float py = sigmoid(ty[i]);
        const float dx = px - target_tx;
        const float dy = py - target_ty;
        const float dw = tw[i] - target_tw;
        const float dh = th[i] - target_th;
        total += 0.5 * cfg.coord_weight * (dx * dx + dy * dy + dw * dw + dh * dh) * inv_n;
        gtx[i] += cfg.coord_weight * dx * px * (1.0f - px) * inv_n;
        gty[i] += cfg.coord_weight * dy * py * (1.0f - py) * inv_n;
        gtw[i] += cfg.coord_weight * dw * inv_n;
        gth[i] += cfg.coord_weight * dh * inv_n;
    }
    return static_cast<float>(total);
}

float YoloHead::loss_multi(const Tensor& raw, const std::vector<std::vector<BBox>>& gt,
                           Tensor& grad, const YoloLossConfig& cfg) const {
    const Shape s = raw.shape();
    const int A = num_anchors();
    if (static_cast<int>(gt.size()) != s.n)
        throw std::invalid_argument("YoloHead::loss_multi: gt size mismatch");
    grad = Tensor(s);
    double total = 0.0;
    const float inv_n = 1.0f / static_cast<float>(s.n);
    const float eps = 1e-7f;
    for (int n = 0; n < s.n; ++n) {
        // Assign every ground-truth box to its (anchor, cell); later boxes
        // do not overwrite earlier claims (targets were generated
        // non-overlapping, so collisions are rare).
        std::vector<int> owner(static_cast<std::size_t>(A) * s.h * s.w, -1);
        const auto& boxes = gt[static_cast<std::size_t>(n)];
        for (std::size_t b = 0; b < boxes.size(); ++b) {
            const BBox& g = boxes[b];
            const int gx =
                std::clamp(static_cast<int>(g.cx * static_cast<float>(s.w)), 0, s.w - 1);
            const int gy =
                std::clamp(static_cast<int>(g.cy * static_cast<float>(s.h)), 0, s.h - 1);
            int best_a = 0;
            float best = -1.0f;
            for (int a = 0; a < A; ++a) {
                const float m = wh_iou(g.w, g.h, anchors_[static_cast<std::size_t>(a)].w,
                                       anchors_[static_cast<std::size_t>(a)].h);
                if (m > best) {
                    best = m;
                    best_a = a;
                }
            }
            auto& slot = owner[static_cast<std::size_t>(
                (best_a * s.h + gy) * s.w + gx)];
            if (slot < 0) slot = static_cast<int>(b);
        }
        // Objectness everywhere + box terms at claimed cells.
        for (int a = 0; a < A; ++a) {
            const float* to = raw.plane(n, a * 5 + 4);
            float* gobj = grad.plane(n, a * 5 + 4);
            for (int cy = 0; cy < s.h; ++cy) {
                for (int cx = 0; cx < s.w; ++cx) {
                    const std::int64_t i = static_cast<std::int64_t>(cy) * s.w + cx;
                    const int own = owner[static_cast<std::size_t>(
                        (a * s.h + cy) * s.w + cx)];
                    const bool pos = own >= 0;
                    const float target = pos ? 1.0f : 0.0f;
                    const float w = pos ? cfg.obj_weight : cfg.noobj_weight;
                    const float p = sigmoid(to[i]);
                    total += -w *
                             (target * std::log(p + eps) +
                              (1.0f - target) * std::log(1.0f - p + eps)) *
                             inv_n;
                    gobj[i] += w * (p - target) * inv_n;
                    if (!pos) continue;

                    const BBox& g = boxes[static_cast<std::size_t>(own)];
                    const Anchor& an = anchors_[static_cast<std::size_t>(a)];
                    const float target_tx =
                        g.cx * static_cast<float>(s.w) - static_cast<float>(cx);
                    const float target_ty =
                        g.cy * static_cast<float>(s.h) - static_cast<float>(cy);
                    const float target_tw = std::log(std::max(g.w, 1e-4f) / an.w);
                    const float target_th = std::log(std::max(g.h, 1e-4f) / an.h);
                    const float* tx = raw.plane(n, a * 5 + 0);
                    const float* ty = raw.plane(n, a * 5 + 1);
                    const float* tw = raw.plane(n, a * 5 + 2);
                    const float* th = raw.plane(n, a * 5 + 3);
                    const float px = sigmoid(tx[i]);
                    const float py = sigmoid(ty[i]);
                    const float dx = px - target_tx;
                    const float dy = py - target_ty;
                    const float dw = tw[i] - target_tw;
                    const float dh = th[i] - target_th;
                    total += 0.5 * cfg.coord_weight *
                             (dx * dx + dy * dy + dw * dw + dh * dh) * inv_n;
                    grad.plane(n, a * 5 + 0)[i] +=
                        cfg.coord_weight * dx * px * (1.0f - px) * inv_n;
                    grad.plane(n, a * 5 + 1)[i] +=
                        cfg.coord_weight * dy * py * (1.0f - py) * inv_n;
                    grad.plane(n, a * 5 + 2)[i] += cfg.coord_weight * dw * inv_n;
                    grad.plane(n, a * 5 + 3)[i] += cfg.coord_weight * dh * inv_n;
                }
            }
        }
    }
    return static_cast<float>(total);
}

}  // namespace sky::detect
