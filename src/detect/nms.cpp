#include "detect/nms.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>

namespace sky::detect {

std::vector<Detection> nms(std::vector<Detection> detections, float iou_threshold) {
    // Deterministic ordering: score desc, then area desc, then original index.
    // A non-stable sort on score alone made the kept set depend on how the
    // platform's sort permuted equal-score detections.
    std::vector<std::size_t> order(detections.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const Detection& da = detections[a];
        const Detection& db = detections[b];
        if (da.score != db.score) return da.score > db.score;
        const float aa = da.box.area(), ab = db.box.area();
        if (aa != ab) return aa > ab;
        return a < b;
    });
    std::vector<Detection> kept;
    kept.reserve(detections.size());
    for (std::size_t i : order) {
        const Detection& d = detections[i];
        bool suppressed = false;
        for (const Detection& k : kept) {
            if (iou(d.box, k.box) > iou_threshold) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed) kept.push_back(d);
    }
    return kept;
}

}  // namespace sky::detect
