#include "detect/nms.hpp"

#include <algorithm>

namespace sky::detect {

std::vector<Detection> nms(std::vector<Detection> detections, float iou_threshold) {
    std::sort(detections.begin(), detections.end(),
              [](const Detection& a, const Detection& b) { return a.score > b.score; });
    std::vector<Detection> kept;
    kept.reserve(detections.size());
    for (const Detection& d : detections) {
        bool suppressed = false;
        for (const Detection& k : kept) {
            if (iou(d.box, k.box) > iou_threshold) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed) kept.push_back(d);
    }
    return kept;
}

}  // namespace sky::detect
