// Multi-object decoding support: scored detections and greedy
// non-maximum suppression.  DAC-SDC is single-object, but the detector head
// is a dense YOLO grid, so multi-object decoding (used with
// YoloHead::decode_all) comes almost for free and makes the library usable
// beyond the contest task — e.g. the distractor-rich scenes of Fig. 7.
#pragma once

#include "detect/bbox.hpp"

namespace sky::detect {

struct Detection {
    BBox box;
    float score = 0.0f;
};

/// Greedy NMS: keep detections in descending score order, dropping any box
/// whose IoU with an already-kept box exceeds `iou_threshold`.
[[nodiscard]] std::vector<Detection> nms(std::vector<Detection> detections,
                                         float iou_threshold);

}  // namespace sky::detect
