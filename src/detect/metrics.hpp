// Detection metrics: mean IoU (the DAC-SDC accuracy metric, Eq. 2) and
// success rate at an IoU threshold (also used by the tracking evaluation).
#pragma once

#include "detect/bbox.hpp"

namespace sky::detect {

/// Mean IoU over matched prediction/ground-truth pairs (R_IoU of Eq. 2).
[[nodiscard]] double mean_iou(const std::vector<BBox>& pred, const std::vector<BBox>& gt);

/// Fraction of pairs with IoU > threshold.
[[nodiscard]] double success_rate(const std::vector<BBox>& pred, const std::vector<BBox>& gt,
                                  double threshold);

}  // namespace sky::detect
