#include "nn/graph.hpp"

#include <stdexcept>

namespace sky::nn {

Graph::Graph() {
    nodes_.push_back(Node{Kind::kInput, nullptr, {}, {}});
}

int Graph::add(ModulePtr m, int in) {
    nodes_.push_back(Node{Kind::kModule, std::move(m), {in}, {}});
    output_ = static_cast<int>(nodes_.size()) - 1;
    return output_;
}

int Graph::add_concat(std::vector<int> ins) {
    nodes_.push_back(Node{Kind::kConcat, nullptr, std::move(ins), {}});
    output_ = static_cast<int>(nodes_.size()) - 1;
    return output_;
}

int Graph::add_add(int a, int b) {
    nodes_.push_back(Node{Kind::kAdd, nullptr, {a, b}, {}});
    output_ = static_cast<int>(nodes_.size()) - 1;
    return output_;
}

void Graph::set_output(int node) { output_ = node; }

Tensor Graph::forward(const Tensor& x) {
    outputs_.assign(nodes_.size(), Tensor{});
    outputs_[0] = x;
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        Node& node = nodes_[i];
        switch (node.kind) {
            case Kind::kInput:
                break;
            case Kind::kModule:
                outputs_[i] = node.module->forward(outputs_[static_cast<std::size_t>(
                    node.inputs[0])]);
                break;
            case Kind::kConcat: {
                std::vector<const Tensor*> parts;
                node.concat_channels.clear();
                for (int in : node.inputs) {
                    parts.push_back(&outputs_[static_cast<std::size_t>(in)]);
                    node.concat_channels.push_back(
                        outputs_[static_cast<std::size_t>(in)].shape().c);
                }
                outputs_[i] = Tensor::concat_channels(parts);
                break;
            }
            case Kind::kAdd: {
                outputs_[i] = outputs_[static_cast<std::size_t>(node.inputs[0])];
                outputs_[i].axpy(1.0f, outputs_[static_cast<std::size_t>(node.inputs[1])]);
                break;
            }
        }
    }
    return outputs_[static_cast<std::size_t>(output_)];
}

Tensor Graph::backward(const Tensor& grad_out) {
    std::vector<Tensor> grads(nodes_.size());
    grads[static_cast<std::size_t>(output_)] = grad_out;
    auto accumulate = [&](int node, Tensor&& g) {
        auto& slot = grads[static_cast<std::size_t>(node)];
        if (slot.empty())
            slot = std::move(g);
        else
            slot.axpy(1.0f, g);
    };
    for (std::size_t i = nodes_.size(); i-- > 1;) {
        Node& node = nodes_[i];
        Tensor& g = grads[i];
        if (g.empty()) continue;  // node not on any path to the output
        switch (node.kind) {
            case Kind::kInput:
                break;
            case Kind::kModule:
                accumulate(node.inputs[0], node.module->backward(g));
                break;
            case Kind::kConcat: {
                auto parts = Tensor::split_channels(g, node.concat_channels);
                for (std::size_t p = 0; p < node.inputs.size(); ++p)
                    accumulate(node.inputs[p], std::move(parts[p]));
                break;
            }
            case Kind::kAdd: {
                Tensor copy = g;
                accumulate(node.inputs[0], std::move(copy));
                accumulate(node.inputs[1], std::move(g));
                break;
            }
        }
    }
    if (grads[0].empty()) return Tensor(outputs_[0].shape());
    return std::move(grads[0]);
}

void Graph::collect_params(std::vector<ParamRef>& out) {
    for (auto& n : nodes_)
        if (n.module) n.module->collect_params(out);
}

void Graph::collect_state(std::vector<Tensor*>& out) {
    for (auto& n : nodes_)
        if (n.module) n.module->collect_state(out);
}

void Graph::set_training(bool training) {
    Module::set_training(training);
    for (auto& n : nodes_)
        if (n.module) n.module->set_training(training);
}

void Graph::prepack() {
    for (auto& n : nodes_)
        if (n.module) n.module->prepack();
}

std::vector<Shape> Graph::infer_shapes(const Shape& in) const {
    std::vector<Shape> shapes(nodes_.size());
    shapes[0] = in;
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        const Node& node = nodes_[i];
        switch (node.kind) {
            case Kind::kInput:
                break;
            case Kind::kModule:
                shapes[i] = node.module->out_shape(
                    shapes[static_cast<std::size_t>(node.inputs[0])]);
                break;
            case Kind::kConcat: {
                Shape s = shapes[static_cast<std::size_t>(node.inputs[0])];
                int c = 0;
                for (int inn : node.inputs) c += shapes[static_cast<std::size_t>(inn)].c;
                s.c = c;
                shapes[i] = s;
                break;
            }
            case Kind::kAdd:
                shapes[i] = shapes[static_cast<std::size_t>(node.inputs[0])];
                break;
        }
    }
    return shapes;
}

void Graph::enumerate(const Shape& in, std::vector<LayerInfo>& out) const {
    const auto shapes = infer_shapes(in);
    for (std::size_t i = 1; i < nodes_.size(); ++i)
        if (nodes_[i].module)
            nodes_[i].module->enumerate(
                shapes[static_cast<std::size_t>(nodes_[i].inputs[0])], out);
}

Shape Graph::out_shape(const Shape& in) const {
    return infer_shapes(in)[static_cast<std::size_t>(output_)];
}

std::int64_t Graph::macs(const Shape& in) const {
    const auto shapes = infer_shapes(in);
    std::int64_t total = 0;
    for (std::size_t i = 1; i < nodes_.size(); ++i)
        if (nodes_[i].module)
            total += nodes_[i].module->macs(
                shapes[static_cast<std::size_t>(nodes_[i].inputs[0])]);
    return total;
}

std::int64_t Graph::param_count() const {
    std::int64_t total = 0;
    for (const auto& n : nodes_)
        if (n.module) total += n.module->param_count();
    return total;
}

const Tensor& Graph::node_output(int node) const {
    if (node < 0 || node >= static_cast<int>(outputs_.size()))
        throw std::out_of_range("Graph::node_output: bad node id");
    return outputs_[static_cast<std::size_t>(node)];
}

}  // namespace sky::nn
