#include "nn/optimizer.hpp"

#include <cmath>

namespace sky::nn {

SGD::SGD(std::vector<ParamRef> params, Config cfg) : params_(std::move(params)), cfg_(cfg) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
}

void SGD::zero_grad() {
    for (auto& p : params_) p.grad->zero();
}

void SGD::step() {
    float clip_scale = 1.0f;
    if (cfg_.grad_clip > 0.0f) {
        double sq = 0.0;
        for (const auto& p : params_) sq += p.grad->sq_norm();
        const double norm = std::sqrt(sq);
        if (norm > cfg_.grad_clip) clip_scale = static_cast<float>(cfg_.grad_clip / norm);
    }
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Tensor& w = *params_[i].value;
        Tensor& g = *params_[i].grad;
        Tensor& v = velocity_[i];
        float* wp = w.data();
        float* gp = g.data();
        float* vp = v.data();
        const std::int64_t n = w.size();
        for (std::int64_t j = 0; j < n; ++j) {
            const float grad = gp[j] * clip_scale + cfg_.weight_decay * wp[j];
            vp[j] = cfg_.momentum * vp[j] + grad;
            wp[j] -= cfg_.lr * vp[j];
        }
    }
}

Adam::Adam(std::vector<ParamRef> params, Config cfg) : params_(std::move(params)), cfg_(cfg) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto& p : params_) {
        m_.emplace_back(p.value->shape());
        v_.emplace_back(p.value->shape());
    }
}

void Adam::zero_grad() {
    for (auto& p : params_) p.grad->zero();
}

void Adam::step() {
    ++t_;
    const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Tensor& w = *params_[i].value;
        Tensor& g = *params_[i].grad;
        Tensor& m = m_[i];
        Tensor& v = v_[i];
        const std::int64_t n = w.size();
        for (std::int64_t j = 0; j < n; ++j) {
            const float grad = g[j] + cfg_.weight_decay * w[j];
            m[j] = cfg_.beta1 * m[j] + (1.0f - cfg_.beta1) * grad;
            v[j] = cfg_.beta2 * v[j] + (1.0f - cfg_.beta2) * grad * grad;
            const float mhat = m[j] / bc1;
            const float vhat = v[j] / bc2;
            w[j] -= cfg_.lr * mhat / (std::sqrt(vhat) + cfg_.eps);
        }
    }
}

ExpSchedule::ExpSchedule(float lr_start, float lr_end, int total_steps)
    : lr_start_(lr_start), lr_end_(lr_end), total_steps_(total_steps) {}

float ExpSchedule::at(int step) const {
    if (total_steps_ <= 1) return lr_start_;
    const float t = static_cast<float>(step) / static_cast<float>(total_steps_ - 1);
    const float clamped = t < 0.0f ? 0.0f : (t > 1.0f ? 1.0f : t);
    return lr_start_ * std::pow(lr_end_ / lr_start_, clamped);
}

}  // namespace sky::nn
