// SGD with momentum and weight decay, plus the learning-rate schedules used
// in the paper's experiments (exponential decay from 1e-4 to 1e-7 for
// detection, 1e-3 to 1e-5 / 1e-4 for the trackers).
#pragma once

#include "nn/module.hpp"

namespace sky::nn {

class SGD {
public:
    struct Config {
        float lr = 1e-2f;
        float momentum = 0.9f;
        float weight_decay = 0.0f;
        float grad_clip = 0.0f;  ///< 0 disables clipping (by global norm)
    };

    SGD(std::vector<ParamRef> params, Config cfg);

    void zero_grad();
    void step();

    void set_lr(float lr) { cfg_.lr = lr; }
    [[nodiscard]] float lr() const { return cfg_.lr; }
    [[nodiscard]] const std::vector<ParamRef>& params() const { return params_; }

private:
    std::vector<ParamRef> params_;
    std::vector<Tensor> velocity_;
    Config cfg_;
};

/// Adam (Kingma & Ba) — not used by the paper's recipes (which are SGD),
/// but a standard library citizen for downstream users.
class Adam {
public:
    struct Config {
        float lr = 1e-3f;
        float beta1 = 0.9f;
        float beta2 = 0.999f;
        float eps = 1e-8f;
        float weight_decay = 0.0f;
    };

    Adam(std::vector<ParamRef> params, Config cfg);

    void zero_grad();
    void step();

    void set_lr(float lr) { cfg_.lr = lr; }
    [[nodiscard]] float lr() const { return cfg_.lr; }

private:
    std::vector<ParamRef> params_;
    std::vector<Tensor> m_, v_;
    Config cfg_;
    int t_ = 0;
};

/// Exponential decay from lr_start to lr_end over total_steps.
class ExpSchedule {
public:
    ExpSchedule(float lr_start, float lr_end, int total_steps);
    [[nodiscard]] float at(int step) const;

private:
    float lr_start_, lr_end_;
    int total_steps_;
};

}  // namespace sky::nn
