// Feature-map hook: an optional global transform applied by Activation (and
// the network output) after each forward.  The quantization study installs a
// fixed-point rounding hook here to simulate quantised feature maps on any
// network without rebuilding it; see quant/quantizer.hpp.
#pragma once

#include <functional>

#include "tensor/tensor.hpp"

namespace sky::nn {

using FmHook = std::function<void(Tensor&)>;

/// Install (or clear, with nullptr) the global feature-map hook.
void set_fm_hook(FmHook hook);
[[nodiscard]] const FmHook& fm_hook();

/// RAII installer: sets the hook for a scope, restores the previous on exit.
class FmHookGuard {
public:
    explicit FmHookGuard(FmHook hook);
    ~FmHookGuard();
    FmHookGuard(const FmHookGuard&) = delete;
    FmHookGuard& operator=(const FmHookGuard&) = delete;

private:
    FmHook previous_;
};

}  // namespace sky::nn
