// Generic 2-D convolution (square kernel, symmetric padding, stride).
//
// Used by the baseline backbones (ResNet / VGG / AlexNet / Tiny-YOLO ...).
// SkyNet itself only needs the depthwise and pointwise specialisations in
// dwconv.hpp / pwconv.hpp, which have dedicated kernels.  Forward and
// backward run as im2col + packed SIMD SGEMM through the sky::core kernel
// engine; eval forwards reuse a prepacked weight-panel handle
// (core::PackedA) so the hot path skips per-call weight repacking
// (see docs/KERNELS.md).
#pragma once

#include <vector>

#include "core/gemm.hpp"
#include "nn/module.hpp"

namespace sky::nn {

class Conv2d : public Module {
public:
    /// kernel k x k, `stride`, zero padding `pad`; bias optional.
    Conv2d(int in_ch, int out_ch, int k, int stride, int pad, bool bias, Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_params(std::vector<ParamRef>& out) override;
    /// Entering training drops the weight pack (the optimizer is about to
    /// write the weights); leaving it refreshes the pack.
    void set_training(bool training) override;
    void prepack() override;

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override;
    [[nodiscard]] std::int64_t macs(const Shape& in) const override;
    [[nodiscard]] std::int64_t param_count() const override;

    /// Mutable access invalidates the prepacked weight panels — callers that
    /// rewrite weights in eval mode (BN folding, checkpoint load) get a
    /// correct fallback until the next prepack()/set_training(false).
    [[nodiscard]] Tensor& weight() {
        wpack_.clear();
        return weight_;
    }
    [[nodiscard]] const Tensor& weight() const { return weight_; }
    [[nodiscard]] Tensor& bias() { return bias_; }
    [[nodiscard]] const Tensor& bias() const { return bias_; }
    [[nodiscard]] int in_channels() const { return in_ch_; }
    [[nodiscard]] int out_channels() const { return out_ch_; }
    [[nodiscard]] int kernel() const { return k_; }
    [[nodiscard]] int stride() const { return stride_; }
    [[nodiscard]] int padding() const { return pad_; }
    [[nodiscard]] std::string kind() const override { return "conv"; }
    [[nodiscard]] bool has_bias() const { return has_bias_; }
    /// Deployment passes (BN folding) may need to materialise a bias.
    void enable_bias() { has_bias_ = true; }

private:
    int in_ch_, out_ch_, k_, stride_, pad_;
    bool has_bias_;
    Tensor weight_;  ///< [out_ch, in_ch, k, k]
    Tensor bias_;    ///< [1, out_ch, 1, 1]
    Tensor grad_weight_;
    Tensor grad_bias_;
    Tensor input_;          ///< cached for backward (training mode only)
    core::PackedA wpack_;   ///< prepacked weight panels (eval mode only)
};

}  // namespace sky::nn
