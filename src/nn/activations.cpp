#include "nn/activations.hpp"

#include <cmath>

#include "nn/fm_hook.hpp"

namespace sky::nn {

const char* act_name(Act a) {
    switch (a) {
        case Act::kReLU: return "ReLU";
        case Act::kReLU6: return "ReLU6";
        case Act::kLeaky: return "LeakyReLU";
        case Act::kSigmoid: return "Sigmoid";
    }
    return "?";
}

Activation::Activation(Act kind, float leaky_slope) : kind_(kind), slope_(leaky_slope) {}

std::string Activation::name() const { return act_name(kind_); }

Tensor Activation::forward(const Tensor& x) {
    if (training_) input_ = x;
    Tensor y(x.shape());
    const float* xp = x.data();
    float* yp = y.data();
    const std::int64_t n = x.size();
    switch (kind_) {
        case Act::kReLU:
            for (std::int64_t i = 0; i < n; ++i) yp[i] = xp[i] > 0.0f ? xp[i] : 0.0f;
            break;
        case Act::kReLU6:
            for (std::int64_t i = 0; i < n; ++i) {
                const float v = xp[i];
                yp[i] = v <= 0.0f ? 0.0f : (v >= 6.0f ? 6.0f : v);
            }
            break;
        case Act::kLeaky:
            for (std::int64_t i = 0; i < n; ++i) yp[i] = xp[i] > 0.0f ? xp[i] : slope_ * xp[i];
            break;
        case Act::kSigmoid:
            for (std::int64_t i = 0; i < n; ++i) yp[i] = 1.0f / (1.0f + std::exp(-xp[i]));
            if (training_) input_ = y;  // sigmoid backward uses the output
            break;
    }
    if (!training_ && fm_hook()) fm_hook()(y);
    return y;
}

Tensor Activation::backward(const Tensor& grad_out) {
    Tensor gi(grad_out.shape());
    const float* xp = input_.data();
    const float* gp = grad_out.data();
    float* op = gi.data();
    const std::int64_t n = grad_out.size();
    switch (kind_) {
        case Act::kReLU:
            for (std::int64_t i = 0; i < n; ++i) op[i] = xp[i] > 0.0f ? gp[i] : 0.0f;
            break;
        case Act::kReLU6:
            for (std::int64_t i = 0; i < n; ++i)
                op[i] = (xp[i] > 0.0f && xp[i] < 6.0f) ? gp[i] : 0.0f;
            break;
        case Act::kLeaky:
            for (std::int64_t i = 0; i < n; ++i) op[i] = xp[i] > 0.0f ? gp[i] : slope_ * gp[i];
            break;
        case Act::kSigmoid:
            // input_ holds sigmoid(x)
            for (std::int64_t i = 0; i < n; ++i) op[i] = gp[i] * xp[i] * (1.0f - xp[i]);
            break;
    }
    return gi;
}

}  // namespace sky::nn
