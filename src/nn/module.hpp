// Layer interface for the training-capable NN stack.
//
// Every layer implements both forward() and backward(); backward() consumes
// dL/d(output) and returns dL/d(input), accumulating dL/d(parameter) into the
// layer-owned gradient tensors exposed through params().  Layers cache
// whatever activations they need between forward and backward, so a module
// instance is single-use per step (forward then backward), which is exactly
// how the Sequential / Graph containers drive them.
//
// Layers also expose the static metadata the hardware-aware design flow
// needs: output shape inference, FLOP count and parameter count for a given
// input shape.  The hwsim latency/resource models consume this metadata, so
// the same module object serves training, inference and hardware estimation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace sky::nn {

/// A learnable parameter and its gradient accumulator.
struct ParamRef {
    Tensor* value = nullptr;
    Tensor* grad = nullptr;
};

/// Static description of one leaf layer at a given input shape — the
/// interface between networks and the hwsim latency/resource models.
struct LayerInfo {
    std::string name;
    std::string kind;  ///< conv / dwconv / pwconv / bn / act / pool / fc / reorder / shuffle
    Shape in;
    Shape out;
    std::int64_t macs = 0;
    std::int64_t params = 0;
};

class Module {
public:
    virtual ~Module() = default;

    virtual Tensor forward(const Tensor& x) = 0;
    /// dL/d(input) given dL/d(output).  Parameter gradients accumulate.
    virtual Tensor backward(const Tensor& grad_out) = 0;

    /// Append this module's learnable parameters to `out`.
    virtual void collect_params(std::vector<ParamRef>& out) { (void)out; }

    /// Append non-trainable state tensors (e.g. BN running statistics) —
    /// everything beyond collect_params() that a checkpoint must carry.
    virtual void collect_state(std::vector<Tensor*>& out) { (void)out; }

    virtual void set_training(bool training) { training_ = training; }
    [[nodiscard]] bool training() const { return training_; }

    /// Pack weights into the SIMD GEMM panel layout (core/gemm.hpp) so eval
    /// forwards skip per-call repacking.  Containers recurse; layers without
    /// a GEMM formulation ignore it.  Idempotent; packs are invalidated by
    /// mutable weight() access and by entering training mode, and layers
    /// refresh them on set_training(false), so an explicit call is only
    /// needed after mutating weights while already in eval mode
    /// (sky::Detector does this after BN folding).
    virtual void prepack() {}

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual Shape out_shape(const Shape& in) const = 0;
    /// Multiply-accumulate count for one forward pass at the given input shape.
    [[nodiscard]] virtual std::int64_t macs(const Shape& in) const {
        (void)in;
        return 0;
    }
    [[nodiscard]] virtual std::int64_t param_count() const { return 0; }

    /// Layer-kind tag consumed by the hardware models.
    [[nodiscard]] virtual std::string kind() const { return "other"; }

    /// Append the leaf layers of this module (containers recurse) for input
    /// shape `in`.  Default: this module is itself a leaf.
    virtual void enumerate(const Shape& in, std::vector<LayerInfo>& out) const {
        out.push_back({name(), kind(), in, out_shape(in), macs(in), param_count()});
    }

protected:
    bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

/// Total parameter count of a set of modules.
[[nodiscard]] std::int64_t total_params(const std::vector<ParamRef>& params);

}  // namespace sky::nn
