#include "nn/shuffle.hpp"

#include <algorithm>
#include <stdexcept>

namespace sky::nn {
namespace {

/// out channel index for input channel c with C channels in g groups:
/// view as (g, C/g), transpose to (C/g, g).
int shuffled_index(int c, int channels, int groups) {
    const int per = channels / groups;
    const int grp = c / per;
    const int k = c % per;
    return k * groups + grp;
}

Tensor permute_channels(const Tensor& x, int groups, bool inverse) {
    const Shape s = x.shape();
    if (s.c % groups != 0)
        throw std::invalid_argument("ChannelShuffle: channels not divisible by groups");
    Tensor y(s);
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    for (int n = 0; n < s.n; ++n) {
        for (int c = 0; c < s.c; ++c) {
            const int to = shuffled_index(c, s.c, groups);
            const int src = inverse ? to : c;
            const int dst = inverse ? c : to;
            std::copy_n(x.plane(n, src), plane, y.plane(n, dst));
        }
    }
    return y;
}

}  // namespace

Tensor ChannelShuffle::forward(const Tensor& x) {
    return permute_channels(x, groups_, /*inverse=*/false);
}

Tensor ChannelShuffle::backward(const Tensor& grad_out) {
    return permute_channels(grad_out, groups_, /*inverse=*/true);
}

}  // namespace sky::nn
