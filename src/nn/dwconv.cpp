#include "nn/dwconv.hpp"

#include <stdexcept>

#include "core/thread_pool.hpp"

namespace sky::nn {

DWConv3::DWConv3(int channels, Rng& rng)
    : channels_(channels), weight_({channels, 1, 3, 3}), grad_weight_({channels, 1, 3, 3}) {
    weight_.kaiming(rng, 9);
}

std::int64_t DWConv3::macs(const Shape& in) const {
    return static_cast<std::int64_t>(in.n) * in.c * in.h * in.w * 9;
}

std::int64_t DWConv3::param_count() const { return static_cast<std::int64_t>(channels_) * 9; }

std::string DWConv3::name() const { return "DW-Conv3(" + std::to_string(channels_) + ")"; }

Tensor DWConv3::forward(const Tensor& x) {
    if (x.shape().c != channels_)
        throw std::invalid_argument(name() + ": got input " + x.shape().str());
    if (training_) input_ = x;
    const Shape s = x.shape();
    Tensor y(s);
    // Each (n, c) plane is an independent 3x3 convolution; parallelise over
    // the flattened plane index (disjoint outputs, thread-count invariant).
    core::parallel_for(
        0, static_cast<std::int64_t>(s.n) * channels_, 1,
        [&](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t p = p0; p < p1; ++p) {
            const int n = static_cast<int>(p / channels_);
            const int c = static_cast<int>(p % channels_);
            const float* xp = x.plane(n, c);
            float* yp = y.plane(n, c);
            const float* w = weight_.plane(c, 0);
            for (int oh = 0; oh < s.h; ++oh) {
                float* yrow = yp + static_cast<std::int64_t>(oh) * s.w;
                for (int kh = 0; kh < 3; ++kh) {
                    const int ih = oh - 1 + kh;
                    if (ih < 0 || ih >= s.h) continue;
                    const float* xrow = xp + static_cast<std::int64_t>(ih) * s.w;
                    const float w0 = w[kh * 3 + 0];
                    const float w1 = w[kh * 3 + 1];
                    const float w2 = w[kh * 3 + 2];
                    // interior columns all in-bounds: unrolled taps
                    for (int ow = 1; ow + 1 < s.w; ++ow)
                        yrow[ow] += w0 * xrow[ow - 1] + w1 * xrow[ow] + w2 * xrow[ow + 1];
                    // left edge
                    if (s.w > 0) {
                        yrow[0] += w1 * xrow[0];
                        if (s.w > 1) yrow[0] += w2 * xrow[1];
                    }
                    // right edge
                    if (s.w > 1) {
                        const int last = s.w - 1;
                        yrow[last] += w0 * xrow[last - 1] + w1 * xrow[last];
                    }
                }
            }
        }
        });
    return y;
}

Tensor DWConv3::backward(const Tensor& grad_out) {
    if (input_.empty())
        throw std::logic_error(name() +
                               ": backward() without a cached input — call forward() in "
                               "training mode first");
    const Shape s = input_.shape();
    Tensor grad_in(s);
    // Parallelise over channels only: grad_weight_[c] accumulates across the
    // batch, so one chunk owns each channel (batch loop stays sequential and
    // the accumulation order matches the seed kernel exactly).
    core::parallel_for(0, channels_, 1, [&](std::int64_t c0, std::int64_t c1) {
        for (int c = static_cast<int>(c0); c < static_cast<int>(c1); ++c) {
        for (int n = 0; n < s.n; ++n) {
            const float* xp = input_.plane(n, c);
            const float* gp = grad_out.plane(n, c);
            float* gxp = grad_in.plane(n, c);
            const float* w = weight_.plane(c, 0);
            float* gw = grad_weight_.plane(c, 0);
            for (int oh = 0; oh < s.h; ++oh) {
                const float* grow = gp + static_cast<std::int64_t>(oh) * s.w;
                for (int kh = 0; kh < 3; ++kh) {
                    const int ih = oh - 1 + kh;
                    if (ih < 0 || ih >= s.h) continue;
                    const float* xrow = xp + static_cast<std::int64_t>(ih) * s.w;
                    float* gxrow = gxp + static_cast<std::int64_t>(ih) * s.w;
                    for (int kw = 0; kw < 3; ++kw) {
                        const float wv = w[kh * 3 + kw];
                        double wacc = 0.0;
                        for (int ow = 0; ow < s.w; ++ow) {
                            const int iw = ow - 1 + kw;
                            if (iw < 0 || iw >= s.w) continue;
                            const float g = grow[ow];
                            wacc += static_cast<double>(g) * xrow[iw];
                            gxrow[iw] += wv * g;
                        }
                        gw[kh * 3 + kw] += static_cast<float>(wacc);
                    }
                }
            }
        }
        }
    });
    return grad_in;
}

void DWConv3::collect_params(std::vector<ParamRef>& out) {
    out.push_back({&weight_, &grad_weight_});
}

}  // namespace sky::nn
