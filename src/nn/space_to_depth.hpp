// Feature-map reordering (space-to-depth), Fig. 5 of the paper.
//
// A (C, H, W) map becomes (C*b^2, H/b, W/b): each b x b spatial block is
// redistributed across channels, shrinking width/height with *no information
// loss* (unlike pooling).  SkyNet uses b = 2 on the Bundle-#3 bypass so the
// high-resolution low-level features can be concatenated with the
// post-pooling high-level features.  The paper notes the pattern also
// enlarges the receptive field relative to a plain reshape; we use the YOLOv2
// convention: output channel index = c * b^2 + (dy * b + dx).
#pragma once

#include "nn/module.hpp"

namespace sky::nn {

class SpaceToDepth : public Module {
public:
    explicit SpaceToDepth(int block = 2) : block_(block) {}

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override {
        return {in.n, in.c * block_ * block_, in.h / block_, in.w / block_};
    }
    [[nodiscard]] int block() const { return block_; }
    [[nodiscard]] std::string kind() const override { return "reorder"; }

private:
    int block_;
    Shape in_shape_;
};

}  // namespace sky::nn
