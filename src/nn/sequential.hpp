// Sequential container: a chain of modules, itself a Module (so chains can
// nest inside Graph nodes and vice versa).
#pragma once

#include <utility>

#include "nn/module.hpp"

namespace sky::nn {

class Sequential : public Module {
public:
    Sequential() = default;

    /// Append a module; returns *this for fluent building.
    Sequential& add(ModulePtr m);

    /// Construct-and-append helper.
    template <typename M, typename... Args>
    Sequential& emplace(Args&&... args) {
        return add(std::make_unique<M>(std::forward<Args>(args)...));
    }

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_params(std::vector<ParamRef>& out) override;
    void collect_state(std::vector<Tensor*>& out) override;
    void set_training(bool training) override;
    void prepack() override;

    [[nodiscard]] std::string name() const override { return "Sequential"; }
    void enumerate(const Shape& in, std::vector<LayerInfo>& out) const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override;
    [[nodiscard]] std::int64_t macs(const Shape& in) const override;
    [[nodiscard]] std::int64_t param_count() const override;

    [[nodiscard]] std::size_t size() const { return modules_.size(); }
    /// Move the owned modules out (used by deployment rewrite passes); the
    /// Sequential is left empty.
    [[nodiscard]] std::vector<ModulePtr> take_modules() { return std::move(modules_); }
    [[nodiscard]] Module& at(std::size_t i) { return *modules_[i]; }
    [[nodiscard]] const Module& at(std::size_t i) const { return *modules_[i]; }

private:
    std::vector<ModulePtr> modules_;
};

}  // namespace sky::nn
