// 3x3 depthwise convolution — the "DW-Conv3" half of the SkyNet Bundle.
//
// Each channel is convolved with its own 3x3 filter (stride 1, pad 1), so the
// spatial size is preserved and the MAC count is C*H*W*9 instead of
// C^2*H*W*9.  This is the layer that makes SkyNet hardware-efficient, so it
// gets a dedicated kernel rather than going through the generic Conv2d.
#pragma once

#include "nn/module.hpp"

namespace sky::nn {

class DWConv3 : public Module {
public:
    DWConv3(int channels, Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_params(std::vector<ParamRef>& out) override;

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override { return in; }
    [[nodiscard]] std::int64_t macs(const Shape& in) const override;
    [[nodiscard]] std::int64_t param_count() const override;

    [[nodiscard]] Tensor& weight() { return weight_; }
    [[nodiscard]] const Tensor& weight() const { return weight_; }
    [[nodiscard]] int channels() const { return channels_; }
    [[nodiscard]] std::string kind() const override { return "dwconv"; }

private:
    int channels_;
    Tensor weight_;  ///< [channels, 1, 3, 3]
    Tensor grad_weight_;
    Tensor input_;
};

}  // namespace sky::nn
