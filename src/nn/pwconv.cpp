#include "nn/pwconv.hpp"

#include <stdexcept>

#include "core/gemm.hpp"

namespace sky::nn {
namespace {

/// Validated before any member uses it (division in the initializer list).
int checked_groups(int groups, int in_ch, int out_ch) {
    if (groups < 1 || in_ch % groups != 0 || out_ch % groups != 0)
        throw std::invalid_argument("PWConv1: bad group count");
    return groups;
}

// Per-thread packing scratch so concurrent forwards on one module never
// share buffers (see nn/conv.cpp).
thread_local core::PackedB tls_cols;
thread_local core::PackedA tls_weights;

}  // namespace

PWConv1::PWConv1(int in_ch, int out_ch, bool bias, Rng& rng, int groups)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      groups_(checked_groups(groups, in_ch, out_ch)),
      has_bias_(bias),
      weight_({out_ch, in_ch / groups, 1, 1}),
      bias_({1, out_ch, 1, 1}),
      grad_weight_({out_ch, in_ch / groups, 1, 1}),
      grad_bias_({1, out_ch, 1, 1}) {
    weight_.kaiming(rng, in_ch / groups);
}

std::int64_t PWConv1::macs(const Shape& in) const {
    return static_cast<std::int64_t>(in.n) * in.h * in.w * (in_ch_ / groups_) * out_ch_;
}

std::int64_t PWConv1::param_count() const {
    return static_cast<std::int64_t>(out_ch_) * (in_ch_ / groups_) +
           (has_bias_ ? out_ch_ : 0);
}

std::string PWConv1::name() const {
    std::string s = "PW-Conv1(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_);
    if (groups_ > 1) s += ",g" + std::to_string(groups_);
    return s + ")";
}

void PWConv1::set_training(bool training) {
    Module::set_training(training);
    if (training)
        wpack_.clear();
    else
        prepack();
}

void PWConv1::prepack() {
    if (training_) return;
    const int ipg = in_ch_ / groups_;
    const int opg = out_ch_ / groups_;
    if (static_cast<int>(wpack_.size()) == groups_ && !wpack_[0].empty() &&
        wpack_[0].mr == core::gemm_mr() && wpack_[0].K == ipg)
        return;
    wpack_.assign(static_cast<std::size_t>(groups_), core::PackedA{});
    for (int g = 0; g < groups_; ++g)
        core::pack_a(opg, ipg, weight_.plane(g * opg, 0), /*trans=*/false, wpack_[g]);
}

Tensor PWConv1::forward(const Tensor& x) {
    if (x.shape().c != in_ch_)
        throw std::invalid_argument(name() + ": got input " + x.shape().str());
    if (training_) input_ = x;
    const Shape s = x.shape();
    Tensor y({s.n, out_ch_, s.h, s.w});
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    const int ipg = in_ch_ / groups_;   // input channels per group
    const int opg = out_ch_ / groups_;  // output channels per group
    const bool packed = static_cast<int>(wpack_.size()) == groups_ &&
                        !wpack_[0].empty() && wpack_[0].mr == core::gemm_mr() &&
                        wpack_[0].K == ipg;
    // A 1x1 conv is one GEMM per (image, group): Y_g = W_g (opg x ipg) *
    // X_g (ipg x H*W), with the bias pre-filled into Y.
    for (int n = 0; n < s.n; ++n) {
        if (has_bias_) {
            for (int oc = 0; oc < out_ch_; ++oc) {
                const float b = bias_[oc];
                float* yp = y.plane(n, oc);
                for (std::int64_t i = 0; i < plane; ++i) yp[i] = b;
            }
        }
        for (int g = 0; g < groups_; ++g) {
            core::pack_b(ipg, static_cast<int>(plane), x.plane(n, g * ipg),
                         /*trans=*/false, tls_cols);
            const core::PackedA* wp;
            if (packed) {
                wp = &wpack_[g];
            } else {
                core::pack_a(opg, ipg, weight_.plane(g * opg, 0), /*trans=*/false,
                             tls_weights);
                wp = &tls_weights;
            }
            core::sgemm_packed(*wp, tls_cols, y.plane(n, g * opg));
        }
    }
    return y;
}

Tensor PWConv1::backward(const Tensor& grad_out) {
    if (input_.empty())
        throw std::logic_error(name() +
                               ": backward() without a cached input — call forward() in "
                               "training mode first");
    const Shape s = input_.shape();
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    const int ipg = in_ch_ / groups_;
    const int opg = out_ch_ / groups_;
    Tensor grad_in(s);
    for (int n = 0; n < s.n; ++n) {
        if (has_bias_) {
            for (int oc = 0; oc < out_ch_; ++oc) {
                const float* gp = grad_out.plane(n, oc);
                double acc = 0.0;
                for (std::int64_t i = 0; i < plane; ++i) acc += gp[i];
                grad_bias_[oc] += static_cast<float>(acc);
            }
        }
        for (int g = 0; g < groups_; ++g) {
            const float* gp = grad_out.plane(n, g * opg);
            // grad_W_g += G_g (opg x H*W) * X_g^T
            core::sgemm_nt(opg, ipg, static_cast<int>(plane), gp,
                           input_.plane(n, g * ipg), grad_weight_.plane(g * opg, 0));
            // grad_X_g = W_g^T * G_g
            core::sgemm_tn(ipg, static_cast<int>(plane), opg,
                           weight_.plane(g * opg, 0), gp, grad_in.plane(n, g * ipg));
        }
    }
    return grad_in;
}

void PWConv1::collect_params(std::vector<ParamRef>& out) {
    out.push_back({&weight_, &grad_weight_});
    if (has_bias_) out.push_back({&bias_, &grad_bias_});
}

}  // namespace sky::nn
