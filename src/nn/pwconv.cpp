#include "nn/pwconv.hpp"

#include <stdexcept>

namespace sky::nn {
namespace {

/// Validated before any member uses it (division in the initializer list).
int checked_groups(int groups, int in_ch, int out_ch) {
    if (groups < 1 || in_ch % groups != 0 || out_ch % groups != 0)
        throw std::invalid_argument("PWConv1: bad group count");
    return groups;
}

}  // namespace

PWConv1::PWConv1(int in_ch, int out_ch, bool bias, Rng& rng, int groups)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      groups_(checked_groups(groups, in_ch, out_ch)),
      has_bias_(bias),
      weight_({out_ch, in_ch / groups, 1, 1}),
      bias_({1, out_ch, 1, 1}),
      grad_weight_({out_ch, in_ch / groups, 1, 1}),
      grad_bias_({1, out_ch, 1, 1}) {
    weight_.kaiming(rng, in_ch / groups);
}

std::int64_t PWConv1::macs(const Shape& in) const {
    return static_cast<std::int64_t>(in.n) * in.h * in.w * (in_ch_ / groups_) * out_ch_;
}

std::int64_t PWConv1::param_count() const {
    return static_cast<std::int64_t>(out_ch_) * (in_ch_ / groups_) +
           (has_bias_ ? out_ch_ : 0);
}

std::string PWConv1::name() const {
    std::string s = "PW-Conv1(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_);
    if (groups_ > 1) s += ",g" + std::to_string(groups_);
    return s + ")";
}

Tensor PWConv1::forward(const Tensor& x) {
    if (x.shape().c != in_ch_)
        throw std::invalid_argument(name() + ": got input " + x.shape().str());
    if (training_) input_ = x;
    const Shape s = x.shape();
    Tensor y({s.n, out_ch_, s.h, s.w});
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    const int ipg = in_ch_ / groups_;   // input channels per group
    const int opg = out_ch_ / groups_;  // output channels per group
    for (int n = 0; n < s.n; ++n) {
        for (int oc = 0; oc < out_ch_; ++oc) {
            const int g = oc / opg;
            float* yp = y.plane(n, oc);
            if (has_bias_) {
                const float b = bias_[oc];
                for (std::int64_t i = 0; i < plane; ++i) yp[i] = b;
            }
            const float* wrow = weight_.plane(oc, 0);
            for (int k = 0; k < ipg; ++k) {
                const float wv = wrow[k];
                if (wv == 0.0f) continue;
                const float* xp = x.plane(n, g * ipg + k);
                for (std::int64_t i = 0; i < plane; ++i) yp[i] += wv * xp[i];
            }
        }
    }
    return y;
}

Tensor PWConv1::backward(const Tensor& grad_out) {
    const Shape s = input_.shape();
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    const int ipg = in_ch_ / groups_;
    const int opg = out_ch_ / groups_;
    Tensor grad_in(s);
    for (int n = 0; n < s.n; ++n) {
        for (int oc = 0; oc < out_ch_; ++oc) {
            const int g = oc / opg;
            const float* gp = grad_out.plane(n, oc);
            if (has_bias_) {
                double acc = 0.0;
                for (std::int64_t i = 0; i < plane; ++i) acc += gp[i];
                grad_bias_[oc] += static_cast<float>(acc);
            }
            const float* wrow = weight_.plane(oc, 0);
            float* gwrow = grad_weight_.plane(oc, 0);
            for (int k = 0; k < ipg; ++k) {
                const float* xp = input_.plane(n, g * ipg + k);
                float* gxp = grad_in.plane(n, g * ipg + k);
                const float wv = wrow[k];
                double wacc = 0.0;
                for (std::int64_t i = 0; i < plane; ++i) {
                    const float gv = gp[i];
                    wacc += static_cast<double>(gv) * xp[i];
                    gxp[i] += wv * gv;
                }
                gwrow[k] += static_cast<float>(wacc);
            }
        }
    }
    return grad_in;
}

void PWConv1::collect_params(std::vector<ParamRef>& out) {
    out.push_back({&weight_, &grad_weight_});
    if (has_bias_) out.push_back({&bias_, &grad_bias_});
}

}  // namespace sky::nn
