// 2-D batch normalisation (per-channel), training and inference modes.
//
// In training mode statistics come from the current batch and running
// estimates are updated with `momentum`; in eval mode the running estimates
// are used.  The backward pass implements the full batch-norm gradient
// (including the dependence of mean/var on the input).
#pragma once

#include "nn/module.hpp"

namespace sky::nn {

class BatchNorm2d : public Module {
public:
    explicit BatchNorm2d(int channels, float momentum = 0.1f, float eps = 1e-5f);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_params(std::vector<ParamRef>& out) override;
    void collect_state(std::vector<Tensor*>& out) override;

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override { return in; }
    [[nodiscard]] std::int64_t param_count() const override { return 2LL * channels_; }
    [[nodiscard]] std::string kind() const override { return "bn"; }
    [[nodiscard]] int channels() const { return channels_; }

    [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
    [[nodiscard]] const Tensor& running_var() const { return running_var_; }
    [[nodiscard]] Tensor& gamma() { return gamma_; }
    [[nodiscard]] Tensor& beta() { return beta_; }

    /// Fold (gamma, beta, running stats) into an equivalent per-channel
    /// (scale, shift) pair, used by the quantised inference path.
    void fused_affine(std::vector<float>& scale, std::vector<float>& shift) const;

private:
    int channels_;
    float momentum_, eps_;
    Tensor gamma_, beta_;
    Tensor grad_gamma_, grad_beta_;
    Tensor running_mean_, running_var_;
    // Caches for backward.
    Tensor xhat_;
    std::vector<float> batch_inv_std_;
};

}  // namespace sky::nn
