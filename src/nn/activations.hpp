// Elementwise activations: ReLU, ReLU6, LeakyReLU, Sigmoid.
//
// ReLU6 (clip to [0, 6]) is the activation SkyNet adopts in Stage 3 of the
// bottom-up flow: the bounded range needs fewer bits for fixed-point feature
// maps, which is what Table 4 / Table 7 measure.
#pragma once

#include "nn/module.hpp"

namespace sky::nn {

/// Which activation a Bundle uses; switchable for the Table 4 ablation.
enum class Act { kReLU, kReLU6, kLeaky, kSigmoid };

[[nodiscard]] const char* act_name(Act a);

class Activation : public Module {
public:
    explicit Activation(Act kind, float leaky_slope = 0.1f);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override { return in; }
    [[nodiscard]] Act act_kind() const { return kind_; }
    [[nodiscard]] float leaky_slope() const { return slope_; }
    [[nodiscard]] std::string kind() const override { return "act"; }

private:
    Act kind_;
    float slope_;
    Tensor input_;
};

}  // namespace sky::nn
