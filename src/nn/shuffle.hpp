// Channel shuffle (ShuffleNet): after a grouped 1x1 conv, interleave the
// channels across groups so information flows between groups.  Pure
// permutation — backward applies the inverse permutation.
#pragma once

#include "nn/module.hpp"

namespace sky::nn {

class ChannelShuffle : public Module {
public:
    explicit ChannelShuffle(int groups) : groups_(groups) {}

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;

    [[nodiscard]] std::string name() const override {
        return "ChannelShuffle(g=" + std::to_string(groups_) + ")";
    }
    [[nodiscard]] Shape out_shape(const Shape& in) const override { return in; }
    [[nodiscard]] std::string kind() const override { return "shuffle"; }
    [[nodiscard]] int groups() const { return groups_; }

private:
    int groups_;
};

}  // namespace sky::nn
