#include "nn/fm_hook.hpp"

namespace sky::nn {
namespace {

FmHook& hook_slot() {
    static FmHook hook;
    return hook;
}

}  // namespace

void set_fm_hook(FmHook hook) { hook_slot() = std::move(hook); }

const FmHook& fm_hook() { return hook_slot(); }

FmHookGuard::FmHookGuard(FmHook hook) : previous_(hook_slot()) {
    hook_slot() = std::move(hook);
}

FmHookGuard::~FmHookGuard() { hook_slot() = std::move(previous_); }

}  // namespace sky::nn
