#include "nn/linear.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/scratch.hpp"
#include "core/thread_pool.hpp"

namespace sky::nn {
namespace {

thread_local core::PackedB tls_cols;
thread_local core::PackedA tls_weights;

}  // namespace

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features, 1, 1}),
      bias_({1, out_features, 1, 1}),
      grad_weight_({out_features, in_features, 1, 1}),
      grad_bias_({1, out_features, 1, 1}) {
    weight_.kaiming(rng, in_features);
}

std::string Linear::name() const {
    return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

void Linear::set_training(bool training) {
    Module::set_training(training);
    if (training)
        wpack_.clear();
    else
        prepack();
}

void Linear::prepack() {
    if (training_) return;
    if (!wpack_.empty() && wpack_.mr == core::gemm_mr() && wpack_.K == in_) return;
    core::pack_a(out_, in_, weight_.data(), /*trans=*/false, wpack_);
}

Tensor Linear::forward(const Tensor& x) {
    if (x.shape().per_item() != in_)
        throw std::invalid_argument(name() + ": got input " + x.shape().str());
    Tensor flat = x.reshaped({x.shape().n, in_, 1, 1});
    if (training_) {
        input_ = flat;
        in_shape_ = x.shape();
    }
    const int n = flat.shape().n;
    Tensor y({n, out_, 1, 1});
    if (!training_) {
        // Eval: Y^T (out x n) = W (out x in) * X^T through the packed SIMD
        // GEMM.  X is stored n x in, so pack_b reads it transposed; the
        // out x n product lands in scratch and transposes into y with bias.
        const core::PackedA* wp = &wpack_;
        if (wpack_.empty() || wpack_.mr != core::gemm_mr() || wpack_.K != in_) {
            core::pack_a(out_, in_, weight_.data(), /*trans=*/false, tls_weights);
            wp = &tls_weights;
        }
        core::pack_b(in_, n, flat.data(), /*trans=*/true, tls_cols);
        const std::size_t tmp_sz =
            static_cast<std::size_t>(out_) * static_cast<std::size_t>(n);
        std::vector<float>& tmp = core::tls_scratch(core::ScratchSlot::kLayerTmp, tmp_sz);
        std::fill(tmp.begin(), tmp.begin() + static_cast<std::ptrdiff_t>(tmp_sz), 0.0f);
        core::sgemm_packed(*wp, tls_cols, tmp.data());
        for (int b = 0; b < n; ++b) {
            float* yp = y.plane(b, 0);
            for (int o = 0; o < out_; ++o)
                yp[o] = bias_[o] + tmp[static_cast<std::size_t>(o) * n + b];
        }
        return y;
    }
    // Training: each y[b][o] is one sequential double-precision dot product,
    // identical to the seed kernel for any thread count (the optimizer and
    // gradient-check tests rely on this accuracy).
    core::parallel_for(0, out_, 8, [&](std::int64_t o0, std::int64_t o1) {
        for (int o = static_cast<int>(o0); o < static_cast<int>(o1); ++o) {
            const float* wrow = weight_.plane(o, 0);
            for (int b = 0; b < n; ++b) {
                const float* xp = flat.plane(b, 0);
                double acc = bias_[o];
                for (int i = 0; i < in_; ++i) acc += static_cast<double>(wrow[i]) * xp[i];
                y.plane(b, 0)[o] = static_cast<float>(acc);
            }
        }
    });
    return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
    if (input_.empty())
        throw std::logic_error(name() +
                               ": backward() without a cached input — call forward() in "
                               "training mode first");
    const int n = input_.shape().n;
    Tensor gi({n, in_, 1, 1});
    // Two disjoint-output passes: per-batch-row input gradients, then
    // per-feature weight/bias gradients (batch accumulation stays ascending,
    // matching the seed order).
    core::parallel_for(0, n, 1, [&](std::int64_t b0, std::int64_t b1) {
        for (int b = static_cast<int>(b0); b < static_cast<int>(b1); ++b) {
            const float* gp = grad_out.plane(b, 0);
            float* gxp = gi.plane(b, 0);
            for (int o = 0; o < out_; ++o) {
                const float g = gp[o];
                const float* wrow = weight_.plane(o, 0);
                for (int i = 0; i < in_; ++i) gxp[i] += g * wrow[i];
            }
        }
    });
    core::parallel_for(0, out_, 8, [&](std::int64_t o0, std::int64_t o1) {
        for (int o = static_cast<int>(o0); o < static_cast<int>(o1); ++o) {
            float* gwrow = grad_weight_.plane(o, 0);
            for (int b = 0; b < n; ++b) {
                const float g = grad_out.plane(b, 0)[o];
                grad_bias_[o] += g;
                const float* xp = input_.plane(b, 0);
                for (int i = 0; i < in_; ++i) gwrow[i] += g * xp[i];
            }
        }
    });
    return gi.reshaped(in_shape_);
}

void Linear::collect_params(std::vector<ParamRef>& out) {
    out.push_back({&weight_, &grad_weight_});
    out.push_back({&bias_, &grad_bias_});
}

}  // namespace sky::nn
