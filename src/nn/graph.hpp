// Small DAG container for networks with skip connections.
//
// Supports exactly the topologies this reproduction needs: single-input
// chains with channel-concatenation joins (SkyNet's bypass, Fig. 4) and
// elementwise-add joins (ResNet residuals).  Nodes are added in topological
// order by construction; forward caches every node output, backward
// accumulates gradients in reverse order.  Graph is itself a Module so a
// residual block can live inside a Sequential and vice versa.
#pragma once

#include "nn/module.hpp"

namespace sky::nn {

class Graph : public Module {
public:
    Graph();

    /// Node id of the graph input (always 0).
    [[nodiscard]] int input() const { return 0; }

    /// Add a single-input module node; returns its node id.
    int add(ModulePtr m, int in);
    /// Channel concatenation of several nodes (same n/h/w).
    int add_concat(std::vector<int> ins);
    /// Elementwise sum of two nodes (same shape).
    int add_add(int a, int b);

    /// Designate the node whose output forward() returns.
    void set_output(int node);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_params(std::vector<ParamRef>& out) override;
    void collect_state(std::vector<Tensor*>& out) override;
    void set_training(bool training) override;
    void prepack() override;

    [[nodiscard]] std::string name() const override { return "Graph"; }
    void enumerate(const Shape& in, std::vector<LayerInfo>& out) const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override;
    [[nodiscard]] std::int64_t macs(const Shape& in) const override;
    [[nodiscard]] std::int64_t param_count() const override;

    /// Output tensor of an arbitrary node after the last forward()
    /// (used by trackers that read intermediate features).
    [[nodiscard]] const Tensor& node_output(int node) const;

    // --- Introspection for rewrite passes (deploy::fold_graph_bn etc.) ---
    enum class NodeKind { kInput, kModule, kConcat, kAdd };
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
    [[nodiscard]] NodeKind node_kind(std::size_t i) const {
        switch (nodes_[i].kind) {
            case Kind::kInput: return NodeKind::kInput;
            case Kind::kModule: return NodeKind::kModule;
            case Kind::kConcat: return NodeKind::kConcat;
            case Kind::kAdd: return NodeKind::kAdd;
        }
        return NodeKind::kInput;
    }
    [[nodiscard]] int output_node() const { return output_; }
    /// Module owned by a node, or nullptr for input/concat/add nodes.
    [[nodiscard]] Module* node_module(std::size_t i) { return nodes_[i].module.get(); }
    [[nodiscard]] const Module* node_module(std::size_t i) const {
        return nodes_[i].module.get();
    }
    [[nodiscard]] const std::vector<int>& node_inputs(std::size_t i) const {
        return nodes_[i].inputs;
    }
    /// Swap a module node's implementation (shapes must stay compatible);
    /// returns the displaced module so wrappers (obs::GraphProfiler) can
    /// reinstall it later.
    ModulePtr replace_module(std::size_t i, ModulePtr m) {
        std::swap(nodes_[i].module, m);
        return m;
    }

private:
    enum class Kind { kInput, kModule, kConcat, kAdd };
    struct Node {
        Kind kind;
        ModulePtr module;        // kModule only
        std::vector<int> inputs;
        std::vector<int> concat_channels;  // filled during forward for kConcat
    };

    /// Shapes of every node for a given input shape (for macs/out_shape).
    [[nodiscard]] std::vector<Shape> infer_shapes(const Shape& in) const;

    std::vector<Node> nodes_;
    int output_ = 0;
    std::vector<Tensor> outputs_;  // per-node forward cache
};

}  // namespace sky::nn
