#include "nn/space_to_depth.hpp"

#include <stdexcept>

namespace sky::nn {

std::string SpaceToDepth::name() const {
    return "FMReorder(b=" + std::to_string(block_) + ")";
}

Tensor SpaceToDepth::forward(const Tensor& x) {
    const Shape s = x.shape();
    if (s.h % block_ != 0 || s.w % block_ != 0)
        throw std::invalid_argument(name() + ": input " + s.str() +
                                    " not divisible by block");
    in_shape_ = s;
    const Shape os = out_shape(s);
    Tensor y(os);
    for (int n = 0; n < s.n; ++n) {
        for (int c = 0; c < s.c; ++c) {
            const float* xp = x.plane(n, c);
            for (int dy = 0; dy < block_; ++dy) {
                for (int dx = 0; dx < block_; ++dx) {
                    float* yp = y.plane(n, c * block_ * block_ + dy * block_ + dx);
                    for (int oh = 0; oh < os.h; ++oh) {
                        const float* xrow =
                            xp + static_cast<std::int64_t>(oh * block_ + dy) * s.w + dx;
                        float* yrow = yp + static_cast<std::int64_t>(oh) * os.w;
                        for (int ow = 0; ow < os.w; ++ow) yrow[ow] = xrow[ow * block_];
                    }
                }
            }
        }
    }
    return y;
}

Tensor SpaceToDepth::backward(const Tensor& grad_out) {
    const Shape os = grad_out.shape();
    Tensor gi(in_shape_);
    for (int n = 0; n < in_shape_.n; ++n) {
        for (int c = 0; c < in_shape_.c; ++c) {
            float* gxp = gi.plane(n, c);
            for (int dy = 0; dy < block_; ++dy) {
                for (int dx = 0; dx < block_; ++dx) {
                    const float* gp =
                        grad_out.plane(n, c * block_ * block_ + dy * block_ + dx);
                    for (int oh = 0; oh < os.h; ++oh) {
                        float* gxrow = gxp +
                                       static_cast<std::int64_t>(oh * block_ + dy) *
                                           in_shape_.w +
                                       dx;
                        const float* grow = gp + static_cast<std::int64_t>(oh) * os.w;
                        for (int ow = 0; ow < os.w; ++ow) gxrow[ow * block_] = grow[ow];
                    }
                }
            }
        }
    }
    return gi;
}

}  // namespace sky::nn
