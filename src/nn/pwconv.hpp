// 1x1 pointwise convolution — the "PW-Conv1" half of the SkyNet Bundle.
//
// A 1x1 convolution is a matrix multiply over the channel axis applied at
// every spatial location, and it runs as exactly that: one packed SIMD GEMM
// per (image, group) through the sky::core kernel engine.  Eval forwards
// reuse per-group prepacked weight panels (core::PackedA), so the hot path
// only packs the activations.
#pragma once

#include <vector>

#include "core/gemm.hpp"
#include "nn/module.hpp"

namespace sky::nn {

class PWConv1 : public Module {
public:
    /// `groups` > 1 gives a grouped 1x1 conv (ShuffleNet-style); in_ch and
    /// out_ch must both be divisible by groups.
    PWConv1(int in_ch, int out_ch, bool bias, Rng& rng, int groups = 1);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_params(std::vector<ParamRef>& out) override;
    void set_training(bool training) override;
    void prepack() override;

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override {
        return {in.n, out_ch_, in.h, in.w};
    }
    [[nodiscard]] std::int64_t macs(const Shape& in) const override;
    [[nodiscard]] std::int64_t param_count() const override;

    /// Mutable access invalidates the prepacked weight panels (see
    /// Conv2d::weight()).
    [[nodiscard]] Tensor& weight() {
        wpack_.clear();
        return weight_;
    }
    [[nodiscard]] const Tensor& weight() const { return weight_; }
    [[nodiscard]] Tensor& bias() { return bias_; }
    [[nodiscard]] const Tensor& bias() const { return bias_; }
    [[nodiscard]] int in_channels() const { return in_ch_; }
    [[nodiscard]] int out_channels() const { return out_ch_; }
    [[nodiscard]] int groups() const { return groups_; }
    [[nodiscard]] std::string kind() const override { return "pwconv"; }
    [[nodiscard]] bool has_bias() const { return has_bias_; }
    void enable_bias() { has_bias_ = true; }

private:
    int in_ch_, out_ch_, groups_;
    bool has_bias_;
    Tensor weight_;  ///< [out_ch, in_ch/groups, 1, 1]
    Tensor bias_;
    Tensor grad_weight_;
    Tensor grad_bias_;
    Tensor input_;
    std::vector<core::PackedA> wpack_;  ///< one prepacked panel set per group
};

}  // namespace sky::nn
