#include "nn/batchnorm.hpp"

#include <cmath>

#include <stdexcept>

#include "core/thread_pool.hpp"
#include "nn/fm_hook.hpp"

namespace sky::nn {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({1, channels, 1, 1}, 1.0f),
      beta_({1, channels, 1, 1}),
      grad_gamma_({1, channels, 1, 1}),
      grad_beta_({1, channels, 1, 1}),
      running_mean_({1, channels, 1, 1}),
      running_var_({1, channels, 1, 1}, 1.0f) {}

std::string BatchNorm2d::name() const { return "BN(" + std::to_string(channels_) + ")"; }

Tensor BatchNorm2d::forward(const Tensor& x) {
    if (x.shape().c != channels_)
        throw std::invalid_argument(name() + ": got input " + x.shape().str());
    const Shape s = x.shape();
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    const std::int64_t count = static_cast<std::int64_t>(s.n) * plane;
    Tensor y(s);
    if (training_) {
        xhat_ = Tensor(s);
        batch_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
        // Channels normalise independently: each chunk owns its channels'
        // statistics, running-stat updates and output planes.
        core::parallel_for(0, channels_, 1, [&](std::int64_t c0, std::int64_t c1) {
        for (int c = static_cast<int>(c0); c < static_cast<int>(c1); ++c) {
            double sum = 0.0, sq = 0.0;
            for (int n = 0; n < s.n; ++n) {
                const float* xp = x.plane(n, c);
                for (std::int64_t i = 0; i < plane; ++i) {
                    sum += xp[i];
                    sq += static_cast<double>(xp[i]) * xp[i];
                }
            }
            const double mean = sum / static_cast<double>(count);
            const double var = sq / static_cast<double>(count) - mean * mean;
            const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
            batch_inv_std_[static_cast<std::size_t>(c)] = inv_std;
            running_mean_[c] =
                (1.0f - momentum_) * running_mean_[c] + momentum_ * static_cast<float>(mean);
            running_var_[c] =
                (1.0f - momentum_) * running_var_[c] + momentum_ * static_cast<float>(var);
            const float g = gamma_[c], b = beta_[c], m = static_cast<float>(mean);
            for (int n = 0; n < s.n; ++n) {
                const float* xp = x.plane(n, c);
                float* hp = xhat_.plane(n, c);
                float* yp = y.plane(n, c);
                for (std::int64_t i = 0; i < plane; ++i) {
                    const float h = (xp[i] - m) * inv_std;
                    hp[i] = h;
                    yp[i] = g * h + b;
                }
            }
        }
        });
    } else {
        core::parallel_for(0, channels_, 1, [&](std::int64_t c0, std::int64_t c1) {
        for (int c = static_cast<int>(c0); c < static_cast<int>(c1); ++c) {
            const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
            const float g = gamma_[c] * inv_std;
            const float b = beta_[c] - gamma_[c] * running_mean_[c] * inv_std;
            for (int n = 0; n < s.n; ++n) {
                const float* xp = x.plane(n, c);
                float* yp = y.plane(n, c);
                for (std::int64_t i = 0; i < plane; ++i) yp[i] = g * xp[i] + b;
            }
        }
        });
        // In deployment BN folds into the conv and its output is what the
        // shared feature-map buffer stores — so the FM hook applies here too.
        if (fm_hook()) fm_hook()(y);
    }
    return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
    const Shape s = grad_out.shape();
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    const std::int64_t count = static_cast<std::int64_t>(s.n) * plane;
    Tensor grad_in(s);
    core::parallel_for(0, channels_, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (int c = static_cast<int>(c0); c < static_cast<int>(c1); ++c) {
        double sum_g = 0.0, sum_gh = 0.0;
        for (int n = 0; n < s.n; ++n) {
            const float* gp = grad_out.plane(n, c);
            const float* hp = xhat_.plane(n, c);
            for (std::int64_t i = 0; i < plane; ++i) {
                sum_g += gp[i];
                sum_gh += static_cast<double>(gp[i]) * hp[i];
            }
        }
        grad_beta_[c] += static_cast<float>(sum_g);
        grad_gamma_[c] += static_cast<float>(sum_gh);
        const float g = gamma_[c];
        const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
        const float mean_g = static_cast<float>(sum_g / static_cast<double>(count));
        const float mean_gh = static_cast<float>(sum_gh / static_cast<double>(count));
        for (int n = 0; n < s.n; ++n) {
            const float* gp = grad_out.plane(n, c);
            const float* hp = xhat_.plane(n, c);
            float* op = grad_in.plane(n, c);
            for (std::int64_t i = 0; i < plane; ++i)
                op[i] = g * inv_std * (gp[i] - mean_g - hp[i] * mean_gh);
        }
    }
    });
    return grad_in;
}

void BatchNorm2d::collect_params(std::vector<ParamRef>& out) {
    out.push_back({&gamma_, &grad_gamma_});
    out.push_back({&beta_, &grad_beta_});
}

void BatchNorm2d::collect_state(std::vector<Tensor*>& out) {
    out.push_back(&running_mean_);
    out.push_back(&running_var_);
}

void BatchNorm2d::fused_affine(std::vector<float>& scale, std::vector<float>& shift) const {
    scale.resize(static_cast<std::size_t>(channels_));
    shift.resize(static_cast<std::size_t>(channels_));
    for (int c = 0; c < channels_; ++c) {
        const float inv_std = 1.0f / std::sqrt(running_var_[c] + eps_);
        scale[static_cast<std::size_t>(c)] = gamma_[c] * inv_std;
        shift[static_cast<std::size_t>(c)] = beta_[c] - gamma_[c] * running_mean_[c] * inv_std;
    }
}

}  // namespace sky::nn
