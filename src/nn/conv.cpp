#include "nn/conv.hpp"

#include <stdexcept>

namespace sky::nn {

Conv2d::Conv2d(int in_ch, int out_ch, int k, int stride, int pad, bool bias, Rng& rng)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      k_(k),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_({out_ch, in_ch, k, k}),
      bias_({1, out_ch, 1, 1}),
      grad_weight_({out_ch, in_ch, k, k}),
      grad_bias_({1, out_ch, 1, 1}) {
    weight_.kaiming(rng, in_ch * k * k);
}

Shape Conv2d::out_shape(const Shape& in) const {
    const int oh = (in.h + 2 * pad_ - k_) / stride_ + 1;
    const int ow = (in.w + 2 * pad_ - k_) / stride_ + 1;
    return {in.n, out_ch_, oh, ow};
}

std::int64_t Conv2d::macs(const Shape& in) const {
    const Shape o = out_shape(in);
    return static_cast<std::int64_t>(o.n) * o.c * o.h * o.w * in_ch_ * k_ * k_;
}

std::int64_t Conv2d::param_count() const {
    return static_cast<std::int64_t>(out_ch_) * in_ch_ * k_ * k_ +
           (has_bias_ ? out_ch_ : 0);
}

std::string Conv2d::name() const {
    return "Conv" + std::to_string(k_) + "x" + std::to_string(k_) + "(" +
           std::to_string(in_ch_) + "->" + std::to_string(out_ch_) + ",s" +
           std::to_string(stride_) + ")";
}

Tensor Conv2d::forward(const Tensor& x) {
    if (x.shape().c != in_ch_)
        throw std::invalid_argument(name() + ": got input " + x.shape().str());
    if (training_) input_ = x;
    const Shape in = x.shape();
    const Shape os = out_shape(in);
    Tensor y(os);
    for (int n = 0; n < in.n; ++n) {
        for (int oc = 0; oc < out_ch_; ++oc) {
            float* yp = y.plane(n, oc);
            if (has_bias_) {
                const float b = bias_[oc];
                for (std::int64_t i = 0; i < static_cast<std::int64_t>(os.h) * os.w; ++i)
                    yp[i] = b;
            }
            for (int ic = 0; ic < in_ch_; ++ic) {
                const float* xp = x.plane(n, ic);
                const float* wp = weight_.plane(oc, ic);  // k x k
                for (int kh = 0; kh < k_; ++kh) {
                    for (int kw = 0; kw < k_; ++kw) {
                        const float wv = wp[kh * k_ + kw];
                        if (wv == 0.0f) continue;
                        for (int oh = 0; oh < os.h; ++oh) {
                            const int ih = oh * stride_ - pad_ + kh;
                            if (ih < 0 || ih >= in.h) continue;
                            const float* xrow = xp + static_cast<std::int64_t>(ih) * in.w;
                            float* yrow = yp + static_cast<std::int64_t>(oh) * os.w;
                            for (int ow = 0; ow < os.w; ++ow) {
                                const int iw = ow * stride_ - pad_ + kw;
                                if (iw < 0 || iw >= in.w) continue;
                                yrow[ow] += wv * xrow[iw];
                            }
                        }
                    }
                }
            }
        }
    }
    return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
    const Shape in = input_.shape();
    const Shape os = grad_out.shape();
    Tensor grad_in(in);
    for (int n = 0; n < in.n; ++n) {
        for (int oc = 0; oc < out_ch_; ++oc) {
            const float* gp = grad_out.plane(n, oc);
            if (has_bias_) {
                double acc = 0.0;
                for (std::int64_t i = 0; i < static_cast<std::int64_t>(os.h) * os.w; ++i)
                    acc += gp[i];
                grad_bias_[oc] += static_cast<float>(acc);
            }
            for (int ic = 0; ic < in_ch_; ++ic) {
                const float* xp = input_.plane(n, ic);
                float* gxp = grad_in.plane(n, ic);
                const float* wp = weight_.plane(oc, ic);
                float* gwp = grad_weight_.plane(oc, ic);
                for (int kh = 0; kh < k_; ++kh) {
                    for (int kw = 0; kw < k_; ++kw) {
                        const float wv = wp[kh * k_ + kw];
                        double wacc = 0.0;
                        for (int oh = 0; oh < os.h; ++oh) {
                            const int ih = oh * stride_ - pad_ + kh;
                            if (ih < 0 || ih >= in.h) continue;
                            const float* xrow = xp + static_cast<std::int64_t>(ih) * in.w;
                            float* gxrow = gxp + static_cast<std::int64_t>(ih) * in.w;
                            const float* grow = gp + static_cast<std::int64_t>(oh) * os.w;
                            for (int ow = 0; ow < os.w; ++ow) {
                                const int iw = ow * stride_ - pad_ + kw;
                                if (iw < 0 || iw >= in.w) continue;
                                const float g = grow[ow];
                                wacc += static_cast<double>(g) * xrow[iw];
                                gxrow[iw] += wv * g;
                            }
                        }
                        gwp[kh * k_ + kw] += static_cast<float>(wacc);
                    }
                }
            }
        }
    }
    return grad_in;
}

void Conv2d::collect_params(std::vector<ParamRef>& out) {
    out.push_back({&weight_, &grad_weight_});
    if (has_bias_) out.push_back({&bias_, &grad_bias_});
}

}  // namespace sky::nn
