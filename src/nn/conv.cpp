#include "nn/conv.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/gemm.hpp"
#include "core/scratch.hpp"
#include "core/thread_pool.hpp"

namespace sky::nn {
namespace {

// Per-thread lowering/packing scratch: forward() must be reentrant across
// threads on the same module (tests/tsan_smoke.cpp hammers exactly this).
thread_local core::PackedB tls_cols;
thread_local core::PackedA tls_weights;

}  // namespace

Conv2d::Conv2d(int in_ch, int out_ch, int k, int stride, int pad, bool bias, Rng& rng)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      k_(k),
      stride_(stride),
      pad_(pad),
      has_bias_(bias),
      weight_({out_ch, in_ch, k, k}),
      bias_({1, out_ch, 1, 1}),
      grad_weight_({out_ch, in_ch, k, k}),
      grad_bias_({1, out_ch, 1, 1}) {
    weight_.kaiming(rng, in_ch * k * k);
}

Shape Conv2d::out_shape(const Shape& in) const {
    const int oh = (in.h + 2 * pad_ - k_) / stride_ + 1;
    const int ow = (in.w + 2 * pad_ - k_) / stride_ + 1;
    return {in.n, out_ch_, oh, ow};
}

std::int64_t Conv2d::macs(const Shape& in) const {
    const Shape o = out_shape(in);
    return static_cast<std::int64_t>(o.n) * o.c * o.h * o.w * in_ch_ * k_ * k_;
}

std::int64_t Conv2d::param_count() const {
    return static_cast<std::int64_t>(out_ch_) * in_ch_ * k_ * k_ +
           (has_bias_ ? out_ch_ : 0);
}

std::string Conv2d::name() const {
    return "Conv" + std::to_string(k_) + "x" + std::to_string(k_) + "(" +
           std::to_string(in_ch_) + "->" + std::to_string(out_ch_) + ",s" +
           std::to_string(stride_) + ")";
}

void Conv2d::set_training(bool training) {
    Module::set_training(training);
    if (training)
        wpack_.clear();  // the optimizer is about to rewrite the weights
    else
        prepack();
}

void Conv2d::prepack() {
    if (training_) return;
    const int K = in_ch_ * k_ * k_;
    if (!wpack_.empty() && wpack_.mr == core::gemm_mr() && wpack_.K == K) return;
    core::pack_a(out_ch_, K, weight_.data(), /*trans=*/false, wpack_);
}

Tensor Conv2d::forward(const Tensor& x) {
    if (x.shape().c != in_ch_)
        throw std::invalid_argument(name() + ": got input " + x.shape().str());
    if (training_) input_ = x;
    const Shape in = x.shape();
    const Shape os = out_shape(in);
    Tensor y(os);
    const int K = in_ch_ * k_ * k_;
    const std::int64_t ocols = static_cast<std::int64_t>(os.h) * os.w;
    // Use the prepacked weight panels when valid for the active kernel;
    // otherwise pack into thread-local scratch (never into the shared member —
    // concurrent forwards on one module must not mutate shared state).
    const core::PackedA* wp = &wpack_;
    if (wpack_.empty() || wpack_.mr != core::gemm_mr() || wpack_.K != K) {
        core::pack_a(out_ch_, K, weight_.data(), /*trans=*/false, tls_weights);
        wp = &tls_weights;
    }
    for (int n = 0; n < in.n; ++n) {
        core::im2col_packed(x.plane(n, 0), in.c, in.h, in.w, k_, stride_, pad_, os.h,
                            os.w, tls_cols);
        float* yp = y.plane(n, 0);
        if (has_bias_) {
            for (int oc = 0; oc < out_ch_; ++oc) {
                const float b = bias_[oc];
                float* row = yp + oc * ocols;
                for (std::int64_t i = 0; i < ocols; ++i) row[i] = b;
            }
        }
        core::sgemm_packed(*wp, tls_cols, yp);
    }
    return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
    if (input_.empty())
        throw std::logic_error(name() +
                               ": backward() without a cached input — call forward() in "
                               "training mode first");
    const Shape in = input_.shape();
    const Shape os = grad_out.shape();
    Tensor grad_in(in);
    const int K = in_ch_ * k_ * k_;
    const std::int64_t ocols = static_cast<std::int64_t>(os.h) * os.w;
    const std::size_t cols_sz =
        static_cast<std::size_t>(K) * static_cast<std::size_t>(ocols);
    std::vector<float>& col = core::tls_scratch(core::ScratchSlot::kIm2col, cols_sz);
    std::vector<float>& gcol = core::tls_scratch(core::ScratchSlot::kCol2im, cols_sz);
    for (int n = 0; n < in.n; ++n) {
        const float* gp = grad_out.plane(n, 0);
        if (has_bias_) {
            for (int oc = 0; oc < out_ch_; ++oc) {
                const float* row = gp + oc * ocols;
                double acc = 0.0;
                for (std::int64_t i = 0; i < ocols; ++i) acc += row[i];
                grad_bias_[oc] += static_cast<float>(acc);
            }
        }
        // grad_weight += grad_out * im2col(input)^T
        core::im2col(input_.plane(n, 0), in.c, in.h, in.w, k_, stride_, pad_, os.h, os.w,
                     col.data());
        core::sgemm_nt(out_ch_, K, static_cast<int>(ocols), gp, col.data(),
                       grad_weight_.data());
        // grad_in = col2im(W^T * grad_out)
        std::fill(gcol.begin(), gcol.begin() + static_cast<std::ptrdiff_t>(cols_sz),
                  0.0f);
        core::sgemm_tn(K, static_cast<int>(ocols), out_ch_, weight_.data(), gp,
                       gcol.data());
        core::col2im(gcol.data(), in.c, in.h, in.w, k_, stride_, pad_, os.h, os.w,
                     grad_in.plane(n, 0));
    }
    return grad_in;
}

void Conv2d::collect_params(std::vector<ParamRef>& out) {
    out.push_back({&weight_, &grad_weight_});
    if (has_bias_) out.push_back({&bias_, &grad_bias_});
}

}  // namespace sky::nn
