// Pooling layers: 2x2 max pooling (the only pooling SkyNet uses) and
// global average pooling (used by the classifier backbones).
#pragma once

#include "nn/module.hpp"

namespace sky::nn {

/// 2x2 max pooling with stride 2.  Odd trailing rows/columns are dropped,
/// matching the usual floor-division convention.
class MaxPool2 : public Module {
public:
    MaxPool2() = default;

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;

    [[nodiscard]] std::string name() const override { return "MaxPool2x2"; }
    [[nodiscard]] std::string kind() const override { return "pool"; }
    [[nodiscard]] Shape out_shape(const Shape& in) const override {
        return {in.n, in.c, in.h / 2, in.w / 2};
    }

private:
    Shape in_shape_;
    std::vector<std::int32_t> argmax_;  ///< flat input index per output element
};

/// Global average pooling to 1x1.
class GlobalAvgPool : public Module {
public:
    GlobalAvgPool() = default;

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;

    [[nodiscard]] std::string name() const override { return "GlobalAvgPool"; }
    [[nodiscard]] std::string kind() const override { return "pool"; }
    [[nodiscard]] Shape out_shape(const Shape& in) const override {
        return {in.n, in.c, 1, 1};
    }

private:
    Shape in_shape_;
};

}  // namespace sky::nn
