#include "nn/sequential.hpp"

namespace sky::nn {

std::int64_t total_params(const std::vector<ParamRef>& params) {
    std::int64_t total = 0;
    for (const auto& p : params) total += p.value->size();
    return total;
}

Sequential& Sequential::add(ModulePtr m) {
    modules_.push_back(std::move(m));
    return *this;
}

Tensor Sequential::forward(const Tensor& x) {
    Tensor cur = x;
    for (auto& m : modules_) cur = m->forward(cur);
    return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
    Tensor cur = grad_out;
    for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) cur = (*it)->backward(cur);
    return cur;
}

void Sequential::collect_params(std::vector<ParamRef>& out) {
    for (auto& m : modules_) m->collect_params(out);
}

void Sequential::collect_state(std::vector<Tensor*>& out) {
    for (auto& m : modules_) m->collect_state(out);
}

void Sequential::set_training(bool training) {
    Module::set_training(training);
    for (auto& m : modules_) m->set_training(training);
}

void Sequential::prepack() {
    for (auto& m : modules_) m->prepack();
}

void Sequential::enumerate(const Shape& in, std::vector<LayerInfo>& out) const {
    Shape cur = in;
    for (const auto& m : modules_) {
        m->enumerate(cur, out);
        cur = m->out_shape(cur);
    }
}

Shape Sequential::out_shape(const Shape& in) const {
    Shape cur = in;
    for (const auto& m : modules_) cur = m->out_shape(cur);
    return cur;
}

std::int64_t Sequential::macs(const Shape& in) const {
    Shape cur = in;
    std::int64_t total = 0;
    for (const auto& m : modules_) {
        total += m->macs(cur);
        cur = m->out_shape(cur);
    }
    return total;
}

std::int64_t Sequential::param_count() const {
    std::int64_t total = 0;
    for (const auto& m : modules_) total += m->param_count();
    return total;
}

}  // namespace sky::nn
