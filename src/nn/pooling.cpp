#include "nn/pooling.hpp"

#include "core/thread_pool.hpp"

namespace sky::nn {

Tensor MaxPool2::forward(const Tensor& x) {
    const Shape s = x.shape();
    in_shape_ = s;
    const Shape os = out_shape(s);
    Tensor y(os);
    argmax_.assign(static_cast<std::size_t>(os.count()), 0);
    const std::int64_t oplane = static_cast<std::int64_t>(os.h) * os.w;
    // Each (n, c) plane pools independently; the argmax_ block for plane p
    // starts at p * oplane, matching the sequential fill order of the seed.
    core::parallel_for(
        0, static_cast<std::int64_t>(s.n) * s.c, 1,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const int n = static_cast<int>(p / s.c);
                const int c = static_cast<int>(p % s.c);
                const float* xp = x.plane(n, c);
                float* yp = y.plane(n, c);
                std::int64_t oi = p * oplane;
                for (int oh = 0; oh < os.h; ++oh) {
                    for (int ow = 0; ow < os.w; ++ow) {
                        const int ih = oh * 2, iw = ow * 2;
                        std::int64_t best = static_cast<std::int64_t>(ih) * s.w + iw;
                        float bv = xp[best];
                        const std::int64_t cand[3] = {best + 1, best + s.w,
                                                      best + s.w + 1};
                        for (std::int64_t idx : cand) {
                            // 2x2 window fully in-bounds because os = floor(in/2)
                            if (xp[idx] > bv) {
                                bv = xp[idx];
                                best = idx;
                            }
                        }
                        yp[static_cast<std::int64_t>(oh) * os.w + ow] = bv;
                        argmax_[static_cast<std::size_t>(oi++)] =
                            static_cast<std::int32_t>(best);
                    }
                }
            }
        });
    return y;
}

Tensor MaxPool2::backward(const Tensor& grad_out) {
    const Shape os = grad_out.shape();
    Tensor gi(in_shape_);
    const std::int64_t oplane = static_cast<std::int64_t>(os.h) * os.w;
    core::parallel_for(
        0, static_cast<std::int64_t>(os.n) * os.c, 1,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const int n = static_cast<int>(p / os.c);
                const int c = static_cast<int>(p % os.c);
                const float* gp = grad_out.plane(n, c);
                float* gxp = gi.plane(n, c);
                std::int64_t oi = p * oplane;
                for (std::int64_t i = 0; i < oplane; ++i)
                    gxp[argmax_[static_cast<std::size_t>(oi++)]] += gp[i];
            }
        });
    return gi;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
    const Shape s = x.shape();
    in_shape_ = s;
    Tensor y({s.n, s.c, 1, 1});
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    core::parallel_for(
        0, static_cast<std::int64_t>(s.n) * s.c, 4,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const int n = static_cast<int>(p / s.c);
                const int c = static_cast<int>(p % s.c);
                const float* xp = x.plane(n, c);
                double acc = 0.0;
                for (std::int64_t i = 0; i < plane; ++i) acc += xp[i];
                y.at(n, c, 0, 0) = static_cast<float>(acc / static_cast<double>(plane));
            }
        });
    return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
    Tensor gi(in_shape_);
    const std::int64_t plane = static_cast<std::int64_t>(in_shape_.h) * in_shape_.w;
    const float inv = 1.0f / static_cast<float>(plane);
    core::parallel_for(
        0, static_cast<std::int64_t>(in_shape_.n) * in_shape_.c, 4,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const int n = static_cast<int>(p / in_shape_.c);
                const int c = static_cast<int>(p % in_shape_.c);
                const float g = grad_out.at(n, c, 0, 0) * inv;
                float* gxp = gi.plane(n, c);
                for (std::int64_t i = 0; i < plane; ++i) gxp[i] = g;
            }
        });
    return gi;
}

}  // namespace sky::nn
