// Fully-connected layer over the flattened per-item features.
//
// Input {n, F, 1, 1} (or any shape whose per-item count equals in_features) ->
// output {n, out_features, 1, 1}.  Used by the classifier backbones (AlexNet,
// VGG) whose FC layers dominate the parameter-compression study of Fig. 2a.
#pragma once

#include "nn/module.hpp"

namespace sky::nn {

class Linear : public Module {
public:
    Linear(int in_features, int out_features, Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_params(std::vector<ParamRef>& out) override;

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override {
        return {in.n, out_, 1, 1};
    }
    [[nodiscard]] std::int64_t macs(const Shape& in) const override {
        return static_cast<std::int64_t>(in.n) * in_ * out_;
    }
    [[nodiscard]] std::int64_t param_count() const override {
        return static_cast<std::int64_t>(in_) * out_ + out_;
    }

    [[nodiscard]] Tensor& weight() { return weight_; }
    [[nodiscard]] std::string kind() const override { return "fc"; }

private:
    int in_, out_;
    Tensor weight_;  ///< [out, in, 1, 1]
    Tensor bias_;
    Tensor grad_weight_, grad_bias_;
    Tensor input_;    ///< flattened {n, in, 1, 1}
    Shape in_shape_;  ///< original input shape (restored in backward)
};

}  // namespace sky::nn
