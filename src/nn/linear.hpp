// Fully-connected layer over the flattened per-item features.
//
// Input {n, F, 1, 1} (or any shape whose per-item count equals in_features) ->
// output {n, out_features, 1, 1}.  Used by the classifier backbones (AlexNet,
// VGG) whose FC layers dominate the parameter-compression study of Fig. 2a.
// Eval forwards run Y^T = W * X^T through the packed SIMD GEMM with a
// prepacked weight handle; training forwards keep the seed's sequential
// double-precision dot products (the optimizer tests rely on that accuracy).
#pragma once

#include "core/gemm.hpp"
#include "nn/module.hpp"

namespace sky::nn {

class Linear : public Module {
public:
    Linear(int in_features, int out_features, Rng& rng);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;
    void collect_params(std::vector<ParamRef>& out) override;
    void set_training(bool training) override;
    void prepack() override;

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] Shape out_shape(const Shape& in) const override {
        return {in.n, out_, 1, 1};
    }
    [[nodiscard]] std::int64_t macs(const Shape& in) const override {
        return static_cast<std::int64_t>(in.n) * in_ * out_;
    }
    [[nodiscard]] std::int64_t param_count() const override {
        return static_cast<std::int64_t>(in_) * out_ + out_;
    }

    /// Mutable access invalidates the prepacked weight panels (see
    /// Conv2d::weight()).
    [[nodiscard]] Tensor& weight() {
        wpack_.clear();
        return weight_;
    }
    [[nodiscard]] const Tensor& weight() const { return weight_; }
    [[nodiscard]] const Tensor& bias() const { return bias_; }
    [[nodiscard]] std::string kind() const override { return "fc"; }

private:
    int in_, out_;
    Tensor weight_;  ///< [out, in, 1, 1]
    Tensor bias_;
    Tensor grad_weight_, grad_bias_;
    Tensor input_;          ///< flattened {n, in, 1, 1}
    Shape in_shape_;        ///< original input shape (restored in backward)
    core::PackedA wpack_;   ///< prepacked weight panels (eval mode only)
};

}  // namespace sky::nn
