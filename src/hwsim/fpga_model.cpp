#include "hwsim/fpga_model.hpp"

#include <algorithm>
#include <cmath>

namespace sky::hwsim {
namespace {

constexpr double kBram18kBits = 18 * 1024.0;

/// Scale a layer list's spatial dims by the input resize factor (Fig. 2b).
/// The batch_tile of Fig. 9 is handled in estimate_layers: the stitched
/// inputs stream tile-by-tile through the *same* shared buffer (that is the
/// scheme's whole point), so buffer sizing uses single-image shapes while
/// compute and feature-map traffic scale with the tile count and the
/// weights are fetched once per macro-image.
std::vector<nn::LayerInfo> apply_input_transform(std::vector<nn::LayerInfo> layers,
                                                 const FpgaBuildConfig& cfg) {
    const double r = cfg.resize_factor;
    for (auto& li : layers) {
        auto scale_shape = [&](Shape s) {
            s.h = std::max(1, static_cast<int>(std::lround(s.h * r)));
            s.w = std::max(1, static_cast<int>(std::lround(s.w * r)));
            s.n = 1;
            return s;
        };
        li.macs = static_cast<std::int64_t>(static_cast<double>(li.macs) * r * r);
        li.in = scale_shape(li.in);
        li.out = scale_shape(li.out);
    }
    return layers;
}

}  // namespace

FpgaModel::FpgaModel(DeviceProfile profile) : profile_(std::move(profile)) {}

double FpgaModel::dsps_per_mac(int weight_bits, int fm_bits, bool double_pumped) {
    double per_mac;
    if (weight_bits <= 0 || fm_bits <= 0) {
        per_mac = 3.0;  // float32 multiply-add from DSP48 cascades
    } else if (weight_bits + fm_bits <= 30) {
        per_mac = 0.5;  // two products packed per DSP (Fig. 2c: W14/FM16)
    } else {
        per_mac = 1.0;  // one product per DSP (27x18 multiplier)
    }
    if (double_pumped) per_mac *= 0.5;  // DSP column clocked at 2x
    return per_mac;
}

int FpgaModel::dsp_count(int parallelism, int weight_bits, int fm_bits, bool double_pumped) {
    return static_cast<int>(std::ceil(static_cast<double>(parallelism) *
                                      dsps_per_mac(weight_bits, fm_bits, double_pumped)));
}

FpgaResources FpgaModel::resources(const std::vector<nn::LayerInfo>& layers,
                                   const FpgaBuildConfig& cfg, int parallelism) const {
    FpgaResources res;
    res.dsp = dsp_count(parallelism, cfg.weight_bits, cfg.fm_bits, cfg.double_pumped);

    const int fm_bits = cfg.fm_bits > 0 ? cfg.fm_bits : 32;
    const int w_bits = cfg.weight_bits > 0 ? cfg.weight_bits : 32;

    // Shared FM buffer (Fig. 9): sized once for the largest per-layer
    // feature map, ping-pong (x2 for in/out overlap).  Weight buffer holds
    // the largest single layer's weights.
    std::int64_t max_fm_elems = 0;
    std::int64_t max_w_elems = 0;
    for (const auto& li : layers) {
        max_fm_elems = std::max({max_fm_elems, li.in.count(), li.out.count()});
        max_w_elems = std::max(max_w_elems, li.params);
    }

    // Spatial tiling until the double-buffered FM fits in 60% of BRAM.
    const double budget_bits = static_cast<double>(profile_.bram18k_total) * kBram18kBits;
    int tiles = 1;
    double fm_bits_needed = 2.0 * static_cast<double>(max_fm_elems) * fm_bits;
    if (cfg.allow_fm_tiling)
        while (fm_bits_needed / tiles > 0.6 * budget_bits && tiles < 64) tiles *= 2;
    res.fm_tiles = tiles;

    // Banked BRAM allocation: the IP reads/writes several words per cycle,
    // so buffers are partitioned; each bank rounds up to whole BRAM18Ks.
    // Bank count saturates — wide IPs use wider BRAM data ports instead of
    // ever more banks.
    const int banks = std::clamp(
        static_cast<int>(std::lround(std::sqrt(parallelism))), 1, 16);
    auto brams_for = [&](double bits, int nbanks) {
        const double per_bank = bits / nbanks;
        return nbanks * static_cast<int>(std::ceil(per_bank / kBram18kBits));
    };
    const int fm_brams = brams_for(fm_bits_needed / tiles, banks);
    const int w_brams =
        brams_for(static_cast<double>(max_w_elems) * w_bits, std::min(banks, 4));
    res.bram18k = fm_brams + w_brams;

    // LUT model: base control plus per-MAC-lane datapath plus per-layer
    // configuration entries (layers share the IP, so a layer costs a
    // descriptor, not its own datapath).
    res.lut = 6000 + 55LL * parallelism + 250LL * static_cast<std::int64_t>(layers.size());

    res.fits = res.dsp <= profile_.dsp_total && res.bram18k <= profile_.bram18k_total &&
               res.lut <= profile_.lut_total;
    return res;
}

FpgaEstimate FpgaModel::estimate(const nn::Module& net, Shape input,
                                 const FpgaBuildConfig& cfg) const {
    input.n = 1;
    std::vector<nn::LayerInfo> layers;
    net.enumerate(input, layers);
    return estimate_layers(std::move(layers), cfg);
}

FpgaEstimate FpgaModel::estimate_layers(std::vector<nn::LayerInfo> layers,
                                        const FpgaBuildConfig& cfg) const {
    layers = apply_input_transform(std::move(layers), cfg);
    // Pick the largest power-of-two parallelism whose resources fit.
    int best_p = 0;
    for (int p = 8; p <= 4096; p *= 2)
        if (resources(layers, cfg, p).fits) best_p = p;
    if (best_p == 0) best_p = 8;  // nothing fits: report the smallest config
    return estimate_at(layers, cfg, best_p);
}

std::vector<FpgaEstimate> FpgaModel::design_space(const nn::Module& net, Shape input,
                                                  const FpgaBuildConfig& cfg) const {
    input.n = 1;
    std::vector<nn::LayerInfo> layers;
    net.enumerate(input, layers);
    layers = apply_input_transform(std::move(layers), cfg);
    std::vector<FpgaEstimate> points;
    for (int p = 8; p <= 4096; p *= 2) points.push_back(estimate_at(layers, cfg, p));
    return points;
}

FpgaEstimate FpgaModel::estimate_at(const std::vector<nn::LayerInfo>& layers,
                                    const FpgaBuildConfig& cfg, int parallelism) const {
    FpgaEstimate est;
    const int best_p = parallelism;
    est.parallelism = best_p;
    est.resources = resources(layers, cfg, best_p);
    const FpgaResources& best_res = est.resources;

    // Sustained IP throughput sits well below lanes x clock: pipeline
    // fill/drain at tile borders, edge effects and DMA stalls.
    const double clock_hz = profile_.clock_mhz * 1e6 * profile_.efficiency_scale;
    const double bw = profile_.mem_bw_gbps * 1e9;
    // Per-layer fixed cost: buffer swap + IP reconfiguration.
    const double layer_overhead_us = profile_.launch_overhead_us;
    const int fm_bits = cfg.fm_bits > 0 ? cfg.fm_bits : 32;
    const int w_bits = cfg.weight_bits > 0 ? cfg.weight_bits : 32;
    // Halo overhead per extra tiling level (re-fetched borders).
    const double tile_overhead = 1.0 + 0.1 * std::log2(static_cast<double>(best_res.fm_tiles));

    const double tiles = static_cast<double>(std::max(1, cfg.batch_tile));
    double total_us = 0.0;
    double total_macs = 0.0;
    for (const auto& li : layers) {
        FpgaLayerLatency ll;
        ll.info = li;
        total_macs += static_cast<double>(li.macs) * tiles;
        if (li.macs > 0) {
            // The shared IP sustains best_p MACs/cycle on conv-style layers;
            // elementwise layers are fused into the conv pipeline.  All
            // batch_tile stitched inputs stream through (Fig. 9).
            ll.compute_us = static_cast<double>(li.macs) * tiles /
                            (static_cast<double>(best_p) * clock_hz) * 1e6;
        }
        // Feature maps move once per image; weights once per macro-image —
        // that is the weight-reuse benefit the tiling+batch scheme buys.
        const double fm_traffic_bits =
            (static_cast<double>(li.in.count()) + static_cast<double>(li.out.count())) *
            fm_bits * tile_overhead * tiles;
        const double w_traffic_bits = static_cast<double>(li.params) * w_bits;
        // FM stays on chip between fused layers (bn/act/pool); only conv
        // boundaries move data when the shared buffer is reused.
        const double fuse_discount = (li.macs == 0) ? 0.15 : 1.0;
        ll.memory_us = (fm_traffic_bits + w_traffic_bits) * fuse_discount / 8.0 / bw * 1e6;
        ll.total_us = std::max(ll.compute_us, ll.memory_us) +
                      (li.macs > 0 ? layer_overhead_us : 0.0);
        total_us += ll.total_us;
        est.layers.push_back(ll);
    }
    est.latency_ms = total_us / 1e3;
    est.fps = tiles / (total_us * 1e-6);
    est.utilization = total_us > 0.0
                          ? std::min(1.0, total_macs / (static_cast<double>(best_p) *
                                                        clock_hz * total_us * 1e-6))
                          : 0.0;
    return est;
}

}  // namespace sky::hwsim
