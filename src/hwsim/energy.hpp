// Board-level power / energy model shared by both device families.
//
// Power interpolates between the profile's idle and peak power with achieved
// utilisation; energy per frame divides by throughput.  These feed the
// DAC-SDC energy score (Eq. 3-4) in dacsdc/scoring.hpp.
#pragma once

#include "hwsim/device.hpp"

namespace sky::hwsim {

struct EnergyEstimate {
    double power_w = 0.0;
    double energy_per_image_j = 0.0;
    /// Energy to process a whole test set of `images` frames.
    [[nodiscard]] double total_j(int images) const { return energy_per_image_j * images; }
};

/// `utilization` in [0,1] is the accelerator's achieved fraction of peak;
/// `fps` is end-to-end system throughput.
[[nodiscard]] EnergyEstimate estimate_energy(const DeviceProfile& profile,
                                             double utilization, double fps);

}  // namespace sky::hwsim
