#include "hwsim/pipeline.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sky::hwsim {

PipelineReport simulate_pipeline(const std::vector<PipelineStage>& stages, int batch_size,
                                 int batches, obs::TraceSession* trace) {
    if (stages.empty() || batches <= 0 || batch_size <= 0)
        throw std::invalid_argument("simulate_pipeline: empty configuration");
    PipelineReport rep;
    for (const auto& s : stages) rep.serial_ms_per_batch += s.latency_ms;

    // Discrete-event schedule.
    const std::size_t ns = stages.size();
    std::vector<double> prev_done(ns, 0.0);  // done[s] for the previous batch
    double last = 0.0;
    for (int b = 0; b < batches; ++b) {
        double upstream = 0.0;  // completion of this batch in the previous stage
        for (std::size_t s = 0; s < ns; ++s) {
            const double start = std::max(prev_done[s], upstream);
            const double done = start + stages[s].latency_ms;
            if (trace)
                trace->record(stages[s].name + " b" + std::to_string(b), "pipeline",
                              start * 1e3, stages[s].latency_ms * 1e3,
                              static_cast<int>(s));
            prev_done[s] = done;
            upstream = done;
        }
        last = upstream;
    }
    rep.makespan_ms = last;
    const double bottleneck =
        std::max_element(stages.begin(), stages.end(), [](const auto& a, const auto& b) {
            return a.latency_ms < b.latency_ms;
        })->latency_ms;
    rep.pipelined_ms_per_batch = bottleneck;
    rep.speedup = rep.serial_ms_per_batch / bottleneck;
    rep.serial_fps = 1e3 * batch_size / rep.serial_ms_per_batch;
    // Steady-state pipelined throughput from the simulated makespan.
    rep.pipelined_fps = 1e3 * batch_size * batches / rep.makespan_ms;
    return rep;
}

std::vector<PipelineStage> merge_stages(std::vector<PipelineStage> stages, std::size_t first,
                                        std::size_t count) {
    if (first + count > stages.size() || count < 2)
        throw std::invalid_argument("merge_stages: bad range");
    PipelineStage merged;
    for (std::size_t i = first; i < first + count; ++i) {
        if (!merged.name.empty()) merged.name += "+";
        merged.name += stages[i].name;
        merged.latency_ms += stages[i].latency_ms;
    }
    stages.erase(stages.begin() + static_cast<std::ptrdiff_t>(first + 1),
                 stages.begin() + static_cast<std::ptrdiff_t>(first + count));
    stages[first] = std::move(merged);
    return stages;
}

}  // namespace sky::hwsim
