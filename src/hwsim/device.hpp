// Device profiles for the embedded platforms of DAC-SDC and the tracking
// study.  These are *calibrated simulators*: each profile carries the
// published peak compute, memory bandwidth, clock and resource counts of
// the real silicon (TX2's 665 GFLOPS @ 1300 MHz and Ultra96's 144 GOPS
// @ 200 MHz are quoted directly in §6.4), and every latency/energy number in
// the benches derives from these plus the analytical models in
// gpu_model.hpp / fpga_model.hpp — no per-table constants.
#pragma once

#include <cstdint>
#include <string>

namespace sky::hwsim {

enum class DeviceKind { kGpu, kFpga };

struct DeviceProfile {
    std::string name;
    DeviceKind kind = DeviceKind::kGpu;

    double peak_gmacs = 0.0;    ///< peak multiply-accumulates per second, in G
    double mem_bw_gbps = 0.0;   ///< DRAM bandwidth, GB/s
    double clock_mhz = 0.0;
    double idle_power_w = 0.0;  ///< board power at idle
    double peak_power_w = 0.0;  ///< board power at full utilisation
    double launch_overhead_us = 0.0;  ///< per-kernel / per-layer dispatch cost
    /// Fraction of the nominal per-kind kernel efficiency this device
    /// actually reaches (embedded GPUs on small nets sit well below a
    /// desktop GPU running large batches).
    double efficiency_scale = 1.0;

    // FPGA-only resources.
    int dsp_total = 0;
    int bram18k_total = 0;  ///< 18 Kbit block RAM count
    std::int64_t lut_total = 0;

    [[nodiscard]] bool is_fpga() const { return kind == DeviceKind::kFpga; }
};

/// NVIDIA Jetson TX2 (embedded GPU, GPU track of DAC-SDC).
/// 665 GFLOPS fp32 => 332.5 G MAC/s; LPDDR4 58.3 GB/s.
[[nodiscard]] DeviceProfile tx2();

/// NVIDIA GTX 1080 Ti (the tracking evaluation GPU of §7).
[[nodiscard]] DeviceProfile gtx1080ti();

/// Ultra96 (Zynq UltraScale+ ZU3EG; FPGA track 2019).
/// Paper: peak 144 GOPS @ 200 MHz => 360 DSP * 2 ops.
[[nodiscard]] DeviceProfile ultra96();

/// Pynq-Z1 (Zynq-7020; FPGA track 2018).
[[nodiscard]] DeviceProfile pynqz1();

}  // namespace sky::hwsim
