// Analytical GPU latency / utilisation model (roofline with per-layer-kind
// efficiency), §4.2 "Latency estimation" for the GPU path.
//
// Per layer: t = max(compute time, memory time) + launch overhead, where
// compute time uses an efficiency factor per layer kind — depthwise convs
// achieve a small fraction of peak on GPUs (low arithmetic intensity, poor
// cuDNN kernels), dense convs and 1x1 convs are much closer to peak.  This
// is exactly the effect that makes SkyNet's bundle cheap in MACs yet not
// proportionally faster on the GPU, and the model reproduces it.
#pragma once

#include "hwsim/device.hpp"
#include "nn/module.hpp"

namespace sky::hwsim {

struct GpuRunConfig {
    int batch = 1;
    bool fp16 = false;  ///< TensorRT-style half precision (halves bytes,
                        ///< doubles effective peak)
};

struct LayerLatency {
    nn::LayerInfo info;
    double compute_us = 0.0;
    double memory_us = 0.0;
    double total_us = 0.0;
};

struct GpuEstimate {
    double latency_ms = 0.0;  ///< one batch
    double fps = 0.0;         ///< images per second at the given batch
    double utilization = 0.0;  ///< achieved MACs / peak MACs over the run
    std::vector<LayerLatency> layers;
};

class GpuModel {
public:
    explicit GpuModel(DeviceProfile profile);

    /// Estimate a network at the given input shape (shape.n overridden by
    /// cfg.batch).
    [[nodiscard]] GpuEstimate estimate(const nn::Module& net, Shape input,
                                       const GpuRunConfig& cfg = GpuRunConfig{}) const;

    /// Estimate from a pre-enumerated layer list.
    [[nodiscard]] GpuEstimate estimate_layers(const std::vector<nn::LayerInfo>& layers,
                                              const GpuRunConfig& cfg) const;

    [[nodiscard]] const DeviceProfile& profile() const { return profile_; }

    /// Compute-efficiency factor for a layer kind (fraction of peak).
    [[nodiscard]] static double kind_efficiency(const std::string& kind);

private:
    DeviceProfile profile_;
};

}  // namespace sky::hwsim
