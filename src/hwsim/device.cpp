#include "hwsim/device.hpp"

namespace sky::hwsim {

DeviceProfile tx2() {
    DeviceProfile d;
    d.name = "TX2";
    d.kind = DeviceKind::kGpu;
    d.peak_gmacs = 332.5;  // 665 GFLOPS fp32 (paper, §6.4)
    d.mem_bw_gbps = 58.3;
    d.clock_mhz = 1300.0;
    d.idle_power_w = 5.0;
    d.peak_power_w = 15.0;
    d.launch_overhead_us = 35.0;  // Jetson kernel dispatch is expensive
    d.efficiency_scale = 0.40;    // small-net cuDNN on TX2 sits far from peak
    return d;
}

DeviceProfile gtx1080ti() {
    DeviceProfile d;
    d.name = "1080Ti";
    d.kind = DeviceKind::kGpu;
    d.peak_gmacs = 5670.0;  // 11.34 TFLOPS fp32
    d.mem_bw_gbps = 484.0;
    d.clock_mhz = 1582.0;
    d.idle_power_w = 55.0;
    d.peak_power_w = 250.0;
    d.launch_overhead_us = 6.0;
    d.efficiency_scale = 0.55;  // single-image inference (no batching)
    return d;
}

DeviceProfile ultra96() {
    DeviceProfile d;
    d.name = "Ultra96";
    d.kind = DeviceKind::kFpga;
    d.peak_gmacs = 72.0;  // 144 GOPS @ 200 MHz (paper, §6.4) = 360 DSP * 200 MHz
    d.mem_bw_gbps = 2.2;  // sustained PS DDR4 bandwidth via one AXI HP port
    d.clock_mhz = 200.0;
    d.idle_power_w = 2.2;
    d.peak_power_w = 9.0;
    d.launch_overhead_us = 150.0;  // per-layer buffer swap + IP reconfig
    d.efficiency_scale = 0.30;     // sustained fraction of lanes x clock
    d.dsp_total = 360;
    d.bram18k_total = 432;  // ZU3EG: 216 x 36Kb = 432 x 18Kb
    d.lut_total = 70560;
    return d;
}

DeviceProfile pynqz1() {
    DeviceProfile d;
    d.name = "Pynq-Z1";
    d.kind = DeviceKind::kFpga;
    d.peak_gmacs = 31.2;  // 220 DSP @ 142 MHz
    d.mem_bw_gbps = 1.2;
    d.clock_mhz = 142.0;
    d.idle_power_w = 1.4;
    d.peak_power_w = 4.5;
    d.launch_overhead_us = 220.0;
    d.efficiency_scale = 0.30;
    d.dsp_total = 220;
    d.bram18k_total = 280;
    d.lut_total = 53200;
    return d;
}

}  // namespace sky::hwsim
