#include "hwsim/energy.hpp"

#include <algorithm>

namespace sky::hwsim {

EnergyEstimate estimate_energy(const DeviceProfile& profile, double utilization,
                               double fps) {
    EnergyEstimate e;
    const double u = std::clamp(utilization, 0.0, 1.0);
    e.power_w = profile.idle_power_w + u * (profile.peak_power_w - profile.idle_power_w);
    e.energy_per_image_j = fps > 0.0 ? e.power_w / fps : 0.0;
    return e;
}

}  // namespace sky::hwsim
