#include "hwsim/gpu_model.hpp"

#include <algorithm>

namespace sky::hwsim {

GpuModel::GpuModel(DeviceProfile profile) : profile_(std::move(profile)) {}

double GpuModel::kind_efficiency(const std::string& kind) {
    // Fractions of peak MAC throughput achieved by cuDNN-class kernels.
    if (kind == "conv") return 0.55;
    if (kind == "pwconv") return 0.45;
    if (kind == "dwconv") return 0.10;  // memory-bound, poor GPU utilisation
    if (kind == "fc") return 0.35;
    return 0.25;  // anything else with MACs
}

GpuEstimate GpuModel::estimate(const nn::Module& net, Shape input,
                               const GpuRunConfig& cfg) const {
    input.n = cfg.batch;
    std::vector<nn::LayerInfo> layers;
    net.enumerate(input, layers);
    return estimate_layers(layers, cfg);
}

GpuEstimate GpuModel::estimate_layers(const std::vector<nn::LayerInfo>& layers,
                                      const GpuRunConfig& cfg) const {
    GpuEstimate est;
    const double bytes_per_el = cfg.fp16 ? 2.0 : 4.0;
    const double peak_macs = profile_.peak_gmacs * 1e9 * (cfg.fp16 ? 2.0 : 1.0) *
                             profile_.efficiency_scale;
    const double bw = profile_.mem_bw_gbps * 1e9;
    double total_us = 0.0;
    double total_macs = 0.0;
    for (const nn::LayerInfo& li : layers) {
        LayerLatency ll;
        ll.info = li;
        const double macs = static_cast<double>(li.macs);
        total_macs += macs;
        if (macs > 0.0) {
            ll.compute_us = macs / (peak_macs * kind_efficiency(li.kind)) * 1e6;
        }
        // Elementwise layers (bn/act/pool/reorder) are memory traffic only;
        // assume they fuse with the producing conv when adjacent, modelled
        // as a 50% traffic discount.
        const double traffic =
            (static_cast<double>(li.in.count()) + static_cast<double>(li.out.count())) *
                bytes_per_el +
            static_cast<double>(li.params) * bytes_per_el;
        const double fuse_discount = (li.macs == 0) ? 0.5 : 1.0;
        ll.memory_us = traffic * fuse_discount / bw * 1e6;
        ll.total_us = std::max(ll.compute_us, ll.memory_us) + profile_.launch_overhead_us;
        total_us += ll.total_us;
        est.layers.push_back(ll);
    }
    est.latency_ms = total_us / 1e3;
    const int batch = layers.empty() ? cfg.batch : layers.front().in.n;
    est.fps = batch / (total_us * 1e-6);
    est.utilization =
        total_us > 0.0 ? std::min(1.0, total_macs / (peak_macs * total_us * 1e-6)) : 0.0;
    return est;
}

}  // namespace sky::hwsim
