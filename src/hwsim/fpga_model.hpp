// Analytical FPGA accelerator model, following the IP-based mapping strategy
// of Hao et al. (DAC'19) that the paper's Stage-2 latency estimation uses:
// all layers of one type share a single configurable Conv IP; the IP is
// configured as large as the resource budget allows; per-layer latency and
// end-to-end performance follow from the IP configuration.
//
// The model covers everything the paper's FPGA figures need:
//  - DSP cost as a function of weight/FM bit-widths, with two-products-per-
//    DSP packing below a bit-width threshold and the double-pumped option
//    (Fig. 2c / Table 1 optimisation 6);
//  - BRAM for the shared ping-pong feature-map buffers and weight buffer,
//    including the input tiling+batch scheme of Fig. 9 (one buffer sized
//    once, reused by every layer) and the input-resize study of Fig. 2b;
//  - per-layer latency = max(compute, DMA) with the IP's parallelism.
#pragma once

#include "hwsim/device.hpp"
#include "nn/module.hpp"

namespace sky::hwsim {

struct FpgaBuildConfig {
    int weight_bits = 11;  ///< 0 = float32 (costs 3 DSP per MAC)
    int fm_bits = 9;
    bool double_pumped = false;  ///< run DSPs at 2x clock (halves DSP count)
    int batch_tile = 4;          ///< Fig. 9: inputs stitched into one macro-image
    double resize_factor = 1.0;  ///< input resize before inference (Fig. 2b)
    bool allow_fm_tiling = true;  ///< false reports the raw buffer requirement
                                  ///< (capacity studies like Fig. 2b)
};

struct FpgaResources {
    int dsp = 0;
    int bram18k = 0;
    std::int64_t lut = 0;
    bool fits = false;
    int fm_tiles = 1;  ///< spatial tiling needed to fit the FM buffer
};

struct FpgaLayerLatency {
    nn::LayerInfo info;
    double compute_us = 0.0;
    double memory_us = 0.0;
    double total_us = 0.0;
};

struct FpgaEstimate {
    double latency_ms = 0.0;  ///< one batch_tile macro-image
    double fps = 0.0;         ///< single-image throughput
    double utilization = 0.0;
    int parallelism = 0;  ///< MACs per cycle of the chosen IP
    FpgaResources resources;
    std::vector<FpgaLayerLatency> layers;
};

class FpgaModel {
public:
    explicit FpgaModel(DeviceProfile profile);

    /// DSPs needed per simultaneous MAC at the given precisions.
    /// Packing rule: two products share one DSP48 when wbits + fmbits <= 30;
    /// double-pumping halves the count again; float32 costs 3 DSPs.
    [[nodiscard]] static double dsps_per_mac(int weight_bits, int fm_bits,
                                             bool double_pumped);

    /// DSP count of an IP with `parallelism` MACs/cycle (Fig. 2c).
    [[nodiscard]] static int dsp_count(int parallelism, int weight_bits, int fm_bits,
                                       bool double_pumped = false);

    /// Resource usage for a network mapped at a given parallelism.
    [[nodiscard]] FpgaResources resources(const std::vector<nn::LayerInfo>& layers,
                                          const FpgaBuildConfig& cfg,
                                          int parallelism) const;

    /// Full estimate: picks the largest feasible IP, then computes latency.
    [[nodiscard]] FpgaEstimate estimate(const nn::Module& net, Shape input,
                                        const FpgaBuildConfig& cfg = FpgaBuildConfig{}) const;

    [[nodiscard]] FpgaEstimate estimate_layers(std::vector<nn::LayerInfo> layers,
                                               const FpgaBuildConfig& cfg) const;

    /// Estimate at an explicitly chosen IP parallelism (no search).
    [[nodiscard]] FpgaEstimate estimate_at(const std::vector<nn::LayerInfo>& layers,
                                           const FpgaBuildConfig& cfg,
                                           int parallelism) const;

    /// Design-space exploration: one estimate per power-of-two parallelism
    /// (8..4096), feasible or not — the latency/resource trade-off curve the
    /// IP-based flow of Hao et al. navigates.
    [[nodiscard]] std::vector<FpgaEstimate> design_space(const nn::Module& net,
                                                         Shape input,
                                                         const FpgaBuildConfig& cfg) const;

    [[nodiscard]] const DeviceProfile& profile() const { return profile_; }

private:
    DeviceProfile profile_;
};

}  // namespace sky::hwsim
