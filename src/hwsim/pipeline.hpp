// System-level pipeline simulator (Fig. 10 / §6.3).
//
// Running a detector end-to-end is four steps: 1) input fetch from storage,
// 2) pre-processing (resize + normalise), 3) DNN inference, 4) post-
// processing (box decode + buffering).  Executed serially these underutilise
// the system; the paper merges steps 1-2 and overlaps all stages with
// multithreading for a 3.35x speedup on TX2.  simulate() is a discrete-event
// model of that schedule: stage s finishes batch i at
//   done[s][i] = max(done[s][i-1], done[s-1][i]) + latency[s]
// so the steady-state rate is governed by the slowest stage.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace sky::hwsim {

struct PipelineStage {
    std::string name;
    double latency_ms = 0.0;  ///< per batch
};

struct PipelineReport {
    double serial_ms_per_batch = 0.0;
    double pipelined_ms_per_batch = 0.0;  ///< steady-state
    double speedup = 0.0;
    double serial_fps = 0.0;
    double pipelined_fps = 0.0;
    double makespan_ms = 0.0;  ///< total simulated time for all batches
};

/// Simulate `batches` batches of `batch_size` images through the stages.
/// When `trace` is given, every (stage, batch) interval of the discrete-event
/// schedule is recorded as a trace event (one lane per stage, simulated ms
/// mapped to trace us), so the Fig. 10 overlap is inspectable in
/// chrome://tracing.
[[nodiscard]] PipelineReport simulate_pipeline(const std::vector<PipelineStage>& stages,
                                               int batch_size, int batches,
                                               obs::TraceSession* trace = nullptr);

/// Merge consecutive stages (the paper merges fetch+pre-process): the merged
/// stage's latency is the sum, and one pipeline slot is saved.
[[nodiscard]] std::vector<PipelineStage> merge_stages(std::vector<PipelineStage> stages,
                                                      std::size_t first, std::size_t count);

}  // namespace sky::hwsim
