// Synthetic GOT-10k-style tracking sequences (§7).
//
// A target object (same procedural renderer as the detection set) moves
// through a drifting background with a smooth random-walk velocity, slow
// scale oscillation and animated texture phase; distractor objects move
// independently.  Each frame carries the ground-truth box, which is exactly
// what the GOT-10k AO / SR protocol needs.
#pragma once

#include "data/synth_detection.hpp"

namespace sky::data {

struct TrackingFrame {
    Tensor image;  ///< {1, 3, h, w}
    detect::BBox box;
};

using TrackingSequence = std::vector<TrackingFrame>;

class TrackingDataset {
public:
    struct Config {
        int height = 96;
        int width = 96;
        int frames = 24;
        int distractors = 1;
        float max_speed = 0.025f;   ///< per-frame centre motion (normalised)
        float scale_drift = 0.02f;  ///< per-frame log-scale random walk
        std::uint64_t seed = 23;
    };

    explicit TrackingDataset(Config cfg);

    [[nodiscard]] TrackingSequence sequence(Rng& rng) const;
    /// Next sequence from the dataset's own deterministic stream.
    [[nodiscard]] TrackingSequence next();
    [[nodiscard]] const Config& config() const { return cfg_; }

private:
    Config cfg_;
    Rng stream_;
};

}  // namespace sky::data
