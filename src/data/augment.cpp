#include "data/augment.hpp"

#include <algorithm>
#include <cmath>

namespace sky::data {

Tensor resize_bilinear(const Tensor& img, int out_h, int out_w) {
    const Shape s = img.shape();
    Tensor out({s.n, s.c, out_h, out_w});
    const float sy = static_cast<float>(s.h) / static_cast<float>(out_h);
    const float sx = static_cast<float>(s.w) / static_cast<float>(out_w);
    for (int n = 0; n < s.n; ++n) {
        for (int c = 0; c < s.c; ++c) {
            const float* src = img.plane(n, c);
            float* dst = out.plane(n, c);
            for (int y = 0; y < out_h; ++y) {
                const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
                const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, s.h - 1);
                const int y1 = std::min(y0 + 1, s.h - 1);
                const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
                for (int x = 0; x < out_w; ++x) {
                    const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
                    const int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0, s.w - 1);
                    const int x1 = std::min(x0 + 1, s.w - 1);
                    const float wx = std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
                    const float v00 = src[static_cast<std::int64_t>(y0) * s.w + x0];
                    const float v01 = src[static_cast<std::int64_t>(y0) * s.w + x1];
                    const float v10 = src[static_cast<std::int64_t>(y1) * s.w + x0];
                    const float v11 = src[static_cast<std::int64_t>(y1) * s.w + x1];
                    dst[static_cast<std::int64_t>(y) * out_w + x] =
                        (1 - wy) * ((1 - wx) * v00 + wx * v01) +
                        wy * ((1 - wx) * v10 + wx * v11);
                }
            }
        }
    }
    return out;
}

Tensor resize_area(const Tensor& img, int out_h, int out_w) {
    const Shape s = img.shape();
    Tensor out({s.n, s.c, out_h, out_w});
    const double sy = static_cast<double>(s.h) / out_h;
    const double sx = static_cast<double>(s.w) / out_w;
    for (int n = 0; n < s.n; ++n) {
        for (int c = 0; c < s.c; ++c) {
            const float* src = img.plane(n, c);
            float* dst = out.plane(n, c);
            for (int y = 0; y < out_h; ++y) {
                const double fy0 = y * sy, fy1 = (y + 1) * sy;
                const int y0 = static_cast<int>(fy0);
                const int y1 = std::min(static_cast<int>(std::ceil(fy1)), s.h);
                for (int x = 0; x < out_w; ++x) {
                    const double fx0 = x * sx, fx1 = (x + 1) * sx;
                    const int x0 = static_cast<int>(fx0);
                    const int x1 = std::min(static_cast<int>(std::ceil(fx1)), s.w);
                    double acc = 0.0, area = 0.0;
                    for (int yy = y0; yy < y1; ++yy) {
                        // Row coverage: 1 inside the footprint, fractional at
                        // the first/last row it touches.
                        const double wy = std::min<double>(yy + 1, fy1) -
                                          std::max<double>(yy, fy0);
                        for (int xx = x0; xx < x1; ++xx) {
                            const double wx = std::min<double>(xx + 1, fx1) -
                                              std::max<double>(xx, fx0);
                            acc += wy * wx * src[static_cast<std::int64_t>(yy) * s.w + xx];
                            area += wy * wx;
                        }
                    }
                    dst[static_cast<std::int64_t>(y) * out_w + x] =
                        static_cast<float>(acc / area);
                }
            }
        }
    }
    return out;
}

Tensor crop_resize(const Tensor& img, float x1, float y1, float x2, float y2, int out_h,
                   int out_w) {
    const Shape s = img.shape();
    Tensor out({s.n, s.c, out_h, out_w});
    for (int n = 0; n < s.n; ++n) {
        for (int c = 0; c < s.c; ++c) {
            const float* src = img.plane(n, c);
            float* dst = out.plane(n, c);
            for (int y = 0; y < out_h; ++y) {
                const float v = y1 + (y2 - y1) * (static_cast<float>(y) + 0.5f) /
                                         static_cast<float>(out_h);
                const float fy = v * static_cast<float>(s.h) - 0.5f;
                for (int x = 0; x < out_w; ++x) {
                    const float u = x1 + (x2 - x1) * (static_cast<float>(x) + 0.5f) /
                                             static_cast<float>(out_w);
                    const float fx = u * static_cast<float>(s.w) - 0.5f;
                    float val = 0.0f;
                    if (fy >= -1.0f && fy <= static_cast<float>(s.h) && fx >= -1.0f &&
                        fx <= static_cast<float>(s.w)) {
                        const int iy0 = static_cast<int>(std::floor(fy));
                        const int ix0 = static_cast<int>(std::floor(fx));
                        const float wy = fy - static_cast<float>(iy0);
                        const float wx = fx - static_cast<float>(ix0);
                        auto sample = [&](int yy, int xx) -> float {
                            if (yy < 0 || yy >= s.h || xx < 0 || xx >= s.w) return 0.0f;
                            return src[static_cast<std::int64_t>(yy) * s.w + xx];
                        };
                        val = (1 - wy) * ((1 - wx) * sample(iy0, ix0) +
                                          wx * sample(iy0, ix0 + 1)) +
                              wy * ((1 - wx) * sample(iy0 + 1, ix0) +
                                    wx * sample(iy0 + 1, ix0 + 1));
                    }
                    dst[static_cast<std::int64_t>(y) * out_w + x] = val;
                }
            }
        }
    }
    return out;
}

Tensor hflip(const Tensor& img) {
    const Shape s = img.shape();
    Tensor out(s);
    for (int n = 0; n < s.n; ++n) {
        for (int c = 0; c < s.c; ++c) {
            const float* src = img.plane(n, c);
            float* dst = out.plane(n, c);
            for (int y = 0; y < s.h; ++y)
                for (int x = 0; x < s.w; ++x)
                    dst[static_cast<std::int64_t>(y) * s.w + x] =
                        src[static_cast<std::int64_t>(y) * s.w + (s.w - 1 - x)];
        }
    }
    return out;
}

detect::BBox flip_box(const detect::BBox& b) { return {1.0f - b.cx, b.cy, b.w, b.h}; }

Tensor photometric(const Tensor& img, Rng& rng, float contrast, float brightness) {
    const Shape s = img.shape();
    Tensor out(s);
    const float shift = static_cast<float>(rng.uniform(-brightness, brightness));
    for (int n = 0; n < s.n; ++n) {
        for (int c = 0; c < s.c; ++c) {
            const float gain = static_cast<float>(rng.uniform(1.0 - contrast, 1.0 + contrast));
            const float* src = img.plane(n, c);
            float* dst = out.plane(n, c);
            const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
            for (std::int64_t i = 0; i < plane; ++i)
                dst[i] = std::clamp(src[i] * gain + shift, 0.0f, 1.0f);
        }
    }
    return out;
}

Tensor jitter_crop(const Tensor& img, detect::BBox& box, Rng& rng, float max_margin) {
    // Crop window in normalised coords that still contains the box.
    const float bx1 = box.x1(), by1 = box.y1(), bx2 = box.x2(), by2 = box.y2();
    const float cx1 = static_cast<float>(rng.uniform(0.0, std::min<double>(max_margin, std::max(0.0f, bx1))));
    const float cy1 = static_cast<float>(rng.uniform(0.0, std::min<double>(max_margin, std::max(0.0f, by1))));
    const float cx2 = 1.0f - static_cast<float>(rng.uniform(
                                 0.0, std::min<double>(max_margin, std::max(0.0f, 1.0f - bx2))));
    const float cy2 = 1.0f - static_cast<float>(rng.uniform(
                                 0.0, std::min<double>(max_margin, std::max(0.0f, 1.0f - by2))));
    const Shape s = img.shape();
    Tensor out = crop_resize(img, cx1, cy1, cx2, cy2, s.h, s.w);
    const float sw = cx2 - cx1, sh = cy2 - cy1;
    box = detect::BBox{(box.cx - cx1) / sw, (box.cy - cy1) / sh, box.w / sw, box.h / sh};
    return out;
}

}  // namespace sky::data
