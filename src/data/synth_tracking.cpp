#include "data/synth_tracking.hpp"

#include <algorithm>
#include <cmath>

namespace sky::data {
namespace {

struct MovingObject {
    float cx, cy, vx, vy, log_scale, base_w, base_h, phase;
    int category;
};

void step(MovingObject& o, Rng& rng, const TrackingDataset::Config& cfg) {
    o.vx += static_cast<float>(rng.normal(0.0, cfg.max_speed * 0.3));
    o.vy += static_cast<float>(rng.normal(0.0, cfg.max_speed * 0.3));
    o.vx = std::clamp(o.vx, -cfg.max_speed, cfg.max_speed);
    o.vy = std::clamp(o.vy, -cfg.max_speed, cfg.max_speed);
    o.cx += o.vx;
    o.cy += o.vy;
    // Bounce off the frame so the target never leaves the image.
    const float half_w = o.base_w * std::exp(o.log_scale) * 0.5f;
    const float half_h = o.base_h * std::exp(o.log_scale) * 0.5f;
    if (o.cx < half_w || o.cx > 1.0f - half_w) o.vx = -o.vx;
    if (o.cy < half_h || o.cy > 1.0f - half_h) o.vy = -o.vy;
    o.cx = std::clamp(o.cx, half_w, 1.0f - half_w);
    o.cy = std::clamp(o.cy, half_h, 1.0f - half_h);
    o.log_scale = std::clamp(
        o.log_scale + static_cast<float>(rng.normal(0.0, cfg.scale_drift)), -0.4f, 0.4f);
    o.phase += 0.3f;
}

detect::BBox box_of(const MovingObject& o) {
    const float s = std::exp(o.log_scale);
    return {o.cx, o.cy, o.base_w * s, o.base_h * s};
}

}  // namespace

TrackingDataset::TrackingDataset(Config cfg) : cfg_(cfg), stream_(cfg.seed) {}

TrackingSequence TrackingDataset::sequence(Rng& rng) const {
    TrackingSequence seq;
    seq.reserve(static_cast<std::size_t>(cfg_.frames));

    MovingObject target{};
    target.base_w = static_cast<float>(rng.uniform(0.12, 0.3));
    target.base_h = target.base_w * static_cast<float>(rng.uniform(0.7, 1.4));
    target.cx = static_cast<float>(rng.uniform(0.3, 0.7));
    target.cy = static_cast<float>(rng.uniform(0.3, 0.7));
    target.vx = static_cast<float>(rng.uniform(-cfg_.max_speed, cfg_.max_speed));
    target.vy = static_cast<float>(rng.uniform(-cfg_.max_speed, cfg_.max_speed));
    target.phase = static_cast<float>(rng.uniform(0.0, 6.28));
    target.category = 0;

    std::vector<MovingObject> distractors;
    for (int d = 0; d < cfg_.distractors; ++d) {
        MovingObject o = target;
        o.category = 1 + rng.uniform_int(0, 10);
        o.cx = static_cast<float>(rng.uniform(0.2, 0.8));
        o.cy = static_cast<float>(rng.uniform(0.2, 0.8));
        o.phase = static_cast<float>(rng.uniform(0.0, 6.28));
        distractors.push_back(o);
    }

    // One background reused with slow drift: render once larger, crop a
    // sliding window.
    Tensor bg({1, 3, cfg_.height + 16, cfg_.width + 16});
    Rng bg_rng = rng.split();
    render_background(bg, bg_rng);
    float drift_x = 0.0f, drift_y = 0.0f;

    for (int f = 0; f < cfg_.frames; ++f) {
        TrackingFrame frame;
        drift_x = std::clamp(drift_x + static_cast<float>(rng.normal(0.0, 0.4)), 0.0f, 16.0f);
        drift_y = std::clamp(drift_y + static_cast<float>(rng.normal(0.0, 0.4)), 0.0f, 16.0f);
        frame.image = Tensor({1, 3, cfg_.height, cfg_.width});
        const int ox = static_cast<int>(drift_x), oy = static_cast<int>(drift_y);
        for (int c = 0; c < 3; ++c) {
            const float* src = bg.plane(0, c);
            float* dst = frame.image.plane(0, c);
            for (int y = 0; y < cfg_.height; ++y)
                std::copy_n(src + static_cast<std::int64_t>(y + oy) * (cfg_.width + 16) + ox,
                            cfg_.width, dst + static_cast<std::int64_t>(y) * cfg_.width);
        }
        for (auto& d : distractors) {
            render_object(frame.image, box_of(d), d.category, d.phase);
            step(d, rng, cfg_);
        }
        render_object(frame.image, box_of(target), 0, target.phase);
        frame.box = box_of(target);
        step(target, rng, cfg_);
        seq.push_back(std::move(frame));
    }
    return seq;
}

TrackingSequence TrackingDataset::next() { return sequence(stream_); }

}  // namespace sky::data
