#include "data/synth_classification.hpp"

#include <algorithm>
#include <cmath>

namespace sky::data {

ClassificationDataset::ClassificationDataset(Config cfg) : cfg_(cfg), stream_(cfg.seed) {}

void ClassificationDataset::render(Tensor& img, int label, Rng& rng) const {
    const Shape s = img.shape();
    // Class identity: grating angle + frequency + colour emphasis.
    const float angle = static_cast<float>(label) * 3.14159f /
                        static_cast<float>(cfg_.num_classes);
    const float freq = 2.0f + static_cast<float>(label % 5);
    const float ca = std::cos(angle), sa = std::sin(angle);
    const float jitter = static_cast<float>(rng.uniform(0.0, 6.28));
    for (int c = 0; c < s.c; ++c) {
        const float emphasis = (label % 3 == c) ? 1.0f : 0.55f;
        float* p = img.plane(0, c);
        for (int y = 0; y < s.h; ++y) {
            const float v = static_cast<float>(y) / static_cast<float>(s.h) - 0.5f;
            for (int x = 0; x < s.w; ++x) {
                const float u = static_cast<float>(x) / static_cast<float>(s.w) - 0.5f;
                const float t = ca * u + sa * v;
                float val = 0.5f + cfg_.amplitude * emphasis * std::sin(6.28f * freq * t + jitter);
                val += static_cast<float>(rng.normal(0.0, cfg_.noise));
                p[static_cast<std::int64_t>(y) * s.w + x] = std::clamp(val, 0.0f, 1.0f);
            }
        }
    }
}

ClassificationBatch ClassificationDataset::batch(int n) {
    ClassificationBatch out;
    out.images = Tensor({n, 3, cfg_.size, cfg_.size});
    out.labels.resize(static_cast<std::size_t>(n));
    Tensor one({1, 3, cfg_.size, cfg_.size});
    for (int i = 0; i < n; ++i) {
        const int label = stream_.uniform_int(0, cfg_.num_classes - 1);
        render(one, label, stream_);
        std::copy_n(one.data(), one.size(), out.images.plane(i, 0));
        out.labels[static_cast<std::size_t>(i)] = label;
    }
    return out;
}

ClassificationBatch ClassificationDataset::validation(int n) const {
    ClassificationDataset fixed(cfg_);
    fixed.stream_ = Rng(cfg_.seed ^ 0xC1A55ull);
    return fixed.batch(n);
}

CeResult softmax_xent(const Tensor& logits, const std::vector<int>& labels, Tensor& grad) {
    const Shape s = logits.shape();
    grad = Tensor(s);
    double total = 0.0;
    int correct = 0;
    const float inv_n = 1.0f / static_cast<float>(s.n);
    for (int n = 0; n < s.n; ++n) {
        const float* lp = logits.plane(n, 0);
        float* gp = grad.plane(n, 0);
        float mx = lp[0];
        int arg = 0;
        for (int k = 1; k < s.c; ++k)
            if (lp[k] > mx) {
                mx = lp[k];
                arg = k;
            }
        double z = 0.0;
        for (int k = 0; k < s.c; ++k) z += std::exp(static_cast<double>(lp[k] - mx));
        const int label = labels[static_cast<std::size_t>(n)];
        total += -(static_cast<double>(lp[label] - mx) - std::log(z)) * inv_n;
        for (int k = 0; k < s.c; ++k) {
            const float p =
                static_cast<float>(std::exp(static_cast<double>(lp[k] - mx)) / z);
            gp[k] = (p - (k == label ? 1.0f : 0.0f)) * inv_n;
        }
        if (arg == label) ++correct;
    }
    return {static_cast<float>(total), static_cast<float>(correct) / static_cast<float>(s.n)};
}

}  // namespace sky::data
