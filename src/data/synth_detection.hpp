// Synthetic DAC-SDC-style detection workload.
//
// The real DAC-SDC dataset (100k DJI UAV images, 12 main / 95 sub categories,
// hidden 50k test set) is proprietary.  What SkyNet's design actually depends
// on is the dataset's *small-object statistics* (Fig. 6): 91% of ground-truth
// boxes cover < 9% of the image area and 31% cover < 1%.  This generator
// reproduces those statistics exactly: box area ratios are drawn from a
// log-normal calibrated so P(r < 0.01) = 0.31 and P(r < 0.09) = 0.91, and a
// single textured target (one of 12 procedural "categories") is rendered on
// a structured background, optionally with look-alike distractors (the
// "multiple similar objects" challenge of Fig. 7).
#pragma once

#include "detect/bbox.hpp"
#include "tensor/tensor.hpp"

namespace sky::data {

struct DetectionSample {
    Tensor image;  ///< {1, 3, h, w} in [0, 1]
    detect::BBox box;
    int category = 0;
};

struct DetectionBatch {
    Tensor images;  ///< {n, 3, h, w}
    std::vector<detect::BBox> boxes;
};

/// Multi-target scene: every rendered target of interest with its box
/// (used by the multi-object decode_all/NMS path).
struct MultiSample {
    Tensor image;  ///< {1, 3, h, w}
    std::vector<detect::BBox> boxes;
};

class DetectionDataset {
public:
    struct Config {
        int height = 80;   ///< paper scale is 160x320; default is the fast CPU scale
        int width = 160;
        int max_distractors = 2;
        bool augment = false;  ///< photometric + jitter-crop + hflip
        std::uint64_t seed = 7;
    };

    explicit DetectionDataset(Config cfg);

    /// Draw the relative box *area* ratio from the Fig. 6 distribution.
    [[nodiscard]] float sample_area_ratio(Rng& rng) const;

    [[nodiscard]] DetectionSample sample(Rng& rng) const;
    /// Scene with 1..max_targets non-overlapping targets of interest (all
    /// category 0), plus the usual distractors.
    [[nodiscard]] MultiSample sample_multi(Rng& rng, int max_targets) const;
    /// Batch with this dataset's own deterministic stream.
    [[nodiscard]] DetectionBatch batch(int n);
    /// A fixed validation set regenerated identically on every call.
    [[nodiscard]] DetectionBatch validation(int n) const;

    [[nodiscard]] const Config& config() const { return cfg_; }

private:
    Config cfg_;
    Rng stream_;
};

/// Render one procedural object of `category` (0..11) into `img` at the
/// given normalised box.  Exposed for the tracking sequence generator.
void render_object(Tensor& img, const detect::BBox& box, int category, float phase);

/// Fill with a structured low-frequency background.
void render_background(Tensor& img, Rng& rng);

}  // namespace sky::data
