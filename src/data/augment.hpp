// Image-space operations on CHW float tensors: bilinear resize, crop,
// horizontal flip, photometric distortion.  These implement the paper's
// training augmentations ("distort, jitter, crop, and resize", §6.1) and the
// exemplar/search-region cropping the Siamese trackers need.
#pragma once

#include "detect/bbox.hpp"
#include "tensor/tensor.hpp"

namespace sky::data {

/// Bilinear resize of a single-item CHW tensor (n must be 1).
[[nodiscard]] Tensor resize_bilinear(const Tensor& img, int out_h, int out_w);

/// Area (box-filter) resize: every output pixel is the fractionally-weighted
/// mean of the source pixels its footprint covers.  The correct decimation
/// filter for downscales past 2x, where bilinear's fixed 4 taps skip source
/// rows/columns entirely and alias; for upscales it degenerates to nearest.
[[nodiscard]] Tensor resize_area(const Tensor& img, int out_h, int out_w);

/// Crop region given in normalised coordinates [x1,y1,x2,y2] (may extend
/// outside the image; outside pixels are zero-padded), then resize.
[[nodiscard]] Tensor crop_resize(const Tensor& img, float x1, float y1, float x2, float y2,
                                 int out_h, int out_w);

/// Horizontal flip (in image space); flip_box mirrors a normalised box.
[[nodiscard]] Tensor hflip(const Tensor& img);
[[nodiscard]] detect::BBox flip_box(const detect::BBox& b);

/// Photometric distortion: per-channel gain in [1-c, 1+c], global brightness
/// shift in [-b, b], clamped to [0, 1].
[[nodiscard]] Tensor photometric(const Tensor& img, Rng& rng, float contrast = 0.25f,
                                 float brightness = 0.15f);

/// Random crop that keeps `box` fully inside; returns the cropped image and
/// rewrites `box` into the crop's coordinates.  `max_margin` bounds how much
/// of each side may be cut (fraction of the image).
[[nodiscard]] Tensor jitter_crop(const Tensor& img, detect::BBox& box, Rng& rng,
                                 float max_margin = 0.15f);

}  // namespace sky::data
