// Synthetic image-classification workload for the Fig. 2a motivation study
// (AlexNet under parameter vs feature-map quantization).
//
// Ten classes, each a distinct oriented-grating + blob pattern with noise,
// at a configurable resolution.  The full 224x224 AlexNet is too slow to
// train on CPU within the harness budget, so the Fig. 2a bench trains a
// width/resolution-scaled AlexNet on this task and measures quantization
// sensitivity there, while the *sizes* reported (237.9 MB -> 10.8 MB etc.)
// are computed exactly from the full architecture's parameter counts.
#pragma once

#include "tensor/tensor.hpp"

namespace sky::data {

struct ClassificationBatch {
    Tensor images;  ///< {n, 3, h, w}
    std::vector<int> labels;
};

class ClassificationDataset {
public:
    struct Config {
        int size = 32;
        int num_classes = 10;
        float noise = 0.08f;      ///< additive Gaussian pixel noise
        float amplitude = 0.4f;   ///< grating contrast: lower = harder task
        std::uint64_t seed = 11;
    };

    explicit ClassificationDataset(Config cfg);

    [[nodiscard]] ClassificationBatch batch(int n);
    [[nodiscard]] ClassificationBatch validation(int n) const;
    [[nodiscard]] const Config& config() const { return cfg_; }

private:
    void render(Tensor& img, int label, Rng& rng) const;

    Config cfg_;
    Rng stream_;
};

/// Softmax cross-entropy over logits {n, k, 1, 1}; writes dL/dlogits.
/// Returns (mean loss, accuracy).
struct CeResult {
    float loss;
    float accuracy;
};
[[nodiscard]] CeResult softmax_xent(const Tensor& logits, const std::vector<int>& labels,
                                    Tensor& grad);

}  // namespace sky::data
