#include "data/synth_detection.hpp"

#include <algorithm>
#include <cmath>

#include "core/thread_pool.hpp"
#include "data/augment.hpp"

namespace sky::data {
namespace {

// Fig. 6 calibration: with r = box area / image area and log10(r) ~ N(mu,
// sigma), solving P(r < 0.01) = 0.31 and P(r < 0.09) = 0.91 gives
// mu = -1.742, sigma = 0.519.
constexpr float kLogMu = -1.742f;
constexpr float kLogSigma = 0.519f;

float clampf(float v, float lo, float hi) { return std::clamp(v, lo, hi); }

}  // namespace

void render_background(Tensor& img, Rng& rng) {
    const Shape s = img.shape();
    // Sum of a few random low-frequency plane waves per channel + mild noise:
    // looks like terrain/roads from a UAV without being learnable shortcuts.
    for (int c = 0; c < s.c; ++c) {
        const float base = static_cast<float>(rng.uniform(0.25, 0.6));
        float fx[3], fy[3], ph[3], amp[3];
        for (int k = 0; k < 3; ++k) {
            fx[k] = static_cast<float>(rng.uniform(0.5, 4.0));
            fy[k] = static_cast<float>(rng.uniform(0.5, 4.0));
            ph[k] = static_cast<float>(rng.uniform(0.0, 6.28));
            amp[k] = static_cast<float>(rng.uniform(0.02, 0.08));
        }
        float* p = img.plane(0, c);
        for (int y = 0; y < s.h; ++y) {
            const float v = static_cast<float>(y) / static_cast<float>(s.h);
            for (int x = 0; x < s.w; ++x) {
                const float u = static_cast<float>(x) / static_cast<float>(s.w);
                float val = base;
                for (int k = 0; k < 3; ++k)
                    val += amp[k] * std::sin(6.28f * (fx[k] * u + fy[k] * v) + ph[k]);
                p[static_cast<std::int64_t>(y) * s.w + x] = clampf(val, 0.0f, 1.0f);
            }
        }
    }
    // Speckle noise.
    float* p = img.data();
    const std::int64_t n = img.size();
    for (std::int64_t i = 0; i < n; ++i)
        p[i] = clampf(p[i] + static_cast<float>(rng.normal(0.0, 0.02)), 0.0f, 1.0f);
}

void render_object(Tensor& img, const detect::BBox& box, int category, float phase) {
    const Shape s = img.shape();
    const int x1 = std::max(0, static_cast<int>(box.x1() * static_cast<float>(s.w)));
    const int y1 = std::max(0, static_cast<int>(box.y1() * static_cast<float>(s.h)));
    const int x2 = std::min(s.w - 1, static_cast<int>(box.x2() * static_cast<float>(s.w)));
    const int y2 = std::min(s.h - 1, static_cast<int>(box.y2() * static_cast<float>(s.h)));
    if (x2 <= x1 || y2 <= y1) return;
    const float cx = 0.5f * static_cast<float>(x1 + x2);
    const float cy = 0.5f * static_cast<float>(y1 + y2);
    const float rx = 0.5f * static_cast<float>(x2 - x1);
    const float ry = 0.5f * static_cast<float>(y2 - y1);
    // Per-category palette; category 0 is "the target": bright body with a
    // dark diagonal cross (a quadcopter silhouette from above).
    const float palette[12][3] = {
        {0.95f, 0.95f, 0.92f}, {0.8f, 0.2f, 0.2f}, {0.2f, 0.7f, 0.3f},
        {0.2f, 0.3f, 0.85f},   {0.9f, 0.8f, 0.2f}, {0.7f, 0.3f, 0.8f},
        {0.3f, 0.8f, 0.8f},    {0.9f, 0.5f, 0.2f}, {0.5f, 0.5f, 0.5f},
        {0.85f, 0.6f, 0.7f},   {0.4f, 0.6f, 0.2f}, {0.6f, 0.4f, 0.3f},
    };
    const int cat = std::clamp(category, 0, 11);
    for (int y = y1; y <= y2; ++y) {
        for (int x = x1; x <= x2; ++x) {
            const float u = (static_cast<float>(x) - cx) / std::max(rx, 1.0f);  // [-1,1]
            const float v = (static_cast<float>(y) - cy) / std::max(ry, 1.0f);
            const float rad = u * u + v * v;
            if (rad > 1.0f) continue;  // elliptical footprint
            float tex = 1.0f;
            switch (cat % 6) {
                case 0: {  // diagonal cross over bright body
                    const float d1 = std::fabs(u - v), d2 = std::fabs(u + v);
                    tex = (d1 < 0.25f || d2 < 0.25f) ? 0.25f : 1.0f;
                    break;
                }
                case 1:  // concentric ring
                    tex = (rad > 0.35f && rad < 0.75f) ? 0.3f : 1.0f;
                    break;
                case 2:  // horizontal stripes (animated by phase)
                    tex = std::sin(8.0f * v + phase) > 0.0f ? 1.0f : 0.45f;
                    break;
                case 3:  // checker
                    tex = (std::sin(6.0f * u + phase) * std::sin(6.0f * v) > 0.0f) ? 1.0f
                                                                                   : 0.4f;
                    break;
                case 4:  // radial gradient
                    tex = 1.0f - 0.6f * rad;
                    break;
                case 5:  // vertical stripes
                    tex = std::sin(8.0f * u + phase) > 0.0f ? 1.0f : 0.45f;
                    break;
            }
            const float edge = clampf(4.0f * (1.0f - rad), 0.0f, 1.0f);  // soft rim
            for (int c = 0; c < std::min(3, s.c); ++c) {
                float& px = img.plane(0, c)[static_cast<std::int64_t>(y) * s.w + x];
                const float col = palette[cat][c] * tex;
                px = px * (1.0f - edge) + col * edge;
            }
        }
    }
}

DetectionDataset::DetectionDataset(Config cfg) : cfg_(cfg), stream_(cfg.seed) {}

float DetectionDataset::sample_area_ratio(Rng& rng) const {
    const float z = static_cast<float>(rng.normal());
    const float log_r = clampf(kLogMu + kLogSigma * z, -3.0f, -0.4f);
    return std::pow(10.0f, log_r);
}

DetectionSample DetectionDataset::sample(Rng& rng) const {
    DetectionSample out;
    out.image = Tensor({1, 3, cfg_.height, cfg_.width});
    render_background(out.image, rng);

    const float area = sample_area_ratio(rng);
    const float aspect = static_cast<float>(rng.uniform(0.6, 1.7));  // w/h of the box
    // box.w * box.h = area (normalised units), box.w / box.h = aspect.
    float bh = std::sqrt(area / aspect);
    float bw = area / bh;
    bw = clampf(bw, 0.02f, 0.9f);
    bh = clampf(bh, 0.02f, 0.9f);
    const float bx = static_cast<float>(rng.uniform(bw / 2.0, 1.0 - bw / 2.0));
    const float by = static_cast<float>(rng.uniform(bh / 2.0, 1.0 - bh / 2.0));
    out.box = detect::BBox{bx, by, bw, bh};
    out.category = 0;

    // Distractors first so the target stays on top if they overlap.
    const int distractors = rng.uniform_int(0, cfg_.max_distractors);
    for (int d = 0; d < distractors; ++d) {
        const float da = sample_area_ratio(rng);
        float dh = std::sqrt(da / aspect);
        float dw = da / dh;
        dw = clampf(dw, 0.02f, 0.5f);
        dh = clampf(dh, 0.02f, 0.5f);
        const detect::BBox db{static_cast<float>(rng.uniform(dw / 2.0, 1.0 - dw / 2.0)),
                              static_cast<float>(rng.uniform(dh / 2.0, 1.0 - dh / 2.0)), dw,
                              dh};
        if (detect::iou(db, out.box) > 0.05f) continue;  // keep the target unambiguous
        render_object(out.image, db, 1 + rng.uniform_int(0, 10),
                      static_cast<float>(rng.uniform(0.0, 6.28)));
    }
    render_object(out.image, out.box, 0, static_cast<float>(rng.uniform(0.0, 6.28)));

    if (cfg_.augment) {
        out.image = photometric(out.image, rng);
        if (rng.chance(0.5)) {
            out.image = hflip(out.image);
            out.box = flip_box(out.box);
        }
        if (rng.chance(0.5)) out.image = jitter_crop(out.image, out.box, rng);
    }
    return out;
}

MultiSample DetectionDataset::sample_multi(Rng& rng, int max_targets) const {
    MultiSample out;
    out.image = Tensor({1, 3, cfg_.height, cfg_.width});
    render_background(out.image, rng);
    const int targets = rng.uniform_int(1, std::max(1, max_targets));
    for (int t = 0; t < targets; ++t) {
        const float area = sample_area_ratio(rng);
        const float aspect = static_cast<float>(rng.uniform(0.6, 1.7));
        float bh = std::sqrt(area / aspect);
        float bw = area / bh;
        bw = clampf(bw, 0.03f, 0.5f);
        bh = clampf(bh, 0.03f, 0.5f);
        const detect::BBox box{static_cast<float>(rng.uniform(bw / 2.0, 1.0 - bw / 2.0)),
                               static_cast<float>(rng.uniform(bh / 2.0, 1.0 - bh / 2.0)),
                               bw, bh};
        // Keep targets separated so the ground truth is unambiguous.
        bool overlaps = false;
        for (const auto& other : out.boxes) overlaps |= detect::iou(box, other) > 0.02f;
        if (overlaps) continue;
        render_object(out.image, box, 0, static_cast<float>(rng.uniform(0.0, 6.28)));
        out.boxes.push_back(box);
    }
    return out;
}

DetectionBatch DetectionDataset::batch(int n) {
    DetectionBatch out;
    out.images = Tensor({n, 3, cfg_.height, cfg_.width});
    out.boxes.resize(static_cast<std::size_t>(n));
    // Split one child stream per image from the dataset stream up front
    // (advancing stream_ by a fixed amount per image), then render images in
    // parallel — the batch content is identical for any thread count.
    std::vector<Rng> streams;
    streams.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) streams.push_back(stream_.split());
    core::parallel_for(0, n, 1, [&](std::int64_t i0, std::int64_t i1) {
        for (int i = static_cast<int>(i0); i < static_cast<int>(i1); ++i) {
            DetectionSample s = sample(streams[static_cast<std::size_t>(i)]);
            std::copy_n(s.image.data(), s.image.size(), out.images.plane(i, 0));
            out.boxes[static_cast<std::size_t>(i)] = s.box;
        }
    });
    return out;
}

DetectionBatch DetectionDataset::validation(int n) const {
    DetectionDataset fixed(cfg_);
    fixed.cfg_.augment = false;
    fixed.stream_ = Rng(cfg_.seed ^ 0xDA7A5E7ull);
    return fixed.batch(n);
}

}  // namespace sky::data
