#include "verify/check_graph.hpp"

#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/shuffle.hpp"
#include "nn/space_to_depth.hpp"

namespace sky::verify {
namespace {

std::string shape_str(const Shape& s) { return s.str(); }

/// Expected input channel count of a module, when statically knowable.
std::optional<int> expected_in_channels(const nn::Module& m) {
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&m)) return conv->in_channels();
    if (const auto* pw = dynamic_cast<const nn::PWConv1*>(&m)) return pw->in_channels();
    if (const auto* dw = dynamic_cast<const nn::DWConv3*>(&m)) return dw->channels();
    if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(&m)) return bn->channels();
    return std::nullopt;
}

/// Per-module structural checks that need the incoming shape.  Returns the
/// inferred output shape, or nullopt when inference failed (a diagnostic
/// has been emitted and downstream checks on this chain are skipped).
std::optional<Shape> check_module(const nn::Module& m, const Shape& in, int node,
                                  Report& rep) {
    if (const std::optional<int> want = expected_in_channels(m); want && *want != in.c) {
        rep.error("G005", node,
                  m.name() + " expects " + std::to_string(*want) +
                      " input channels but its producer emits " + std::to_string(in.c) +
                      " " + shape_str(in),
                  "rewire the edge or rebuild the layer with in_ch=" +
                      std::to_string(in.c));
        return std::nullopt;
    }
    if (const auto* pw = dynamic_cast<const nn::PWConv1*>(&m)) {
        if (pw->groups() > 1 && (pw->in_channels() % pw->groups() != 0 ||
                                 pw->out_channels() % pw->groups() != 0)) {
            rep.error("G012", node,
                      m.name() + " groups=" + std::to_string(pw->groups()) +
                          " do not divide in/out channels",
                      "pick a group count dividing both channel counts");
            return std::nullopt;
        }
    }
    if (const auto* shuffle = dynamic_cast<const nn::ChannelShuffle*>(&m)) {
        if (shuffle->groups() < 1 || in.c % shuffle->groups() != 0) {
            rep.error("G012", node,
                      m.name() + " cannot permute " + std::to_string(in.c) + " channels",
                      "feed a channel count divisible by the shuffle group count");
            return std::nullopt;
        }
    }
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&m)) {
        const int k = conv->kernel(), s = conv->stride(), p = conv->padding();
        const int eh = in.h + 2 * p - k, ew = in.w + 2 * p - k;
        if (eh < 0 || ew < 0) {
            rep.error("G006", node,
                      m.name() + " kernel " + std::to_string(k) +
                          " exceeds padded input " + shape_str(in),
                      "shrink the kernel, add padding, or feed a larger map");
            return std::nullopt;
        }
        if (eh % s != 0 || ew % s != 0)
            rep.warn("G007", node,
                     m.name() + " stride " + std::to_string(s) +
                         " does not tile input " + shape_str(in) +
                         "; trailing rows/cols are silently dropped",
                     "adjust padding or input size so (dim + 2*pad - k) % stride == 0");
    }
    if (dynamic_cast<const nn::MaxPool2*>(&m) != nullptr && (in.h % 2 != 0 || in.w % 2 != 0))
        rep.warn("G007", node,
                 m.name() + " on odd input " + shape_str(in) +
                     " drops the trailing row/column",
                 "keep feature maps even-sized ahead of 2x2 pooling");
    if (const auto* s2d = dynamic_cast<const nn::SpaceToDepth*>(&m)) {
        const int b = s2d->block();
        if (b < 1 || in.h % b != 0 || in.w % b != 0)
            rep.warn("G007", node,
                     m.name() + " block " + std::to_string(b) +
                         " does not tile input " + shape_str(in) +
                         "; the reorder truncates",
                     "feed spatial dims divisible by the reorder block");
    }

    Shape out;
    try {
        out = m.out_shape(in);
    } catch (const std::exception& e) {
        rep.error("G010", node, m.name() + " shape inference threw: " + e.what(),
                  "fix the layer configuration so out_shape() accepts " + shape_str(in));
        return std::nullopt;
    }
    if (out.n <= 0 || out.c <= 0 || out.h <= 0 || out.w <= 0) {
        rep.error("G006", node,
                  m.name() + " collapses " + shape_str(in) + " to non-positive " +
                      shape_str(out),
                  "reduce the downsampling depth or enlarge the input");
        return std::nullopt;
    }
    return out;
}

}  // namespace

Shape default_input_shape() { return {1, 3, 160, 320}; }

Report check_graph(const nn::Graph& g, const Shape& input) {
    Report rep;
    const int count = static_cast<int>(g.node_count());

    if (input.n <= 0 || input.c <= 0 || input.h <= 0 || input.w <= 0)
        rep.error("G006", 0, "graph input shape " + shape_str(input) + " is degenerate",
                  "verify with a positive NCHW shape");

    // --- Edge validity (before any shape walk). ------------------------
    // Node ids are assigned in construction order, so a well-formed edge
    // always points strictly backwards; a forward or self edge is the only
    // way this DAG representation can encode a cycle.
    std::vector<bool> edges_ok(static_cast<std::size_t>(count), true);
    for (int i = 1; i < count; ++i) {
        for (const int in : g.node_inputs(static_cast<std::size_t>(i))) {
            if (in < 0 || in >= count) {
                rep.error("G001", i,
                          "edge references node " + std::to_string(in) +
                              " which does not exist (graph has " +
                              std::to_string(count) + " nodes)",
                          "connect the node to an existing producer id");
                edges_ok[static_cast<std::size_t>(i)] = false;
            } else if (in >= i) {
                rep.error("G002", i,
                          "edge references node " + std::to_string(in) +
                              " at or after itself — the graph has a cycle",
                          "nodes may only consume earlier nodes; re-add them in "
                          "topological order");
                edges_ok[static_cast<std::size_t>(i)] = false;
            }
        }
        const std::size_t arity = g.node_inputs(static_cast<std::size_t>(i)).size();
        const auto kind = g.node_kind(static_cast<std::size_t>(i));
        if ((kind == nn::Graph::NodeKind::kConcat && arity < 2) ||
            (kind == nn::Graph::NodeKind::kAdd && arity != 2))
            rep.error("G011", i, "join node has too few inputs",
                      "concat needs >= 2 producers, add exactly 2");
    }

    const int out_node = g.output_node();
    if (out_node < 0 || out_node >= count)
        rep.error("G009", out_node, "output node id is out of range",
                  "call set_output() with a node the graph owns");

    // --- Symbolic shape walk. ------------------------------------------
    // shapes[i] empty => unknown (producer already diagnosed); checks that
    // depend on an unknown shape are skipped rather than cascading.
    std::vector<std::optional<Shape>> shapes(static_cast<std::size_t>(count));
    if (count > 0) shapes[0] = input;
    for (int i = 1; i < count; ++i) {
        const std::size_t idx = static_cast<std::size_t>(i);
        if (!edges_ok[idx]) continue;
        const auto& ins = g.node_inputs(idx);
        switch (g.node_kind(idx)) {
            case nn::Graph::NodeKind::kInput:
                break;
            case nn::Graph::NodeKind::kModule: {
                if (ins.empty()) break;
                const auto& in_shape = shapes[static_cast<std::size_t>(ins[0])];
                if (!in_shape) break;
                const nn::Module* m = g.node_module(idx);
                if (m == nullptr) break;
                shapes[idx] = check_module(*m, *in_shape, i, rep);
                break;
            }
            case nn::Graph::NodeKind::kConcat: {
                std::optional<Shape> acc;
                bool all_known = true;
                int channels = 0;
                for (const int in : ins) {
                    const auto& s = shapes[static_cast<std::size_t>(in)];
                    if (!s) {
                        all_known = false;
                        break;
                    }
                    if (!acc) {
                        acc = *s;
                    } else if (s->n != acc->n || s->h != acc->h || s->w != acc->w) {
                        rep.error(
                            "G003", i,
                            "concat inputs disagree: node " + std::to_string(ins[0]) +
                                " emits " + shape_str(*acc) + " but node " +
                                std::to_string(in) + " emits " + shape_str(*s),
                            "equalise the branches (the bypass must space_to_depth "
                            "the high-resolution branch before the concat)");
                        all_known = false;
                        break;
                    }
                    channels += s->c;
                }
                if (all_known && acc) {
                    acc->c = channels;
                    shapes[idx] = acc;
                }
                break;
            }
            case nn::Graph::NodeKind::kAdd: {
                if (ins.size() != 2) break;
                const auto& a = shapes[static_cast<std::size_t>(ins[0])];
                const auto& b = shapes[static_cast<std::size_t>(ins[1])];
                if (!a || !b) break;
                if (!(*a == *b)) {
                    rep.error("G004", i,
                              "add inputs disagree: " + shape_str(*a) + " vs " +
                                  shape_str(*b),
                              "elementwise add requires identical shapes on both edges");
                    break;
                }
                shapes[idx] = a;
                break;
            }
        }
    }

    // --- Reachability (dead nodes burn memory and usually mean a wiring
    // mistake; the output itself is checked above). ---------------------
    if (out_node >= 0 && out_node < count) {
        std::vector<bool> live(static_cast<std::size_t>(count), false);
        std::vector<int> stack{out_node};
        while (!stack.empty()) {
            const int n = stack.back();
            stack.pop_back();
            if (live[static_cast<std::size_t>(n)]) continue;
            live[static_cast<std::size_t>(n)] = true;
            for (const int in : g.node_inputs(static_cast<std::size_t>(n)))
                if (in >= 0 && in < count) stack.push_back(in);
        }
        for (int i = 1; i < count; ++i)
            if (!live[static_cast<std::size_t>(i)])
                rep.warn("G008", i,
                         "node is not an ancestor of the output and never affects it",
                         "remove the node or wire it into the output path");
    }

    return rep;
}

}  // namespace sky::verify
