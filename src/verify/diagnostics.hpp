// Typed diagnostics for the static checking layer (sky::verify).
//
// Every check in src/verify reports through this vocabulary instead of
// throwing on first failure: a Report accumulates Diagnostics, each carrying
// a severity, a stable catalog code (docs/STATIC_ANALYSIS.md), the graph
// node it anchors to, a human message and a fix hint.  Callers that need
// hard enforcement (sky::Detector) convert an error-bearing Report into a
// VerifyError via enforce(); callers that want the full picture (lint
// tooling, tests) read the Report directly.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace sky::verify {

enum class Severity { kWarning, kError };

[[nodiscard]] const char* severity_name(Severity s);

/// One finding of a static check.
struct Diagnostic {
    Severity severity = Severity::kError;
    std::string code;     ///< stable catalog id, e.g. "G003" (docs/STATIC_ANALYSIS.md)
    int node = -1;        ///< graph node id the finding anchors to; -1 = whole model
    std::string message;  ///< what is wrong
    std::string hint;     ///< how to fix it

    /// "error G003 @node 7: ... (fix: ...)"
    [[nodiscard]] std::string str() const;
};

/// Accumulated findings of one verification pass.
struct Report {
    std::vector<Diagnostic> diagnostics;

    void error(std::string code, int node, std::string message, std::string hint);
    void warn(std::string code, int node, std::string message, std::string hint);

    [[nodiscard]] int error_count() const;
    [[nodiscard]] int warning_count() const;
    /// True when the pass found no errors (warnings do not fail a model).
    [[nodiscard]] bool ok() const { return error_count() == 0; }
    /// True when some diagnostic carries `code`.
    [[nodiscard]] bool has(const std::string& code) const;

    /// One line per diagnostic; empty string for a clean report.
    [[nodiscard]] std::string str() const;
};

/// One row of the diagnostic catalog: a stable code, its severity, and a
/// one-line summary.  The full prose table lives in docs/STATIC_ANALYSIS.md;
/// this is the machine-readable mirror that tools/skyanalyze prints and the
/// exhaustiveness test in tests/test_verify.cpp pins (every code must have
/// a firing test, every firing diagnostic must be catalogued).
struct CatalogEntry {
    const char* code;
    Severity severity;
    const char* summary;
};

/// Every diagnostic code the static checking layer can emit, in catalog
/// order (G = graph structure, M = SkyNetModel, Q = quantization scheme,
/// A = abstract interpretation).
[[nodiscard]] const std::vector<CatalogEntry>& catalog();

/// Thrown by enforce() when a Report carries errors; keeps the full report
/// so callers can render every finding, not just the first.
class VerifyError : public std::runtime_error {
public:
    explicit VerifyError(Report report);
    [[nodiscard]] const Report& report() const { return report_; }

private:
    Report report_;
};

/// Throw VerifyError iff `report` has errors.  Returns the report otherwise
/// so call sites can chain: auto r = enforce(check_graph(...)).
const Report& enforce(const Report& report);

}  // namespace sky::verify
