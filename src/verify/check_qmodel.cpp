#include "verify/check_qmodel.hpp"

#include <string>

#include "deploy/fold_bn.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/space_to_depth.hpp"
#include "quant/fixed_point.hpp"

namespace sky::verify {
namespace {

/// Mirrors the QLayer dispatch of quant::QEngine::QEngine — every module
/// kind the integer engine compiles.  Kept as a predicate (not a shared
/// table) because the engine's dispatch also extracts weights; this check
/// only needs the accept/reject decision plus the reason.
void check_layer(const nn::Module& m, int node, bool fp32_fallback, Report& rep) {
    // With fp32_fallback the engine dequantizes around an unsupported layer
    // instead of refusing to compile, so Q002 is a warning, not an error.
    // Q001 stays an error either way: an unfolded BN is a missing deployment
    // pass, not a layer the engine should route around.
    const auto q002 = [&](const std::string& what, const std::string& hint) {
        if (fp32_fallback)
            rep.warn("Q002", node, what + " — will run as an fp32 island", hint);
        else
            rep.error("Q002", node, what, hint);
    };
    if (m.kind() == "bn") {
        rep.error("Q001", node,
                  m.name() + " is still a BatchNorm — the integer engine has no BN op",
                  "run deploy::fold_graph_bn (or Detector::fold_bn) before quantizing");
        return;
    }
    if (const auto* pw = dynamic_cast<const nn::PWConv1*>(&m)) {
        if (pw->groups() != 1)
            q002(m.name() + ": grouped 1x1 conv is unsupported",
                 "ungroup the conv or extend the integer engine");
        return;
    }
    if (const auto* act = dynamic_cast<const nn::Activation*>(&m)) {
        if (act->act_kind() != nn::Act::kReLU && act->act_kind() != nn::Act::kReLU6)
            q002(m.name() + ": only ReLU / ReLU6 exist on the integer datapath",
                 "retrain with a supported activation or extend the engine");
        return;
    }
    if (dynamic_cast<const nn::Conv2d*>(&m) != nullptr ||
        dynamic_cast<const nn::DWConv3*>(&m) != nullptr ||
        dynamic_cast<const nn::MaxPool2*>(&m) != nullptr ||
        dynamic_cast<const nn::SpaceToDepth*>(&m) != nullptr ||
        dynamic_cast<const deploy::ChannelBias*>(&m) != nullptr ||
        dynamic_cast<const deploy::Identity*>(&m) != nullptr)
        return;
    q002(m.name() + " (kind '" + m.kind() + "') has no integer-engine lowering",
         "replace the layer or extend quant::QEngine");
}

}  // namespace

Report check_qmodel(const nn::Graph& g, const quant::QuantConfig& cfg,
                    const QuantCheckOptions& opts) {
    Report rep;

    // --- Scheme sanity (Table 7 schemes live in [2, 32] bits). ---------
    if (cfg.fm_bits < 2 || cfg.fm_bits > 32)
        rep.error("Q005", -1,
                  "fm_bits=" + std::to_string(cfg.fm_bits) +
                      " is outside the representable window [2, 32]",
                  "pick a feature-map width the shared buffer can hold");
    if (cfg.weight_bits < 2 || cfg.weight_bits > 32)
        rep.error("Q005", -1,
                  "weight_bits=" + std::to_string(cfg.weight_bits) +
                      " is outside the representable window [2, 32]",
                  "pick a weight width the DSP datapath can hold");
    if (!(cfg.fm_abs_max > 0.0f))
        rep.error("Q005", -1, "fm_abs_max must be positive to define the shared FM grid",
                  "calibrate the range (quant::calibrate_fm_abs_max) and pass it in");
    if (!(cfg.input_lo <= cfg.input_hi))
        rep.error("Q005", -1, "input_lo must be <= input_hi",
                  "declare the input range with QuantConfig::with_input_range");
    if (!rep.ok()) return rep;  // the format below would be meaningless

    const quant::FixedPointFormat fm = quant::choose_format(cfg.fm_bits, cfg.fm_abs_max);

    // --- Range checks against the shared FM format. --------------------
    if (opts.calibrated_fm_abs_max > 0.0f &&
        static_cast<double>(opts.calibrated_fm_abs_max) > fm.max_val())
        rep.error("Q003", -1,
                  "calibrated activations reach " +
                      std::to_string(opts.calibrated_fm_abs_max) +
                      " but the FM format saturates at " + std::to_string(fm.max_val()),
                  "raise fm_abs_max (or fm_bits) to cover the calibrated range");
    if (fm.frac_bits <= 0)
        rep.warn("Q006", -1,
                 "FM format has no fractional bits — activations round to integers",
                 "lower fm_abs_max or raise fm_bits to regain precision");

    // The ReLU6 clip must sit on the representable grid or every bundle
    // output saturates below the clip (a Table 7 scheme-5 style collapse).
    bool has_relu6 = false;
    for (std::size_t i = 0; i < g.node_count(); ++i) {
        const nn::Module* m = g.node_module(i);
        if (m == nullptr) continue;
        if (const auto* act = dynamic_cast<const nn::Activation*>(m);
            act != nullptr && act->act_kind() == nn::Act::kReLU6)
            has_relu6 = true;
    }
    if (has_relu6 && fm.max_val() < 6.0)
        rep.warn("Q004", -1,
                 "ReLU6 clip (6.0) exceeds the FM format maximum " +
                     std::to_string(fm.max_val()) + " — activations clip early",
                 "use fm_abs_max >= 6 so the clip constant is exact on the grid");

    // --- Per-layer lowering checks. ------------------------------------
    for (std::size_t i = 0; i < g.node_count(); ++i)
        if (const nn::Module* m = g.node_module(i); m != nullptr)
            check_layer(*m, static_cast<int>(i), cfg.fp32_fallback, rep);

    return rep;
}

}  // namespace sky::verify
