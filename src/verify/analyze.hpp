// Forward-dataflow abstract interpretation over nn::Graph (A- and E-codes).
//
// analyze() runs one topological pass per abstract domain and reports what
// the ordinary shape checks (check_graph) cannot see — properties of the
// VALUES a graph computes, provable without executing a single kernel:
//
//   * fp32 interval domain — every node gets an inclusive [lo, hi] bound on
//     its output values, derived from the actual weights (per-out-channel
//     sign-split sums; quant/intervals.hpp).  Interval blow-up past FLT_MAX
//     means Inf/NaN is statically reachable (A001).
//   * activation usefulness — a ReLU whose input is already non-negative
//     never clamps (A002, dead code); one whose input is never positive
//     emits a constant (A003, the layer erases its features).
//   * fixed-point grid domain — quant::propagate_grid_ranges on the scheme
//     in AnalyzeOptions::qconfig, the SAME transfer functions the integer
//     engine plans with, feeding the int32 accumulator proof
//     quant::prove_qgemm.  A conv whose K * max|w| * span reaches 2^31
//     cannot use the packed int8 path (A004).
//   * quantization error domain — quant::certify_error propagates a sound
//     per-out-channel bound on |int8 - fp32| through every node, composing
//     the exact engine rounding model with the fp32 intervals (Lipschitz
//     factors) and the grid enclosures (clamp caps).  Against the
//     qconfig.error_budget it yields E001 (a layer's certified bound
//     crosses the budget), E002 (the bound became unbounded — tracking
//     lost), E003 (dominant-error layers, top-k contributors) and E004
//     (budget-infeasible bit-width: minimum fractional bits needed).
//   * tensor liveness — deploy::plan_activations' static activation memory
//     plan (exact peak bytes + arena slots), the numbers QEngine's arena
//     executor and serve's capacity gauge run on.
//
// Diagnostic catalog (full table in docs/STATIC_ANALYSIS.md):
//   A001 warn   value interval exceeds FLT_MAX: Inf/NaN statically reachable
//   A002 warn   activation clamp provably never fires (dead clamp)
//   A003 warn   activation always saturates (output provably constant)
//   A004 warn   int32 accumulator bound K * max|w| * span reaches 2^31
//   E001 warn   certified error bound exceeds the per-layer budget
//   E002 warn   certified error bound unbounded (tracking lost)
//   E003 warn   dominant-error layer report (top contributors)
//   E004 warn   budget infeasible at this bit-width (min fractional bits)
// All A/E-codes are warnings: they flag numerically suspect or wasteful
// graphs, not graphs that cannot execute.  (skyanalyze --deny promotes
// selected codes to errors; the CI lint lane denies E002.)
#pragma once

#include <vector>

#include "deploy/memory_plan.hpp"
#include "nn/graph.hpp"
#include "quant/qconfig.hpp"
#include "quant/qerror.hpp"
#include "quant/ranges.hpp"
#include "verify/diagnostics.hpp"

namespace sky::verify {

/// Inclusive bound on a node's fp32 output values.  known == false means
/// the analysis lost track (a module kind without a transfer function) and
/// every downstream check involving this node is skipped — soundness over
/// false alarms.
struct Interval {
    double lo = 0.0;
    double hi = 0.0;
    bool known = false;
};

struct AnalyzeOptions {
    /// Scheme for the fixed-point grid / error domains and the A004
    /// accumulator proof; the fp32 domain also anchors the graph input at
    /// [input_lo, input_hi].  qconfig.error_budget > 0 arms E001/E003/E004.
    quant::QuantConfig qconfig{};
    bool value_ranges = true;  ///< run the fp32 interval domain (A001-A003)
    bool grid_ranges = true;   ///< run the grid domain + A004 proofs
    bool error_bounds = true;  ///< run the certified error domain (E-codes)
    bool memory_plan = true;   ///< run the liveness / arena planner
};

/// Everything one analyze() pass derives.  Vectors are indexed by graph
/// node id; disabled domains leave their vector empty.
struct Analysis {
    Report report;
    std::vector<Interval> value_ranges;
    std::vector<quant::GridRange> grid_ranges;
    quant::ErrorAnalysis errors;  ///< certified |int8 - fp32| bounds
    bool has_errors = false;      ///< false when the error domain was disabled
    deploy::MemoryPlan plan;
    bool has_plan = false;  ///< false when planning failed or was disabled
};

/// Abstractly interpret `g` for inputs of shape `input` (batch and spatial
/// dims only matter to the memory plan).  Never throws on analyzable
/// graphs; a graph malformed enough to break shape inference simply loses
/// its memory plan (run check_graph first for the structural diagnostics).
[[nodiscard]] Analysis analyze(const nn::Graph& g, const Shape& input,
                               const AnalyzeOptions& opts = {});

}  // namespace sky::verify
