#include "verify/diagnostics.hpp"

#include <utility>

namespace sky::verify {

const char* severity_name(Severity s) {
    switch (s) {
        case Severity::kWarning: return "warning";
        case Severity::kError: return "error";
    }
    return "?";
}

std::string Diagnostic::str() const {
    std::string out = severity_name(severity);
    out += ' ';
    out += code;
    if (node >= 0) out += " @node " + std::to_string(node);
    out += ": " + message;
    if (!hint.empty()) out += " (fix: " + hint + ")";
    return out;
}

void Report::error(std::string code, int node, std::string message, std::string hint) {
    diagnostics.push_back({Severity::kError, std::move(code), node, std::move(message),
                           std::move(hint)});
}

void Report::warn(std::string code, int node, std::string message, std::string hint) {
    diagnostics.push_back({Severity::kWarning, std::move(code), node, std::move(message),
                           std::move(hint)});
}

int Report::error_count() const {
    int n = 0;
    for (const Diagnostic& d : diagnostics)
        if (d.severity == Severity::kError) ++n;
    return n;
}

int Report::warning_count() const {
    return static_cast<int>(diagnostics.size()) - error_count();
}

bool Report::has(const std::string& code) const {
    for (const Diagnostic& d : diagnostics)
        if (d.code == code) return true;
    return false;
}

std::string Report::str() const {
    std::string out;
    for (const Diagnostic& d : diagnostics) {
        out += d.str();
        out += '\n';
    }
    return out;
}

const std::vector<CatalogEntry>& catalog() {
    static const std::vector<CatalogEntry> kCatalog = {
        {"G001", Severity::kError, "dangling edge (input id out of range)"},
        {"G002", Severity::kError, "cyclic edge (node consumes itself or a later node)"},
        {"G003", Severity::kError, "concat inputs disagree on batch/spatial dims"},
        {"G004", Severity::kError, "add inputs disagree on shape"},
        {"G005", Severity::kError, "channel mismatch between producer and consumer"},
        {"G006", Severity::kError, "feature map collapses to a non-positive dimension"},
        {"G007", Severity::kWarning,
         "stride/padding/pool/reorder silently truncates rows or cols"},
        {"G008", Severity::kWarning, "node unreachable from the output"},
        {"G009", Severity::kError, "output node id invalid"},
        {"G010", Severity::kError, "module shape inference threw"},
        {"G011", Severity::kError, "join node has too few inputs"},
        {"G012", Severity::kError,
         "channel count incompatible with grouped conv / shuffle"},
        {"M001", Severity::kError, "SkyNetModel feature tap node invalid"},
        {"M002", Severity::kWarning,
         "feature tap channel metadata disagrees with the graph"},
        {"M003", Severity::kError, "SkyNetModel has no network"},
        {"Q001", Severity::kError, "BatchNorm layer left unfolded ahead of quantization"},
        {"Q002", Severity::kError, "layer the integer engine cannot compile"},
        {"Q003", Severity::kError, "calibrated activation range exceeds the FM format"},
        {"Q004", Severity::kWarning, "ReLU6 clip constant saturates in the FM format"},
        {"Q005", Severity::kError,
         "degenerate scheme (bit-widths / fm_abs_max out of range)"},
        {"Q006", Severity::kWarning, "FM format has no fractional bits (integer-only grid)"},
        {"A001", Severity::kWarning,
         "value interval exceeds fp32 range: Inf/NaN statically reachable"},
        {"A002", Severity::kWarning, "activation clamp provably never fires (dead clamp)"},
        {"A003", Severity::kWarning,
         "activation always saturates (output provably constant)"},
        {"A004", Severity::kWarning,
         "int32 accumulator bound K * max|w| * span reaches 2^31"},
        {"E001", Severity::kWarning,
         "certified |int8 - fp32| bound exceeds the per-layer error budget"},
        {"E002", Severity::kWarning,
         "certified error bound unbounded (error tracking lost)"},
        {"E003", Severity::kWarning,
         "dominant-error layer report (top contributors to the output bound)"},
        {"E004", Severity::kWarning,
         "error budget infeasible at this bit-width (minimum fractional bits)"},
    };
    return kCatalog;
}

namespace {

std::string verify_error_message(const Report& r) {
    std::string msg = "model verification failed with " +
                      std::to_string(r.error_count()) + " error(s):\n" + r.str();
    if (!msg.empty() && msg.back() == '\n') msg.pop_back();
    return msg;
}

}  // namespace

VerifyError::VerifyError(Report report)
    : std::runtime_error(verify_error_message(report)), report_(std::move(report)) {}

const Report& enforce(const Report& report) {
    if (!report.ok()) throw VerifyError(report);
    return report;
}

}  // namespace sky::verify
