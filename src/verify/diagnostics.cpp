#include "verify/diagnostics.hpp"

#include <utility>

namespace sky::verify {

const char* severity_name(Severity s) {
    switch (s) {
        case Severity::kWarning: return "warning";
        case Severity::kError: return "error";
    }
    return "?";
}

std::string Diagnostic::str() const {
    std::string out = severity_name(severity);
    out += ' ';
    out += code;
    if (node >= 0) out += " @node " + std::to_string(node);
    out += ": " + message;
    if (!hint.empty()) out += " (fix: " + hint + ")";
    return out;
}

void Report::error(std::string code, int node, std::string message, std::string hint) {
    diagnostics.push_back({Severity::kError, std::move(code), node, std::move(message),
                           std::move(hint)});
}

void Report::warn(std::string code, int node, std::string message, std::string hint) {
    diagnostics.push_back({Severity::kWarning, std::move(code), node, std::move(message),
                           std::move(hint)});
}

int Report::error_count() const {
    int n = 0;
    for (const Diagnostic& d : diagnostics)
        if (d.severity == Severity::kError) ++n;
    return n;
}

int Report::warning_count() const {
    return static_cast<int>(diagnostics.size()) - error_count();
}

bool Report::has(const std::string& code) const {
    for (const Diagnostic& d : diagnostics)
        if (d.code == code) return true;
    return false;
}

std::string Report::str() const {
    std::string out;
    for (const Diagnostic& d : diagnostics) {
        out += d.str();
        out += '\n';
    }
    return out;
}

namespace {

std::string verify_error_message(const Report& r) {
    std::string msg = "model verification failed with " +
                      std::to_string(r.error_count()) + " error(s):\n" + r.str();
    if (!msg.empty() && msg.back() == '\n') msg.pop_back();
    return msg;
}

}  // namespace

VerifyError::VerifyError(Report report)
    : std::runtime_error(verify_error_message(report)), report_(std::move(report)) {}

const Report& enforce(const Report& report) {
    if (!report.ok()) throw VerifyError(report);
    return report;
}

}  // namespace sky::verify
