// Static model verifier — walks an nn::Graph WITHOUT executing it.
//
// The failure modes this catches are exactly the ones that otherwise
// surface as a runtime crash (or worse, a wrong-but-plausible IoU) deep
// inside the build -> fold_bn -> quantize funnel: a bypass concat whose
// branches disagree on spatial size after reordering (paper Sec. 3.3), a
// conv fed the wrong channel count, a stride/padding combination that
// silently truncates the feature map, a node wired to an edge that does
// not exist.  check_graph() runs symbolic shape inference through every
// node kind the repo emits (conv / dwconv / pwconv / pooling /
// space_to_depth / shuffle / concat / add) and reports typed diagnostics;
// it never runs a kernel and never allocates a feature map.
//
// Diagnostic catalog (full table in docs/STATIC_ANALYSIS.md):
//   G001 error  dangling edge (input id out of range)
//   G002 error  cyclic edge (node consumes itself or a later node)
//   G003 error  concat inputs disagree on batch/spatial dims
//   G004 error  add inputs disagree on shape
//   G005 error  channel mismatch between producer and consumer
//   G006 error  feature map collapses to a non-positive dimension
//   G007 warn   stride/padding/pool/reorder silently truncates rows or cols
//   G008 warn   node unreachable from the output
//   G009 error  output node id invalid
//   G010 error  module shape inference threw
//   G011 error  join node has too few inputs
//   G012 error  channel count incompatible with grouped conv / shuffle
// The SkyNetModel-level M-codes live in skynet/check_model.hpp: verify
// stays below skynet in the layering manifest (tools/skylint/layers.txt).
#pragma once

#include "nn/graph.hpp"
#include "verify/diagnostics.hpp"

namespace sky::verify {

/// Canonical DAC-SDC input shape used when a caller has no better one
/// (paper input resolution 160x320).  Structural checks are shape-generic;
/// the spatial-truncation warnings are evaluated at this shape.
[[nodiscard]] Shape default_input_shape();

/// Statically verify `g` for an input of shape `input`.
[[nodiscard]] Report check_graph(const nn::Graph& g, const Shape& input);

}  // namespace sky::verify
