// Static verifier for the quantized deployment path (sky::quant::QEngine).
//
// The FPGA datapath of Sec. 6.4 assumes every feature map fits ONE shared
// fixed-point format and every layer is something the integer engine can
// compile.  A violation today surfaces either as a QEngine constructor
// throw (best case) or as a silently saturating activation that turns into
// a wrong-but-plausible IoU (worst case, Table 7's failure mode).
// check_qmodel() walks the BN-folded graph without compiling it and
// reports every violation at once, including range checks against
// calibrated activation statistics when the caller has them.
//
// Diagnostic catalog (full table in docs/STATIC_ANALYSIS.md):
//   Q001 error  BatchNorm layer left unfolded ahead of quantization
//   Q002 error  layer the integer engine cannot compile
//   Q003 error  calibrated activation range exceeds the FM format
//   Q004 warn   ReLU6 clip constant saturates in the FM format
//   Q005 error  degenerate scheme (bit-widths / fm_abs_max out of range)
//   Q006 warn   FM format has no fractional bits (integer-only grid)
#pragma once

#include "nn/graph.hpp"
#include "quant/qconfig.hpp"
#include "verify/diagnostics.hpp"

namespace sky::verify {

struct QuantCheckOptions {
    /// Largest activation magnitude observed on calibration data
    /// (quant::calibrate_fm_abs_max); 0 = unknown, range checks that need
    /// it are skipped.
    float calibrated_fm_abs_max = 0.0f;
};

/// Statically verify that `g` can deploy under `cfg`.  `g` is expected to
/// be BN-folded already (unfolded BN is diagnostic Q001, not a throw).
/// With cfg.fp32_fallback set, Q002 (unsupported layer) downgrades to a
/// warning — the engine dequantizes around such layers instead of refusing.
[[nodiscard]] Report check_qmodel(const nn::Graph& g, const quant::QuantConfig& cfg,
                                  const QuantCheckOptions& opts = {});

}  // namespace sky::verify
