#include "verify/analyze.hpp"

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "nn/conv.hpp"
#include "nn/pwconv.hpp"
#include "quant/fixed_point.hpp"
#include "quant/intervals.hpp"

namespace sky::verify {
namespace {

std::string num_str(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4g", v);
    return buf;
}

std::string node_name(const nn::Graph& g, int node) {
    const auto i = static_cast<std::size_t>(node);
    switch (g.node_kind(i)) {
        case nn::Graph::NodeKind::kInput: return "input";
        case nn::Graph::NodeKind::kConcat: return "concat";
        case nn::Graph::NodeKind::kAdd: return "add";
        case nn::Graph::NodeKind::kModule: {
            const nn::Module* m = g.node_module(i);
            return m != nullptr ? m->name() : "node";
        }
    }
    return "node";
}

bool blown(const Interval& v) {
    return quant::interval_blown({v.lo, v.hi, v.known});
}

/// A004: the int32 accumulator proof for graph-level conv nodes, on the
/// shared grid domain the engine itself plans with.
void prove_accumulators(const nn::Graph& g, const quant::QuantConfig& cfg,
                        const std::vector<quant::GridRange>& gr, Report& rep) {
    for (std::size_t i = 0; i < g.node_count(); ++i) {
        if (g.node_kind(i) != nn::Graph::NodeKind::kModule) continue;
        const nn::Module* m = g.node_module(i);
        const std::vector<int>& ins = g.node_inputs(i);
        if (m == nullptr || ins.empty()) continue;
        int K = 0, pad = 0;
        const Tensor* w = nullptr;
        if (const auto* conv = dynamic_cast<const nn::Conv2d*>(m)) {
            K = conv->in_channels() * conv->kernel() * conv->kernel();
            pad = conv->padding();
            w = &conv->weight();
        } else if (const auto* pw = dynamic_cast<const nn::PWConv1*>(m)) {
            if (pw->groups() != 1) continue;  // grouped conv never takes qgemm
            K = pw->in_channels();
            w = &pw->weight();
        } else {
            continue;
        }
        const quant::FixedPointFormat wf =
            quant::choose_format(cfg.weight_bits, w->abs_max());
        const std::int64_t wmax = quant::quantized_abs_max(*w, wf);
        const quant::ConvProof p = quant::prove_qgemm(
            K, pad, cfg.weight_bits, wmax, gr[static_cast<std::size_t>(ins[0])]);
        if (p.eligible || p.reason.find("accumulator") == std::string::npos) continue;
        rep.warn("A004", static_cast<int>(i),
                 m->name() + ": int32 accumulator bound reached: K=" +
                     std::to_string(K) + " * max|w|=" + std::to_string(wmax) +
                     " * span=" + std::to_string(p.span) + " = " +
                     std::to_string(p.acc_bound) + " >= 2^31",
                 "the packed int8 GEMM path is unavailable here; narrow "
                 "weight_bits / fm_abs_max or accept the reference path");
    }
}

/// E001-E004: judge the certified error bounds against the configured
/// per-layer budget.  E001 fires only where the budget is first crossed
/// (transition), E002 only where tracking is first lost, E003/E004 once at
/// the output node.
void report_error_bounds(const nn::Graph& g, const quant::QuantConfig& cfg,
                         const quant::ErrorAnalysis& ea, Report& rep) {
    if (ea.first_unknown_node >= 0)
        rep.warn("E002", ea.first_unknown_node,
                 node_name(g, ea.first_unknown_node) +
                     ": certified error bound lost: " + ea.unknown_reason,
                 "the |int8 - fp32| deviation is no longer certified past this "
                 "node; give the module an error transfer function or restructure "
                 "the graph");

    const double budget = cfg.error_budget;
    if (budget <= 0.0) return;

    for (std::size_t i = 0; i < ea.nodes.size(); ++i) {
        const quant::ErrBound& e = ea.nodes[i].out;
        if (!e.known || e.bound <= budget) continue;
        bool inputs_ok = true;  // transition: every input still inside budget
        for (const int in : g.node_inputs(i)) {
            const quant::ErrBound& u = ea.nodes[static_cast<std::size_t>(in)].out;
            inputs_ok = inputs_ok && u.known && u.bound <= budget;
        }
        if (!inputs_ok) continue;
        rep.warn("E001", static_cast<int>(i),
                 node_name(g, static_cast<int>(i)) +
                     ": certified |int8 - fp32| bound " + num_str(e.bound) +
                     " exceeds the per-layer error budget " + num_str(budget),
                 "add fractional bits (fm_bits), shrink fm_abs_max, or raise "
                 "the budget");
    }

    if (!ea.output_known || ea.output_bound <= budget || ea.output_node < 0) return;

    std::string top;
    for (const auto& [node, contribution] : ea.dominant(3)) {
        if (!top.empty()) top += ", ";
        top += node_name(g, node) + "@" + std::to_string(node) + " (" +
               num_str(contribution) + ")";
    }
    rep.warn("E003", ea.output_node,
             "output error bound " + num_str(ea.output_bound) +
                 " dominated by: " + (top.empty() ? std::string("(none)") : top),
             "error introduced per layer weighted by its downstream gain; "
             "fix the top contributors first");

    try {
        const quant::GridSpec spec = quant::make_grid_spec(cfg);
        const int frac = spec.fm.frac_bits;
        const int need = quant::min_frac_bits_for_budget(ea.output_bound, budget, frac);
        if (need > frac)
            rep.warn("E004", ea.output_node,
                     "error budget " + num_str(budget) + " is infeasible at fm_bits=" +
                         std::to_string(cfg.fm_bits) + " (" + std::to_string(frac) +
                         " fractional bits): certified bound " +
                         num_str(ea.output_bound) + " needs >= " +
                         std::to_string(need) + " fractional bits (fm_bits >= " +
                         std::to_string(cfg.fm_bits + (need - frac)) +
                         " at this fm_abs_max)",
                     "the bound's rounding terms scale with the FM step; widen "
                     "the feature-map word or relax the budget");
    } catch (const std::invalid_argument&) {
        // Degenerate scheme: the error domain already reported E002.
    }
}

}  // namespace

Analysis analyze(const nn::Graph& g, const Shape& input, const AnalyzeOptions& opts) {
    Analysis a;
    const std::size_t n = g.node_count();

    quant::IntervalAnalysis vals;
    bool has_vals = false;
    if (opts.value_ranges || opts.error_bounds) {
        vals = quant::propagate_value_intervals(g, opts.qconfig);
        has_vals = true;
    }

    if (opts.value_ranges) {
        a.value_ranges.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            a.value_ranges[i] = {vals.values[i].lo, vals.values[i].hi,
                                 vals.values[i].known};
        for (const quant::ActEvent& e : vals.events)
            a.report.warn(e.kind == quant::ActEvent::Kind::kDeadClamp ? "A002" : "A003",
                          e.node, e.message, e.hint);
        // A001 fires only where boundedness is LOST — downstream nodes of a
        // blown interval would all re-report otherwise.
        for (std::size_t i = 0; i < n; ++i) {
            if (!blown(a.value_ranges[i])) continue;
            bool input_blown = false;
            for (const int in : g.node_inputs(i))
                input_blown =
                    input_blown || blown(a.value_ranges[static_cast<std::size_t>(in)]);
            if (input_blown) continue;
            a.report.warn(
                "A001", static_cast<int>(i),
                node_name(g, static_cast<int>(i)) + ": value interval " +
                    quant::interval_str(vals.values[i]) +
                    " exceeds fp32 range: Inf/NaN statically reachable",
                "rescale the weights or normalise the input (intervals are "
                "conservative; calibrate to confirm)");
        }
    }

    bool has_grid = false;
    if (opts.grid_ranges || opts.error_bounds) {
        try {
            const quant::GridSpec spec = quant::make_grid_spec(opts.qconfig);
            std::vector<quant::GridRange> gr = quant::propagate_grid_ranges(g, spec);
            if (opts.grid_ranges) prove_accumulators(g, opts.qconfig, gr, a.report);
            a.grid_ranges = std::move(gr);
            has_grid = true;
        } catch (const std::invalid_argument&) {
            // Degenerate scheme: check_qmodel reports it as Q005; the grid
            // domain has nothing sound to say.
        }
    }

    if (opts.error_bounds) {
        a.errors = has_vals && has_grid
                       ? quant::certify_error(g, opts.qconfig, vals, a.grid_ranges)
                       : quant::certify_error(g, opts.qconfig);
        a.has_errors = true;
        report_error_bounds(g, opts.qconfig, a.errors, a.report);
        if (!opts.grid_ranges) a.grid_ranges.clear();
    }

    if (opts.memory_plan) {
        try {
            a.plan = deploy::plan_activations(g, input);
            a.has_plan = true;
        } catch (const std::invalid_argument&) {
            // Shape inference failed — check_graph carries the diagnostics.
        }
    }
    return a;
}

}  // namespace sky::verify
