#include "train/trainer.hpp"

#include <chrono>

#include "core/thread_pool.hpp"
#include "data/augment.hpp"
#include "detect/metrics.hpp"
#include "io/serialize.hpp"
#include "obs/trace.hpp"

namespace sky::train {

DetectTrainResult train_detector(nn::Module& net, const detect::YoloHead& head,
                                 data::DetectionDataset& dataset,
                                 const DetectTrainConfig& cfg, Rng& rng) {
    std::vector<nn::ParamRef> params;
    net.collect_params(params);
    nn::SGD opt(params, {cfg.lr_start, cfg.momentum, cfg.weight_decay, cfg.grad_clip});
    nn::ExpSchedule sched(cfg.lr_start, cfg.lr_end, cfg.steps);

    obs::Logger& log = obs::resolve(cfg.log, cfg.verbose);
    if (cfg.metrics)
        cfg.metrics->set("train.threads", core::ThreadPool::global().size());
    DetectTrainResult result;
    net.set_training(true);
    const int base_h = dataset.config().height;
    const int base_w = dataset.config().width;
    const float scales[3] = {0.75f, 1.0f, 1.25f};
    using Clock = std::chrono::steady_clock;
    for (int step = 0; step < cfg.steps; ++step) {
        obs::Span span("train/step", "train");
        const Clock::time_point t0 = cfg.metrics ? Clock::now() : Clock::time_point{};
        opt.set_lr(sched.at(step));
        data::DetectionBatch b = dataset.batch(cfg.batch);
        Tensor input = std::move(b.images);
        if (cfg.multi_scale) {
            const float s = scales[rng.uniform_int(0, 2)];
            if (s != 1.0f) {
                // Keep dims multiples of 8 so three poolings stay clean.
                const int h = std::max(16, static_cast<int>(base_h * s) / 8 * 8);
                const int w = std::max(16, static_cast<int>(base_w * s) / 8 * 8);
                input = data::resize_bilinear(input, h, w);
            }
        }
        Tensor raw = net.forward(input);
        Tensor grad;
        const float loss = head.loss(raw, b.boxes, grad);
        result.loss_curve.push_back(loss);
        opt.zero_grad();
        net.backward(grad);
        opt.step();
        if (cfg.metrics) {
            cfg.metrics->add("train.detect.steps");
            cfg.metrics->set("train.detect.loss", loss);
            cfg.metrics->set("train.detect.lr", opt.lr());
            cfg.metrics->observe(
                "train.detect.step_ms",
                std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
        }
        if (step % 50 == 0)
            log.infof("  step %4d  loss %.4f  lr %.4g", step, loss, opt.lr());
        if (!cfg.checkpoint_path.empty() && cfg.checkpoint_every > 0 &&
            (step + 1) % cfg.checkpoint_every == 0)
            io::save_weights(net, cfg.checkpoint_path);
    }
    result.final_loss = result.loss_curve.empty() ? 0.0f : result.loss_curve.back();
    if (!cfg.checkpoint_path.empty()) io::save_weights(net, cfg.checkpoint_path);

    net.set_training(false);
    {
        obs::Span span("train/validate", "train");
        result.val_iou = evaluate_detector(net, head, dataset.validation(cfg.val_images));
    }
    if (cfg.metrics) {
        cfg.metrics->set("train.detect.final_loss", result.final_loss);
        cfg.metrics->set("train.detect.val_iou", result.val_iou);
    }
    log.infof("  done: val IoU %.3f  final loss %.4f", result.val_iou, result.final_loss);
    return result;
}

double evaluate_detector(nn::Module& net, const detect::YoloHead& head,
                         const data::DetectionBatch& val) {
    const Tensor raw = net.forward(val.images);
    return detect::mean_iou(head.decode(raw), val.boxes);
}

ClassifyTrainResult train_classifier(nn::Module& net, data::ClassificationDataset& dataset,
                                     const ClassifyTrainConfig& cfg) {
    std::vector<nn::ParamRef> params;
    net.collect_params(params);
    nn::SGD opt(params, {cfg.lr_start, cfg.momentum, cfg.weight_decay, cfg.grad_clip});
    nn::ExpSchedule sched(cfg.lr_start, cfg.lr_end, cfg.steps);

    obs::Logger& log = obs::resolve(cfg.log, cfg.verbose);
    ClassifyTrainResult result;
    net.set_training(true);
    using Clock = std::chrono::steady_clock;
    for (int step = 0; step < cfg.steps; ++step) {
        obs::Span span("train/step", "train");
        const Clock::time_point t0 = cfg.metrics ? Clock::now() : Clock::time_point{};
        opt.set_lr(sched.at(step));
        data::ClassificationBatch b = dataset.batch(cfg.batch);
        Tensor logits = net.forward(b.images);
        Tensor grad;
        const data::CeResult ce = data::softmax_xent(logits, b.labels, grad);
        result.final_loss = ce.loss;
        opt.zero_grad();
        net.backward(grad);
        opt.step();
        if (cfg.metrics) {
            cfg.metrics->add("train.classify.steps");
            cfg.metrics->set("train.classify.loss", ce.loss);
            cfg.metrics->set("train.classify.batch_accuracy", ce.accuracy);
            cfg.metrics->observe(
                "train.classify.step_ms",
                std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
        }
        if (step % 50 == 0)
            log.infof("  step %4d  loss %.4f  acc %.3f", step, ce.loss, ce.accuracy);
    }
    net.set_training(false);
    result.val_accuracy = evaluate_classifier(net, dataset.validation(cfg.val_images));
    if (cfg.metrics) cfg.metrics->set("train.classify.val_accuracy", result.val_accuracy);
    return result;
}

double evaluate_classifier(nn::Module& net, const data::ClassificationBatch& val) {
    const Tensor logits = net.forward(val.images);
    int correct = 0;
    const Shape s = logits.shape();
    for (int n = 0; n < s.n; ++n) {
        const float* lp = logits.plane(n, 0);
        int arg = 0;
        for (int k = 1; k < s.c; ++k)
            if (lp[k] > lp[arg]) arg = k;
        if (arg == val.labels[static_cast<std::size_t>(n)]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(s.n);
}

}  // namespace sky::train
