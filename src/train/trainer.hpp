// Training loops: single-object detection (the DAC-SDC task) and image
// classification (backbone studies).  Mirrors the paper's §6.1 recipe at
// reduced scale: SGD, exponential LR decay, multi-scale inputs and the
// augmentation pipeline from data/augment.hpp.
#pragma once

#include "data/synth_classification.hpp"
#include "data/synth_detection.hpp"
#include "detect/yolo_head.hpp"
#include "nn/module.hpp"
#include <string>

#include "nn/optimizer.hpp"
#include "obs/logger.hpp"
#include "obs/registry.hpp"

namespace sky::train {

struct DetectTrainConfig {
    int steps = 300;
    int batch = 8;
    float lr_start = 0.05f;
    float lr_end = 0.005f;
    float momentum = 0.9f;
    float weight_decay = 1e-4f;
    float grad_clip = 5.0f;
    bool multi_scale = true;  ///< randomly rescale each batch by {0.75, 1, 1.25}
    int val_images = 64;
    bool verbose = false;  ///< with no explicit `log`, selects the stdout sink
    /// Progress sink; nullptr falls back to `verbose` (obs::resolve).
    obs::Logger* log = nullptr;
    /// When set, receives step timing (`train.step_ms` histogram), loss and
    /// validation metrics; nullptr records nothing.
    obs::Registry* metrics = nullptr;
    /// When non-empty, save the weights to this path every
    /// `checkpoint_every` steps (and once more after training).
    std::string checkpoint_path;
    int checkpoint_every = 100;
};

struct DetectTrainResult {
    double val_iou = 0.0;
    float final_loss = 0.0f;
    std::vector<float> loss_curve;
};

/// Train `net` (whose output feeds `head`) on `dataset`; returns validation
/// mean IoU.  The net is left in eval mode.
DetectTrainResult train_detector(nn::Module& net, const detect::YoloHead& head,
                                 data::DetectionDataset& dataset,
                                 const DetectTrainConfig& cfg, Rng& rng);

/// Mean IoU of `net`+`head` on a fixed validation batch (net must be in the
/// desired mode already; this does not flip training state).
[[nodiscard]] double evaluate_detector(nn::Module& net, const detect::YoloHead& head,
                                       const data::DetectionBatch& val);

struct ClassifyTrainConfig {
    int steps = 300;
    int batch = 16;
    float lr_start = 0.05f;
    float lr_end = 0.005f;
    float momentum = 0.9f;
    float weight_decay = 1e-4f;
    float grad_clip = 5.0f;
    int val_images = 128;
    bool verbose = false;  ///< with no explicit `log`, selects the stdout sink
    obs::Logger* log = nullptr;
    obs::Registry* metrics = nullptr;
};

struct ClassifyTrainResult {
    double val_accuracy = 0.0;
    float final_loss = 0.0f;
};

ClassifyTrainResult train_classifier(nn::Module& net, data::ClassificationDataset& dataset,
                                     const ClassifyTrainConfig& cfg);

/// Accuracy of a classifier on a fixed validation batch.
[[nodiscard]] double evaluate_classifier(nn::Module& net,
                                         const data::ClassificationBatch& val);

}  // namespace sky::train
