// Packed u8 x s16 -> int32 integer GEMM engine — the quantized twin of
// core/gemm.hpp, built from the same GotoBLAS panel architecture:
//
//   qpack_a / qpack_b    copy s8/s16 weights / u8 activations into k-paired
//                        register-tile panels (core/qgemm_ukernel.hpp) sized
//                        for the active micro-kernel (core/simd.hpp level),
//   qgemm_packed         walks the C tile grid, one int32 register tile per
//                        micro-kernel call, parallelised over whole tiles
//                        through the global ThreadPool,
//   qim2col_packed       lowers a CHW fixed-point image straight into the
//                        u8 panel layout with a zero-point offset applied.
//
// Zero-point handling is the caller's contract (quant/qengine.cpp): the u8
// operand stores u = x - lo for a layer whose inputs are proven to lie in
// [lo, lo + 255] on the fixed-point grid, and the exact correction
// Sum_k(w * x) = Sum_k(w * u) + lo * rowsum(w) is folded into the bias using
// the per-row weight sums that qpack_a records.  The A panel holds s16 taps,
// so weights up to 15 bits run natively in ONE pass — the s16*s16 pairwise
// products vpmaddwd sums are exact in int32 (max |a|*|b| pair sum is
// 2*32767*255, far below INT32_MAX).
//
// Overflow contract: the int32 ACCUMULATION is exact iff
// K * max|a| * max|b| < 2^31.  qpack_a (s8 source) guarantees that for
// K <= qgemm_max_k(); qpack_a_wide callers must prove the value-aware bound
// themselves (quant/qengine.cpp plans it per layer from the propagated
// ranges).
//
// Determinism is stronger than the fp32 engine's: accumulation is exact
// integer arithmetic, so results are bitwise identical across thread counts
// AND across every SIMD level (tests/test_qgemm.cpp pins both).
#pragma once

#include <cstdint>
#include <vector>

namespace sky::core {

/// Register-tile geometry of the active integer micro-kernel.
[[nodiscard]] int qgemm_mr();
[[nodiscard]] int qgemm_nr();
/// Name of the active integer micro-kernel ("scalar" / "generic" / "avx2").
[[nodiscard]] const char* qgemm_kernel_name();
/// Largest contraction length qgemm_packed accepts (int32 accumulation is
/// provably overflow-free up to this K for s8-range A operands; wide packs
/// additionally owe the value-aware bound in the header comment).
[[nodiscard]] int qgemm_max_k();

/// s16 operand (weights) packed into MR-row k-paired panels: panel p holds
/// rows [p*mr, p*mr + mr) as data[p*mr*KP + k2*mr*2 + m*2 + t] where
/// KP = K rounded up to even and (k2, t) addresses tap 2*k2 + t.  Rows past
/// M and the phantom odd-K tap are zero.  `rowsum[m]` is the sum of row m of
/// A over the real K taps — the zero-point correction term.
struct QPackedA {
    int M = 0;
    int K = 0;
    int mr = 0;
    std::vector<std::int16_t> data;
    std::vector<std::int64_t> rowsum;
    [[nodiscard]] bool empty() const { return data.empty(); }
    void clear() { *this = QPackedA{}; }
};

/// u8 operand (activations) packed into NR-column k-paired panels: panel q
/// holds columns [q*nr, q*nr + nr) as data[q*nr*KP + k2*nr*2 + j*2 + t],
/// zero-padded past N and past K.
struct QPackedB {
    int K = 0;
    int N = 0;
    int nr = 0;
    std::vector<std::uint8_t> data;
    [[nodiscard]] bool empty() const { return data.empty(); }
    void clear() { *this = QPackedB{}; }
};

/// Pack A (M x K row-major s8) for the active micro-kernel and record the
/// per-row sums.
void qpack_a(int M, int K, const std::int8_t* A, QPackedA& out);

/// Pack A (M x K row-major int32, every value in the s16 range) for the
/// active micro-kernel — the wide-weight (9..15 bit) path.  Throws
/// std::domain_error on a value outside [-32768, 32767]; the caller owns the
/// accumulator bound K * max|A| * max|B| < 2^31.
void qpack_a_wide(int M, int K, const std::int32_t* A, QPackedA& out);

/// Pack B (K x N row-major u8) for the active micro-kernel.
void qpack_b(int K, int N, const std::uint8_t* B, QPackedB& out);

/// C(M x N) += A * B over packed operands with exact int32 accumulation.
/// A.K must equal B.K and both packs must match the active tile geometry
/// (std::logic_error otherwise); K > qgemm_max_k() throws std::length_error.
/// C is row-major with leading dimension N.
void qgemm_packed(const QPackedA& A, const QPackedB& B, std::int32_t* C);

/// im2col of one CHW image of fixed-point grid values straight into the u8
/// panel layout, storing u = x - lo per tap.  Caller guarantees every pixel
/// (and 0, whenever pad > 0) lies in [lo, lo + 255].  Equivalent to im2col()
/// followed by qpack_b() of (x - lo).
void qim2col_packed(const std::int32_t* img, int C, int H, int W, int k, int stride,
                    int pad, int OH, int OW, std::int32_t lo, QPackedB& out);

}  // namespace sky::core
