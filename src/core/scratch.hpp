// Thread-local scratch arenas for kernel lowering buffers.
//
// The im2col panels, packed GEMM operands and col2im gradient staging used
// to live as member buffers on the layer modules, which made Module::forward
// non-reentrant: two threads driving the same module raced on the shared
// scratch.  Each arena here is thread-local, so concurrent forwards from
// different threads get independent buffers while repeated calls on one
// thread reuse the same allocation (no per-call malloc in the hot path).
//
// Slots partition the arena by use so nested kernels (a layer forward that
// calls into the packed GEMM driver) never alias each other's scratch.
// Contents are undefined between calls; capacity only grows.
#pragma once

#include <cstddef>
#include <vector>

namespace sky::core {

enum class ScratchSlot {
    kIm2col = 0,   ///< lowered activation panels (nn::Conv2d)
    kCol2im,       ///< grad-input staging (nn::Conv2d backward)
    kLayerTmp,     ///< misc layer staging (nn::Linear packed output)
    kCount,
};

/// The calling thread's buffer for `slot`, resized to at least `n` floats.
[[nodiscard]] std::vector<float>& tls_scratch(ScratchSlot slot, std::size_t n);

}  // namespace sky::core
