#include "core/scratch.hpp"

#include <array>

namespace sky::core {

std::vector<float>& tls_scratch(ScratchSlot slot, std::size_t n) {
    thread_local std::array<std::vector<float>,
                            static_cast<std::size_t>(ScratchSlot::kCount)>
        arenas;
    std::vector<float>& buf = arenas[static_cast<std::size_t>(slot)];
    if (buf.size() < n) buf.resize(n);
    return buf;
}

}  // namespace sky::core
