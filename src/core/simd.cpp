#include "core/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sky::core {
namespace {

SimdLevel clamp_to_best(SimdLevel level) {
    const auto best = static_cast<int>(best_simd_level());
    const auto want = static_cast<int>(level);
    return want > best ? best_simd_level() : level;
}

SimdLevel env_level() {
    if (const char* env = std::getenv("SKYNET_SIMD")) {
        if (std::strcmp(env, "0") == 0) return SimdLevel::kScalar;
        if (std::strcmp(env, "1") == 0) return SimdLevel::kGeneric;
    }
    return best_simd_level();
}

std::atomic<SimdLevel>& level_slot() {
    static std::atomic<SimdLevel> level{env_level()};
    return level;
}

}  // namespace

SimdLevel best_simd_level() {
#if defined(SKYNET_SIMD_AVX2)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return SimdLevel::kAvx2;
#endif
    return SimdLevel::kGeneric;
}

SimdLevel active_simd_level() {
    return level_slot().load(std::memory_order_relaxed);
}

SimdLevel set_simd_level(SimdLevel level) {
    const SimdLevel eff = clamp_to_best(level);
    level_slot().store(eff, std::memory_order_relaxed);
    return eff;
}

const char* simd_level_name(SimdLevel level) {
    switch (level) {
        case SimdLevel::kScalar: return "scalar";
        case SimdLevel::kGeneric: return "generic";
        case SimdLevel::kAvx2: return "avx2";
    }
    return "?";
}

}  // namespace sky::core
