#include "core/qgemm.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/qgemm_ukernel.hpp"
#include "core/simd.hpp"
#include "core/thread_pool.hpp"

namespace sky::core {
namespace {

// Baseline-ISA widths: 4 int32 lanes (SSE2 / NEON), one k-pair per lane in
// the byte operand.  The scalar instantiation is the reference semantics and
// the SKYNET_SIMD=0 fallback — all levels are bitwise identical (exact
// integer accumulation), unlike the tolerance-parity fp32 levels.
typedef std::int32_t vi4 __attribute__((vector_size(16), aligned(4)));
typedef std::uint8_t vu8x8 __attribute__((vector_size(8), aligned(1)));

const detail::QGemmKernel& scalar_kernel() {
    static const detail::QGemmKernel k{4, 4, &detail::qgemm_ukernel_scalar<4, 4>,
                                       "scalar"};
    return k;
}

const detail::QGemmKernel& generic_kernel() {
    static const detail::QGemmKernel k{
        4, 8, &detail::qgemm_ukernel_vec<vi4, vu8x8, 4, 2>, "generic"};
    return k;
}

const detail::QGemmKernel& active_kernel() {
    switch (active_simd_level()) {
        case SimdLevel::kScalar: return scalar_kernel();
        case SimdLevel::kGeneric: return generic_kernel();
        case SimdLevel::kAvx2:
#if defined(SKYNET_SIMD_AVX2)
            return detail::qgemm_avx2_kernel();
#else
            return generic_kernel();
#endif
    }
    return generic_kernel();
}

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
}

constexpr int padded_k(int K) { return K + (K & 1); }

}  // namespace

int qgemm_mr() { return active_kernel().mr; }
int qgemm_nr() { return active_kernel().nr; }
const char* qgemm_kernel_name() { return active_kernel().name; }
int qgemm_max_k() { return detail::kQGemmMaxK; }

// Shared A-pack body: widen `src` values (s8 or validated int32) into the
// k-paired s16 panel layout and record per-row sums.
template <class Src>
void qpack_a_impl(int M, int K, const Src* A, QPackedA& out, int mr) {
    out.M = M;
    out.K = K;
    out.mr = mr;
    if (M <= 0 || K <= 0) {
        out.data.clear();
        out.rowsum.clear();
        return;
    }
    const std::int64_t mp = ceil_div(M, mr);
    const std::int64_t kp = padded_k(K);
    out.data.assign(static_cast<std::size_t>(mp * mr * kp), 0);
    out.rowsum.assign(static_cast<std::size_t>(M), 0);
    std::int16_t* dst = out.data.data();
    for (std::int64_t p = 0; p < mp; ++p) {
        const int rows = static_cast<int>(std::min<std::int64_t>(mr, M - p * mr));
        std::int16_t* panel = dst + p * mr * kp;
        for (int m = 0; m < rows; ++m) {
            const Src* src = A + (p * mr + m) * static_cast<std::int64_t>(K);
            std::int64_t sum = 0;
            for (int k = 0; k < K; ++k) {
                panel[(k >> 1) * mr * 2 + m * 2 + (k & 1)] =
                    static_cast<std::int16_t>(src[k]);
                sum += src[k];
            }
            out.rowsum[static_cast<std::size_t>(p * mr + m)] = sum;
        }
    }
}

void qpack_a(int M, int K, const std::int8_t* A, QPackedA& out) {
    qpack_a_impl(M, K, A, out, active_kernel().mr);
}

void qpack_a_wide(int M, int K, const std::int32_t* A, QPackedA& out) {
    const std::int64_t count =
        M > 0 && K > 0 ? static_cast<std::int64_t>(M) * K : 0;
    for (std::int64_t i = 0; i < count; ++i)
        if (A[i] < -32768 || A[i] > 32767)
            throw std::domain_error("qpack_a_wide: value outside the s16 range");
    qpack_a_impl(M, K, A, out, active_kernel().mr);
}

void qpack_b(int K, int N, const std::uint8_t* B, QPackedB& out) {
    const int nr = active_kernel().nr;
    out.K = K;
    out.N = N;
    out.nr = nr;
    if (K <= 0 || N <= 0) {
        out.data.clear();
        return;
    }
    const std::int64_t np = ceil_div(N, nr);
    const std::int64_t kp = padded_k(K);
    out.data.assign(static_cast<std::size_t>(np * nr * kp), 0);
    std::uint8_t* dst = out.data.data();
    for (std::int64_t q = 0; q < np; ++q) {
        const int cols = static_cast<int>(std::min<std::int64_t>(nr, N - q * nr));
        std::uint8_t* panel = dst + q * nr * kp;
        for (int k = 0; k < K; ++k) {
            const std::uint8_t* src = B + static_cast<std::int64_t>(k) * N + q * nr;
            std::uint8_t* row = panel + (k >> 1) * nr * 2 + (k & 1);
            for (int j = 0; j < cols; ++j) row[j * 2] = src[j];
        }
    }
}

void qgemm_packed(const QPackedA& A, const QPackedB& B, std::int32_t* C) {
    const detail::QGemmKernel kern = active_kernel();
    const int M = A.M, N = B.N, K = A.K;
    if (M <= 0 || N <= 0 || K <= 0) return;
    if (A.mr != kern.mr || B.nr != kern.nr)
        throw std::logic_error(
            "qgemm_packed: operands were packed for a different micro-kernel tile "
            "(repack after set_simd_level)");
    if (A.K != B.K) throw std::invalid_argument("qgemm_packed: K mismatch");
    if (K > detail::kQGemmMaxK)
        throw std::length_error(
            "qgemm_packed: K exceeds the int32 overflow-free bound qgemm_max_k()");
    const int mr = kern.mr, nr = kern.nr;
    const int k2 = padded_k(K) / 2;
    const std::int64_t mp = ceil_div(M, mr), np = ceil_div(N, nr);
    const std::int16_t* ap = A.data.data();
    const std::uint8_t* bp = B.data.data();
    const std::int64_t apanel = static_cast<std::int64_t>(mr) * padded_k(K);
    const std::int64_t bpanel = static_cast<std::int64_t>(nr) * padded_k(K);
    // Same disjoint-tile split as sgemm_packed: one register tile per kernel
    // call, one chunk per tile, so bitwise thread-count invariant (and here
    // even exact, so level-invariant too).
    if (np >= mp) {
        parallel_for(0, np, 1, [=](std::int64_t q0, std::int64_t q1) {
            for (std::int64_t q = q0; q < q1; ++q) {
                const int nv =
                    static_cast<int>(std::min<std::int64_t>(nr, N - q * nr));
                for (std::int64_t p = 0; p < mp; ++p) {
                    const int mv =
                        static_cast<int>(std::min<std::int64_t>(mr, M - p * mr));
                    kern.fn(k2, ap + p * apanel, bp + q * bpanel,
                            C + p * mr * static_cast<std::int64_t>(N) + q * nr, N, mv,
                            nv);
                }
            }
        });
    } else {
        parallel_for(0, mp, 1, [=](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const int mv =
                    static_cast<int>(std::min<std::int64_t>(mr, M - p * mr));
                for (std::int64_t q = 0; q < np; ++q) {
                    const int nv =
                        static_cast<int>(std::min<std::int64_t>(nr, N - q * nr));
                    kern.fn(k2, ap + p * apanel, bp + q * bpanel,
                            C + p * mr * static_cast<std::int64_t>(N) + q * nr, N, mv,
                            nv);
                }
            }
        });
    }
}

void qim2col_packed(const std::int32_t* img, int C, int H, int W, int k, int stride,
                    int pad, int OH, int OW, std::int32_t lo, QPackedB& out) {
    const int nr = active_kernel().nr;
    const std::int64_t rows = static_cast<std::int64_t>(C) * k * k;  // GEMM K
    const std::int64_t ocols = static_cast<std::int64_t>(OH) * OW;   // GEMM N
    out.K = static_cast<int>(rows);
    out.N = static_cast<int>(ocols);
    out.nr = nr;
    if (rows <= 0 || ocols <= 0) {
        out.data.clear();
        return;
    }
    const std::int64_t np = ceil_div(ocols, nr);
    const std::int64_t kp = padded_k(static_cast<int>(rows));
    // assign() zeroes the phantom odd-K tap and the partial-panel tail in one
    // pass; the row loop below only touches real (row, column) lanes.
    out.data.assign(static_cast<std::size_t>(np * nr * kp), 0);
    std::uint8_t* data = out.data.data();
    const std::int64_t panel_stride = static_cast<std::int64_t>(nr) * kp;
    const std::uint8_t zero_u = static_cast<std::uint8_t>(-lo);  // x = 0 offset
    if (k == 1 && stride == 1 && pad == 0) {
        // Pointwise fast path (every 1x1 conv in SkyNet): the column matrix
        // IS the image — row r is channel plane r — so each k-pair writes its
        // two contiguous byte lanes per column with no tap bookkeeping.
        // Identical lane layout and disjoint row-pair writes, so the output
        // is byte-for-byte what the generic path below produces.
        parallel_for(0, (rows + 1) / 2, 1, [=](std::int64_t h0, std::int64_t h1) {
            for (std::int64_t h = h0; h < h1; ++h) {
                const std::int64_t r = 2 * h;
                const std::int32_t* p0 = img + r * H * W;
                const std::int32_t* p1 =
                    r + 1 < rows ? img + (r + 1) * H * W : nullptr;
                std::uint8_t* dst = data + h * nr * 2;
                std::int64_t jc = 0;
                for (std::int64_t q = 0; q < np; ++q, dst += panel_stride) {
                    const int cols =
                        static_cast<int>(std::min<std::int64_t>(nr, ocols - jc));
                    if (p1) {
                        for (int j = 0; j < cols; ++j) {
                            dst[j * 2] = static_cast<std::uint8_t>(p0[jc + j] - lo);
                            dst[j * 2 + 1] =
                                static_cast<std::uint8_t>(p1[jc + j] - lo);
                        }
                    } else {  // odd C: the phantom lane keeps its zero
                        for (int j = 0; j < cols; ++j)
                            dst[j * 2] = static_cast<std::uint8_t>(p0[jc + j] - lo);
                    }
                    jc += cols;
                }
            }
        });
        return;
    }
    // Row r of the column matrix maps to the fixed byte lane
    // (r/2)*nr*2 + (r&1) of every panel — rows are written by exactly one
    // chunk, same disjointness (thread-count invariance) as im2col_packed.
    parallel_for(0, rows, 4, [=](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const int ic = static_cast<int>(r / (k * k));
            const int kh = static_cast<int>(r / k) % k;
            const int kw = static_cast<int>(r % k);
            const std::int32_t* plane = img + static_cast<std::int64_t>(ic) * H * W;
            std::uint8_t* cur = data + (r >> 1) * nr * 2 + (r & 1);  // lane, panel 0
            int jj = 0;  // column offset within the current panel
            const auto put = [&](std::uint8_t v) {
                cur[jj * 2] = v;
                if (++jj == nr) {
                    jj = 0;
                    cur += panel_stride;
                }
            };
            for (int oh = 0; oh < OH; ++oh) {
                const int ih = oh * stride - pad + kh;
                if (ih < 0 || ih >= H) {
                    for (int ow = 0; ow < OW; ++ow) put(zero_u);
                    continue;
                }
                const std::int32_t* row = plane + static_cast<std::int64_t>(ih) * W;
                const int iw0 = -pad + kw;
                for (int ow = 0; ow < OW; ++ow) {
                    const int iw = iw0 + ow * stride;
                    put(iw >= 0 && iw < W
                            ? static_cast<std::uint8_t>(row[iw] - lo)
                            : zero_u);
                }
            }
        }
    });
}

}  // namespace sky::core
