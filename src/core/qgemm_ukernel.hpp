// The integer register-tile GEMM micro-kernel behind the quantized
// inference path (core/qgemm.hpp): C_tile(mr x nr) += Apanel(s16) * Bpanel(u8)
// with exact int32 accumulation.
//
// Operands arrive packed in the K-PAIRED panel layout: the contraction axis
// is rounded up to an even KP = 2*K2 and panels store the two taps of each
// k-pair adjacently —
//
//   a[k2*MR*2 + m*2 + t]   (s16 weights,    t in {0,1})
//   b[k2*NR*2 + n*2 + t]   (u8 activations, t in {0,1})
//
// — so the AVX2 instantiation can feed vpmaddwd: the u8 taps widen to s16,
// each adjacent s16 A pair IS a ready packed madd operand, and the pairwise
// s16*s16 product sum (<= 2*32767*255) is exact in int32 — the FBGEMM qconv
// idiom without its vpmaddubsw saturation hazard, and wide enough that
// 9..15-bit weights run in ONE pass instead of two s8 limbs.  A zero-padded
// phantom tap (odd K) carries a = 0, which annihilates whatever the B panel
// holds, so padding never changes a result.
//
// Accumulation is exact whenever K * max|a| * max|b| < 2^31 — guaranteed by
// K <= kQGemmMaxK for s8-range A, planned per layer by quant/qengine.cpp for
// wide A.  All instantiations (scalar / generic / avx2) return BITWISE
// IDENTICAL results, a stronger contract than the fp32 engine's per-level
// tolerance (docs/KERNELS.md, docs/QUANTIZATION.md).
#pragma once

#include <cstdint>
#include <cstring>

namespace sky::core::detail {

/// One selectable integer micro-kernel: tile geometry plus the tile
/// function.  `fn(K2, a, b, c, ldc, mr, nr)` accumulates the mr x nr valid
/// corner of the tile into int32 C (row stride ldc); K2 is the k-PAIR count.
struct QGemmKernel {
    int mr = 0;
    int nr = 0;
    void (*fn)(int K2, const std::int16_t* a, const std::uint8_t* b, std::int32_t* c,
               std::int64_t ldc, int mr, int nr) = nullptr;
    const char* name = "?";
};

/// Largest contraction length with an overflow-free int32 accumulation for
/// s8-range A operands (255 * 128 * 65536 < 2^31).  qgemm_packed rejects
/// larger K.
inline constexpr int kQGemmMaxK = 65536;

/// Reference semantics: plain int32 scalar accumulation over the k-paired
/// panels.  Also the SKYNET_SIMD=0 fallback.
template <int MR, int NR>
void qgemm_ukernel_scalar(int K2, const std::int16_t* a, const std::uint8_t* b,
                          std::int32_t* c, std::int64_t ldc, int mr, int nr) {
    std::int32_t acc[MR][NR] = {};
    for (int k2 = 0; k2 < K2; ++k2, a += MR * 2, b += NR * 2) {
        for (int m = 0; m < MR; ++m) {
            const std::int32_t a0 = a[m * 2];
            const std::int32_t a1 = a[m * 2 + 1];
            for (int n = 0; n < NR; ++n)
                acc[m][n] += a0 * static_cast<std::int32_t>(b[n * 2]) +
                             a1 * static_cast<std::int32_t>(b[n * 2 + 1]);
        }
    }
    for (int m = 0; m < mr; ++m)
        for (int n = 0; n < nr; ++n) c[m * ldc + n] += acc[m][n];
}

/// Vector-extension instantiation: VI is a GNU vector of int32 lanes, VU a
/// byte vector of 2*lanes(VI) (one k-pair per column).  Even/odd byte lanes
/// are split with __builtin_shufflevector and widened through
/// __builtin_convertvector — portable across GCC/Clang baseline ISAs.
template <class VI, class VU, int MR, int NV>
void qgemm_ukernel_vec(int K2, const std::int16_t* a, const std::uint8_t* b,
                       std::int32_t* c, std::int64_t ldc, int mr, int nr) {
    constexpr int kLanes = static_cast<int>(sizeof(VI) / sizeof(std::int32_t));
    constexpr int NR = kLanes * NV;
    static_assert(sizeof(VU) == 2 * sizeof(VI) / 4, "VU must hold one k-pair per lane");
    VI acc[MR][NV] = {};
    for (int k2 = 0; k2 < K2; ++k2, a += MR * 2, b += NR * 2) {
        VI even[NV], odd[NV];
        for (int v = 0; v < NV; ++v) {
            VU raw;
            std::memcpy(&raw, b + v * kLanes * 2, sizeof(VU));
            if constexpr (kLanes == 4) {
                even[v] = __builtin_convertvector(
                    __builtin_shufflevector(raw, raw, 0, 2, 4, 6), VI);
                odd[v] = __builtin_convertvector(
                    __builtin_shufflevector(raw, raw, 1, 3, 5, 7), VI);
            } else {
                static_assert(kLanes == 8, "unsupported vector width");
                even[v] = __builtin_convertvector(
                    __builtin_shufflevector(raw, raw, 0, 2, 4, 6, 8, 10, 12, 14), VI);
                odd[v] = __builtin_convertvector(
                    __builtin_shufflevector(raw, raw, 1, 3, 5, 7, 9, 11, 13, 15), VI);
            }
        }
        for (int m = 0; m < MR; ++m) {
            const std::int32_t a0 = a[m * 2];
            const std::int32_t a1 = a[m * 2 + 1];
            VI v0{}, v1{};
            for (int i = 0; i < kLanes; ++i) {
                v0[i] = a0;
                v1[i] = a1;
            }
            for (int v = 0; v < NV; ++v) acc[m][v] += v0 * even[v] + v1 * odd[v];
        }
    }
    if (mr == MR && nr == NR) {
        for (int m = 0; m < MR; ++m) {
            std::int32_t* row = c + m * ldc;
            for (int v = 0; v < NV; ++v) {
                VI cur;
                std::memcpy(&cur, row + v * kLanes, sizeof(VI));
                cur += acc[m][v];
                std::memcpy(row + v * kLanes, &cur, sizeof(VI));
            }
        }
    } else {
        std::int32_t tmp[MR * NR];
        for (int m = 0; m < MR; ++m)
            for (int v = 0; v < NV; ++v)
                std::memcpy(tmp + m * NR + v * kLanes, &acc[m][v], sizeof(VI));
        for (int m = 0; m < mr; ++m)
            for (int n = 0; n < nr; ++n) c[m * ldc + n] += tmp[m * NR + n];
    }
}

/// AVX2 kernel descriptor (vpmaddwd datapath), defined in core/qgemm_avx2.cpp
/// when that TU is part of the build (SKYNET_SIMD CMake option).
const QGemmKernel& qgemm_avx2_kernel();

}  // namespace sky::core::detail
