// The register-tile GEMM micro-kernel, written once against compiler vector
// extensions and instantiated per SIMD level (core/simd.hpp):
//
//   ukernel<VF, MR, NV>  —  C_tile(mr x nr) += Apanel * Bpanel
//
// VF is a GNU vector-extension float type (or plain `float` for the scalar
// reference instantiation), MR the register-tile row count and NV the number
// of VF vectors per tile row, so the tile is MR x (NV * lanes(VF)).
//
// Operands arrive packed (core/gemm.hpp): `a` is an MR-row panel stored
// k-major (a[k*MR + m]), `b` an NR-column panel stored k-major
// (b[k*NR + n]), both zero-padded to full tile width.  The k loop is a
// single sequential accumulation chain per C element — the same order as
// the scalar reference — so every instantiation is bitwise thread-count
// invariant and scalar-vs-vector differences come only from FMA contraction
// (see docs/KERNELS.md for the determinism contract).
//
// Each translation unit instantiates only the widths its build flags can
// execute: core/gemm.cpp the scalar + baseline-ISA widths, core/gemm_avx2.cpp
// the 8-wide AVX2+FMA width (compiled with -mavx2 -mfma).
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace sky::core::detail {

/// One selectable micro-kernel: tile geometry plus the tile function.
/// `fn(K, a_panel, b_panel, c, ldc, mr, nr)` accumulates the mr x nr valid
/// corner of the tile into C (row stride ldc).
struct GemmKernel {
    int mr = 0;
    int nr = 0;
    void (*fn)(int K, const float* a, const float* b, float* c, std::int64_t ldc,
               int mr, int nr) = nullptr;
    const char* name = "?";
};

template <class VF>
inline constexpr int kLanes = static_cast<int>(sizeof(VF) / sizeof(float));

template <class VF>
inline VF vload(const float* p) {
    VF v;
    std::memcpy(&v, p, sizeof(VF));
    return v;
}

template <class VF>
inline void vstore(float* p, VF v) {
    std::memcpy(p, &v, sizeof(VF));
}

template <class VF>
inline VF vsplat(float x) {
    if constexpr (std::is_same_v<VF, float>) {
        return x;
    } else {
        VF v{};
        for (int i = 0; i < kLanes<VF>; ++i) v[i] = x;
        return v;
    }
}

template <class VF, int MR, int NV>
void ukernel(int K, const float* a, const float* b, float* c, std::int64_t ldc,
             int mr, int nr) {
    constexpr int NR = kLanes<VF> * NV;
    VF acc[MR][NV] = {};
    for (int k = 0; k < K; ++k, a += MR, b += NR) {
        VF bv[NV];
        for (int v = 0; v < NV; ++v) bv[v] = vload<VF>(b + v * kLanes<VF>);
        for (int m = 0; m < MR; ++m) {
            const VF av = vsplat<VF>(a[m]);
            for (int v = 0; v < NV; ++v) acc[m][v] += av * bv[v];
        }
    }
    if (mr == MR && nr == NR) {
        for (int m = 0; m < MR; ++m) {
            float* row = c + m * ldc;
            for (int v = 0; v < NV; ++v) {
                float* p = row + v * kLanes<VF>;
                vstore<VF>(p, vload<VF>(p) + acc[m][v]);
            }
        }
    } else {
        // Partial tile: spill the (zero-padded) accumulators and add only the
        // valid corner, so edge tiles never read or write beyond C.
        float tmp[MR * NR];
        for (int m = 0; m < MR; ++m)
            for (int v = 0; v < NV; ++v)
                vstore<VF>(tmp + m * NR + v * kLanes<VF>, acc[m][v]);
        for (int m = 0; m < mr; ++m)
            for (int n = 0; n < nr; ++n) c[m * ldc + n] += tmp[m * NR + n];
    }
}

/// AVX2+FMA kernel descriptor, defined in core/gemm_avx2.cpp when that TU is
/// part of the build (SKYNET_SIMD CMake option, x86-64 GCC/Clang only).
const GemmKernel& avx2_kernel();

}  // namespace sky::core::detail
