// Shared kernel-execution thread pool for the sky::nn hot loops.
//
// A deliberately simple, work-stealing-free pool: one parallel_for at a time,
// the caller participates, and index ranges are handed out as fixed-size
// chunks from an atomic cursor.  Every parallel kernel in this repo writes
// disjoint output tiles per index and performs any floating-point reduction
// sequentially *within* a single body invocation, so results are bitwise
// independent of the thread count — `SKYNET_THREADS=1` and `=16` produce the
// same tensors (see docs/KERNELS.md for the determinism contract).
//
// Thread count resolution, in priority order: explicit constructor argument /
// set_global_threads(), the SKYNET_THREADS environment variable, then
// std::thread::hardware_concurrency().  With one thread parallel_for runs the
// body inline on the caller with zero synchronisation — exactly the seed
// behaviour.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace sky::core {

class ThreadPool {
public:
    /// `threads` <= 0 resolves via env_threads().
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Worker count including the calling thread (>= 1).
    [[nodiscard]] int size() const { return threads_; }

    /// Run body(b, e) over disjoint sub-ranges covering [begin, end).  `grain`
    /// is the minimum number of indices per chunk; ranges at or below it run
    /// inline.  Nested calls from inside a pool body also run inline, so
    /// kernels may compose without deadlock.
    void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                      const std::function<void(std::int64_t, std::int64_t)>& body)
        SKY_EXCLUDES(submit_mu_, mu_);

    /// Process-wide pool used by all sky::nn kernels (created on first use).
    static ThreadPool& global();
    /// Replace the global pool with an `n`-thread one (<= 0 re-reads the
    /// environment).  Must not be called while kernels are running.
    static void set_global_threads(int threads);
    /// SKYNET_THREADS env var if set and positive, else hardware concurrency.
    static int env_threads();

private:
    // One dispatched parallel_for.  Each job owns its cursor/progress state:
    // a worker that wakes late and still holds a previous (finished) job sees
    // that job's exhausted cursor and exits without ever touching the body,
    // so recycled pool state can never route it into the wrong dispatch.
    struct Job {
        const std::function<void(std::int64_t, std::int64_t)>* body = nullptr;
        std::int64_t end = 0;
        std::int64_t chunk = 1;
        std::int64_t total = 0;                   // indices in [begin, end)
        std::atomic<std::int64_t> cursor{0};      // next index to hand out
        std::atomic<std::int64_t> completed{0};   // indices finished
    };

    void worker_loop();
    void run_chunks(Job& job);

    int threads_ = 1;
    std::vector<std::thread> workers_;

    // Lock order: submit_mu_ strictly before mu_ (parallel_for holds the
    // submit lock across the whole dispatch and takes mu_ inside it).
    Mutex submit_mu_;  // serialises external parallel_for calls
    Mutex mu_ SKY_ACQUIRED_AFTER(submit_mu_);  // guards job_/job_id_/stop_ + cv waits
    CondVar work_cv_;  // signalled on new job / stop; predicate: stop_ || job_id_ changed
    CondVar done_cv_;  // signalled when a job's last chunk finishes
    bool stop_ SKY_GUARDED_BY(mu_) = false;

    std::uint64_t job_id_ SKY_GUARDED_BY(mu_) = 0;  // bumped per dispatch (worker wake key)
    std::shared_ptr<Job> job_ SKY_GUARDED_BY(mu_);  // current job; workers copy under mu_
};

/// parallel_for on the global pool — the form the layer kernels use.
inline void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                         const std::function<void(std::int64_t, std::int64_t)>& body) {
    ThreadPool::global().parallel_for(begin, end, grain, body);
}

}  // namespace sky::core
