// Capability-annotated locking primitives.
//
// Clang's thread-safety analysis only tracks lock types that declare
// themselves capabilities, and std::mutex does not — so every lock the
// repo wants statically verified is a sky::core::Mutex: a zero-overhead
// std::mutex wrapper carrying SKY_CAPABILITY, acquired through the
// MutexLock scoped guard and waited on through CondVar.  The wrappers add
// no state and every method is a single forwarded call, so the generated
// code is identical to using the std types directly; what changes is that
//
//   std::deque<T> q_ SKY_GUARDED_BY(mu_);
//
// becomes a compile error to touch without mu_ held (see
// core/annotations.hpp and docs/STATIC_ANALYSIS.md).
//
// CondVar waits run on the wrapped std::mutex via adopt/release juggling:
// the caller holds the Mutex (enforced by SKY_REQUIRES), the wait
// temporarily adopts it into a std::unique_lock for the std wait call, and
// releases it back untouched — ownership never actually changes hands.
// Wait predicates run under the lock but inside a lambda the analysis
// cannot see through; start them with `mu.assert_held()` to tell it so.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/annotations.hpp"

namespace sky::core {

class SKY_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SKY_ACQUIRE() { mu_.lock(); }
    void unlock() SKY_RELEASE() { mu_.unlock(); }
    [[nodiscard]] bool try_lock() SKY_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /// Tell the analysis this lock is held without acquiring it — for code
    /// it cannot follow, e.g. the first statement of a CondVar wait
    /// predicate.  Compiles to nothing.
    void assert_held() const SKY_ASSERT_CAPABILITY() {}

    /// The wrapped lock, for std interop (CondVar's wait machinery).
    [[nodiscard]] std::mutex& native() { return mu_; }

private:
    std::mutex mu_;  // the wrapped lock; all capability metadata lives on the wrapper
};

/// RAII lock for a Mutex — the annotated std::lock_guard/unique_lock
/// replacement.  Scoped: the analysis knows the Mutex is held from
/// construction to the end of the enclosing block.
class SKY_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) SKY_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() SKY_RELEASE() { mu_.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mu_;
};

/// Condition variable bound to Mutex.  Every wait names the Mutex it runs
/// under and carries SKY_REQUIRES on it, so waiting without the lock — or
/// touching the waited-on state without it — is a compile error under
/// Clang instead of a latent race.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    /// Atomically release `mu`, block, reacquire before returning.
    void wait(Mutex& mu) SKY_REQUIRES(mu) {
        std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
        cv_.wait(lk);
        lk.release();  // hand ownership back to the caller's MutexLock
    }

    /// Wait until `pred()` holds.  The predicate runs with `mu` held; start
    /// it with `mu.assert_held()` so the analysis knows (lambda bodies are
    /// analyzed as separate functions).
    template <typename Pred>
    void wait(Mutex& mu, Pred pred) SKY_REQUIRES(mu) {
        while (!pred()) wait(mu);
    }

    /// Wait until `pred()` holds or `deadline` passes; returns pred()'s
    /// final value (std::condition_variable::wait_until contract).
    template <typename Pred>
    bool wait_until(Mutex& mu, std::chrono::steady_clock::time_point deadline,
                    Pred pred) SKY_REQUIRES(mu) {
        while (!pred()) {
            std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
            const std::cv_status status = cv_.wait_until(lk, deadline);
            lk.release();
            if (status == std::cv_status::timeout) return pred();
        }
        return true;
    }

private:
    std::condition_variable cv_;  // waits adopt the Mutex's native() handle; no state of its own
};

}  // namespace sky::core
