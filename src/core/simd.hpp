// SIMD dispatch layer for the sky::core kernel engine.
//
// The GEMM micro-kernels (core/gemm.cpp, core/gemm_avx2.cpp) are written
// once against compiler vector extensions and instantiated at several
// register widths; this header names the levels and owns the process-wide
// selection:
//
//   kScalar   plain float accumulators — the reference semantics, also the
//             fallback when vector units are disabled (SKYNET_SIMD=0).
//   kGeneric  native-width vectors at the baseline ISA of the build
//             (SSE2 on x86-64, NEON on aarch64) — no special build flags.
//   kAvx2     8-wide AVX2 + FMA kernels from a dedicated -mavx2 -mfma
//             translation unit, used only when the CPU reports support.
//
// Selection order: the SKYNET_SIMD environment variable ("0" forces
// kScalar) read once on first use, else the best level the running CPU
// supports.  set_simd_level() overrides at runtime (tests use it to compare
// levels in-process); it clamps to best_simd_level() and must not be called
// while kernels are running.  The level is process-global: results are
// bitwise reproducible for a fixed build *and* level, and bitwise
// independent of the thread count at every level (docs/KERNELS.md).
#pragma once

namespace sky::core {

enum class SimdLevel { kScalar = 0, kGeneric = 1, kAvx2 = 2 };

/// Best level this build + CPU combination can execute.
[[nodiscard]] SimdLevel best_simd_level();

/// Currently selected level (env default on first call).
[[nodiscard]] SimdLevel active_simd_level();

/// Select a level, clamped to best_simd_level().  Returns the level that is
/// now active.  Not thread-safe against in-flight kernels.
SimdLevel set_simd_level(SimdLevel level);

/// "scalar" / "generic" / "avx2".
[[nodiscard]] const char* simd_level_name(SimdLevel level);

}  // namespace sky::core
