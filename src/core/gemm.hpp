// Register-blocked single-precision GEMM kernels + im2col/col2im packing.
//
// These are the compute primitives behind Conv2d, PWConv1 and the other
// sky::nn hot loops.  All matrices are dense row-major with no padding; the
// (M, N, K) naming follows BLAS: C is M x N and K is the contraction length.
// Each kernel parallelises over rows of C through the global ThreadPool —
// every output element is produced by exactly one sequential accumulation
// inside one chunk, so results are bitwise independent of the thread count.
//
// The micro-kernels are axpy-style (broadcast A element, stream a B row into
// a C row) blocked four rows at a time, which -O2 auto-vectorises without
// needing -ffast-math; the dot-product variant (sgemm_nt) uses four
// independent accumulators per output for ILP instead.
#pragma once

#include <cstdint>

namespace sky::core {

/// C(M x N) += A(M x K) * B(K x N).
void sgemm_nn(int M, int N, int K, const float* A, const float* B, float* C);

/// C(M x N) += A^T * B where A is stored K x M (op(A) = M x K).
void sgemm_tn(int M, int N, int K, const float* A, const float* B, float* C);

/// C(M x N) += A * B^T where A is M x K and B is stored N x K.
void sgemm_nt(int M, int N, int K, const float* A, const float* B, float* C);

/// Unpack one CHW image into a [C*k*k, OH*OW] column matrix for a k x k
/// convolution with the given stride/pad (zero padding).  Row r of `col`
/// corresponds to tap (ic, kh, kw) = (r / k^2, (r % k^2) / k, r % k).
void im2col(const float* img, int C, int H, int W, int k, int stride, int pad, int OH,
            int OW, float* col);

/// Scatter-accumulate a column matrix back into a CHW image gradient —
/// the adjoint of im2col.  `img` is accumulated into, not overwritten.
void col2im(const float* col, int C, int H, int W, int k, int stride, int pad, int OH,
            int OW, float* img);

}  // namespace sky::core
