// Packed SIMD single-precision GEMM engine + im2col/col2im lowering.
//
// These are the compute primitives behind Conv2d, PWConv1, Linear and the
// other sky::nn hot loops.  All matrices are dense row-major with no
// padding; the (M, N, K) naming follows BLAS: C is M x N and K is the
// contraction length.
//
// Execution model (docs/KERNELS.md has the full story):
//
//   pack_a / pack_b   copy the operands into register-tile panels (MR rows /
//                     NR columns, k-major, zero-padded to full tiles) sized
//                     for the active micro-kernel (core/simd.hpp),
//   sgemm_packed      walks the C tile grid, one mr x nr register tile per
//                     micro-kernel call, parallelised over whole tiles
//                     through the global ThreadPool.
//
// Weights can be packed once ("prepacked") at model build / BN-fold time via
// pack_a and reused across forwards — the nn layers thread a PackedA handle
// through exactly that path.  The sgemm_nn/tn/nt wrappers keep the classic
// pointer interface and pack both operands per call into thread-local
// scratch.
//
// Determinism: every C element is one sequential k-accumulation inside one
// micro-kernel call and every tile is written by exactly one parallel_for
// chunk, so results are bitwise independent of the thread count.  Scalar vs
// vector levels may differ by FMA contraction (tolerance-checked in
// tests/test_simd.cpp); a fixed build at a fixed SimdLevel is bitwise
// reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace sky::core {

/// Register-tile geometry of the active micro-kernel (core/simd.hpp level).
[[nodiscard]] int gemm_mr();
[[nodiscard]] int gemm_nr();
/// Name of the active micro-kernel ("scalar" / "generic" / "avx2").
[[nodiscard]] const char* gemm_kernel_name();

/// op(A) packed into MR-row panels: panel p holds rows [p*mr, p*mr + mr) as
/// data[p*mr*K + k*mr + m], zero-padded past M.  `mr` records the tile
/// height the panels were built for; consumers must repack if it no longer
/// matches gemm_mr() (the nn layers fall back to per-call packing).
struct PackedA {
    int M = 0;
    int K = 0;
    int mr = 0;
    std::vector<float> data;
    [[nodiscard]] bool empty() const { return data.empty(); }
    void clear() { *this = PackedA{}; }
};

/// op(B) packed into NR-column panels: panel q holds columns
/// [q*nr, q*nr + nr) as data[q*nr*K + k*nr + j], zero-padded past N.
struct PackedB {
    int K = 0;
    int N = 0;
    int nr = 0;
    std::vector<float> data;
    [[nodiscard]] bool empty() const { return data.empty(); }
    void clear() { *this = PackedB{}; }
};

/// Pack op(A) (M x K) for the active micro-kernel.  trans=false reads A as
/// M x K row-major; trans=true reads the K x M storage of sgemm_tn.
void pack_a(int M, int K, const float* A, bool trans, PackedA& out);

/// Pack op(B) (K x N).  trans=false reads B as K x N row-major; trans=true
/// reads the N x K storage of sgemm_nt.
void pack_b(int K, int N, const float* B, bool trans, PackedB& out);

/// C(M x N) += op(A) * op(B) over packed operands.  A.K must equal B.K and
/// both packs must match the active tile geometry (std::logic_error
/// otherwise); C is row-major with leading dimension N.
void sgemm_packed(const PackedA& A, const PackedB& B, float* C);

/// C(M x N) += A(M x K) * B(K x N).
void sgemm_nn(int M, int N, int K, const float* A, const float* B, float* C);

/// C(M x N) += A^T * B where A is stored K x M (op(A) = M x K).
void sgemm_tn(int M, int N, int K, const float* A, const float* B, float* C);

/// C(M x N) += A * B^T where A is M x K and B is stored N x K.
void sgemm_nt(int M, int N, int K, const float* A, const float* B, float* C);

/// Unpack one CHW image into a [C*k*k, OH*OW] column matrix for a k x k
/// convolution with the given stride/pad (zero padding).  Row r of `col`
/// corresponds to tap (ic, kh, kw) = (r / k^2, (r % k^2) / k, r % k).
void im2col(const float* img, int C, int H, int W, int k, int stride, int pad, int OH,
            int OW, float* col);

/// im2col straight into the PackedB panel layout — the conv forward hot path
/// skips the intermediate column matrix entirely.  Equivalent to im2col()
/// followed by pack_b() of the result.
void im2col_packed(const float* img, int C, int H, int W, int k, int stride, int pad,
                   int OH, int OW, PackedB& out);

/// Scatter-accumulate a column matrix back into a CHW image gradient —
/// the adjoint of im2col.  `img` is accumulated into, not overwritten.
void col2im(const float* col, int C, int H, int W, int k, int stride, int pad, int OH,
            int OW, float* img);

}  // namespace sky::core
