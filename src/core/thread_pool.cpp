#include "core/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace sky::core {
namespace {

// Set while a thread is executing inside a pool body; nested parallel_for
// calls from such a thread run inline instead of re-entering the pool.
thread_local bool tls_in_pool_body = false;

Mutex& global_mu() {
    // Guards the global pool slot; taken before any ThreadPool-internal
    // lock (global() may construct a pool while holding it).
    static Mutex mu;
    return mu;
}

std::unique_ptr<ThreadPool>& global_slot() {
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

}  // namespace

int ThreadPool::env_threads() {
    if (const char* env = std::getenv("SKYNET_THREADS")) {
        char* end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && n > 0 && n <= 1 << 16) return static_cast<int>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : threads_(threads > 0 ? threads : env_threads()) {
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int i = 1; i < threads_; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lk(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
    tls_in_pool_body = true;  // nested parallel_for from kernels runs inline
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            MutexLock lk(mu_);
            work_cv_.wait(mu_, [&] {
                mu_.assert_held();
                return stop_ || job_id_ != seen;
            });
            if (stop_) return;
            seen = job_id_;
            job = job_;
        }
        if (job) run_chunks(*job);
    }
}

void ThreadPool::run_chunks(Job& job) {
    // The cursor belongs to this Job object, so a worker holding a finished
    // job sees an exhausted cursor and returns without calling the body.  The
    // body reference is safe for the whole call: parallel_for cannot return
    // (and the caller's function object cannot die) until `completed` covers
    // the range, and `completed` is only advanced after a body call finishes.
    for (;;) {
        const std::int64_t b = job.cursor.fetch_add(job.chunk, std::memory_order_relaxed);
        if (b >= job.end) return;
        const std::int64_t e = std::min(job.end, b + job.chunk);
        (*job.body)(b, e);
        if (job.completed.fetch_add(e - b, std::memory_order_acq_rel) + (e - b) ==
            job.total) {
            MutexLock lk(mu_);
            done_cv_.notify_all();
        }
    }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                              const std::function<void(std::int64_t, std::int64_t)>& body) {
    const std::int64_t range = end - begin;
    if (range <= 0) return;
    grain = std::max<std::int64_t>(1, grain);
    if (threads_ <= 1 || tls_in_pool_body || range <= grain) {
        body(begin, end);
        return;
    }
    MutexLock submit(submit_mu_);
    auto job = std::make_shared<Job>();
    job->body = &body;
    job->end = end;
    // ~4 chunks per thread for load balance; never below the grain.
    job->chunk = std::max<std::int64_t>(
        grain, (range + static_cast<std::int64_t>(threads_) * 4 - 1) /
                   (static_cast<std::int64_t>(threads_) * 4));
    job->total = range;
    job->cursor.store(begin, std::memory_order_relaxed);
    {
        MutexLock lk(mu_);
        job_ = job;
        ++job_id_;
    }
    work_cv_.notify_all();
    const bool was_inside = tls_in_pool_body;
    tls_in_pool_body = true;  // the caller's own chunks must not re-dispatch
    run_chunks(*job);
    tls_in_pool_body = was_inside;
    MutexLock lk(mu_);
    done_cv_.wait(mu_, [&] {
        return job->completed.load(std::memory_order_acquire) == range;
    });
    if (job_ == job) job_.reset();  // drop the pool's reference promptly
}

ThreadPool& ThreadPool::global() {
    MutexLock lk(global_mu());
    auto& slot = global_slot();
    if (!slot) slot = std::make_unique<ThreadPool>(env_threads());
    return *slot;
}

void ThreadPool::set_global_threads(int threads) {
    MutexLock lk(global_mu());
    global_slot() = std::make_unique<ThreadPool>(threads);
}

}  // namespace sky::core
