#include "core/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "core/thread_pool.hpp"

namespace sky::core {
namespace {

// Row-parallel grain: a chunk below this many rows is not worth dispatching.
constexpr std::int64_t kRowGrain = 4;

}  // namespace

void sgemm_nn(int M, int N, int K, const float* A, const float* B, float* C) {
    parallel_for(0, M, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
        std::int64_t i = r0;
        for (; i + 4 <= r1; i += 4) {
            const float* a0 = A + i * K;
            const float* a1 = a0 + K;
            const float* a2 = a1 + K;
            const float* a3 = a2 + K;
            float* c0 = C + i * N;
            float* c1 = c0 + N;
            float* c2 = c1 + N;
            float* c3 = c2 + N;
            for (int k = 0; k < K; ++k) {
                const float* b = B + static_cast<std::int64_t>(k) * N;
                const float v0 = a0[k], v1 = a1[k], v2 = a2[k], v3 = a3[k];
                for (int j = 0; j < N; ++j) {
                    const float bj = b[j];
                    c0[j] += v0 * bj;
                    c1[j] += v1 * bj;
                    c2[j] += v2 * bj;
                    c3[j] += v3 * bj;
                }
            }
        }
        for (; i < r1; ++i) {
            const float* a = A + i * K;
            float* c = C + i * N;
            for (int k = 0; k < K; ++k) {
                const float* b = B + static_cast<std::int64_t>(k) * N;
                const float v = a[k];
                for (int j = 0; j < N; ++j) c[j] += v * b[j];
            }
        }
    });
}

void sgemm_tn(int M, int N, int K, const float* A, const float* B, float* C) {
    parallel_for(0, M, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
        std::int64_t i = r0;
        for (; i + 4 <= r1; i += 4) {
            float* c0 = C + i * N;
            float* c1 = c0 + N;
            float* c2 = c1 + N;
            float* c3 = c2 + N;
            for (int k = 0; k < K; ++k) {
                const float* arow = A + static_cast<std::int64_t>(k) * M + i;
                const float* b = B + static_cast<std::int64_t>(k) * N;
                const float v0 = arow[0], v1 = arow[1], v2 = arow[2], v3 = arow[3];
                for (int j = 0; j < N; ++j) {
                    const float bj = b[j];
                    c0[j] += v0 * bj;
                    c1[j] += v1 * bj;
                    c2[j] += v2 * bj;
                    c3[j] += v3 * bj;
                }
            }
        }
        for (; i < r1; ++i) {
            float* c = C + i * N;
            for (int k = 0; k < K; ++k) {
                const float v = A[static_cast<std::int64_t>(k) * M + i];
                const float* b = B + static_cast<std::int64_t>(k) * N;
                for (int j = 0; j < N; ++j) c[j] += v * b[j];
            }
        }
    });
}

void sgemm_nt(int M, int N, int K, const float* A, const float* B, float* C) {
    parallel_for(0, M, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t i = r0; i < r1; ++i) {
            const float* a = A + i * K;
            float* c = C + i * N;
            for (int j = 0; j < N; ++j) {
                const float* b = B + static_cast<std::int64_t>(j) * K;
                // Four independent partial sums for ILP; the combination
                // order is fixed, so the result is reproducible.
                float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
                int k = 0;
                for (; k + 4 <= K; k += 4) {
                    s0 += a[k] * b[k];
                    s1 += a[k + 1] * b[k + 1];
                    s2 += a[k + 2] * b[k + 2];
                    s3 += a[k + 3] * b[k + 3];
                }
                for (; k < K; ++k) s0 += a[k] * b[k];
                c[j] += (s0 + s1) + (s2 + s3);
            }
        }
    });
}

void im2col(const float* img, int C, int H, int W, int k, int stride, int pad, int OH,
            int OW, float* col) {
    const std::int64_t rows = static_cast<std::int64_t>(C) * k * k;
    const std::int64_t ocols = static_cast<std::int64_t>(OH) * OW;
    parallel_for(0, rows, kRowGrain, [=](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const int ic = static_cast<int>(r / (k * k));
            const int kh = static_cast<int>(r / k) % k;
            const int kw = static_cast<int>(r % k);
            const float* plane = img + static_cast<std::int64_t>(ic) * H * W;
            float* out = col + r * ocols;
            for (int oh = 0; oh < OH; ++oh, out += OW) {
                const int ih = oh * stride - pad + kh;
                if (ih < 0 || ih >= H) {
                    std::memset(out, 0, sizeof(float) * static_cast<std::size_t>(OW));
                    continue;
                }
                const float* row = plane + static_cast<std::int64_t>(ih) * W;
                const int iw0 = -pad + kw;  // input column of output column 0
                if (stride == 1) {
                    // Contiguous copy with zeroed out-of-bounds edges.
                    const int lo = std::max(0, -iw0);            // first valid ow
                    const int hi = std::min(OW, W - iw0);        // one past last valid
                    for (int ow = 0; ow < lo; ++ow) out[ow] = 0.0f;
                    if (hi > lo)
                        std::memcpy(out + lo, row + iw0 + lo,
                                    sizeof(float) * static_cast<std::size_t>(hi - lo));
                    for (int ow = std::max(lo, hi); ow < OW; ++ow) out[ow] = 0.0f;
                } else {
                    for (int ow = 0; ow < OW; ++ow) {
                        const int iw = iw0 + ow * stride;
                        out[ow] = (iw >= 0 && iw < W) ? row[iw] : 0.0f;
                    }
                }
            }
        }
    });
}

void col2im(const float* col, int C, int H, int W, int k, int stride, int pad, int OH,
            int OW, float* img) {
    const std::int64_t ocols = static_cast<std::int64_t>(OH) * OW;
    // Parallel over input channels: all k*k rows of a channel scatter into
    // that channel's plane only, so planes are written by exactly one chunk.
    parallel_for(0, C, 1, [=](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t ic = c0; ic < c1; ++ic) {
            float* plane = img + ic * H * W;
            for (int kh = 0; kh < k; ++kh) {
                for (int kw = 0; kw < k; ++kw) {
                    const std::int64_t r = (ic * k + kh) * k + kw;
                    const float* in = col + r * ocols;
                    for (int oh = 0; oh < OH; ++oh, in += OW) {
                        const int ih = oh * stride - pad + kh;
                        if (ih < 0 || ih >= H) continue;
                        float* row = plane + static_cast<std::int64_t>(ih) * W;
                        const int iw0 = -pad + kw;
                        if (stride == 1) {
                            const int lo = std::max(0, -iw0);
                            const int hi = std::min(OW, W - iw0);
                            for (int ow = lo; ow < hi; ++ow) row[iw0 + ow] += in[ow];
                        } else {
                            for (int ow = 0; ow < OW; ++ow) {
                                const int iw = iw0 + ow * stride;
                                if (iw >= 0 && iw < W) row[iw] += in[ow];
                            }
                        }
                    }
                }
            }
        }
    });
}

}  // namespace sky::core
