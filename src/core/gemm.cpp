#include "core/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/gemm_ukernel.hpp"
#include "core/simd.hpp"
#include "core/thread_pool.hpp"

namespace sky::core {
namespace {

// Baseline-ISA vector width: SSE2 on x86-64, NEON on aarch64.  The scalar
// instantiation is the reference semantics and the SKYNET_SIMD=0 fallback.
typedef float vf4 __attribute__((vector_size(16), aligned(4)));

const detail::GemmKernel& scalar_kernel() {
    static const detail::GemmKernel k{4, 4, &detail::ukernel<float, 4, 4>, "scalar"};
    return k;
}

const detail::GemmKernel& generic_kernel() {
    static const detail::GemmKernel k{6, 8, &detail::ukernel<vf4, 6, 2>, "generic"};
    return k;
}

const detail::GemmKernel& active_kernel() {
    switch (active_simd_level()) {
        case SimdLevel::kScalar: return scalar_kernel();
        case SimdLevel::kGeneric: return generic_kernel();
        case SimdLevel::kAvx2:
#if defined(SKYNET_SIMD_AVX2)
            return detail::avx2_kernel();
#else
            return generic_kernel();
#endif
    }
    return generic_kernel();
}

constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
}

}  // namespace

int gemm_mr() { return active_kernel().mr; }
int gemm_nr() { return active_kernel().nr; }
const char* gemm_kernel_name() { return active_kernel().name; }

void pack_a(int M, int K, const float* A, bool trans, PackedA& out) {
    const int mr = active_kernel().mr;
    out.M = M;
    out.K = K;
    out.mr = mr;
    if (M <= 0 || K <= 0) {
        out.data.clear();
        return;
    }
    const std::int64_t mp = ceil_div(M, mr);
    out.data.assign(static_cast<std::size_t>(mp * mr * K), 0.0f);
    float* dst = out.data.data();
    for (std::int64_t p = 0; p < mp; ++p) {
        const int rows = static_cast<int>(std::min<std::int64_t>(mr, M - p * mr));
        float* panel = dst + p * mr * K;
        for (int k = 0; k < K; ++k) {
            float* col = panel + static_cast<std::int64_t>(k) * mr;
            for (int m = 0; m < rows; ++m)
                col[m] = trans ? A[static_cast<std::int64_t>(k) * M + p * mr + m]
                               : A[(p * mr + m) * static_cast<std::int64_t>(K) + k];
        }
    }
}

void pack_b(int K, int N, const float* B, bool trans, PackedB& out) {
    const int nr = active_kernel().nr;
    out.K = K;
    out.N = N;
    out.nr = nr;
    if (K <= 0 || N <= 0) {
        out.data.clear();
        return;
    }
    const std::int64_t np = ceil_div(N, nr);
    out.data.assign(static_cast<std::size_t>(np * nr * K), 0.0f);
    float* dst = out.data.data();
    for (std::int64_t q = 0; q < np; ++q) {
        const int cols = static_cast<int>(std::min<std::int64_t>(nr, N - q * nr));
        float* panel = dst + q * nr * K;
        if (!trans) {
            for (int k = 0; k < K; ++k) {
                const float* src = B + static_cast<std::int64_t>(k) * N + q * nr;
                float* row = panel + static_cast<std::int64_t>(k) * nr;
                for (int j = 0; j < cols; ++j) row[j] = src[j];
            }
        } else {
            for (int j = 0; j < cols; ++j) {
                const float* src = B + (q * nr + j) * static_cast<std::int64_t>(K);
                for (int k = 0; k < K; ++k)
                    panel[static_cast<std::int64_t>(k) * nr + j] = src[k];
            }
        }
    }
}

void sgemm_packed(const PackedA& A, const PackedB& B, float* C) {
    const detail::GemmKernel kern = active_kernel();
    const int M = A.M, N = B.N, K = A.K;
    if (M <= 0 || N <= 0 || K <= 0) return;
    if (A.mr != kern.mr || B.nr != kern.nr)
        throw std::logic_error(
            "sgemm_packed: operands were packed for a different micro-kernel tile "
            "(repack after set_simd_level)");
    if (A.K != B.K) throw std::invalid_argument("sgemm_packed: K mismatch");
    const int mr = kern.mr, nr = kern.nr;
    const std::int64_t mp = ceil_div(M, mr), np = ceil_div(N, nr);
    const float* ap = A.data.data();
    const float* bp = B.data.data();
    const std::int64_t apanel = static_cast<std::int64_t>(mr) * K;
    const std::int64_t bpanel = static_cast<std::int64_t>(nr) * K;
    // Every register tile of C is produced by exactly one micro-kernel call
    // inside one chunk, so either split is bitwise thread-count invariant;
    // parallelise the longer panel axis.  Column-panel major order keeps one
    // B panel hot while all of A (usually L2-resident) streams past it.
    if (np >= mp) {
        parallel_for(0, np, 1, [=](std::int64_t q0, std::int64_t q1) {
            for (std::int64_t q = q0; q < q1; ++q) {
                const int nv =
                    static_cast<int>(std::min<std::int64_t>(nr, N - q * nr));
                for (std::int64_t p = 0; p < mp; ++p) {
                    const int mv =
                        static_cast<int>(std::min<std::int64_t>(mr, M - p * mr));
                    kern.fn(K, ap + p * apanel, bp + q * bpanel,
                            C + p * mr * static_cast<std::int64_t>(N) + q * nr, N, mv,
                            nv);
                }
            }
        });
    } else {
        parallel_for(0, mp, 1, [=](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const int mv =
                    static_cast<int>(std::min<std::int64_t>(mr, M - p * mr));
                for (std::int64_t q = 0; q < np; ++q) {
                    const int nv =
                        static_cast<int>(std::min<std::int64_t>(nr, N - q * nr));
                    kern.fn(K, ap + p * apanel, bp + q * bpanel,
                            C + p * mr * static_cast<std::int64_t>(N) + q * nr, N, mv,
                            nv);
                }
            }
        });
    }
}

namespace {

// Per-call packing scratch for the pointer-interface wrappers.  Thread-local
// so concurrent callers (and pool workers running nested kernels) never
// share panels; capacity is reused across calls.
thread_local PackedA tls_pa;
thread_local PackedB tls_pb;

void sgemm_wrapped(int M, int N, int K, const float* A, bool a_trans, const float* B,
                   bool b_trans, float* C) {
    if (M <= 0 || N <= 0 || K <= 0) return;
    pack_a(M, K, A, a_trans, tls_pa);
    pack_b(K, N, B, b_trans, tls_pb);
    sgemm_packed(tls_pa, tls_pb, C);
}

}  // namespace

void sgemm_nn(int M, int N, int K, const float* A, const float* B, float* C) {
    sgemm_wrapped(M, N, K, A, false, B, false, C);
}

void sgemm_tn(int M, int N, int K, const float* A, const float* B, float* C) {
    sgemm_wrapped(M, N, K, A, true, B, false, C);
}

void sgemm_nt(int M, int N, int K, const float* A, const float* B, float* C) {
    sgemm_wrapped(M, N, K, A, false, B, true, C);
}

void im2col(const float* img, int C, int H, int W, int k, int stride, int pad, int OH,
            int OW, float* col) {
    const std::int64_t rows = static_cast<std::int64_t>(C) * k * k;
    const std::int64_t ocols = static_cast<std::int64_t>(OH) * OW;
    parallel_for(0, rows, 4, [=](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const int ic = static_cast<int>(r / (k * k));
            const int kh = static_cast<int>(r / k) % k;
            const int kw = static_cast<int>(r % k);
            const float* plane = img + static_cast<std::int64_t>(ic) * H * W;
            float* out = col + r * ocols;
            for (int oh = 0; oh < OH; ++oh, out += OW) {
                const int ih = oh * stride - pad + kh;
                if (ih < 0 || ih >= H) {
                    std::memset(out, 0, sizeof(float) * static_cast<std::size_t>(OW));
                    continue;
                }
                const float* row = plane + static_cast<std::int64_t>(ih) * W;
                const int iw0 = -pad + kw;  // input column of output column 0
                if (stride == 1) {
                    // Contiguous copy with zeroed out-of-bounds edges.
                    const int lo = std::max(0, -iw0);            // first valid ow
                    const int hi = std::min(OW, W - iw0);        // one past last valid
                    for (int ow = 0; ow < lo; ++ow) out[ow] = 0.0f;
                    if (hi > lo)
                        std::memcpy(out + lo, row + iw0 + lo,
                                    sizeof(float) * static_cast<std::size_t>(hi - lo));
                    for (int ow = std::max(lo, hi); ow < OW; ++ow) out[ow] = 0.0f;
                } else {
                    for (int ow = 0; ow < OW; ++ow) {
                        const int iw = iw0 + ow * stride;
                        out[ow] = (iw >= 0 && iw < W) ? row[iw] : 0.0f;
                    }
                }
            }
        }
    });
}

void im2col_packed(const float* img, int C, int H, int W, int k, int stride, int pad,
                   int OH, int OW, PackedB& out) {
    const int nr = active_kernel().nr;
    const std::int64_t rows = static_cast<std::int64_t>(C) * k * k;  // GEMM K
    const std::int64_t ocols = static_cast<std::int64_t>(OH) * OW;  // GEMM N
    out.K = static_cast<int>(rows);
    out.N = static_cast<int>(ocols);
    out.nr = nr;
    if (rows <= 0 || ocols <= 0) {
        out.data.clear();
        return;
    }
    const std::int64_t np = ceil_div(ocols, nr);
    out.data.resize(static_cast<std::size_t>(np * nr * rows));
    float* data = out.data.data();
    const std::int64_t panel_stride = static_cast<std::int64_t>(nr) * rows;
    // Row r of the column matrix maps to the fixed lane r*nr of every panel,
    // so rows are written by exactly one chunk — same disjointness (and
    // therefore thread-count invariance) as im2col.
    parallel_for(0, rows, 4, [=](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const int ic = static_cast<int>(r / (k * k));
            const int kh = static_cast<int>(r / k) % k;
            const int kw = static_cast<int>(r % k);
            const float* plane = img + static_cast<std::int64_t>(ic) * H * W;
            float* cur = data + r * nr;  // lane r of panel 0
            int jj = 0;                  // lane offset within the current panel
            const auto put = [&](float v) {
                cur[jj] = v;
                if (++jj == nr) {
                    jj = 0;
                    cur += panel_stride;
                }
            };
            for (int oh = 0; oh < OH; ++oh) {
                const int ih = oh * stride - pad + kh;
                if (ih < 0 || ih >= H) {
                    for (int ow = 0; ow < OW; ++ow) put(0.0f);
                    continue;
                }
                const float* row = plane + static_cast<std::int64_t>(ih) * W;
                const int iw0 = -pad + kw;
                for (int ow = 0; ow < OW; ++ow) {
                    const int iw = iw0 + ow * stride;
                    put(iw >= 0 && iw < W ? row[iw] : 0.0f);
                }
            }
            // Zero this row's lanes in the final partial panel.
            for (std::int64_t j = ocols; j < np * nr; ++j) put(0.0f);
        }
    });
}

void col2im(const float* col, int C, int H, int W, int k, int stride, int pad, int OH,
            int OW, float* img) {
    const std::int64_t ocols = static_cast<std::int64_t>(OH) * OW;
    // Parallel over input channels: all k*k rows of a channel scatter into
    // that channel's plane only, so planes are written by exactly one chunk.
    parallel_for(0, C, 1, [=](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t ic = c0; ic < c1; ++ic) {
            float* plane = img + ic * H * W;
            for (int kh = 0; kh < k; ++kh) {
                for (int kw = 0; kw < k; ++kw) {
                    const std::int64_t r = (ic * k + kh) * k + kw;
                    const float* in = col + r * ocols;
                    for (int oh = 0; oh < OH; ++oh, in += OW) {
                        const int ih = oh * stride - pad + kh;
                        if (ih < 0 || ih >= H) continue;
                        float* row = plane + static_cast<std::int64_t>(ih) * W;
                        const int iw0 = -pad + kw;
                        if (stride == 1) {
                            const int lo = std::max(0, -iw0);
                            const int hi = std::min(OW, W - iw0);
                            for (int ow = lo; ow < hi; ++ow) row[iw0 + ow] += in[ow];
                        } else {
                            for (int ow = 0; ow < OW; ++ow) {
                                const int iw = iw0 + ow * stride;
                                if (iw >= 0 && iw < W) row[iw] += in[ow];
                            }
                        }
                    }
                }
            }
        }
    });
}

}  // namespace sky::core
