// AVX2 instantiation of the integer GEMM micro-kernel.
//
// Compiled with -mavx2 (src/CMakeLists.txt) and selected only when
// core::best_simd_level() reports AVX2 support, like core/gemm_avx2.cpp.
// The 6 x 16 tile keeps 12 ymm accumulators live and drives vpmaddwd: the
// u8 activations widen to s16 with vpmovzxbw, each adjacent s16 weight
// k-pair broadcasts as one 32-bit load (vpbroadcastd), and madd's pairwise
// s16*s16 + s16*s16 sum is exact in int32 (|a| <= 32767, b <= 255) — the
// FBGEMM qconv idiom without the vpmaddubsw saturation hazard, at full rate
// even for the wide 9..15-bit weight formats.  Measured ~2x the fp32 FMA
// kernel's MAC rate on the same tile.
#include <immintrin.h>

#include <cstring>

#include "core/qgemm_ukernel.hpp"

namespace sky::core::detail {
namespace {

void qkernel_avx2(int K2, const std::int16_t* a, const std::uint8_t* b,
                  std::int32_t* c, std::int64_t ldc, int mr, int nr) {
    constexpr int MR = 6, NR = 16;
    __m256i acc[MR][2];
    for (auto& row : acc) row[0] = row[1] = _mm256_setzero_si256();
    for (int k2 = 0; k2 < K2; ++k2, a += MR * 2, b += NR * 2) {
        const __m256i b0 =
            _mm256_cvtepu8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b)));
        const __m256i b1 = _mm256_cvtepu8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + 16)));
        for (int m = 0; m < MR; ++m) {
            // The packed s16 pair a[m*2], a[m*2+1] is already madd's operand
            // layout — one 32-bit broadcast feeds both taps.
            std::int32_t pair;
            std::memcpy(&pair, a + m * 2, sizeof(pair));
            const __m256i av = _mm256_set1_epi32(pair);
            acc[m][0] = _mm256_add_epi32(acc[m][0], _mm256_madd_epi16(av, b0));
            acc[m][1] = _mm256_add_epi32(acc[m][1], _mm256_madd_epi16(av, b1));
        }
    }
    if (mr == MR && nr == NR) {
        for (int m = 0; m < MR; ++m) {
            std::int32_t* row = c + m * ldc;
            __m256i* lo = reinterpret_cast<__m256i*>(row);
            __m256i* hi = reinterpret_cast<__m256i*>(row + 8);
            _mm256_storeu_si256(lo, _mm256_add_epi32(_mm256_loadu_si256(lo), acc[m][0]));
            _mm256_storeu_si256(hi, _mm256_add_epi32(_mm256_loadu_si256(hi), acc[m][1]));
        }
    } else {
        std::int32_t tmp[MR * NR];
        for (int m = 0; m < MR; ++m) {
            std::memcpy(tmp + m * NR, &acc[m][0], sizeof(__m256i));
            std::memcpy(tmp + m * NR + 8, &acc[m][1], sizeof(__m256i));
        }
        for (int m = 0; m < mr; ++m)
            for (int n = 0; n < nr; ++n) c[m * ldc + n] += tmp[m * NR + n];
    }
}

}  // namespace

const QGemmKernel& qgemm_avx2_kernel() {
    static const QGemmKernel kernel{6, 16, &qkernel_avx2, "avx2"};
    return kernel;
}

}  // namespace sky::core::detail
