// AVX2 + FMA instantiation of the GEMM micro-kernel.
//
// This translation unit is compiled with -mavx2 -mfma -ffp-contract=fast
// (see src/CMakeLists.txt) and nothing in it runs unless
// core::best_simd_level() reports the CPU actually supports both feature
// bits, so the rest of the library stays at the baseline ISA.  The 6 x 16
// tile uses 12 of the 16 ymm registers as accumulators, 2 for the B panel
// and 1 for the A broadcast — the classic FBGEMM-style occupancy.
#include "core/gemm_ukernel.hpp"

namespace sky::core::detail {
namespace {

typedef float vf8 __attribute__((vector_size(32), aligned(4)));

}  // namespace

const GemmKernel& avx2_kernel() {
    static const GemmKernel kernel{6, 16, &ukernel<vf8, 6, 2>, "avx2"};
    return kernel;
}

}  // namespace sky::core::detail
