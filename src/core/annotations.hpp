// Compile-time concurrency contracts: SKY_* macros over Clang's
// thread-safety attributes.
//
// Annotating a lock-holding class turns its locking discipline from a
// comment convention into a compiler-checked contract: a field marked
// SKY_GUARDED_BY(mu_) cannot be read or written without holding mu_, a
// function marked SKY_REQUIRES(mu_) cannot be called without it, and a
// function marked SKY_EXCLUDES(mu_) cannot be called while holding it
// (self-deadlock).  The checks run entirely at compile time under
//
//   clang++ -Wthread-safety            (the CI `thread-safety` lane adds
//                                       -Werror=thread-safety on top)
//
// and every macro expands to nothing on GCC/MSVC, so the annotations cost
// zero at runtime and never gate the portable build.  The analysis only
// understands types that declare themselves capabilities — use
// sky::core::Mutex / MutexLock / CondVar (core/mutex.hpp), not bare
// std::mutex, for any lock you want verified.
//
// docs/STATIC_ANALYSIS.md has the "how to annotate a new lock" guide;
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html is the authority
// on the attribute semantics.
#pragma once

#if defined(__clang__)
#define SKY_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SKY_THREAD_ANNOTATION(x)  // expands to nothing: GCC/MSVC ignore the analysis
#endif

/// On a class: instances are capabilities (lockable things) the analysis
/// tracks.  `name` appears in diagnostics, e.g. SKY_CAPABILITY("mutex").
#define SKY_CAPABILITY(name) SKY_THREAD_ANNOTATION(capability(name))

/// On a class: RAII objects that acquire on construction and release on
/// destruction (sky::core::MutexLock).
#define SKY_SCOPED_CAPABILITY SKY_THREAD_ANNOTATION(scoped_lockable)

/// On a data member: reads and writes require holding `x`.
#define SKY_GUARDED_BY(x) SKY_THREAD_ANNOTATION(guarded_by(x))

/// On a pointer member: the pointed-to data (not the pointer) is guarded.
#define SKY_PT_GUARDED_BY(x) SKY_THREAD_ANNOTATION(pt_guarded_by(x))

/// On a function: callers must already hold every listed capability.
#define SKY_REQUIRES(...) SKY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// On a function: callers must NOT hold the listed capabilities (the
/// function acquires them itself — calling with them held self-deadlocks).
#define SKY_EXCLUDES(...) SKY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// On a function: acquires the listed capabilities (or `this` when empty,
/// for members of a capability class) and holds them on return.
#define SKY_ACQUIRE(...) SKY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// On a function: releases the listed capabilities (or `this`).
#define SKY_RELEASE(...) SKY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// On a function returning bool: acquires only when the return value equals
/// the first argument, e.g. SKY_TRY_ACQUIRE(true) for try_lock().
#define SKY_TRY_ACQUIRE(...) SKY_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// On a member declaration: this lock is always taken before/after `x` —
/// documents (and, under -Wthread-safety-beta, checks) lock ordering.
#define SKY_ACQUIRED_BEFORE(...) SKY_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SKY_ACQUIRED_AFTER(...) SKY_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// On a function: asserts (without acquiring) that the capability is held —
/// the escape hatch for code the analysis cannot follow, e.g. a
/// condition-variable wait predicate that always runs under the lock.
#define SKY_ASSERT_CAPABILITY(...) SKY_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// On a function returning a reference to a capability (lock accessors).
#define SKY_RETURN_CAPABILITY(x) SKY_THREAD_ANNOTATION(lock_returned(x))

/// On a function: opt out of the analysis entirely.  Last resort; prefer
/// SKY_ASSERT_CAPABILITY, and leave a comment saying why.
#define SKY_NO_THREAD_SAFETY_ANALYSIS SKY_THREAD_ANNOTATION(no_thread_safety_analysis)
