#include "tensor/rng.hpp"

#include <cmath>

namespace sky {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97f4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
    if (has_spare_) {
        has_spare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double two_pi = 6.283185307179586;
    spare_ = mag * std::sin(two_pi * u2);
    has_spare_ = true;
    return mag * std::cos(two_pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64() ^ 0xA3C59AC2ull); }

}  // namespace sky
