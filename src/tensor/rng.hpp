// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (weight init, synthetic data,
// augmentation, PSO search) draws from sky::Rng so that every test, example
// and benchmark is bit-reproducible from a seed.  The generator is
// xoshiro256**, seeded through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>

namespace sky {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5339424Eull);  // "S9BN"

    /// Uniform 64-bit value.
    std::uint64_t next_u64();

    /// Uniform in [0, 1).
    double uniform();

    /// Uniform in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] inclusive.
    int uniform_int(int lo, int hi);

    /// Standard normal via Box-Muller.
    double normal();

    /// Normal with given mean / stddev.
    double normal(double mean, double stddev);

    /// Bernoulli trial.
    bool chance(double p);

    /// Split off an independent stream (for parallel-safe sub-generators).
    Rng split();

private:
    std::uint64_t s_[4];
    bool has_spare_ = false;
    double spare_ = 0.0;
};

}  // namespace sky
