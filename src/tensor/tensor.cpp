#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sky {

void Tensor::zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::axpy(float alpha, const Tensor& other) {
    // A real check, not an assert: in Release builds a shape mismatch here
    // would silently read/write out of bounds.
    if (shape_ != other.shape_)
        throw std::invalid_argument("axpy: shape mismatch " + shape_.str() + " vs " +
                                    other.shape_.str());
    const float* src = other.data();
    float* dst = data();
    const std::size_t n = data_.size();
    for (std::size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::scale(float alpha) {
    for (auto& v : data_) v *= alpha;
}

float Tensor::sum() const {
    double acc = 0.0;
    for (float v : data_) acc += v;
    return static_cast<float>(acc);
}

float Tensor::min() const {
    return data_.empty() ? 0.0f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
    return data_.empty() ? 0.0f : *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
    float m = 0.0f;
    for (float v : data_) m = std::max(m, std::fabs(v));
    return m;
}

double Tensor::mean() const {
    if (data_.empty()) return 0.0;
    return static_cast<double>(sum()) / static_cast<double>(data_.size());
}

double Tensor::sq_norm() const {
    double acc = 0.0;
    for (float v : data_) acc += static_cast<double>(v) * v;
    return acc;
}

Tensor Tensor::reshaped(Shape s) const {
    if (s.count() != shape_.count())
        throw std::invalid_argument("reshape: element count mismatch " + shape_.str() +
                                    " -> " + s.str());
    Tensor out(s, data_);
    return out;
}

void Tensor::randn(Rng& rng, float mean, float stddev) {
    for (auto& v : data_) v = static_cast<float>(rng.normal(mean, stddev));
}

void Tensor::rand_uniform(Rng& rng, float lo, float hi) {
    for (auto& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::kaiming(Rng& rng, int fan_in) {
    const float stddev = std::sqrt(2.0f / static_cast<float>(std::max(1, fan_in)));
    randn(rng, 0.0f, stddev);
}

Tensor Tensor::concat_channels(const std::vector<const Tensor*>& parts) {
    if (parts.empty()) throw std::invalid_argument("concat_channels: no inputs");
    const Shape& first = parts.front()->shape();
    int total_c = 0;
    for (const Tensor* p : parts) {
        const Shape& s = p->shape();
        if (s.n != first.n || s.h != first.h || s.w != first.w)
            throw std::invalid_argument("concat_channels: incompatible part " + s.str() +
                                        " vs " + first.str());
        total_c += s.c;
    }
    Tensor out({first.n, total_c, first.h, first.w});
    const std::int64_t plane = static_cast<std::int64_t>(first.h) * first.w;
    for (int n = 0; n < first.n; ++n) {
        int c_off = 0;
        for (const Tensor* p : parts) {
            const int pc = p->shape().c;
            std::copy_n(p->plane(n, 0), pc * plane, out.plane(n, c_off));
            c_off += pc;
        }
    }
    return out;
}

std::vector<Tensor> Tensor::split_channels(const Tensor& whole,
                                           const std::vector<int>& channel_counts) {
    const Shape& s = whole.shape();
    std::vector<Tensor> parts;
    parts.reserve(channel_counts.size());
    for (int c : channel_counts) parts.emplace_back(Shape{s.n, c, s.h, s.w});
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    for (int n = 0; n < s.n; ++n) {
        int c_off = 0;
        for (std::size_t i = 0; i < channel_counts.size(); ++i) {
            const int pc = channel_counts[i];
            std::copy_n(whole.plane(n, c_off), pc * plane, parts[i].plane(n, 0));
            c_off += pc;
        }
    }
    return parts;
}

}  // namespace sky
