// Dense float32 NCHW tensor.
//
// Tensor is a value type: copy copies the buffer, move steals it.  Layers in
// sky::nn exchange Tensors by const reference and return them by value.  The
// class deliberately exposes raw data() access: inner loops in the layer
// implementations are hand-written for cache-friendliness, and the tensor
// abstraction should never stand between a kernel and its memory.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"
#include "tensor/shape.hpp"

namespace sky {

class Tensor {
public:
    Tensor() = default;
    explicit Tensor(Shape s) : shape_(s), data_(static_cast<std::size_t>(s.count()), 0.0f) {}
    Tensor(Shape s, float fill)
        : shape_(s), data_(static_cast<std::size_t>(s.count()), fill) {}
    Tensor(Shape s, std::vector<float> values) : shape_(s), data_(std::move(values)) {
        assert(static_cast<std::int64_t>(data_.size()) == shape_.count());
    }

    [[nodiscard]] const Shape& shape() const { return shape_; }
    [[nodiscard]] std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
    [[nodiscard]] bool empty() const { return data_.empty(); }

    [[nodiscard]] float* data() { return data_.data(); }
    [[nodiscard]] const float* data() const { return data_.data(); }

    /// Element access by NCHW coordinate (bounds unchecked in release builds).
    [[nodiscard]] float& at(int n, int c, int h, int w) {
        return data_[index(n, c, h, w)];
    }
    [[nodiscard]] float at(int n, int c, int h, int w) const {
        return data_[index(n, c, h, w)];
    }
    [[nodiscard]] float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
    [[nodiscard]] float operator[](std::int64_t i) const {
        return data_[static_cast<std::size_t>(i)];
    }

    /// Pointer to the (n, c) spatial plane.
    [[nodiscard]] float* plane(int n, int c) { return data_.data() + index(n, c, 0, 0); }
    [[nodiscard]] const float* plane(int n, int c) const {
        return data_.data() + index(n, c, 0, 0);
    }

    void zero();
    void fill(float v);
    /// In-place: this += alpha * other.  Shapes must match.
    void axpy(float alpha, const Tensor& other);
    /// In-place scale.
    void scale(float alpha);

    [[nodiscard]] float sum() const;
    [[nodiscard]] float min() const;
    [[nodiscard]] float max() const;
    [[nodiscard]] float abs_max() const;
    [[nodiscard]] double mean() const;
    /// Squared L2 norm.
    [[nodiscard]] double sq_norm() const;

    /// Reinterpret the buffer with a new shape of identical element count.
    [[nodiscard]] Tensor reshaped(Shape s) const;

    /// Fill with N(mean, stddev).
    void randn(Rng& rng, float mean = 0.0f, float stddev = 1.0f);
    /// Fill with U[lo, hi).
    void rand_uniform(Rng& rng, float lo, float hi);
    /// Kaiming/He initialisation for a conv weight of given fan-in.
    void kaiming(Rng& rng, int fan_in);

    /// Concatenate along the channel axis.  All inputs share n/h/w.
    static Tensor concat_channels(const std::vector<const Tensor*>& parts);
    /// Split a channel-concatenated gradient back into per-part tensors.
    static std::vector<Tensor> split_channels(const Tensor& whole,
                                              const std::vector<int>& channel_counts);

private:
    [[nodiscard]] std::size_t index(int n, int c, int h, int w) const {
        assert(n >= 0 && n < shape_.n && c >= 0 && c < shape_.c);
        assert(h >= 0 && h < shape_.h && w >= 0 && w < shape_.w);
        return static_cast<std::size_t>(((static_cast<std::int64_t>(n) * shape_.c + c) *
                                             shape_.h +
                                         h) *
                                            shape_.w +
                                        w);
    }

    Shape shape_;
    std::vector<float> data_;
};

}  // namespace sky
