// Shape of an NCHW tensor.
//
// Everything in this library is a 4-D NCHW tensor; vectors and matrices are
// represented with trailing singleton dimensions (a fully-connected activation
// of F features is {n, F, 1, 1}).  Keeping the rank fixed makes layer code
// simple and keeps Shape trivially copyable.
#pragma once

#include <cstdint>
#include <string>

namespace sky {

struct Shape {
    int n = 1;  ///< batch
    int c = 1;  ///< channels (or features)
    int h = 1;  ///< height
    int w = 1;  ///< width

    [[nodiscard]] std::int64_t count() const {
        return static_cast<std::int64_t>(n) * c * h * w;
    }
    /// Elements per batch item.
    [[nodiscard]] std::int64_t per_item() const {
        return static_cast<std::int64_t>(c) * h * w;
    }
    [[nodiscard]] bool operator==(const Shape& o) const = default;

    [[nodiscard]] std::string str() const {
        return "[" + std::to_string(n) + "," + std::to_string(c) + "," +
               std::to_string(h) + "," + std::to_string(w) + "]";
    }
};

}  // namespace sky
