// Dataset statistics tooling for Fig. 6: the distribution of ground-truth
// bounding-box relative size (box area / image area), as histogram bars plus
// the cumulative curve, and the two headline numbers the paper quotes (91%
// of objects below 9% of the image, 31% below 1%).
#pragma once

#include <vector>

namespace sky::dacsdc {

struct SizeHistogram {
    std::vector<double> bin_edges;   ///< size B+1
    std::vector<double> frequency;   ///< size B, fraction per bin
    std::vector<double> cumulative;  ///< size B, CDF at each bin's right edge
};

/// Histogram of area ratios over [0, max_ratio] with `bins` equal bins.
[[nodiscard]] SizeHistogram size_histogram(const std::vector<float>& area_ratios, int bins,
                                           double max_ratio);

/// Fraction of ratios strictly below `threshold`.
[[nodiscard]] double fraction_below(const std::vector<float>& area_ratios, double threshold);

}  // namespace sky::dacsdc
