#include "dacsdc/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace sky::dacsdc {

SizeHistogram size_histogram(const std::vector<float>& area_ratios, int bins,
                             double max_ratio) {
    if (bins <= 0 || max_ratio <= 0.0)
        throw std::invalid_argument("size_histogram: bad configuration");
    SizeHistogram h;
    h.bin_edges.resize(static_cast<std::size_t>(bins) + 1);
    for (int b = 0; b <= bins; ++b)
        h.bin_edges[static_cast<std::size_t>(b)] = max_ratio * b / bins;
    h.frequency.assign(static_cast<std::size_t>(bins), 0.0);
    if (area_ratios.empty()) {
        h.cumulative.assign(static_cast<std::size_t>(bins), 0.0);
        return h;
    }
    for (float r : area_ratios) {
        int b = static_cast<int>(static_cast<double>(r) / max_ratio * bins);
        b = std::clamp(b, 0, bins - 1);
        h.frequency[static_cast<std::size_t>(b)] += 1.0;
    }
    const double inv = 1.0 / static_cast<double>(area_ratios.size());
    double acc = 0.0;
    h.cumulative.resize(static_cast<std::size_t>(bins));
    for (int b = 0; b < bins; ++b) {
        h.frequency[static_cast<std::size_t>(b)] *= inv;
        acc += h.frequency[static_cast<std::size_t>(b)];
        h.cumulative[static_cast<std::size_t>(b)] = acc;
    }
    return h;
}

double fraction_below(const std::vector<float>& area_ratios, double threshold) {
    if (area_ratios.empty()) return 0.0;
    const auto count = std::count_if(area_ratios.begin(), area_ratios.end(),
                                     [&](float r) { return r < threshold; });
    return static_cast<double>(count) / static_cast<double>(area_ratios.size());
}

}  // namespace sky::dacsdc
