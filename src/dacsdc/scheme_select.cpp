#include "dacsdc/scheme_select.hpp"

#include <algorithm>

#include "hwsim/energy.hpp"
#include "quant/qmodel.hpp"

namespace sky::dacsdc {

std::vector<SchemeEvaluation> select_scheme(nn::Module& net, const detect::YoloHead& head,
                                            const data::DetectionBatch& val,
                                            const hwsim::FpgaModel& fpga,
                                            SchemeSelectConfig cfg) {
    if (cfg.reference_field.empty()) {
        // The 2019 FPGA-track podium (Table 6) as the default field.
        cfg.reference_field = {{"xjtu tripler", 0.615, 50.91, 9.25},
                               {"systemsethz", 0.553, 55.13, 6.69}};
    }
    nn::Module& hw_net = cfg.full_scale_net != nullptr ? *cfg.full_scale_net : net;
    const float fm_range = cfg.fm_abs_max > 0.0f
                               ? cfg.fm_abs_max
                               : quant::calibrate_fm_abs_max(net, val.images);

    std::vector<SchemeEvaluation> evals;
    for (const quant::QuantScheme& s : quant::table7_schemes()) {
        SchemeEvaluation ev;
        ev.scheme = s;
        ev.iou = quant::detector_iou_quantized(net, head, val, s.fm_bits, s.weight_bits,
                                               fm_range);
        const hwsim::FpgaBuildConfig build{s.weight_bits, s.fm_bits, false,
                                           cfg.batch_tile, 1.0};
        const hwsim::FpgaEstimate est = fpga.estimate(hw_net, cfg.hw_input, build);
        ev.fps = est.fps;
        ev.power_w =
            hwsim::estimate_energy(fpga.profile(), est.utilization, est.fps).power_w;

        std::vector<Entry> field = cfg.reference_field;
        field.push_back({"candidate", ev.iou, ev.fps, ev.power_w});
        for (const ScoredEntry& se : score_track(field, cfg.track))
            if (se.entry.team == "candidate") ev.total_score = se.total_score;
        evals.push_back(ev);
    }
    std::sort(evals.begin(), evals.end(),
              [](const SchemeEvaluation& a, const SchemeEvaluation& b) {
                  return a.total_score > b.total_score;
              });
    return evals;
}

}  // namespace sky::dacsdc
