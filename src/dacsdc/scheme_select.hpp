// Deployment scheme selection (§6.4.1): "Since accuracy has higher weight
// in the total score calculation (Eq. 5), we pick scheme 1 as the
// quantization design for SkyNet."
//
// This module automates that decision: for every candidate quantisation
// scheme it measures the quantised IoU on a validation set, estimates FPS /
// power on the target FPGA, projects the contest total score against a
// reference field of competitor entries, and returns the ranking.  It is
// the glue between the quant, hwsim and scoring subsystems — exactly the
// loop a DAC-SDC team runs the night before the deadline.
#pragma once

#include "dacsdc/scoring.hpp"
#include "data/synth_detection.hpp"
#include "detect/yolo_head.hpp"
#include "hwsim/fpga_model.hpp"
#include "quant/quantizer.hpp"

namespace sky::dacsdc {

struct SchemeEvaluation {
    quant::QuantScheme scheme;
    double iou = 0.0;
    double fps = 0.0;
    double power_w = 0.0;
    double total_score = 0.0;  ///< projected TS against the reference field
};

struct SchemeSelectConfig {
    /// The trained model evaluated at small scale; the hardware estimate
    /// uses this full-scale twin (nullptr: use the same net for both).
    nn::Module* full_scale_net = nullptr;
    Shape hw_input{1, 3, 160, 320};
    int batch_tile = 4;
    /// Reference competitor entries for the score projection (paper
    /// Table 6 values by default, set in scheme_select.cpp).
    std::vector<Entry> reference_field;
    TrackConfig track{2.0, 50000};  ///< FPGA track scoring
    float fm_abs_max = 0.0f;        ///< 0: calibrate from the validation set
};

/// Evaluate all Table 7 schemes and return them ranked by projected total
/// score (best first).
[[nodiscard]] std::vector<SchemeEvaluation> select_scheme(
    nn::Module& net, const detect::YoloHead& head, const data::DetectionBatch& val,
    const hwsim::FpgaModel& fpga, SchemeSelectConfig cfg = SchemeSelectConfig{});

}  // namespace sky::dacsdc
