// DAC-SDC contest scoring, Eq. 2-5 of the paper (§6.2).
//
//   R_IoU_i = mean IoU over the K test images                      (Eq. 2)
//   E_bar   = mean energy of all I entries                         (Eq. 3)
//   ES_i    = max(0, 1 + 0.2 * log_x(E_bar / E_i))                 (Eq. 4)
//             x = 2 for the FPGA track, 10 for the GPU track
//   TS_i    = R_IoU_i * (1 + ES_i)                                 (Eq. 5)
#pragma once

#include <string>
#include <vector>

namespace sky::dacsdc {

struct Entry {
    std::string team;
    double iou = 0.0;      ///< R_IoU over the test set
    double fps = 0.0;      ///< end-to-end throughput
    double power_w = 0.0;  ///< board power while processing
};

struct ScoredEntry {
    Entry entry;
    double energy_j = 0.0;      ///< total energy for the test set
    double energy_score = 0.0;  ///< ES_i
    double total_score = 0.0;   ///< TS_i
};

struct TrackConfig {
    double log_base = 10.0;   ///< 10 for GPU track, 2 for FPGA track
    int test_images = 50000;  ///< K (the hidden set size)
};

/// Energy an entry spends on the test set: P * K / FPS.
[[nodiscard]] double entry_energy_j(const Entry& e, int test_images);

/// Score a whole track; the returned vector is sorted by total score
/// (descending), matching the leaderboard layout of Tables 5/6.
[[nodiscard]] std::vector<ScoredEntry> score_track(const std::vector<Entry>& entries,
                                                   const TrackConfig& cfg);

}  // namespace sky::dacsdc
