#include "dacsdc/scoring.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sky::dacsdc {

double entry_energy_j(const Entry& e, int test_images) {
    if (e.fps <= 0.0) throw std::invalid_argument("entry_energy_j: fps must be positive");
    return e.power_w * static_cast<double>(test_images) / e.fps;
}

std::vector<ScoredEntry> score_track(const std::vector<Entry>& entries,
                                     const TrackConfig& cfg) {
    if (entries.empty()) return {};
    std::vector<ScoredEntry> scored;
    scored.reserve(entries.size());
    double mean_energy = 0.0;
    for (const Entry& e : entries) {
        ScoredEntry s;
        s.entry = e;
        s.energy_j = entry_energy_j(e, cfg.test_images);
        mean_energy += s.energy_j;
        scored.push_back(s);
    }
    mean_energy /= static_cast<double>(entries.size());

    for (ScoredEntry& s : scored) {
        const double ratio = mean_energy / s.energy_j;
        s.energy_score =
            std::max(0.0, 1.0 + 0.2 * std::log(ratio) / std::log(cfg.log_base));
        s.total_score = s.entry.iou * (1.0 + s.energy_score);
    }
    std::sort(scored.begin(), scored.end(), [](const ScoredEntry& a, const ScoredEntry& b) {
        return a.total_score > b.total_score;
    });
    return scored;
}

}  // namespace sky::dacsdc
