#include "skynet/detector.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "deploy/fold_bn.hpp"
#include "skynet/check_model.hpp"
#include "verify/check_qmodel.hpp"

namespace sky {

const char* precision_name(Precision p) {
    switch (p) {
        case Precision::kFp32: return "fp32";
        case Precision::kInt8: return "int8";
    }
    return "?";
}

const char* detector_stage_name(DetectorStage s) {
    switch (s) {
        case DetectorStage::kFloat: return "float32";
        case DetectorStage::kFolded: return "bn-folded";
        case DetectorStage::kQuantized: return "quantized";
    }
    return "?";
}

Detector::Detector(const SkyNetConfig& cfg, Rng& rng) : model_(build_skynet(cfg, rng)) {
    verify::enforce(verify());
    prepack();
}

Detector::Detector(SkyNetModel model) : model_(std::move(model)) {
    if (!model_.net) throw std::invalid_argument("Detector: model has no network");
    verify::enforce(verify());
    prepack();
}

verify::Report Detector::verify(const Shape& input) const {
    return verify::check_model(model_, input);
}

int Detector::fold_bn() {
    if (stage_ != DetectorStage::kFloat) return 0;
    const int folded = deploy::fold_graph_bn(*model_.net);
    stage_ = DetectorStage::kFolded;
    prepack();  // folding rewrote conv weights, so the panels are stale
    return folded;
}

void Detector::prepack() {
    // set_training(false) refreshes every layer's weight panels; the explicit
    // prepack() covers layers whose packs were invalidated while already in
    // eval mode (mutable weight() access during BN folding).
    model_.net->set_training(false);
    model_.net->prepack();
}

quant::QuantReport Detector::quantize(const quant::QuantConfig& qcfg) {
    if (stage_ == DetectorStage::kQuantized)
        throw std::logic_error("Detector: already quantized");
    fold_bn();  // QEngine requires a BN-free graph
    model_.net->set_training(false);
    verify::enforce(verify::check_qmodel(*model_.net, qcfg));
    qengine_ = std::make_unique<quant::QEngine>(*model_.net, qcfg);
    // Certified error budget, strict mode: reject the scheme before it can
    // serve a single image (the report carries the same verdict either way).
    if (qcfg.strict_error_budget && qcfg.error_budget > 0.0f &&
        qengine_->report().error_budget_exceeded) {
        const quant::QuantReport& rep = qengine_->report();
        verify::Report r;
        r.error("E001", rep.layers.empty() ? 0 : rep.layers.back().node,
                rep.error_bound_known
                    ? "certified |int8 - fp32| bound " +
                          std::to_string(rep.certified_error_bound) +
                          " exceeds the error budget " +
                          std::to_string(qcfg.error_budget)
                    : std::string("certified error bound could not be established "
                                  "(error tracking lost)"),
                "add fractional bits, shrink fm_abs_max, relax the budget, or "
                "drop strict_error_budget");
        qengine_.reset();
        throw verify::VerifyError(std::move(r));
    }
    // Static activation plan at the canonical input shape so the report
    // (and serve's capacity gauge) carries the arena figures up front;
    // run() replans only if fed a different shape.
    qengine_->plan_activations(verify::default_input_shape());
    stage_ = DetectorStage::kQuantized;
    return qengine_->report();
}

Tensor Detector::forward(const Tensor& images) {
    const Shape& s = images.shape();
    if (s.c != 3)
        throw std::invalid_argument("Detector::forward: expected {n,3,h,w}, got " +
                                    s.str());
    if (qengine_) return qengine_->run(images);
    model_.net->set_training(false);
    return model_.net->forward(images);
}

detect::BBox Detector::detect(const Tensor& image) {
    if (image.shape().n != 1)
        throw std::invalid_argument("Detector::detect: expected a single image, got " +
                                    image.shape().str() + " (use detect_batch)");
    const Tensor map = forward(image);
    const std::vector<detect::BBox> boxes = model_.head.decode(map);
    if (boxes.empty())
        throw DetectorError(
            "Detector::detect: head decoder returned no box for a 1-image batch "
            "(head map " + map.shape().str() + ")");
    return boxes[0];
}

std::vector<detect::BBox> Detector::detect_batch(const Tensor& images) {
    return model_.head.decode(forward(images));
}

std::vector<std::vector<detect::Detection>> Detector::detect_all(const Tensor& images,
                                                                 float conf_threshold,
                                                                 float nms_iou) {
    return model_.head.decode_all(forward(images), conf_threshold, nms_iou);
}

}  // namespace sky
