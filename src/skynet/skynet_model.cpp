#include "skynet/skynet_model.hpp"

#include <algorithm>

#include "nn/batchnorm.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/space_to_depth.hpp"

namespace sky {
namespace {

int scaled(int ch, float mult) {
    const int s = static_cast<int>(static_cast<float>(ch) * mult + 0.5f);
    return std::max(8, (s + 3) / 4 * 4);  // round up to multiple of 4, floor 8
}

/// DW-Conv3 + BN + act + PW-Conv1 + BN + act appended as graph nodes.
int add_bundle(nn::Graph& g, int in_node, int in_ch, int out_ch, nn::Act act, Rng& rng) {
    int n = g.add(std::make_unique<nn::DWConv3>(in_ch, rng), in_node);
    n = g.add(std::make_unique<nn::BatchNorm2d>(in_ch), n);
    n = g.add(std::make_unique<nn::Activation>(act), n);
    n = g.add(std::make_unique<nn::PWConv1>(in_ch, out_ch, /*bias=*/false, rng), n);
    n = g.add(std::make_unique<nn::BatchNorm2d>(out_ch), n);
    n = g.add(std::make_unique<nn::Activation>(act), n);
    return n;
}

}  // namespace

const char* variant_name(SkyNetVariant v) {
    switch (v) {
        case SkyNetVariant::kA: return "A";
        case SkyNetVariant::kB: return "B";
        case SkyNetVariant::kC: return "C";
    }
    return "?";
}

std::string SkyNetConfig::name() const {
    return std::string("SkyNet ") + variant_name(variant) + " - " + nn::act_name(act);
}

SkyNetModel build_skynet(const SkyNetConfig& cfg, Rng& rng) {
    const float m = cfg.width_mult;
    const int c1 = scaled(48, m), c2 = scaled(96, m), c3 = scaled(192, m),
              c4 = scaled(384, m), c5 = scaled(512, m);
    SkyNetModel model;
    model.config = cfg;
    model.net = std::make_unique<nn::Graph>();
    nn::Graph& g = *model.net;
    const nn::Act act = cfg.act;

    int n = add_bundle(g, g.input(), 3, c1, act, rng);       // Bundle #1
    n = g.add(std::make_unique<nn::MaxPool2>(), n);
    n = add_bundle(g, n, c1, c2, act, rng);                   // Bundle #2
    n = g.add(std::make_unique<nn::MaxPool2>(), n);
    const int b3 = add_bundle(g, n, c2, c3, act, rng);        // Bundle #3 (bypass source)
    n = g.add(std::make_unique<nn::MaxPool2>(), b3);
    n = add_bundle(g, n, c3, c4, act, rng);                   // Bundle #4
    const int b5 = add_bundle(g, n, c4, c5, act, rng);        // Bundle #5

    const int head_anchors_ch = 5 * cfg.anchors;
    int feat = b5;
    int feat_ch = c5;
    if (cfg.variant == SkyNetVariant::kA) {
        model.set_feature_tap(b5, c5);
        n = g.add(std::make_unique<nn::PWConv1>(c5, head_anchors_ch, /*bias=*/true, rng),
                  b5);
    } else {
        // Bypass: reorder Bundle-#3 output (c3 -> 4*c3 at half resolution)
        // and concatenate with the Bundle-#5 output.
        const int reordered = g.add(std::make_unique<nn::SpaceToDepth>(2), b3);
        const int cat = g.add_concat({b5, reordered});
        const int cat_ch = c5 + 4 * c3;
        const int mid = cfg.variant == SkyNetVariant::kB ? scaled(48, m) : scaled(96, m);
        // Final Bundle #6 on the concatenated maps.
        feat = add_bundle(g, cat, cat_ch, mid, act, rng);
        feat_ch = mid;
        model.set_feature_tap(feat, mid);
        n = g.add(std::make_unique<nn::PWConv1>(mid, head_anchors_ch, /*bias=*/true, rng),
                  feat);
    }
    (void)feat;
    (void)feat_ch;
    g.set_output(n);
    model.head = detect::YoloHead();
    return model;
}

SkyNetModel build_skynet_backbone(float width_mult, nn::Act act, Rng& rng) {
    const float m = width_mult;
    const int c1 = scaled(48, m), c2 = scaled(96, m), c3 = scaled(192, m),
              c4 = scaled(384, m), c5 = scaled(512, m);
    SkyNetModel model;
    model.config = SkyNetConfig{SkyNetVariant::kC, act, 2, width_mult};
    model.net = std::make_unique<nn::Graph>();
    nn::Graph& g = *model.net;
    int n = add_bundle(g, g.input(), 3, c1, act, rng);
    n = g.add(std::make_unique<nn::MaxPool2>(), n);
    n = add_bundle(g, n, c1, c2, act, rng);
    n = g.add(std::make_unique<nn::MaxPool2>(), n);
    n = add_bundle(g, n, c2, c3, act, rng);
    n = g.add(std::make_unique<nn::MaxPool2>(), n);
    n = add_bundle(g, n, c3, c4, act, rng);
    n = add_bundle(g, n, c4, c5, act, rng);
    g.set_output(n);
    model.set_feature_tap(n, c5);
    return model;
}

}  // namespace sky
