// The SkyNet detector family — models A, B and C of Table 3 / Fig. 4.
//
// Six stacked DW3+PW1 Bundles with channels 48-96-192-384-512, three 2x2
// max-poolings, and (for B/C) a feature-map bypass: the Bundle-#3 output is
// space-to-depth reordered (192 -> 768 channels at half resolution) and
// concatenated with the Bundle-#5 output before the final Bundle.  The head
// is a 1x1 conv to 5*anchors channels (two anchors, no class output).
//
// `width_mult` scales every channel count (rounded to a multiple of 8, min
// 8) so the same architecture trains quickly on CPU at reduced width; 1.0
// reproduces the paper's parameter sizes (Table 4: 1.27 / 1.57 / 1.82 MB).
#pragma once

#include <memory>

#include "detect/yolo_head.hpp"
#include "nn/activations.hpp"
#include "nn/graph.hpp"

namespace sky {

enum class SkyNetVariant { kA, kB, kC };

[[nodiscard]] const char* variant_name(SkyNetVariant v);

struct SkyNetConfig {
    SkyNetVariant variant = SkyNetVariant::kC;
    nn::Act act = nn::Act::kReLU6;
    int anchors = 2;
    float width_mult = 1.0f;

    [[nodiscard]] std::string name() const;
};

/// A built SkyNet: the trainable graph plus its head metadata.
struct SkyNetModel {
    std::unique_ptr<nn::Graph> net;
    detect::YoloHead head;
    SkyNetConfig config;

    /// Graph node id of the pre-head feature map (the tracker tap point):
    /// pass to nn::Graph::node_output after a forward.
    [[nodiscard]] int feature_node() const { return feature_node_; }
    /// Channel count of that feature map (the Siamese embed input width).
    [[nodiscard]] int feature_channels() const { return feature_channels_; }
    /// Point the tracker tap at `node` / `channels`.  For the builders (and
    /// tests seeding broken taps); verify::check_model cross-checks the
    /// metadata against the graph, so a stale tap is a diagnostic.
    void set_feature_tap(int node, int channels) {
        feature_node_ = node;
        feature_channels_ = channels;
    }

    [[nodiscard]] std::int64_t param_count() const { return net->param_count(); }
    /// Parameter size in MB at float32 (what Table 4 reports).
    [[nodiscard]] double param_mb() const {
        return static_cast<double>(param_count()) * 4.0 / 1e6;
    }

private:
    int feature_node_ = 0;  ///< graph node emitting the last Bundle output
                            ///< (pre-head features; used by the trackers)
    int feature_channels_ = 0;
};

[[nodiscard]] SkyNetModel build_skynet(const SkyNetConfig& cfg, Rng& rng);

/// Backbone-only builder (no detection head): the feature extractor used as
/// the Siamese-tracker backbone in §7.  Output stride 8, 512*width channels.
[[nodiscard]] SkyNetModel build_skynet_backbone(float width_mult, nn::Act act, Rng& rng);

}  // namespace sky
