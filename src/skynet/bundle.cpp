#include "skynet/bundle.hpp"

#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pwconv.hpp"

namespace sky {

const char* bundle_op_name(BundleOp op) {
    switch (op) {
        case BundleOp::kDWConv3: return "DW-Conv3";
        case BundleOp::kPWConv1: return "PW-Conv1";
        case BundleOp::kConv3: return "Conv3";
        case BundleOp::kConv1: return "Conv1";
        case BundleOp::kConv5: return "Conv5";
    }
    return "?";
}

std::vector<BundleSpec> enumerate_bundles() {
    return {
        {"DW3+PW1", {BundleOp::kDWConv3, BundleOp::kPWConv1}},
        {"Conv3", {BundleOp::kConv3}},
        {"Conv1+Conv3", {BundleOp::kConv1, BundleOp::kConv3}},
        {"Conv3+Conv1", {BundleOp::kConv3, BundleOp::kConv1}},
        {"DW3+PW1x2", {BundleOp::kDWConv3, BundleOp::kPWConv1, BundleOp::kDWConv3,
                       BundleOp::kPWConv1}},
        {"Conv5", {BundleOp::kConv5}},
        {"Conv3+Conv3", {BundleOp::kConv3, BundleOp::kConv3}},
        {"PW1+DW3", {BundleOp::kPWConv1, BundleOp::kDWConv3}},
    };
}

BundleSpec skynet_bundle() { return {"DW3+PW1", {BundleOp::kDWConv3, BundleOp::kPWConv1}}; }

nn::ModulePtr instantiate(const BundleSpec& spec, int in_ch, int out_ch, nn::Act act,
                          Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    int cur = in_ch;
    // The first channel-mapping op transitions cur -> out_ch; later mapping
    // ops stay at out_ch.  Channel-preserving ops run at the current width.
    for (BundleOp op : spec.ops) {
        switch (op) {
            case BundleOp::kDWConv3:
                seq->emplace<nn::DWConv3>(cur, rng);
                break;
            case BundleOp::kPWConv1:
                seq->emplace<nn::PWConv1>(cur, out_ch, /*bias=*/false, rng);
                cur = out_ch;
                break;
            case BundleOp::kConv3:
                seq->emplace<nn::Conv2d>(cur, out_ch, 3, 1, 1, /*bias=*/false, rng);
                cur = out_ch;
                break;
            case BundleOp::kConv1:
                seq->emplace<nn::Conv2d>(cur, out_ch, 1, 1, 0, /*bias=*/false, rng);
                cur = out_ch;
                break;
            case BundleOp::kConv5:
                seq->emplace<nn::Conv2d>(cur, out_ch, 5, 1, 2, /*bias=*/false, rng);
                cur = out_ch;
                break;
        }
        seq->emplace<nn::BatchNorm2d>(cur);
        seq->emplace<nn::Activation>(act);
    }
    return seq;
}

}  // namespace sky
