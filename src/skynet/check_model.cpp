#include "skynet/check_model.hpp"

#include <string>
#include <vector>

namespace sky::verify {

Report check_model(const SkyNetModel& model, const Shape& input) {
    if (!model.net) {
        Report rep;
        rep.error("M003", -1, "SkyNetModel has no network", "build the model first");
        return rep;
    }
    Report rep = check_graph(*model.net, input);

    const int count = static_cast<int>(model.net->node_count());
    const int tap = model.feature_node();
    if (tap < 0 || tap >= count) {
        rep.error("M001", tap, "feature tap node id is out of range",
                  "point feature_node at the last Bundle's activation node");
        return rep;
    }
    // Cheap metadata cross-check: the tap's channel count (as the graph
    // infers it) must match what the trackers will size their embeddings by.
    if (rep.ok()) {
        try {
            // Re-infer just the tap shape through the public walk: out_shape
            // of a truncated view is not available, so lean on enumerate()'s
            // invariant instead — the tap is a module node whose out_shape we
            // can query directly from its producer chain.  check_graph already
            // validated every edge, so Graph::out_shape-style inference is
            // safe here via a temporary output swap-free approach: walk again.
            std::vector<Shape> shapes(static_cast<std::size_t>(count));
            shapes[0] = input;
            for (int i = 1; i <= tap; ++i) {
                const std::size_t idx = static_cast<std::size_t>(i);
                const auto& ins = model.net->node_inputs(idx);
                switch (model.net->node_kind(idx)) {
                    case nn::Graph::NodeKind::kInput:
                        break;
                    case nn::Graph::NodeKind::kModule:
                        shapes[idx] = model.net->node_module(idx)->out_shape(
                            shapes[static_cast<std::size_t>(ins[0])]);
                        break;
                    case nn::Graph::NodeKind::kConcat: {
                        Shape s = shapes[static_cast<std::size_t>(ins[0])];
                        s.c = 0;
                        for (const int in : ins) s.c += shapes[static_cast<std::size_t>(in)].c;
                        shapes[idx] = s;
                        break;
                    }
                    case nn::Graph::NodeKind::kAdd:
                        shapes[idx] = shapes[static_cast<std::size_t>(ins[0])];
                        break;
                }
            }
            const int got = shapes[static_cast<std::size_t>(tap)].c;
            if (model.feature_channels() != got)
                rep.warn("M002", tap,
                         "feature tap metadata says " +
                             std::to_string(model.feature_channels()) +
                             " channels but the graph emits " + std::to_string(got),
                         "keep the feature_channels() metadata in sync with the tap node");
        } catch (const std::exception&) {
            // check_graph was clean, so this should be unreachable; stay silent
            // rather than double-report.
        }
    }
    return rep;
}

}  // namespace sky::verify
