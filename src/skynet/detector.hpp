// sky::Detector — the single entry point for running SkyNet detection.
//
// Before this facade existed every example and service re-assembled the
// same sequence by hand: build_skynet(...) -> (train) ->
// deploy::fold_graph_bn(...) -> quant::QEngine(...) -> net->forward(...) ->
// head.decode(...).  Detector owns that lifecycle:
//
//   Rng rng(42);
//   sky::Detector det({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.35f}, rng);
//   train::train_detector(det.net(), det.head(), dataset, cfg, train_rng);
//   det.fold_bn();                        // optional deployment pass
//   quant::QuantReport rep = det.quantize(       // optional: bit-true int8 path
//       quant::QuantConfig{}.with_bits(9, 11).with_fm_abs_max(8.0f));
//   detect::BBox box = det.detect(image); // single image
//   auto boxes = det.detect_batch(batch); // {n,3,h,w} -> n boxes
//
// detect_batch is bitwise identical to n single detect() calls at any
// SKYNET_THREADS: every kernel processes batch items independently and the
// thread pool never splits a floating-point reduction (docs/KERNELS.md), so
// the serving engine (src/serve) may coalesce requests into arbitrary
// batches without changing any result.
//
// Thread safety: forward passes mutate per-layer caches, so a Detector must
// not run inference from two threads at once.  The serve::Engine funnels
// all inference through one worker for exactly this reason.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "quant/qengine.hpp"
#include "skynet/check_model.hpp"
#include "skynet/skynet_model.hpp"

namespace sky {

/// Which deployment passes have been applied.
enum class DetectorStage { kFloat, kFolded, kQuantized };

[[nodiscard]] const char* detector_stage_name(DetectorStage s);

/// Numeric precision of the active inference datapath.  Surfaced by
/// Detector::precision() and the serve metrics registry so a fleet can tell
/// quantized replicas from float ones.
enum class Precision { kFp32, kInt8 };

[[nodiscard]] const char* precision_name(Precision p);

/// Inference-time failure of the Detector facade — e.g. the head decoder
/// produced no output for the requested image.  Distinct from
/// std::invalid_argument (caller passed a malformed tensor) so services can
/// map the two to different error responses.
class DetectorError : public std::runtime_error {
public:
    explicit DetectorError(const std::string& what) : std::runtime_error(what) {}
};

class Detector {
public:
    /// Build a fresh (untrained) SkyNet of the given configuration.  The
    /// static verifier (verify::check_model) runs on the result; a model
    /// with structural errors throws verify::VerifyError instead of being
    /// handed to inference.
    Detector(const SkyNetConfig& cfg, Rng& rng);
    /// Adopt an already-built (possibly trained) model; also verified.
    explicit Detector(SkyNetModel model);

    /// Re-run the static verifier (see src/verify) at an arbitrary input
    /// shape; quantize() additionally runs verify::check_qmodel.
    [[nodiscard]] verify::Report verify(
        const Shape& input = verify::default_input_shape()) const;

    Detector(Detector&&) = default;
    Detector& operator=(Detector&&) = default;

    // --- Deployment passes (§6.4) -------------------------------------
    /// Fold every BatchNorm into its producing conv (deploy::fold_graph_bn);
    /// returns the number of BN layers folded.  Idempotent.
    int fold_bn();
    /// Compile the bit-true integer engine (quant::QEngine) for the given
    /// scheme; folds BN first if that has not happened yet.  From then on
    /// all inference runs on the integer datapath.  Returns the compilation
    /// report (per-layer plan: qgemm / reference / fp32-fallback).  The
    /// legacy positional spelling `quantize({9, 11, 8.0f})` still compiles:
    /// QuantConfig's leading fields keep that order.
    quant::QuantReport quantize(const quant::QuantConfig& qcfg);
    /// Pack all layer weights into the SIMD GEMM panel layout so the first
    /// forward() pays no packing cost.  Called automatically at construction
    /// and after fold_bn(); harmless to call again (idempotent).
    void prepack();
    [[nodiscard]] DetectorStage stage() const { return stage_; }
    /// Datapath the next forward() will use: kInt8 once quantize() has run.
    [[nodiscard]] Precision precision() const {
        return qengine_ ? Precision::kInt8 : Precision::kFp32;
    }
    /// Arena bytes of the static activation plan — what the quantized
    /// datapath reserves for feature maps (serve exports this as the
    /// serve.activation_plan_bytes capacity gauge).  0 before quantize().
    [[nodiscard]] std::int64_t activation_plan_bytes() const {
        return qengine_ && qengine_->report().has_activation_plan
                   ? qengine_->report().activation_plan.arena_bytes
                   : 0;
    }
    /// Certified |int8 - fp32| bound at the graph output (the shared error
    /// domain quant::certify_error, carried by the QuantReport).  0.0 on
    /// the fp32 datapath (exact by definition), -1.0 when quantized but the
    /// bound could not be established (E002 territory).
    [[nodiscard]] double certified_error_bound() const {
        if (!qengine_) return 0.0;
        const quant::QuantReport& r = qengine_->report();
        return r.error_bound_known ? r.certified_error_bound : -1.0;
    }
    /// The compiled integer engine, nullptr before quantize().  Read-only:
    /// plan figures, alloc_events() and measured_peak_bytes() for tests and
    /// benches.
    [[nodiscard]] const quant::QEngine* qengine() const { return qengine_.get(); }

    // --- Inference -----------------------------------------------------
    /// Raw head map {n, 5*anchors, gh, gw} for {n,3,h,w} input.  Forces
    /// eval mode.
    [[nodiscard]] Tensor forward(const Tensor& images);
    /// Best box of a single image ({1,3,h,w}).
    [[nodiscard]] detect::BBox detect(const Tensor& image);
    /// Best box per batch item; bitwise equal to n detect() calls.
    [[nodiscard]] std::vector<detect::BBox> detect_batch(const Tensor& images);
    /// Multi-object mode: all boxes above `conf_threshold`, NMS-suppressed.
    [[nodiscard]] std::vector<std::vector<detect::Detection>> detect_all(
        const Tensor& images, float conf_threshold = 0.5f, float nms_iou = 0.45f);

    // --- Access for training / passes ----------------------------------
    [[nodiscard]] nn::Graph& net() { return *model_.net; }
    [[nodiscard]] const nn::Graph& net() const { return *model_.net; }
    [[nodiscard]] const detect::YoloHead& head() const { return model_.head; }
    [[nodiscard]] const SkyNetConfig& config() const { return model_.config; }
    [[nodiscard]] SkyNetModel& model() { return model_; }
    [[nodiscard]] const SkyNetModel& model() const { return model_; }

    [[nodiscard]] std::int64_t param_count() const { return model_.param_count(); }
    [[nodiscard]] double param_mb() const { return model_.param_mb(); }

private:
    SkyNetModel model_;
    std::unique_ptr<quant::QEngine> qengine_;
    DetectorStage stage_ = DetectorStage::kFloat;
};

}  // namespace sky
