// Bundles: the hardware-aware building blocks of the bottom-up flow (§4.1).
//
// From the software side a Bundle is a short sequence of conv-style layers
// (each followed by BN + activation); from the hardware side it is the set of
// IPs that must exist on the device.  Stage 1 of the flow enumerates
// candidate Bundles from a component pool, evaluates each one's latency /
// resources on the target devices and its accuracy potential via a fast-
// trained DNN sketch, then keeps the Pareto-optimal ones.
//
// BundleSpec is the declarative description; instantiate() turns it into a
// trainable nn::Sequential for given in/out channel counts.
#pragma once

#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/sequential.hpp"

namespace sky {

/// Conv-style operators a Bundle may contain.  Every conv op is implicitly
/// followed by BatchNorm + activation when instantiated.
enum class BundleOp {
    kDWConv3,  ///< 3x3 depthwise (channel-preserving)
    kPWConv1,  ///< 1x1 pointwise (channel-mapping)
    kConv3,    ///< standard 3x3, pad 1 (channel-mapping)
    kConv1,    ///< standard 1x1 (channel-mapping)
    kConv5,    ///< standard 5x5, pad 2 (channel-mapping)
};

[[nodiscard]] const char* bundle_op_name(BundleOp op);

struct BundleSpec {
    std::string name;
    std::vector<BundleOp> ops;
};

/// The component-pool enumeration used by Stage 1: all bundle candidates
/// considered in our reproduction, including the winning DW3+PW1 pair.
[[nodiscard]] std::vector<BundleSpec> enumerate_bundles();

/// The Bundle SkyNet selected: DW-Conv3 + PW-Conv1 (+BN +activation).
[[nodiscard]] BundleSpec skynet_bundle();

/// Build a trainable instance of `spec` mapping in_ch -> out_ch.
/// Channel-mapping ops transition in->out at the first mapping op; channel-
/// preserving ops run at whatever width is current.
[[nodiscard]] nn::ModulePtr instantiate(const BundleSpec& spec, int in_ch, int out_ch,
                                        nn::Act act, Rng& rng);

}  // namespace sky
