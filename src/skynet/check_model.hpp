// SkyNetModel-level static checks (the M-codes), layered on verify.
//
// check_model() lives in the skynet module — not src/verify — because it
// needs the SkyNetModel type, and the layering manifest
// (tools/skylint/layers.txt) pins verify BELOW skynet: the generic
// verifier must not depend on the concrete model family it checks.
// skylint's include-graph analyzer (L001/L002) enforces that this stays
// true; the function keeps the sky::verify namespace so call sites read
// uniformly with check_graph / check_qmodel.
//
// Diagnostic catalog (full table in docs/STATIC_ANALYSIS.md):
//   M001 error  SkyNetModel feature tap node invalid
//   M002 warn   feature tap channel metadata disagrees with the graph
//   M003 error  SkyNetModel has no network
#pragma once

#include "skynet/skynet_model.hpp"
#include "verify/check_graph.hpp"

namespace sky::verify {

/// check_graph() plus the SkyNetModel-level invariants (feature tap node,
/// tap channel metadata).  This is what sky::Detector runs on build.
[[nodiscard]] Report check_model(const SkyNetModel& model, const Shape& input);

}  // namespace sky::verify
