#include "deploy/report.hpp"

#include <stdexcept>

namespace sky::deploy {

ModelSummary summarize(const nn::Module& net, const Shape& input,
                       const hwsim::DeviceProfile& device) {
    std::vector<nn::LayerInfo> layers;
    net.enumerate(input, layers);
    ModelSummary s;
    // Roofline knee: MACs per byte at which compute time equals memory time.
    const double knee =
        device.peak_gmacs * 1e9 / (device.mem_bw_gbps * 1e9);
    for (nn::LayerInfo& li : layers) {
        LayerRow row;
        const double bytes =
            4.0 * (static_cast<double>(li.in.count()) +
                   static_cast<double>(li.out.count()) + static_cast<double>(li.params));
        row.intensity = bytes > 0.0 ? static_cast<double>(li.macs) / bytes : 0.0;
        row.compute_bound = row.intensity > knee;
        s.total_macs += li.macs;
        s.total_params += li.params;
        row.info = std::move(li);
        s.rows.push_back(std::move(row));
    }
    return s;
}

ModelSummary summarize(const nn::Graph& net, const Shape& input,
                       const hwsim::DeviceProfile& device) {
    ModelSummary s = summarize(static_cast<const nn::Module&>(net), input, device);
    try {
        s.activation_plan = plan_activations(net, input);
        s.has_activation_plan = true;
    } catch (const std::invalid_argument&) {
        // Malformed graph: verify::check_graph carries the diagnostics; the
        // summary simply omits the plan.
    }
    return s;
}

void print_summary(const ModelSummary& summary, const char* title, std::FILE* out) {
    std::fprintf(out, "=== %s ===\n", title);
    std::fprintf(out, "%-28s %-8s %-16s %10s %10s %8s %5s\n", "layer", "kind", "output",
                 "MACs", "params", "MAC/B", "bound");
    for (const LayerRow& r : summary.rows) {
        std::fprintf(out, "%-28.28s %-8s %-16s %10lld %10lld %8.2f %5s\n",
                     r.info.name.c_str(), r.info.kind.c_str(), r.info.out.str().c_str(),
                     static_cast<long long>(r.info.macs),
                     static_cast<long long>(r.info.params), r.intensity,
                     r.info.macs == 0 ? "-" : (r.compute_bound ? "comp" : "mem"));
    }
    std::fprintf(out, "total: %.3f GMACs, %.2f MB params (%lld layers)\n",
                 summary.gmacs(), summary.param_mb(),
                 static_cast<long long>(summary.rows.size()));
    if (summary.has_activation_plan)
        std::fprintf(out, "activations: %s\n",
                     summary.activation_plan.summary().c_str());
}

}  // namespace sky::deploy
