#include "deploy/memory_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "deploy/fold_bn.hpp"

namespace sky::deploy {
namespace {

std::string mb(std::int64_t bytes) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f MB", static_cast<double>(bytes) / 1e6);
    return buf;
}

}  // namespace

std::string MemoryPlan::summary() const {
    return "peak " + mb(peak_bytes) + ", arena " + mb(arena_bytes) + " in " +
           std::to_string(slots.size()) + " slots (no-reuse " + mb(total_bytes) +
           ")";
}

MemoryPlan plan_tensors(const std::vector<PlanTensor>& program, int output_node) {
    const int n = static_cast<int>(program.size());
    if (output_node < 0 || output_node >= n)
        throw std::invalid_argument("plan_tensors: output node out of range");

    MemoryPlan plan;
    plan.tensors.resize(program.size());

    // --- Liveness: last reader per node; the output survives the pass. ---
    for (int i = 0; i < n; ++i) {
        plan.tensors[static_cast<std::size_t>(i)].def = i;
        plan.tensors[static_cast<std::size_t>(i)].last = i;
        plan.tensors[static_cast<std::size_t>(i)].bytes =
            program[static_cast<std::size_t>(i)].bytes;
    }
    for (int i = 0; i < n; ++i) {
        for (const int in : program[static_cast<std::size_t>(i)].inputs) {
            if (in < 0 || in >= i)
                throw std::invalid_argument(
                    "plan_tensors: node " + std::to_string(i) +
                    " reads node " + std::to_string(in) +
                    " which is not an earlier node");
            if (program[static_cast<std::size_t>(in)].bytes == 0)
                throw std::invalid_argument(
                    "plan_tensors: node " + std::to_string(i) +
                    " reads elided node " + std::to_string(in) +
                    " (rewire consumers past elided nodes first)");
            plan.tensors[static_cast<std::size_t>(in)].last = i;
        }
    }
    plan.tensors[static_cast<std::size_t>(output_node)].last = n;

    // --- Exact peak: walk the steps, freeing after each tensor's last
    // reader has run.  At step i the live set is every tensor defined at or
    // before i whose last use is at or after i. ---------------------------
    std::vector<std::vector<int>> dies_after(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i < n; ++i) {
        const TensorPlan& t = plan.tensors[static_cast<std::size_t>(i)];
        if (t.bytes == 0) continue;
        dies_after[static_cast<std::size_t>(std::min(t.last, n))].push_back(i);
    }
    std::int64_t live = 0;
    for (int i = 0; i < n; ++i) {
        const TensorPlan& t = plan.tensors[static_cast<std::size_t>(i)];
        plan.total_bytes += t.bytes;
        live += t.bytes;
        plan.peak_bytes = std::max(plan.peak_bytes, live);
        for (const int dead : dies_after[static_cast<std::size_t>(i)])
            live -= plan.tensors[static_cast<std::size_t>(dead)].bytes;
    }

    // --- Arena slots: greedy best-fit over the interval graph.  Tensors
    // whose intervals overlap can never share (interference); among the
    // free slots, pick the smallest one that already fits, else the largest
    // (grow it the least).  Deterministic: node order is the tie-break. ---
    std::vector<int> free_slots;
    for (int i = 0; i < n; ++i) {
        TensorPlan& t = plan.tensors[static_cast<std::size_t>(i)];
        if (t.bytes == 0) continue;
        int best = -1;
        for (const int s : free_slots) {
            const std::int64_t cap = plan.slots[static_cast<std::size_t>(s)].bytes;
            if (best == -1) {
                best = s;
                continue;
            }
            const std::int64_t bcap = plan.slots[static_cast<std::size_t>(best)].bytes;
            const bool fits = cap >= t.bytes, best_fits = bcap >= t.bytes;
            if (fits != best_fits ? fits : (fits ? cap < bcap : cap > bcap))
                best = s;
        }
        if (best == -1) {
            best = static_cast<int>(plan.slots.size());
            plan.slots.emplace_back();
        } else {
            free_slots.erase(std::find(free_slots.begin(), free_slots.end(), best));
        }
        PlanSlot& slot = plan.slots[static_cast<std::size_t>(best)];
        slot.bytes = std::max(slot.bytes, t.bytes);
        slot.tenants.push_back(i);
        t.slot = best;
        for (const int dead : dies_after[static_cast<std::size_t>(i)])
            free_slots.push_back(plan.tensors[static_cast<std::size_t>(dead)].slot);
    }
    for (const PlanSlot& s : plan.slots) plan.arena_bytes += s.bytes;
    return plan;
}

MemoryPlan plan_activations(const nn::Graph& g, const Shape& input,
                            std::int64_t elem_bytes) {
    const std::size_t n = g.node_count();
    std::vector<Shape> shapes(n);
    std::vector<int> resolved(n);  // node id with identity chains collapsed
    std::vector<PlanTensor> program(n);
    for (std::size_t i = 0; i < n; ++i) {
        resolved[i] = static_cast<int>(i);
        std::vector<int> ins;
        for (const int in : g.node_inputs(i)) {
            if (in < 0 || static_cast<std::size_t>(in) >= i)
                throw std::invalid_argument(
                    "plan_activations: malformed edge (run verify::check_graph)");
            ins.push_back(resolved[static_cast<std::size_t>(in)]);
        }
        switch (g.node_kind(i)) {
            case nn::Graph::NodeKind::kInput:
                shapes[i] = input;
                break;
            case nn::Graph::NodeKind::kConcat: {
                Shape s = shapes[static_cast<std::size_t>(ins.at(0))];
                s.c = 0;
                for (const int in : ins) s.c += shapes[static_cast<std::size_t>(in)].c;
                shapes[i] = s;
                break;
            }
            case nn::Graph::NodeKind::kAdd:
                shapes[i] = shapes[static_cast<std::size_t>(ins.at(0))];
                break;
            case nn::Graph::NodeKind::kModule: {
                const nn::Module* m = g.node_module(i);
                if (m == nullptr || ins.empty())
                    throw std::invalid_argument(
                        "plan_activations: module node without a module/input");
                const Shape in_shape = shapes[static_cast<std::size_t>(ins[0])];
                if (dynamic_cast<const deploy::Identity*>(m) != nullptr) {
                    // Elided on every execution path: no buffer, consumers
                    // rewire straight to the producer.
                    shapes[i] = in_shape;
                    resolved[i] = ins[0];
                    program[i].bytes = 0;
                    continue;
                }
                shapes[i] = m->out_shape(in_shape);
                break;
            }
        }
        if (shapes[i].count() <= 0)
            throw std::invalid_argument(
                "plan_activations: node " + std::to_string(i) +
                " has a degenerate shape (run verify::check_graph)");
        program[i].inputs = std::move(ins);
        program[i].bytes = shapes[i].count() * elem_bytes;
    }
    return plan_tensors(program, resolved[static_cast<std::size_t>(g.output_node())]);
}

}  // namespace sky::deploy
