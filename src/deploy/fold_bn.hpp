// Deployment-time batch-norm folding.
//
// Every DAC-SDC entry (Table 1) ships its network with BN folded into the
// preceding convolution: y = BN(conv(x)) becomes a single conv with weights
// W' = scale * W and bias b' = scale * b + shift, where (scale, shift) is
// BatchNorm2d::fused_affine().  Folding removes the BN memory traffic and
// is a prerequisite for the fixed-point datapath (§6.4.1).
//
// fold_batch_norms() walks a layer sequence described by `enumerate()` and
// produces an inference-only Sequential with the BN layers absorbed.  It
// handles the patterns this code base emits: {Conv2d|DWConv3|PWConv1}
// followed (immediately) by BatchNorm2d.  Graph-structured networks fold
// per branch via their Sequential sub-chains.
#pragma once

#include "nn/batchnorm.hpp"
#include "nn/graph.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pwconv.hpp"
#include "nn/sequential.hpp"

namespace sky::deploy {

/// Fold `bn` into a generic convolution weight [out_ch, *, k, k] and bias.
/// The weight's leading dimension must equal bn's channel count.
void fold_into_conv(Tensor& weight, Tensor& bias, const nn::BatchNorm2d& bn);

/// Rebuild `seq` with every (conv-like, BN) pair fused; other layers are
/// moved through unchanged, nested Sequentials fold recursively.  The input
/// Sequential is consumed.  The number of folded BN layers is returned via
/// `folded` (optional).
[[nodiscard]] std::unique_ptr<nn::Sequential> fold_batch_norms(
    std::unique_ptr<nn::Sequential> seq, int* folded = nullptr);

/// Fold BN nodes of a Graph into their producing conv nodes (the SkyNet
/// models are Graphs).  A BN folds when its single input is a Conv2d /
/// PWConv1 / DWConv3 module node consumed only by that BN; the BN node is
/// replaced by an Identity (or a ChannelBias for bias-less depthwise
/// convs).  Returns the number of BN layers folded.
int fold_graph_bn(nn::Graph& g);

/// Pass-through module left behind where a folded layer used to be.
class Identity : public nn::Module {
public:
    Tensor forward(const Tensor& x) override { return x; }
    Tensor backward(const Tensor& grad_out) override { return grad_out; }
    [[nodiscard]] std::string name() const override { return "Identity"; }
    [[nodiscard]] std::string kind() const override { return "identity"; }
    [[nodiscard]] Shape out_shape(const Shape& in) const override { return in; }
};

/// Per-channel constant bias — what remains of a BN folded into a bias-less
/// depthwise convolution.
class ChannelBias : public nn::Module {
public:
    explicit ChannelBias(std::vector<float> bias);

    Tensor forward(const Tensor& x) override;
    Tensor backward(const Tensor& grad_out) override;

    [[nodiscard]] std::string name() const override { return "ChannelBias"; }
    [[nodiscard]] std::string kind() const override { return "bias"; }
    [[nodiscard]] Shape out_shape(const Shape& in) const override { return in; }
    [[nodiscard]] const std::vector<float>& values() const { return bias_; }

private:
    std::vector<float> bias_;
};

}  // namespace sky::deploy
