#include "deploy/fold_bn.hpp"

#include <stdexcept>

namespace sky::deploy {

void fold_into_conv(Tensor& weight, Tensor& bias, const nn::BatchNorm2d& bn) {
    std::vector<float> scale, shift;
    bn.fused_affine(scale, shift);
    const Shape ws = weight.shape();
    if (ws.n != static_cast<int>(scale.size()))
        throw std::invalid_argument("fold_into_conv: channel mismatch");
    const std::int64_t per_out = ws.per_item();
    for (int oc = 0; oc < ws.n; ++oc) {
        float* wp = weight.data() + oc * per_out;
        const float g = scale[static_cast<std::size_t>(oc)];
        for (std::int64_t i = 0; i < per_out; ++i) wp[i] *= g;
        bias[oc] = g * bias[oc] + shift[static_cast<std::size_t>(oc)];
    }
}

std::unique_ptr<nn::Sequential> fold_batch_norms(std::unique_ptr<nn::Sequential> seq,
                                                 int* folded) {
    auto modules = seq->take_modules();
    auto out = std::make_unique<nn::Sequential>();
    int count = 0;
    for (std::size_t i = 0; i < modules.size(); ++i) {
        nn::Module* next = i + 1 < modules.size() ? modules[i + 1].get() : nullptr;
        auto* bn = dynamic_cast<nn::BatchNorm2d*>(next);
        bool fused = false;
        if (bn != nullptr) {
            if (auto* conv = dynamic_cast<nn::Conv2d*>(modules[i].get())) {
                conv->enable_bias();
                fold_into_conv(conv->weight(), conv->bias(), *bn);
                fused = true;
            } else if (auto* pw = dynamic_cast<nn::PWConv1*>(modules[i].get())) {
                pw->enable_bias();
                fold_into_conv(pw->weight(), pw->bias(), *bn);
                fused = true;
            } else if (auto* dw = dynamic_cast<nn::DWConv3*>(modules[i].get())) {
                // Depthwise has no bias: scale the filters, keep the shift
                // as a per-channel bias layer in place of the BN.
                std::vector<float> scale, shift;
                bn->fused_affine(scale, shift);
                Tensor& w = dw->weight();
                for (int c = 0; c < dw->channels(); ++c) {
                    float* wp = w.plane(c, 0);
                    for (int t = 0; t < 9; ++t)
                        wp[t] *= scale[static_cast<std::size_t>(c)];
                }
                out->add(std::move(modules[i]));
                out->emplace<ChannelBias>(shift);
                ++count;
                ++i;  // skip the BN
                continue;
            }
        }
        if (fused) {
            out->add(std::move(modules[i]));
            ++count;
            ++i;  // skip the BN
        } else if (auto* inner = dynamic_cast<nn::Sequential*>(modules[i].get())) {
            // Recurse into nested chains (bundles are Sequentials).
            auto owned = std::unique_ptr<nn::Sequential>(inner);
            modules[i].release();
            int inner_count = 0;
            out->add(fold_batch_norms(std::move(owned), &inner_count));
            count += inner_count;
        } else {
            out->add(std::move(modules[i]));
        }
    }
    if (folded != nullptr) *folded = count;
    return out;
}

int fold_graph_bn(nn::Graph& g) {
    // Consumer counts: how many nodes read each node's output.
    std::vector<int> consumers(g.node_count(), 0);
    for (std::size_t i = 0; i < g.node_count(); ++i)
        for (int in : g.node_inputs(i)) ++consumers[static_cast<std::size_t>(in)];

    int count = 0;
    for (std::size_t i = 0; i < g.node_count(); ++i) {
        auto* bn = dynamic_cast<nn::BatchNorm2d*>(g.node_module(i));
        if (bn == nullptr) continue;
        const auto& ins = g.node_inputs(i);
        if (ins.size() != 1) continue;
        const std::size_t j = static_cast<std::size_t>(ins[0]);
        if (consumers[j] != 1) continue;  // the conv output is used elsewhere
        if (auto* conv = dynamic_cast<nn::Conv2d*>(g.node_module(j))) {
            conv->enable_bias();
            fold_into_conv(conv->weight(), conv->bias(), *bn);
            g.replace_module(i, std::make_unique<Identity>());
            ++count;
        } else if (auto* pw = dynamic_cast<nn::PWConv1*>(g.node_module(j))) {
            pw->enable_bias();
            fold_into_conv(pw->weight(), pw->bias(), *bn);
            g.replace_module(i, std::make_unique<Identity>());
            ++count;
        } else if (auto* dw = dynamic_cast<nn::DWConv3*>(g.node_module(j))) {
            std::vector<float> scale, shift;
            bn->fused_affine(scale, shift);
            Tensor& w = dw->weight();
            for (int c = 0; c < dw->channels(); ++c) {
                float* wp = w.plane(c, 0);
                for (int t = 0; t < 9; ++t) wp[t] *= scale[static_cast<std::size_t>(c)];
            }
            g.replace_module(i, std::make_unique<ChannelBias>(shift));
            ++count;
        }
    }
    return count;
}

ChannelBias::ChannelBias(std::vector<float> bias) : bias_(std::move(bias)) {}

Tensor ChannelBias::forward(const Tensor& x) {
    const Shape s = x.shape();
    if (s.c != static_cast<int>(bias_.size()))
        throw std::invalid_argument("ChannelBias: channel mismatch");
    Tensor y = x;
    const std::int64_t plane = static_cast<std::int64_t>(s.h) * s.w;
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c) {
            float* p = y.plane(n, c);
            const float b = bias_[static_cast<std::size_t>(c)];
            for (std::int64_t i = 0; i < plane; ++i) p[i] += b;
        }
    return y;
}

Tensor ChannelBias::backward(const Tensor& grad_out) { return grad_out; }

}  // namespace sky::deploy
