// Model summary and roofline reporting.
//
// summarize() walks a network's leaf layers at a given input shape and
// returns per-layer rows (shape, MACs, params, arithmetic intensity);
// print_summary() renders the familiar model-summary table.  The roofline
// columns tell a deployment engineer which layers are compute- vs
// memory-bound on a given device — the same reasoning the paper's Bundle
// evaluation performs.
#pragma once

#include <cstdio>

#include "deploy/memory_plan.hpp"
#include "hwsim/device.hpp"
#include "nn/module.hpp"

namespace sky::deploy {

struct LayerRow {
    nn::LayerInfo info;
    double intensity = 0.0;      ///< MACs per byte moved (fp32 traffic)
    bool compute_bound = false;  ///< vs the given device's roofline knee
};

struct ModelSummary {
    std::vector<LayerRow> rows;
    std::int64_t total_macs = 0;
    std::int64_t total_params = 0;
    /// Static activation memory plan (deploy::plan_activations) — filled by
    /// the Graph overload of summarize(), where liveness is known.
    MemoryPlan activation_plan{};
    bool has_activation_plan = false;

    [[nodiscard]] double gmacs() const { return static_cast<double>(total_macs) / 1e9; }
    [[nodiscard]] double param_mb() const {
        return static_cast<double>(total_params) * 4.0 / 1e6;
    }
};

[[nodiscard]] ModelSummary summarize(const nn::Module& net, const Shape& input,
                                     const hwsim::DeviceProfile& device);

/// Graph-aware summary: the module walk above plus the static activation
/// memory plan (peak / arena / no-reuse bytes from tensor liveness).
[[nodiscard]] ModelSummary summarize(const nn::Graph& net, const Shape& input,
                                     const hwsim::DeviceProfile& device);

/// Print the summary table to `out` (defaults to stdout).
void print_summary(const ModelSummary& summary, const char* title,
                   std::FILE* out = stdout);

}  // namespace sky::deploy
