// Static activation-memory planning via tensor liveness analysis.
//
// A topologically-ordered graph executes one node per step; a node's output
// buffer must exist from its defining step through the last step that reads
// it (the graph output lives to the end of the pass).  From those live
// intervals this pass derives, without running anything:
//
//   * peak_bytes   — the exact maximum of live activation bytes over all
//                    program points: the smallest memory any executor that
//                    frees buffers after their last use can run in,
//   * an arena slot assignment — interference-aware reuse where tensors
//                    with disjoint live intervals share one growable slot
//                    (greedy best-fit on the interval graph), and
//   * arena_bytes  — the sum of slot capacities: what a slot-backed
//                    executor actually reserves (>= peak_bytes, typically
//                    far below the no-reuse total_bytes).
//
// quant::QEngine executes its integer pass out of exactly this plan
// (allocation-free at steady state — bench_serve gauges it), the figures
// surface in quant::QuantReport / tools/skyanalyze, and serve::Engine
// exports the peak as the `serve.activation_plan_bytes` capacity-planning
// gauge (ROADMAP's multi-replica serving items need per-replica numbers).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace sky::deploy {

/// One tensor of the abstract program handed to plan_tensors(): who it
/// reads, and how many bytes its output occupies.  bytes == 0 marks an
/// elided node (identity rewired past, fused activation): it allocates
/// nothing and must have no consumers.
struct PlanTensor {
    std::vector<int> inputs;
    std::int64_t bytes = 0;
};

/// One arena slot of the plan: capacity (its largest tenant) and the nodes
/// that reside in it over the program, in residency order.
struct PlanSlot {
    std::int64_t bytes = 0;
    std::vector<int> tenants;
};

/// Where one tensor lives: its slot (-1 for elided tensors), its size, and
/// its live interval [def, last] in node order (last == node count for the
/// program output, which survives the pass).
struct TensorPlan {
    int slot = -1;
    std::int64_t bytes = 0;
    int def = 0;
    int last = 0;
};

struct MemoryPlan {
    std::vector<TensorPlan> tensors;  ///< one per node, in node order
    std::vector<PlanSlot> slots;
    std::int64_t peak_bytes = 0;   ///< exact max live bytes at any step
    std::int64_t arena_bytes = 0;  ///< sum of slot capacities
    std::int64_t total_bytes = 0;  ///< no-reuse sum of all tensor bytes

    /// "peak 1.4 MB, arena 1.6 MB in 4 slots (no-reuse 9.8 MB)".
    [[nodiscard]] std::string summary() const;
};

/// Plan an abstract program (any executor that runs nodes in order and
/// frees each buffer after its last reader — quant::QEngine's shape).
/// `output_node` is kept live through the end of the pass.  Throws
/// std::invalid_argument on malformed edges or a consumed elided node.
[[nodiscard]] MemoryPlan plan_tensors(const std::vector<PlanTensor>& program,
                                      int output_node);

/// Plan the activations of `g` at `input`, `elem_bytes` per element
/// (4 for both fp32 and the engine's int32 grid values).  deploy::Identity
/// nodes are elided exactly as every execution path elides them.  Throws
/// std::invalid_argument when shape inference fails — run
/// verify::check_graph first for diagnostics instead of an exception.
[[nodiscard]] MemoryPlan plan_activations(const nn::Graph& g, const Shape& input,
                                          std::int64_t elem_bytes = 4);

}  // namespace sky::deploy
