#include "tracking/siamese.hpp"

#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/pwconv.hpp"
#include "nn/sequential.hpp"

namespace sky::tracking {

Tensor depthwise_xcorr(const Tensor& search, const Tensor& kernel) {
    const Shape ss = search.shape();
    const Shape ks = kernel.shape();
    if (ss.n != ks.n || ss.c != ks.c)
        throw std::invalid_argument("depthwise_xcorr: shape mismatch " + ss.str() + " vs " +
                                    ks.str());
    const int oh = ss.h - ks.h + 1;
    const int ow = ss.w - ks.w + 1;
    if (oh <= 0 || ow <= 0)
        throw std::invalid_argument("depthwise_xcorr: kernel larger than search");
    Tensor resp({ss.n, ss.c, oh, ow});
    for (int n = 0; n < ss.n; ++n) {
        for (int c = 0; c < ss.c; ++c) {
            const float* sp = search.plane(n, c);
            const float* kp = kernel.plane(n, c);
            float* rp = resp.plane(n, c);
            for (int y = 0; y < oh; ++y) {
                for (int x = 0; x < ow; ++x) {
                    double acc = 0.0;
                    for (int ky = 0; ky < ks.h; ++ky) {
                        const float* srow =
                            sp + static_cast<std::int64_t>(y + ky) * ss.w + x;
                        const float* krow = kp + static_cast<std::int64_t>(ky) * ks.w;
                        for (int kx = 0; kx < ks.w; ++kx)
                            acc += static_cast<double>(srow[kx]) * krow[kx];
                    }
                    rp[static_cast<std::int64_t>(y) * ow + x] = static_cast<float>(acc);
                }
            }
        }
    }
    return resp;
}

void depthwise_xcorr_backward(const Tensor& search, const Tensor& kernel,
                              const Tensor& grad_resp, Tensor& grad_search,
                              Tensor& grad_kernel) {
    const Shape ss = search.shape();
    const Shape ks = kernel.shape();
    const Shape rs = grad_resp.shape();
    grad_search = Tensor(ss);
    grad_kernel = Tensor(ks);
    for (int n = 0; n < ss.n; ++n) {
        for (int c = 0; c < ss.c; ++c) {
            const float* sp = search.plane(n, c);
            const float* kp = kernel.plane(n, c);
            const float* gp = grad_resp.plane(n, c);
            float* gsp = grad_search.plane(n, c);
            float* gkp = grad_kernel.plane(n, c);
            for (int y = 0; y < rs.h; ++y) {
                for (int x = 0; x < rs.w; ++x) {
                    const float g = gp[static_cast<std::int64_t>(y) * rs.w + x];
                    if (g == 0.0f) continue;
                    for (int ky = 0; ky < ks.h; ++ky) {
                        const float* srow =
                            sp + static_cast<std::int64_t>(y + ky) * ss.w + x;
                        float* gsrow = gsp + static_cast<std::int64_t>(y + ky) * ss.w + x;
                        const float* krow = kp + static_cast<std::int64_t>(ky) * ks.w;
                        float* gkrow = gkp + static_cast<std::int64_t>(ky) * ks.w;
                        for (int kx = 0; kx < ks.w; ++kx) {
                            gsrow[kx] += g * krow[kx];
                            gkrow[kx] += g * srow[kx];
                        }
                    }
                }
            }
        }
    }
}

Tensor center_crop(const Tensor& feat, int kh, int kw) {
    const Shape s = feat.shape();
    const int oy = (s.h - kh) / 2;
    const int ox = (s.w - kw) / 2;
    if (oy < 0 || ox < 0) throw std::invalid_argument("center_crop: crop larger than map");
    Tensor out({s.n, s.c, kh, kw});
    for (int n = 0; n < s.n; ++n)
        for (int c = 0; c < s.c; ++c) {
            const float* sp = feat.plane(n, c);
            float* op = out.plane(n, c);
            for (int y = 0; y < kh; ++y)
                for (int x = 0; x < kw; ++x)
                    op[static_cast<std::int64_t>(y) * kw + x] =
                        sp[static_cast<std::int64_t>(y + oy) * s.w + (x + ox)];
        }
    return out;
}

void scatter_center_grad(const Tensor& grad_crop, Tensor& grad_feat) {
    const Shape cs = grad_crop.shape();
    const Shape fs = grad_feat.shape();
    const int oy = (fs.h - cs.h) / 2;
    const int ox = (fs.w - cs.w) / 2;
    for (int n = 0; n < cs.n; ++n)
        for (int c = 0; c < cs.c; ++c) {
            const float* gp = grad_crop.plane(n, c);
            float* fp = grad_feat.plane(n, c);
            for (int y = 0; y < cs.h; ++y)
                for (int x = 0; x < cs.w; ++x)
                    fp[static_cast<std::int64_t>(y + oy) * fs.w + (x + ox)] +=
                        gp[static_cast<std::int64_t>(y) * cs.w + x];
        }
}

SiameseEmbed::SiameseEmbed(nn::ModulePtr backbone, int feature_channels, int embed_dim,
                           Rng& rng)
    : embed_dim_(embed_dim) {
    auto seq = std::make_unique<nn::Sequential>();
    seq->add(std::move(backbone));
    seq->emplace<nn::PWConv1>(feature_channels, embed_dim, /*bias=*/false, rng);
    seq->emplace<nn::BatchNorm2d>(embed_dim);
    net_ = std::move(seq);
}

Tensor SiameseEmbed::forward(const Tensor& crops) { return net_->forward(crops); }

Tensor SiameseEmbed::backward(const Tensor& grad) { return net_->backward(grad); }

void SiameseEmbed::collect_params(std::vector<nn::ParamRef>& out) {
    net_->collect_params(out);
}

void SiameseEmbed::set_training(bool training) { net_->set_training(training); }

std::int64_t SiameseEmbed::param_count() const { return net_->param_count(); }

}  // namespace sky::tracking
