#include "tracking/tracker.hpp"

#include <algorithm>
#include <cmath>

#include "data/augment.hpp"

namespace sky::tracking {
namespace {

/// Copy items [start, start+count) of a batched tensor.
Tensor slice_batch(const Tensor& t, int start, int count) {
    const Shape s = t.shape();
    Tensor out({count, s.c, s.h, s.w});
    std::copy_n(t.plane(start, 0), out.size(), out.data());
    return out;
}

void paste_batch(Tensor& dst, const Tensor& src, int start) {
    std::copy_n(src.data(), src.size(), dst.plane(start, 0));
}

float clampf(float v, float lo, float hi) { return std::clamp(v, lo, hi); }

}  // namespace

SiamTracker::SiamTracker(SiameseEmbed embed, TrackerConfig cfg, Rng& rng)
    : embed_(std::move(embed)),
      rpn_(embed_.embed_dim(), rng),
      mask_(embed_.embed_dim(), cfg.mask_size, rng),
      cfg_(cfg),
      jitter_(rng.next_u64()) {}

SiamTracker::CropGeom SiamTracker::crop_window(const detect::BBox& box,
                                               float context) const {
    // A square window (in pixel space) of side context * max box dimension.
    // Frames are handled in normalised coordinates; the window fractions
    // differ per axis when the frame is not square.
    const float side = context * std::max(box.w, box.h);
    return {box.cx - side * 0.5f, box.cy - side * 0.5f, box.cx + side * 0.5f,
            box.cy + side * 0.5f};
}

Tensor SiamTracker::make_crop(const Tensor& frame, const CropGeom& g) const {
    return data::crop_resize(frame, g.x1, g.y1, g.x2, g.y2, cfg_.crop_size, cfg_.crop_size);
}

std::vector<nn::ParamRef> SiamTracker::params() {
    std::vector<nn::ParamRef> p;
    embed_.collect_params(p);
    rpn_.collect_params(p);
    if (cfg_.use_mask) mask_.collect_params(p);
    return p;
}

void SiamTracker::set_training(bool training) {
    embed_.set_training(training);
    rpn_.set_training(training);
    mask_.set_training(training);
}

std::int64_t SiamTracker::param_count() const {
    return embed_.param_count() + rpn_.param_count() +
           (cfg_.use_mask ? mask_.param_count() : 0);
}

float SiamTracker::train_step(const std::vector<const data::TrackingFrame*>& exemplars,
                              const std::vector<const data::TrackingFrame*>& searches,
                              nn::SGD& optimizer) {
    const int n = static_cast<int>(exemplars.size());
    const int S = cfg_.crop_size;
    const int f = S / 8;                       // feature cells
    const int k = cfg_.kernel_cells;           // kernel cells
    const int r = f - k + 1;                   // response cells
    Tensor batch({2 * n, 3, S, S});

    std::vector<CropGeom> search_geom(static_cast<std::size_t>(n));
    std::vector<RpnTarget> targets(static_cast<std::size_t>(n));
    std::vector<Tensor> gt_masks;
    std::vector<std::pair<int, int>> pos_yx(static_cast<std::size_t>(n));

    for (int i = 0; i < n; ++i) {
        const detect::BBox& eb = exemplars[static_cast<std::size_t>(i)]->box;
        paste_batch(batch,
                    make_crop(exemplars[static_cast<std::size_t>(i)]->image,
                              crop_window(eb, cfg_.exemplar_context)),
                    i);
        // Jitter the search window so the target is not always centred.
        const detect::BBox& gb = searches[static_cast<std::size_t>(i)]->box;
        detect::BBox jb = gb;
        jb.cx += static_cast<float>(jitter_.uniform(-0.2, 0.2)) * jb.w;
        jb.cy += static_cast<float>(jitter_.uniform(-0.2, 0.2)) * jb.h;
        jb.w *= std::exp(static_cast<float>(jitter_.uniform(-0.15, 0.15)));
        jb.h *= std::exp(static_cast<float>(jitter_.uniform(-0.15, 0.15)));
        const CropGeom sg = crop_window(jb, cfg_.search_context);
        search_geom[static_cast<std::size_t>(i)] = sg;
        paste_batch(batch,
                    make_crop(searches[static_cast<std::size_t>(i)]->image, sg), n + i);

        // Ground truth in search-crop coordinates.
        const float gw = gb.w / (sg.x2 - sg.x1);
        const float gh = gb.h / (sg.y2 - sg.y1);
        const float gx = (gb.cx - sg.x1) / (sg.x2 - sg.x1);
        const float gy = (gb.cy - sg.y1) / (sg.y2 - sg.y1);
        // Anchor = jittered window's nominal target size in crop coords.
        const float aw = jb.w / (sg.x2 - sg.x1);
        const float ah = jb.h / (sg.y2 - sg.y1);
        RpnTarget t;
        const float fx = gx * static_cast<float>(f) - static_cast<float>(k) * 0.5f;
        const float fy = gy * static_cast<float>(f) - static_cast<float>(k) * 0.5f;
        t.pos_x = std::clamp(static_cast<int>(std::lround(fx)), 0, r - 1);
        t.pos_y = std::clamp(static_cast<int>(std::lround(fy)), 0, r - 1);
        t.dx = clampf(fx - static_cast<float>(t.pos_x), -0.5f, 0.5f);
        t.dy = clampf(fy - static_cast<float>(t.pos_y), -0.5f, 0.5f);
        t.dw = clampf(std::log(std::max(gw, 1e-4f) / std::max(aw, 1e-4f)), -1.0f, 1.0f);
        t.dh = clampf(std::log(std::max(gh, 1e-4f) / std::max(ah, 1e-4f)), -1.0f, 1.0f);
        targets[static_cast<std::size_t>(i)] = t;
        pos_yx[static_cast<std::size_t>(i)] = {t.pos_y, t.pos_x};

        if (cfg_.use_mask) {
            // Ground-truth ellipse rasterised into the positive location's
            // receptive window.
            const int M = cfg_.mask_size;
            Tensor gm({1, 1, M, M});
            const float win = static_cast<float>(k) / static_cast<float>(f);
            const float ox = (static_cast<float>(t.pos_x)) / static_cast<float>(f);
            const float oy = (static_cast<float>(t.pos_y)) / static_cast<float>(f);
            for (int my = 0; my < M; ++my)
                for (int mx = 0; mx < M; ++mx) {
                    const float u = ox + (static_cast<float>(mx) + 0.5f) /
                                             static_cast<float>(M) * win;
                    const float v = oy + (static_cast<float>(my) + 0.5f) /
                                             static_cast<float>(M) * win;
                    const float du = (u - gx) / std::max(gw * 0.5f, 1e-4f);
                    const float dv = (v - gy) / std::max(gh * 0.5f, 1e-4f);
                    gm.at(0, 0, my, mx) = (du * du + dv * dv) <= 1.0f ? 1.0f : 0.0f;
                }
            gt_masks.push_back(std::move(gm));
        }
    }

    set_training(true);
    Tensor feats = embed_.forward(batch);
    Tensor ex_feat = slice_batch(feats, 0, n);
    Tensor se_feat = slice_batch(feats, n, n);
    Tensor kernel = center_crop(ex_feat, k, k);
    Tensor resp = depthwise_xcorr(se_feat, kernel);

    RpnHead::Output out = rpn_.forward(resp);
    Tensor grad_cls, grad_reg;
    float loss = rpn_.loss(out, targets, grad_cls, grad_reg);
    Tensor grad_resp = rpn_.backward(grad_cls, grad_reg);
    if (cfg_.use_mask) {
        Tensor mask_logits = mask_.forward(resp);
        Tensor grad_mask;
        loss += mask_.loss(mask_logits, gt_masks, pos_yx, grad_mask);
        grad_resp.axpy(1.0f, mask_.backward(grad_mask));
    }

    Tensor grad_search, grad_kernel;
    depthwise_xcorr_backward(se_feat, kernel, grad_resp, grad_search, grad_kernel);
    Tensor grad_ex(ex_feat.shape());
    scatter_center_grad(grad_kernel, grad_ex);

    Tensor grad_feats(feats.shape());
    paste_batch(grad_feats, grad_ex, 0);
    paste_batch(grad_feats, grad_search, n);

    optimizer.zero_grad();
    embed_.backward(grad_feats);
    optimizer.step();
    return loss;
}

std::vector<detect::BBox> SiamTracker::track(const data::TrackingSequence& seq) {
    std::vector<detect::BBox> out;
    if (seq.empty()) return out;
    set_training(false);
    const int S = cfg_.crop_size;
    const int f = S / 8;
    const int k = cfg_.kernel_cells;

    detect::BBox box = seq.front().box;
    out.push_back(box);
    Tensor ex_feat = embed_.forward(
        make_crop(seq.front().image, crop_window(box, cfg_.exemplar_context)));
    const Tensor kernel = center_crop(ex_feat, k, k);

    for (std::size_t t = 1; t < seq.size(); ++t) {
        const CropGeom sg = crop_window(box, cfg_.search_context);
        Tensor feat = embed_.forward(make_crop(seq[t].image, sg));
        Tensor resp = depthwise_xcorr(feat, kernel);
        RpnHead::Output ho = rpn_.forward(resp);
        const RpnPrediction p = rpn_.decode(ho)[0];

        const float sw = sg.x2 - sg.x1;
        const float sh = sg.y2 - sg.y1;
        // Regression decode (always computed: it anchors the update).
        const float u = (static_cast<float>(p.best_x) + static_cast<float>(k) * 0.5f +
                         p.dx) /
                        static_cast<float>(f);
        const float v = (static_cast<float>(p.best_y) + static_cast<float>(k) * 0.5f +
                         p.dy) /
                        static_cast<float>(f);
        float new_cx = sg.x1 + u * sw;
        float new_cy = sg.y1 + v * sh;
        float new_w = (box.w / sw) * std::exp(p.dw) * sw;
        float new_h = (box.h / sh) * std::exp(p.dh) * sh;
        if (!cfg_.use_regression) {
            // SiamFC-style baseline: the correlation peak gives position
            // only; the box size is carried over unchanged.
            const float uc = (static_cast<float>(p.best_x) +
                              static_cast<float>(k) * 0.5f) /
                             static_cast<float>(f);
            const float vc = (static_cast<float>(p.best_y) +
                              static_cast<float>(k) * 0.5f) /
                             static_cast<float>(f);
            new_cx = sg.x1 + uc * sw;
            new_cy = sg.y1 + vc * sh;
            new_w = box.w;
            new_h = box.h;
        }
        if (cfg_.use_mask) {
            Tensor logits = mask_.forward(resp);
            Tensor m = mask_.mask_at(logits, 0, p.best_y, p.best_x);
            // SiamMask-lite: refine the box from the segmentation when the
            // mask is a confident, compact blob; an uncertain mask (sigmoids
            // hovering near 0.5) covers the whole window and must not drive
            // the box.
            const float area = m.sum() / static_cast<float>(m.size());
            float mcx, mcy, mw, mh;
            if (area > 0.02f && area < 0.45f &&
                MaskHead::mask_to_box(m, 0.6f, mcx, mcy, mw, mh)) {
                const float win = static_cast<float>(k) / static_cast<float>(f);
                const float ox = static_cast<float>(p.best_x) / static_cast<float>(f);
                const float oy = static_cast<float>(p.best_y) / static_cast<float>(f);
                // Blend: mask localises the blob better than the coarse
                // regression grid, half-weight on size.
                new_cx = 0.5f * new_cx + 0.5f * (sg.x1 + (ox + mcx * win) * sw);
                new_cy = 0.5f * new_cy + 0.5f * (sg.y1 + (oy + mcy * win) * sh);
                new_w = 0.5f * new_w + 0.5f * (mw * win * sw);
                new_h = 0.5f * new_h + 0.5f * (mh * win * sh);
            }
        }
        box.cx = clampf(new_cx, 0.0f, 1.0f);
        box.cy = clampf(new_cy, 0.0f, 1.0f);
        // Scale penalty: bound the per-frame size change so one bad mask /
        // regression cannot blow the search window up (and lose the target).
        const float step = cfg_.max_scale_step;
        new_w = clampf(new_w, box.w / step, box.w * step);
        new_h = clampf(new_h, box.h / step, box.h * step);
        box.w = clampf((1.0f - cfg_.size_lerp) * box.w + cfg_.size_lerp * new_w, 0.02f, 0.9f);
        box.h = clampf((1.0f - cfg_.size_lerp) * box.h + cfg_.size_lerp * new_h, 0.02f, 0.9f);
        out.push_back(box);
    }
    return out;
}

float train_tracker(SiamTracker& tracker, data::TrackingDataset& dataset,
                    const TrackerTrainConfig& cfg, Rng& rng) {
    nn::SGD opt(tracker.params(),
                {cfg.lr_start, cfg.momentum, cfg.weight_decay, cfg.grad_clip});
    nn::ExpSchedule sched(cfg.lr_start, cfg.lr_end, cfg.steps);
    float loss = 0.0f;
    for (int step = 0; step < cfg.steps; ++step) {
        opt.set_lr(sched.at(step));
        // Draw pairs of frames from fresh sequences.
        std::vector<data::TrackingSequence> seqs;
        std::vector<const data::TrackingFrame*> ex, se;
        seqs.reserve(static_cast<std::size_t>(cfg.batch));
        for (int b = 0; b < cfg.batch; ++b) {
            seqs.push_back(dataset.next());
            const auto& s = seqs.back();
            const int i = rng.uniform_int(0, static_cast<int>(s.size()) - 2);
            const int j =
                std::min<int>(static_cast<int>(s.size()) - 1,
                              i + 1 + rng.uniform_int(0, 4));
            ex.push_back(&s[static_cast<std::size_t>(i)]);
            se.push_back(&s[static_cast<std::size_t>(j)]);
        }
        loss = tracker.train_step(ex, se, opt);
        if (cfg.verbose && step % 25 == 0)
            std::printf("  tracker step %4d  loss %.4f\n", step, loss);
    }
    return loss;
}

}  // namespace sky::tracking
