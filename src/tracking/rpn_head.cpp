#include "tracking/rpn_head.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/pwconv.hpp"
#include "nn/sequential.hpp"

namespace sky::tracking {
namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

nn::ModulePtr make_branch(int embed_dim, int out_ch, Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::PWConv1>(embed_dim, embed_dim, /*bias=*/false, rng);
    seq->emplace<nn::BatchNorm2d>(embed_dim);
    seq->emplace<nn::Activation>(nn::Act::kReLU);
    seq->emplace<nn::PWConv1>(embed_dim, out_ch, /*bias=*/true, rng);
    return seq;
}

}  // namespace

RpnHead::RpnHead(int embed_dim, Rng& rng)
    : cls_branch_(make_branch(embed_dim, 1, rng)),
      reg_branch_(make_branch(embed_dim, 4, rng)) {}

RpnHead::Output RpnHead::forward(const Tensor& response) {
    return {cls_branch_->forward(response), reg_branch_->forward(response)};
}

Tensor RpnHead::backward(const Tensor& grad_cls, const Tensor& grad_reg) {
    Tensor g = cls_branch_->backward(grad_cls);
    g.axpy(1.0f, reg_branch_->backward(grad_reg));
    return g;
}

std::vector<RpnPrediction> RpnHead::decode(const Output& out) const {
    const Shape s = out.cls.shape();
    std::vector<RpnPrediction> preds(static_cast<std::size_t>(s.n));
    for (int n = 0; n < s.n; ++n) {
        const float* cp = out.cls.plane(n, 0);
        RpnPrediction p;
        float best = -1e30f;
        for (int y = 0; y < s.h; ++y)
            for (int x = 0; x < s.w; ++x) {
                const float v = cp[static_cast<std::int64_t>(y) * s.w + x];
                if (v > best) {
                    best = v;
                    p.best_y = y;
                    p.best_x = x;
                }
            }
        p.score = sigmoid(best);
        const std::int64_t i = static_cast<std::int64_t>(p.best_y) * s.w + p.best_x;
        p.dx = std::tanh(out.reg.plane(n, 0)[i]) * 0.5f;
        p.dy = std::tanh(out.reg.plane(n, 1)[i]) * 0.5f;
        p.dw = std::clamp(out.reg.plane(n, 2)[i], -1.0f, 1.0f);
        p.dh = std::clamp(out.reg.plane(n, 3)[i], -1.0f, 1.0f);
        preds[static_cast<std::size_t>(n)] = p;
    }
    return preds;
}

float RpnHead::loss(const Output& out, const std::vector<RpnTarget>& targets,
                    Tensor& grad_cls, Tensor& grad_reg) const {
    const Shape cs = out.cls.shape();
    grad_cls = Tensor(cs);
    grad_reg = Tensor(out.reg.shape());
    double total = 0.0;
    const float inv_n = 1.0f / static_cast<float>(cs.n);
    const float eps = 1e-7f;
    for (int n = 0; n < cs.n; ++n) {
        const RpnTarget& t = targets[static_cast<std::size_t>(n)];
        const float* cp = out.cls.plane(n, 0);
        float* gcp = grad_cls.plane(n, 0);
        for (int y = 0; y < cs.h; ++y) {
            for (int x = 0; x < cs.w; ++x) {
                const std::int64_t i = static_cast<std::int64_t>(y) * cs.w + x;
                const bool pos = (y == t.pos_y && x == t.pos_x);
                const float target = pos ? 1.0f : 0.0f;
                const float w = pos ? 1.0f : 1.0f / static_cast<float>(cs.h * cs.w - 1);
                const float p = sigmoid(cp[i]);
                total += -w *
                         (target * std::log(p + eps) +
                          (1.0f - target) * std::log(1.0f - p + eps)) *
                         inv_n;
                gcp[i] += w * (p - target) * inv_n;
            }
        }
        // Regression at the positive location: tanh-bounded offsets for
        // dx/dy, raw for dw/dh; plain squared error.
        const std::int64_t i = static_cast<std::int64_t>(t.pos_y) * cs.w + t.pos_x;
        const float raw[4] = {out.reg.plane(n, 0)[i], out.reg.plane(n, 1)[i],
                              out.reg.plane(n, 2)[i], out.reg.plane(n, 3)[i]};
        const float tgt[4] = {t.dx, t.dy, t.dw, t.dh};
        for (int k = 0; k < 4; ++k) {
            float pred, dpred;  // prediction and d(pred)/d(raw)
            if (k < 2) {
                const float th = std::tanh(raw[k]);
                pred = th * 0.5f;
                dpred = (1.0f - th * th) * 0.5f;
            } else {
                pred = raw[k];
                dpred = 1.0f;
            }
            const float d = pred - tgt[k];
            total += 0.5 * d * d * inv_n;
            grad_reg.plane(n, k)[i] += d * dpred * inv_n;
        }
    }
    return static_cast<float>(total);
}

void RpnHead::collect_params(std::vector<nn::ParamRef>& out) {
    cls_branch_->collect_params(out);
    reg_branch_->collect_params(out);
}

void RpnHead::set_training(bool training) {
    cls_branch_->set_training(training);
    reg_branch_->set_training(training);
}

std::int64_t RpnHead::param_count() const {
    return cls_branch_->param_count() + reg_branch_->param_count();
}

}  // namespace sky::tracking
