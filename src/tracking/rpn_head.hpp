// SiamRPN++-style head on the correlation response: a classification branch
// (objectness per response location) and a regression branch (dx, dy,
// log-w, log-h per location).  Single anchor per location — the anchor box
// is the exemplar's own box, which SiamRPN++'s depthwise-correlation
// formulation effectively assumes at our reduced scale.
#pragma once

#include "detect/bbox.hpp"
#include "nn/module.hpp"

namespace sky::tracking {

/// Decoded head prediction for one item.
struct RpnPrediction {
    int best_y = 0;
    int best_x = 0;
    float score = 0.0f;        ///< sigmoid objectness at the best location
    float dx = 0.0f, dy = 0.0f;  ///< sub-cell offset in [-0.5, 0.5] cells
    float dw = 0.0f, dh = 0.0f;  ///< log-scale change vs the anchor box
};

struct RpnTarget {
    int pos_y = 0;
    int pos_x = 0;
    float dx = 0.0f, dy = 0.0f, dw = 0.0f, dh = 0.0f;
};

class RpnHead {
public:
    RpnHead(int embed_dim, Rng& rng);

    /// cls {N,1,h,w} and reg {N,4,h,w} from the response map.
    struct Output {
        Tensor cls;
        Tensor reg;
    };
    [[nodiscard]] Output forward(const Tensor& response);
    /// Combine head gradients back into dL/d(response).
    [[nodiscard]] Tensor backward(const Tensor& grad_cls, const Tensor& grad_reg);

    [[nodiscard]] std::vector<RpnPrediction> decode(const Output& out) const;

    /// BCE on cls + smooth-L1 on reg at the positive cell; fills gradients.
    float loss(const Output& out, const std::vector<RpnTarget>& targets, Tensor& grad_cls,
               Tensor& grad_reg) const;

    void collect_params(std::vector<nn::ParamRef>& out);
    void set_training(bool training);
    [[nodiscard]] std::int64_t param_count() const;

private:
    nn::ModulePtr cls_branch_;
    nn::ModulePtr reg_branch_;
};

}  // namespace sky::tracking
