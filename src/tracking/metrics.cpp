#include "tracking/metrics.hpp"

#include <chrono>

namespace sky::tracking {

TrackingMetrics summarize(const std::vector<float>& ious) {
    TrackingMetrics m;
    m.frames = static_cast<int>(ious.size());
    if (ious.empty()) return m;
    double acc = 0.0;
    int s50 = 0, s75 = 0;
    for (float v : ious) {
        acc += v;
        if (v > 0.50f) ++s50;
        if (v > 0.75f) ++s75;
    }
    m.ao = acc / static_cast<double>(ious.size());
    m.sr50 = static_cast<double>(s50) / static_cast<double>(ious.size());
    m.sr75 = static_cast<double>(s75) / static_cast<double>(ious.size());
    return m;
}

SuccessCurve success_curve(const std::vector<float>& ious, int points) {
    SuccessCurve c;
    if (points < 2) points = 2;
    c.thresholds.reserve(static_cast<std::size_t>(points));
    c.success.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double t = static_cast<double>(i) / static_cast<double>(points);
        int hits = 0;
        for (float v : ious)
            if (v > t) ++hits;
        c.thresholds.push_back(t);
        c.success.push_back(ious.empty() ? 0.0
                                         : static_cast<double>(hits) /
                                               static_cast<double>(ious.size()));
    }
    // Trapezoid-free mean (uniform grid) approximates the AUC.
    double acc = 0.0;
    for (double s : c.success) acc += s;
    c.auc = acc / static_cast<double>(points);
    return c;
}

TrackerEvaluation evaluate_tracker(SiamTracker& tracker, data::TrackingDataset& dataset,
                                   int sequences) {
    std::vector<float> ious;
    double tracked_frames = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < sequences; ++s) {
        const data::TrackingSequence seq = dataset.next();
        const std::vector<detect::BBox> pred = tracker.track(seq);
        for (std::size_t f = 1; f < seq.size(); ++f) {
            ious.push_back(detect::iou(pred[f], seq[f].box));
            tracked_frames += 1.0;
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    TrackerEvaluation ev;
    ev.metrics = summarize(ious);
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    ev.wall_fps = secs > 0.0 ? tracked_frames / secs : 0.0;
    return ev;
}

}  // namespace sky::tracking
