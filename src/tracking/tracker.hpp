// The full Siamese tracker: SiamRPN++-lite (box regression head) and
// SiamMask-lite (box-from-mask), §7 of the paper.
//
// Geometry follows the SiamFC/SiamRPN convention at reduced scale: exemplar
// and search crops are square windows around the target (context factors
// ~2x and ~4x the box size), both resized to `crop_size` so the two towers
// share one batched backbone pass; the exemplar "kernel" is the centre
// `kernel_cells` of its feature map.  The paper's 127/255 exemplar/search
// sizes correspond to crop_size 64/127-ish at our resolution.
#pragma once

#include "data/synth_tracking.hpp"
#include "nn/optimizer.hpp"
#include "tracking/mask_head.hpp"
#include "tracking/rpn_head.hpp"
#include "tracking/siamese.hpp"

namespace sky::tracking {

struct TrackerConfig {
    int crop_size = 64;      ///< both crops resized to this (must be /8)
    int kernel_cells = 4;    ///< centre crop of the exemplar feature map
    float exemplar_context = 2.0f;  ///< crop side = context * max(bw, bh)
    float search_context = 4.0f;
    bool use_mask = false;  ///< SiamMask mode: box comes from the mask branch
    int mask_size = 8;
    bool use_regression = true;  ///< false: SiamFC-style baseline — position
                                 ///< from the correlation argmax only, box
                                 ///< size carried over
    float size_lerp = 0.35f;   ///< per-frame box-size smoothing
    float max_scale_step = 1.35f;  ///< per-frame size change clamp (scale
                                   ///< penalty, as in SiamRPN/SiamMask)
};

class SiamTracker {
public:
    SiamTracker(SiameseEmbed embed, TrackerConfig cfg, Rng& rng);

    /// One SGD step on (exemplar frame, search frame) pairs drawn from
    /// sequences.  Returns the loss.
    float train_step(const std::vector<const data::TrackingFrame*>& exemplars,
                     const std::vector<const data::TrackingFrame*>& searches,
                     nn::SGD& optimizer);

    [[nodiscard]] std::vector<nn::ParamRef> params();
    void set_training(bool training);
    [[nodiscard]] std::int64_t param_count() const;
    [[nodiscard]] const TrackerConfig& config() const { return cfg_; }
    [[nodiscard]] const SiameseEmbed& embed() const { return embed_; }

    /// Track a sequence: initialise on frame 0's ground truth, return the
    /// predicted box for every frame (frame 0 echoes the ground truth).
    [[nodiscard]] std::vector<detect::BBox> track(const data::TrackingSequence& seq);

private:
    struct CropGeom {
        float x1, y1, x2, y2;  ///< normalised window in the frame
    };
    [[nodiscard]] CropGeom crop_window(const detect::BBox& box, float context) const;
    [[nodiscard]] Tensor make_crop(const Tensor& frame, const CropGeom& g) const;

    SiameseEmbed embed_;
    RpnHead rpn_;
    MaskHead mask_;
    TrackerConfig cfg_;
    Rng jitter_;
};

/// Train a tracker on the synthetic sequence generator.
struct TrackerTrainConfig {
    int steps = 300;
    int batch = 4;
    float lr_start = 0.03f;
    float lr_end = 0.003f;
    float momentum = 0.9f;
    float weight_decay = 1e-4f;
    float grad_clip = 5.0f;
    bool verbose = false;
};
float train_tracker(SiamTracker& tracker, data::TrackingDataset& dataset,
                    const TrackerTrainConfig& cfg, Rng& rng);

}  // namespace sky::tracking
