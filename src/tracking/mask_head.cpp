#include "tracking/mask_head.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/pwconv.hpp"
#include "nn/sequential.hpp"

namespace sky::tracking {
namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

MaskHead::MaskHead(int embed_dim, int mask_size, Rng& rng) : mask_size_(mask_size) {
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::PWConv1>(embed_dim, embed_dim, /*bias=*/false, rng);
    seq->emplace<nn::BatchNorm2d>(embed_dim);
    seq->emplace<nn::Activation>(nn::Act::kReLU);
    seq->emplace<nn::PWConv1>(embed_dim, mask_size * mask_size, /*bias=*/true, rng);
    branch_ = std::move(seq);
}

Tensor MaskHead::forward(const Tensor& response) { return branch_->forward(response); }

Tensor MaskHead::backward(const Tensor& grad) { return branch_->backward(grad); }

Tensor MaskHead::mask_at(const Tensor& logits, int n, int y, int x) const {
    Tensor m({1, 1, mask_size_, mask_size_});
    const Shape s = logits.shape();
    const std::int64_t i = static_cast<std::int64_t>(y) * s.w + x;
    for (int k = 0; k < mask_size_ * mask_size_; ++k)
        m[k] = sigmoid(logits.plane(n, k)[i]);
    return m;
}

float MaskHead::loss(const Tensor& logits, const std::vector<Tensor>& gt_masks,
                     const std::vector<std::pair<int, int>>& pos_yx, Tensor& grad) const {
    const Shape s = logits.shape();
    grad = Tensor(s);
    double total = 0.0;
    const float eps = 1e-7f;
    const float inv = 1.0f / static_cast<float>(s.n * mask_size_ * mask_size_);
    for (int n = 0; n < s.n; ++n) {
        const auto [py, px] = pos_yx[static_cast<std::size_t>(n)];
        const std::int64_t i = static_cast<std::int64_t>(py) * s.w + px;
        const Tensor& gt = gt_masks[static_cast<std::size_t>(n)];
        for (int k = 0; k < mask_size_ * mask_size_; ++k) {
            const float p = sigmoid(logits.plane(n, k)[i]);
            const float t = gt[k];
            total += -(t * std::log(p + eps) + (1.0f - t) * std::log(1.0f - p + eps)) * inv;
            grad.plane(n, k)[i] = (p - t) * inv;
        }
    }
    return static_cast<float>(total);
}

bool MaskHead::mask_to_box(const Tensor& mask, float threshold, float& cx, float& cy,
                           float& w, float& h) {
    const Shape s = mask.shape();
    int x1 = s.w, y1 = s.h, x2 = -1, y2 = -1;
    for (int y = 0; y < s.h; ++y)
        for (int x = 0; x < s.w; ++x)
            if (mask.at(0, 0, y, x) > threshold) {
                x1 = std::min(x1, x);
                y1 = std::min(y1, y);
                x2 = std::max(x2, x);
                y2 = std::max(y2, y);
            }
    if (x2 < 0) return false;
    cx = (static_cast<float>(x1 + x2) + 1.0f) * 0.5f / static_cast<float>(s.w);
    cy = (static_cast<float>(y1 + y2) + 1.0f) * 0.5f / static_cast<float>(s.h);
    w = static_cast<float>(x2 - x1 + 1) / static_cast<float>(s.w);
    h = static_cast<float>(y2 - y1 + 1) / static_cast<float>(s.h);
    return true;
}

void MaskHead::collect_params(std::vector<nn::ParamRef>& out) {
    branch_->collect_params(out);
}

void MaskHead::set_training(bool training) { branch_->set_training(training); }

std::int64_t MaskHead::param_count() const { return branch_->param_count(); }

}  // namespace sky::tracking
