// GOT-10k evaluation protocol (§7): average overlap (AO) — the mean IoU
// between prediction and ground truth over all frames — and success rate
// SR@t — the fraction of frames whose IoU exceeds t (the paper reports
// SR@0.50 and SR@0.75).  Frame 0 is the initialisation and is excluded.
#pragma once

#include "data/synth_tracking.hpp"
#include "tracking/tracker.hpp"

namespace sky::tracking {

struct TrackingMetrics {
    double ao = 0.0;
    double sr50 = 0.0;
    double sr75 = 0.0;
    int frames = 0;
};

/// Metrics over per-frame IoUs (already excluding initialisation frames).
[[nodiscard]] TrackingMetrics summarize(const std::vector<float>& ious);

/// GOT-10k success curve: SR@t for `points` thresholds t in [0, 1), plus
/// its area under the curve (which equals AO in expectation).
struct SuccessCurve {
    std::vector<double> thresholds;
    std::vector<double> success;  ///< SR at each threshold
    double auc = 0.0;
};
[[nodiscard]] SuccessCurve success_curve(const std::vector<float>& ious, int points = 21);

struct TrackerEvaluation {
    TrackingMetrics metrics;
    double wall_fps = 0.0;  ///< measured frames/second of the C++ tracker on CPU
};

/// Run the tracker over `sequences` fresh sequences and evaluate.
[[nodiscard]] TrackerEvaluation evaluate_tracker(SiamTracker& tracker,
                                                 data::TrackingDataset& dataset,
                                                 int sequences);

}  // namespace sky::tracking
