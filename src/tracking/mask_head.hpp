// SiamMask-style mask branch: at every response location, predict an
// M x M binary segmentation of the target within that location's receptive
// window (flattened into M*M channels).  The tracker derives its box from
// the thresholded mask at the best-scoring location, which is what lets
// SiamMask outperform pure box regression (Table 9).
#pragma once

#include "nn/module.hpp"

namespace sky::tracking {

class MaskHead {
public:
    MaskHead(int embed_dim, int mask_size, Rng& rng);

    /// {N, M*M, h, w} mask logits.
    [[nodiscard]] Tensor forward(const Tensor& response);
    [[nodiscard]] Tensor backward(const Tensor& grad);

    /// Sigmoid mask {M, M} at one location of one item.
    [[nodiscard]] Tensor mask_at(const Tensor& logits, int n, int y, int x) const;

    /// BCE against a ground-truth mask {M, M} at the positive location.
    float loss(const Tensor& logits, const std::vector<Tensor>& gt_masks,
               const std::vector<std::pair<int, int>>& pos_yx, Tensor& grad) const;

    /// Tight bounding box (normalised to the mask window, centre/size) of
    /// mask values above `threshold`; returns false if the mask is empty.
    static bool mask_to_box(const Tensor& mask, float threshold, float& cx, float& cy,
                            float& w, float& h);

    void collect_params(std::vector<nn::ParamRef>& out);
    void set_training(bool training);
    [[nodiscard]] std::int64_t param_count() const;
    [[nodiscard]] int mask_size() const { return mask_size_; }

private:
    nn::ModulePtr branch_;
    int mask_size_;
};

}  // namespace sky::tracking
