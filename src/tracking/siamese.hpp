// Siamese feature extraction and depthwise cross-correlation — the common
// machinery of SiamRPN++ and SiamMask (§7).
//
// Both trackers embed an exemplar crop and a search crop with the *same*
// backbone and correlate them per-channel; the response map feeds a head
// (RPN or mask).  To train the shared backbone with our single-instance
// modules, exemplar and search crops are stacked into one batch of
// identical spatial size; the exemplar "kernel" is the centre crop of its
// feature map.  depthwise_xcorr has an explicit backward so gradients flow
// into both towers.
#pragma once

#include <memory>

#include "nn/module.hpp"

namespace sky::tracking {

/// Depthwise cross-correlation: for each (n, c), correlate search[n, c] with
/// kernel[n, c] (valid mode).  search {N,C,Hs,Ws} x kernel {N,C,Hk,Wk} ->
/// {N,C,Hs-Hk+1,Ws-Wk+1}.
[[nodiscard]] Tensor depthwise_xcorr(const Tensor& search, const Tensor& kernel);

/// Gradients of depthwise_xcorr w.r.t. both inputs.
void depthwise_xcorr_backward(const Tensor& search, const Tensor& kernel,
                              const Tensor& grad_resp, Tensor& grad_search,
                              Tensor& grad_kernel);

/// Centre crop of a feature map to (kh, kw); scatter_center_grad is its
/// adjoint (writes into a zeroed tensor of the original size).
[[nodiscard]] Tensor center_crop(const Tensor& feat, int kh, int kw);
void scatter_center_grad(const Tensor& grad_crop, Tensor& grad_feat);

/// The Siamese embedding tower: backbone (any stride-8 feature extractor)
/// plus a 1x1 "neck" to a fixed embedding width.
class SiameseEmbed {
public:
    /// `feature_channels` is the backbone's output width —
    /// SkyNetModel::feature_channels() for the SkyNet extractors.
    SiameseEmbed(nn::ModulePtr backbone, int feature_channels, int embed_dim, Rng& rng);

    /// Embed a batch of crops {N,3,S,S} -> {N,D,S/8,S/8}.
    [[nodiscard]] Tensor forward(const Tensor& crops);
    /// Backward through neck + backbone.
    Tensor backward(const Tensor& grad);

    void collect_params(std::vector<nn::ParamRef>& out);
    void set_training(bool training);
    [[nodiscard]] std::int64_t param_count() const;
    [[nodiscard]] int embed_dim() const { return embed_dim_; }
    [[nodiscard]] const nn::Module& net() const { return *net_; }
    [[nodiscard]] nn::Module& net() { return *net_; }

private:
    std::unique_ptr<nn::Module> net_;  // backbone + neck as one Sequential
    int embed_dim_;
};

}  // namespace sky::tracking
