// Name -> builder registry so benches and examples can enumerate backbones.
#pragma once

#include <vector>

#include "backbones/backbone.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/pwconv.hpp"

namespace sky::backbones {

[[nodiscard]] Backbone build_by_name(const std::string& name, float width_mult, Rng& rng);
[[nodiscard]] std::vector<std::string> backbone_names();

}  // namespace sky::backbones
