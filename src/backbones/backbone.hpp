// Baseline backbone zoo.
//
// Every backbone the paper compares against is built here as a real,
// trainable module: ResNet-18/34/50 and VGG-16 (Table 2), AlexNet and
// ResNet-50 (tracking Tables 8/9), and the compact nets underlying the
// DAC-SDC competitor entries of Table 1 (MobileNet, ShuffleNet, SqueezeNet,
// Tiny-YOLO) which feed the hwsim cost models for Tables 5/6.
//
// All builders produce *detection-friendly* feature extractors with output
// stride 8 (so the same YOLO back-end attaches to every backbone, as the
// paper does for Table 2): architecturally-late downsampling is converted to
// stride 1, which leaves parameter counts untouched.  `width_mult` scales
// channels for fast CPU training; 1.0 reproduces the published sizes.
#pragma once

#include <memory>
#include <string>

#include "nn/activations.hpp"
#include "nn/graph.hpp"
#include "nn/sequential.hpp"

namespace sky::backbones {

struct Backbone {
    nn::ModulePtr net;
    int out_channels = 0;
    std::string name;

    [[nodiscard]] std::int64_t param_count() const { return net->param_count(); }
    [[nodiscard]] double param_mb() const {
        return static_cast<double>(param_count()) * 4.0 / 1e6;
    }
};

/// Channel scaling used by every builder: round to a multiple of 4, floor 4.
[[nodiscard]] int scale_ch(int ch, float mult);

/// Conv + BN + activation, appended to `seq`.
void conv_bn_act(nn::Sequential& seq, int in_ch, int out_ch, int k, int stride, int pad,
                 nn::Act act, Rng& rng);

/// Attach the shared 2-anchor YOLO back-end (a 1x1 conv to 5*anchors
/// channels) to a backbone — the "same back-end for object detection" of
/// Table 2.  Returns the full detector as a single module.
[[nodiscard]] nn::ModulePtr make_detector(Backbone backbone, int anchors, Rng& rng);

Backbone build_alexnet(float width_mult, Rng& rng);
Backbone build_vgg16(float width_mult, Rng& rng);
Backbone build_resnet(int depth, float width_mult, Rng& rng);  // 18 / 34 / 50
Backbone build_mobilenet(float width_mult, Rng& rng);
Backbone build_shufflenet(float width_mult, Rng& rng, int groups = 3);
Backbone build_squeezenet(float width_mult, Rng& rng);
Backbone build_tinyyolo(float width_mult, Rng& rng);

/// AlexNet *classifier* (5 convs + 3 FC) for the Fig. 2a quantization study;
/// `input_size` fixes the FC fan-in.  width_mult scales both conv channels
/// and FC widths.
[[nodiscard]] nn::ModulePtr build_alexnet_classifier(int num_classes, int input_size,
                                                     float width_mult, Rng& rng);

/// Exact float32 parameter bytes of the canonical full-size AlexNet
/// (224x224, 1000 classes) — the "237.9 MB" reference of Fig. 2a, computed
/// from the architecture rather than measured on the scaled proxy.
[[nodiscard]] std::int64_t alexnet_reference_params(bool fc_only = false);

}  // namespace sky::backbones
