#include "backbones/backbone.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/pooling.hpp"

namespace sky::backbones {

// Tiny-YOLO (DarkNet-tiny) feature extractor: seven 3x3 convs with leaky
// ReLU, channel ladder 16-32-64-128-256-512-1024.  Stride 8: the first
// three pools downsample; the later pools of the original are dropped.
Backbone build_tinyyolo(float width_mult, Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    const auto ch = [&](int c) { return scale_ch(c, width_mult); };
    const int ladder[7] = {ch(16), ch(32), ch(64), ch(128), ch(256), ch(512), ch(1024)};
    int in_ch = 3;
    for (int i = 0; i < 7; ++i) {
        conv_bn_act(*seq, in_ch, ladder[i], 3, 1, 1, nn::Act::kLeaky, rng);
        if (i < 3) seq->emplace<nn::MaxPool2>();
        in_ch = ladder[i];
    }
    return {std::move(seq), in_ch, "Tiny-YOLO"};
}

}  // namespace sky::backbones
