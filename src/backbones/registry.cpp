#include "backbones/registry.hpp"

#include <stdexcept>

namespace sky::backbones {

int scale_ch(int ch, float mult) {
    const int s = static_cast<int>(static_cast<float>(ch) * mult + 0.5f);
    return std::max(4, (s + 3) / 4 * 4);
}

void conv_bn_act(nn::Sequential& seq, int in_ch, int out_ch, int k, int stride, int pad,
                 nn::Act act, Rng& rng) {
    seq.emplace<nn::Conv2d>(in_ch, out_ch, k, stride, pad, /*bias=*/false, rng);
    seq.emplace<nn::BatchNorm2d>(out_ch);
    seq.emplace<nn::Activation>(act);
}

nn::ModulePtr make_detector(Backbone backbone, int anchors, Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    const int feat = backbone.out_channels;
    seq->add(std::move(backbone.net));
    seq->emplace<nn::PWConv1>(feat, 5 * anchors, /*bias=*/true, rng);
    return seq;
}

Backbone build_by_name(const std::string& name, float width_mult, Rng& rng) {
    if (name == "alexnet") return build_alexnet(width_mult, rng);
    if (name == "vgg16") return build_vgg16(width_mult, rng);
    if (name == "resnet18") return build_resnet(18, width_mult, rng);
    if (name == "resnet34") return build_resnet(34, width_mult, rng);
    if (name == "resnet50") return build_resnet(50, width_mult, rng);
    if (name == "mobilenet") return build_mobilenet(width_mult, rng);
    if (name == "shufflenet") return build_shufflenet(width_mult, rng);
    if (name == "squeezenet") return build_squeezenet(width_mult, rng);
    if (name == "tinyyolo") return build_tinyyolo(width_mult, rng);
    throw std::invalid_argument("unknown backbone: " + name);
}

std::vector<std::string> backbone_names() {
    return {"alexnet",   "vgg16",      "resnet18",   "resnet34", "resnet50",
            "mobilenet", "shufflenet", "squeezenet", "tinyyolo"};
}

}  // namespace sky::backbones
