#include <stdexcept>

#include "backbones/backbone.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/pooling.hpp"

namespace sky::backbones {
namespace {

/// conv-bn(-relu) chain as a Sequential, for use inside residual graphs.
nn::ModulePtr conv_bn(int in_ch, int out_ch, int k, int stride, int pad, bool relu,
                      Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Conv2d>(in_ch, out_ch, k, stride, pad, /*bias=*/false, rng);
    seq->emplace<nn::BatchNorm2d>(out_ch);
    if (relu) seq->emplace<nn::Activation>(nn::Act::kReLU);
    return seq;
}

/// BasicBlock (ResNet-18/34): 3x3 -> 3x3 with identity or 1x1 shortcut.
nn::ModulePtr basic_block(int in_ch, int out_ch, int stride, Rng& rng) {
    auto g = std::make_unique<nn::Graph>();
    int n = g->add(conv_bn(in_ch, out_ch, 3, stride, 1, /*relu=*/true, rng), g->input());
    n = g->add(conv_bn(out_ch, out_ch, 3, 1, 1, /*relu=*/false, rng), n);
    int shortcut = g->input();
    if (stride != 1 || in_ch != out_ch)
        shortcut = g->add(conv_bn(in_ch, out_ch, 1, stride, 0, /*relu=*/false, rng),
                          g->input());
    n = g->add_add(n, shortcut);
    n = g->add(std::make_unique<nn::Activation>(nn::Act::kReLU), n);
    g->set_output(n);
    return g;
}

/// Bottleneck (ResNet-50): 1x1 reduce -> 3x3 -> 1x1 expand (x4).
nn::ModulePtr bottleneck_block(int in_ch, int planes, int stride, Rng& rng) {
    const int out_ch = planes * 4;
    auto g = std::make_unique<nn::Graph>();
    int n = g->add(conv_bn(in_ch, planes, 1, 1, 0, /*relu=*/true, rng), g->input());
    n = g->add(conv_bn(planes, planes, 3, stride, 1, /*relu=*/true, rng), n);
    n = g->add(conv_bn(planes, out_ch, 1, 1, 0, /*relu=*/false, rng), n);
    int shortcut = g->input();
    if (stride != 1 || in_ch != out_ch)
        shortcut = g->add(conv_bn(in_ch, out_ch, 1, stride, 0, /*relu=*/false, rng),
                          g->input());
    n = g->add_add(n, shortcut);
    n = g->add(std::make_unique<nn::Activation>(nn::Act::kReLU), n);
    g->set_output(n);
    return g;
}

}  // namespace

// ResNet-18/34/50.  Stem is 3x3/2 + pool (the 7x7 stem at our input sizes
// would collapse the map; parameter delta is negligible next to the stages).
// Stage strides are {1, 2, 1, 1}: with the stem's /4 this gives the stride-8
// detection layout while keeping every block's parameters intact.
Backbone build_resnet(int depth, float width_mult, Rng& rng) {
    int blocks[4];
    bool bottleneck = false;
    switch (depth) {
        case 18: blocks[0] = 2; blocks[1] = 2; blocks[2] = 2; blocks[3] = 2; break;
        case 34: blocks[0] = 3; blocks[1] = 4; blocks[2] = 6; blocks[3] = 3; break;
        case 50:
            blocks[0] = 3; blocks[1] = 4; blocks[2] = 6; blocks[3] = 3;
            bottleneck = true;
            break;
        default: throw std::invalid_argument("build_resnet: depth must be 18/34/50");
    }
    const int planes[4] = {scale_ch(64, width_mult), scale_ch(128, width_mult),
                           scale_ch(256, width_mult), scale_ch(512, width_mult)};
    const int stage_stride[4] = {1, 2, 1, 1};

    auto seq = std::make_unique<nn::Sequential>();
    const int stem = scale_ch(64, width_mult);
    conv_bn_act(*seq, 3, stem, 3, 2, 1, nn::Act::kReLU, rng);
    seq->emplace<nn::MaxPool2>();
    int in_ch = stem;
    for (int s = 0; s < 4; ++s) {
        for (int b = 0; b < blocks[s]; ++b) {
            const int stride = b == 0 ? stage_stride[s] : 1;
            if (bottleneck) {
                seq->add(bottleneck_block(in_ch, planes[s], stride, rng));
                in_ch = planes[s] * 4;
            } else {
                seq->add(basic_block(in_ch, planes[s], stride, rng));
                in_ch = planes[s];
            }
        }
    }
    return {std::move(seq), in_ch, "ResNet-" + std::to_string(depth)};
}

}  // namespace sky::backbones
