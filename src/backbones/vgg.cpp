#include "backbones/backbone.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/pooling.hpp"

namespace sky::backbones {

// VGG-16 feature extractor.  The full 13-conv stack is kept (14.71M params
// at width 1.0, matching Table 2); only the first three of the five pools
// downsample so the detection grid is stride 8.
Backbone build_vgg16(float width_mult, Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    struct Stage {
        int channels;
        int convs;
        bool pool;
    };
    const Stage stages[5] = {
        {64, 2, true}, {128, 2, true}, {256, 3, true}, {512, 3, false}, {512, 3, false}};
    int in_ch = 3;
    for (const Stage& st : stages) {
        const int out_ch = scale_ch(st.channels, width_mult);
        for (int i = 0; i < st.convs; ++i) {
            conv_bn_act(*seq, in_ch, out_ch, 3, 1, 1, nn::Act::kReLU, rng);
            in_ch = out_ch;
        }
        if (st.pool) seq->emplace<nn::MaxPool2>();
    }
    return {std::move(seq), in_ch, "VGG-16"};
}

}  // namespace sky::backbones
