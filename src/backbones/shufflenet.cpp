#include "backbones/backbone.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/shuffle.hpp"

namespace sky::backbones {
namespace {

/// ShuffleNet unit (stride 1, residual): GConv1x1 -> shuffle -> DW3 ->
/// GConv1x1 -> add.
nn::ModulePtr shuffle_unit(int channels, int groups, Rng& rng) {
    const int mid = std::max(groups, channels / 4 / groups * groups);
    auto g = std::make_unique<nn::Graph>();
    auto branch = std::make_unique<nn::Sequential>();
    branch->emplace<nn::PWConv1>(channels, mid, /*bias=*/false, rng, groups);
    branch->emplace<nn::BatchNorm2d>(mid);
    branch->emplace<nn::Activation>(nn::Act::kReLU);
    branch->emplace<nn::ChannelShuffle>(groups);
    branch->emplace<nn::DWConv3>(mid, rng);
    branch->emplace<nn::BatchNorm2d>(mid);
    branch->emplace<nn::PWConv1>(mid, channels, /*bias=*/false, rng, groups);
    branch->emplace<nn::BatchNorm2d>(channels);
    const int b = g->add(std::move(branch), g->input());
    int n = g->add_add(b, g->input());
    n = g->add(std::make_unique<nn::Activation>(nn::Act::kReLU), n);
    g->set_output(n);
    return g;
}

}  // namespace

// ShuffleNet(g=3)-style feature extractor: 24-channel stem, three stages of
// shuffle units at 240/480/960 channels.  Stage transitions are pool +
// grouped 1x1 expansion (the concat-based stride unit of the original is
// equivalent in cost); output stride 8 keeps only two downsampling points
// after the stem.
Backbone build_shufflenet(float width_mult, Rng& rng, int groups) {
    auto seq = std::make_unique<nn::Sequential>();
    const auto ch = [&](int c) {
        const int v = scale_ch(c, width_mult);
        return (v + groups - 1) / groups * groups;  // keep divisible by groups
    };
    const int stem = ch(24);
    conv_bn_act(*seq, 3, stem, 3, 2, 1, nn::Act::kReLU, rng);  // /2
    seq->emplace<nn::MaxPool2>();                              // /4

    const int stages[3] = {ch(240), ch(480), ch(960)};
    const int units[3] = {3, 7, 3};
    int in_ch = stem;
    for (int s = 0; s < 3; ++s) {
        // Only the first post-stem transition downsamples (stride-8 mode).
        if (s == 1) seq->emplace<nn::MaxPool2>();  // /8
        seq->emplace<nn::PWConv1>(in_ch, stages[s], /*bias=*/false, rng,
                                  s == 0 ? 1 : groups);
        seq->emplace<nn::BatchNorm2d>(stages[s]);
        seq->emplace<nn::Activation>(nn::Act::kReLU);
        in_ch = stages[s];
        for (int u = 0; u < units[s]; ++u) seq->add(shuffle_unit(in_ch, groups, rng));
    }
    return {std::move(seq), in_ch, "ShuffleNet"};
}

}  // namespace sky::backbones
