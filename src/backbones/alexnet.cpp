#include "backbones/backbone.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace sky::backbones {

// Detection-mode AlexNet feature extractor (stride 8).  The canonical
// 11x11/4 stem is replaced by 5x5/1 + pool to suit small inputs; the
// 5-conv channel progression (64-192-384-256-256) is preserved, which is
// what matters for the tracking comparison of Table 8.
Backbone build_alexnet(float width_mult, Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    const int c1 = scale_ch(64, width_mult), c2 = scale_ch(192, width_mult),
              c3 = scale_ch(384, width_mult), c4 = scale_ch(256, width_mult),
              c5 = scale_ch(256, width_mult);
    conv_bn_act(*seq, 3, c1, 5, 1, 2, nn::Act::kReLU, rng);
    seq->emplace<nn::MaxPool2>();
    conv_bn_act(*seq, c1, c2, 3, 1, 1, nn::Act::kReLU, rng);
    seq->emplace<nn::MaxPool2>();
    conv_bn_act(*seq, c2, c3, 3, 1, 1, nn::Act::kReLU, rng);
    conv_bn_act(*seq, c3, c4, 3, 1, 1, nn::Act::kReLU, rng);
    conv_bn_act(*seq, c4, c5, 3, 1, 1, nn::Act::kReLU, rng);
    seq->emplace<nn::MaxPool2>();
    return {std::move(seq), c5, "AlexNet"};
}

nn::ModulePtr build_alexnet_classifier(int num_classes, int input_size, float width_mult,
                                       Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    const int c1 = scale_ch(64, width_mult), c2 = scale_ch(192, width_mult),
              c3 = scale_ch(384, width_mult), c4 = scale_ch(256, width_mult),
              c5 = scale_ch(256, width_mult);
    const int fc = scale_ch(4096, width_mult * 0.125f);  // FC width scales harder:
    // at full scale the two 4096-wide FCs dominate AlexNet's 61M parameters
    // (Fig. 2a's blue bubbles); the proxy keeps the same conv:FC imbalance
    // without making CPU training infeasible.
    conv_bn_act(*seq, 3, c1, 5, 1, 2, nn::Act::kReLU, rng);
    seq->emplace<nn::MaxPool2>();
    conv_bn_act(*seq, c1, c2, 3, 1, 1, nn::Act::kReLU, rng);
    seq->emplace<nn::MaxPool2>();
    conv_bn_act(*seq, c2, c3, 3, 1, 1, nn::Act::kReLU, rng);
    conv_bn_act(*seq, c3, c4, 3, 1, 1, nn::Act::kReLU, rng);
    conv_bn_act(*seq, c4, c5, 3, 1, 1, nn::Act::kReLU, rng);
    seq->emplace<nn::MaxPool2>();
    const int spatial = input_size / 8;
    seq->emplace<nn::Linear>(c5 * spatial * spatial, fc, rng);
    seq->emplace<nn::Activation>(nn::Act::kReLU);
    seq->emplace<nn::Linear>(fc, fc, rng);
    seq->emplace<nn::Activation>(nn::Act::kReLU);
    seq->emplace<nn::Linear>(fc, num_classes, rng);
    return seq;
}

std::int64_t alexnet_reference_params(bool fc_only) {
    // torchvision AlexNet at 224x224 / 1000 classes.
    auto conv = [](std::int64_t ic, std::int64_t oc, std::int64_t k) {
        return ic * oc * k * k + oc;
    };
    auto fc = [](std::int64_t in, std::int64_t out) { return in * out + out; };
    const std::int64_t convs = conv(3, 64, 11) + conv(64, 192, 5) + conv(192, 384, 3) +
                               conv(384, 256, 3) + conv(256, 256, 3);
    const std::int64_t fcs = fc(256 * 6 * 6, 4096) + fc(4096, 4096) + fc(4096, 1000);
    return fc_only ? fcs : convs + fcs;
}

}  // namespace sky::backbones
