#include "backbones/backbone.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"

namespace sky::backbones {
namespace {

void dw_separable(nn::Sequential& seq, int in_ch, int out_ch, bool pool_after, Rng& rng) {
    seq.emplace<nn::DWConv3>(in_ch, rng);
    seq.emplace<nn::BatchNorm2d>(in_ch);
    seq.emplace<nn::Activation>(nn::Act::kReLU6);
    seq.emplace<nn::PWConv1>(in_ch, out_ch, /*bias=*/false, rng);
    seq.emplace<nn::BatchNorm2d>(out_ch);
    seq.emplace<nn::Activation>(nn::Act::kReLU6);
    if (pool_after) seq.emplace<nn::MaxPool2>();
}

}  // namespace

// MobileNetV1 feature extractor.  The 13 depthwise-separable layers and the
// 32-64-128-...-1024 channel ladder are kept; the strided depthwise convs
// are realised as DW + 2x2 pool (identical parameters), and only the first
// two downsampling points fire so the output stride is 8.
Backbone build_mobilenet(float width_mult, Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    const auto ch = [&](int c) { return scale_ch(c, width_mult); };
    conv_bn_act(*seq, 3, ch(32), 3, 2, 1, nn::Act::kReLU6, rng);  // stem /2
    dw_separable(*seq, ch(32), ch(64), /*pool_after=*/false, rng);
    dw_separable(*seq, ch(64), ch(128), /*pool_after=*/true, rng);  // /4
    dw_separable(*seq, ch(128), ch(128), false, rng);
    dw_separable(*seq, ch(128), ch(256), /*pool_after=*/true, rng);  // /8
    dw_separable(*seq, ch(256), ch(256), false, rng);
    dw_separable(*seq, ch(256), ch(512), false, rng);
    for (int i = 0; i < 5; ++i) dw_separable(*seq, ch(512), ch(512), false, rng);
    dw_separable(*seq, ch(512), ch(1024), false, rng);
    dw_separable(*seq, ch(1024), ch(1024), false, rng);
    return {std::move(seq), ch(1024), "MobileNet"};
}

}  // namespace sky::backbones
