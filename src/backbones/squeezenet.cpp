#include "backbones/backbone.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"

namespace sky::backbones {
namespace {

/// Fire module: 1x1 squeeze -> parallel (1x1 expand | 3x3 expand) -> concat.
nn::ModulePtr fire(int in_ch, int squeeze, int expand1, int expand3, Rng& rng) {
    auto g = std::make_unique<nn::Graph>();
    auto sq = std::make_unique<nn::Sequential>();
    sq->emplace<nn::PWConv1>(in_ch, squeeze, /*bias=*/false, rng);
    sq->emplace<nn::BatchNorm2d>(squeeze);
    sq->emplace<nn::Activation>(nn::Act::kReLU);
    const int s = g->add(std::move(sq), g->input());

    auto e1 = std::make_unique<nn::Sequential>();
    e1->emplace<nn::PWConv1>(squeeze, expand1, /*bias=*/false, rng);
    e1->emplace<nn::BatchNorm2d>(expand1);
    e1->emplace<nn::Activation>(nn::Act::kReLU);
    const int a = g->add(std::move(e1), s);

    auto e3 = std::make_unique<nn::Sequential>();
    e3->emplace<nn::Conv2d>(squeeze, expand3, 3, 1, 1, /*bias=*/false, rng);
    e3->emplace<nn::BatchNorm2d>(expand3);
    e3->emplace<nn::Activation>(nn::Act::kReLU);
    const int b = g->add(std::move(e3), s);

    g->set_output(g->add_concat({a, b}));
    return g;
}

}  // namespace

// SqueezeNet v1.1 feature extractor (fire2..fire9), output stride 8.
// The running channel count follows each fire's actual e1+e3 output (the
// per-width rounding of the two expands need not equal the rounding of
// their nominal sum).
Backbone build_squeezenet(float width_mult, Rng& rng) {
    auto seq = std::make_unique<nn::Sequential>();
    const auto ch = [&](int c) { return scale_ch(c, width_mult); };
    int in_ch = ch(64);
    conv_bn_act(*seq, 3, in_ch, 3, 2, 1, nn::Act::kReLU, rng);  // /2
    seq->emplace<nn::MaxPool2>();                               // /4
    struct FireSpec {
        int squeeze, expand;
        bool pool_before;
    };
    const FireSpec fires[8] = {{16, 64, false},  {16, 64, false},  {32, 128, true},
                               {32, 128, false}, {48, 192, false}, {48, 192, false},
                               {64, 256, false}, {64, 256, false}};
    for (const FireSpec& f : fires) {
        if (f.pool_before) seq->emplace<nn::MaxPool2>();  // /8
        const int e = ch(f.expand);
        seq->add(fire(in_ch, ch(f.squeeze), e, e, rng));
        in_ch = 2 * e;
    }
    return {std::move(seq), in_ch, "SqueezeNet"};
}

}  // namespace sky::backbones
