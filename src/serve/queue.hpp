// Bounded MPMC queue — the backpressure primitive of the serving engine.
//
// A mutex + two condition variables over a deque: deliberately boring, since
// every item that passes through it is a whole inference request (the
// per-item cost is microseconds of queueing against milliseconds of DNN
// work).  What matters for serving is the *policy* surface:
//
//  - `push` blocks while the queue is at capacity (the kBlock overflow
//    policy: producers feel backpressure as latency);
//  - `try_push` never blocks (the kReject policy: producers shed load and
//    the caller turns the failure into a rejection error);
//  - `close` initiates graceful shutdown: producers are refused from then
//    on, but consumers drain everything already accepted — `pop` only
//    returns false once the queue is both closed and empty, so no accepted
//    request is ever dropped by the queue itself.
//
// The locking discipline is compiler-verified: q_/closed_ carry
// SKY_GUARDED_BY(mu_), so any access outside the lock is a Clang
// -Wthread-safety error, not a latent race (see core/annotations.hpp).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace sky::serve {

template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Blocking push; waits for space.  Returns false iff the queue was
    /// closed (item is left untouched in that case).
    bool push(T&& item) SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        not_full_.wait(mu_, [&] {
            mu_.assert_held();
            return q_.size() < capacity_ || closed_;
        });
        if (closed_) return false;
        q_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking push; false when full or closed.
    bool try_push(T&& item) SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        if (closed_ || q_.size() >= capacity_) return false;
        q_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Blocking push that hands the item BACK on failure instead of
    /// leaving the caller with a formally moved-from object: returns
    /// nullopt when accepted, or the item itself when the queue is closed.
    /// For producers that must still fulfil the item's promise on failure.
    [[nodiscard]] std::optional<T> offer(T&& item) SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        not_full_.wait(mu_, [&] {
            mu_.assert_held();
            return q_.size() < capacity_ || closed_;
        });
        if (closed_) return std::optional<T>(std::move(item));
        q_.push_back(std::move(item));
        not_empty_.notify_one();
        return std::nullopt;
    }

    /// Blocking pop.  Returns false only when the queue is closed AND fully
    /// drained; until then every accepted item is delivered exactly once.
    bool pop(T& out) SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        not_empty_.wait(mu_, [&] {
            mu_.assert_held();
            return !q_.empty() || closed_;
        });
        if (q_.empty()) return false;
        out = std::move(q_.front());
        q_.pop_front();
        not_full_.notify_one();
        return true;
    }

    /// Refuse new items; wake all waiters.  Idempotent.
    void close() SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] std::size_t size() const SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        return q_.size();
    }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] bool closed() const SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        return closed_;
    }

private:
    const std::size_t capacity_;
    mutable core::Mutex mu_;   // guards q_/closed_ + both cv waits; leaf lock,
                               // never held while fulfilling promises
    core::CondVar not_empty_;  // signalled by push/close; predicate: !q_.empty() || closed_
    core::CondVar not_full_;   // signalled by pop/close; predicate: q_.size() < capacity_ || closed_
    std::deque<T> q_ SKY_GUARDED_BY(mu_);
    bool closed_ SKY_GUARDED_BY(mu_) = false;
};

}  // namespace sky::serve
