#include "serve/engine.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <utility>

#include "data/augment.hpp"
#include "obs/trace.hpp"

namespace sky::serve {
namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Geometric latency buckets 0.01 ms .. ~10 s (x1.5 steps): fine enough for
/// meaningful p50/p95/p99 interpolation across sub-ms decode times and
/// multi-ms batch inference.
std::vector<double> latency_bounds() {
    std::vector<double> b;
    for (double v = 0.01; v < 1.2e4; v *= 1.5) b.push_back(v);
    return b;
}

std::vector<double> depth_bounds(std::size_t capacity) {
    std::vector<double> b;
    for (std::size_t d = 0; d <= capacity; d = d ? d * 2 : 1)
        b.push_back(static_cast<double>(d));
    return b;
}

}  // namespace

Engine::Engine(Detector& detector, ServeConfig cfg)
    : detector_(detector),
      cfg_(cfg),
      requests_(cfg.queue_capacity),
      batcher_(cfg.queue_capacity,
               [](const Request& head, const Request& candidate) {
                   return head.image.shape() == candidate.image.shape();
               }),
      post_q_(std::max<std::size_t>(2, cfg.queue_capacity / 4)) {
    if (cfg_.max_batch < 1) throw std::invalid_argument("ServeConfig: max_batch >= 1");
    if (cfg_.preprocess_workers < 1)
        throw std::invalid_argument("ServeConfig: preprocess_workers >= 1");
    if (cfg_.max_delay_ms < 0.0) cfg_.max_delay_ms = 0.0;
    if (obs::Registry* reg = cfg_.metrics) {
        for (const char* h :
             {"serve.latency.queue_ms", "serve.latency.preprocess_ms",
              "serve.latency.batch_wait_ms", "serve.latency.infer_ms",
              "serve.latency.postprocess_ms", "serve.latency.total_ms"})
            reg->define_histogram(h, latency_bounds());
        reg->define_histogram("serve.queue.depth", depth_bounds(cfg_.queue_capacity));
        std::vector<double> batch_buckets;
        for (int b = 1; b <= cfg_.max_batch; ++b)
            batch_buckets.push_back(static_cast<double>(b));
        reg->define_histogram("serve.batch.size", std::move(batch_buckets));
        // Replica precision gauge: 1 when this engine serves the quantized
        // int8 datapath, 0 for fp32 — lets a fleet dashboard split latency
        // by precision without scraping logs.
        reg->set("serve.precision_int8",
                 detector_.precision() == Precision::kInt8 ? 1.0 : 0.0);
        // Static activation arena of the quantized plan: the per-replica
        // feature-map memory a capacity planner must budget (0 for fp32
        // replicas, which have no static plan).
        reg->set("serve.activation_plan_bytes",
                 static_cast<double>(detector_.activation_plan_bytes()));
        // Certified |int8 - fp32| bound of the served datapath: 0 for fp32
        // replicas (exact), -1 when quantized but uncertified (E002) — a
        // dashboard can alert on replicas serving outside their error
        // budget without re-running the analysis.
        reg->set("quant.certified_error_bound", detector_.certified_error_bound());
    }
}

Engine::~Engine() { shutdown(true); }

void Engine::start() {
    // The lifecycle lock makes the state check and the thread spawns one
    // atomic step: a concurrent shutdown() cannot observe started_ == true
    // while the worker handles below are still being constructed.
    core::MutexLock lk(lifecycle_mu_);
    if (stopped_.load()) throw std::logic_error("serve::Engine: start() after shutdown");
    if (started_.exchange(true))
        throw std::logic_error("serve::Engine: start() called twice");
    for (int i = 0; i < cfg_.preprocess_workers; ++i)
        pre_workers_.emplace_back([this] { preprocess_loop(); });
    infer_worker_ = std::thread([this] { infer_loop(); });
    post_worker_ = std::thread([this] { post_loop(); });
}

std::future<DetectResult> Engine::submit(Tensor image) {
    const Shape& s = image.shape();
    if (s.n != 1 || s.c != 3)
        throw std::invalid_argument("serve::Engine::submit: expected one {1,3,h,w} "
                                    "image, got " +
                                    s.str());
    Request r;
    r.image = std::move(image);
    r.submit_tp = Clock::now();
    std::future<DetectResult> fut = r.promise.get_future();

    const bool accepted = cfg_.overflow == OverflowPolicy::kBlock
                              ? requests_.push(std::move(r))
                              : requests_.try_push(std::move(r));
    if (!accepted) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        if (obs::Registry* reg = cfg_.metrics) reg->add("serve.rejected");
        throw RejectedError(requests_.closed()
                                ? "serve::Engine: submit after shutdown"
                                : "serve::Engine: request queue full (kReject)");
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Registry* reg = cfg_.metrics) {
        reg->add("serve.requests");
        const double depth = static_cast<double>(requests_.size());
        reg->set("serve.queue.depth", depth);
        reg->observe("serve.queue.depth", depth);
    }
    return fut;
}

void Engine::preprocess_loop() {
    Request r;
    while (requests_.pop(r)) {
        if (discard_.load(std::memory_order_relaxed)) {
            r.promise.set_exception(std::make_exception_ptr(
                RejectedError("serve::Engine: shut down before preprocessing")));
            continue;
        }
        r.pre_start = Clock::now();
        {
            obs::Span span("serve/preprocess", "serve");
            const Shape& s = r.image.shape();
            if (cfg_.target_h > 0 && cfg_.target_w > 0 &&
                (s.h != cfg_.target_h || s.w != cfg_.target_w)) {
                // Decimations past 2x need the anti-aliased area filter —
                // bilinear's fixed 4 taps would skip source rows entirely.
                const bool heavy_down =
                    s.h >= 2 * cfg_.target_h && s.w >= 2 * cfg_.target_w;
                r.image = heavy_down
                              ? data::resize_area(r.image, cfg_.target_h, cfg_.target_w)
                              : data::resize_bilinear(r.image, cfg_.target_h,
                                                      cfg_.target_w);
            }
        }
        r.pre_end = Clock::now();
        observe("serve.latency.preprocess_ms", ms_between(r.pre_start, r.pre_end));
        if (std::optional<Request> rejected = batcher_.offer(std::move(r)))
            rejected->promise.set_exception(std::make_exception_ptr(
                RejectedError("serve::Engine: batcher closed mid-flight")));
    }
}

void Engine::infer_loop() {
    std::vector<Request> items;
    while (batcher_.pop_batch(cfg_.max_batch, cfg_.max_delay_ms, items)) {
        InferredBatch batch;
        batch.infer_start = Clock::now();
        const Shape item_shape = items[0].image.shape();
        Tensor input({static_cast<int>(items.size()), item_shape.c, item_shape.h,
                      item_shape.w});
        for (std::size_t i = 0; i < items.size(); ++i)
            std::memcpy(input.plane(static_cast<int>(i), 0), items[i].image.data(),
                        static_cast<std::size_t>(item_shape.per_item()) * sizeof(float));
        {
            obs::Span span("serve/infer", "serve");
            batch.raw = detector_.forward(input);
        }
        batch.infer_ms = ms_between(batch.infer_start, Clock::now());
        batch.items = std::move(items);
        items.clear();  // moved-from; pop_batch re-fills it next iteration
        batches_.fetch_add(1, std::memory_order_relaxed);
        observe("serve.latency.infer_ms", batch.infer_ms);
        if (obs::Registry* reg = cfg_.metrics) {
            reg->add("serve.batches");
            reg->observe("serve.batch.size", static_cast<double>(batch.items.size()));
        }
        if (std::optional<InferredBatch> rejected = post_q_.offer(std::move(batch))) {
            for (Request& r : rejected->items)
                r.promise.set_exception(std::make_exception_ptr(
                    RejectedError("serve::Engine: post queue closed mid-flight")));
        }
    }
}

void Engine::post_loop() {
    InferredBatch batch;
    while (post_q_.pop(batch)) {
        const Clock::time_point post_start = Clock::now();
        std::vector<detect::BBox> boxes;
        {
            obs::Span span("serve/postprocess", "serve");
            boxes = detector_.head().decode(batch.raw);
        }
        const Clock::time_point done = Clock::now();
        const double post_ms = ms_between(post_start, done);
        observe("serve.latency.postprocess_ms", post_ms);
        for (std::size_t i = 0; i < batch.items.size(); ++i) {
            Request& r = batch.items[i];
            DetectResult res;
            res.box = boxes[i];
            res.batch_size = static_cast<int>(batch.items.size());
            res.queue_ms = ms_between(r.submit_tp, r.pre_start);
            res.preprocess_ms = ms_between(r.pre_start, r.pre_end);
            res.batch_wait_ms = ms_between(r.pre_end, batch.infer_start);
            res.infer_ms = batch.infer_ms;
            res.postprocess_ms = post_ms;
            res.total_ms = ms_between(r.submit_tp, done);
            observe("serve.latency.queue_ms", res.queue_ms);
            observe("serve.latency.batch_wait_ms", res.batch_wait_ms);
            observe("serve.latency.total_ms", res.total_ms);
            completed_.fetch_add(1, std::memory_order_relaxed);
            if (obs::Registry* reg = cfg_.metrics) reg->add("serve.completed");
            r.promise.set_value(res);
        }
    }
}

void Engine::observe(const char* name, double value) {
    if (obs::Registry* reg = cfg_.metrics) reg->observe(name, value);
}

void Engine::publish_percentiles() {
    obs::Registry* reg = cfg_.metrics;
    if (!reg) return;
    for (const char* h : {"serve.latency.total_ms", "serve.latency.infer_ms",
                          "serve.latency.queue_ms"}) {
        const obs::HistogramSnapshot snap = reg->histogram(h);
        if (snap.count == 0) continue;
        reg->set(std::string(h) + ".p50", snap.percentile(0.50));
        reg->set(std::string(h) + ".p95", snap.percentile(0.95));
        reg->set(std::string(h) + ".p99", snap.percentile(0.99));
    }
}

void Engine::shutdown(bool drain) {
    core::MutexLock lk(lifecycle_mu_);
    if (stopped_.exchange(true)) return;
    if (!drain) discard_.store(true, std::memory_order_relaxed);
    requests_.close();
    if (started_) {
        for (std::thread& t : pre_workers_) t.join();
        batcher_.close();
        infer_worker_.join();
        post_q_.close();
        post_worker_.join();
    } else {
        // Never started: nothing will drain the queue — fail what's in it.
        Request r;
        while (requests_.pop(r))
            r.promise.set_exception(std::make_exception_ptr(
                RejectedError("serve::Engine: shut down before start()")));
    }
    publish_percentiles();
}

}  // namespace sky::serve
