// Dynamic batcher: coalesces pending requests into inference batches.
//
// The DAC-SDC pipeline (§6.2/§6.3) batches images before the DNN stage
// because a batched forward amortises per-invocation overhead and keeps the
// accelerator busy.  A serving system cannot wait for a full batch forever,
// so the batcher implements the standard dynamic-batching contract:
//
//   pop_batch(max_batch, max_delay_ms) blocks for the first item, then
//   collects more until EITHER the batch holds `max_batch` items OR
//   `max_delay_ms` has elapsed since collection started — whichever comes
//   first.  After close() the delay is skipped and whatever remains drains
//   immediately (graceful shutdown never strands an accepted request).
//
// An optional compatibility predicate bounds a batch: collection stops
// early at the first queued item that cannot ride with the batch head (the
// engine uses it to keep mixed input shapes out of one NCHW tensor).  The
// incompatible item stays queued and heads the next batch.
//
// q_/closed_ carry SKY_GUARDED_BY(mu_): the locking discipline is verified
// by Clang -Wthread-safety, not just documented (core/annotations.hpp).
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace sky::serve {

template <typename T>
class Batcher {
public:
    /// `compatible(head, candidate)` — may `candidate` join a batch whose
    /// first element is `head`?  Empty means "always".
    using Compatible = std::function<bool(const T&, const T&)>;

    explicit Batcher(std::size_t capacity, Compatible compatible = {})
        : capacity_(capacity ? capacity : 1), compatible_(std::move(compatible)) {}

    Batcher(const Batcher&) = delete;
    Batcher& operator=(const Batcher&) = delete;

    /// Blocking push (backpressure towards the preprocess stage); false iff
    /// closed.
    bool push(T&& item) SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        not_full_.wait(mu_, [&] {
            mu_.assert_held();
            return q_.size() < capacity_ || closed_;
        });
        if (closed_) return false;
        q_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Blocking push that hands the item back on failure (see
    /// BoundedQueue::offer): nullopt when accepted, the item when closed.
    [[nodiscard]] std::optional<T> offer(T&& item) SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        not_full_.wait(mu_, [&] {
            mu_.assert_held();
            return q_.size() < capacity_ || closed_;
        });
        if (closed_) return std::optional<T>(std::move(item));
        q_.push_back(std::move(item));
        not_empty_.notify_one();
        return std::nullopt;
    }

    /// Coalesce the next batch into `out` (cleared first).  Returns false
    /// only when the batcher is closed and drained.
    bool pop_batch(int max_batch, double max_delay_ms, std::vector<T>& out)
        SKY_EXCLUDES(mu_) {
        out.clear();
        if (max_batch < 1) max_batch = 1;
        core::MutexLock lk(mu_);
        not_empty_.wait(mu_, [&] {
            mu_.assert_held();
            return !q_.empty() || closed_;
        });
        if (q_.empty()) return false;

        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                  std::chrono::duration<double, std::milli>(max_delay_ms));
        out.push_back(std::move(q_.front()));
        q_.pop_front();
        not_full_.notify_one();

        while (static_cast<int>(out.size()) < max_batch) {
            if (q_.empty()) {
                if (closed_) break;  // drain mode: never wait on the delay
                if (!not_empty_.wait_until(mu_, deadline, [&] {
                        mu_.assert_held();
                        return !q_.empty() || closed_;
                    }))
                    break;  // max_delay elapsed with nothing more pending
                if (q_.empty()) {
                    if (closed_) break;
                    continue;  // spurious/late wake, deadline not yet hit
                }
            }
            if (compatible_ && !compatible_(out.front(), q_.front()))
                break;  // shape boundary: leave it to head the next batch
            out.push_back(std::move(q_.front()));
            q_.pop_front();
            not_full_.notify_one();
        }
        return true;
    }

    /// Refuse new items, wake all waiters, switch pop_batch to drain mode.
    void close() SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] std::size_t size() const SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        return q_.size();
    }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] bool closed() const SKY_EXCLUDES(mu_) {
        core::MutexLock lk(mu_);
        return closed_;
    }

private:
    const std::size_t capacity_;
    Compatible compatible_;
    mutable core::Mutex mu_;   // guards q_/closed_ + both cv waits; leaf lock,
                               // held across the compatibility predicate only
    core::CondVar not_empty_;  // signalled by push/close; predicate: !q_.empty() || closed_
    core::CondVar not_full_;   // signalled by pop_batch/close; predicate: q_.size() < capacity_ || closed_
    std::deque<T> q_ SKY_GUARDED_BY(mu_);
    bool closed_ SKY_GUARDED_BY(mu_) = false;
};

}  // namespace sky::serve
