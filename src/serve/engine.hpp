// Batched async inference serving engine — the Fig. 10 system design
// (§6.2/§6.3) as a real multi-threaded pipeline instead of a simulation.
//
// Requests enter a bounded MPMC queue (backpressure: block or reject), a
// preprocess stage resizes them to the model input, a dynamic batcher
// coalesces them (up to max_batch / max_delay_ms) into one NCHW tensor, a
// single inference worker runs the Detector, and a postprocess stage
// decodes boxes and fulfils the per-request futures.  Each stage runs on
// its own worker thread(s), so fetch/preprocess/inference/postprocess
// overlap exactly as in the paper's pipelined schedule:
//
//   submit() -> [request queue] -> preprocess xN -> [batcher] -> infer x1
//            -> [post queue] -> postprocess x1 -> promise
//
// Determinism: the inference worker calls Detector::detect-equivalent code
// on whatever batch the batcher formed; since batch forwards are bitwise
// equal to per-image forwards at any SKYNET_THREADS (see
// skynet/detector.hpp), results never depend on how requests were
// coalesced or how many workers ran.
//
// Observability: with ServeConfig::metrics set, the engine records
// per-request latency histograms (queue / preprocess / batch-wait / infer /
// postprocess / total), queue-depth and batch-size histograms, and
// publishes p50/p95/p99 gauges on shutdown.  With a TraceSession installed
// (obs::TraceGuard), every stage emits "serve"-category spans whose
// per-thread lanes draw the pipeline overlap in chrome://tracing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/mutex.hpp"
#include "obs/registry.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "skynet/detector.hpp"

namespace sky::serve {

/// What submit() does when the request queue is at capacity.
enum class OverflowPolicy {
    kBlock,   ///< wait for space (producers feel backpressure as latency)
    kReject,  ///< fail fast: submit() throws RejectedError
};

struct ServeConfig {
    int max_batch = 8;          ///< batcher coalescing limit
    double max_delay_ms = 2.0;  ///< max time the batcher waits to fill a batch
    std::size_t queue_capacity = 64;  ///< request-queue bound (backpressure)
    OverflowPolicy overflow = OverflowPolicy::kBlock;
    int preprocess_workers = 1;
    /// When both are > 0, the preprocess stage bilinear-resizes every input
    /// to {target_h, target_w} (the paper's resize step); otherwise inputs
    /// pass through and the batcher groups equal shapes.
    int target_h = 0;
    int target_w = 0;
    obs::Registry* metrics = nullptr;  ///< nullptr records nothing
};

/// Per-request outcome: the decoded box plus the latency breakdown of the
/// pipeline stages this request travelled through.
struct DetectResult {
    detect::BBox box;
    int batch_size = 0;          ///< size of the coalesced batch it rode in
    double queue_ms = 0.0;       ///< submit -> preprocess start
    double preprocess_ms = 0.0;
    double batch_wait_ms = 0.0;  ///< preprocess end -> batch inference start
    double infer_ms = 0.0;       ///< whole-batch forward time
    double postprocess_ms = 0.0;
    double total_ms = 0.0;       ///< submit -> result ready
};

/// Thrown by submit() under the kReject policy when the queue is full, and
/// for requests discarded by a non-draining shutdown.
class RejectedError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class Engine {
public:
    /// The engine borrows `detector`; it must outlive the engine and must
    /// not be used for inference elsewhere while the engine is running.
    explicit Engine(Detector& detector, ServeConfig cfg = {});
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Launch the stage workers.  submit() before start() is allowed — the
    /// requests queue up (and reject when the queue fills).
    void start() SKY_EXCLUDES(lifecycle_mu_);
    [[nodiscard]] bool running() const { return started_ && !stopped_; }

    /// Enqueue one {1,3,h,w} image; the future resolves when the request
    /// has flowed through the whole pipeline.  Throws RejectedError under
    /// kReject with a full queue, or after shutdown.
    [[nodiscard]] std::future<DetectResult> submit(Tensor image);

    /// Graceful shutdown.  With drain=true (default) every accepted request
    /// completes before the workers exit; with drain=false requests still
    /// waiting in the request queue fail with RejectedError (requests
    /// already past preprocess always complete).  Publishes the p50/p95/p99
    /// latency gauges.  Idempotent; concurrent callers serialise on the
    /// lifecycle lock, so when shutdown() returns the pipeline has drained.
    void shutdown(bool drain = true) SKY_EXCLUDES(lifecycle_mu_);

    [[nodiscard]] std::uint64_t submitted() const { return submitted_.load(); }
    [[nodiscard]] std::uint64_t completed() const { return completed_.load(); }
    [[nodiscard]] std::uint64_t rejected() const { return rejected_.load(); }
    [[nodiscard]] std::uint64_t batches() const { return batches_.load(); }

    [[nodiscard]] const ServeConfig& config() const { return cfg_; }

private:
    using Clock = std::chrono::steady_clock;

    struct Request {
        Tensor image;
        std::promise<DetectResult> promise;
        Clock::time_point submit_tp;
        Clock::time_point pre_start;
        Clock::time_point pre_end;
    };

    struct InferredBatch {
        std::vector<Request> items;
        Tensor raw;  ///< head map for the whole batch
        Clock::time_point infer_start;
        double infer_ms = 0.0;
    };

    void preprocess_loop();
    void infer_loop();
    void post_loop();
    void observe(const char* name, double value);
    void publish_percentiles();

    Detector& detector_;
    ServeConfig cfg_;

    BoundedQueue<Request> requests_;
    Batcher<Request> batcher_;
    BoundedQueue<InferredBatch> post_q_;

    // Serialises start()/shutdown() — without it a concurrent pair could
    // interleave the started_/stopped_ checks with the spawn/join below and
    // join threads that are still being constructed.  Guards
    // pre_workers_/infer_worker_/post_worker_; taken before the stage
    // queues' leaf locks (close() runs under it), never by the workers.
    core::Mutex lifecycle_mu_;
    std::vector<std::thread> pre_workers_ SKY_GUARDED_BY(lifecycle_mu_);
    std::thread infer_worker_ SKY_GUARDED_BY(lifecycle_mu_);
    std::thread post_worker_ SKY_GUARDED_BY(lifecycle_mu_);

    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<bool> discard_{false};
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> batches_{0};
};

}  // namespace sky::serve
