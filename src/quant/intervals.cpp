#include "quant/intervals.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>

#include "deploy/fold_bn.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/sequential.hpp"
#include "nn/shuffle.hpp"
#include "nn/space_to_depth.hpp"

namespace sky::quant {
namespace {

// FLT_MAX without pulling <cfloat> into the interval math: intervals run in
// double so the *bound* never overflows, and crossing this line is exactly
// "fp32 execution can produce Inf here".
constexpr double kFloatMax = 3.4028234663852886e38;

/// Union over output channels of the exact per-channel extreme sums
///   lo_oc = sum_k (w > 0 ? w * in.lo : w * in.hi) + b_oc   (and mirrored)
/// — the tightest interval any single dot product of length `k_per_oc`
/// against values in `in` can reach.  Zero padding makes 0 a reachable
/// input value, so padded convs widen `in` to include it.
Interval conv_interval(const Tensor& w, const Tensor* bias, int out_ch,
                       std::int64_t k_per_oc, bool include_zero, Interval in) {
    if (!in.known || out_ch <= 0 || k_per_oc <= 0) return {};
    const double ilo = include_zero ? std::min(in.lo, 0.0) : in.lo;
    const double ihi = include_zero ? std::max(in.hi, 0.0) : in.hi;
    Interval out{std::numeric_limits<double>::infinity(),
                 -std::numeric_limits<double>::infinity(), true};
    for (int oc = 0; oc < out_ch; ++oc) {
        double lo = 0.0, hi = 0.0;
        const std::int64_t base = static_cast<std::int64_t>(oc) * k_per_oc;
        for (std::int64_t k = 0; k < k_per_oc; ++k) {
            const double wv = w[base + k];
            lo += wv > 0 ? wv * ilo : wv * ihi;
            hi += wv > 0 ? wv * ihi : wv * ilo;
        }
        if (bias != nullptr && bias->size() > oc) {
            const double b = (*bias)[oc];
            lo += b;
            hi += b;
        }
        // A NaN weight poisons the whole channel; std::min/max would silently
        // drop it and claim a finite bound for outputs that are NaN.  Return
        // the blown interval instead so A001 fires.
        if (std::isnan(lo) || std::isnan(hi))
            return {-std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(), true};
        out.lo = std::min(out.lo, lo);
        out.hi = std::max(out.hi, hi);
    }
    return out;
}

/// Union over channels of the per-channel affine y = scale_c * x + shift_c.
Interval affine_interval(const std::vector<float>& scale,
                         const std::vector<float>& shift, Interval in) {
    if (!in.known || scale.empty()) return {};
    Interval out{std::numeric_limits<double>::infinity(),
                 -std::numeric_limits<double>::infinity(), true};
    for (std::size_t c = 0; c < scale.size(); ++c) {
        const double s = scale[c];
        const double t = c < shift.size() ? shift[c] : 0.0;
        const double a = s * in.lo + t, b = s * in.hi + t;
        if (std::isnan(a) || std::isnan(b))  // same NaN-dropping trap as conv
            return {-std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(), true};
        out.lo = std::min(out.lo, std::min(a, b));
        out.hi = std::max(out.hi, std::max(a, b));
    }
    return out;
}

double sig(double x) { return 1.0 / (1.0 + std::exp(-x)); }

void event(std::vector<ActEvent>* events, ActEvent::Kind kind, int node,
           std::string message, std::string hint) {
    if (events == nullptr) return;
    events->push_back({kind, node, std::move(message), std::move(hint)});
}

/// Activation transfer + the dead-clamp / always-saturating findings.  The
/// findings need a *bounded* known input (a blown interval already carries
/// an Inf/NaN report; an unknown one proves nothing).
Interval act_interval(const nn::Activation& act, Interval in, int node,
                      const std::string& where, std::vector<ActEvent>* events) {
    const bool checkable = in.known && !interval_blown(in);
    switch (act.act_kind()) {
        case nn::Act::kReLU:
            if (checkable && in.hi <= 0.0)
                event(events, ActEvent::Kind::kSaturating, node,
                      where + " always saturates: input " + interval_str(in) +
                          " is never positive, output is constant 0",
                      "the layer erases its features; drop it or fix the "
                      "producer's bias/scale");
            else if (checkable && in.lo >= 0.0)
                event(events, ActEvent::Kind::kDeadClamp, node,
                      where + " clamp never fires: input " + interval_str(in) +
                          " is already non-negative",
                      "dead activation; remove it (it costs a full tensor pass)");
            if (!in.known) return {};
            return {std::max(in.lo, 0.0), std::max(in.hi, 0.0), true};
        case nn::Act::kReLU6:
            if (checkable && in.lo >= 6.0)
                event(events, ActEvent::Kind::kSaturating, node,
                      where + " always saturates: input " + interval_str(in) +
                          " is never below the clip, output is constant 6",
                      "the layer erases its features; fix the producer's "
                      "bias/scale");
            else if (checkable && in.lo >= 0.0 && in.hi <= 6.0)
                event(events, ActEvent::Kind::kDeadClamp, node,
                      where + " clamp never fires: input " + interval_str(in) +
                          " already lies in [0, 6]",
                      "dead activation; remove it (it costs a full tensor pass)");
            if (!in.known) return {};
            return {std::clamp(in.lo, 0.0, 6.0), std::clamp(in.hi, 0.0, 6.0), true};
        case nn::Act::kLeaky: {
            if (!in.known) return {};
            const double s = act.leaky_slope();
            const auto f = [s](double x) { return x > 0 ? x : s * x; };
            // Monotone for s >= 0; a negative slope needs the 0 crossing too.
            double lo = std::min(f(in.lo), f(in.hi));
            double hi = std::max(f(in.lo), f(in.hi));
            if (in.lo < 0.0 && in.hi > 0.0) {
                lo = std::min(lo, 0.0);
                hi = std::max(hi, 0.0);
            }
            return {lo, hi, true};
        }
        case nn::Act::kSigmoid:
            // Bounded even for an unknown or blown input: sigmoid maps the
            // whole extended real line into [0, 1].
            if (!in.known || interval_blown(in)) return {0.0, 1.0, true};
            return {sig(in.lo), sig(in.hi), true};
    }
    return {};
}

/// Fold a Sequential: each stage feeds the next; events anchor to the
/// enclosing graph node with the inner layer named in the message.
Interval sequential_interval(const nn::Sequential& seq, Interval in, int node,
                             std::vector<ActEvent>* events) {
    Interval v = in;
    for (std::size_t i = 0; i < seq.size(); ++i)
        v = module_value_interval(seq.at(i), v, node, events);
    return v;
}

/// Propagate through a graph used *as a module* (residual / fire / shuffle
/// blocks in the backbone zoo): same dataflow as the top-level loop, but the
/// input node takes the enclosing interval and events anchor to the
/// enclosing node.
Interval graph_interval(const nn::Graph& g, Interval in, int node,
                        std::vector<ActEvent>* events) {
    const std::size_t n = g.node_count();
    std::vector<Interval> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::vector<int>& ins = g.node_inputs(i);
        switch (g.node_kind(i)) {
            case nn::Graph::NodeKind::kInput:
                vals[i] = in;
                break;
            case nn::Graph::NodeKind::kConcat: {
                Interval v{std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(), !ins.empty()};
                for (const int src : ins) {
                    const Interval& u = vals[static_cast<std::size_t>(src)];
                    v.known = v.known && u.known;
                    v.lo = std::min(v.lo, u.lo);
                    v.hi = std::max(v.hi, u.hi);
                }
                vals[i] = v.known ? v : Interval{};
                break;
            }
            case nn::Graph::NodeKind::kAdd: {
                Interval v{0.0, 0.0, !ins.empty()};
                for (const int src : ins) {
                    const Interval& u = vals[static_cast<std::size_t>(src)];
                    v.known = v.known && u.known;
                    v.lo += u.lo;
                    v.hi += u.hi;
                }
                vals[i] = v.known ? v : Interval{};
                break;
            }
            case nn::Graph::NodeKind::kModule: {
                const nn::Module* m = g.node_module(i);
                if (m == nullptr || ins.empty()) break;
                vals[i] = module_value_interval(
                    *m, vals[static_cast<std::size_t>(ins[0])], node, events);
                break;
            }
        }
    }
    const int out = g.output_node();
    return out >= 0 && static_cast<std::size_t>(out) < n
               ? vals[static_cast<std::size_t>(out)]
               : Interval{};
}

}  // namespace

bool interval_blown(const Interval& v) {
    return v.known &&
           (v.lo < -kFloatMax || v.hi > kFloatMax || std::isnan(v.lo) || std::isnan(v.hi));
}

std::string interval_str(const Interval& v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%.4g, %.4g]", v.lo, v.hi);
    return buf;
}

Interval module_value_interval(const nn::Module& m, Interval in, int node,
                               std::vector<ActEvent>* events) {
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&m))
        return conv_interval(conv->weight(), conv->has_bias() ? &conv->bias() : nullptr,
                             conv->out_channels(),
                             static_cast<std::int64_t>(conv->in_channels()) *
                                 conv->kernel() * conv->kernel(),
                             conv->padding() > 0, in);
    if (const auto* pw = dynamic_cast<const nn::PWConv1*>(&m))
        return conv_interval(pw->weight(), pw->has_bias() ? &pw->bias() : nullptr,
                             pw->out_channels(),
                             static_cast<std::int64_t>(pw->in_channels()) / pw->groups(),
                             false, in);
    if (const auto* dw = dynamic_cast<const nn::DWConv3*>(&m))
        return conv_interval(dw->weight(), nullptr, dw->channels(), 9, true, in);
    if (const auto* fc = dynamic_cast<const nn::Linear*>(&m)) {
        const std::int64_t k = fc->weight().shape().count() /
                               std::max<std::int64_t>(fc->weight().shape().n, 1);
        return conv_interval(fc->weight(), &fc->bias(),
                             static_cast<int>(fc->weight().shape().n), k, false, in);
    }
    if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(&m)) {
        std::vector<float> scale, shift;
        bn->fused_affine(scale, shift);
        return affine_interval(scale, shift, in);
    }
    if (const auto* cb = dynamic_cast<const deploy::ChannelBias*>(&m)) {
        if (!in.known || cb->values().empty()) return {};
        const auto [mn, mx] =
            std::minmax_element(cb->values().begin(), cb->values().end());
        return {in.lo + *mn, in.hi + *mx, true};
    }
    if (const auto* act = dynamic_cast<const nn::Activation*>(&m))
        return act_interval(*act, in, node, m.name(), events);
    if (const auto* seq = dynamic_cast<const nn::Sequential*>(&m))
        return sequential_interval(*seq, in, node, events);
    if (const auto* sub = dynamic_cast<const nn::Graph*>(&m))
        return graph_interval(*sub, in, node, events);
    // Pure data movement / selection / averaging preserves the value set's
    // bounds.
    if (dynamic_cast<const nn::MaxPool2*>(&m) != nullptr ||
        dynamic_cast<const nn::GlobalAvgPool*>(&m) != nullptr ||
        dynamic_cast<const nn::SpaceToDepth*>(&m) != nullptr ||
        dynamic_cast<const nn::ChannelShuffle*>(&m) != nullptr ||
        dynamic_cast<const deploy::Identity*>(&m) != nullptr)
        return in;
    return {};  // no transfer function: the analysis loses track, soundly
}

IntervalAnalysis propagate_value_intervals(const nn::Graph& g, const QuantConfig& cfg) {
    IntervalAnalysis a;
    const std::size_t n = g.node_count();
    a.values.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::vector<int>& ins = g.node_inputs(i);
        switch (g.node_kind(i)) {
            case nn::Graph::NodeKind::kInput:
                a.values[i] = {static_cast<double>(cfg.input_lo),
                               static_cast<double>(cfg.input_hi), true};
                break;
            case nn::Graph::NodeKind::kConcat: {
                Interval v{std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(), !ins.empty()};
                for (const int in : ins) {
                    const Interval& u = a.values[static_cast<std::size_t>(in)];
                    v.known = v.known && u.known;
                    v.lo = std::min(v.lo, u.lo);
                    v.hi = std::max(v.hi, u.hi);
                }
                a.values[i] = v.known ? v : Interval{};
                break;
            }
            case nn::Graph::NodeKind::kAdd: {
                Interval v{0.0, 0.0, !ins.empty()};
                for (const int in : ins) {
                    const Interval& u = a.values[static_cast<std::size_t>(in)];
                    v.known = v.known && u.known;
                    v.lo += u.lo;
                    v.hi += u.hi;
                }
                a.values[i] = v.known ? v : Interval{};
                break;
            }
            case nn::Graph::NodeKind::kModule: {
                const nn::Module* m = g.node_module(i);
                if (m == nullptr || ins.empty()) break;
                a.values[i] = module_value_interval(
                    *m, a.values[static_cast<std::size_t>(ins[0])],
                    static_cast<int>(i), &a.events);
                break;
            }
        }
    }
    return a;
}

}  // namespace sky::quant
