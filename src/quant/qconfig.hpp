// Quantization scheme configuration for the integer inference engine.
//
// QuantConfig replaces the positional QEngineConfig braces — named fields
// with named defaults plus with_* chaining, so call sites read as what they
// mean:
//
//   det.quantize(quant::QuantConfig{}
//                    .with_bits(9, 11)
//                    .with_fm_abs_max(8.0f)
//                    .with_input_range(0.0f, 1.0f));
//
// The first three fields keep the old positional order, so legacy
// `{9, 11, 8.0f}` braces still aggregate-initialise correctly.  (The
// transitional QEngineConfig spelling is gone; every call site spells
// QuantConfig.)
//
// `input_lo` / `input_hi` declare the value range of the tensors that will
// be fed to run() (images are [0, 1] here).  The engine's range propagation
// uses it to prove which layers can execute on the packed u8 x s8 GEMM
// path; inputs outside the declared range are still answered bit-true via
// the reference integer path (docs/QUANTIZATION.md).
#pragma once

namespace sky::quant {

/// How QEngine::run executes the compiled integer graph.
enum class QExecution {
    kAuto,       ///< packed int8 GEMM where provably exact, reference otherwise
    kInt8,       ///< strict: throw where the int8 path cannot be used
    kReference,  ///< scalar interpreter everywhere (the correctness oracle)
};

[[nodiscard]] const char* qexecution_name(QExecution e);

struct QuantConfig {
    int fm_bits = 9;          ///< feature-map word width
    int weight_bits = 11;     ///< weight word width
    float fm_abs_max = 8.0f;  ///< calibrated FM range; sets the shared format

    float input_lo = 0.0f;  ///< declared minimum of run() inputs
    float input_hi = 1.0f;  ///< declared maximum of run() inputs

    QExecution execution = QExecution::kAuto;

    /// Let layers the integer engine cannot compile (grouped 1x1 conv,
    /// exotic activations, ...) run their float module between dequantize /
    /// requantize steps instead of failing compilation.  Downgrades
    /// verify::check_qmodel's Q002 from error to warning.
    bool fp32_fallback = false;

    /// Per-layer certified error budget: when > 0, verify::analyze compares
    /// every layer's certified |int8 - fp32| bound (quant/qerror.hpp)
    /// against it and emits the E-series diagnostics (E001 budget exceeded,
    /// E003 dominant contributors, E004 infeasible bit-width).  0 disables
    /// the budget checks; the certified bound itself is always computed.
    float error_budget = 0.0f;

    /// Make Detector::quantize reject the scheme (verify::VerifyError) when
    /// the certified output error bound exceeds `error_budget` or cannot be
    /// established.  Off: the report and E-diagnostics carry the verdict.
    bool strict_error_budget = false;

    [[nodiscard]] QuantConfig with_fm_bits(int bits) const {
        QuantConfig c = *this;
        c.fm_bits = bits;
        return c;
    }
    [[nodiscard]] QuantConfig with_weight_bits(int bits) const {
        QuantConfig c = *this;
        c.weight_bits = bits;
        return c;
    }
    [[nodiscard]] QuantConfig with_bits(int fm, int weight) const {
        QuantConfig c = *this;
        c.fm_bits = fm;
        c.weight_bits = weight;
        return c;
    }
    [[nodiscard]] QuantConfig with_fm_abs_max(float m) const {
        QuantConfig c = *this;
        c.fm_abs_max = m;
        return c;
    }
    [[nodiscard]] QuantConfig with_input_range(float lo, float hi) const {
        QuantConfig c = *this;
        c.input_lo = lo;
        c.input_hi = hi;
        return c;
    }
    [[nodiscard]] QuantConfig with_execution(QExecution e) const {
        QuantConfig c = *this;
        c.execution = e;
        return c;
    }
    [[nodiscard]] QuantConfig with_fp32_fallback(bool on = true) const {
        QuantConfig c = *this;
        c.fp32_fallback = on;
        return c;
    }
    [[nodiscard]] QuantConfig with_error_budget(float budget) const {
        QuantConfig c = *this;
        c.error_budget = budget;
        return c;
    }
    [[nodiscard]] QuantConfig with_strict_error_budget(bool on = true) const {
        QuantConfig c = *this;
        c.strict_error_budget = on;
        return c;
    }
};

/// `execution` after applying the SKYNET_QENGINE environment override
/// ("ref" forces kReference — the rollback lever; "auto" or unset keeps the
/// config's value).  Read at QEngine construction.
[[nodiscard]] QExecution resolved_execution(const QuantConfig& cfg);

}  // namespace sky::quant
