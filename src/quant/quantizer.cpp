#include "quant/quantizer.hpp"

#include <algorithm>

namespace sky::quant {

ParamSnapshot::ParamSnapshot(nn::Module& net) {
    net.collect_params(params_);
    saved_.reserve(params_.size());
    for (const auto& p : params_) saved_.push_back(*p.value);
}

void ParamSnapshot::restore() {
    for (std::size_t i = 0; i < params_.size(); ++i) *params_[i].value = saved_[i];
}

std::int64_t quantize_weights(nn::Module& net, int bits) {
    std::vector<nn::ParamRef> params;
    net.collect_params(params);
    std::int64_t elements = 0;
    for (auto& p : params) {
        const FixedPointFormat fmt = choose_format(bits, p.value->abs_max());
        quantize_tensor(*p.value, fmt);
        elements += p.value->size();
    }
    return elements * bits / 8;
}

nn::FmHook make_fm_hook(int bits) {
    return [bits](Tensor& t) {
        const FixedPointFormat fmt = choose_format(bits, t.abs_max());
        quantize_tensor(t, fmt);
    };
}

nn::FmHook make_static_fm_hook(int bits, float abs_max) {
    const FixedPointFormat fmt = choose_format(bits, abs_max);
    return [fmt](Tensor& t) { quantize_tensor(t, fmt); };
}

float calibrate_fm_abs_max(nn::Module& net, const Tensor& calibration) {
    float max_abs = 0.0f;
    {
        nn::FmHookGuard guard([&max_abs](Tensor& t) {
            max_abs = std::max(max_abs, t.abs_max());
        });
        net.set_training(false);
        (void)net.forward(calibration);
    }
    return max_abs;
}

std::vector<QuantScheme> table7_schemes() {
    return {{0, 0, 0}, {1, 9, 11}, {2, 9, 10}, {3, 8, 11}, {4, 8, 10}};
}

}  // namespace sky::quant
