// Bit-true integer inference engine — the FPGA datapath of §6.4 executed in
// software with genuine integer arithmetic, not float emulation.
//
// A BN-folded Graph (see deploy::fold_graph_bn) is compiled into integer
// form: every feature map lives in ONE shared fixed-point format (fm_bits
// total, fm_frac fractional — the single-buffer constraint of the IP-shared
// accelerator), every layer's weights are quantised per-layer to
// weight_bits, convolutions accumulate in int64 and requantise back to the
// FM grid with round-to-nearest and saturation.  ReLU6's clip constant is
// exact on the grid.
//
// The engine is the executable specification of what the Table 7 schemes
// actually compute; tests validate it against the float network at high
// bit-widths and against the FM-hook emulation for trend.
#pragma once

#include "nn/graph.hpp"
#include "quant/fixed_point.hpp"

namespace sky::quant {

struct QEngineConfig {
    int fm_bits = 9;       ///< feature-map word width
    int weight_bits = 11;  ///< weight word width
    float fm_abs_max = 8.0f;  ///< calibrated FM range; sets the shared format
};

/// Integer feature map: int32 payload on the shared FM grid.
struct QTensor {
    Shape shape;
    std::vector<std::int32_t> data;
};

class QEngine {
public:
    /// Compile `graph` (BN layers must already be folded).  Throws
    /// std::invalid_argument if an unsupported/unfolded layer remains.
    QEngine(const nn::Graph& graph, const QEngineConfig& cfg);

    /// Quantise `input` to the FM grid, run the integer pass, return the
    /// output dequantised to float (every value lies on the FM grid).
    [[nodiscard]] Tensor run(const Tensor& input) const;

    [[nodiscard]] const FixedPointFormat& fm_format() const { return fm_fmt_; }
    [[nodiscard]] const QEngineConfig& config() const { return cfg_; }
    /// Total integer-weight bytes (the deployed model size).
    [[nodiscard]] std::int64_t weight_bytes() const;

private:
    struct QLayer {
        enum class Op {
            kInput,
            kConv,     // generic kxk (covers PW as k=1)
            kDwConv3,
            kPool,
            kRelu,
            kRelu6,
            kReorder,
            kBias,     // ChannelBias from depthwise folding
            kIdentity,
            kConcat,
            kAdd,
        };
        Op op = Op::kIdentity;
        std::vector<int> inputs;
        // Conv parameters.
        int in_ch = 0, out_ch = 0, k = 0, stride = 1, pad = 0;
        std::vector<std::int32_t> weights;  // integer weights
        std::vector<std::int64_t> bias;     // in accumulator scale (fm+w frac)
        int reorder_block = 2;
    };

    [[nodiscard]] QTensor execute(const QLayer& l,
                                  const std::vector<QTensor>& outputs) const;

    QEngineConfig cfg_;
    FixedPointFormat fm_fmt_;
    int weight_frac_shared_ = 0;  // unused: weights are per-layer scaled
    std::vector<QLayer> layers_;
    std::vector<int> weight_frac_;  // per compiled layer
    int output_node_ = 0;
};

}  // namespace sky::quant
