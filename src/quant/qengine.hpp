// Bit-true integer inference engine — the FPGA datapath of §6.4 executed in
// software with genuine integer arithmetic, not float emulation.
//
// A BN-folded Graph (see deploy::fold_graph_bn) is compiled into integer
// form: every feature map lives in ONE shared fixed-point format (fm_bits
// total, fm_frac fractional — the single-buffer constraint of the IP-shared
// accelerator), every layer's weights are quantised per-layer to
// weight_bits, convolutions accumulate exactly and requantise back to the
// FM grid with round-to-nearest and saturation.  ReLU6's clip constant is
// exact on the grid.
//
// Execution planning (docs/QUANTIZATION.md): compilation propagates the
// declared input value range through the graph on the FM grid; a
// convolution whose input span provably fits 8 unsigned bits runs on the
// packed u8 x s16 GEMM engine (core/qgemm.hpp) with the zero-point
// correction folded into its bias — weights up to 15 bits are native s16
// taps, one GEMM pass.  Everything else runs the scalar reference
// interpreter, which is also the correctness oracle: both paths compute the
// SAME integers (the int8 path is an exact refactoring of the reference
// accumulation, pinned by tests/test_qgemm.cpp), and a run whose input
// leaves the declared range falls back to the reference path wholesale, so
// run() is bit-true for every input.  ReLU/ReLU6 nodes that directly follow
// a convolution fuse into its requantization clamp (provably equal to
// clamp-after-saturate on the grid).
//
// Determinism: integer arithmetic end to end — results are bitwise
// invariant to thread count, SIMD level, and batch composition, which is
// the contract sky::serve's batch coalescing relies on.
#pragma once

#include "core/qgemm.hpp"
#include "deploy/memory_plan.hpp"
#include "nn/graph.hpp"
#include "quant/fixed_point.hpp"
#include "quant/qconfig.hpp"
#include "quant/qreport.hpp"

namespace sky::quant {

/// Integer feature map: int32 payload on the shared FM grid.
struct QTensor {
    Shape shape;
    std::vector<std::int32_t> data;
};

class QEngine {
public:
    /// Compile `graph` (BN layers must already be folded; the graph should
    /// be in eval mode — Detector::quantize guarantees both).  Throws
    /// std::invalid_argument if an unsupported/unfolded layer remains and
    /// cfg.fp32_fallback is off, or — under QExecution::kInt8 — if any conv
    /// cannot run on the packed int8 path.  The graph reference is retained
    /// for fp32-fallback layers and must outlive the engine.
    QEngine(nn::Graph& graph, const QuantConfig& cfg);

    /// Quantise `input` to the FM grid, run the integer pass, return the
    /// output dequantised to float (every value lies on the FM grid).
    [[nodiscard]] Tensor run(const Tensor& input);

    [[nodiscard]] const FixedPointFormat& fm_format() const { return fm_fmt_; }
    [[nodiscard]] const QuantConfig& config() const { return cfg_; }
    /// Resolved execution mode (SKYNET_QENGINE env applied).
    [[nodiscard]] QExecution execution() const { return exec_; }
    /// Per-layer compilation plan — what Detector::quantize returns.
    [[nodiscard]] const QuantReport& report() const { return report_; }
    /// Total integer-weight bytes (the deployed model size).
    [[nodiscard]] std::int64_t weight_bytes() const;

    /// Static activation memory plan (deploy::plan_tensors over the compiled
    /// layer program) for inputs of `input` shape.  Computed lazily and
    /// cached — run() replans only when the input shape changes — and
    /// mirrored into report().activation_plan.  run() executes out of
    /// exactly this plan's arena slots.
    const deploy::MemoryPlan& plan_activations(const Shape& input);
    /// Arena slot buffers that had to grow (capacity allocations) across all
    /// run() calls so far.  Zero growth between runs at a fixed input shape
    /// is the allocation-free steady state bench_serve gauges.
    [[nodiscard]] std::int64_t alloc_events() const { return alloc_events_; }
    /// Peak live activation bytes observed during the last run() — equals
    /// plan_activations(shape).peak_bytes exactly (the plan is an exact
    /// static model of run()'s claim/release schedule, pinned by
    /// tests/test_verify.cpp).
    [[nodiscard]] std::int64_t measured_peak_bytes() const {
        return measured_peak_bytes_;
    }

private:
    struct QLayer {
        enum class Op {
            kInput,
            kConv,     // generic kxk (covers PW as k=1)
            kDwConv3,
            kPool,
            kRelu,
            kRelu6,
            kReorder,
            kBias,     // ChannelBias from depthwise folding
            kIdentity,
            kConcat,
            kAdd,
            kFp32,     // dequantize -> float module -> requantize fallback
        };
        Op op = Op::kIdentity;
        QImpl impl = QImpl::kMemory;
        std::vector<int> inputs;
        // Conv parameters.
        int in_ch = 0, out_ch = 0, k = 0, stride = 1, pad = 0;
        std::vector<std::int32_t> weights;  // full-precision integer weights
        std::vector<std::int64_t> bias;     // in accumulator scale (fm+w frac)
        int reorder_block = 2;
        int shift = 0;  // requantization shift (= weight frac bits)
        // Requantization clamp: [grid_lo, grid_hi] by default, tightened by a
        // fused ReLU/ReLU6 (equal to activation-after-saturate on the grid).
        std::int32_t clamp_lo = 0, clamp_hi = 0;
        // Packed int8 plan (impl == kQGemm).
        core::QPackedA apack;                 // prepacked s16 weight panels
        std::vector<std::int64_t> bias_corr;  // bias + zero_point * rowsum(w)
        std::int32_t zero_point = 0;          // u8 operand stores x - zero_point
        bool dw32 = false;  // dwconv can accumulate in int32 (vector fast path)
        bool rq32 = false;  // biased accumulator + rounding offset fit int32
        // A trailing single-consumer ChannelBias folded into this conv's
        // executor (carries the bias node's clamp, itself possibly fused).
        std::vector<std::int64_t> post_bias;
        std::int32_t post_lo = 0, post_hi = 0;
        nn::Module* fallback = nullptr;       // op == kFp32
    };

    /// Execute a non-conv layer into `y` (one of the arena-backed outputs_
    /// entries); inputs are read from outputs_.
    void execute(const QLayer& l, QTensor& y);
    void execute_conv(const QLayer& l, const QTensor& x, QTensor& y, bool allow_qgemm);
    void execute_dwconv(const QLayer& l, const QTensor& x, QTensor& y) const;

    /// Statically inferred output shape of every layer for `input`.
    [[nodiscard]] std::vector<Shape> layer_shapes(const Shape& input) const;
    /// (Re)compute the liveness plan + release schedule when the input
    /// shape changed since the last run.
    void ensure_plan(const Shape& input);

    QuantConfig cfg_;
    QExecution exec_ = QExecution::kAuto;  // resolved (env applied)
    FixedPointFormat fm_fmt_;
    std::int32_t grid_lo_ = 0, grid_hi_ = 0;  // FM grid bounds
    std::int32_t six_ = 0;                    // ReLU6 clip on the grid
    std::int32_t in_lo_ = 0, in_hi_ = 0;      // declared input range on the grid
    bool any_qgemm_ = false;
    std::vector<QLayer> layers_;
    int output_node_ = 0;
    QuantReport report_;
    // Per-run scratch, reused across layers and batch items.
    core::QPackedB bpanel_;
    std::vector<std::int32_t> acc_;
    // Arena execution state: run() checks each node's buffer out of its
    // planned slot, executes, and checks it back in after the node's last
    // reader — vector moves (pointer swaps), no allocation once the slot
    // capacities have converged.
    deploy::MemoryPlan plan_;
    Shape plan_shape_{};
    bool has_plan_ = false;
    std::vector<QTensor> outputs_;                     // per-node views
    std::vector<std::vector<std::int32_t>> slot_bufs_; // parked slot storage
    std::vector<std::vector<int>> releases_;           // nodes dying after step i
    std::int64_t alloc_events_ = 0;
    std::int64_t live_bytes_ = 0;
    std::int64_t measured_peak_bytes_ = 0;
};

}  // namespace sky::quant
