#include "quant/ranges.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/qgemm.hpp"
#include "deploy/fold_bn.hpp"
#include "nn/activations.hpp"
#include "nn/pooling.hpp"
#include "nn/space_to_depth.hpp"

namespace sky::quant {

GridSpec make_grid_spec(const QuantConfig& cfg) {
    if (cfg.fm_bits < 2 || cfg.fm_bits > 32 || cfg.weight_bits < 2 ||
        cfg.weight_bits > 32)
        throw std::invalid_argument(
            "QEngine: fm_bits/weight_bits must be in [2, 32] (see verify::check_qmodel "
            "Q005)");
    if (!(cfg.input_lo <= cfg.input_hi))
        throw std::invalid_argument("QEngine: input_lo must be <= input_hi");
    GridSpec spec;
    spec.fm = choose_format(cfg.fm_bits, cfg.fm_abs_max);
    const int fm_bits = spec.fm.total_bits;
    spec.grid_lo = saturate(std::numeric_limits<std::int64_t>::min(), fm_bits);
    spec.grid_hi = saturate(std::numeric_limits<std::int64_t>::max(), fm_bits);
    spec.six = spec.fm.frac_bits >= 60
                   ? spec.grid_hi
                   : saturate(static_cast<std::int64_t>(6) << spec.fm.frac_bits,
                              fm_bits);
    const double inv_step = 1.0 / spec.fm.step();
    spec.in_lo = saturate(
        std::llround(static_cast<double>(cfg.input_lo) * inv_step), fm_bits);
    spec.in_hi = saturate(
        std::llround(static_cast<double>(cfg.input_hi) * inv_step), fm_bits);
    return spec;
}

std::vector<GridRange> propagate_grid_ranges(const nn::Graph& g,
                                             const GridSpec& spec) {
    const GridRange full{spec.grid_lo, spec.grid_hi};
    std::vector<GridRange> range(g.node_count(), full);
    for (std::size_t i = 0; i < g.node_count(); ++i) {
        const std::vector<int>& ins = g.node_inputs(i);
        const auto in_range = [&](std::size_t slot) {
            return range[static_cast<std::size_t>(ins[slot])];
        };
        switch (g.node_kind(i)) {
            case nn::Graph::NodeKind::kInput:
                range[i] = {spec.in_lo, spec.in_hi};
                continue;
            case nn::Graph::NodeKind::kConcat: {
                GridRange r = in_range(0);
                for (const int in : ins) {
                    r.lo = std::min(r.lo, range[static_cast<std::size_t>(in)].lo);
                    r.hi = std::max(r.hi, range[static_cast<std::size_t>(in)].hi);
                }
                range[i] = r;
                continue;
            }
            case nn::Graph::NodeKind::kAdd:
                range[i] = full;
                continue;
            case nn::Graph::NodeKind::kModule:
                break;
        }
        const nn::Module* m = g.node_module(i);
        if (m == nullptr || ins.empty()) continue;
        if (const auto* act = dynamic_cast<const nn::Activation*>(m)) {
            const GridRange r = in_range(0);
            if (act->act_kind() == nn::Act::kReLU)
                range[i] = {std::max(r.lo, 0), std::max(r.hi, 0)};
            else if (act->act_kind() == nn::Act::kReLU6)
                range[i] = {std::clamp(r.lo, 0, spec.six),
                            std::clamp(r.hi, 0, spec.six)};
            // Exotic activations run as fp32 islands and requantize onto
            // the grid — the full-grid default already covers them.
        } else if (dynamic_cast<const nn::MaxPool2*>(m) != nullptr ||
                   dynamic_cast<const nn::SpaceToDepth*>(m) != nullptr ||
                   dynamic_cast<const deploy::Identity*>(m) != nullptr) {
            range[i] = in_range(0);
        }
        // Everything else (conv / dwconv / bias / bn / unknown) keeps the
        // full-grid default: its output requantizes onto the grid.
    }
    return range;
}

std::int64_t quantized_abs_max(const Tensor& w, const FixedPointFormat& fmt) {
    const double inv_step = 1.0 / fmt.step();
    std::int64_t wmax = 0;
    for (std::int64_t i = 0; i < w.size(); ++i)
        wmax = std::max<std::int64_t>(
            wmax, std::abs(static_cast<std::int64_t>(saturate(
                      static_cast<std::int64_t>(std::llround(w[i] * inv_step)),
                      fmt.total_bits))));
    return wmax;
}

ConvProof prove_qgemm(int K, int pad, int weight_bits, std::int64_t wmax,
                      GridRange in) {
    ConvProof p;
    // With zero padding the offset value 0 must itself be encodable.
    p.zero_point = pad > 0 ? std::min(in.lo, 0) : in.lo;
    p.span = static_cast<std::int64_t>(in.hi) - p.zero_point;
    p.acc_bound = static_cast<std::int64_t>(K) * wmax * p.span;
    if (p.span > 255)
        p.reason = "input span " + std::to_string(p.span) + " exceeds u8";
    else if (weight_bits > 15)
        p.reason = "weight_bits > 15 (s16 operand bound)";
    else if (K > core::qgemm_max_k() || p.acc_bound >= (std::int64_t{1} << 31))
        p.reason = "int32 accumulator bound K * max|w| * span exceeded";
    else
        p.eligible = true;
    return p;
}

}  // namespace sky::quant
