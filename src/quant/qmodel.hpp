// Quantised evaluation drivers: run a trained detector / classifier under a
// (feature-map bits, weight bits) scheme without destroying the float
// master weights.  Used by Table 7, Fig. 2a and the FPGA deployment path.
#pragma once

#include "data/synth_classification.hpp"
#include "data/synth_detection.hpp"
#include "detect/yolo_head.hpp"
#include "quant/quantizer.hpp"

namespace sky::quant {

/// Mean IoU of the detector under the scheme (0 bits = float on that axis).
/// fm_abs_max > 0 switches the feature-map hook to a single static format
/// covering [-fm_abs_max, fm_abs_max] (the shared-buffer FPGA regime);
/// fm_abs_max == 0 uses idealised per-tensor calibration.
[[nodiscard]] double detector_iou_quantized(nn::Module& net, const detect::YoloHead& head,
                                            const data::DetectionBatch& val, int fm_bits,
                                            int weight_bits, float fm_abs_max = 0.0f);

/// Classification accuracy under the scheme (same semantics).
[[nodiscard]] double classifier_acc_quantized(nn::Module& net,
                                              const data::ClassificationBatch& val,
                                              int fm_bits, int weight_bits,
                                              float fm_abs_max = 0.0f);

}  // namespace sky::quant
