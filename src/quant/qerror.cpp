#include "quant/qerror.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "deploy/fold_bn.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/sequential.hpp"
#include "nn/shuffle.hpp"
#include "nn/space_to_depth.hpp"
#include "quant/fixed_point.hpp"

namespace sky::quant {
namespace {

/// One node's transfer result before the enclosure cap is applied.
struct Transfer {
    ErrBound e;               ///< known => bound holds pre-cap
    double introduced = 0.0;  ///< fresh error added at this node (sup over ch)
    double lip = 1.0;         ///< scalar input->output gain (the E003 ranking)
    std::string lost;         ///< why tracking was lost when !e.known
};

ErrBound uniform(double b) { return {true, b, {}}; }

Transfer lost(std::string why) {
    Transfer t;
    t.lost = std::move(why);
    return t;
}

bool finite(const ErrBound& e) {
    if (!std::isfinite(e.bound)) return false;
    for (const double v : e.per_ch)
        if (!std::isfinite(v)) return false;
    return true;
}

/// Collapse a per-channel refinement whose length does not match the
/// consumer's channel count (reorders / unknown producers) to its sup.
ErrBound align(const ErrBound& e, std::size_t channels) {
    if (!e.known || e.per_ch.size() == channels) return e;
    return uniform(e.bound);
}

void set_bound_from_channels(ErrBound& e) {
    e.bound = 0.0;
    for (const double v : e.per_ch) e.bound = std::max(e.bound, v);
}

/// Grid-clamp saturation of the integer side versus the fp32 enclosure: the
/// engine clamps this node's output into [clamp_lo, clamp_hi] grid units
/// while the float value roams `v` — dist(v, clamp range) bounds the extra
/// error the clamp can introduce.
double sat_term(Interval v, std::int32_t clamp_lo, std::int32_t clamp_hi, double s) {
    const double lo = clamp_lo * s, hi = clamp_hi * s;
    return std::max({0.0, v.hi - hi, lo - v.lo});
}

/// Quantized conv/dwconv/pwconv transfer: the engine computes
///   clamp(round_shift(sum_t w_hat_t * x_hat_t + b_hat))
/// exactly in integers, so versus the fp32 conv the error decomposes into
///   sum_t |w_hat| * e_in(ic)      incoming error through quantized weights
/// + sum_t |w_hat - w| * |x|_max   exact per-weight rounding, fp32 magnitude
/// + |b_hat - b|                   bias rounding at accumulator scale
/// + s/2                           requantization round-to-nearest
/// + sat                           grid clamp versus the fp32 interval
/// per output channel (the zero-point rowsum correction is exact).
Transfer qconv_err(const Tensor& w, const Tensor* bias, int out_ch, int in_ch,
                   int taps_per_ic, bool depthwise, const ErrBound& ein_raw,
                   Interval vin, Interval vout, const GridSpec& spec,
                   const QuantConfig& cfg) {
    if (!ein_raw.known) return lost("input error bound unknown");
    if (!vin.known || !vout.known) return lost("fp32 value interval unknown");
    const double xmax = std::max(std::abs(vin.lo), std::abs(vin.hi));
    if (!std::isfinite(xmax)) return lost("fp32 input interval unbounded");
    const float wmax = w.abs_max();
    if (!std::isfinite(wmax)) return lost("non-finite weights");
    const ErrBound ein = align(ein_raw, static_cast<std::size_t>(in_ch));
    const FixedPointFormat wf = choose_format(cfg.weight_bits, wmax);
    const double wstep = wf.step();
    const double winv = 1.0 / wstep;
    const double s = spec.fm.step();
    const double acc_scale = std::ldexp(1.0, wf.frac_bits + spec.fm.frac_bits);
    const double sat = sat_term(vout, spec.grid_lo, spec.grid_hi, s);
    const std::int64_t k_per_oc =
        static_cast<std::int64_t>(depthwise ? 1 : in_ch) * taps_per_ic;

    Transfer t;
    t.e.known = true;
    t.e.per_ch.resize(static_cast<std::size_t>(out_ch));
    t.lip = 0.0;
    double worst_fresh = 0.0;
    for (int oc = 0; oc < out_ch; ++oc) {
        const std::int64_t base = static_cast<std::int64_t>(oc) * k_per_oc;
        double carried = 0.0, rounding = 0.0, lip_oc = 0.0;
        for (std::int64_t k = 0; k < k_per_oc; ++k) {
            const double wv = w[base + k];
            if (!std::isfinite(wv)) return lost("non-finite weights");
            const double wq =
                saturate(std::llround(wv * winv), wf.total_bits) * wstep;
            const std::size_t ic = depthwise
                                       ? static_cast<std::size_t>(oc)
                                       : static_cast<std::size_t>(k / taps_per_ic);
            carried += std::abs(wq) * ein.channel(ic);
            rounding += std::abs(wq - wv);
            lip_oc += std::abs(wq);
        }
        double berr = 0.0;
        if (bias != nullptr && bias->size() > oc) {
            const double b = (*bias)[oc];
            if (!std::isfinite(b)) return lost("non-finite bias");
            berr = std::abs(std::llround(b * acc_scale) / acc_scale - b);
        }
        const double fresh = rounding * xmax + berr + 0.5 * s + sat;
        t.e.per_ch[static_cast<std::size_t>(oc)] = carried + fresh;
        worst_fresh = std::max(worst_fresh, fresh);
        t.lip = std::max(t.lip, lip_oc);
    }
    set_bound_from_channels(t.e);
    t.introduced = worst_fresh;
    if (!finite(t.e)) return lost("error bound overflowed");
    return t;
}

/// Error gain of a module executed on the fp32 fallback path: the engine
/// dequantizes (exact — grid values are exactly representable), runs the
/// *original* float module, and requantizes.  Between dequantize and
/// requantize the module's own real Lipschitz behaviour is the whole story:
/// no weight rounding enters.  `vin` is threaded so Sequential stages keep
/// sound enclosures for their stage inputs.
Transfer fallback_err(const nn::Module& m, const ErrBound& ein, Interval vin);

Transfer fallback_conv(const Tensor& w, int out_ch, int in_ch, int taps_per_ic,
                       bool depthwise, const ErrBound& ein_raw) {
    if (!ein_raw.known) return lost("input error bound unknown");
    const ErrBound ein = align(ein_raw, static_cast<std::size_t>(in_ch));
    const std::int64_t k_per_oc =
        static_cast<std::int64_t>(depthwise ? 1 : in_ch) * taps_per_ic;
    Transfer t;
    t.e.known = true;
    t.e.per_ch.resize(static_cast<std::size_t>(out_ch));
    t.lip = 0.0;
    for (int oc = 0; oc < out_ch; ++oc) {
        const std::int64_t base = static_cast<std::int64_t>(oc) * k_per_oc;
        double carried = 0.0, lip_oc = 0.0;
        for (std::int64_t k = 0; k < k_per_oc; ++k) {
            const double wv = w[base + k];
            if (!std::isfinite(wv)) return lost("non-finite weights");
            const std::size_t ic = depthwise
                                       ? static_cast<std::size_t>(oc)
                                       : static_cast<std::size_t>(k / taps_per_ic);
            carried += std::abs(wv) * ein.channel(ic);
            lip_oc += std::abs(wv);
        }
        t.e.per_ch[static_cast<std::size_t>(oc)] = carried;
        t.lip = std::max(t.lip, lip_oc);
    }
    set_bound_from_channels(t.e);
    if (!finite(t.e)) return lost("error bound overflowed");
    return t;
}

Transfer fallback_err(const nn::Module& m, const ErrBound& ein, Interval vin) {
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&m))
        return fallback_conv(conv->weight(), conv->out_channels(), conv->in_channels(),
                             conv->kernel() * conv->kernel(), false, ein);
    if (const auto* pw = dynamic_cast<const nn::PWConv1*>(&m)) {
        if (pw->groups() == 1)
            return fallback_conv(pw->weight(), pw->out_channels(), pw->in_channels(),
                                 1, false, ein);
        // Grouped 1x1: per output channel sum|w| over its group's inputs;
        // the group's input channels see at most the sup of the incoming
        // per-channel errors, so the uniform bound is sound.
        const int per_group = pw->in_channels() / std::max(pw->groups(), 1);
        if (!ein.known) return lost("input error bound unknown");
        Transfer t;
        t.e.known = true;
        t.e.per_ch.resize(static_cast<std::size_t>(pw->out_channels()));
        t.lip = 0.0;
        for (int oc = 0; oc < pw->out_channels(); ++oc) {
            double lip_oc = 0.0;
            const std::int64_t base = static_cast<std::int64_t>(oc) * per_group;
            for (int k = 0; k < per_group; ++k) {
                const double wv = pw->weight()[base + k];
                if (!std::isfinite(wv)) return lost("non-finite weights");
                lip_oc += std::abs(wv);
            }
            t.e.per_ch[static_cast<std::size_t>(oc)] = lip_oc * ein.bound;
            t.lip = std::max(t.lip, lip_oc);
        }
        set_bound_from_channels(t.e);
        if (!finite(t.e)) return lost("error bound overflowed");
        return t;
    }
    if (const auto* dw = dynamic_cast<const nn::DWConv3*>(&m))
        return fallback_conv(dw->weight(), dw->channels(), dw->channels(), 9, true,
                             ein);
    if (const auto* fc = dynamic_cast<const nn::Linear*>(&m)) {
        if (!ein.known) return lost("input error bound unknown");
        const auto rows = static_cast<int>(fc->weight().shape().n);
        const std::int64_t k = fc->weight().shape().count() /
                               std::max<std::int64_t>(rows, 1);
        double lip = 0.0;
        for (int r = 0; r < rows; ++r) {
            double row = 0.0;
            for (std::int64_t j = 0; j < k; ++j) {
                const double wv = fc->weight()[r * k + j];
                if (!std::isfinite(wv)) return lost("non-finite weights");
                row += std::abs(wv);
            }
            lip = std::max(lip, row);
        }
        Transfer t;
        t.e = uniform(lip * ein.bound);
        t.lip = lip;
        if (!finite(t.e)) return lost("error bound overflowed");
        return t;
    }
    if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(&m)) {
        if (!ein.known) return lost("input error bound unknown");
        std::vector<float> scale, shift;
        bn->fused_affine(scale, shift);
        const ErrBound in = align(ein, scale.size());
        Transfer t;
        t.e.known = true;
        t.e.per_ch.resize(scale.size());
        t.lip = 0.0;
        for (std::size_t c = 0; c < scale.size(); ++c) {
            const double sc = std::abs(scale[c]);
            if (!std::isfinite(sc)) return lost("non-finite BN scale");
            t.e.per_ch[c] = sc * in.channel(c);
            t.lip = std::max(t.lip, sc);
        }
        set_bound_from_channels(t.e);
        if (!finite(t.e)) return lost("error bound overflowed");
        return t;
    }
    if (const auto* act = dynamic_cast<const nn::Activation*>(&m)) {
        switch (act->act_kind()) {
            case nn::Act::kReLU:
            case nn::Act::kReLU6: {  // 1-Lipschitz clamps on both sides
                if (!ein.known) return lost("input error bound unknown");
                Transfer t;
                t.e = ein;
                return t;
            }
            case nn::Act::kLeaky: {
                if (!ein.known) return lost("input error bound unknown");
                const double g =
                    std::max(1.0, static_cast<double>(std::abs(act->leaky_slope())));
                Transfer t;
                t.e = ein;
                for (double& v : t.e.per_ch) v *= g;
                t.e.bound *= g;
                t.lip = g;
                return t;
            }
            case nn::Act::kSigmoid: {
                // 1/4-Lipschitz, and both sides land in [0, 1] — bounded
                // even when the incoming error is unknown.
                Transfer t;
                t.e = uniform(ein.known ? std::min(0.25 * ein.bound, 1.0) : 1.0);
                t.lip = 0.25;
                return t;
            }
        }
        return lost("unknown activation kind");
    }
    if (const auto* seq = dynamic_cast<const nn::Sequential*>(&m)) {
        Transfer t;
        t.e = ein;
        t.lip = 1.0;
        Interval v = vin;
        for (std::size_t i = 0; i < seq->size(); ++i) {
            const Transfer stage = fallback_err(seq->at(i), t.e, v);
            if (!stage.e.known)
                return lost(seq->at(i).name() + ": " + stage.lost);
            t.lip *= stage.lip;
            t.e = stage.e;
            v = module_value_interval(seq->at(i), v, 0, nullptr);
        }
        return t;
    }
    if (dynamic_cast<const deploy::ChannelBias*>(&m) != nullptr ||
        dynamic_cast<const nn::MaxPool2*>(&m) != nullptr ||
        dynamic_cast<const nn::GlobalAvgPool*>(&m) != nullptr ||
        dynamic_cast<const deploy::Identity*>(&m) != nullptr) {
        // Same exact shift / 1-Lipschitz selection / averaging on both sides.
        if (!ein.known) return lost("input error bound unknown");
        Transfer t;
        t.e = ein;
        return t;
    }
    if (dynamic_cast<const nn::SpaceToDepth*>(&m) != nullptr ||
        dynamic_cast<const nn::ChannelShuffle*>(&m) != nullptr) {
        // Channel permutation: values move but never change — keep the sup.
        if (!ein.known) return lost("input error bound unknown");
        Transfer t;
        t.e = uniform(ein.bound);
        return t;
    }
    if (const auto* sub = dynamic_cast<const nn::Graph*>(&m)) {
        // A graph used as a module (residual / fire / shuffle blocks) runs
        // wholly inside the fp32 fallback island: no rounding happens inside,
        // the incoming error just flows through the block's dataflow.  The
        // path gain is tracked per node so the composed lip stays the sup
        // over paths (only the E003 ranking consumes it).
        if (!ein.known) return lost("input error bound unknown");
        const std::size_t n = sub->node_count();
        std::vector<ErrBound> e(n);
        std::vector<Interval> v(n);
        std::vector<double> gain(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::vector<int>& ins = sub->node_inputs(i);
            switch (sub->node_kind(i)) {
                case nn::Graph::NodeKind::kInput:
                    e[i] = ein;
                    v[i] = vin;
                    gain[i] = 1.0;
                    break;
                case nn::Graph::NodeKind::kConcat: {
                    if (ins.empty()) return lost("inner concat without inputs");
                    double b = 0.0;
                    Interval u{std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity(), true};
                    for (const int src : ins) {
                        const auto si = static_cast<std::size_t>(src);
                        if (!e[si].known) return lost("inner concat input unknown");
                        b = std::max(b, e[si].bound);
                        u.known = u.known && v[si].known;
                        u.lo = std::min(u.lo, v[si].lo);
                        u.hi = std::max(u.hi, v[si].hi);
                        gain[i] = std::max(gain[i], gain[si]);
                    }
                    e[i] = uniform(b);
                    v[i] = u.known ? u : Interval{};
                    break;
                }
                case nn::Graph::NodeKind::kAdd: {
                    if (ins.empty()) return lost("inner add without inputs");
                    double b = 0.0;
                    Interval u{0.0, 0.0, true};
                    for (const int src : ins) {
                        const auto si = static_cast<std::size_t>(src);
                        if (!e[si].known) return lost("inner add input unknown");
                        b += e[si].bound;
                        u.known = u.known && v[si].known;
                        u.lo += v[si].lo;
                        u.hi += v[si].hi;
                        gain[i] += gain[si];
                    }
                    e[i] = uniform(b);
                    v[i] = u.known ? u : Interval{};
                    break;
                }
                case nn::Graph::NodeKind::kModule: {
                    const nn::Module* mm = sub->node_module(i);
                    if (mm == nullptr || ins.empty())
                        return lost("inner graph node without a module");
                    const auto src = static_cast<std::size_t>(ins[0]);
                    const Transfer stage = fallback_err(*mm, e[src], v[src]);
                    if (!stage.e.known) return lost(mm->name() + ": " + stage.lost);
                    e[i] = stage.e;
                    gain[i] = gain[src] * stage.lip;
                    v[i] = module_value_interval(*mm, v[src], 0, nullptr);
                    break;
                }
            }
        }
        const int out = sub->output_node();
        if (out < 0 || static_cast<std::size_t>(out) >= n)
            return lost("inner graph has no output node");
        Transfer t;
        t.e = e[static_cast<std::size_t>(out)];
        const double go = gain[static_cast<std::size_t>(out)];
        t.lip = std::isfinite(go) ? go : 1.0;
        if (!finite(t.e)) return lost("error bound overflowed");
        return t;
    }
    return lost("no error transfer function for module '" + m.name() + "'");
}

/// The per-module transfer on the *engine* datapath (quantized kinds get
/// the exact rounding model; everything else is modelled as the fp32
/// fallback sandwich dequantize -> module -> requantize + grid clamp).
Transfer module_err(const nn::Module& m, const ErrBound& ein, Interval vin,
                    Interval vout, const GridSpec& spec, const QuantConfig& cfg) {
    const double s = spec.fm.step();
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&m))
        return qconv_err(conv->weight(), conv->has_bias() ? &conv->bias() : nullptr,
                         conv->out_channels(), conv->in_channels(),
                         conv->kernel() * conv->kernel(), false, ein, vin, vout,
                         spec, cfg);
    if (const auto* pw = dynamic_cast<const nn::PWConv1*>(&m)) {
        if (pw->groups() == 1)
            return qconv_err(pw->weight(), pw->has_bias() ? &pw->bias() : nullptr,
                             pw->out_channels(), pw->in_channels(), 1, false, ein,
                             vin, vout, spec, cfg);
        // grouped 1x1 runs the fp32 fallback path (see below)
    } else if (const auto* dw = dynamic_cast<const nn::DWConv3*>(&m)) {
        return qconv_err(dw->weight(), nullptr, dw->channels(), dw->channels(), 9,
                         true, ein, vin, vout, spec, cfg);
    } else if (dynamic_cast<const nn::MaxPool2*>(&m) != nullptr) {
        // Integer max of grid values versus float max: 1-Lipschitz in the
        // sup norm per channel, stays on the grid — nothing fresh.
        if (!ein.known) return lost("input error bound unknown");
        Transfer t;
        t.e = ein;
        return t;
    } else if (const auto* act = dynamic_cast<const nn::Activation*>(&m)) {
        if (act->act_kind() == nn::Act::kReLU) {
            if (!ein.known) return lost("input error bound unknown");
            if (!vout.known) return lost("fp32 value interval unknown");
            // clamp(x, 0, grid_hi) vs max(x, 0): 1-Lipschitz plus the top
            // clamp the float side does not have.
            const double top = std::max(0.0, vout.hi - spec.grid_hi * s);
            Transfer t;
            t.e = ein;
            for (double& v : t.e.per_ch) v += top;
            t.e.bound += top;
            t.introduced = top;
            if (!finite(t.e)) return lost("error bound overflowed");
            return t;
        }
        if (act->act_kind() == nn::Act::kReLU6) {
            if (!ein.known) return lost("input error bound unknown");
            // clamp(x, 0, six) vs clamp(x, 0, 6): the exact grid offset of
            // the quantized clip point.
            const double off = std::abs(spec.six * s - 6.0);
            Transfer t;
            t.e = ein;
            for (double& v : t.e.per_ch) v += off;
            t.e.bound += off;
            t.introduced = off;
            return t;
        }
        // leaky / sigmoid: fp32 fallback sandwich (below)
    } else if (const auto* s2d = dynamic_cast<const nn::SpaceToDepth*>(&m)) {
        (void)s2d;  // exact integer reorder — values move, errors move with them
        if (!ein.known) return lost("input error bound unknown");
        Transfer t;
        t.e = uniform(ein.bound);
        return t;
    } else if (const auto* cb = dynamic_cast<const deploy::ChannelBias*>(&m)) {
        // Integer add of the grid-rounded bias, then clamp: the incoming
        // error plus each channel's exact bias rounding plus saturation.
        if (!ein.known) return lost("input error bound unknown");
        if (!vout.known) return lost("fp32 value interval unknown");
        const std::vector<float>& b = cb->values();
        const double sat = sat_term(vout, spec.grid_lo, spec.grid_hi, s);
        const ErrBound in = align(ein, b.size());
        Transfer t;
        t.e.known = true;
        t.e.per_ch.resize(b.size());
        double worst = 0.0;
        for (std::size_t c = 0; c < b.size(); ++c) {
            if (!std::isfinite(b[c])) return lost("non-finite bias");
            const double rnd = std::abs(std::llround(b[c] / s) * s - b[c]);
            t.e.per_ch[c] = in.channel(c) + rnd + sat;
            worst = std::max(worst, rnd + sat);
        }
        set_bound_from_channels(t.e);
        t.introduced = worst;
        if (!finite(t.e)) return lost("error bound overflowed");
        return t;
    } else if (dynamic_cast<const deploy::Identity*>(&m) != nullptr) {
        if (!ein.known) return lost("input error bound unknown");
        Transfer t;
        t.e = ein;
        return t;
    }
    // Everything else executes the fp32 fallback sandwich: the module's own
    // gain, then one requantization rounding plus the grid clamp.
    Transfer t = fallback_err(m, ein, vin);
    if (!t.e.known) return t;
    if (!vout.known) return lost("fp32 value interval unknown");
    const double fresh = 0.5 * s + sat_term(vout, spec.grid_lo, spec.grid_hi, s);
    for (double& v : t.e.per_ch) v += fresh;
    t.e.bound += fresh;
    t.introduced = fresh;
    if (!finite(t.e)) return lost("error bound overflowed");
    return t;
}

}  // namespace

std::vector<std::pair<int, double>> ErrorAnalysis::dominant(std::size_t k) const {
    std::vector<std::pair<int, double>> top;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i].contribution > 0.0)
            top.emplace_back(static_cast<int>(i), nodes[i].contribution);
    std::sort(top.begin(), top.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (top.size() > k) top.resize(k);
    return top;
}

int min_frac_bits_for_budget(double bound, double budget, int frac_bits) {
    if (budget <= 0.0 || bound <= budget || !std::isfinite(bound)) return frac_bits;
    return frac_bits + static_cast<int>(std::ceil(std::log2(bound / budget)));
}

ErrorAnalysis certify_error(const nn::Graph& g, const QuantConfig& cfg,
                            const IntervalAnalysis& vals,
                            const std::vector<GridRange>& grid) {
    ErrorAnalysis ea;
    const std::size_t n = g.node_count();
    ea.nodes.resize(n);
    ea.output_node = g.output_node();

    GridSpec spec;
    try {
        spec = make_grid_spec(cfg);
    } catch (const std::invalid_argument&) {
        ea.first_unknown_node = 0;
        ea.unknown_reason = "degenerate quantization scheme (see Q005)";
        return ea;
    }
    if (vals.values.size() != n || grid.size() != n) {
        ea.first_unknown_node = 0;
        ea.unknown_reason = "value/grid domains unavailable";
        return ea;
    }
    const double s = spec.fm.step();

    std::vector<double> lip(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        const std::vector<int>& ins = g.node_inputs(i);
        Transfer t;
        switch (g.node_kind(i)) {
            case nn::Graph::NodeKind::kInput: {
                // llround to the grid (half a step) plus saturation where
                // the declared range spills past the representable grid.
                const double sat =
                    std::max({0.0, cfg.input_hi - spec.grid_hi * s,
                              spec.grid_lo * s - cfg.input_lo});
                t.e = uniform(0.5 * s + sat);
                t.introduced = t.e.bound;
                break;
            }
            case nn::Graph::NodeKind::kConcat: {
                // Channel concatenation: per-channel vectors concatenate;
                // any uniform input widens the result to the sup (its
                // channel count is not tracked).
                bool all_known = !ins.empty(), per_ch = true;
                for (const int in : ins) {
                    const ErrBound& u = ea.nodes[static_cast<std::size_t>(in)].out;
                    all_known = all_known && u.known;
                    per_ch = per_ch && !u.per_ch.empty();
                }
                if (!all_known) {
                    t = lost("input error bound unknown");
                    break;
                }
                t.e.known = true;
                if (per_ch) {
                    for (const int in : ins) {
                        const ErrBound& u = ea.nodes[static_cast<std::size_t>(in)].out;
                        t.e.per_ch.insert(t.e.per_ch.end(), u.per_ch.begin(),
                                          u.per_ch.end());
                    }
                    set_bound_from_channels(t.e);
                } else {
                    double b = 0.0;
                    for (const int in : ins)
                        b = std::max(b, ea.nodes[static_cast<std::size_t>(in)].out.bound);
                    t.e = uniform(b);
                }
                break;
            }
            case nn::Graph::NodeKind::kAdd: {
                // Integer add of grid values is exact; errors add, then the
                // grid clamp saturates versus the fp32 sum.
                bool all_known = !ins.empty(), aligned = true;
                std::size_t ch = 0;
                for (const int in : ins) {
                    const ErrBound& u = ea.nodes[static_cast<std::size_t>(in)].out;
                    all_known = all_known && u.known;
                    if (u.per_ch.empty() || (ch != 0 && u.per_ch.size() != ch))
                        aligned = false;
                    ch = std::max(ch, u.per_ch.size());
                }
                if (!all_known) {
                    t = lost("input error bound unknown");
                    break;
                }
                const Interval vout = vals.values[i];
                if (!vout.known) {
                    t = lost("fp32 value interval unknown");
                    break;
                }
                const double sat = sat_term(vout, spec.grid_lo, spec.grid_hi, s);
                t.e.known = true;
                if (aligned && ch > 0) {
                    t.e.per_ch.assign(ch, sat);
                    for (const int in : ins) {
                        const ErrBound& u = ea.nodes[static_cast<std::size_t>(in)].out;
                        for (std::size_t c = 0; c < ch; ++c)
                            t.e.per_ch[c] += u.per_ch[c];
                    }
                    set_bound_from_channels(t.e);
                } else {
                    double b = sat;
                    for (const int in : ins)
                        b += ea.nodes[static_cast<std::size_t>(in)].out.bound;
                    t.e = uniform(b);
                }
                t.introduced = sat;
                if (!finite(t.e)) t = lost("error bound overflowed");
                break;
            }
            case nn::Graph::NodeKind::kModule: {
                const nn::Module* m = g.node_module(i);
                if (m == nullptr || ins.empty()) {
                    t = lost("module node without a module/input");
                    break;
                }
                const auto src = static_cast<std::size_t>(ins[0]);
                t = module_err(*m, ea.nodes[src].out, vals.values[src],
                               vals.values[i], spec, cfg);
                break;
            }
        }

        // The trivial two-sided enclosure: the engine value provably lies in
        // the grid range, the fp32 value in its interval — their worst-case
        // distance caps any propagated bound and stops exponential growth.
        NodeError& ne = ea.nodes[i];
        const Interval v = vals.values[i];
        double cap = std::numeric_limits<double>::infinity();
        if (v.known) {
            const double c = std::max(0.0, std::max(grid[i].hi * s - v.lo,
                                                    v.hi - grid[i].lo * s));
            if (std::isfinite(c)) cap = c;
        }
        if (t.e.known) {
            ne.out = std::move(t.e);
            if (ne.out.bound > cap) {
                for (double& x : ne.out.per_ch) x = std::min(x, cap);
                ne.out.bound = std::min(ne.out.bound, cap);
            }
            ne.introduced = t.introduced;
        } else if (std::isfinite(cap)) {
            ne.out = uniform(cap);  // tracking lost, but both sides enclosed
            ne.introduced = cap;
        } else if (ea.first_unknown_node < 0) {
            ea.first_unknown_node = static_cast<int>(i);
            ea.unknown_reason = t.lost;
        }
        lip[i] = std::isfinite(t.lip) ? t.lip : 1.0;
    }

    // Backward gain pass: how much of each node's freshly-introduced error
    // survives to the output (the E003 "dominant contributor" ranking).
    std::vector<double> gain(n, 0.0);
    const auto out = static_cast<std::size_t>(ea.output_node);
    if (out < n) {
        gain[out] = 1.0;
        for (std::size_t r = n; r-- > 0;) {
            if (gain[r] <= 0.0) continue;
            for (const int in : g.node_inputs(r))
                gain[static_cast<std::size_t>(in)] += gain[r] * lip[r];
        }
        ea.output_known = ea.nodes[out].out.known;
        ea.output_bound = ea.nodes[out].out.bound;
    }
    for (std::size_t i = 0; i < n; ++i) {
        ea.nodes[i].gain = gain[i];
        ea.nodes[i].contribution = ea.nodes[i].introduced * gain[i];
    }
    return ea;
}

ErrorAnalysis certify_error(const nn::Graph& g, const QuantConfig& cfg) {
    std::vector<GridRange> grid;
    try {
        grid = propagate_grid_ranges(g, make_grid_spec(cfg));
    } catch (const std::invalid_argument&) {
        ErrorAnalysis ea;
        ea.nodes.resize(g.node_count());
        ea.output_node = g.output_node();
        ea.first_unknown_node = 0;
        ea.unknown_reason = "degenerate quantization scheme (see Q005)";
        return ea;
    }
    return certify_error(g, cfg, propagate_value_intervals(g, cfg), grid);
}

}  // namespace sky::quant
