#include "quant/qengine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "deploy/fold_bn.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/space_to_depth.hpp"

namespace sky::quant {
namespace {

std::int32_t saturate(std::int64_t v, int bits) {
    const std::int64_t hi = (1LL << (bits - 1)) - 1;
    const std::int64_t lo = -(1LL << (bits - 1));
    return static_cast<std::int32_t>(std::clamp(v, lo, hi));
}

/// Round-to-nearest arithmetic right shift (ties away from zero).
std::int64_t round_shift(std::int64_t v, int shift) {
    if (shift <= 0) return v << (-shift);
    const std::int64_t half = 1LL << (shift - 1);
    return v >= 0 ? (v + half) >> shift : -((-v + half) >> shift);
}

std::vector<std::int32_t> quantize_weights_to_int(const Tensor& w,
                                                  const FixedPointFormat& fmt) {
    std::vector<std::int32_t> out(static_cast<std::size_t>(w.size()));
    const double inv_step = 1.0 / fmt.step();
    for (std::int64_t i = 0; i < w.size(); ++i)
        out[static_cast<std::size_t>(i)] = saturate(
            static_cast<std::int64_t>(std::llround(w[i] * inv_step)), fmt.total_bits);
    return out;
}

}  // namespace

QEngine::QEngine(const nn::Graph& graph, const QEngineConfig& cfg)
    : cfg_(cfg), fm_fmt_(choose_format(cfg.fm_bits, cfg.fm_abs_max)) {
    output_node_ = graph.output_node();
    layers_.resize(graph.node_count());
    weight_frac_.assign(graph.node_count(), 0);
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
        QLayer& l = layers_[i];
        l.inputs = graph.node_inputs(i);
        switch (graph.node_kind(i)) {
            case nn::Graph::NodeKind::kInput:
                l.op = QLayer::Op::kInput;
                continue;
            case nn::Graph::NodeKind::kConcat:
                l.op = QLayer::Op::kConcat;
                continue;
            case nn::Graph::NodeKind::kAdd:
                l.op = QLayer::Op::kAdd;
                continue;
            case nn::Graph::NodeKind::kModule:
                break;
        }
        const nn::Module* m = graph.node_module(i);
        if (auto* conv = dynamic_cast<const nn::Conv2d*>(m)) {
            l.op = QLayer::Op::kConv;
            l.in_ch = conv->in_channels();
            l.out_ch = conv->out_channels();
            l.k = conv->kernel();
            l.stride = conv->stride();
            l.pad = conv->padding();
            const FixedPointFormat wf =
                choose_format(cfg.weight_bits, conv->weight().abs_max());
            weight_frac_[i] = wf.frac_bits;
            l.weights = quantize_weights_to_int(conv->weight(), wf);
            l.bias.assign(static_cast<std::size_t>(l.out_ch), 0);
            if (conv->has_bias()) {
                const double scale = std::ldexp(1.0, wf.frac_bits + fm_fmt_.frac_bits);
                for (int oc = 0; oc < l.out_ch; ++oc)
                    l.bias[static_cast<std::size_t>(oc)] = static_cast<std::int64_t>(
                        std::llround(conv->bias()[oc] * scale));
            }
        } else if (auto* pw = dynamic_cast<const nn::PWConv1*>(m)) {
            if (pw->groups() != 1)
                throw std::invalid_argument("QEngine: grouped 1x1 conv unsupported");
            l.op = QLayer::Op::kConv;
            l.in_ch = pw->in_channels();
            l.out_ch = pw->out_channels();
            l.k = 1;
            l.stride = 1;
            l.pad = 0;
            const FixedPointFormat wf =
                choose_format(cfg.weight_bits, pw->weight().abs_max());
            weight_frac_[i] = wf.frac_bits;
            l.weights = quantize_weights_to_int(pw->weight(), wf);
            l.bias.assign(static_cast<std::size_t>(l.out_ch), 0);
            if (pw->has_bias()) {
                const double scale = std::ldexp(1.0, wf.frac_bits + fm_fmt_.frac_bits);
                for (int oc = 0; oc < l.out_ch; ++oc)
                    l.bias[static_cast<std::size_t>(oc)] = static_cast<std::int64_t>(
                        std::llround(pw->bias()[oc] * scale));
            }
        } else if (auto* dw = dynamic_cast<const nn::DWConv3*>(m)) {
            l.op = QLayer::Op::kDwConv3;
            l.in_ch = l.out_ch = dw->channels();
            l.k = 3;
            const FixedPointFormat wf =
                choose_format(cfg.weight_bits, dw->weight().abs_max());
            weight_frac_[i] = wf.frac_bits;
            l.weights = quantize_weights_to_int(dw->weight(), wf);
        } else if (dynamic_cast<const nn::MaxPool2*>(m)) {
            l.op = QLayer::Op::kPool;
        } else if (auto* act = dynamic_cast<const nn::Activation*>(m)) {
            if (act->act_kind() == nn::Act::kReLU)
                l.op = QLayer::Op::kRelu;
            else if (act->act_kind() == nn::Act::kReLU6)
                l.op = QLayer::Op::kRelu6;
            else
                throw std::invalid_argument("QEngine: unsupported activation");
        } else if (auto* s2d = dynamic_cast<const nn::SpaceToDepth*>(m)) {
            l.op = QLayer::Op::kReorder;
            l.reorder_block = s2d->block();
        } else if (auto* cb = dynamic_cast<const deploy::ChannelBias*>(m)) {
            // The folded BN shift, expressed on the FM grid.
            l.op = QLayer::Op::kBias;
            l.bias.reserve(cb->values().size());
            const double inv_step = 1.0 / fm_fmt_.step();
            for (float b : cb->values())
                l.bias.push_back(static_cast<std::int64_t>(std::llround(b * inv_step)));
        } else if (dynamic_cast<const deploy::Identity*>(m)) {
            l.op = QLayer::Op::kIdentity;
        } else if (m->kind() == "bn") {
            throw std::invalid_argument(
                "QEngine: fold batch norms before compiling (deploy::fold_graph_bn)");
        } else {
            throw std::invalid_argument("QEngine: unsupported layer " + m->name());
        }
    }
}

QTensor QEngine::execute(const QLayer& l, const std::vector<QTensor>& outputs) const {
    const int fm_bits = fm_fmt_.total_bits;
    switch (l.op) {
        case QLayer::Op::kInput:
            throw std::logic_error("QEngine: input node executed");
        case QLayer::Op::kIdentity:
            return outputs[static_cast<std::size_t>(l.inputs[0])];
        case QLayer::Op::kRelu: {
            QTensor y = outputs[static_cast<std::size_t>(l.inputs[0])];
            for (auto& v : y.data) v = std::max(v, 0);
            return y;
        }
        case QLayer::Op::kRelu6: {
            QTensor y = outputs[static_cast<std::size_t>(l.inputs[0])];
            const std::int32_t six = saturate(
                static_cast<std::int64_t>(6) << fm_fmt_.frac_bits, fm_bits);
            for (auto& v : y.data) v = std::clamp(v, 0, six);
            return y;
        }
        case QLayer::Op::kPool: {
            const QTensor& x = outputs[static_cast<std::size_t>(l.inputs[0])];
            QTensor y;
            y.shape = {x.shape.n, x.shape.c, x.shape.h / 2, x.shape.w / 2};
            y.data.resize(static_cast<std::size_t>(y.shape.count()));
            std::size_t oi = 0;
            for (int n = 0; n < x.shape.n; ++n)
                for (int c = 0; c < x.shape.c; ++c) {
                    const std::int32_t* xp =
                        x.data.data() +
                        (static_cast<std::int64_t>(n) * x.shape.c + c) * x.shape.h *
                            x.shape.w;
                    for (int oh = 0; oh < y.shape.h; ++oh)
                        for (int ow = 0; ow < y.shape.w; ++ow) {
                            const std::int64_t base =
                                static_cast<std::int64_t>(oh * 2) * x.shape.w + ow * 2;
                            y.data[oi++] = std::max(
                                std::max(xp[base], xp[base + 1]),
                                std::max(xp[base + x.shape.w], xp[base + x.shape.w + 1]));
                        }
                }
            return y;
        }
        case QLayer::Op::kReorder: {
            const QTensor& x = outputs[static_cast<std::size_t>(l.inputs[0])];
            const int b = l.reorder_block;
            QTensor y;
            y.shape = {x.shape.n, x.shape.c * b * b, x.shape.h / b, x.shape.w / b};
            y.data.resize(static_cast<std::size_t>(y.shape.count()));
            for (int n = 0; n < x.shape.n; ++n)
                for (int c = 0; c < x.shape.c; ++c)
                    for (int dy = 0; dy < b; ++dy)
                        for (int dx = 0; dx < b; ++dx) {
                            const int oc = c * b * b + dy * b + dx;
                            for (int oh = 0; oh < y.shape.h; ++oh)
                                for (int ow = 0; ow < y.shape.w; ++ow) {
                                    const std::int64_t src =
                                        ((static_cast<std::int64_t>(n) * x.shape.c + c) *
                                             x.shape.h +
                                         (oh * b + dy)) *
                                            x.shape.w +
                                        (ow * b + dx);
                                    const std::int64_t dst =
                                        ((static_cast<std::int64_t>(n) * y.shape.c + oc) *
                                             y.shape.h +
                                         oh) *
                                            y.shape.w +
                                        ow;
                                    y.data[static_cast<std::size_t>(dst)] =
                                        x.data[static_cast<std::size_t>(src)];
                                }
                        }
            return y;
        }
        case QLayer::Op::kConcat: {
            const QTensor& first = outputs[static_cast<std::size_t>(l.inputs[0])];
            QTensor y;
            y.shape = first.shape;
            y.shape.c = 0;
            for (int in : l.inputs) y.shape.c += outputs[static_cast<std::size_t>(in)].shape.c;
            y.data.resize(static_cast<std::size_t>(y.shape.count()));
            const std::int64_t plane =
                static_cast<std::int64_t>(first.shape.h) * first.shape.w;
            for (int n = 0; n < y.shape.n; ++n) {
                std::int64_t off =
                    static_cast<std::int64_t>(n) * y.shape.c * plane;
                for (int in : l.inputs) {
                    const QTensor& part = outputs[static_cast<std::size_t>(in)];
                    const std::int64_t bytes =
                        static_cast<std::int64_t>(part.shape.c) * plane;
                    std::copy_n(part.data.begin() +
                                    static_cast<std::int64_t>(n) * bytes,
                                bytes, y.data.begin() + off);
                    off += bytes;
                }
            }
            return y;
        }
        case QLayer::Op::kAdd: {
            QTensor y = outputs[static_cast<std::size_t>(l.inputs[0])];
            const QTensor& b = outputs[static_cast<std::size_t>(l.inputs[1])];
            for (std::size_t i = 0; i < y.data.size(); ++i)
                y.data[i] = saturate(static_cast<std::int64_t>(y.data[i]) + b.data[i],
                                     fm_bits);
            return y;
        }
        case QLayer::Op::kBias: {
            QTensor y = outputs[static_cast<std::size_t>(l.inputs[0])];
            const std::int64_t plane =
                static_cast<std::int64_t>(y.shape.h) * y.shape.w;
            for (int n = 0; n < y.shape.n; ++n)
                for (int c = 0; c < y.shape.c; ++c) {
                    const std::int64_t b = l.bias[static_cast<std::size_t>(c)];
                    std::int32_t* p =
                        y.data.data() +
                        (static_cast<std::int64_t>(n) * y.shape.c + c) * plane;
                    for (std::int64_t i = 0; i < plane; ++i)
                        p[i] = saturate(static_cast<std::int64_t>(p[i]) + b, fm_bits);
                }
            return y;
        }
        case QLayer::Op::kDwConv3:
        case QLayer::Op::kConv:
            throw std::logic_error("QEngine: conv ops are handled in run()");
    }
    throw std::logic_error("QEngine: unreachable");
}

Tensor QEngine::run(const Tensor& input) const {
    std::vector<QTensor> outputs(layers_.size());
    // Quantise the input onto the FM grid.
    QTensor in;
    in.shape = input.shape();
    in.data.resize(static_cast<std::size_t>(input.size()));
    const double inv_step = 1.0 / fm_fmt_.step();
    for (std::int64_t i = 0; i < input.size(); ++i)
        in.data[static_cast<std::size_t>(i)] = saturate(
            static_cast<std::int64_t>(std::llround(input[i] * inv_step)),
            fm_fmt_.total_bits);
    outputs[0] = std::move(in);

    for (std::size_t i = 1; i < layers_.size(); ++i) {
        const QLayer& l = layers_[i];
        if (l.op == QLayer::Op::kConv || l.op == QLayer::Op::kDwConv3) {
            const QTensor& x = outputs[static_cast<std::size_t>(l.inputs[0])];
            const int shift = weight_frac_[i];  // acc frac = fm_frac + shift
            QTensor y;
            if (l.op == QLayer::Op::kDwConv3) {
                y.shape = x.shape;
                y.data.resize(static_cast<std::size_t>(y.shape.count()));
                const int H = x.shape.h, W = x.shape.w;
                for (int n = 0; n < x.shape.n; ++n)
                    for (int c = 0; c < x.shape.c; ++c) {
                        const std::int32_t* xp =
                            x.data.data() +
                            (static_cast<std::int64_t>(n) * x.shape.c + c) * H * W;
                        std::int32_t* yp =
                            y.data.data() +
                            (static_cast<std::int64_t>(n) * y.shape.c + c) * H * W;
                        const std::int32_t* w =
                            l.weights.data() + static_cast<std::int64_t>(c) * 9;
                        for (int oh = 0; oh < H; ++oh)
                            for (int ow = 0; ow < W; ++ow) {
                                std::int64_t acc = 0;
                                for (int kh = 0; kh < 3; ++kh)
                                    for (int kw = 0; kw < 3; ++kw) {
                                        const int ih = oh - 1 + kh;
                                        const int iw = ow - 1 + kw;
                                        if (ih < 0 || ih >= H || iw < 0 || iw >= W)
                                            continue;
                                        acc += static_cast<std::int64_t>(
                                                   w[kh * 3 + kw]) *
                                               xp[static_cast<std::int64_t>(ih) * W + iw];
                                    }
                                yp[static_cast<std::int64_t>(oh) * W + ow] = saturate(
                                    round_shift(acc, shift), fm_fmt_.total_bits);
                            }
                    }
            } else {
                const int oh = (x.shape.h + 2 * l.pad - l.k) / l.stride + 1;
                const int ow = (x.shape.w + 2 * l.pad - l.k) / l.stride + 1;
                y.shape = {x.shape.n, l.out_ch, oh, ow};
                y.data.resize(static_cast<std::size_t>(y.shape.count()));
                const int H = x.shape.h, W = x.shape.w;
                for (int n = 0; n < x.shape.n; ++n)
                    for (int oc = 0; oc < l.out_ch; ++oc) {
                        std::int32_t* yp =
                            y.data.data() +
                            (static_cast<std::int64_t>(n) * l.out_ch + oc) * oh * ow;
                        const std::int32_t* wbase =
                            l.weights.data() +
                            static_cast<std::int64_t>(oc) * l.in_ch * l.k * l.k;
                        const std::int64_t b =
                            l.bias.empty() ? 0 : l.bias[static_cast<std::size_t>(oc)];
                        for (int yy = 0; yy < oh; ++yy)
                            for (int xx = 0; xx < ow; ++xx) {
                                std::int64_t acc = b;
                                for (int ic = 0; ic < l.in_ch; ++ic) {
                                    const std::int32_t* xp =
                                        x.data.data() +
                                        (static_cast<std::int64_t>(n) * x.shape.c + ic) *
                                            H * W;
                                    const std::int32_t* w =
                                        wbase + static_cast<std::int64_t>(ic) * l.k * l.k;
                                    for (int kh = 0; kh < l.k; ++kh)
                                        for (int kw = 0; kw < l.k; ++kw) {
                                            const int ih = yy * l.stride - l.pad + kh;
                                            const int iw = xx * l.stride - l.pad + kw;
                                            if (ih < 0 || ih >= H || iw < 0 || iw >= W)
                                                continue;
                                            acc += static_cast<std::int64_t>(
                                                       w[kh * l.k + kw]) *
                                                   xp[static_cast<std::int64_t>(ih) * W +
                                                      iw];
                                        }
                                }
                                yp[static_cast<std::int64_t>(yy) * ow + xx] = saturate(
                                    round_shift(acc, shift), fm_fmt_.total_bits);
                            }
                    }
            }
            outputs[i] = std::move(y);
        } else {
            outputs[i] = execute(l, outputs);
        }
    }

    const QTensor& out = outputs[static_cast<std::size_t>(output_node_)];
    Tensor result(out.shape);
    const float step = static_cast<float>(fm_fmt_.step());
    for (std::size_t i = 0; i < out.data.size(); ++i)
        result[static_cast<std::int64_t>(i)] = static_cast<float>(out.data[i]) * step;
    return result;
}

std::int64_t QEngine::weight_bytes() const {
    std::int64_t bits = 0;
    for (const QLayer& l : layers_)
        bits += static_cast<std::int64_t>(l.weights.size()) * cfg_.weight_bits;
    return bits / 8;
}

}  // namespace sky::quant
