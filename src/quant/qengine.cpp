#include "quant/qengine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/thread_pool.hpp"
#include "deploy/fold_bn.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/space_to_depth.hpp"
#include "quant/qerror.hpp"
#include "quant/ranges.hpp"

namespace sky::quant {
namespace {

std::vector<std::int32_t> quantize_weights_to_int(const Tensor& w,
                                                  const FixedPointFormat& fmt) {
    std::vector<std::int32_t> out(static_cast<std::size_t>(w.size()));
    const double inv_step = 1.0 / fmt.step();
    for (std::int64_t i = 0; i < w.size(); ++i)
        out[static_cast<std::size_t>(i)] = saturate(
            static_cast<std::int64_t>(std::llround(w[i] * inv_step)), fmt.total_bits);
    return out;
}

}  // namespace

QEngine::QEngine(nn::Graph& graph, const QuantConfig& cfg)
    : cfg_(cfg), exec_(resolved_execution(cfg)) {
    // make_grid_spec validates the scheme (same throws the ctor used to
    // issue) and resolves the shared FM grid — the single source of truth
    // verify::analyze reads too (quant/ranges.hpp).
    const GridSpec spec = make_grid_spec(cfg);
    fm_fmt_ = spec.fm;
    grid_lo_ = spec.grid_lo;
    grid_hi_ = spec.grid_hi;
    six_ = spec.six;
    in_lo_ = spec.in_lo;
    in_hi_ = spec.in_hi;
    const double inv_step = 1.0 / fm_fmt_.step();

    // ---- Parse the graph into integer layers (weights at full scheme
    // precision — the reference path and the s16 packing both read them) --
    output_node_ = graph.output_node();
    layers_.resize(graph.node_count());
    std::vector<FixedPointFormat> wfmt(graph.node_count());
    std::vector<std::string> names(graph.node_count());
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
        QLayer& l = layers_[i];
        l.inputs = graph.node_inputs(i);
        l.clamp_lo = grid_lo_;
        l.clamp_hi = grid_hi_;
        switch (graph.node_kind(i)) {
            case nn::Graph::NodeKind::kInput:
                l.op = QLayer::Op::kInput;
                names[i] = "input";
                continue;
            case nn::Graph::NodeKind::kConcat:
                l.op = QLayer::Op::kConcat;
                names[i] = "concat";
                continue;
            case nn::Graph::NodeKind::kAdd:
                l.op = QLayer::Op::kAdd;
                l.impl = QImpl::kRefInt;
                names[i] = "add";
                continue;
            case nn::Graph::NodeKind::kModule:
                break;
        }
        nn::Module* m = graph.node_module(i);
        names[i] = m->name();
        if (auto* conv = dynamic_cast<const nn::Conv2d*>(m)) {
            l.op = QLayer::Op::kConv;
            l.impl = QImpl::kRefInt;
            l.in_ch = conv->in_channels();
            l.out_ch = conv->out_channels();
            l.k = conv->kernel();
            l.stride = conv->stride();
            l.pad = conv->padding();
            const FixedPointFormat wf =
                choose_format(cfg.weight_bits, conv->weight().abs_max());
            wfmt[i] = wf;
            l.shift = wf.frac_bits;
            l.weights = quantize_weights_to_int(conv->weight(), wf);
            l.bias.assign(static_cast<std::size_t>(l.out_ch), 0);
            if (conv->has_bias()) {
                const double scale = std::ldexp(1.0, wf.frac_bits + fm_fmt_.frac_bits);
                for (int oc = 0; oc < l.out_ch; ++oc)
                    l.bias[static_cast<std::size_t>(oc)] = static_cast<std::int64_t>(
                        std::llround(conv->bias()[oc] * scale));
            }
        } else if (auto* pw = dynamic_cast<const nn::PWConv1*>(m)) {
            if (pw->groups() != 1) {
                if (!cfg.fp32_fallback)
                    throw std::invalid_argument(
                        "QEngine: grouped 1x1 conv unsupported");
                l.op = QLayer::Op::kFp32;
                l.impl = QImpl::kFp32;
                l.fallback = m;
                continue;
            }
            l.op = QLayer::Op::kConv;
            l.impl = QImpl::kRefInt;
            l.in_ch = pw->in_channels();
            l.out_ch = pw->out_channels();
            l.k = 1;
            l.stride = 1;
            l.pad = 0;
            const FixedPointFormat wf =
                choose_format(cfg.weight_bits, pw->weight().abs_max());
            wfmt[i] = wf;
            l.shift = wf.frac_bits;
            l.weights = quantize_weights_to_int(pw->weight(), wf);
            l.bias.assign(static_cast<std::size_t>(l.out_ch), 0);
            if (pw->has_bias()) {
                const double scale = std::ldexp(1.0, wf.frac_bits + fm_fmt_.frac_bits);
                for (int oc = 0; oc < l.out_ch; ++oc)
                    l.bias[static_cast<std::size_t>(oc)] = static_cast<std::int64_t>(
                        std::llround(pw->bias()[oc] * scale));
            }
        } else if (auto* dw = dynamic_cast<const nn::DWConv3*>(m)) {
            l.op = QLayer::Op::kDwConv3;
            l.impl = QImpl::kRefInt;
            l.in_ch = l.out_ch = dw->channels();
            l.k = 3;
            const FixedPointFormat wf =
                choose_format(cfg.weight_bits, dw->weight().abs_max());
            wfmt[i] = wf;
            l.shift = wf.frac_bits;
            l.weights = quantize_weights_to_int(dw->weight(), wf);
        } else if (dynamic_cast<const nn::MaxPool2*>(m)) {
            l.op = QLayer::Op::kPool;
        } else if (auto* act = dynamic_cast<const nn::Activation*>(m)) {
            if (act->act_kind() == nn::Act::kReLU) {
                l.op = QLayer::Op::kRelu;
            } else if (act->act_kind() == nn::Act::kReLU6) {
                l.op = QLayer::Op::kRelu6;
            } else if (cfg.fp32_fallback) {
                l.op = QLayer::Op::kFp32;
                l.impl = QImpl::kFp32;
                l.fallback = m;
            } else {
                throw std::invalid_argument("QEngine: unsupported activation");
            }
        } else if (auto* s2d = dynamic_cast<const nn::SpaceToDepth*>(m)) {
            l.op = QLayer::Op::kReorder;
            l.reorder_block = s2d->block();
        } else if (auto* cb = dynamic_cast<const deploy::ChannelBias*>(m)) {
            // The folded BN shift, expressed on the FM grid.
            l.op = QLayer::Op::kBias;
            l.impl = QImpl::kRefInt;
            l.bias.reserve(cb->values().size());
            for (float b : cb->values())
                l.bias.push_back(static_cast<std::int64_t>(std::llround(b * inv_step)));
        } else if (dynamic_cast<const deploy::Identity*>(m)) {
            l.op = QLayer::Op::kIdentity;
        } else if (m->kind() == "bn") {
            throw std::invalid_argument(
                "QEngine: fold batch norms before compiling (deploy::fold_graph_bn)");
        } else if (cfg.fp32_fallback) {
            l.op = QLayer::Op::kFp32;
            l.impl = QImpl::kFp32;
            l.fallback = m;
        } else {
            throw std::invalid_argument("QEngine: unsupported layer " + m->name());
        }
    }

    // ---- Propagate output value ranges on the FM grid.  The transfer
    // functions live in quant/ranges.hpp, SHARED with verify::analyze, so
    // the static analysis and this plan can never disagree.  Runs on the
    // graph (layers_ mirror it 1:1 before elision).  Sound for every input
    // inside the declared [input_lo, input_hi] ----------------------------
    const std::vector<GridRange> range = propagate_grid_ranges(graph, spec);

    // ---- Elide Identity nodes (folded BN leaves one behind every conv):
    // rewire every consumer straight to the identity's source, so identity
    // layers never execute and activation fusion can see through them.
    // Pure graph plumbing — bit-identical in every execution mode ---------
    const auto resolve_identity = [this](int j) {
        while (layers_[static_cast<std::size_t>(j)].op == QLayer::Op::kIdentity)
            j = layers_[static_cast<std::size_t>(j)].inputs[0];
        return j;
    };
    for (QLayer& l : layers_)
        for (int& in : l.inputs) in = resolve_identity(in);
    output_node_ = resolve_identity(output_node_);

    // ---- Plan the int8 GEMM path: a conv is eligible when its inputs
    // provably span <= 256 grid values (u8 after the zero-point offset),
    // its weights fit the native s16 operand, and the int32 accumulation is
    // provably exact for THIS layer's values: K * max|w| * span < 2^31.
    // Weights are prepacked once, here ------------------------------------
    std::vector<std::string> notes(layers_.size());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        QLayer& l = layers_[i];
        if (l.op == QLayer::Op::kDwConv3) {
            // The dwconv gets a branch-free int32 fast path whenever the
            // 9-tap accumulation plus the rounding offset provably fits —
            // bit-equal to the int64 reference (exact integer sums).
            std::int64_t wmax = 0;
            for (const std::int32_t w : l.weights)
                wmax = std::max<std::int64_t>(wmax, std::abs(static_cast<std::int64_t>(w)));
            const std::int64_t xmax =
                std::max<std::int64_t>(-static_cast<std::int64_t>(grid_lo_), grid_hi_);
            l.dw32 = l.shift >= 1 && l.shift <= 30 &&
                     9 * wmax * xmax + (std::int64_t{1} << (l.shift - 1)) <
                         (std::int64_t{1} << 31);
            continue;
        }
        if (l.op != QLayer::Op::kConv || exec_ == QExecution::kReference) continue;
        const int K = l.in_ch * l.k * l.k;
        std::int64_t wmax = 0;
        for (const std::int32_t w : l.weights)
            wmax = std::max<std::int64_t>(wmax, std::abs(static_cast<std::int64_t>(w)));
        // The eligibility proof is shared arithmetic (quant/ranges.hpp):
        // verify::analyze runs the same prove_qgemm over the same ranges.
        const ConvProof proof = prove_qgemm(
            K, l.pad, cfg.weight_bits, wmax,
            range[static_cast<std::size_t>(l.inputs[0])]);
        if (!proof.eligible) {
            if (exec_ == QExecution::kInt8)
                throw std::invalid_argument("QEngine: strict int8: " + names[i] +
                                            ": " + proof.reason);
            notes[i] = proof.reason;
            continue;
        }
        core::qpack_a_wide(l.out_ch, K, l.weights.data(), l.apack);
        l.zero_point = proof.zero_point;
        l.bias_corr.resize(static_cast<std::size_t>(l.out_ch));
        for (int oc = 0; oc < l.out_ch; ++oc) {
            const auto uoc = static_cast<std::size_t>(oc);
            l.bias_corr[uoc] = (l.bias.empty() ? 0 : l.bias[uoc]) +
                               static_cast<std::int64_t>(proof.zero_point) *
                                   l.apack.rowsum[uoc];
        }
        // Branchless int32 requantization is exact when the biased
        // accumulator plus the rounding offset provably fits int32.
        std::int64_t bmax = 0;
        for (const std::int64_t b : l.bias_corr)
            bmax = std::max(bmax, std::abs(b));
        l.rq32 = l.shift >= 1 && l.shift <= 30 &&
                 proof.acc_bound + bmax + (std::int64_t{1} << (l.shift - 1)) <
                     (std::int64_t{1} << 31);
        l.impl = QImpl::kQGemm;
        any_qgemm_ = true;
    }

    // Snapshot the ranges the plan was proven against before fusion rewires
    // inputs — the report should show what justified each plan.
    std::vector<GridRange> plan_in(layers_.size(), GridRange{0, 0});
    for (std::size_t i = 0; i < layers_.size(); ++i)
        if (!layers_[i].weights.empty())
            plan_in[i] = range[static_cast<std::size_t>(layers_[i].inputs[0])];

    // ---- Fuse a ReLU/ReLU6 whose only consumer role is post-activating a
    // conv into that conv's requantization clamp.  Bit-equal to the unfused
    // program: clamp(round_shift(acc)) == act(saturate(round_shift(acc)))
    // because the act bounds lie inside the grid.  Skipped in reference
    // mode so the oracle executes the graph verbatim ----------------------
    if (exec_ != QExecution::kReference) {
        std::vector<int> consumers(layers_.size(), 0);
        for (const QLayer& l : layers_) {
            if (l.op == QLayer::Op::kIdentity) continue;  // elided, never reads
            for (int in : l.inputs) ++consumers[static_cast<std::size_t>(in)];
        }
        ++consumers[static_cast<std::size_t>(output_node_)];
        for (std::size_t j = 0; j < layers_.size(); ++j) {
            QLayer& act = layers_[j];
            if (act.op != QLayer::Op::kRelu && act.op != QLayer::Op::kRelu6) continue;
            const auto src = static_cast<std::size_t>(act.inputs[0]);
            QLayer& prod = layers_[src];
            if (consumers[src] != 1) continue;
            if (prod.op != QLayer::Op::kConv && prod.op != QLayer::Op::kDwConv3 &&
                prod.op != QLayer::Op::kBias)
                continue;
            prod.clamp_lo = 0;
            prod.clamp_hi = act.op == QLayer::Op::kRelu6 ? six_ : grid_hi_;
            act.op = QLayer::Op::kIdentity;
            notes[j] = "fused into " + names[src];
        }
        // Fold a dwconv's trailing single-consumer ChannelBias (which now
        // carries any fused activation clamp) into the dwconv executor: one
        // tensor pass instead of two.  Elementwise composition of the two
        // executors, so bit-identical; only taken when the post-add provably
        // fits int32 next to a grid value (the fast path's arithmetic).
        for (std::size_t j = 0; j < layers_.size(); ++j) {
            QLayer& bias = layers_[j];
            if (bias.op != QLayer::Op::kBias) continue;
            const auto src = static_cast<std::size_t>(bias.inputs[0]);
            QLayer& prod = layers_[src];
            if (consumers[src] != 1) continue;
            if (prod.op != QLayer::Op::kDwConv3 || prod.impl == QImpl::kFp32)
                continue;
            const bool fits = std::all_of(
                bias.bias.begin(), bias.bias.end(), [&](std::int64_t b) {
                    return b >= std::numeric_limits<std::int32_t>::min() -
                                    static_cast<std::int64_t>(grid_lo_) &&
                           b <= std::numeric_limits<std::int32_t>::max() -
                                    static_cast<std::int64_t>(grid_hi_);
                });
            if (!fits) continue;
            prod.post_bias = std::move(bias.bias);
            prod.post_lo = bias.clamp_lo;
            prod.post_hi = bias.clamp_hi;
            bias.op = QLayer::Op::kIdentity;
            notes[j] = "fused into " + names[src];
        }
        // Fused activations became identities; rewire their consumers to the
        // producer so run() can skip every identity without executing it.
        for (QLayer& l : layers_)
            for (int& in : l.inputs) in = resolve_identity(in);
        output_node_ = resolve_identity(output_node_);
    }

    // ---- Compilation report --------------------------------------------
    report_.config = cfg_;
    report_.execution = exec_;
    report_.fm_format = fm_fmt_;
    report_.weight_bytes = weight_bytes();
    report_.layers.reserve(layers_.size());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const QLayer& l = layers_[i];
        QLayerReport lr;
        lr.node = static_cast<int>(i);
        lr.name = names[i];
        lr.impl = l.impl;
        lr.note = notes[i];
        if (!l.weights.empty()) {
            lr.weight_format = wfmt[i];
            lr.has_weights = true;
            lr.in_lo = plan_in[i].lo;
            lr.in_hi = plan_in[i].hi;
        }
        if (l.op == QLayer::Op::kConv || l.op == QLayer::Op::kDwConv3) {
            if (l.impl == QImpl::kQGemm)
                ++report_.qgemm_layers;
            else
                ++report_.ref_layers;
        }
        if (l.impl == QImpl::kFp32) ++report_.fp32_layers;
        report_.layers.push_back(std::move(lr));
    }

    // Certified |int8 - fp32| bounds from the shared error domain
    // (quant/qerror.hpp) — the same propagation verify::analyze judges the
    // E-series diagnostics on, so report and checker can never disagree.
    const ErrorAnalysis ea = certify_error(graph, cfg_);
    for (QLayerReport& lr : report_.layers) {
        const NodeError& ne = ea.nodes[static_cast<std::size_t>(lr.node)];
        lr.error_bound = ne.out.bound;
        lr.error_known = ne.out.known;
    }
    report_.certified_error_bound = ea.output_bound;
    report_.error_bound_known = ea.output_known;
    report_.dominant_errors = ea.dominant(3);
    report_.error_budget_exceeded =
        cfg_.error_budget > 0.0f &&
        (!ea.output_known ||
         ea.output_bound > static_cast<double>(cfg_.error_budget));
}

void QEngine::execute(const QLayer& l, QTensor& y) {
    const int fm_bits = fm_fmt_.total_bits;
    switch (l.op) {
        case QLayer::Op::kInput:
            throw std::logic_error("QEngine: input node executed");
        case QLayer::Op::kIdentity:
            // Identities are elided at compile time; nothing executes them.
            throw std::logic_error("QEngine: identity node executed");
        case QLayer::Op::kRelu:
        case QLayer::Op::kRelu6: {
            const QTensor& x = outputs_[static_cast<std::size_t>(l.inputs[0])];
            y.shape = x.shape;
            y.data.resize(x.data.size());
            const std::int32_t hi =
                l.op == QLayer::Op::kRelu6 ? six_ : grid_hi_;
            const std::int32_t* src = x.data.data();
            std::int32_t* dst = y.data.data();
            core::parallel_for(0, static_cast<std::int64_t>(x.data.size()), 4096,
                               [=](std::int64_t i0, std::int64_t i1) {
                                   for (std::int64_t i = i0; i < i1; ++i)
                                       dst[i] = std::clamp(src[i], 0, hi);
                               });
            return;
        }
        case QLayer::Op::kPool: {
            const QTensor& x = outputs_[static_cast<std::size_t>(l.inputs[0])];
            y.shape = {x.shape.n, x.shape.c, x.shape.h / 2, x.shape.w / 2};
            y.data.resize(static_cast<std::size_t>(y.shape.count()));
            const int W = x.shape.w, OH = y.shape.h, OW = y.shape.w;
            const std::int32_t* xd = x.data.data();
            std::int32_t* yd = y.data.data();
            core::parallel_for(
                0, static_cast<std::int64_t>(x.shape.n) * x.shape.c, 1,
                [=](std::int64_t p0, std::int64_t p1) {
                    for (std::int64_t p = p0; p < p1; ++p) {
                        const std::int32_t* xp =
                            xd + p * static_cast<std::int64_t>(x.shape.h) * W;
                        std::int32_t* yp =
                            yd + p * static_cast<std::int64_t>(OH) * OW;
                        for (int oh = 0; oh < OH; ++oh)
                            for (int ow = 0; ow < OW; ++ow) {
                                const std::int64_t base =
                                    static_cast<std::int64_t>(oh * 2) * W + ow * 2;
                                yp[static_cast<std::int64_t>(oh) * OW + ow] =
                                    std::max(std::max(xp[base], xp[base + 1]),
                                             std::max(xp[base + W], xp[base + W + 1]));
                            }
                    }
                });
            return;
        }
        case QLayer::Op::kReorder: {
            const QTensor& x = outputs_[static_cast<std::size_t>(l.inputs[0])];
            const int b = l.reorder_block;
            y.shape = {x.shape.n, x.shape.c * b * b, x.shape.h / b, x.shape.w / b};
            y.data.resize(static_cast<std::size_t>(y.shape.count()));
            const int OH = y.shape.h, OW = y.shape.w, W = x.shape.w;
            const std::int32_t* xd = x.data.data();
            std::int32_t* yd = y.data.data();
            core::parallel_for(
                0, static_cast<std::int64_t>(x.shape.n) * x.shape.c, 1,
                [=](std::int64_t p0, std::int64_t p1) {
                    for (std::int64_t p = p0; p < p1; ++p) {
                        const std::int32_t* xp =
                            xd + p * static_cast<std::int64_t>(x.shape.h) * W;
                        std::int32_t* yp =
                            yd + p * static_cast<std::int64_t>(b) * b * OH * OW;
                        for (int dy = 0; dy < b; ++dy)
                            for (int dx = 0; dx < b; ++dx) {
                                std::int32_t* q =
                                    yp + static_cast<std::int64_t>(dy * b + dx) * OH * OW;
                                for (int oh = 0; oh < OH; ++oh) {
                                    const std::int32_t* row =
                                        xp + static_cast<std::int64_t>(oh * b + dy) * W + dx;
                                    for (int ow = 0; ow < OW; ++ow)
                                        q[static_cast<std::int64_t>(oh) * OW + ow] =
                                            row[static_cast<std::int64_t>(ow) * b];
                                }
                            }
                    }
                });
            return;
        }
        case QLayer::Op::kConcat: {
            const QTensor& first = outputs_[static_cast<std::size_t>(l.inputs[0])];
            y.shape = first.shape;
            y.shape.c = 0;
            for (int in : l.inputs) y.shape.c += outputs_[static_cast<std::size_t>(in)].shape.c;
            y.data.resize(static_cast<std::size_t>(y.shape.count()));
            const std::int64_t plane =
                static_cast<std::int64_t>(first.shape.h) * first.shape.w;
            for (int n = 0; n < y.shape.n; ++n) {
                std::int64_t off =
                    static_cast<std::int64_t>(n) * y.shape.c * plane;
                for (int in : l.inputs) {
                    const QTensor& part = outputs_[static_cast<std::size_t>(in)];
                    const std::int64_t bytes =
                        static_cast<std::int64_t>(part.shape.c) * plane;
                    std::copy_n(part.data.begin() +
                                    static_cast<std::int64_t>(n) * bytes,
                                bytes, y.data.begin() + off);
                    off += bytes;
                }
            }
            return;
        }
        case QLayer::Op::kAdd: {
            const QTensor& a = outputs_[static_cast<std::size_t>(l.inputs[0])];
            const QTensor& b = outputs_[static_cast<std::size_t>(l.inputs[1])];
            y.shape = a.shape;
            y.data.resize(a.data.size());
            const std::int32_t* ad = a.data.data();
            const std::int32_t* bd = b.data.data();
            std::int32_t* yd = y.data.data();
            core::parallel_for(0, static_cast<std::int64_t>(a.data.size()), 4096,
                               [=](std::int64_t i0, std::int64_t i1) {
                                   for (std::int64_t i = i0; i < i1; ++i)
                                       yd[i] = saturate(
                                           static_cast<std::int64_t>(ad[i]) + bd[i],
                                           fm_bits);
                               });
            return;
        }
        case QLayer::Op::kBias: {
            // Per-channel add with the layer's requantization clamp — the
            // grid bounds when unfused (== the old saturate), or [0, six]
            // when a downstream ReLU/ReLU6 was folded in.
            const QTensor& x = outputs_[static_cast<std::size_t>(l.inputs[0])];
            y.shape = x.shape;
            y.data.resize(x.data.size());
            const std::int64_t plane =
                static_cast<std::int64_t>(x.shape.h) * x.shape.w;
            const int C = x.shape.c;
            const std::int32_t lo = l.clamp_lo, hi = l.clamp_hi;
            const std::int32_t glo = grid_lo_, ghi = grid_hi_;
            const std::int32_t* xd = x.data.data();
            std::int32_t* yd = y.data.data();
            const std::int64_t* bias = l.bias.data();
            core::parallel_for(
                0, static_cast<std::int64_t>(x.shape.n) * C, 1,
                [=](std::int64_t p0, std::int64_t p1) {
                    for (std::int64_t p = p0; p < p1; ++p) {
                        const std::int64_t b = bias[p % C];
                        const std::int32_t* src = xd + p * plane;
                        std::int32_t* dst = yd + p * plane;
                        // Grid values fit fm_bits, so when the bias also fits
                        // int32 with headroom the sum is exact in int32.
                        if (b >= std::numeric_limits<std::int32_t>::min() -
                                     static_cast<std::int64_t>(glo) &&
                            b <= std::numeric_limits<std::int32_t>::max() -
                                     static_cast<std::int64_t>(ghi)) {
                            const std::int32_t b32 = static_cast<std::int32_t>(b);
                            for (std::int64_t i = 0; i < plane; ++i)
                                dst[i] = std::clamp(src[i] + b32, lo, hi);
                        } else {
                            for (std::int64_t i = 0; i < plane; ++i)
                                dst[i] = static_cast<std::int32_t>(std::clamp(
                                    static_cast<std::int64_t>(src[i]) + b,
                                    static_cast<std::int64_t>(lo),
                                    static_cast<std::int64_t>(hi)));
                        }
                    }
                });
            return;
        }
        case QLayer::Op::kFp32: {
            // Dequantize -> float module -> requantize onto the FM grid, so
            // downstream integer layers see grid values as usual.
            const QTensor& x = outputs_[static_cast<std::size_t>(l.inputs[0])];
            Tensor xf(x.shape);
            const float step = static_cast<float>(fm_fmt_.step());
            for (std::size_t i = 0; i < x.data.size(); ++i)
                xf[static_cast<std::int64_t>(i)] =
                    static_cast<float>(x.data[i]) * step;
            const Tensor yf = l.fallback->forward(xf);
            y.shape = yf.shape();
            y.data.resize(static_cast<std::size_t>(yf.size()));
            const double inv_step = 1.0 / fm_fmt_.step();
            for (std::int64_t i = 0; i < yf.size(); ++i)
                y.data[static_cast<std::size_t>(i)] = saturate(
                    static_cast<std::int64_t>(std::llround(yf[i] * inv_step)), fm_bits);
            return;
        }
        case QLayer::Op::kDwConv3:
        case QLayer::Op::kConv:
            throw std::logic_error("QEngine: conv ops are handled in run()");
    }
    throw std::logic_error("QEngine: unreachable");
}

void QEngine::execute_dwconv(const QLayer& l, const QTensor& x, QTensor& y) const {
    y.shape = x.shape;
    y.data.resize(static_cast<std::size_t>(y.shape.count()));
    const int H = x.shape.h, W = x.shape.w, C = x.shape.c;
    const int shift = l.shift;
    const std::int32_t clamp_lo = l.clamp_lo, clamp_hi = l.clamp_hi;
    const std::int32_t* xd = x.data.data();
    const std::int32_t* wd = l.weights.data();
    std::int32_t* yd = y.data.data();
    // One (n, c) plane per iteration in both paths: writes are disjoint,
    // accumulation is exact integer — bitwise thread-count invariant.
    if (l.dw32) {
        // Branch-free int32 fast path (planned: 9-tap sum + rounding offset
        // provably fit int32).  Missing border rows read a zero row — the
        // phantom taps contribute w * 0, exactly like skipping them — and
        // the rounding matches round_shift tie-away-from-zero bit for bit.
        const std::int32_t half = std::int32_t{1} << (shift - 1);
        const std::int64_t* pbias =
            l.post_bias.empty() ? nullptr : l.post_bias.data();
        const std::int32_t plo = l.post_lo, phi = l.post_hi;
        core::parallel_for(
            0, static_cast<std::int64_t>(x.shape.n) * C, 1,
            [=](std::int64_t i0, std::int64_t i1) {
                const std::vector<std::int32_t> zrow(static_cast<std::size_t>(W), 0);
                for (std::int64_t idx = i0; idx < i1; ++idx) {
                    const int c = static_cast<int>(idx % C);
                    // Fused trailing bias: clamp(clamp(r) + b) with a zero
                    // bias and the same bounds is the unfused result.
                    const std::int32_t badd =
                        pbias ? static_cast<std::int32_t>(pbias[c]) : 0;
                    const std::int32_t flo = pbias ? plo : clamp_lo;
                    const std::int32_t fhi = pbias ? phi : clamp_hi;
                    const auto requant = [=](std::int32_t acc) {
                        const std::int32_t r = acc >= 0 ? (acc + half) >> shift
                                                        : -((-acc + half) >> shift);
                        return std::clamp(std::clamp(r, clamp_lo, clamp_hi) + badd,
                                          flo, fhi);
                    };
                    const std::int32_t* xp = xd + idx * H * W;
                    std::int32_t* yp = yd + idx * H * W;
                    const std::int32_t* w = wd + static_cast<std::int64_t>(c) * 9;
                    const std::int32_t w0 = w[0], w1 = w[1], w2 = w[2], w3 = w[3],
                                       w4 = w[4], w5 = w[5], w6 = w[6], w7 = w[7],
                                       w8 = w[8];
                    for (int oh = 0; oh < H; ++oh) {
                        const std::int32_t* rm = xp + static_cast<std::int64_t>(oh) * W;
                        const std::int32_t* rt = oh > 0 ? rm - W : zrow.data();
                        const std::int32_t* rb = oh + 1 < H ? rm + W : zrow.data();
                        std::int32_t* out = yp + static_cast<std::int64_t>(oh) * W;
                        out[0] = requant(
                            w1 * rt[0] + w4 * rm[0] + w7 * rb[0] +
                            (W > 1 ? w2 * rt[1] + w5 * rm[1] + w8 * rb[1] : 0));
                        for (int ow = 1; ow < W - 1; ++ow)
                            out[ow] = requant(
                                w0 * rt[ow - 1] + w1 * rt[ow] + w2 * rt[ow + 1] +
                                w3 * rm[ow - 1] + w4 * rm[ow] + w5 * rm[ow + 1] +
                                w6 * rb[ow - 1] + w7 * rb[ow] + w8 * rb[ow + 1]);
                        if (W > 1) {
                            const int ow = W - 1;
                            out[ow] = requant(w0 * rt[ow - 1] + w1 * rt[ow] +
                                              w3 * rm[ow - 1] + w4 * rm[ow] +
                                              w6 * rb[ow - 1] + w7 * rb[ow]);
                        }
                    }
                }
            });
        return;
    }
    const std::int64_t* pbias = l.post_bias.empty() ? nullptr : l.post_bias.data();
    const std::int32_t plo = l.post_lo, phi = l.post_hi;
    core::parallel_for(
        0, static_cast<std::int64_t>(x.shape.n) * C, 1,
        [=](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t idx = i0; idx < i1; ++idx) {
                const int c = static_cast<int>(idx % C);
                const std::int64_t badd = pbias ? pbias[c] : 0;
                const std::int32_t flo = pbias ? plo : clamp_lo;
                const std::int32_t fhi = pbias ? phi : clamp_hi;
                const std::int32_t* xp = xd + idx * H * W;
                std::int32_t* yp = yd + idx * H * W;
                const std::int32_t* w = wd + static_cast<std::int64_t>(c) * 9;
                for (int oh = 0; oh < H; ++oh)
                    for (int ow = 0; ow < W; ++ow) {
                        std::int64_t acc = 0;
                        for (int kh = 0; kh < 3; ++kh)
                            for (int kw = 0; kw < 3; ++kw) {
                                const int ih = oh - 1 + kh;
                                const int iw = ow - 1 + kw;
                                if (ih < 0 || ih >= H || iw < 0 || iw >= W) continue;
                                acc += static_cast<std::int64_t>(w[kh * 3 + kw]) *
                                       xp[static_cast<std::int64_t>(ih) * W + iw];
                            }
                        yp[static_cast<std::int64_t>(oh) * W + ow] =
                            static_cast<std::int32_t>(std::clamp<std::int64_t>(
                                std::clamp<std::int64_t>(round_shift(acc, shift),
                                                         clamp_lo, clamp_hi) +
                                    badd,
                                flo, fhi));
                    }
            }
        });
}

void QEngine::execute_conv(const QLayer& l, const QTensor& x, QTensor& y,
                           bool allow_qgemm) {
    const int H = x.shape.h, W = x.shape.w;
    const int OH = (H + 2 * l.pad - l.k) / l.stride + 1;
    const int OW = (W + 2 * l.pad - l.k) / l.stride + 1;
    y.shape = {x.shape.n, l.out_ch, OH, OW};
    y.data.resize(static_cast<std::size_t>(y.shape.count()));
    const int shift = l.shift;
    const std::int32_t clamp_lo = l.clamp_lo, clamp_hi = l.clamp_hi;
    if (l.impl == QImpl::kQGemm && allow_qgemm) {
        const int M = l.out_ch;
        const std::int64_t N = static_cast<std::int64_t>(OH) * OW;
        for (int n = 0; n < x.shape.n; ++n) {
            const std::int32_t* img =
                x.data.data() + static_cast<std::int64_t>(n) * l.in_ch * H * W;
            core::qim2col_packed(img, l.in_ch, H, W, l.k, l.stride, l.pad, OH, OW,
                                 l.zero_point, bpanel_);
            acc_.assign(static_cast<std::size_t>(M * N), 0);
            core::qgemm_packed(l.apack, bpanel_, acc_.data());
            std::int32_t* yp =
                y.data.data() + static_cast<std::int64_t>(n) * M * N;
            const std::int32_t* cacc = acc_.data();
            const std::int64_t* bias_corr = l.bias_corr.data();
            // Requantize row-parallel: acc = bias' + gemm, then round-shift
            // by the weight fraction and clamp (saturation + any fused
            // activation in one step).
            if (l.rq32 && clamp_lo == 0) {
                // Branchless int32 variant (planned: biased accumulator +
                // rounding offset fit int32).  With a fused ReLU clamp at 0,
                // any negative accumulator rounds to <= 0 and clamps to 0 —
                // exactly what (max(acc, 0) + half) >> shift yields — so the
                // sign branch of round_shift disappears and the loop
                // auto-vectorizes.
                const std::int32_t half = std::int32_t{1} << (shift - 1);
                core::parallel_for(0, M, 1, [=](std::int64_t m0, std::int64_t m1) {
                    for (std::int64_t oc = m0; oc < m1; ++oc) {
                        const std::int32_t b =
                            static_cast<std::int32_t>(bias_corr[oc]);
                        const std::int32_t* row = cacc + oc * N;
                        std::int32_t* out = yp + oc * N;
                        for (std::int64_t j = 0; j < N; ++j) {
                            const std::int32_t a =
                                (std::max(b + row[j], 0) + half) >> shift;
                            out[j] = std::min(a, clamp_hi);
                        }
                    }
                });
            } else {
                core::parallel_for(0, M, 1, [=](std::int64_t m0, std::int64_t m1) {
                    for (std::int64_t oc = m0; oc < m1; ++oc) {
                        const std::int64_t b = bias_corr[oc];
                        const std::int32_t* row = cacc + oc * N;
                        std::int32_t* out = yp + oc * N;
                        for (std::int64_t j = 0; j < N; ++j)
                            out[j] =
                                static_cast<std::int32_t>(std::clamp<std::int64_t>(
                                    round_shift(b + row[j], shift), clamp_lo,
                                    clamp_hi));
                    }
                });
            }
        }
        return;
    }
    // Reference path: direct integer convolution, one (n, oc) output plane
    // per iteration.  Bit-true for any input (no range assumptions).
    const std::int32_t* xd = x.data.data();
    const std::int32_t* wd = l.weights.data();
    const std::int64_t* bd = l.bias.empty() ? nullptr : l.bias.data();
    std::int32_t* yd = y.data.data();
    const int in_ch = l.in_ch, out_ch = l.out_ch, k = l.k, stride = l.stride,
              pad = l.pad;
    const int xc = x.shape.c;
    core::parallel_for(
        0, static_cast<std::int64_t>(x.shape.n) * out_ch, 1,
        [=](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t idx = i0; idx < i1; ++idx) {
                const std::int64_t n = idx / out_ch;
                const int oc = static_cast<int>(idx % out_ch);
                std::int32_t* yp =
                    yd + idx * static_cast<std::int64_t>(OH) * OW;
                const std::int32_t* wbase =
                    wd + static_cast<std::int64_t>(oc) * in_ch * k * k;
                const std::int64_t b = bd ? bd[oc] : 0;
                for (int yy = 0; yy < OH; ++yy)
                    for (int xx = 0; xx < OW; ++xx) {
                        std::int64_t acc = b;
                        for (int ic = 0; ic < in_ch; ++ic) {
                            const std::int32_t* xp =
                                xd + (n * xc + ic) * static_cast<std::int64_t>(H) * W;
                            const std::int32_t* w =
                                wbase + static_cast<std::int64_t>(ic) * k * k;
                            for (int kh = 0; kh < k; ++kh)
                                for (int kw = 0; kw < k; ++kw) {
                                    const int ih = yy * stride - pad + kh;
                                    const int iw = xx * stride - pad + kw;
                                    if (ih < 0 || ih >= H || iw < 0 || iw >= W)
                                        continue;
                                    acc += static_cast<std::int64_t>(w[kh * k + kw]) *
                                           xp[static_cast<std::int64_t>(ih) * W + iw];
                                }
                        }
                        yp[static_cast<std::int64_t>(yy) * OW + xx] =
                            static_cast<std::int32_t>(std::clamp<std::int64_t>(
                                round_shift(acc, shift), clamp_lo, clamp_hi));
                    }
            }
        });
}

std::vector<Shape> QEngine::layer_shapes(const Shape& input) const {
    std::vector<Shape> s(layers_.size());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const QLayer& l = layers_[i];
        const Shape in =
            l.inputs.empty() ? input : s[static_cast<std::size_t>(l.inputs[0])];
        switch (l.op) {
            case QLayer::Op::kInput:
                s[i] = input;
                break;
            case QLayer::Op::kConv:
                s[i] = {in.n, l.out_ch, (in.h + 2 * l.pad - l.k) / l.stride + 1,
                        (in.w + 2 * l.pad - l.k) / l.stride + 1};
                break;
            case QLayer::Op::kPool:
                s[i] = {in.n, in.c, in.h / 2, in.w / 2};
                break;
            case QLayer::Op::kReorder: {
                const int b = l.reorder_block;
                s[i] = {in.n, in.c * b * b, in.h / b, in.w / b};
                break;
            }
            case QLayer::Op::kConcat: {
                Shape c = in;
                c.c = 0;
                for (const int j : l.inputs)
                    c.c += s[static_cast<std::size_t>(j)].c;
                s[i] = c;
                break;
            }
            case QLayer::Op::kFp32:
                s[i] = l.fallback->out_shape(in);
                break;
            case QLayer::Op::kDwConv3:
            case QLayer::Op::kRelu:
            case QLayer::Op::kRelu6:
            case QLayer::Op::kBias:
            case QLayer::Op::kIdentity:
            case QLayer::Op::kAdd:
                s[i] = in;
                break;
        }
    }
    return s;
}

void QEngine::ensure_plan(const Shape& input) {
    if (has_plan_ && plan_shape_ == input) return;
    const std::vector<Shape> shapes = layer_shapes(input);
    std::vector<deploy::PlanTensor> program(layers_.size());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const QLayer& l = layers_[i];
        // Elided identities allocate nothing and consume nothing (their
        // consumers were rewired straight to the producer).
        if (l.op == QLayer::Op::kIdentity) continue;
        program[i].inputs = l.inputs;
        program[i].bytes = shapes[i].count() * static_cast<std::int64_t>(sizeof(std::int32_t));
    }
    plan_ = deploy::plan_tensors(program, output_node_);
    releases_.assign(layers_.size() + 1, {});
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const deploy::TensorPlan& t = plan_.tensors[i];
        if (t.slot < 0) continue;
        releases_[std::min<std::size_t>(static_cast<std::size_t>(t.last),
                                        layers_.size())]
            .push_back(static_cast<int>(i));
    }
    slot_bufs_.resize(plan_.slots.size());
    // Pre-size every slot to its planned capacity so even the FIRST run at
    // this shape is allocation-free (plan-time provisioning, not counted in
    // alloc_events_ — that gauge tracks steady-state growth only).
    for (std::size_t s = 0; s < slot_bufs_.size(); ++s) {
        const auto cap = static_cast<std::size_t>(
            plan_.slots[s].bytes / static_cast<std::int64_t>(sizeof(std::int32_t)));
        if (slot_bufs_[s].capacity() < cap) slot_bufs_[s].reserve(cap);
    }
    outputs_.resize(layers_.size());
    plan_shape_ = input;
    has_plan_ = true;
    report_.activation_plan = plan_;
    report_.activation_plan_shape = input;
    report_.has_activation_plan = true;
}

const deploy::MemoryPlan& QEngine::plan_activations(const Shape& input) {
    ensure_plan(input);
    return plan_;
}

Tensor QEngine::run(const Tensor& input) {
    ensure_plan(input.shape());
    live_bytes_ = 0;
    measured_peak_bytes_ = 0;
    // Check a node's buffer out of its planned arena slot (pointer swap) and
    // back in after its last reader ran.  Steady state reuses the converged
    // slot capacities — the only allocations are capacity growths, counted
    // in alloc_events_.
    const auto claim = [this](std::size_t node) {
        const int slot = plan_.tensors[node].slot;
        if (slot >= 0)
            outputs_[node].data = std::move(slot_bufs_[static_cast<std::size_t>(slot)]);
        return outputs_[node].data.capacity();
    };
    const auto defined = [this](std::size_t node, std::size_t cap_before) {
        if (outputs_[node].data.capacity() > cap_before) ++alloc_events_;
        live_bytes_ += static_cast<std::int64_t>(outputs_[node].data.size()) *
                       static_cast<std::int64_t>(sizeof(std::int32_t));
        measured_peak_bytes_ = std::max(measured_peak_bytes_, live_bytes_);
    };
    const auto release_after = [this](std::size_t step) {
        for (const int dead : releases_[step]) {
            QTensor& t = outputs_[static_cast<std::size_t>(dead)];
            live_bytes_ -= static_cast<std::int64_t>(t.data.size()) *
                           static_cast<std::int64_t>(sizeof(std::int32_t));
            const int slot = plan_.tensors[static_cast<std::size_t>(dead)].slot;
            slot_bufs_[static_cast<std::size_t>(slot)] = std::move(t.data);
        }
    };

    // Quantise the input onto the FM grid (element-parallel, exact).
    const std::size_t in_cap = claim(0);
    QTensor& in = outputs_[0];
    in.shape = input.shape();
    in.data.resize(static_cast<std::size_t>(input.size()));
    const double inv_step = 1.0 / fm_fmt_.step();
    const int fm_bits = fm_fmt_.total_bits;
    {
        const float* src = input.data();
        std::int32_t* dst = in.data.data();
        core::parallel_for(0, input.size(), 4096,
                           [=](std::int64_t i0, std::int64_t i1) {
                               for (std::int64_t i = i0; i < i1; ++i)
                                   dst[i] = saturate(
                                       static_cast<std::int64_t>(
                                           std::llround(src[i] * inv_step)),
                                       fm_bits);
                           });
    }
    defined(0, in_cap);
    // The int8 plan assumed inputs inside the declared range; verify that
    // at run time and fall back to the reference path for the whole pass if
    // violated — the answer stays bit-true either way.
    bool allow_qgemm = any_qgemm_;
    if (any_qgemm_) {
        std::int32_t mn = in_hi_, mx = in_lo_;
        for (const std::int32_t v : in.data) {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
        }
        if (mn < in_lo_ || mx > in_hi_) {
            if (exec_ == QExecution::kInt8)
                throw std::invalid_argument(
                    "QEngine: strict int8: input outside the declared "
                    "[input_lo, input_hi] range (widen QuantConfig::with_input_range)");
            allow_qgemm = false;
        }
    }
    release_after(0);

    for (std::size_t i = 1; i < layers_.size(); ++i) {
        const QLayer& l = layers_[i];
        // Identities were elided at compile time (consumers rewired past
        // them) — nothing reads their slot, so skip the copy entirely.
        if (l.op == QLayer::Op::kIdentity) continue;
        const std::size_t cap = claim(i);
        if (l.op == QLayer::Op::kConv) {
            execute_conv(l, outputs_[static_cast<std::size_t>(l.inputs[0])],
                         outputs_[i], allow_qgemm);
        } else if (l.op == QLayer::Op::kDwConv3) {
            execute_dwconv(l, outputs_[static_cast<std::size_t>(l.inputs[0])],
                           outputs_[i]);
        } else {
            execute(l, outputs_[i]);
        }
        defined(i, cap);
        release_after(i);
    }

    const QTensor& out = outputs_[static_cast<std::size_t>(output_node_)];
    Tensor result(out.shape);
    const float step = static_cast<float>(fm_fmt_.step());
    {
        const std::int32_t* src = out.data.data();
        float* dst = result.data();
        core::parallel_for(0, static_cast<std::int64_t>(out.data.size()), 4096,
                           [=](std::int64_t i0, std::int64_t i1) {
                               for (std::int64_t i = i0; i < i1; ++i)
                                   dst[i] = static_cast<float>(src[i]) * step;
                           });
    }
    // The output survives to the end of the pass; park its buffer too.
    release_after(layers_.size());
    return result;
}

std::int64_t QEngine::weight_bytes() const {
    std::int64_t bits = 0;
    for (const QLayer& l : layers_)
        bits += static_cast<std::int64_t>(l.weights.size()) * cfg_.weight_bits;
    return bits / 8;
}

}  // namespace sky::quant
