#include "quant/qreport.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

namespace sky::quant {

QExecution resolved_execution(const QuantConfig& cfg) {
    // SKYNET_QENGINE overrides the config: "ref" pins the reference
    // interpreter (the rollback lever), "int8" makes fallback an error.
    if (const char* env = std::getenv("SKYNET_QENGINE")) {
        const std::string v(env);
        if (v == "ref" || v == "reference" || v == "0") return QExecution::kReference;
        if (v == "int8" || v == "strict") return QExecution::kInt8;
    }
    return cfg.execution;
}

const char* qimpl_name(QImpl impl) {
    switch (impl) {
        case QImpl::kQGemm: return "qgemm";
        case QImpl::kRefInt: return "ref-int";
        case QImpl::kFp32: return "fp32";
        case QImpl::kMemory: return "memory";
    }
    return "?";
}

const char* qexecution_name(QExecution e) {
    switch (e) {
        case QExecution::kAuto: return "auto";
        case QExecution::kInt8: return "int8";
        case QExecution::kReference: return "reference";
    }
    return "?";
}

std::string QuantReport::summary() const {
    std::ostringstream os;
    os << "quantized: fm " << fm_format.total_bits << "b (frac " << fm_format.frac_bits
       << ", step " << fm_format.step() << "), weights " << config.weight_bits
       << "b, execution " << qexecution_name(execution) << "\n";
    for (const QLayerReport& l : layers) {
        if (!l.has_weights && l.note.empty()) continue;
        os << "  [" << l.node << "] " << l.name << ": " << qimpl_name(l.impl);
        if (l.has_weights)
            os << "  w" << l.weight_format.total_bits << ".q" << l.weight_format.frac_bits
               << "  in [" << l.in_lo << ", " << l.in_hi << "]";
        if (!l.note.empty()) os << "  -- " << l.note;
        os << "\n";
    }
    os << "  convs: " << qgemm_layers << " qgemm, " << ref_layers << " ref-int";
    if (fp32_layers > 0) os << "; " << fp32_layers << " fp32-fallback layers";
    os << "; weights " << weight_bytes << " B";
    if (error_bound_known) {
        os << "\n  certified |int8 - fp32| <= " << certified_error_bound;
        if (!dominant_errors.empty()) {
            os << "  (dominant:";
            for (const auto& [node, c] : dominant_errors)
                os << " [" << node << "]=" << c;
            os << ")";
        }
        if (error_budget_exceeded)
            os << "  EXCEEDS budget " << config.error_budget;
    } else {
        os << "\n  certified |int8 - fp32|: unbounded (error tracking lost)";
    }
    if (has_activation_plan)
        os << "\n  activations @" << activation_plan_shape.str() << ": "
           << activation_plan.summary();
    return os.str();
}

}  // namespace sky::quant
