// Shared fp32 interval value-range domain over graph nodes.
//
// PR 9 introduced this domain inside verify::analyze; the certified
// quantization-error domain (quant/qerror.hpp) needs the same per-node fp32
// enclosures for its Lipschitz / saturation terms, so the transfer functions
// live here in quant — one implementation consumed by both the checker and
// the error certifier, mirroring how quant/ranges.hpp shares the grid
// domain (they can never disagree).
//
// Soundness contract: for every graph node i, the true fp32 activation
// values at i (over any input inside [cfg.input_lo, cfg.input_hi]) lie in
// values[i] whenever values[i].known.  An unknown interval means the
// analysis lost track (no transfer function) — never that the values are
// unbounded.
//
// The activation usefulness findings (dead clamp / always-saturating) are
// discovered while folding activations; they are returned as neutral
// ActEvents so verify::analyze can report them as A002/A003 without quant
// depending on the verify layer.
#pragma once

#include <string>
#include <vector>

#include "nn/graph.hpp"
#include "quant/qconfig.hpp"

namespace sky::quant {

/// Closed fp32 interval in double (so the *bound* itself never overflows).
struct Interval {
    double lo = 0.0;
    double hi = 0.0;
    bool known = false;
};

/// True when the interval proves fp32 execution can produce Inf/NaN here.
[[nodiscard]] bool interval_blown(const Interval& v);

/// "[lo, hi]" with %.4g bounds (the rendering the diagnostics quote).
[[nodiscard]] std::string interval_str(const Interval& v);

/// An activation whose clamp is statically useless — either it never fires
/// (dead) or it always saturates (the layer erases its features).
struct ActEvent {
    enum class Kind {
        kDeadClamp,    ///< clamp never fires (verify reports as A002)
        kSaturating,   ///< output is statically constant (verify: A003)
    };
    Kind kind = Kind::kDeadClamp;
    int node = 0;          ///< graph node the activation lives at
    std::string message;   ///< fully-formed finding text
    std::string hint;
};

struct IntervalAnalysis {
    std::vector<Interval> values;  ///< one per graph node
    std::vector<ActEvent> events;
};

/// Forward dataflow pass over the graph: input nodes start at
/// [cfg.input_lo, cfg.input_hi], concat takes the union, add the sum, and
/// modules apply the per-kind transfer functions (per-out-channel sign-split
/// sums for convs, per-channel affine for BN, exact clamp images for
/// activations; kinds without a transfer widen to unknown).
[[nodiscard]] IntervalAnalysis propagate_value_intervals(const nn::Graph& g,
                                                         const QuantConfig& cfg);

/// Transfer function of a single module (Sequential folds stage by stage).
/// `node` labels any ActEvents appended to `events`; pass nullptr to skip
/// event collection (the error domain only needs the enclosure).
[[nodiscard]] Interval module_value_interval(const nn::Module& m, Interval in, int node,
                                             std::vector<ActEvent>* events);

}  // namespace sky::quant
