// Typed result of compiling a quantization scheme — what Detector::quantize
// returns instead of void.
//
// The report records, per graph node, which datapath the integer engine
// planned (packed int8 GEMM / reference integer interpreter / fp32 fallback
// / memory-only op), the per-layer weight format, and the propagated input
// value range on the fixed-point grid that justified the plan.  summary()
// renders the human-readable table the examples print.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "deploy/memory_plan.hpp"
#include "quant/fixed_point.hpp"
#include "quant/qconfig.hpp"

namespace sky::quant {

/// Execution plan of one compiled layer.
enum class QImpl {
    kQGemm,   ///< packed u8 x s8 GEMM + fixed-point requantization
    kRefInt,  ///< scalar integer interpreter (bit-true by construction)
    kFp32,    ///< dequantize -> float module -> requantize (opt-in fallback)
    kMemory,  ///< pool / reorder / concat / identity — no arithmetic format
};

[[nodiscard]] const char* qimpl_name(QImpl impl);

struct QLayerReport {
    int node = 0;
    std::string name;          ///< module name, or "input"/"concat"/"add"
    QImpl impl = QImpl::kMemory;
    FixedPointFormat weight_format{};  ///< convs only (has_weights)
    bool has_weights = false;          ///< false for memory/activation ops
    std::int32_t in_lo = 0;    ///< propagated input range on the FM grid
    std::int32_t in_hi = 0;
    std::string note;          ///< e.g. the reason a conv fell back to kRefInt

    /// Certified |int8 - fp32| bound on this layer's output tensor
    /// (quant/qerror.hpp); error_known is false when the error domain lost
    /// track at or before this node.
    double error_bound = 0.0;
    bool error_known = false;
};

struct QuantReport {
    QuantConfig config;
    QExecution execution = QExecution::kAuto;  ///< resolved (env applied)
    FixedPointFormat fm_format{};
    std::vector<QLayerReport> layers;
    int qgemm_layers = 0;  ///< convs on the packed int8 GEMM path
    int ref_layers = 0;    ///< convs on the reference integer path
    int fp32_layers = 0;   ///< layers running the fp32 fallback
    std::int64_t weight_bytes = 0;  ///< deployed integer-weight size

    /// Certified bound on |int8 output - fp32 output| at the graph output
    /// (sup over elements, any input inside the declared range), from the
    /// shared error domain quant::certify_error.  error_bound_known is
    /// false when tracking was lost (verify::analyze reports it as E002).
    double certified_error_bound = 0.0;
    bool error_bound_known = false;
    /// Top error contributors (node, introduced error * downstream gain),
    /// largest first — the layers to fix when the bound is too loose.
    std::vector<std::pair<int, double>> dominant_errors;
    /// True when config.error_budget > 0 and the certified bound exceeds it
    /// or could not be established (Detector::quantize throws instead when
    /// strict_error_budget is set).
    bool error_budget_exceeded = false;

    /// Static activation memory plan (tensor liveness + arena slots) the
    /// engine executes out of, computed for `activation_plan_shape` by
    /// QEngine::plan_activations (Detector::quantize plans at the canonical
    /// DAC-SDC input shape).  has_activation_plan is false until then.
    deploy::MemoryPlan activation_plan;
    Shape activation_plan_shape{};
    bool has_activation_plan = false;

    /// Multi-line human-readable table (one row per layer with weights or a
    /// fallback note, plus a totals line).
    [[nodiscard]] std::string summary() const;
};

}  // namespace sky::quant
