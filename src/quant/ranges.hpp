// Shared value-range analysis on the fixed-point feature-map grid.
//
// This is the single source of truth for the range reasoning the integer
// engine's execution plan rests on.  quant::QEngine used to carry a private
// copy of this propagation; now both the engine and the static analysis
// layer (verify::analyze) call the same transfer functions, so the verifier
// and the engine can never disagree about which layers are provably
// int8-eligible (docs/STATIC_ANALYSIS.md "Abstract interpretation").
//
// The domain is an inclusive interval [lo, hi] of values on the shared FM
// grid (two's-complement integers of fm_bits).  The propagation is a single
// forward pass over the topologically-ordered graph:
//
//   input              -> the declared [input_lo, input_hi] on the grid
//   ReLU               -> [max(lo, 0), max(hi, 0)]
//   ReLU6              -> [clamp(lo, 0, six), clamp(hi, 0, six)]
//   pool / reorder /
//     identity         -> preserved (data movement / max selection)
//   concat             -> union of the input intervals
//   conv / dwconv /
//     bias / add / any
//     other module     -> the full grid (every executed value requantizes
//                         onto the grid, so this is always sound)
//
// prove_qgemm() is the engine's per-conv eligibility proof over that
// domain: u8 span, s16 weight operand, and the value-aware int32
// accumulator bound K * max|w| * span < 2^31 (core/qgemm.hpp's contract).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.hpp"
#include "quant/fixed_point.hpp"
#include "quant/qconfig.hpp"

namespace sky::quant {

/// Inclusive value range of a node's output on the FM grid.
struct GridRange {
    std::int32_t lo = 0;
    std::int32_t hi = 0;
};

/// The shared fixed-point grid a scheme defines: the FM format, its
/// two's-complement bounds, the ReLU6 clip constant and the declared input
/// range, all expressed as grid integers.
struct GridSpec {
    FixedPointFormat fm{};
    std::int32_t grid_lo = 0, grid_hi = 0;
    std::int32_t six = 0;            ///< ReLU6 clip on the grid (saturated)
    std::int32_t in_lo = 0, in_hi = 0;
};

/// Resolve a scheme into its grid.  Throws std::invalid_argument on a
/// degenerate scheme (bits outside [2, 32], input_lo > input_hi) — the same
/// contract QEngine's constructor enforces; verify::check_qmodel reports
/// the violation as Q005 without throwing.
[[nodiscard]] GridSpec make_grid_spec(const QuantConfig& cfg);

/// Forward interval propagation over `g` on the grid of `spec`.  Returns
/// one range per graph node, in node order.  Never throws on unsupported
/// modules — unknown kinds conservatively widen to the full grid.
[[nodiscard]] std::vector<GridRange> propagate_grid_ranges(const nn::Graph& g,
                                                           const GridSpec& spec);

/// Largest |w| after quantising `w` to `fmt` — the max|w| term of the
/// accumulator bound, computed exactly the way the engine quantises.
[[nodiscard]] std::int64_t quantized_abs_max(const Tensor& w,
                                             const FixedPointFormat& fmt);

/// Outcome of the int8 GEMM eligibility proof for one convolution.
struct ConvProof {
    bool eligible = false;
    std::int32_t zero_point = 0;  ///< u8 operand stores x - zero_point
    std::int64_t span = 0;        ///< hi - zero_point (grid values covered)
    std::int64_t acc_bound = 0;   ///< K * max|w| * span (int32-exact iff < 2^31)
    std::string reason;           ///< why not eligible; empty when eligible
};

/// Prove (or refute) packed-int8 eligibility for a conv with reduction
/// depth `K = in_ch * k * k`, padding `pad`, scheme weight width
/// `weight_bits`, quantised weight magnitude `wmax`, and the propagated
/// input range `in`.  Pure arithmetic on the analysis result — the engine
/// packs weights only for proofs that come back eligible, and
/// verify::analyze reports A004 when the accumulator bound is the reason.
[[nodiscard]] ConvProof prove_qgemm(int K, int pad, int weight_bits,
                                    std::int64_t wmax, GridRange in);

}  // namespace sky::quant
