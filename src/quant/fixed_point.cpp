#include "quant/fixed_point.hpp"

#include <algorithm>
#include <cmath>

namespace sky::quant {

double FixedPointFormat::step() const { return std::ldexp(1.0, -frac_bits); }

double FixedPointFormat::max_val() const {
    return (std::ldexp(1.0, total_bits - 1) - 1.0) * step();
}

double FixedPointFormat::min_val() const {
    return -std::ldexp(1.0, total_bits - 1) * step();
}

float FixedPointFormat::quantize(float v) const {
    const double s = step();
    const double q = std::nearbyint(static_cast<double>(v) / s);
    const double lo = -std::ldexp(1.0, total_bits - 1);
    const double hi = std::ldexp(1.0, total_bits - 1) - 1.0;
    return static_cast<float>(std::clamp(q, lo, hi) * s);
}

FixedPointFormat choose_format(int total_bits, float abs_max) {
    // Integer bits needed to cover abs_max (sign bit excluded).
    int int_bits = 0;
    double cover = 1.0;
    const double target = std::max(static_cast<double>(abs_max), 1e-12);
    // Allow negative integer bits (all-fractional formats) for small ranges.
    while (cover < target && int_bits < total_bits - 1) {
        ++int_bits;
        cover *= 2.0;
    }
    while (int_bits > -(62 - total_bits) && cover * 0.5 >= target) {
        --int_bits;
        cover *= 0.5;
    }
    return {total_bits, total_bits - 1 - int_bits};
}

void quantize_tensor(Tensor& t, const FixedPointFormat& fmt) {
    float* p = t.data();
    const std::int64_t n = t.size();
    for (std::int64_t i = 0; i < n; ++i) p[i] = fmt.quantize(p[i]);
}

double quantization_mse(const Tensor& t, const FixedPointFormat& fmt) {
    const float* p = t.data();
    const std::int64_t n = t.size();
    if (n == 0) return 0.0;
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(p[i]) - fmt.quantize(p[i]);
        acc += d * d;
    }
    return acc / static_cast<double>(n);
}

}  // namespace sky::quant
