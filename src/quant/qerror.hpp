// Certified quantization error bounds — the affine/interval *error domain*.
//
// certify_error() statically derives, per graph node, a sound upper bound on
//
//     max_elem | QEngine::run(x) at node  -  fp32 forward(x) at node |
//
// over every input x inside the declared [cfg.input_lo, cfg.input_hi] range.
// The bound is built from the exact rounding the integer engine performs
// (src/quant/qengine.cpp) — nothing is estimated:
//
//   input        u8 grid rounding <= half an FM step, plus saturation when
//                the declared range spills past the representable grid
//   conv/dwconv  s16 weight rounding |w_hat - w| summed exactly per output
//                channel and scaled by the fp32 magnitude bound, incoming
//                error amplified by the quantized Lipschitz factor
//                sum|w_hat| per (out, in) channel pair, bias rounding at
//                accumulator scale, one half-step requantization rounding,
//                and grid-clamp saturation versus the fp32 interval
//   bias/add     exact on-grid integer arithmetic: only the bias's own grid
//                rounding plus clamp saturation enter
//   clamps       ReLU is 1-Lipschitz on both sides; ReLU6 adds the exact
//                |six_hat - 6| grid offset
//   fallbacks    dequantize -> float module -> requantize contributes the
//                module's real Lipschitz gain plus one half-step rounding
//                (the fallback runs the *original* weights, so no weight
//                rounding term)
//
// Every per-node bound is finally capped by the trivial two-sided enclosure
// max(E.hi - V.lo, V.hi - E.lo) — the engine value provably lives in the
// grid enclosure E (quant/ranges.hpp) and the fp32 value in the interval V
// (quant/intervals.hpp) — which is what keeps deep chains from compounding
// exponentially: a ReLU6 can never be more than ~6 wrong.
//
// The zero-point rowsum correction is algebraically exact in the engine and
// therefore contributes no term.  fp32 round-off of the float reference
// itself (~1e-7 relative) is outside the model; it is orders of magnitude
// below the half-step terms the bound always contains (docs/QUANTIZATION.md
// "error budgets").
//
// For layers the engine cannot compile without cfg.fp32_fallback the domain
// models the fallback datapath — i.e. the bound certifies the engine *as it
// would run with fallback enabled*; configs that instead throw at
// construction are a stricter failure the Q-codes already report.
//
// Shared by verify::analyze (E-series diagnostics), QEngine (QuantReport
// certified bound) and Detector::quantize (budget enforcement), mirroring
// the quant/ranges.hpp design: one propagation, three consumers, zero
// disagreement.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "nn/graph.hpp"
#include "quant/intervals.hpp"
#include "quant/qconfig.hpp"
#include "quant/ranges.hpp"

namespace sky::quant {

/// Certified |int - fp32| bound for one tensor: `bound` is the sup over
/// elements; `per_ch` optionally refines it per channel (empty = uniform —
/// channel structure was widened away, e.g. across a reorder).
struct ErrBound {
    bool known = false;
    double bound = 0.0;
    std::vector<double> per_ch;

    [[nodiscard]] double channel(std::size_t c) const {
        return c < per_ch.size() ? per_ch[c] : bound;
    }
};

/// Per-node result of the error domain.
struct NodeError {
    ErrBound out;              ///< certified bound on this node's output
    double introduced = 0.0;   ///< fresh rounding/saturation added here
    double gain = 0.0;         ///< amplification from here to the output
    double contribution = 0.0; ///< introduced * gain — the E003 ranking key
};

struct ErrorAnalysis {
    std::vector<NodeError> nodes;   ///< one per graph node
    bool output_known = false;
    double output_bound = 0.0;      ///< certified bound at the output node
    int output_node = -1;
    int first_unknown_node = -1;    ///< -1: every node stayed bounded
    std::string unknown_reason;     ///< why tracking was lost (E002 text)

    /// Top-k error contributors (node, contribution), largest first —
    /// introduced error weighted by the downstream Lipschitz gain to the
    /// output.  Zero-contribution nodes are omitted.
    [[nodiscard]] std::vector<std::pair<int, double>> dominant(std::size_t k) const;
};

/// Propagate the error domain over `g` under scheme `cfg`.  Never throws: a
/// degenerate scheme (make_grid_spec would reject it) yields an all-unknown
/// analysis with the reason recorded.
[[nodiscard]] ErrorAnalysis certify_error(const nn::Graph& g, const QuantConfig& cfg);

/// Same, reusing already-computed value intervals and grid ranges (the
/// verify::analyze composition — `vals` from propagate_value_intervals,
/// `grid` from propagate_grid_ranges, both under the same `cfg`).
[[nodiscard]] ErrorAnalysis certify_error(const nn::Graph& g, const QuantConfig& cfg,
                                          const IntervalAnalysis& vals,
                                          const std::vector<GridRange>& grid);

/// E004 helper: the minimum feature-map fractional bits for which the
/// certified bound would (to first order — the bound's half-step terms scale
/// with the FM step) fit inside `budget`, given it is `bound` at
/// `frac_bits` today.  Returns frac_bits when already inside.
[[nodiscard]] int min_frac_bits_for_budget(double bound, double budget, int frac_bits);

}  // namespace sky::quant
