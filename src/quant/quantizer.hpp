// Network-level quantisation: per-tensor weight rounding and a feature-map
// hook, with snapshot/restore so sweeps (Table 7, Fig. 2a) are
// non-destructive.
#pragma once

#include "nn/fm_hook.hpp"
#include "nn/module.hpp"
#include "quant/fixed_point.hpp"

namespace sky::quant {

/// Capture / restore all parameters of a network (float master copy).
class ParamSnapshot {
public:
    explicit ParamSnapshot(nn::Module& net);
    void restore();

private:
    std::vector<nn::ParamRef> params_;
    std::vector<Tensor> saved_;
};

/// Quantise every parameter tensor of `net` in place to `bits`, each with
/// its own calibrated format.  Returns total parameter bytes at that width.
std::int64_t quantize_weights(nn::Module& net, int bits);

/// Feature-map quantisation hook: each activation tensor is rounded to a
/// `bits`-wide fixed-point format calibrated to its own dynamic range
/// (idealised per-layer calibration).
[[nodiscard]] nn::FmHook make_fm_hook(int bits);

/// Static variant: one fixed-point format shared by every feature map, with
/// the range chosen offline (`abs_max`).  This is what an IP-shared FPGA
/// design with a single FM buffer format actually deploys, and it is the
/// regime where activation precision dominates accuracy (Fig. 2a).
[[nodiscard]] nn::FmHook make_static_fm_hook(int bits, float abs_max);

/// Largest activation magnitude `net` produces on `calibration` (runs one
/// eval-mode forward with a recording hook installed).
[[nodiscard]] float calibrate_fm_abs_max(nn::Module& net, const Tensor& calibration);

/// The five FPGA deployment schemes of Table 7 (scheme 0 = float baseline).
struct QuantScheme {
    int id;
    int fm_bits;      ///< 0 = float32
    int weight_bits;  ///< 0 = float32
};
[[nodiscard]] std::vector<QuantScheme> table7_schemes();

}  // namespace sky::quant
