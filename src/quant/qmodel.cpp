#include "quant/qmodel.hpp"

#include "detect/metrics.hpp"
#include "train/trainer.hpp"

namespace sky::quant {

double detector_iou_quantized(nn::Module& net, const detect::YoloHead& head,
                              const data::DetectionBatch& val, int fm_bits,
                              int weight_bits, float fm_abs_max) {
    ParamSnapshot snapshot(net);
    if (weight_bits > 0) quantize_weights(net, weight_bits);
    double iou = 0.0;
    {
        nn::FmHook hook;
        if (fm_bits > 0)
            hook = fm_abs_max > 0.0f ? make_static_fm_hook(fm_bits, fm_abs_max)
                                     : make_fm_hook(fm_bits);
        nn::FmHookGuard guard(hook);
        net.set_training(false);
        Tensor raw = net.forward(val.images);
        // The accelerator emits its output map in fixed point too.
        if (hook) hook(raw);
        iou = detect::mean_iou(head.decode(raw), val.boxes);
    }
    snapshot.restore();
    return iou;
}

double classifier_acc_quantized(nn::Module& net, const data::ClassificationBatch& val,
                                int fm_bits, int weight_bits, float fm_abs_max) {
    ParamSnapshot snapshot(net);
    if (weight_bits > 0) quantize_weights(net, weight_bits);
    double acc = 0.0;
    {
        nn::FmHookGuard guard(fm_bits > 0
                                  ? (fm_abs_max > 0.0f
                                         ? make_static_fm_hook(fm_bits, fm_abs_max)
                                         : make_fm_hook(fm_bits))
                                  : nn::FmHook{});
        net.set_training(false);
        acc = train::evaluate_classifier(net, val);
    }
    snapshot.restore();
    return acc;
}

}  // namespace sky::quant
