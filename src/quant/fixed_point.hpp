// Bit-true signed fixed-point arithmetic for the quantization studies
// (Fig. 2a, Table 7, and the FPGA deployment path of §6.4.1).
//
// A value is represented as a two's-complement integer of `total_bits` with
// `frac_bits` fractional bits; quantisation is round-to-nearest with
// saturation.  choose_format() picks the fractional width that covers a
// given dynamic range — this models the per-tensor calibration every FPGA
// entry in Table 1 performs before deployment.
#pragma once

#include <algorithm>
#include <cstdint>

#include "tensor/tensor.hpp"

namespace sky::quant {

struct FixedPointFormat {
    int total_bits = 16;
    int frac_bits = 8;

    [[nodiscard]] double step() const;     ///< value of one LSB
    [[nodiscard]] double max_val() const;  ///< largest representable value
    [[nodiscard]] double min_val() const;  ///< most negative representable value
    [[nodiscard]] float quantize(float v) const;
};

/// Smallest-step format of `total_bits` whose range covers [-abs_max, abs_max].
[[nodiscard]] FixedPointFormat choose_format(int total_bits, float abs_max);

// --- Integer grid primitives (the QEngine requantization datapath) -------

/// Clamp `v` into the two's-complement range of a `bits`-wide word.
/// Inline: this sits inside every requantization loop of the int8 engine.
[[nodiscard]] inline std::int32_t saturate(std::int64_t v, int bits) {
    const std::int64_t hi = (1LL << (bits - 1)) - 1;
    const std::int64_t lo = -(1LL << (bits - 1));
    return static_cast<std::int32_t>(std::clamp(v, lo, hi));
}

/// Round-to-nearest arithmetic right shift, ties away from zero (the FPGA
/// requantization rounding).  shift <= 0 is an exact left shift.
[[nodiscard]] inline std::int64_t round_shift(std::int64_t v, int shift) {
    if (shift <= 0) return v << (-shift);
    const std::int64_t half = 1LL << (shift - 1);
    return v >= 0 ? (v + half) >> shift : -((-v + half) >> shift);
}

/// Round every element of `t` to the fixed-point grid (in place).
void quantize_tensor(Tensor& t, const FixedPointFormat& fmt);

/// Mean squared quantisation error of `t` under `fmt` (t unchanged).
[[nodiscard]] double quantization_mse(const Tensor& t, const FixedPointFormat& fmt);

}  // namespace sky::quant
