#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sky::obs {
namespace {

std::atomic<TraceSession*> g_session{nullptr};

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string num(double v) {
    if (!std::isfinite(v)) return "0";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return buf;
}

}  // namespace

TraceSession::TraceSession() : origin_(std::chrono::steady_clock::now()) {}

int TraceSession::thread_slot_locked() {
    const std::thread::id self = std::this_thread::get_id();
    const auto it = std::find(threads_.begin(), threads_.end(), self);
    if (it != threads_.end()) return static_cast<int>(it - threads_.begin());
    threads_.push_back(self);
    return static_cast<int>(threads_.size()) - 1;
}

void TraceSession::record(std::string name, std::string cat, double ts_us, double dur_us,
                          int tid) {
    core::MutexLock lock(mu_);
    events_.push_back({std::move(name), std::move(cat), ts_us, dur_us, tid});
}

void TraceSession::record_span(const char* name, const char* cat,
                               std::chrono::steady_clock::time_point start,
                               std::chrono::steady_clock::time_point end) {
    const double ts_us =
        std::chrono::duration<double, std::micro>(start - origin_).count();
    const double dur_us = std::chrono::duration<double, std::micro>(end - start).count();
    core::MutexLock lock(mu_);
    events_.push_back({name, cat, ts_us, dur_us, thread_slot_locked()});
}

std::size_t TraceSession::size() const {
    core::MutexLock lock(mu_);
    return events_.size();
}

std::vector<TraceEvent> TraceSession::events() const {
    core::MutexLock lock(mu_);
    return events_;
}

std::string TraceSession::to_json() const {
    const std::vector<TraceEvent> evs = events();
    std::ostringstream os;
    os << "{\n\"traceEvents\": [";
    for (std::size_t i = 0; i < evs.size(); ++i) {
        const TraceEvent& e = evs[i];
        os << (i ? "," : "") << "\n  {\"name\": \"" << escape(e.name) << "\", \"cat\": \""
           << escape(e.cat) << "\", \"ph\": \"X\", \"ts\": " << num(e.ts_us)
           << ", \"dur\": " << num(e.dur_us) << ", \"pid\": 0, \"tid\": " << e.tid << "}";
    }
    os << (evs.empty() ? "" : "\n") << "],\n\"displayTimeUnit\": \"ms\"\n}\n";
    return os.str();
}

bool TraceSession::save(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_json();
    return static_cast<bool>(out);
}

void TraceSession::clear() {
    core::MutexLock lock(mu_);
    events_.clear();
    threads_.clear();
}

void set_trace_session(TraceSession* session) {
    g_session.store(session, std::memory_order_release);
}

TraceSession* trace_session() { return g_session.load(std::memory_order_acquire); }

TraceGuard::TraceGuard(TraceSession& session) : previous_(trace_session()) {
    set_trace_session(&session);
}

TraceGuard::~TraceGuard() { set_trace_session(previous_); }

Span::Span(const char* name, const char* cat)
    : session_(trace_session()), name_(name), cat_(cat) {
    if (session_) start_ = std::chrono::steady_clock::now();
}

void Span::end() {
    if (!session_) return;
    session_->record_span(name_, cat_, start_, std::chrono::steady_clock::now());
    session_ = nullptr;
}

}  // namespace sky::obs
