// Per-layer profiler for Graph networks.
//
// GraphProfiler wraps every module node of a Graph in a timing shim (via
// Graph::replace_module) that records forward/backward wall time, the MAC
// count at the observed input shape, and output-tensor statistics — the
// per-layer cost data behind the paper's Bundle latency models and roofline
// analyses, measured instead of estimated.  While a trace session is
// installed each layer forward also emits a span, so a profiled inference
// shows up in chrome://tracing as a per-layer timeline.  The shims delegate
// everything else (params, state, shapes, enumerate), so a profiled network
// trains, checkpoints and estimates identically; detach() restores the
// original modules.
#pragma once

#include <memory>

#include "nn/graph.hpp"

namespace sky::obs {

class Logger;
class Registry;

struct LayerProfile {
    int node = 0;  ///< graph node id
    std::string name;
    std::string kind;
    Shape in, out;              ///< shapes seen by the last forward
    std::int64_t macs = 0;      ///< at the last forward's input shape
    std::int64_t params = 0;
    int fwd_calls = 0;
    int bwd_calls = 0;
    double fwd_ms = 0.0;  ///< accumulated
    double bwd_ms = 0.0;
    double out_mean = 0.0;    ///< over the last forward's output
    double out_absmax = 0.0;
    int threads = 0;  ///< kernel-engine thread count during the last forward

    [[nodiscard]] double fwd_ms_avg() const {
        return fwd_calls ? fwd_ms / fwd_calls : 0.0;
    }
    /// Effective forward GFLOP/s (2 FLOPs per MAC) over the accumulated runs.
    [[nodiscard]] double fwd_gflops() const {
        return fwd_ms > 0.0
                   ? 2.0 * static_cast<double>(macs) * fwd_calls / (fwd_ms * 1e6)
                   : 0.0;
    }
};

class GraphProfiler {
public:
    /// Wraps every kModule node of `graph`; the graph must outlive the
    /// profiler (or detach() must be called first).
    explicit GraphProfiler(nn::Graph& graph);
    ~GraphProfiler();
    GraphProfiler(const GraphProfiler&) = delete;
    GraphProfiler& operator=(const GraphProfiler&) = delete;

    /// Restore the original modules (idempotent; called by the destructor).
    void detach();
    /// Zero all accumulated timings and call counts.
    void reset();

    /// Number of profiled (module) nodes.
    [[nodiscard]] std::size_t layer_count() const { return slots_.size(); }
    [[nodiscard]] std::vector<LayerProfile> profiles() const;
    [[nodiscard]] double total_forward_ms() const;
    [[nodiscard]] double total_backward_ms() const;

    /// {"layers": [...], "total_fwd_ms": ..., "total_bwd_ms": ...}
    [[nodiscard]] std::string to_json() const;
    bool save_json(const std::string& path) const;
    /// Export per-layer gauges (`<prefix>.<node>.<kind>.fwd_ms` / `.gflops` /
    /// `.threads`) plus totals into a metrics registry.
    void export_metrics(Registry& registry, const std::string& prefix) const;
    /// Fixed-width per-layer table (name, kind, out shape, MACs, time, %).
    void print_table(Logger& log) const;

private:
    nn::Graph* graph_;
    // Heap slots so the shim modules hold stable LayerProfile pointers.
    std::vector<std::unique_ptr<LayerProfile>> slots_;
    bool attached_ = false;
};

}  // namespace sky::obs
