// Pluggable logging sink for the library's progress output.
//
// Library code never writes to stdout directly: every component that used to
// gate `std::printf` behind a `verbose` bool now takes an `obs::Logger*`
// (nullptr by default) and routes its messages through `resolve()`.  The
// default sink is a no-op, so instrumented code paths cost one pointer test
// when observability is off; tests install a capturing logger to assert on
// the emitted text.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace sky::obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2 };

[[nodiscard]] const char* level_name(LogLevel level);

class Logger {
public:
    virtual ~Logger() = default;

    /// Sink entry point: receive one complete message (no trailing newline).
    virtual void write(LogLevel level, const std::string& msg) = 0;

    // printf-style conveniences; messages longer than 1 KiB are truncated.
    void logf(LogLevel level, const char* fmt, ...);
    void debugf(const char* fmt, ...);
    void infof(const char* fmt, ...);
    void warnf(const char* fmt, ...);

private:
    void vlogf(LogLevel level, const char* fmt, std::va_list args);
};

/// Swallows everything (the default sink).
class NullLogger final : public Logger {
public:
    void write(LogLevel, const std::string&) override {}
};

/// Prints to a stdio stream, one line per message.
class StreamLogger final : public Logger {
public:
    explicit StreamLogger(std::FILE* out = stdout, LogLevel min_level = LogLevel::kDebug)
        : out_(out), min_level_(min_level) {}
    void write(LogLevel level, const std::string& msg) override;

private:
    std::FILE* out_;
    LogLevel min_level_;
};

/// Process-wide singleton sinks.
[[nodiscard]] Logger& null_logger();
[[nodiscard]] Logger& stdout_logger();

/// Config helper: an explicitly supplied sink always wins; otherwise the
/// legacy `verbose` bool selects between stdout and the no-op sink.
[[nodiscard]] Logger& resolve(Logger* log, bool verbose);

}  // namespace sky::obs
