#include "obs/profiler.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/thread_pool.hpp"
#include "obs/logger.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sky::obs {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Timing shim installed around each module node.  Owns the real module and
/// forwards every Module virtual to it, so the wrapped graph behaves
/// identically to training, serialization and the hardware estimators.
class ProfiledModule final : public nn::Module {
public:
    ProfiledModule(nn::ModulePtr inner, LayerProfile* prof)
        : inner_(std::move(inner)), prof_(prof) {}

    Tensor forward(const Tensor& x) override {
        Span span(prof_->name.c_str(), "layer");
        const auto t0 = Clock::now();
        Tensor y = inner_->forward(x);
        prof_->fwd_ms += ms_since(t0);
        ++prof_->fwd_calls;
        prof_->in = x.shape();
        prof_->out = y.shape();
        prof_->macs = inner_->macs(x.shape());
        prof_->threads = core::ThreadPool::global().size();
        double sum = 0.0, absmax = 0.0;
        const float* p = y.data();
        for (std::int64_t i = 0, n = y.size(); i < n; ++i) {
            sum += p[i];
            absmax = std::max(absmax, static_cast<double>(std::fabs(p[i])));
        }
        prof_->out_mean = y.size() ? sum / static_cast<double>(y.size()) : 0.0;
        prof_->out_absmax = absmax;
        return y;
    }

    Tensor backward(const Tensor& grad_out) override {
        const auto t0 = Clock::now();
        Tensor g = inner_->backward(grad_out);
        prof_->bwd_ms += ms_since(t0);
        ++prof_->bwd_calls;
        return g;
    }

    void collect_params(std::vector<nn::ParamRef>& out) override {
        inner_->collect_params(out);
    }
    void collect_state(std::vector<Tensor*>& out) override { inner_->collect_state(out); }
    void set_training(bool training) override {
        Module::set_training(training);
        inner_->set_training(training);
    }
    [[nodiscard]] std::string name() const override { return inner_->name(); }
    [[nodiscard]] Shape out_shape(const Shape& in) const override {
        return inner_->out_shape(in);
    }
    [[nodiscard]] std::int64_t macs(const Shape& in) const override {
        return inner_->macs(in);
    }
    [[nodiscard]] std::int64_t param_count() const override { return inner_->param_count(); }
    [[nodiscard]] std::string kind() const override { return inner_->kind(); }
    void enumerate(const Shape& in, std::vector<nn::LayerInfo>& out) const override {
        inner_->enumerate(in, out);
    }

    [[nodiscard]] nn::ModulePtr release_inner() { return std::move(inner_); }

private:
    nn::ModulePtr inner_;
    LayerProfile* prof_;
};

}  // namespace

GraphProfiler::GraphProfiler(nn::Graph& graph) : graph_(&graph) {
    for (std::size_t i = 0; i < graph.node_count(); ++i) {
        if (graph.node_kind(i) != nn::Graph::NodeKind::kModule) continue;
        auto prof = std::make_unique<LayerProfile>();
        prof->node = static_cast<int>(i);
        prof->name = graph.node_module(i)->name();
        prof->kind = graph.node_module(i)->kind();
        prof->params = graph.node_module(i)->param_count();
        nn::ModulePtr original = graph.replace_module(i, nullptr);
        graph.replace_module(
            i, std::make_unique<ProfiledModule>(std::move(original), prof.get()));
        slots_.push_back(std::move(prof));
    }
    attached_ = true;
}

GraphProfiler::~GraphProfiler() { detach(); }

void GraphProfiler::detach() {
    if (!attached_) return;
    for (const auto& slot : slots_) {
        const auto node = static_cast<std::size_t>(slot->node);
        auto* shim = static_cast<ProfiledModule*>(graph_->node_module(node));
        graph_->replace_module(node, shim->release_inner());
    }
    attached_ = false;
}

void GraphProfiler::reset() {
    for (const auto& slot : slots_) {
        slot->fwd_calls = 0;
        slot->bwd_calls = 0;
        slot->fwd_ms = 0.0;
        slot->bwd_ms = 0.0;
        slot->out_mean = 0.0;
        slot->out_absmax = 0.0;
    }
}

std::vector<LayerProfile> GraphProfiler::profiles() const {
    std::vector<LayerProfile> out;
    out.reserve(slots_.size());
    for (const auto& slot : slots_) out.push_back(*slot);
    return out;
}

double GraphProfiler::total_forward_ms() const {
    double total = 0.0;
    for (const auto& slot : slots_) total += slot->fwd_ms;
    return total;
}

double GraphProfiler::total_backward_ms() const {
    double total = 0.0;
    for (const auto& slot : slots_) total += slot->bwd_ms;
    return total;
}

std::string GraphProfiler::to_json() const {
    std::ostringstream os;
    os << "{\n  \"layers\": [";
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const LayerProfile& p = *slots_[i];
        char buf[224];
        std::snprintf(buf, sizeof buf,
                      "\"fwd_calls\": %d, \"bwd_calls\": %d, \"fwd_ms\": %.6f, "
                      "\"bwd_ms\": %.6f, \"out_mean\": %.6g, \"out_absmax\": %.6g, "
                      "\"threads\": %d, \"gflops\": %.4f",
                      p.fwd_calls, p.bwd_calls, p.fwd_ms, p.bwd_ms,
                      std::isfinite(p.out_mean) ? p.out_mean : 0.0,
                      std::isfinite(p.out_absmax) ? p.out_absmax : 0.0, p.threads,
                      p.fwd_gflops());
        os << (i ? "," : "") << "\n    {\"node\": " << p.node << ", \"name\": \"" << p.name
           << "\", \"kind\": \"" << p.kind << "\", \"in\": " << p.in.str()
           << ", \"out\": " << p.out.str() << ", \"macs\": " << p.macs
           << ", \"params\": " << p.params << ", " << buf << "}";
    }
    char totals[96];
    std::snprintf(totals, sizeof totals,
                  "\n  \"total_fwd_ms\": %.6f,\n  \"total_bwd_ms\": %.6f\n",
                  total_forward_ms(), total_backward_ms());
    os << (slots_.empty() ? "" : "\n  ") << "]," << totals << "}\n";
    return os.str();
}

bool GraphProfiler::save_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_json();
    return static_cast<bool>(out);
}

void GraphProfiler::export_metrics(Registry& registry, const std::string& prefix) const {
    double total_gmacs = 0.0;
    for (const auto& slot : slots_) {
        const LayerProfile& p = *slot;
        const std::string base = prefix + "." + std::to_string(p.node) + "." + p.kind;
        registry.set(base + ".fwd_ms", p.fwd_ms_avg());
        registry.set(base + ".gflops", p.fwd_gflops());
        registry.set(base + ".threads", p.threads);
        total_gmacs += static_cast<double>(p.macs) * p.fwd_calls;
    }
    const double total_ms = total_forward_ms();
    registry.set(prefix + ".total_fwd_ms", total_ms);
    registry.set(prefix + ".total_gflops",
                 total_ms > 0.0 ? 2.0 * total_gmacs / (total_ms * 1e6) : 0.0);
}

void GraphProfiler::print_table(Logger& log) const {
    const double total_ms = total_forward_ms();
    log.infof("%4s %-24s %-8s %-18s %12s %10s %10s %8s %3s %7s", "node", "layer", "kind",
              "out", "MACs", "ms/call", "fwd ms", "GFLOP/s", "thr", "%");
    for (const auto& slot : slots_) {
        const LayerProfile& p = *slot;
        const double pct = total_ms > 0.0 ? 100.0 * p.fwd_ms / total_ms : 0.0;
        log.infof("%4d %-24s %-8s %-18s %12lld %10.3f %10.3f %8.2f %3d %6.1f%%", p.node,
                  p.name.c_str(), p.kind.c_str(), p.out.str().c_str(),
                  static_cast<long long>(p.macs), p.fwd_ms_avg(), p.fwd_ms,
                  p.fwd_gflops(), p.threads, pct);
    }
    log.infof("%4s %-24s %-8s %-18s %12s %10s %10.3f %8s %3s %6s", "", "total", "", "",
              "", "", total_ms, "", "", "100%");
}

}  // namespace sky::obs
