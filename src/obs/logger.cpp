#include "obs/logger.hpp"

namespace sky::obs {

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
    }
    return "?";
}

void Logger::vlogf(LogLevel level, const char* fmt, std::va_list args) {
    char buf[1024];
    std::vsnprintf(buf, sizeof buf, fmt, args);
    write(level, buf);
}

void Logger::logf(LogLevel level, const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    vlogf(level, fmt, args);
    va_end(args);
}

void Logger::debugf(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    vlogf(LogLevel::kDebug, fmt, args);
    va_end(args);
}

void Logger::infof(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    vlogf(LogLevel::kInfo, fmt, args);
    va_end(args);
}

void Logger::warnf(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    vlogf(LogLevel::kWarn, fmt, args);
    va_end(args);
}

void StreamLogger::write(LogLevel level, const std::string& msg) {
    if (level < min_level_) return;
    std::fprintf(out_, "%s\n", msg.c_str());
    std::fflush(out_);
}

Logger& null_logger() {
    static NullLogger logger;
    return logger;
}

Logger& stdout_logger() {
    static StreamLogger logger(stdout);
    return logger;
}

Logger& resolve(Logger* log, bool verbose) {
    if (log) return *log;
    return verbose ? stdout_logger() : null_logger();
}

}  // namespace sky::obs
