// Scoped tracing spans with Chrome trace-event export.
//
// A TraceSession collects complete ("ph": "X") events; `Span` is an RAII
// timer that records into the session installed via set_trace_session() /
// TraceGuard.  When no session is installed a Span costs exactly one relaxed
// atomic load — no clock read — so instrumented hot paths (trainer steps,
// profiled layer forwards) are free in production.  to_json() emits the
// trace-event format that loads directly in chrome://tracing (or Perfetto):
// nesting falls out of the ts/dur intervals per thread lane, so the Fig. 10
// pipeline schedule and the design-flow stages become visual timelines.
#pragma once

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace sky::obs {

struct TraceEvent {
    std::string name;
    std::string cat;
    double ts_us = 0.0;   ///< start, microseconds since session origin
    double dur_us = 0.0;  ///< duration, microseconds
    int tid = 0;          ///< lane (thread slot, or pipeline stage index)
};

class TraceSession {
public:
    TraceSession();

    /// Record a fully-specified event (explicit lane — used by the pipeline
    /// simulator, whose "time" is simulated rather than measured).
    void record(std::string name, std::string cat, double ts_us, double dur_us,
                int tid = 0) SKY_EXCLUDES(mu_);
    /// Record a measured interval on the calling thread's lane.
    void record_span(const char* name, const char* cat,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end) SKY_EXCLUDES(mu_);

    [[nodiscard]] std::size_t size() const SKY_EXCLUDES(mu_);
    [[nodiscard]] std::vector<TraceEvent> events() const
        SKY_EXCLUDES(mu_);  ///< snapshot copy

    /// {"traceEvents": [...], "displayTimeUnit": "ms"} — chrome://tracing.
    [[nodiscard]] std::string to_json() const;
    bool save(const std::string& path) const;
    void clear() SKY_EXCLUDES(mu_);

    [[nodiscard]] std::chrono::steady_clock::time_point origin() const { return origin_; }

private:
    int thread_slot_locked() SKY_REQUIRES(mu_);

    mutable core::Mutex mu_;  // guards events_/threads_; leaf lock, spans only
                              // touch it at construction/destruction
    std::chrono::steady_clock::time_point origin_;
    std::vector<TraceEvent> events_ SKY_GUARDED_BY(mu_);
    std::vector<std::thread::id> threads_
        SKY_GUARDED_BY(mu_);  ///< lane index -> thread id
};

/// Install (or clear, with nullptr) the process-wide span sink.
void set_trace_session(TraceSession* session);
[[nodiscard]] TraceSession* trace_session();

/// RAII installer: routes spans to `session` for a scope, restores the
/// previous sink on exit.
class TraceGuard {
public:
    explicit TraceGuard(TraceSession& session);
    ~TraceGuard();
    TraceGuard(const TraceGuard&) = delete;
    TraceGuard& operator=(const TraceGuard&) = delete;

private:
    TraceSession* previous_;
};

/// Scoped timer: captures the current session at construction, records a
/// complete event at destruction (or an explicit end()).  The name/category
/// pointers must outlive the span — pass literals or stable storage.
class Span {
public:
    explicit Span(const char* name, const char* cat = "sky");
    ~Span() { end(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void end();

private:
    TraceSession* session_;
    const char* name_;
    const char* cat_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace sky::obs
