// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// This is the single sink for every number the library wants to expose —
// training losses, search-stage costs, bench headline results — so one
// snapshot-to-JSON/CSV call produces a uniform machine-readable dump.  All
// operations are thread-safe (one mutex; metric updates are far off any
// per-element hot path).  Components take an `obs::Registry*` that defaults
// to nullptr, so with observability off nothing is ever locked or allocated.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace sky::obs {

struct HistogramSnapshot {
    std::vector<double> bounds;         ///< ascending bucket upper bounds
    std::vector<std::uint64_t> counts;  ///< bounds.size()+1 (last = overflow)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    [[nodiscard]] double mean() const {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    /// Quantile estimate (q in [0,1]) by linear interpolation inside the
    /// bucket containing the rank; clamped to the observed [min, max].  Used
    /// for the serve-engine p50/p95/p99 latency gauges.
    [[nodiscard]] double percentile(double q) const;
};

struct RegistrySnapshot {
    std::vector<std::pair<std::string, double>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class Registry {
public:
    /// Increment a (monotonic) counter, creating it at zero on first use.
    void add(const std::string& name, double delta = 1.0) SKY_EXCLUDES(mu_);
    /// Set a gauge to an instantaneous value.
    void set(const std::string& name, double value) SKY_EXCLUDES(mu_);
    /// Install explicit histogram bucket bounds (ascending upper bounds).
    /// Observations land in the first bucket whose bound >= value; beyond the
    /// last bound they land in the implicit overflow bucket.
    void define_histogram(const std::string& name, std::vector<double> bounds)
        SKY_EXCLUDES(mu_);
    /// Record one histogram observation; undeclared histograms get
    /// default_bounds().
    void observe(const std::string& name, double value) SKY_EXCLUDES(mu_);

    [[nodiscard]] double counter(const std::string& name) const
        SKY_EXCLUDES(mu_);  ///< 0 if absent
    [[nodiscard]] double gauge(const std::string& name) const
        SKY_EXCLUDES(mu_);  ///< 0 if absent
    [[nodiscard]] HistogramSnapshot histogram(const std::string& name) const
        SKY_EXCLUDES(mu_);
    [[nodiscard]] RegistrySnapshot snapshot() const SKY_EXCLUDES(mu_);

    /// {"counters": {...}, "gauges": {...}, "histograms": {...}}, sorted by
    /// name; non-finite values are emitted as null so the document always
    /// parses.
    [[nodiscard]] std::string to_json() const;
    /// One line per metric: type,name,value,count,sum,min,max.  Names
    /// containing commas/quotes/newlines are quoted per RFC 4180.
    [[nodiscard]] std::string to_csv() const;
    bool save_json(const std::string& path) const;

    void clear() SKY_EXCLUDES(mu_);

    /// Decade buckets 1e-3 .. 1e4 — wide enough for both microsecond layer
    /// times and multi-second stage times in ms units.
    [[nodiscard]] static std::vector<double> default_bounds();

private:
    struct Histogram {
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts;
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    mutable core::Mutex mu_;  // guards counters_/gauges_/histograms_; leaf lock,
                              // never held while calling out (no lock order)
    std::map<std::string, double> counters_ SKY_GUARDED_BY(mu_);
    std::map<std::string, double> gauges_ SKY_GUARDED_BY(mu_);
    std::map<std::string, Histogram> histograms_ SKY_GUARDED_BY(mu_);
};

/// Process-wide registry for code that has no config to thread one through
/// (the bench harness uses its own; library components take a pointer).
[[nodiscard]] Registry& default_registry();

}  // namespace sky::obs
