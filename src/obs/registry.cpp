#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace sky::obs {
namespace {

// JSON number or null for non-finite values (NaN losses must not produce an
// unparseable document).
std::string num(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

// RFC 4180 CSV field: quoted (with doubled inner quotes) whenever the name
// contains a comma, quote or line break, so a metric named `a,b` cannot
// corrupt the row structure.
std::string csv_field(const std::string& s) {
    if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

}  // namespace

double HistogramSnapshot::percentile(double q) const {
    if (count == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count);
    double cum = 0.0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        const double in_bucket = static_cast<double>(counts[b]);
        if (in_bucket == 0.0) continue;
        if (cum + in_bucket >= rank) {
            // Interpolate within [lo, hi): lo is the previous bound (or the
            // observed min for the first bucket), hi the bucket's own bound
            // (or the observed max for the overflow bucket).
            const double lo = b == 0 ? min : std::max(min, bounds[b - 1]);
            const double hi = b < bounds.size() ? std::min(max, bounds[b]) : max;
            const double frac = in_bucket > 0.0 ? (rank - cum) / in_bucket : 1.0;
            return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min, max);
        }
        cum += in_bucket;
    }
    return max;
}

void Registry::add(const std::string& name, double delta) {
    core::MutexLock lock(mu_);
    counters_[name] += delta;
}

void Registry::set(const std::string& name, double value) {
    core::MutexLock lock(mu_);
    gauges_[name] = value;
}

void Registry::define_histogram(const std::string& name, std::vector<double> bounds) {
    std::sort(bounds.begin(), bounds.end());
    core::MutexLock lock(mu_);
    Histogram& h = histograms_[name];
    h = Histogram{};
    h.bounds = std::move(bounds);
    h.counts.assign(h.bounds.size() + 1, 0);
}

void Registry::observe(const std::string& name, double value) {
    core::MutexLock lock(mu_);
    Histogram& h = histograms_[name];
    if (h.counts.empty()) {
        h.bounds = default_bounds();
        h.counts.assign(h.bounds.size() + 1, 0);
    }
    std::size_t bucket = 0;
    while (bucket < h.bounds.size() && value > h.bounds[bucket]) ++bucket;
    ++h.counts[bucket];
    if (h.count == 0) {
        h.min = value;
        h.max = value;
    } else {
        h.min = std::min(h.min, value);
        h.max = std::max(h.max, value);
    }
    ++h.count;
    h.sum += value;
}

double Registry::counter(const std::string& name) const {
    core::MutexLock lock(mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

double Registry::gauge(const std::string& name) const {
    core::MutexLock lock(mu_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSnapshot Registry::histogram(const std::string& name) const {
    core::MutexLock lock(mu_);
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) return {};
    const Histogram& h = it->second;
    return {h.bounds, h.counts, h.count, h.sum, h.min, h.max};
}

RegistrySnapshot Registry::snapshot() const {
    core::MutexLock lock(mu_);
    RegistrySnapshot snap;
    for (const auto& [name, v] : counters_) snap.counters.emplace_back(name, v);
    for (const auto& [name, v] : gauges_) snap.gauges.emplace_back(name, v);
    for (const auto& [name, h] : histograms_)
        snap.histograms.emplace_back(
            name, HistogramSnapshot{h.bounds, h.counts, h.count, h.sum, h.min, h.max});
    return snap;
}

std::string Registry::to_json() const {
    const RegistrySnapshot snap = snapshot();
    std::ostringstream os;
    os << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < snap.counters.size(); ++i)
        os << (i ? "," : "") << "\n    \"" << escape(snap.counters[i].first)
           << "\": " << num(snap.counters[i].second);
    os << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i)
        os << (i ? "," : "") << "\n    \"" << escape(snap.gauges[i].first)
           << "\": " << num(snap.gauges[i].second);
    os << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto& [name, h] = snap.histograms[i];
        os << (i ? "," : "") << "\n    \"" << escape(name) << "\": {\"count\": " << h.count
           << ", \"sum\": " << num(h.sum) << ", \"min\": " << num(h.min)
           << ", \"max\": " << num(h.max) << ", \"bounds\": [";
        for (std::size_t j = 0; j < h.bounds.size(); ++j)
            os << (j ? ", " : "") << num(h.bounds[j]);
        os << "], \"counts\": [";
        for (std::size_t j = 0; j < h.counts.size(); ++j)
            os << (j ? ", " : "") << h.counts[j];
        os << "]}";
    }
    os << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
    return os.str();
}

std::string Registry::to_csv() const {
    const RegistrySnapshot snap = snapshot();
    std::ostringstream os;
    os << "type,name,value,count,sum,min,max\n";
    for (const auto& [name, v] : snap.counters)
        os << "counter," << csv_field(name) << "," << v << ",,,,\n";
    for (const auto& [name, v] : snap.gauges)
        os << "gauge," << csv_field(name) << "," << v << ",,,,\n";
    for (const auto& [name, h] : snap.histograms)
        os << "histogram," << csv_field(name) << ",," << h.count << "," << h.sum << ","
           << h.min << "," << h.max << "\n";
    return os.str();
}

bool Registry::save_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << to_json();
    return static_cast<bool>(out);
}

void Registry::clear() {
    core::MutexLock lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

std::vector<double> Registry::default_bounds() {
    return {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
}

Registry& default_registry() {
    static Registry registry;
    return registry;
}

}  // namespace sky::obs
