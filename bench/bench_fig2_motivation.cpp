// Figure 2: the motivation studies behind the bottom-up flow.
//
// (a) AlexNet accuracy under parameter vs feature-map quantisation.  The
//     paper compresses parameters 22x (237.9 MB -> 10.8 MB) and FMs 16x
//     (15.7 MB -> 0.98 MB) and finds accuracy more sensitive to FM
//     precision.  We train the width-scaled AlexNet proxy on the synthetic
//     classification task, sweep both axes at equal bit-widths, and also
//     report the *full-size* AlexNet storage at each width (computed from
//     the exact architecture).
// (b) FPGA BRAM usage vs input resize factor for FM12..FM16 quantisation.
// (c) DSP count vs (weight bits, FM bits) for a 128-MAC accelerator IP.
#include "backbones/registry.hpp"
#include "bench/harness.hpp"
#include "hwsim/fpga_model.hpp"
#include "quant/qmodel.hpp"
#include "skynet/skynet_model.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    const int train_steps = bench::steps(260);

    // ---------- (a) parameter vs FM quantisation on AlexNet ----------
    std::printf("=== Fig. 2a: AlexNet under parameter vs FM quantisation ===\n\n");
    const std::int64_t ref_params = backbones::alexnet_reference_params();
    std::printf("full AlexNet storage: float32 %.1f MB", ref_params * 4.0 / 1e6);
    std::printf("  (paper: 237.9 MB; FC layers hold %.0f%% of parameters)\n\n",
                100.0 * backbones::alexnet_reference_params(true) / ref_params);

    Rng rng(3);
    nn::ModulePtr net = backbones::build_alexnet_classifier(10, 32, 0.25f, rng);
    data::ClassificationDataset ds({32, 10, 0.25f, 0.18f, 11});
    train::ClassifyTrainConfig cfg;
    cfg.steps = train_steps;
    cfg.batch = 16;
    cfg.val_images = 256;
    const double float_acc = train::train_classifier(*net, ds, cfg).val_accuracy;
    std::printf("float32 validation accuracy: %.3f\n\n", float_acc);
    bench::record("fig2a.float_accuracy", float_acc, "acc", bench::Direction::kHigherIsBetter);

    const data::ClassificationBatch val = ds.validation(256);
    // Offline calibration: the IP-shared FPGA design uses one FM format for
    // the whole network, so the range must cover the worst-case activation.
    const float fm_range = quant::calibrate_fm_abs_max(*net, val.images);
    std::printf("calibrated FM range: +-%.1f (single shared format)\n\n", fm_range);
    std::printf("%6s | %-26s | %-26s\n", "", "parameter quantisation", "feature-map quantisation");
    std::printf("%6s | %9s %14s | %9s %14s\n", "bits", "accuracy", "model size MB",
                "accuracy", "FM size ratio");
    bench::rule();
    for (int bits : {12, 8, 6, 5, 4, 3}) {
        const double acc_w = quant::classifier_acc_quantized(*net, val, 0, bits);
        const double acc_f =
            quant::classifier_acc_quantized(*net, val, bits, 0, fm_range);
        std::printf("%6d | %9.3f %13.1f | %9.3f %13.1fx\n", bits, acc_w,
                    ref_params * bits / 8.0 / 1e6, acc_f, 32.0 / bits);
        bench::record("fig2a.acc_param_q" + std::to_string(bits), acc_w, "acc",
                      bench::Direction::kHigherIsBetter);
        bench::record("fig2a.acc_fm_q" + std::to_string(bits), acc_f, "acc",
                      bench::Direction::kHigherIsBetter);
    }
    std::printf("\nshape check: accuracy degrades faster along the FM axis than the\n"
                "parameter axis at matching bit-widths (the paper's Fig. 2a message).\n\n");

    // ---------- (b) BRAM vs resize factor ----------
    std::printf("=== Fig. 2b: BRAM usage vs input resize factor (SkyNet on Ultra96) ===\n\n");
    hwsim::FpgaModel u96(hwsim::ultra96());
    Rng mrng(4);
    SkyNetModel full = build_skynet({SkyNetVariant::kA, nn::Act::kReLU6, 2, 1.0f}, mrng);
    std::vector<nn::LayerInfo> layers;
    full.net->enumerate({1, 3, 160, 320}, layers);

    std::printf("%8s", "resize");
    for (int fm = 12; fm <= 16; ++fm) std::printf("   FM%-4d", fm);
    std::printf("\n");
    bench::rule();
    for (double r : {1.00, 0.95, 0.90, 0.85, 0.82, 0.78}) {
        std::printf("%8.2f", r);
        for (int fm = 12; fm <= 16; ++fm) {
            hwsim::FpgaBuildConfig cfg2;
            cfg2.fm_bits = fm;
            cfg2.weight_bits = 11;
            cfg2.resize_factor = r;
            cfg2.batch_tile = 1;
            cfg2.allow_fm_tiling = false;  // report the raw buffer need
            std::printf("   %6d",
                        u96.estimate_layers(layers, cfg2).resources.bram18k);
        }
        std::printf("\n");
    }
    std::printf("\nshape check: BRAM rises with FM bit-width and falls with the resize\n"
                "factor; the drop below ~0.9 halves the feature-map buffer (paper 2b).\n\n");

    // ---------- (c) DSP vs quantisation ----------
    std::printf("=== Fig. 2c: DSP count of a 128-MAC IP vs (W, FM) bit-widths ===\n\n");
    std::printf("%8s", "");
    for (int fm = 12; fm <= 18; fm += 2) std::printf("  FM%-4d", fm);
    std::printf("\n");
    bench::rule(' ', 0);
    for (int w = 18; w >= 10; w -= 1) {
        std::printf("W%-7d", w);
        for (int fm = 12; fm <= 18; fm += 2)
            std::printf("  %6d", hwsim::FpgaModel::dsp_count(128, w, fm));
        std::printf("\n");
    }
    std::printf("\nshape check: W15/FM16 needs 128 DSPs, W14/FM16 needs 64 (two products\n"
                "pack into one DSP once w+fm <= 30), matching the paper's example.\n");
    bench::record("fig2c.dsp_w15_fm16", hwsim::FpgaModel::dsp_count(128, 15, 16), "count");
    bench::record("fig2c.dsp_w14_fm16", hwsim::FpgaModel::dsp_count(128, 14, 16), "count");
    return bench::finish(argc, argv);
}
