// Table 4: the SkyNet ablation — models A/B/C, each with ReLU and ReLU6.
//
// Paper (validation IoU on DAC-SDC, float32):
//   A-ReLU 0.653  A-ReLU6 0.673  B-ReLU 0.685  B-ReLU6 0.703
//   C-ReLU 0.713  C-ReLU6 0.741       (params 1.27 / 1.57 / 1.82 MB)
//
// We train the same six configurations on the synthetic workload (identical
// schedule/seed per model) and report float IoU plus the IoU under 9-bit
// feature maps — the deployment regime where ReLU6's bounded range pays off.
// Parameter sizes are computed at full width and must match the paper.
#include "bench/harness.hpp"
#include "data/synth_detection.hpp"
#include "quant/qmodel.hpp"
#include "skynet/skynet_model.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    const int train_steps = bench::steps(220);
    const float width = 0.25f;

    struct Row {
        SkyNetVariant v;
        nn::Act act;
        double paper_iou;
        double paper_mb;
    };
    const Row rows[6] = {
        {SkyNetVariant::kA, nn::Act::kReLU, 0.653, 1.27},
        {SkyNetVariant::kA, nn::Act::kReLU6, 0.673, 1.27},
        {SkyNetVariant::kB, nn::Act::kReLU, 0.685, 1.57},
        {SkyNetVariant::kB, nn::Act::kReLU6, 0.703, 1.57},
        {SkyNetVariant::kC, nn::Act::kReLU, 0.713, 1.82},
        {SkyNetVariant::kC, nn::Act::kReLU6, 0.741, 1.82},
    };

    std::printf("=== Table 4: SkyNet ablation (%d train steps, width %.2f) ===\n\n",
                train_steps, width);
    std::printf("%-18s %10s %10s | %9s %9s %9s\n", "model", "paper MB", "ours MB",
                "paper IoU", "IoU fp32", "IoU q5");
    bench::rule();

    for (const Row& r : rows) {
        // Full-width twin for the parameter size column.
        Rng size_rng(1);
        const SkyNetModel full = build_skynet({r.v, r.act, 2, 1.0f}, size_rng);

        // Identical init/data/training streams for every configuration.
        Rng rng(42);
        SkyNetModel model = build_skynet({r.v, r.act, 2, width}, rng);
        data::DetectionDataset ds({48, 96, 2, true, 7});
        train::DetectTrainConfig cfg;
        cfg.steps = train_steps;
        cfg.batch = 8;
        cfg.val_images = 96;
        Rng train_rng(9);
        const double iou =
            train::train_detector(*model.net, model.head, ds, cfg, train_rng).val_iou;
        const data::DetectionBatch val = ds.validation(96);
        // Deployment-style quantised evaluation: a single coarse 5-bit FM
        // format with range +-8 shared by the whole network; ReLU6
        // activations always fit, unbounded ReLU activations clip and lose
        // resolution.
        const double iou_q = quant::detector_iou_quantized(*model.net, model.head, val,
                                                           /*fm=*/5, /*w=*/11,
                                                           /*fm_abs_max=*/8.0f);
        std::printf("%-18s %10.2f %10.2f | %9.3f %9.3f %9.3f\n",
                    model.config.name().c_str(), r.paper_mb, full.param_mb(), r.paper_iou,
                    iou, iou_q);
        bench::record("table4." + model.config.name() + ".param_mb", full.param_mb(), "MB",
                      bench::Direction::kLowerIsBetter);
        bench::record("table4." + model.config.name() + ".iou", iou, "iou",
                      bench::Direction::kHigherIsBetter);
        bench::record("table4." + model.config.name() + ".iou_q5", iou_q, "iou",
                      bench::Direction::kHigherIsBetter);
    }
    std::printf(
        "\nexpected shapes (stable at SKYNET_BENCH_SCALE >= 1): the bypass models\n"
        "(B/C) overtake A once training is adequate — at short budgets the extra\n"
        "parameters of the bypass head lag the plain chain; ReLU6 >= ReLU under\n"
        "the coarse quantised-FM column (bounded dynamic range).  Parameter\n"
        "sizes are budget-independent and must match the paper (1.27/1.57/1.82 MB).\n");
    return bench::finish(argc, argv);
}
