// Google-benchmark microbenchmarks for the layer kernels SkyNet is built
// from.  These show on real silicon what the paper's Bundle choice exploits:
// DW-Conv3 + PW-Conv1 does an order of magnitude less work than a dense
// 3x3 convolution at equal width.
#include <benchmark/benchmark.h>

#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/space_to_depth.hpp"

namespace {

using namespace sky;

Tensor make_input(int c, int h, int w) {
    Rng rng(1);
    Tensor x({1, c, h, w});
    x.randn(rng);
    return x;
}

void BM_Conv3x3(benchmark::State& state) {
    const int ch = static_cast<int>(state.range(0));
    Rng rng(2);
    nn::Conv2d conv(ch, ch, 3, 1, 1, false, rng);
    conv.set_training(false);
    Tensor x = make_input(ch, 40, 80);
    for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
    state.SetItemsProcessed(state.iterations() * conv.macs(x.shape()));
}
BENCHMARK(BM_Conv3x3)->Arg(48)->Arg(96);

void BM_DWConv3(benchmark::State& state) {
    const int ch = static_cast<int>(state.range(0));
    Rng rng(3);
    nn::DWConv3 conv(ch, rng);
    conv.set_training(false);
    Tensor x = make_input(ch, 40, 80);
    for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
    state.SetItemsProcessed(state.iterations() * conv.macs(x.shape()));
}
BENCHMARK(BM_DWConv3)->Arg(48)->Arg(96);

void BM_PWConv1(benchmark::State& state) {
    const int ch = static_cast<int>(state.range(0));
    Rng rng(4);
    nn::PWConv1 conv(ch, ch, false, rng);
    conv.set_training(false);
    Tensor x = make_input(ch, 40, 80);
    for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
    state.SetItemsProcessed(state.iterations() * conv.macs(x.shape()));
}
BENCHMARK(BM_PWConv1)->Arg(48)->Arg(96);

void BM_Bundle_DW_PW(benchmark::State& state) {
    // The full SkyNet Bundle at channel width 48 (Bundle #1 scale).
    const int ch = static_cast<int>(state.range(0));
    Rng rng(5);
    nn::DWConv3 dw(ch, rng);
    nn::PWConv1 pw(ch, ch * 2, false, rng);
    dw.set_training(false);
    pw.set_training(false);
    Tensor x = make_input(ch, 40, 80);
    for (auto _ : state) benchmark::DoNotOptimize(pw.forward(dw.forward(x)));
}
BENCHMARK(BM_Bundle_DW_PW)->Arg(48);

void BM_BatchNormEval(benchmark::State& state) {
    nn::BatchNorm2d bn(96);
    bn.set_training(false);
    Tensor x = make_input(96, 40, 80);
    for (auto _ : state) benchmark::DoNotOptimize(bn.forward(x));
}
BENCHMARK(BM_BatchNormEval);

void BM_MaxPool2(benchmark::State& state) {
    nn::MaxPool2 pool;
    Tensor x = make_input(96, 40, 80);
    for (auto _ : state) benchmark::DoNotOptimize(pool.forward(x));
}
BENCHMARK(BM_MaxPool2);

void BM_SpaceToDepth(benchmark::State& state) {
    nn::SpaceToDepth s2d(2);
    Tensor x = make_input(192, 40, 80);
    for (auto _ : state) benchmark::DoNotOptimize(s2d.forward(x));
}
BENCHMARK(BM_SpaceToDepth);

}  // namespace

BENCHMARK_MAIN();
