// Kernel-engine bench: layer kernels and the full SkyNet forward, each timed
// single-threaded and with the kernel engine's full thread pool, so the
// im2col+SGEMM path and the parallel_for speedup are both visible.  Also
// shows on real silicon what the paper's Bundle choice exploits: DW-Conv3 +
// PW-Conv1 does an order of magnitude less work than a dense 3x3 convolution
// at equal width.
//
//   ./build/bench/bench_kernels [--json <path>]
//
// Thread count comes from SKYNET_THREADS (default: hardware concurrency).
// Every timing is a calibrated-warmup, multi-repeat measurement through
// sky::bench::run (median/MAD in the BENCH document); the full-model pass
// additionally folds per-layer GraphProfiler GFLOP/s gauges into the
// report's registry section.  Headline gauges:
// kernels.model.fwd_ms_1t / fwd_ms_nt / speedup / gflops_nt.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/harness.hpp"
#include "core/qgemm.hpp"
#include "core/thread_pool.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pwconv.hpp"
#include "obs/profiler.hpp"
#include "skynet/skynet_model.hpp"

namespace {

using namespace sky;

Tensor make_input(int n, int c, int h, int w) {
    Rng rng(1);
    Tensor x({n, c, h, w});
    x.rand_uniform(rng, 0.0f, 1.0f);
    return x;
}

/// Time fn() at 1 thread and at `threads`, record the pair with repeat
/// statistics plus the derived speedup and effective GFLOP/s.
template <typename Fn>
void bench_pair(const std::string& name, std::int64_t macs, int threads,
                const bench::RunOptions& opts, Fn&& fn) {
    core::ThreadPool::set_global_threads(1);
    const bench::RepeatStats t1 = bench::run("kernels." + name + ".fwd_ms_1t", "ms",
                                             bench::Direction::kLowerIsBetter, fn, opts);
    core::ThreadPool::set_global_threads(threads);
    const bench::RepeatStats tn = bench::run("kernels." + name + ".fwd_ms_nt", "ms",
                                             bench::Direction::kLowerIsBetter, fn, opts);
    // Derive per-repeat samples (speedup pairs repeat i with repeat i) so the
    // derived metrics carry real repeat statistics, not a bare quotient.
    std::vector<double> speedups, gflops_samples;
    const std::size_t pairs = std::min(t1.samples.size(), tn.samples.size());
    for (std::size_t i = 0; i < pairs; ++i)
        if (tn.samples[i] > 0.0) speedups.push_back(t1.samples[i] / tn.samples[i]);
    for (const double ms : tn.samples)
        if (ms > 0.0)
            gflops_samples.push_back(2.0 * static_cast<double>(macs) / (ms * 1e6));
    const bench::RepeatStats speedup = bench::RepeatStats::from_samples(speedups);
    const bench::RepeatStats gflops =
        bench::RepeatStats::from_samples(gflops_samples);
    std::printf("%-28s %10.3f ms @1t %10.3f ms @%dt  x%.2f  %7.2f GFLOP/s\n",
                name.c_str(), t1.median, tn.median, threads, speedup.median,
                gflops.median);
    bench::record("kernels." + name + ".speedup", speedup, "x",
                  bench::Direction::kHigherIsBetter);
    bench::record("kernels." + name + ".gflops_nt", gflops, "GFLOP/s",
                  bench::Direction::kHigherIsBetter);
}

}  // namespace

int main(int argc, char** argv) {
    const int threads = core::ThreadPool::env_threads();
    bench::RunOptions opts;
    opts.repeats = std::max(3, bench::steps(5));
    std::printf("kernel engine: %d thread(s), %d timed repeats\n", threads,
                opts.repeats);
    bench::record("kernels.threads", threads, "count");
    bench::rule();

    Rng rng(2);
    {
        nn::Conv2d conv(96, 96, 3, 1, 1, false, rng);
        conv.set_training(false);
        Tensor x = make_input(1, 96, 40, 80);
        const std::int64_t macs = conv.macs(x.shape());
        bench_pair("conv3x3", macs, threads, opts, [&] { (void)conv.forward(x); });
    }
    {
        nn::DWConv3 conv(96, rng);
        conv.set_training(false);
        Tensor x = make_input(1, 96, 40, 80);
        bench_pair("dwconv3", conv.macs(x.shape()), threads, opts,
                   [&] { (void)conv.forward(x); });
    }
    {
        nn::PWConv1 conv(96, 96, false, rng);
        conv.set_training(false);
        Tensor x = make_input(1, 96, 40, 80);
        bench_pair("pwconv1", conv.macs(x.shape()), threads, opts,
                   [&] { (void)conv.forward(x); });
    }

    // Packed u8 x s8 integer GEMM at the conv3x3 shape above (M = out_ch,
    // K = in_ch * 9, N = out pixels), operands prepacked as the quantized
    // engine deploys them; C is re-zeroed inside the timed lambda because
    // qgemm_packed accumulates.  GFLOP/s here counts integer MACs.
    {
        const int M = 96, K = 96 * 9, N = 40 * 80;
        std::vector<std::int8_t> a(static_cast<std::size_t>(M) * K);
        std::vector<std::uint8_t> b(static_cast<std::size_t>(K) * N);
        std::uint32_t s = 7;
        for (auto& v : a) v = static_cast<std::int8_t>((s = s * 1664525u + 1u) >> 24);
        for (auto& v : b) v = static_cast<std::uint8_t>((s = s * 1664525u + 1u) >> 24);
        core::QPackedA pa;
        core::QPackedB pb;
        core::qpack_a(M, K, a.data(), pa);
        core::qpack_b(K, N, b.data(), pb);
        std::vector<std::int32_t> c(static_cast<std::size_t>(M) * N);
        const std::int64_t macs = static_cast<std::int64_t>(M) * K * N;
        std::printf("int8 micro-kernel: %s (mr=%d, nr=%d)\n",
                    core::qgemm_kernel_name(), core::qgemm_mr(), core::qgemm_nr());
        bench_pair("qgemm", macs, threads, opts, [&] {
            std::fill(c.begin(), c.end(), 0);
            core::qgemm_packed(pa, pb, c.data());
        });
    }

    // Full SkyNet forward at the paper's input scale, batch 8 — the headline
    // number for the parallel GEMM engine.
    {
        SkyNetModel model = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f},
                                         rng);
        model.net->set_training(false);
        Tensor x = make_input(8, 3, 160, 320);
        const std::int64_t macs = model.net->macs(x.shape());
        bench_pair("model", macs, threads, opts, [&] { (void)model.net->forward(x); });

        // One profiled forward at the full pool: per-layer wall time and
        // GFLOP/s land in the document's registry section, so the same JSON
        // that carries the headline numbers carries the layer breakdown.
        obs::GraphProfiler prof(*model.net);
        (void)model.net->forward(x);
        obs::Registry layer_registry;
        prof.export_metrics(layer_registry, "kernels.layer");
        prof.detach();
        bench::merge_registry(layer_registry);
    }

    core::ThreadPool::set_global_threads(0);  // back to the environment default
    bench::rule();
    return bench::finish(argc, argv);
}
