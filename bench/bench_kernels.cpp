// Kernel-engine bench: layer kernels and the full SkyNet forward, each timed
// single-threaded and with the kernel engine's full thread pool, so the
// im2col+SGEMM path and the parallel_for speedup are both visible.  Also
// shows on real silicon what the paper's Bundle choice exploits: DW-Conv3 +
// PW-Conv1 does an order of magnitude less work than a dense 3x3 convolution
// at equal width.
//
//   ./build/bench/bench_kernels [--json <path>]
//
// Thread count comes from SKYNET_THREADS (default: hardware concurrency).
// Headline gauges: kernels.model.fwd_ms_1t / fwd_ms_nt / speedup / gflops_nt.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/thread_pool.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pwconv.hpp"
#include "skynet/skynet_model.hpp"

namespace {

using namespace sky;
using Clock = std::chrono::steady_clock;

Tensor make_input(int n, int c, int h, int w) {
    Rng rng(1);
    Tensor x({n, c, h, w});
    x.rand_uniform(rng, 0.0f, 1.0f);
    return x;
}

/// Best-of-`reps` wall time of fn() in ms (one untimed warmup).
template <typename Fn>
double time_ms(int reps, Fn&& fn) {
    fn();
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        fn();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
        if (ms < best) best = ms;
    }
    return best;
}

/// Time fn() at 1 thread and at `threads`, record and print the pair.
template <typename Fn>
void bench_pair(const std::string& name, std::int64_t macs, int threads, int reps,
                Fn&& fn) {
    core::ThreadPool::set_global_threads(1);
    const double t1 = time_ms(reps, fn);
    core::ThreadPool::set_global_threads(threads);
    const double tn = time_ms(reps, fn);
    const double speedup = tn > 0.0 ? t1 / tn : 0.0;
    const double gflops = tn > 0.0 ? 2.0 * static_cast<double>(macs) / (tn * 1e6) : 0.0;
    std::printf("%-28s %10.3f ms @1t %10.3f ms @%dt  x%.2f  %7.2f GFLOP/s\n",
                name.c_str(), t1, tn, threads, speedup, gflops);
    bench::record("kernels." + name + ".fwd_ms_1t", t1);
    bench::record("kernels." + name + ".fwd_ms_nt", tn);
    bench::record("kernels." + name + ".speedup", speedup);
    bench::record("kernels." + name + ".gflops_nt", gflops);
}

}  // namespace

int main(int argc, char** argv) {
    const int threads = core::ThreadPool::env_threads();
    const int reps = bench::steps(3);
    std::printf("kernel engine: %d thread(s), best of %d reps\n", threads, reps);
    bench::record("kernels.threads", threads);
    bench::rule();

    Rng rng(2);
    {
        nn::Conv2d conv(96, 96, 3, 1, 1, false, rng);
        conv.set_training(false);
        Tensor x = make_input(1, 96, 40, 80);
        const std::int64_t macs = conv.macs(x.shape());
        bench_pair("conv3x3", macs, threads, reps, [&] { (void)conv.forward(x); });
    }
    {
        nn::DWConv3 conv(96, rng);
        conv.set_training(false);
        Tensor x = make_input(1, 96, 40, 80);
        bench_pair("dwconv3", conv.macs(x.shape()), threads, reps,
                   [&] { (void)conv.forward(x); });
    }
    {
        nn::PWConv1 conv(96, 96, false, rng);
        conv.set_training(false);
        Tensor x = make_input(1, 96, 40, 80);
        bench_pair("pwconv1", conv.macs(x.shape()), threads, reps,
                   [&] { (void)conv.forward(x); });
    }

    // Full SkyNet forward at the paper's input scale, batch 8 — the headline
    // number for the parallel GEMM engine.
    {
        SkyNetModel model = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f},
                                         rng);
        model.net->set_training(false);
        Tensor x = make_input(8, 3, 160, 320);
        const std::int64_t macs = model.net->macs(x.shape());
        bench_pair("model", macs, threads, reps, [&] { (void)model.net->forward(x); });
    }

    core::ThreadPool::set_global_threads(0);  // back to the environment default
    bench::rule();
    return bench::finish(argc, argv);
}
