// Serving-pipeline bench: the measured counterpart to Fig. 10.
//
// Drives the real sky::serve engine (bounded queue -> dynamic batcher ->
// preprocess/infer/postprocess stages) over synthetic camera frames at 4x
// the model resolution, sweeping the batch size, and compares against a
// serial resize+detect baseline.  Because wall-clock overlap needs at least
// one core per stage, the bench also projects the measured per-stage
// latencies through the Fig. 10 discrete-event model
// (hwsim::simulate_pipeline): on a single-core host that projection is the
// honest pipelined number, on a multi-core host the measured FPS should
// approach it.
//
// Asserts the paper's headline property — pipelined throughput >= 1.5x
// serial — on the measured numbers when enough cores exist, otherwise on
// the projection; exits non-zero if the pipeline cannot reach it.
//
//   ./build/bench/bench_serve [--json out.json]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "data/augment.hpp"
#include "hwsim/pipeline.hpp"
#include "serve/engine.hpp"
#include "skynet/detector.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sky;
    bench::rule('=');
    std::printf("sky::serve pipeline throughput (Fig. 10, measured)\n");
    bench::rule('=');

    // Throughput only — weights stay random; the forward cost is identical.
    // Narrow model + 4x frames (area-filter decimation) keeps preprocess and
    // inference comparable, which gives a staged pipeline something to overlap.
    const int mh = 80, mw = 160;
    Rng rng(21);
    Detector det({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.05f}, rng);

    const int n_frames = 48;
    std::vector<Tensor> frames;
    Rng img_rng(5);
    for (int i = 0; i < n_frames; ++i) {
        Tensor img({1, 3, 4 * mh, 4 * mw});
        img.rand_uniform(img_rng, 0.0f, 1.0f);
        frames.push_back(std::move(img));
    }

    // Serial baseline: resize + detect, one frame at a time (plus one
    // untimed warm-up pass to fault in the conv scratch buffers).
    (void)det.detect(data::resize_area(frames[0], mh, mw));
    Clock::time_point t0 = Clock::now();
    for (const Tensor& f : frames)
        (void)det.detect(data::resize_area(f, mh, mw));
    const double serial_ms = ms_since(t0);
    const double serial_fps = 1e3 * n_frames / serial_ms;
    std::printf("\nserial baseline: %.2f ms/frame, %.1f FPS\n", serial_ms / n_frames,
                serial_fps);
    bench::record("serve.serial_fps", serial_fps);

    // Clean per-stage costs, measured in isolation (nothing else running —
    // stage timings taken while the engine is live would be inflated by
    // time-slicing whenever stages outnumber cores).
    t0 = Clock::now();
    std::vector<Tensor> resized;
    for (const Tensor& f : frames) resized.push_back(data::resize_area(f, mh, mw));
    const double stage_pre_ms = ms_since(t0) / n_frames;  // per frame

    // Batch sweep: measured FPS through the real engine, plus the Fig. 10
    // projection of the isolated stage costs with one core per stage.
    std::printf("\n%5s %12s %12s %12s %9s\n", "batch", "measured FPS", "infer ms/b",
                "post ms/b", "proj FPS");
    double best_measured = 0.0, best_projected = 0.0;
    for (const int b : {1, 2, 4, 8}) {
        // Isolated inference + decode cost at this batch size.
        Tensor batch({b, 3, mh, mw});
        for (int i = 0; i < b; ++i)
            std::memcpy(batch.plane(i, 0), resized[static_cast<std::size_t>(i)].data(),
                        static_cast<std::size_t>(batch.shape().per_item()) *
                            sizeof(float));
        const int reps = std::max(1, 16 / b);
        Tensor raw = det.forward(batch);  // warm-up + decode input
        t0 = Clock::now();
        for (int r = 0; r < reps; ++r) raw = det.forward(batch);
        const double stage_infer_ms = ms_since(t0) / reps;
        t0 = Clock::now();
        for (int r = 0; r < reps; ++r) (void)det.head().decode(raw);
        const double stage_post_ms = ms_since(t0) / reps;

        const std::vector<hwsim::PipelineStage> stages = {
            {"pre-process", stage_pre_ms * b},
            {"inference", stage_infer_ms},
            {"post-process", stage_post_ms}};
        const hwsim::PipelineReport rep = hwsim::simulate_pipeline(stages, b, 200);

        // Measured: the same frames through the live engine.
        serve::ServeConfig sc;
        sc.max_batch = b;
        sc.max_delay_ms = 4.0;
        sc.queue_capacity = static_cast<std::size_t>(n_frames);
        sc.target_h = mh;
        sc.target_w = mw;
        serve::Engine engine(det, sc);
        engine.start();
        t0 = Clock::now();
        std::vector<std::future<serve::DetectResult>> futures;
        futures.reserve(n_frames);
        for (const Tensor& f : frames) futures.push_back(engine.submit(f));
        for (auto& fut : futures) (void)fut.get();
        const double measured_fps = 1e3 * n_frames / ms_since(t0);
        engine.shutdown();

        std::printf("%5d %12.1f %12.2f %12.2f %9.1f\n", b, measured_fps, stage_infer_ms,
                    stage_post_ms, rep.pipelined_fps);
        bench::record("serve.measured_fps.b" + std::to_string(b), measured_fps);
        bench::record("serve.projected_fps.b" + std::to_string(b), rep.pipelined_fps);
        best_measured = std::max(best_measured, measured_fps);
        best_projected = std::max(best_projected, rep.pipelined_fps);
    }

    // The 1.5x pipelining check: measured when the host can actually overlap
    // (a core per stage), projected otherwise.
    const unsigned cores = std::thread::hardware_concurrency();
    const bool use_measured = cores >= 4;
    const double pipelined = use_measured ? best_measured : best_projected;
    const double speedup = pipelined / serial_fps;
    bench::record("serve.pipelined_fps", pipelined);
    bench::record("serve.speedup_vs_serial", speedup);

    bench::rule();
    std::printf("pipelined %.1f FPS (%s, %u cores) vs serial %.1f FPS -> %.2fx\n",
                pipelined, use_measured ? "measured" : "projected", cores, serial_fps,
                speedup);
    const bool ok = speedup >= 1.5;
    std::printf("CHECK pipelined >= 1.5x serial: %s\n", ok ? "PASSED" : "FAILED");
    bench::record("serve.speedup_check_passed", ok ? 1.0 : 0.0);

    const int rc = bench::finish(argc, argv);
    return ok ? rc : 1;
}
