// Serving-pipeline bench: the measured counterpart to Fig. 10.
//
// Drives the real sky::serve engine (bounded queue -> dynamic batcher ->
// preprocess/infer/postprocess stages) over synthetic camera frames at 4x
// the model resolution, sweeping the batch size, and compares against a
// serial resize+detect baseline.  Because wall-clock overlap needs at least
// one core per stage, the bench also projects the measured per-stage
// latencies through the Fig. 10 discrete-event model
// (hwsim::simulate_pipeline): on a single-core host that projection is the
// honest pipelined number, on a multi-core host the measured FPS should
// approach it.
//
// Asserts the paper's headline property — pipelined throughput >= 1.5x
// serial — on the measured numbers when enough cores exist, otherwise on
// the projection; exits non-zero if the pipeline cannot reach it.
//
//   ./build/bench/bench_serve [--json out.json] [--trace out_trace.json]
//
// Engine passes are timed with repeat statistics (sky::bench::run); the
// best batch size's engine registry (stage-latency histograms, queue
// depths) is folded into the BENCH document, and --trace saves a Chrome
// trace of one pipelined engine pass for chrome://tracing.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "data/augment.hpp"
#include "hwsim/pipeline.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "skynet/detector.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sky;
    std::string trace_path;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--trace" && i + 1 < argc) trace_path = argv[i + 1];

    bench::rule('=');
    std::printf("sky::serve pipeline throughput (Fig. 10, measured)\n");
    bench::rule('=');

    // Throughput only — weights stay random; the forward cost is identical.
    // Narrow model + 4x frames (area-filter decimation) keeps preprocess and
    // inference comparable, which gives a staged pipeline something to overlap.
    const int mh = 80, mw = 160;
    Rng rng(21);
    Detector det({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.05f}, rng);

    const int n_frames = 48;
    std::vector<Tensor> frames;
    Rng img_rng(5);
    for (int i = 0; i < n_frames; ++i) {
        Tensor img({1, 3, 4 * mh, 4 * mw});
        img.rand_uniform(img_rng, 0.0f, 1.0f);
        frames.push_back(std::move(img));
    }

    bench::RunOptions opts;
    opts.repeats = std::max(3, bench::steps(3));

    // Serial baseline: resize + detect, one frame at a time.  run() does the
    // warm-up pass (faulting in the conv scratch buffers) and the repeats.
    const bench::RepeatStats serial = bench::run(
        "serve.serial_batch_ms", "ms", bench::Direction::kLowerIsBetter,
        [&] {
            for (const Tensor& f : frames) (void)det.detect(data::resize_area(f, mh, mw));
        },
        opts);
    // Every derived rate below carries per-repeat samples (one per timed
    // pass), so benchdiff's MAD gate sees real noise on fps metrics too.
    std::vector<double> serial_fps_samples;
    for (const double ms : serial.samples)
        if (ms > 0.0) serial_fps_samples.push_back(1e3 * n_frames / ms);
    const bench::RepeatStats serial_fps_stats =
        bench::RepeatStats::from_samples(serial_fps_samples);
    const double serial_fps = serial_fps_stats.median;
    std::printf("\nserial baseline: %.2f ms/frame, %.1f FPS\n",
                serial.median / n_frames, serial_fps);
    bench::record("serve.serial_fps", serial_fps_stats, "fps",
                  bench::Direction::kHigherIsBetter);

    // Clean per-stage costs, measured in isolation (nothing else running —
    // stage timings taken while the engine is live would be inflated by
    // time-slicing whenever stages outnumber cores).
    Clock::time_point t0 = Clock::now();
    std::vector<Tensor> resized;
    for (const Tensor& f : frames) resized.push_back(data::resize_area(f, mh, mw));
    const double stage_pre_ms = ms_since(t0) / n_frames;  // per frame

    // Batch sweep: measured FPS through the real engine, plus the Fig. 10
    // projection of the isolated stage costs with one core per stage.
    std::printf("\n%5s %12s %12s %12s %9s\n", "batch", "measured FPS", "infer ms/b",
                "post ms/b", "proj FPS");
    double best_measured = 0.0, best_projected = 0.0;
    int best_batch = 1;
    bench::RepeatStats best_measured_stats, best_projected_stats;
    for (const int b : {1, 2, 4, 8}) {
        // Isolated inference + decode cost at this batch size, re-measured
        // once per repeat so the Fig. 10 projection gets repeat statistics
        // of its own instead of a single-shot stage timing.
        Tensor batch({b, 3, mh, mw});
        for (int i = 0; i < b; ++i)
            std::memcpy(batch.plane(i, 0), resized[static_cast<std::size_t>(i)].data(),
                        static_cast<std::size_t>(batch.shape().per_item()) *
                            sizeof(float));
        const int reps = std::max(1, 16 / b);
        Tensor raw = det.forward(batch);  // warm-up + decode input
        double stage_infer_ms = 0.0, stage_post_ms = 0.0;
        std::vector<double> proj_samples;
        for (int rep_i = 0; rep_i < opts.repeats; ++rep_i) {
            t0 = Clock::now();
            for (int r = 0; r < reps; ++r) raw = det.forward(batch);
            stage_infer_ms = ms_since(t0) / reps;
            t0 = Clock::now();
            for (int r = 0; r < reps; ++r) (void)det.head().decode(raw);
            stage_post_ms = ms_since(t0) / reps;
            const std::vector<hwsim::PipelineStage> stages = {
                {"pre-process", stage_pre_ms * b},
                {"inference", stage_infer_ms},
                {"post-process", stage_post_ms}};
            proj_samples.push_back(
                hwsim::simulate_pipeline(stages, b, 200).pipelined_fps);
        }
        const bench::RepeatStats proj_stats =
            bench::RepeatStats::from_samples(proj_samples);

        // Measured: the same frames through the live engine, with repeat
        // statistics over whole engine passes.
        serve::ServeConfig sc;
        sc.max_batch = b;
        sc.max_delay_ms = 4.0;
        sc.queue_capacity = static_cast<std::size_t>(n_frames);
        sc.target_h = mh;
        sc.target_w = mw;
        serve::Engine engine(det, sc);
        engine.start();
        const bench::RepeatStats pass = bench::run(
            "serve.engine_batch_ms.b" + std::to_string(b), "ms",
            bench::Direction::kLowerIsBetter,
            [&] {
                std::vector<std::future<serve::DetectResult>> futures;
                futures.reserve(n_frames);
                for (const Tensor& f : frames) futures.push_back(engine.submit(f));
                for (auto& fut : futures) (void)fut.get();
            },
            opts);
        engine.shutdown();
        std::vector<double> fps_samples;
        for (const double ms : pass.samples)
            if (ms > 0.0) fps_samples.push_back(1e3 * n_frames / ms);
        const bench::RepeatStats fps_stats =
            bench::RepeatStats::from_samples(fps_samples);
        const double measured_fps = fps_stats.median;

        std::printf("%5d %12.1f %12.2f %12.2f %9.1f\n", b, measured_fps, stage_infer_ms,
                    stage_post_ms, proj_stats.median);
        bench::record("serve.measured_fps.b" + std::to_string(b), fps_stats, "fps",
                      bench::Direction::kHigherIsBetter);
        bench::record("serve.projected_fps.b" + std::to_string(b), proj_stats, "fps",
                      bench::Direction::kHigherIsBetter);
        if (measured_fps > best_measured) {
            best_measured = measured_fps;
            best_batch = b;
            best_measured_stats = fps_stats;
        }
        if (proj_stats.median > best_projected) {
            best_projected = proj_stats.median;
            best_projected_stats = proj_stats;
        }
    }

    // Re-run the best batch size once with full instrumentation: the engine
    // registry (stage-latency histograms, p50/p95/p99 gauges, queue depths)
    // folds into the BENCH document, and the stage spans land in a Chrome
    // trace when --trace was given.
    {
        obs::Registry engine_registry;
        obs::TraceSession session;
        serve::ServeConfig sc;
        sc.max_batch = best_batch;
        sc.max_delay_ms = 4.0;
        sc.queue_capacity = static_cast<std::size_t>(n_frames);
        sc.target_h = mh;
        sc.target_w = mw;
        sc.metrics = &engine_registry;
        serve::Engine engine(det, sc);
        {
            obs::TraceGuard guard(session);
            engine.start();
            std::vector<std::future<serve::DetectResult>> futures;
            futures.reserve(n_frames);
            for (const Tensor& f : frames) futures.push_back(engine.submit(f));
            for (auto& fut : futures) (void)fut.get();
            engine.shutdown();
        }
        bench::merge_registry(engine_registry, "engine.");
        if (!trace_path.empty()) {
            if (session.save(trace_path))
                std::printf("wrote Chrome trace to %s\n", trace_path.c_str());
            else
                std::fprintf(stderr, "failed to write trace to %s\n",
                             trace_path.c_str());
        }
    }

    // Quantized replica: the integer engine executes against the statically
    // planned activation arena (docs/STATIC_ANALYSIS.md) — record the plan
    // figures and prove the steady-state activation path allocates nothing.
    bool alloc_free = false;
    {
        Rng qrng(22);
        Detector qdet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.05f}, qrng);
        (void)qdet.quantize(quant::QuantConfig{});
        obs::Registry qreg;
        serve::ServeConfig sc;
        sc.max_batch = best_batch;
        sc.max_delay_ms = 4.0;
        sc.queue_capacity = static_cast<std::size_t>(n_frames);
        sc.target_h = mh;
        sc.target_w = mw;
        sc.metrics = &qreg;
        serve::Engine engine(qdet, sc);
        engine.start();
        // First pass replans the arena at the serving shapes; the second is
        // the steady state the allocation gauge describes.
        std::int64_t qalloc_baseline = 0;
        for (int pass_i = 0; pass_i < 2; ++pass_i) {
            std::vector<std::future<serve::DetectResult>> futures;
            futures.reserve(n_frames);
            for (const Tensor& f : frames) futures.push_back(engine.submit(f));
            for (auto& fut : futures) (void)fut.get();
            if (pass_i == 0) qalloc_baseline = qdet.qengine()->alloc_events();
        }
        engine.shutdown();
        const std::int64_t steady_allocs =
            qdet.qengine()->alloc_events() - qalloc_baseline;
        const auto& plan = qdet.qengine()->report().activation_plan;
        const bool peak_exact =
            qdet.qengine()->measured_peak_bytes() == plan.peak_bytes;
        alloc_free = steady_allocs == 0 && peak_exact;
        bench::merge_registry(qreg, "qint8.");
        bench::record("serve.int8_activation_arena_bytes",
                      static_cast<double>(plan.arena_bytes), "bytes");
        bench::record("serve.int8_activation_peak_bytes",
                      static_cast<double>(plan.peak_bytes), "bytes");
        bench::record("serve.int8_steady_alloc_events",
                      static_cast<double>(steady_allocs), "count");
        std::printf("\nint8 activation arena: %s\n", plan.summary().c_str());
        std::printf("CHECK int8 steady state allocation-free + peak exact: %s\n",
                    alloc_free ? "PASSED" : "FAILED");
        bench::record("serve.int8_alloc_free_check_passed", alloc_free ? 1.0 : 0.0,
                      "bool");
    }

    // The 1.5x pipelining check: measured when the host can actually overlap
    // (a core per stage), projected otherwise.
    const unsigned cores = std::thread::hardware_concurrency();
    const bool use_measured = cores >= 4;
    const bench::RepeatStats& pipelined_stats =
        use_measured ? best_measured_stats : best_projected_stats;
    const double pipelined = pipelined_stats.median;
    std::vector<double> speedup_samples;
    for (const double fps : pipelined_stats.samples)
        if (serial_fps > 0.0) speedup_samples.push_back(fps / serial_fps);
    const bench::RepeatStats speedup_stats =
        bench::RepeatStats::from_samples(speedup_samples);
    const double speedup = speedup_stats.median;
    bench::record("serve.pipelined_fps", pipelined_stats, "fps",
                  bench::Direction::kHigherIsBetter);
    bench::record("serve.speedup_vs_serial", speedup_stats, "x",
                  bench::Direction::kHigherIsBetter);

    bench::rule();
    std::printf("pipelined %.1f FPS (%s, %u cores) vs serial %.1f FPS -> %.2fx\n",
                pipelined, use_measured ? "measured" : "projected", cores, serial_fps,
                speedup);
    const bool ok = speedup >= 1.5;
    std::printf("CHECK pipelined >= 1.5x serial: %s\n", ok ? "PASSED" : "FAILED");
    bench::record("serve.speedup_check_passed", ok ? 1.0 : 0.0, "bool");

    const int rc = bench::finish(argc, argv);
    return ok && alloc_free ? rc : 1;
}
