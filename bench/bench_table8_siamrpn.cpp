// Table 8: SiamRPN++ on GOT-10k with AlexNet / ResNet-50 / SkyNet backbones
// (single 1080Ti).
//
// Paper: AlexNet   AO 0.354  SR.50 0.385  SR.75 0.101  52.36 FPS
//        ResNet-50 AO 0.365  SR.50 0.411  SR.75 0.115  25.90 FPS
//        SkyNet    AO 0.364  SR.50 0.391  SR.75 0.116  41.22 FPS
// — SkyNet matches ResNet-50's accuracy at 1.60x its speed with 37.2x
// fewer backbone parameters.
//
// We train each tracker identically on synthetic GOT-10k-style sequences,
// evaluate AO/SR on held-out sequences, measure the wall-clock C++ tracker
// FPS on this CPU, and model full-scale 1080Ti throughput (exemplar 127 /
// search 255) with the calibrated GPU model.
#include "backbones/registry.hpp"
#include "bench/harness.hpp"
#include "hwsim/gpu_model.hpp"
#include "skynet/skynet_model.hpp"
#include "tracking/metrics.hpp"
#include "tracking/tracker.hpp"

namespace {

using namespace sky;

struct BackboneChoice {
    const char* name;
    float train_width;
};

struct RowResult {
    double ao, sr50, sr75, cpu_fps, model_fps;
    double full_params_m;
};

RowResult run_backbone(const BackboneChoice& bc, bool use_mask, int steps) {
    Rng rng(7);
    nn::ModulePtr net;
    int channels;
    if (std::string(bc.name) == "skynet") {
        SkyNetModel bb = build_skynet_backbone(bc.train_width, nn::Act::kReLU6, rng);
        channels = bb.feature_channels();
        net = std::move(bb.net);
    } else {
        backbones::Backbone bb = backbones::build_by_name(bc.name, bc.train_width, rng);
        channels = bb.out_channels;
        net = std::move(bb.net);
    }
    tracking::SiameseEmbed embed(std::move(net), channels, 24, rng);
    tracking::TrackerConfig tcfg;
    tcfg.crop_size = 48;
    tcfg.kernel_cells = 3;
    tcfg.use_mask = use_mask;
    tcfg.mask_size = 8;
    tracking::SiamTracker tracker(std::move(embed), tcfg, rng);

    data::TrackingDataset train_ds({64, 64, 14, 1, 0.02f, 0.015f, 5});
    tracking::TrackerTrainConfig cfg;
    cfg.steps = steps;
    cfg.batch = 4;
    cfg.lr_start = 0.03f;   // deep backbones need the hotter schedule
    cfg.lr_end = 0.003f;
    Rng train_rng(9);
    tracking::train_tracker(tracker, train_ds, cfg, train_rng);

    data::TrackingDataset eval_ds({64, 64, 20, 1, 0.02f, 0.015f, 77});
    const tracking::TrackerEvaluation ev = tracking::evaluate_tracker(tracker, eval_ds, 10);

    // Full-scale 1080Ti model: one search-region backbone pass per frame
    // (255x255, as SiamRPN++ uses), plus the lightweight head.
    Rng full_rng(1);
    std::int64_t full_params;
    double model_fps;
    hwsim::GpuModel gpu(hwsim::gtx1080ti());
    // Per-frame cost = backbone on the 255x255 search region + the RPN
    // head, correlation and framework runtime (a fixed ~18.5 ms on a
    // 1080Ti for SiamRPN++-class trackers).
    const double head_runtime_ms = 18.5;
    double backbone_ms;
    if (std::string(bc.name) == "skynet") {
        SkyNetModel bb = build_skynet_backbone(1.0f, nn::Act::kReLU6, full_rng);
        full_params = bb.param_count();
        backbone_ms = gpu.estimate(*bb.net, {1, 3, 256, 256}).latency_ms;
    } else {
        backbones::Backbone bb = backbones::build_by_name(bc.name, 1.0f, full_rng);
        full_params = bb.param_count();
        backbone_ms = gpu.estimate(*bb.net, {1, 3, 256, 256}).latency_ms;
    }
    model_fps = 1e3 / (backbone_ms + head_runtime_ms);
    return {ev.metrics.ao, ev.metrics.sr50, ev.metrics.sr75, ev.wall_fps, model_fps,
            full_params / 1e6};
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sky;
    const int steps = bench::steps(300);
    const BackboneChoice choices[3] = {
        {"alexnet", 0.25f}, {"resnet50", 0.12f}, {"skynet", 0.2f}};
    const double paper[3][4] = {{0.354, 0.385, 0.101, 52.36},
                                {0.365, 0.411, 0.115, 25.90},
                                {0.364, 0.391, 0.116, 41.22}};

    std::printf("=== Table 8: SiamRPN++ backbones on synthetic GOT-10k (%d steps) ===\n\n",
                steps);
    std::printf("%-10s | %6s %7s %7s %8s | %6s %7s %7s %8s %8s %8s\n", "backbone",
                "p.AO", "p.SR50", "p.SR75", "p.FPS", "AO", "SR50", "SR75", "cpuFPS",
                "1080Ti", "params");
    bench::rule(' ', 0);
    bench::rule('-', 110);
    RowResult results[3];
    for (int i = 0; i < 3; ++i) {
        results[i] = run_backbone(choices[i], /*use_mask=*/false, steps);
        std::printf("%-10s | %6.3f %7.3f %7.3f %8.2f | %6.3f %7.3f %7.3f %8.1f %8.1f %7.2fM\n",
                    choices[i].name, paper[i][0], paper[i][1], paper[i][2], paper[i][3],
                    results[i].ao, results[i].sr50, results[i].sr75, results[i].cpu_fps,
                    results[i].model_fps, results[i].full_params_m);
        bench::record(std::string("table8.") + choices[i].name + ".ao", results[i].ao,
                      "ao", bench::Direction::kHigherIsBetter);
        bench::record(std::string("table8.") + choices[i].name + ".model_fps",
                      results[i].model_fps, "fps", bench::Direction::kHigherIsBetter);
    }
    std::printf("\nSkyNet vs ResNet-50: %.2fx faster (1080Ti model; paper 1.60x), "
                "%.1fx fewer backbone parameters (paper 37.20x)\n",
                results[2].model_fps / results[1].model_fps,
                results[1].full_params_m / results[2].full_params_m);
    std::printf("expected shapes: SkyNet >= ResNet-50 in AO at ~1.6-1.8x its modeled\n"
                "speed and a fraction of its parameters.  Note the training budget:\n"
                "ResNet-50 needs ~300 steps (SKYNET_BENCH_SCALE >= 1) to converge; at\n"
                "smaller scales its AO reflects an under-trained backbone.  On the\n"
                "synthetic task the shallow AlexNet over-performs its paper position.\n");
    bench::record("table8.speedup_vs_resnet50",
                  results[2].model_fps / results[1].model_fps, "x",
                  bench::Direction::kHigherIsBetter);
    return bench::finish(argc, argv);
}
