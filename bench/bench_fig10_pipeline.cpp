// Figures 9 & 10 / §6.3-6.4: system-level pipelining and the tiling+batch
// scheme.
//
// Paper: merging fetch+pre-process and overlapping all stages with
// multithreading gives a 3.35x speedup on TX2 (peaking at 67.33 FPS); the
// Ultra96 design overlaps pre-process / inference / post-process on
// CPU+FPGA to reach 25.05 FPS; the Fig. 9 tiling+batch scheme removes
// buffer waste so a 4-image tile shares one FM buffer.
#include <algorithm>
#include <cstring>

#include "backbones/registry.hpp"
#include "bench/harness.hpp"
#include "hwsim/fpga_model.hpp"
#include "hwsim/gpu_model.hpp"
#include "hwsim/pipeline.hpp"
#include "skynet/skynet_model.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    // `--trace <path>` dumps the TX2 discrete-event schedule for
    // chrome://tracing — the Fig. 10 overlap, visually.
    const char* trace_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
    obs::TraceSession trace;
    Rng rng(1);
    SkyNetModel model = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f}, rng);
    const Shape in{1, 3, 160, 320};

    // ---- TX2 (Fig. 10 top): 4 stages, merge 1-2, overlap everything.
    hwsim::GpuModel tx2(hwsim::tx2());
    const hwsim::GpuEstimate g = tx2.estimate(*model.net, in, {4, false});
    // Serial-stage costs per batch of 4 (profiled with L4T in the paper);
    // multithreading then both overlaps the stages and spreads the CPU-side
    // work over the TX2's four big cores.
    std::vector<hwsim::PipelineStage> stages = {{"fetch", 36.0},
                                                {"pre-process", 46.0},
                                                {"inference", g.latency_ms},
                                                {"post-process", 34.0}};
    std::printf("=== Fig. 10 (TX2): serial vs merged+pipelined execution ===\n\n");
    double serial = 0.0;
    for (const auto& s : stages) {
        std::printf("  stage %-12s %6.2f ms/batch4\n", s.name.c_str(), s.latency_ms);
        serial += s.latency_ms;
    }
    auto merged = hwsim::merge_stages(stages, 0, 2);
    merged[0].latency_ms /= 4.0;  // multithreaded fetch+pre-process
    merged[2].latency_ms /= 4.0;  // multithreaded post-process
    const hwsim::PipelineReport rep =
        hwsim::simulate_pipeline(merged, 4, 500, trace_path ? &trace : nullptr);
    std::printf("\n  serial:    %6.2f ms/batch -> %6.2f FPS\n", serial,
                4e3 / serial);
    std::printf("  pipelined: %6.2f ms/batch -> %6.2f FPS  (speedup %.2fx)\n",
                rep.pipelined_ms_per_batch, rep.pipelined_fps,
                serial / rep.pipelined_ms_per_batch);
    std::printf("  paper:     3.35x speedup, 67.33 FPS peak\n\n");
    bench::record("fig10.tx2.serial_ms_per_batch", serial, "ms",
                  bench::Direction::kLowerIsBetter);
    bench::record("fig10.tx2.pipelined_fps", rep.pipelined_fps, "fps",
                  bench::Direction::kHigherIsBetter);
    bench::record("fig10.tx2.speedup", serial / rep.pipelined_ms_per_batch, "x",
                  bench::Direction::kHigherIsBetter);

    // ---- Ultra96 (Fig. 10 bottom): CPU pre/post + FPGA inference overlap.
    hwsim::FpgaModel u96(hwsim::ultra96());
    const hwsim::FpgaEstimate f = u96.estimate(*model.net, in, {11, 9, false, 4, 1.0});
    std::vector<hwsim::PipelineStage> fstages = {{"pre-process (CPU)", 28.0},
                                                 {"SkyNet inference (FPGA)", f.latency_ms},
                                                 {"post-process (CPU)", 22.0}};
    std::printf("=== Fig. 10 (Ultra96): CPU/FPGA task partition ===\n\n");
    double fserial = 0.0;
    for (const auto& s : fstages) {
        std::printf("  stage %-24s %6.2f ms/tile4\n", s.name.c_str(), s.latency_ms);
        fserial += s.latency_ms;
    }
    const hwsim::PipelineReport frep = hwsim::simulate_pipeline(fstages, 4, 500);
    std::printf("\n  serial:    %6.2f FPS;  pipelined: %6.2f FPS (speedup %.2fx)\n",
                4e3 / fserial, frep.pipelined_fps, frep.speedup);
    std::printf("  paper:     25.05 FPS with all three tasks overlapped\n\n");
    bench::record("fig10.ultra96.pipelined_fps", frep.pipelined_fps, "fps",
                  bench::Direction::kHigherIsBetter);
    bench::record("fig10.ultra96.speedup", frep.speedup, "x",
                  bench::Direction::kHigherIsBetter);

    // ---- Fig. 9: tiling+batch vs naive batching.
    // Naive batching buffers all four images' feature maps at once (4x the
    // shared buffer); the tiling scheme streams them through the same
    // buffer.  The weight-reuse benefit shows on weight-heavy networks.
    std::printf("=== Fig. 9: input tiling+batch scheme (shared FM buffer) ===\n\n");
    std::vector<nn::LayerInfo> layers;
    model.net->enumerate(in, layers);
    // Buffer demand without the scheme: a batch of 4 must double-buffer four
    // images' largest feature map at once.
    std::int64_t max_fm = 0;
    std::int64_t weight_params = 0;
    for (const auto& li : layers) {
        max_fm = std::max({max_fm, li.in.count(), li.out.count()});
        weight_params += li.params;
    }
    const double naive_bits = 2.0 * 4.0 * static_cast<double>(max_fm) * 9;
    const int bram_naive = static_cast<int>(naive_bits / (18.0 * 1024.0) + 1);
    const hwsim::FpgaBuildConfig q{11, 9, false, 4, 1.0};
    const int bram_tiled = u96.estimate_layers(layers, q).resources.bram18k;
    std::printf("  SkyNet batch 4:  naive buffering needs >= %d BRAM18K, tiled design"
                " uses %d (budget %d)\n\n",
                bram_naive, bram_tiled, hwsim::ultra96().bram18k_total);

    std::printf("  weight reuse (weights stream once per macro-image):\n");
    std::printf("%10s %22s %10s\n", "tile", "weight DRAM MB/img", "FPS");
    bench::rule();
    for (int tile : {1, 2, 4}) {
        const hwsim::FpgaEstimate e = u96.estimate(*model.net, in, {11, 9, false, tile, 1.0});
        const double w_mb = static_cast<double>(weight_params) * 11 / 8.0 / 1e6 / tile;
        std::printf("%10d %22.2f %10.2f\n", tile, w_mb, e.fps);
    }
    std::printf("\nshape check: tiling keeps the shared buffer at its single-image size\n"
                "(naive batch-4 buffering would need ~%dx more BRAM than the budget\n"
                "allows for feature maps) while weight traffic per image falls with the\n"
                "tile count — the Fig. 9 data-reuse benefit.\n",
                std::max(1, bram_naive / std::max(1, bram_tiled)));
    bench::record("fig9.bram_naive", bram_naive, "KB");
    bench::record("fig9.bram_tiled", bram_tiled, "KB");
    if (trace_path && trace.save(trace_path))
        std::printf("wrote pipeline trace to %s (open in chrome://tracing)\n", trace_path);
    return bench::finish(argc, argv);
}
