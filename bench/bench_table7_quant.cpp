// Table 7: validation IoU of trained SkyNet under the five FPGA
// quantisation schemes.
//
// Paper: fp32 0.741; FM9/W11 0.727; FM9/W10 0.714; FM8/W11 0.690;
//        FM8/W10 0.680  (drops of 1.4% .. 6.1% relative).
//
// We train one SkyNet C - ReLU6 and sweep the same schemes post-training;
// the shape to reproduce is a monotone ordering in (FM bits, W bits) with
// FM bits mattering more, and scheme 1 being the accuracy/score sweet spot
// the paper deploys.
// The second half measures the deployed datapath itself: wall-clock of the
// packed int8 GEMM engine (QExecution::kAuto) against the scalar reference
// interpreter (kReference, the pre-engine implementation) and the fp32 SIMD
// path, on the same batch.
#include "bench/harness.hpp"
#include "data/synth_detection.hpp"
#include "deploy/fold_bn.hpp"
#include "detect/metrics.hpp"
#include "quant/qengine.hpp"
#include "quant/qmodel.hpp"
#include "skynet/skynet_model.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    const int train_steps = bench::steps(300);

    Rng rng(42);
    SkyNetModel model = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.3f}, rng);
    data::DetectionDataset ds({64, 128, 2, true, 7});
    train::DetectTrainConfig cfg;
    cfg.steps = train_steps;
    cfg.batch = 8;
    cfg.val_images = 128;
    Rng train_rng(9);
    const double float_iou =
        train::train_detector(*model.net, model.head, ds, cfg, train_rng).val_iou;
    const data::DetectionBatch val = ds.validation(128);
    // One static FM format for the whole network (the shared-buffer FPGA
    // regime), calibrated offline on the validation set.
    const float fm_range = quant::calibrate_fm_abs_max(*model.net, val.images);

    const double paper_iou[5] = {0.741, 0.727, 0.714, 0.690, 0.680};
    std::printf("=== Table 7: quantisation schemes (trained %d steps) ===\n\n",
                train_steps);
    std::printf("%7s %9s %8s | %9s %10s | %9s %10s\n", "scheme", "FM bits", "W bits",
                "paper IoU", "paper drop", "ours IoU", "ours drop");
    bench::rule(' ', 0);
    bench::rule();
    double prev_ours = 0.0;
    (void)prev_ours;
    for (const quant::QuantScheme& s : quant::table7_schemes()) {
        const double iou = s.id == 0 ? float_iou
                                     : quant::detector_iou_quantized(
                                           *model.net, model.head, val, s.fm_bits,
                                           s.weight_bits, fm_range);
        const double paper_drop =
            100.0 * (paper_iou[0] - paper_iou[s.id]) / paper_iou[0];
        const double our_drop = 100.0 * (float_iou - iou) / std::max(float_iou, 1e-9);
        std::printf("%7d %9s %8s | %9.3f %9.1f%% | %9.3f %9.1f%%\n", s.id,
                    s.fm_bits ? std::to_string(s.fm_bits).c_str() : "fp32",
                    s.weight_bits ? std::to_string(s.weight_bits).c_str() : "fp32",
                    paper_iou[s.id], paper_drop, iou, our_drop);
        bench::record("table7.scheme" + std::to_string(s.id) + ".iou", iou, "iou",
                      bench::Direction::kHigherIsBetter);
        bench::record("table7.scheme" + std::to_string(s.id) + ".drop_pct", our_drop,
                      "pct", bench::Direction::kLowerIsBetter);
    }
    // Extended sweep: our reduced-scale substrate tolerates 8-9 bits (its
    // dynamic ranges are smaller than the full 160x320 model's), so the
    // paper's knee appears a few bits lower.  The shape — monotone
    // degradation dominated by FM precision — is the same.
    std::printf("\n--- extended sweep (beyond Table 7's range) ---\n");
    std::printf("%14s %9s %10s\n", "config", "IoU", "drop");
    bench::rule();
    struct Ext { int fm, w; };
    const Ext ext[] = {{7, 11}, {6, 11}, {5, 11}, {4, 11}, {9, 6}, {9, 5}, {9, 4}};
    for (const Ext& e : ext) {
        const double iou = quant::detector_iou_quantized(*model.net, model.head, val,
                                                         e.fm, e.w, fm_range);
        std::printf("   FM%-2d / W%-2d  %9.3f %9.1f%%\n", e.fm, e.w, iou,
                    100.0 * (float_iou - iou) / std::max(float_iou, 1e-9));
    }
    std::printf("\nshape check: degradation is monotone in bit-width and the FM axis\n"
                "dominates (as in the paper); at our reduced scale the knee sits a few\n"
                "bits below the paper's 8-9 bit range.\n");

    // --- Wall-clock: int8 engine vs the reference interpreter vs fp32 -----
    // The scheme-1 engine, compiled once, timed on an 8-image batch.  The
    // kReference engine IS the old interpreter (same code path), so
    // int8_speedup_vs_ref measures what the packed u8 x s8 GEMM engine buys.
    const Tensor clock_batch = ds.validation(8).images;
    const bench::RepeatStats fp32_t =
        bench::run("table7.fp32_ms", "ms", bench::Direction::kLowerIsBetter,
                   [&] { (void)model.net->forward(clock_batch); });
    deploy::fold_graph_bn(*model.net);
    model.net->set_training(false);
    const quant::QuantConfig qcfg =
        quant::QuantConfig{}.with_bits(9, 11).with_fm_abs_max(fm_range);
    quant::QEngine ref_engine(
        *model.net, qcfg.with_execution(quant::QExecution::kReference));
    quant::QEngine int8_engine(*model.net,
                               qcfg.with_execution(quant::QExecution::kAuto));
    const bench::RepeatStats ref_t =
        bench::run("table7.ref_int_ms", "ms", bench::Direction::kLowerIsBetter,
                   [&] { (void)ref_engine.run(clock_batch); });
    const bench::RepeatStats int8_t =
        bench::run("table7.int8_ms", "ms", bench::Direction::kLowerIsBetter,
                   [&] { (void)int8_engine.run(clock_batch); });
    const double vs_ref = ref_t.median / int8_t.median;
    const double vs_fp32 = fp32_t.median / int8_t.median;
    bench::record("table7.int8_speedup_vs_ref", vs_ref, "x",
                  bench::Direction::kHigherIsBetter);
    bench::record("table7.int8_speedup_vs_fp32", vs_fp32, "x",
                  bench::Direction::kHigherIsBetter);
    const double int8_iou =
        detect::mean_iou(model.head.decode(int8_engine.run(val.images)), val.boxes);
    bench::record("table7.int8.iou", int8_iou, "iou",
                  bench::Direction::kHigherIsBetter);
    std::printf("\n--- scheme-1 wall clock (8-image batch, %d/%d convs on qgemm) ---\n",
                int8_engine.report().qgemm_layers,
                int8_engine.report().qgemm_layers + int8_engine.report().ref_layers);
    std::printf("  fp32 SIMD        %8.2f ms\n", fp32_t.median);
    std::printf("  reference int    %8.2f ms\n", ref_t.median);
    std::printf("  int8 engine      %8.2f ms   (%.2fx vs ref, %.2fx vs fp32; "
                "IoU %.3f)\n",
                int8_t.median, vs_ref, vs_fp32, int8_iou);
    return bench::finish(argc, argv);
}
