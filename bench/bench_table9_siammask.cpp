// Table 9: SiamMask on GOT-10k with ResNet-50 vs SkyNet backbones.
//
// Paper: ResNet-50 AO 0.380 SR.50 0.439 SR.75 0.153 @ 17.44 FPS
//        SkyNet    AO 0.390 SR.50 0.442 SR.75 0.158 @ 30.15 FPS  (1.73x)
//
// Same protocol as Table 8 but with the mask branch enabled (the tracker's
// box comes from the thresholded mask at the best response location, which
// is what lets SiamMask edge out SiamRPN++).
#include "backbones/registry.hpp"
#include "bench/harness.hpp"
#include "hwsim/gpu_model.hpp"
#include "skynet/skynet_model.hpp"
#include "tracking/metrics.hpp"
#include "tracking/tracker.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    const int steps = bench::steps(300);

    struct Row {
        const char* name;
        float width;
        double paper[4];
    };
    const Row rows[2] = {{"resnet50", 0.12f, {0.380, 0.439, 0.153, 17.44}},
                         {"skynet", 0.2f, {0.390, 0.442, 0.158, 30.15}}};

    std::printf("=== Table 9: SiamMask backbones on synthetic GOT-10k (%d steps) ===\n\n",
                steps);
    std::printf("%-10s | %6s %7s %7s %8s | %6s %7s %7s %8s %8s\n", "backbone", "p.AO",
                "p.SR50", "p.SR75", "p.FPS", "AO", "SR50", "SR75", "cpuFPS", "1080Ti");
    bench::rule(' ', 0);
    bench::rule('-', 100);

    double model_fps[2] = {0.0, 0.0};
    for (int i = 0; i < 2; ++i) {
        const Row& r = rows[i];
        Rng rng(7);
        nn::ModulePtr net;
        int channels;
        if (std::string(r.name) == "skynet") {
            SkyNetModel bb = build_skynet_backbone(r.width, nn::Act::kReLU6, rng);
            channels = bb.feature_channels();
            net = std::move(bb.net);
        } else {
            backbones::Backbone bb = backbones::build_by_name(r.name, r.width, rng);
            channels = bb.out_channels;
            net = std::move(bb.net);
        }
        tracking::SiameseEmbed embed(std::move(net), channels, 24, rng);
        tracking::TrackerConfig tcfg;
        tcfg.crop_size = 48;
        tcfg.kernel_cells = 3;
        tcfg.use_mask = true;
        tcfg.mask_size = 8;
        tracking::SiamTracker tracker(std::move(embed), tcfg, rng);

        data::TrackingDataset train_ds({64, 64, 14, 1, 0.02f, 0.015f, 5});
        tracking::TrackerTrainConfig cfg;
        cfg.steps = steps;
        cfg.batch = 4;
        cfg.lr_start = 0.03f;
        cfg.lr_end = 0.003f;
        Rng train_rng(9);
        tracking::train_tracker(tracker, train_ds, cfg, train_rng);

        data::TrackingDataset eval_ds({64, 64, 20, 1, 0.02f, 0.015f, 77});
        const tracking::TrackerEvaluation ev =
            tracking::evaluate_tracker(tracker, eval_ds, 10);

        hwsim::GpuModel gpu(hwsim::gtx1080ti());
        Rng full_rng(1);
        double backbone_ms;
        if (std::string(r.name) == "skynet") {
            SkyNetModel bb = build_skynet_backbone(1.0f, nn::Act::kReLU6, full_rng);
            backbone_ms = gpu.estimate(*bb.net, {1, 3, 256, 256}).latency_ms;
        } else {
            backbones::Backbone bb = backbones::build_by_name(r.name, 1.0f, full_rng);
            backbone_ms = gpu.estimate(*bb.net, {1, 3, 256, 256}).latency_ms;
        }
        // RPN head + correlation + runtime, plus SiamMask's mask branch.
        model_fps[i] = 1e3 / (backbone_ms + 18.5 + 9.0);

        std::printf("%-10s | %6.3f %7.3f %7.3f %8.2f | %6.3f %7.3f %7.3f %8.1f %8.1f\n",
                    r.name, r.paper[0], r.paper[1], r.paper[2], r.paper[3], ev.metrics.ao,
                    ev.metrics.sr50, ev.metrics.sr75, ev.wall_fps, model_fps[i]);
        bench::record(std::string("table9.") + r.name + ".ao", ev.metrics.ao, "ao",
                      bench::Direction::kHigherIsBetter);
        bench::record(std::string("table9.") + r.name + ".model_fps", model_fps[i], "fps",
                      bench::Direction::kHigherIsBetter);
    }
    std::printf("\nSkyNet vs ResNet-50 speedup: %.2fx (paper: 1.73x)\n",
                model_fps[1] / model_fps[0]);
    bench::record("table9.speedup_vs_resnet50", model_fps[1] / model_fps[0], "x",
                  bench::Direction::kHigherIsBetter);
    std::printf("expected shapes: SkyNet tracks as well or better than ResNet-50 while\n"
                "being much faster — the paper's Table 9 story.  ResNet-50 needs\n"
                "SKYNET_BENCH_SCALE >= 1 to converge.  (Whether the mask branch beats\n"
                "pure regression depends on the backbone at our scale; see\n"
                "EXPERIMENTS.md.)\n");
    return bench::finish(argc, argv);
}
