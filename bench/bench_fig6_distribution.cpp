// Figure 6: distribution of bounding-box relative size in the (synthetic)
// DAC-SDC training set — histogram bars, cumulative curve, and the paper's
// two headline statistics (31% of boxes < 1% of the image area, 91% < 9%).
#include <cstdio>

#include "bench/harness.hpp"
#include "dacsdc/stats.hpp"
#include "data/synth_detection.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    data::DetectionDataset ds({80, 160, 2, false, 7});
    Rng rng(2024);
    std::vector<float> ratios;
    const int n = 50000;
    ratios.reserve(n);
    for (int i = 0; i < n; ++i) ratios.push_back(ds.sample_area_ratio(rng));

    const dacsdc::SizeHistogram h = dacsdc::size_histogram(ratios, 20, 0.20);
    std::printf("=== Figure 6: bounding-box relative size distribution (%d boxes) ===\n\n",
                n);
    std::printf("%-14s %-9s %-10s\n", "size ratio", "freq", "cumulative");
    for (std::size_t b = 0; b < h.frequency.size(); ++b) {
        std::printf("[%.3f,%.3f)  %6.2f%%   %6.2f%%  ", h.bin_edges[b], h.bin_edges[b + 1],
                    100.0 * h.frequency[b], 100.0 * h.cumulative[b]);
        const int bars = static_cast<int>(h.frequency[b] * 120);
        for (int i = 0; i < bars; ++i) std::printf("#");
        std::printf("\n");
    }
    std::printf("\npaper:    31%% of boxes < 1%% of image,  91%% < 9%%\n");
    std::printf("measured: %.0f%% of boxes < 1%% of image,  %.0f%% < 9%%\n",
                100.0 * dacsdc::fraction_below(ratios, 0.01),
                100.0 * dacsdc::fraction_below(ratios, 0.09));
    bench::record("fig6.frac_below_1pct", dacsdc::fraction_below(ratios, 0.01), "fraction");
    bench::record("fig6.frac_below_9pct", dacsdc::fraction_below(ratios, 0.09), "fraction");
    return bench::finish(argc, argv);
}
