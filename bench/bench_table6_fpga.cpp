// Table 6: DAC-SDC FPGA-track final results (Ultra96 in 2019, Pynq-Z1 in
// 2018).
//
// Paper rows (IoU / FPS / W / score): SkyNet 0.716/25.05/7.26/1.526,
// XJTU Tripler 0.615/50.91/9.25/1.394, SystemsETHZ 0.553/55.13/6.69/1.318;
// 2018: TGIIF 0.624/11.96/4.20/1.267, SystemsETHZ 0.492/25.97/2.45/1.179,
// iSmart2 0.573/7.35/2.59/1.164.
//
// Each entry's reference DNN is rebuilt and mapped through the IP-based
// FPGA model with its published quantisation and optimisations (Table 1):
// aggressive low-bit designs for the throughput-first entries, SkyNet's
// 9/11-bit scheme with 4-image tiling (Fig. 9).  IoU is quoted from the
// paper; FPS, power and both scores are regenerated.
#include "backbones/registry.hpp"
#include "bench/harness.hpp"
#include "dacsdc/scoring.hpp"
#include "hwsim/energy.hpp"
#include "hwsim/fpga_model.hpp"
#include "skynet/skynet_model.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    const hwsim::FpgaModel u96(hwsim::ultra96());
    const hwsim::FpgaModel z1(hwsim::pynqz1());
    const Shape in{1, 3, 160, 320};

    struct EntrySpec {
        const char* team;
        int year;
        const char* backbone;
        float width;
        hwsim::FpgaBuildConfig build;
        double paper_iou, paper_fps, paper_w, paper_score;
    };
    const EntrySpec specs[6] = {
        {"SkyNet (ours)", 2019, "skynet", 1.0f, {11, 9, false, 4, 1.0},
         0.716, 25.05, 7.26, 1.526},
        {"XJTU Tripler", 2019, "shufflenet", 0.5f, {8, 8, true, 2, 0.9},
         0.615, 50.91, 9.25, 1.394},
        {"SystemsETHZ", 2019, "squeezenet", 0.75f, {4, 8, false, 2, 0.9},
         0.553, 55.13, 6.69, 1.318},
        {"TGIIF", 2018, "vgg16", 0.25f, {8, 8, true, 1, 0.9},
         0.624, 11.96, 4.20, 1.267},
        {"SystemsETHZ'18", 2018, "squeezenet", 0.5f, {4, 8, false, 1, 0.78},
         0.492, 25.97, 2.45, 1.179},
        {"iSmart2", 2018, "mobilenet", 0.5f, {8, 8, false, 1, 1.0},
         0.573, 7.35, 2.59, 1.164},
    };

    std::printf("=== Table 6: DAC-SDC FPGA track (Ultra96 '19 / Pynq-Z1 '18) ===\n\n");
    std::printf("%-15s %4s | %5s %5s %5s | %7s %7s | %5s %5s\n", "team", "year", "DSP",
                "BRAM", "P", "ppr FPS", "our FPS", "ppr W", "our W");
    bench::rule(' ', 0);
    bench::rule();
    std::vector<dacsdc::Entry> track2019, track2018;
    for (const EntrySpec& s : specs) {
        Rng rng(1);
        nn::ModulePtr net;
        if (std::string(s.backbone) == "skynet") {
            net = std::move(
                build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, s.width}, rng).net);
        } else {
            backbones::Backbone bb = backbones::build_by_name(s.backbone, s.width, rng);
            net = backbones::make_detector(std::move(bb), 2, rng);
        }
        const hwsim::FpgaModel& dev = s.year == 2019 ? u96 : z1;
        const hwsim::FpgaEstimate est = dev.estimate(*net, in, s.build);
        const hwsim::EnergyEstimate en =
            hwsim::estimate_energy(dev.profile(), est.utilization, est.fps);
        (s.year == 2019 ? track2019 : track2018)
            .push_back({s.team, s.paper_iou, est.fps, en.power_w});
        std::printf("%-15s %4d | %5d %5d %5d | %7.2f %7.2f | %5.2f %5.2f\n", s.team,
                    s.year, est.resources.dsp, est.resources.bram18k, est.parallelism,
                    s.paper_fps, est.fps, s.paper_w, en.power_w);
    }

    for (int year : {2019, 2018}) {
        const auto& track = year == 2019 ? track2019 : track2018;
        std::printf("\n--- %d leaderboard (Eq. 2-5, x = 2, 50k images) ---\n", year);
        std::printf("%-15s %6s %8s %7s %7s %8s | %11s\n", "team", "IoU", "FPS", "W", "ES",
                    "total", "paper total");
        bench::rule();
        for (const auto& sc : dacsdc::score_track(track, {2.0, 50000})) {
            double paper_total = 0.0;
            for (const EntrySpec& s : specs)
                if (sc.entry.team == s.team) paper_total = s.paper_score;
            std::printf("%-15s %6.3f %8.2f %7.2f %7.3f %8.3f | %11.3f\n",
                        sc.entry.team.c_str(), sc.entry.iou, sc.entry.fps,
                        sc.entry.power_w, sc.energy_score, sc.total_score, paper_total);
            bench::record("table6." + sc.entry.team + ".fps", sc.entry.fps, "fps");
            bench::record("table6." + sc.entry.team + ".total_score", sc.total_score,
                          "score", bench::Direction::kHigherIsBetter);
        }
    }
    std::printf("\nshape check: the aggressive low-bit entries out-run SkyNet in raw FPS\n"
                "but lose enough IoU that SkyNet takes the best total score (Eq. 5);\n"
                "2019's Ultra96 designs beat the 2018 Pynq-Z1 field.\n");
    return bench::finish(argc, argv);
}
