// Ablation benches for the design choices DESIGN.md calls out, beyond the
// paper's own Table 4:
//   1. anchor count for the detection head (the paper chose 2);
//   2. where the bypass taps the backbone (the paper taps Bundle #3);
//   3. channel width scaling (accuracy/latency trade of the whole family);
//   4. hardware knobs: double-pumped DSP, tiling count, quantisation bits
//      (analytic, via the FPGA model).
#include "bench/harness.hpp"
#include "data/synth_detection.hpp"
#include "hwsim/fpga_model.hpp"
#include "nn/batchnorm.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/space_to_depth.hpp"
#include "skynet/skynet_model.hpp"
#include "train/trainer.hpp"

namespace {

using namespace sky;

/// SkyNet-like net with a configurable bypass tap (0 = no bypass,
/// 2 / 3 = reorder the output of that bundle into the final concat).
/// Mirrors skynet_model.cpp's builder at reduced width.
struct TapNet {
    std::unique_ptr<nn::Graph> net;
};

int add_bundle(nn::Graph& g, int in_node, int in_ch, int out_ch, Rng& rng) {
    int n = g.add(std::make_unique<nn::DWConv3>(in_ch, rng), in_node);
    n = g.add(std::make_unique<nn::BatchNorm2d>(in_ch), n);
    n = g.add(std::make_unique<nn::Activation>(nn::Act::kReLU6), n);
    n = g.add(std::make_unique<nn::PWConv1>(in_ch, out_ch, false, rng), n);
    n = g.add(std::make_unique<nn::BatchNorm2d>(out_ch), n);
    n = g.add(std::make_unique<nn::Activation>(nn::Act::kReLU6), n);
    return n;
}

TapNet build_tap_net(int tap, Rng& rng) {
    const int c1 = 12, c2 = 24, c3 = 48, c4 = 96, c5 = 128;
    TapNet t;
    t.net = std::make_unique<nn::Graph>();
    nn::Graph& g = *t.net;
    int n = add_bundle(g, g.input(), 3, c1, rng);
    n = g.add(std::make_unique<nn::MaxPool2>(), n);
    const int b2 = add_bundle(g, n, c1, c2, rng);
    n = g.add(std::make_unique<nn::MaxPool2>(), b2);
    const int b3 = add_bundle(g, n, c2, c3, rng);
    n = g.add(std::make_unique<nn::MaxPool2>(), b3);
    n = add_bundle(g, n, c3, c4, rng);
    const int b5 = add_bundle(g, n, c4, c5, rng);
    int feat = b5;
    int feat_ch = c5;
    if (tap == 2) {
        // Bundle #2 output is stride 4 = 4x the final resolution: two
        // reorder steps (4x4 block) bring it into register.
        int r = g.add(std::make_unique<nn::SpaceToDepth>(2), b2);
        r = g.add(std::make_unique<nn::SpaceToDepth>(2), r);
        const int cat = g.add_concat({b5, r});
        feat = add_bundle(g, cat, c5 + 16 * c2, 48, rng);
        feat_ch = 48;
    } else if (tap == 3) {
        const int r = g.add(std::make_unique<nn::SpaceToDepth>(2), b3);
        const int cat = g.add_concat({b5, r});
        feat = add_bundle(g, cat, c5 + 4 * c3, 48, rng);
        feat_ch = 48;
    }
    const int out = g.add(std::make_unique<nn::PWConv1>(feat_ch, 10, true, rng), feat);
    g.set_output(out);
    return t;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sky;
    const int steps = bench::steps(180);

    // ---------------- 1. anchor count ----------------
    std::printf("=== Ablation 1: detection-head anchor count (paper uses 2) ===\n\n");
    std::printf("%8s %12s %9s\n", "anchors", "head params", "IoU");
    bench::rule();
    for (int anchors : {1, 2, 4}) {
        Rng rng(42);
        SkyNetModel m =
            build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, anchors, 0.25f}, rng);
        // Anchors spread between small and medium per the Fig. 6 stats.
        std::vector<detect::Anchor> a;
        for (int i = 0; i < anchors; ++i) {
            const float s = 0.05f + 0.22f * static_cast<float>(i) /
                                        static_cast<float>(std::max(1, anchors - 1));
            a.push_back({s, s * 1.4f});
        }
        m.head = detect::YoloHead(a);
        data::DetectionDataset ds({48, 96, 2, true, 7});
        train::DetectTrainConfig cfg;
        cfg.steps = steps;
        cfg.batch = 8;
        cfg.val_images = 96;
        Rng tr(9);
        const double iou = train::train_detector(*m.net, m.head, ds, cfg, tr).val_iou;
        std::printf("%8d %12d %9.3f\n", anchors, 5 * anchors, iou);
        bench::record("ablation.anchors" + std::to_string(anchors) + ".iou", iou, "iou",
                      bench::Direction::kHigherIsBetter);
    }

    // ---------------- 2. bypass tap position ----------------
    std::printf("\n=== Ablation 2: bypass tap position (paper taps Bundle #3) ===\n\n");
    std::printf("%12s %9s %12s\n", "tap", "IoU", "FPGA ms");
    bench::rule();
    hwsim::FpgaModel u96(hwsim::ultra96());
    const detect::YoloHead head;
    for (int tap : {0, 2, 3}) {
        Rng rng(42);
        TapNet t = build_tap_net(tap, rng);
        data::DetectionDataset ds({48, 96, 2, true, 7});
        train::DetectTrainConfig cfg;
        cfg.steps = steps;
        cfg.batch = 8;
        cfg.val_images = 96;
        Rng tr(9);
        const double iou = train::train_detector(*t.net, head, ds, cfg, tr).val_iou;
        const double lat = u96.estimate(*t.net, {1, 3, 48, 96}).latency_ms;
        std::printf("%12s %9.3f %12.2f\n",
                    tap == 0 ? "none" : (tap == 2 ? "bundle #2" : "bundle #3"), iou, lat);
        bench::record("ablation.tap" + std::to_string(tap) + ".iou", iou, "iou",
                      bench::Direction::kHigherIsBetter);
        bench::record("ablation.tap" + std::to_string(tap) + ".fpga_ms", lat, "ms",
                      bench::Direction::kLowerIsBetter);
    }

    // ---------------- 3. width sweep ----------------
    std::printf("\n=== Ablation 3: channel width (accuracy vs model cost) ===\n\n");
    std::printf("%8s %10s %10s %9s\n", "width", "params M", "GMACs", "IoU");
    bench::rule();
    for (float w : {0.15f, 0.25f, 0.4f}) {
        Rng rng(42);
        SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, w}, rng);
        data::DetectionDataset ds({48, 96, 2, true, 7});
        train::DetectTrainConfig cfg;
        cfg.steps = steps;
        cfg.batch = 8;
        cfg.val_images = 96;
        Rng tr(9);
        const double iou = train::train_detector(*m.net, m.head, ds, cfg, tr).val_iou;
        std::printf("%8.2f %10.3f %10.3f %9.3f\n", w, m.param_count() / 1e6,
                    m.net->macs({1, 3, 48, 96}) / 1e9, iou);
        char key[48];
        std::snprintf(key, sizeof(key), "ablation.width%.2f.iou", w);
        bench::record(key, iou, "iou", bench::Direction::kHigherIsBetter);
    }

    // ---------------- 4. hardware knobs (analytic) ----------------
    std::printf("\n=== Ablation 4: FPGA knobs on full-width SkyNet (Ultra96) ===\n\n");
    Rng rng(1);
    SkyNetModel full = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f}, rng);
    const Shape in{1, 3, 160, 320};
    std::printf("%-34s %6s %6s %6s %8s\n", "configuration", "DSP", "BRAM", "P", "FPS");
    bench::rule();
    struct Knob {
        const char* name;
        hwsim::FpgaBuildConfig cfg;
    };
    const Knob knobs[] = {
        {"scheme 1 (11/9), tile 4", {11, 9, false, 4, 1.0}},
        {"scheme 1 + double-pumped DSP", {11, 9, true, 4, 1.0}},
        {"scheme 1, no tiling (tile 1)", {11, 9, false, 1, 1.0}},
        {"8/8 bits, tile 4", {8, 8, false, 4, 1.0}},
        {"16/16 bits, tile 4", {16, 16, false, 4, 1.0}},
        {"float32 datapath", {0, 0, false, 4, 1.0}},
    };
    for (const Knob& k : knobs) {
        const hwsim::FpgaEstimate est = u96.estimate(*full.net, in, k.cfg);
        std::printf("%-34s %6d %6d %6d %8.2f\n", k.name, est.resources.dsp,
                    est.resources.bram18k, est.parallelism, est.fps);
        bench::record(std::string("ablation.knob.") + k.name + ".fps", est.fps, "fps",
                      bench::Direction::kHigherIsBetter);
    }
    // ---------------- 5. design-space curve ----------------
    std::printf("\n=== Ablation 5: IP parallelism design space (scheme 1) ===\n\n");
    std::printf("%8s %6s %6s %8s %10s %6s\n", "P", "DSP", "BRAM", "LUT", "ms/img", "fits");
    bench::rule();
    for (const hwsim::FpgaEstimate& p :
         u96.design_space(*full.net, in, {11, 9, false, 1, 1.0}))
        std::printf("%8d %6d %6d %8lld %10.2f %6s\n", p.parallelism, p.resources.dsp,
                    p.resources.bram18k, static_cast<long long>(p.resources.lut),
                    p.latency_ms, p.resources.fits ? "yes" : "no");

    std::printf("\nnotes: the trained sweeps (1-3) are exploratory — at short budgets\n"
                "their orderings are noisy (run with SKYNET_BENCH_SCALE>=2 for stable\n"
                "trends); both bypass taps should beat no-bypass, and IoU should grow\n"
                "then saturate with width.  The analytic sweeps (4-5) are exact:\n"
                "double-pumping/low bits buy parallelism, float32 collapses it, and\n"
                "latency scales ~1/P until LUT/DSP infeasibility.\n");
    return bench::finish(argc, argv);
}
