// Figure 3 / Algorithm 1: the bottom-up design flow itself, end to end.
//
// Stage 1 evaluates the Bundle pool (per-bundle FPGA latency/resources and
// fast-trained sketch accuracy) and marks the Pareto frontier; Stage 2 runs
// the group-based PSO over the selected bundles (fitness Eq. 1); Stage 3
// measures the feature additions (bypass + FM reordering, ReLU6) that turn
// the discovered chain network into SkyNet.  The thing to check is the
// machinery: the Pareto set is non-trivial, PSO fitness is non-decreasing
// over iterations, and the Stage-3 additions improve accuracy at small
// latency cost — which is how the paper arrived at model C.
#include "bench/harness.hpp"
#include "search/flow.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    data::DetectionDataset dataset({48, 96, 1, false, 21});
    hwsim::GpuModel gpu(hwsim::tx2());
    hwsim::FpgaModel fpga(hwsim::ultra96());

    search::FlowConfig cfg;
    cfg.stage1.train_steps = sky::bench::steps(50);
    cfg.stage1.sketch_stacks = 2;
    cfg.stage2.iterations = 3;
    cfg.stage2.particles_per_group = 3;
    cfg.stage2.stack_len = 3;
    cfg.stage2.base_train_steps = sky::bench::steps(25);
    cfg.stage3_train_steps = sky::bench::steps(140);
    cfg.max_groups = 3;

    const search::FlowResult res = search::run_flow(dataset, gpu, fpga, cfg);

    std::printf("=== Stage 1: Bundle selection and evaluation ===\n\n");
    std::printf("%-12s %10s %8s %8s %10s %8s\n", "bundle", "sketch IoU", "lat us", "DSP",
                "BRAM18K", "pareto");
    bench::rule();
    for (const auto& ev : res.stage1)
        std::printf("%-12s %10.3f %8.1f %8d %10d %8s\n", ev.spec.name.c_str(),
                    ev.sketch_iou, ev.latency_us, ev.dsp, ev.bram18k,
                    ev.pareto ? "yes" : "");

    std::printf("\n=== Stage 2: group-based PSO (Algorithm 1) ===\n\n");
    std::printf("iteration  best fitness\n");
    for (std::size_t i = 0; i < res.stage2.best_fitness_history.size(); ++i)
        std::printf("%9zu  %12.4f\n", i, res.stage2.best_fitness_history[i]);
    const search::Particle& best = res.stage2.global_best;
    std::printf("\nglobal best: bundle %s, channels [", best.bundle.name.c_str());
    for (std::size_t i = 0; i < best.channels.size(); ++i)
        std::printf("%s%d", i ? "," : "", best.channels[i]);
    std::printf("], acc %.3f, GPU %.2f ms, FPGA %.2f ms\n", best.accuracy,
                best.gpu_latency_ms, best.fpga_latency_ms);

    std::printf("\n=== Stage 3: feature addition ===\n\n");
    std::printf("%-30s %9s %12s\n", "variant", "IoU", "FPGA ms");
    bench::rule();
    for (const auto& fr : res.stage3)
        std::printf("%-30s %9.3f %12.2f\n", fr.description.c_str(), fr.val_iou,
                    fr.fpga_latency_ms);

    std::printf("\nshape checks: PSO best fitness is non-decreasing (deterministic); the\n"
                "depthwise bundle family is ~4-10x cheaper on the FPGA than the dense\n"
                "candidates at equal width (deterministic).  The sketch-accuracy side of\n"
                "Stage 1 and the Stage-3 comparison are fast-trained estimates — at\n"
                "short budgets (SKYNET_BENCH_SCALE < 1) their per-run ordering is noisy,\n"
                "exactly the estimation noise the paper's 20-epoch sketches trade\n"
                "against; run at scale >= 2 for stable Stage-3 bypass gains.\n");
    int pareto = 0;
    for (const auto& ev : res.stage1) pareto += ev.pareto ? 1 : 0;
    bench::record("flow.stage1.pareto_count", pareto, "count");
    if (!res.stage2.best_fitness_history.empty())
        bench::record("flow.stage2.best_fitness", res.stage2.best_fitness_history.back(),
                      "fitness");
    bench::record("flow.stage2.best_accuracy", best.accuracy, "acc",
                  bench::Direction::kHigherIsBetter);
    bench::record("flow.stage2.best_fpga_ms", best.fpga_latency_ms, "ms",
                  bench::Direction::kLowerIsBetter);
    for (const auto& fr : res.stage3)
        bench::record("flow.stage3." + fr.description + ".iou", fr.val_iou, "iou",
                      bench::Direction::kHigherIsBetter);
    return bench::finish(argc, argv);
}
