// Table 2: backbone comparison on the DAC-SDC task with the same detection
// back-end.
//
// Paper:  ResNet-18 11.18M -> 0.61, ResNet-34 21.28M -> 0.26,
//         ResNet-50 23.51M -> 0.32, VGG-16 14.71M -> 0.25,
//         SkyNet 0.44M -> 0.73.
//
// Every backbone gets the identical 2-anchor YOLO back-end, dataset,
// schedule and step budget; parameter counts are reported at full width
// (they must match the paper), training runs at reduced width for CPU
// speed.  The paper's qualitative point — parameter count does not predict
// task accuracy, and the compact SkyNet wins — is what this regenerates:
// the big backbones are hard to train within the budget (exactly the
// "adequate training" trap Table 2 illustrates).
#include "backbones/registry.hpp"
#include "bench/harness.hpp"
#include "data/synth_detection.hpp"
#include "skynet/skynet_model.hpp"
#include "train/trainer.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    const int train_steps = bench::steps(150);

    struct Row {
        const char* name;    // registry name or "skynet"
        double paper_m;      // parameters, millions
        double paper_iou;
        float train_width;
    };
    const Row rows[5] = {
        {"resnet18", 11.18, 0.61, 0.25f},
        {"resnet34", 21.28, 0.26, 0.25f},
        {"resnet50", 23.51, 0.32, 0.2f},
        {"vgg16", 14.71, 0.25, 0.2f},
        {"skynet", 0.44, 0.73, 0.3f},
    };

    std::printf("=== Table 2: backbones + identical detection back-end (%d steps) ===\n\n",
                train_steps);
    std::printf("%-12s %12s %12s | %9s %9s\n", "backbone", "paper #par", "ours #par",
                "paper IoU", "ours IoU");
    bench::rule();

    for (const Row& r : rows) {
        data::DetectionDataset ds({48, 96, 2, true, 7});
        train::DetectTrainConfig cfg;
        cfg.steps = train_steps;
        cfg.batch = 8;
        cfg.val_images = 96;
        Rng train_rng(9);

        double ours_m = 0.0;
        double iou = 0.0;
        if (std::string(r.name) == "skynet") {
            Rng size_rng(1);
            ours_m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f}, size_rng)
                         .param_count() /
                     1e6;
            Rng rng(42);
            SkyNetModel model =
                build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, r.train_width}, rng);
            iou = train::train_detector(*model.net, model.head, ds, cfg, train_rng).val_iou;
        } else {
            Rng size_rng(1);
            ours_m = backbones::build_by_name(r.name, 1.0f, size_rng).param_count() / 1e6;
            Rng rng(42);
            backbones::Backbone bb = backbones::build_by_name(r.name, r.train_width, rng);
            nn::ModulePtr det = backbones::make_detector(std::move(bb), 2, rng);
            const detect::YoloHead head;
            iou = train::train_detector(*det, head, ds, cfg, train_rng).val_iou;
        }
        std::printf("%-12s %11.2fM %11.2fM | %9.2f %9.3f\n", r.name, r.paper_m, ours_m,
                    r.paper_iou, iou);
        bench::record(std::string("table2.") + r.name + ".params_m", ours_m, "Mparams",
                      bench::Direction::kLowerIsBetter);
        bench::record(std::string("table2.") + r.name + ".iou", iou, "iou",
                      bench::Direction::kHigherIsBetter);
    }
    std::printf("\nshape check: SkyNet reaches the best IoU with 25-50x fewer parameters;\n"
                "bigger backbones do not imply better task accuracy.\n");
    return bench::finish(argc, argv);
}
