// Shared helpers for the table/figure benches: an environment-controlled
// step budget (SKYNET_BENCH_SCALE multiplies every training budget, default
// 1.0) and small printing utilities.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sky::bench {

/// Scaled training budget: `base` steps times the SKYNET_BENCH_SCALE env
/// var (e.g. 0.1 for a smoke run, 4 for a long run).
inline int steps(int base) {
    if (const char* env = std::getenv("SKYNET_BENCH_SCALE")) {
        const double scale = std::atof(env);
        if (scale > 0.0) return static_cast<int>(base * scale) + 1;
    }
    return base;
}

inline void rule(char c = '-', int n = 72) {
    for (int i = 0; i < n; ++i) std::putchar(c);
    std::putchar('\n');
}

}  // namespace sky::bench
