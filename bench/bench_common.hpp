// Shared helpers for the table/figure benches: an environment-controlled
// step budget (SKYNET_BENCH_SCALE multiplies every training budget, default
// 1.0), small printing utilities, and a shared obs::Registry through which
// every bench records its headline numbers — `--json <path>` on any bench
// binary dumps that registry as one uniform metrics document.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/registry.hpp"

namespace sky::bench {

/// Scaled training budget: `base` steps times the SKYNET_BENCH_SCALE env
/// var (e.g. 0.1 for a smoke run, 4 for a long run).
inline int steps(int base) {
    if (const char* env = std::getenv("SKYNET_BENCH_SCALE")) {
        const double scale = std::atof(env);
        if (scale > 0.0) return static_cast<int>(base * scale) + 1;
    }
    return base;
}

inline void rule(char c = '-', int n = 72) {
    for (int i = 0; i < n; ++i) std::putchar(c);
    std::putchar('\n');
}

/// Registry shared by this bench binary's recorded results.
inline obs::Registry& metrics() {
    static obs::Registry registry;
    return registry;
}

/// Record one headline result (a gauge) into the bench registry.
inline void record(const std::string& name, double value) { metrics().set(name, value); }

/// Call as the bench's return statement: honours `--json <path>` by dumping
/// the metrics registry, and returns the process exit code.
inline int finish(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            if (!metrics().save_json(argv[i + 1])) {
                std::fprintf(stderr, "failed to write metrics to %s\n", argv[i + 1]);
                return 1;
            }
            std::printf("wrote metrics to %s\n", argv[i + 1]);
        }
    }
    return 0;
}

}  // namespace sky::bench
