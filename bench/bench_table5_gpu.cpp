// Table 5: DAC-SDC GPU-track final results (TX2, hidden test set).
//
// Paper rows (IoU / FPS / W / score): SkyNet 0.731/67.33/13.50/1.504,
// Thinker 0.713/28.79/8.55/1.442, DeepZS 0.723/26.37/15.12/1.422,
// ICT-CAS 0.698/24.55/12.58/1.373, DeepZ 0.691/25.30/13.27/1.359,
// SDU-Legend 0.685/23.64/10.31/1.358.
//
// We rebuild each entry's reference architecture (Table 1), estimate FPS
// and power on the calibrated TX2 model (with each team's published
// optimisations: fp16/TensorRT, batching, system pipelining), and rescore
// the whole track with Eq. 2-5.  Hidden-set IoU values are quoted from the
// paper (competitors' trained weights are unobtainable); the regenerated
// columns are FPS, power, energy score and total score.
#include "backbones/registry.hpp"
#include "bench/harness.hpp"
#include "nn/pwconv.hpp"
#include "dacsdc/scoring.hpp"
#include "hwsim/energy.hpp"
#include "hwsim/gpu_model.hpp"
#include "hwsim/pipeline.hpp"
#include "skynet/skynet_model.hpp"

int main(int argc, char** argv) {
    using namespace sky;
    hwsim::GpuModel tx2(hwsim::tx2());
    const Shape in{1, 3, 160, 320};

    struct EntrySpec {
        const char* team;
        const char* backbone;  // registry name or "skynet"
        const char* head;      // "yolo" (1x1) or "retina" (conv tower)
        float width;  // < 1.0 models the entry's published pruning/resizing
        bool fp16;
        int batch;
        bool pipelined;  // overlapped system stages (Fig. 10)
        double paper_iou, paper_fps, paper_w, paper_score;
    };
    const EntrySpec specs[6] = {
        {"SkyNet (ours)", "skynet", "yolo", 1.0f, false, 4, true,
         0.731, 67.33, 13.50, 1.504},
        {"Thinker", "shufflenet", "retina", 0.8f, true, 2, true,
         0.713, 28.79, 8.55, 1.442},
        {"DeepZS", "tinyyolo", "yolo", 0.7f, false, 2, true,
         0.723, 26.37, 15.12, 1.422},
        {"ICT-CAS", "tinyyolo", "yolo", 0.7f, true, 1, false,
         0.698, 24.55, 12.58, 1.373},
        {"DeepZ", "tinyyolo", "yolo", 0.7f, false, 2, false,
         0.691, 25.30, 13.27, 1.359},
        {"SDU-Legend", "tinyyolo", "yolo", 0.9f, false, 1, false,
         0.685, 23.64, 10.31, 1.358},
    };

    std::vector<dacsdc::Entry> entries;
    std::printf("=== Table 5: DAC-SDC GPU track on the TX2 model ===\n\n");
    std::printf("%-14s | %6s %6s %6s | %7s %7s | %6s %6s\n", "team", "GMACs", "inf ms",
                "spdup", "ppr FPS", "our FPS", "ppr W", "our W");
    bench::rule(' ', 0);
    bench::rule();
    for (const EntrySpec& s : specs) {
        Rng rng(1);
        nn::ModulePtr net;
        if (std::string(s.backbone) == "skynet") {
            net = std::move(
                build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, s.width}, rng).net);
        } else {
            backbones::Backbone bb = backbones::build_by_name(s.backbone, s.width, rng);
            if (std::string(s.head) == "retina") {
                // RetinaNet-style head: a 4-deep 3x3 conv tower at 256
                // channels before the box predictor — this is most of
                // Thinker's compute.
                auto seq = std::make_unique<nn::Sequential>();
                const int feat = bb.out_channels;
                seq->add(std::move(bb.net));
                backbones::conv_bn_act(*seq, feat, 256, 3, 1, 1, nn::Act::kReLU, rng);
                for (int t = 0; t < 3; ++t)
                    backbones::conv_bn_act(*seq, 256, 256, 3, 1, 1, nn::Act::kReLU, rng);
                seq->emplace<nn::PWConv1>(256, 10, /*bias=*/true, rng);
                net = std::move(seq);
            } else {
                net = backbones::make_detector(std::move(bb), 2, rng);
            }
        }
        const hwsim::GpuEstimate est = tx2.estimate(*net, in, {s.batch, s.fp16});
        // Serial-stage costs profiled per batch (L4T profiler in the paper);
        // the CPU-side stages parallelise over the TX2's four big cores once
        // the pipeline is multithreaded.
        std::vector<hwsim::PipelineStage> stages = {
            {"fetch", 9.0 * s.batch},
            {"pre-process", 11.5 * s.batch},
            {"inference", est.latency_ms},
            {"post-process", 8.5 * s.batch}};
        double fps, speedup;
        if (s.pipelined) {
            double serial = 0.0;
            for (const auto& st : stages) serial += st.latency_ms;
            stages = hwsim::merge_stages(stages, 0, 2);
            stages[0].latency_ms /= 4.0;  // multithreaded fetch+pre-process
            stages[2].latency_ms /= 4.0;  // multithreaded post-process
            const hwsim::PipelineReport rep = hwsim::simulate_pipeline(stages, s.batch, 400);
            fps = rep.pipelined_fps;
            speedup = serial / rep.pipelined_ms_per_batch;
        } else {
            double total = 0.0;
            for (const auto& st : stages) total += st.latency_ms;
            fps = 1e3 * s.batch / total;
            speedup = 1.0;
        }
        const hwsim::EnergyEstimate en =
            hwsim::estimate_energy(tx2.profile(), est.utilization, fps);
        entries.push_back({s.team, s.paper_iou, fps, en.power_w});
        std::printf("%-14s | %6.2f %6.1f %6.2f | %7.2f %7.1f | %6.2f %6.2f\n", s.team,
                    net->macs(in) / 1e9, est.latency_ms, speedup, s.paper_fps, fps,
                    s.paper_w, en.power_w);
    }

    std::printf("\n--- regenerated leaderboard (Eq. 2-5, x = 10, 50k images) ---\n");
    std::printf("%-14s %6s %8s %7s %7s %8s | %11s\n", "team", "IoU", "FPS", "W", "ES",
                "total", "paper total");
    bench::rule();
    const auto scored = dacsdc::score_track(entries, {10.0, 50000});
    for (const auto& sc : scored) {
        double paper_total = 0.0;
        for (const EntrySpec& s : specs)
            if (sc.entry.team == s.team) paper_total = s.paper_score;
        std::printf("%-14s %6.3f %8.2f %7.2f %7.3f %8.3f | %11.3f\n",
                    sc.entry.team.c_str(), sc.entry.iou, sc.entry.fps, sc.entry.power_w,
                    sc.energy_score, sc.total_score, paper_total);
        bench::record("table5." + sc.entry.team + ".fps", sc.entry.fps, "fps");
        bench::record("table5." + sc.entry.team + ".total_score", sc.total_score, "score",
                      bench::Direction::kHigherIsBetter);
    }
    std::printf("\nshape check: SkyNet has the highest FPS (its bundle does ~10x less\n"
                "work) and the best total score; the 2019 pipelined entries beat 2018.\n");
    return bench::finish(argc, argv);
}
