// Extension features: multi-target scenes + NMS decode, tracking success
// curves, and the FPGA design-space exploration API.
#include <gtest/gtest.h>

#include "data/synth_detection.hpp"
#include "hwsim/fpga_model.hpp"
#include "skynet/skynet_model.hpp"
#include "tracking/metrics.hpp"

namespace sky {
namespace {

TEST(MultiTarget, SampleMultiProducesSeparatedTargets) {
    data::DetectionDataset ds({64, 128, 0, false, 3});
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const data::MultiSample s = ds.sample_multi(rng, 4);
        ASSERT_GE(s.boxes.size(), 1u);
        ASSERT_LE(s.boxes.size(), 4u);
        for (std::size_t i = 0; i < s.boxes.size(); ++i)
            for (std::size_t j = i + 1; j < s.boxes.size(); ++j)
                EXPECT_LE(detect::iou(s.boxes[i], s.boxes[j]), 0.02f);
    }
}

TEST(MultiTarget, BoxesInsideImage) {
    data::DetectionDataset ds({48, 96, 0, false, 5});
    Rng rng(2);
    const data::MultiSample s = ds.sample_multi(rng, 3);
    for (const auto& b : s.boxes) {
        EXPECT_GE(b.x1(), -1e-4f);
        EXPECT_LE(b.x2(), 1.0f + 1e-4f);
    }
    EXPECT_GE(s.image.min(), 0.0f);
    EXPECT_LE(s.image.max(), 1.0f);
}

TEST(SuccessCurve, MonotoneAndAucMatchesAo) {
    const std::vector<float> ious = {0.9f, 0.7f, 0.5f, 0.3f, 0.85f, 0.1f};
    const tracking::SuccessCurve c = tracking::success_curve(ious, 41);
    // SR is non-increasing in the threshold.
    for (std::size_t i = 1; i < c.success.size(); ++i)
        EXPECT_LE(c.success[i], c.success[i - 1]);
    // AUC approximates AO (mean IoU) for fine grids.
    const tracking::TrackingMetrics m = tracking::summarize(ious);
    EXPECT_NEAR(c.auc, m.ao, 0.05);
    // Endpoints: everything beats threshold 0 (IoUs here are all > 0).
    EXPECT_NEAR(c.success.front(), 1.0, 1e-9);
}

TEST(SuccessCurve, EmptyInput) {
    const tracking::SuccessCurve c = tracking::success_curve({}, 11);
    EXPECT_EQ(c.success.size(), 11u);
    EXPECT_DOUBLE_EQ(c.auc, 0.0);
}

TEST(DesignSpace, LatencyFallsResourcesRiseWithParallelism) {
    hwsim::FpgaModel u96(hwsim::ultra96());
    Rng rng(3);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f}, rng);
    const auto points = u96.design_space(*m.net, {1, 3, 160, 320}, {11, 9, false, 1, 1.0});
    ASSERT_GE(points.size(), 8u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LE(points[i].latency_ms, points[i - 1].latency_ms + 1e-9);
        EXPECT_GE(points[i].resources.dsp, points[i - 1].resources.dsp);
        EXPECT_GE(points[i].parallelism, 2 * points[i - 1].parallelism);
    }
    // The frontier contains infeasible points at the top end.
    EXPECT_FALSE(points.back().resources.fits);
    EXPECT_TRUE(points.front().resources.fits);
}

TEST(DesignSpace, ChosenPointIsLargestFeasible) {
    hwsim::FpgaModel u96(hwsim::ultra96());
    Rng rng(4);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.5f}, rng);
    const hwsim::FpgaBuildConfig cfg{11, 9, false, 1, 1.0};
    const auto points = u96.design_space(*m.net, {1, 3, 80, 160}, cfg);
    const auto chosen = u96.estimate(*m.net, {1, 3, 80, 160}, cfg);
    int best_feasible = 0;
    for (const auto& p : points)
        if (p.resources.fits) best_feasible = p.parallelism;
    EXPECT_EQ(chosen.parallelism, best_feasible);
}

}  // namespace
}  // namespace sky
