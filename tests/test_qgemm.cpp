// Packed u8 x s8 GEMM engine (core/qgemm.hpp) and the int8 execution plan of
// quant::QEngine: kernel parity against an int64 reference, requantization
// edge cases, bitwise invariance to thread count and SIMD level, and the
// auto-vs-reference oracle on whole networks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <vector>

#include "core/qgemm.hpp"
#include "core/simd.hpp"
#include "core/thread_pool.hpp"
#include "deploy/fold_bn.hpp"
#include "detect/bbox.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/graph.hpp"
#include "nn/pooling.hpp"
#include "nn/shuffle.hpp"
#include "quant/qengine.hpp"
#include "skynet/detector.hpp"
#include "skynet/skynet_model.hpp"

namespace sky {
namespace {

struct SimdGuard {
    core::SimdLevel saved = core::active_simd_level();
    ~SimdGuard() { core::set_simd_level(saved); }
};

struct ThreadGuard {
    ~ThreadGuard() { core::ThreadPool::set_global_threads(0); }
};

std::vector<core::SimdLevel> available_levels() {
    std::vector<core::SimdLevel> out{core::SimdLevel::kScalar,
                                     core::SimdLevel::kGeneric};
    if (core::best_simd_level() == core::SimdLevel::kAvx2)
        out.push_back(core::SimdLevel::kAvx2);
    return out;
}

/// Deterministic "random" s8 / u8 operands (no libc rand in tests).
std::vector<std::int8_t> make_a(int M, int K, std::uint32_t seed) {
    std::vector<std::int8_t> a(static_cast<std::size_t>(M) * K);
    std::uint32_t s = seed * 2654435761u + 1u;
    for (auto& v : a) {
        s = s * 1664525u + 1013904223u;
        v = static_cast<std::int8_t>(s >> 24);  // full [-128, 127]
    }
    return a;
}

std::vector<std::uint8_t> make_b(int K, int N, std::uint32_t seed) {
    std::vector<std::uint8_t> b(static_cast<std::size_t>(K) * N);
    std::uint32_t s = seed * 2246822519u + 3u;
    for (auto& v : b) {
        s = s * 1664525u + 1013904223u;
        v = static_cast<std::uint8_t>(s >> 24);  // full [0, 255]
    }
    return b;
}

/// int64 reference product, C = A * B.
std::vector<std::int64_t> ref_gemm(int M, int K, int N,
                                   const std::vector<std::int8_t>& a,
                                   const std::vector<std::uint8_t>& b) {
    std::vector<std::int64_t> c(static_cast<std::size_t>(M) * N, 0);
    for (int m = 0; m < M; ++m)
        for (int k = 0; k < K; ++k)
            for (int n = 0; n < N; ++n)
                c[static_cast<std::size_t>(m) * N + n] +=
                    static_cast<std::int64_t>(a[static_cast<std::size_t>(m) * K + k]) *
                    b[static_cast<std::size_t>(k) * N + n];
    return c;
}

std::vector<std::int32_t> packed_gemm(int M, int K, int N,
                                      const std::vector<std::int8_t>& a,
                                      const std::vector<std::uint8_t>& b) {
    core::QPackedA pa;
    core::QPackedB pb;
    core::qpack_a(M, K, a.data(), pa);
    core::qpack_b(K, N, b.data(), pb);
    std::vector<std::int32_t> c(static_cast<std::size_t>(M) * N, 0);
    core::qgemm_packed(pa, pb, c.data());
    return c;
}

// ------------------------------------------------------------ micro-kernel --

TEST(QGemm, PackedParityVsInt64Reference) {
    // Odd/even K, sub-tile and multi-tile M/N, including exact tile multiples.
    const int mr = core::qgemm_mr(), nr = core::qgemm_nr();
    const int shapes[][3] = {{1, 1, 1},        {3, 5, 7},   {mr, 2, nr},
                             {2 * mr, 8, 3 * nr}, {13, 33, 29}, {17, 64, 40}};
    for (const auto& s : shapes) {
        const int M = s[0], K = s[1], N = s[2];
        const auto a = make_a(M, K, static_cast<std::uint32_t>(M * 131 + K));
        const auto b = make_b(K, N, static_cast<std::uint32_t>(N * 17 + K));
        const auto ref = ref_gemm(M, K, N, a, b);
        const auto got = packed_gemm(M, K, N, a, b);
        for (std::size_t i = 0; i < ref.size(); ++i) {
            ASSERT_GE(ref[i], std::numeric_limits<std::int32_t>::min());
            ASSERT_LE(ref[i], std::numeric_limits<std::int32_t>::max());
            ASSERT_EQ(got[i], static_cast<std::int32_t>(ref[i]))
                << M << "x" << K << "x" << N << " @" << i << " ("
                << core::qgemm_kernel_name() << ")";
        }
    }
}

TEST(QGemm, AccumulatesIntoC) {
    const auto a = make_a(4, 6, 1);
    const auto b = make_b(6, 9, 2);
    core::QPackedA pa;
    core::QPackedB pb;
    core::qpack_a(4, 6, a.data(), pa);
    core::qpack_b(6, 9, b.data(), pb);
    std::vector<std::int32_t> c(36, 100);  // += semantics over a warm C
    core::qgemm_packed(pa, pb, c.data());
    const auto ref = ref_gemm(4, 6, 9, a, b);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(c[i], static_cast<std::int32_t>(ref[i]) + 100);
}

TEST(QGemm, RowsumRecordsRealTaps) {
    const int M = 5, K = 7;  // odd K: the phantom tap must not leak in
    const auto a = make_a(M, K, 9);
    core::QPackedA pa;
    core::qpack_a(M, K, a.data(), pa);
    ASSERT_EQ(pa.rowsum.size(), static_cast<std::size_t>(M));
    for (int m = 0; m < M; ++m) {
        std::int32_t want = 0;
        for (int k = 0; k < K; ++k) want += a[static_cast<std::size_t>(m) * K + k];
        EXPECT_EQ(pa.rowsum[static_cast<std::size_t>(m)], want) << m;
    }
}

TEST(QGemm, BitwiseInvariantAcrossSimdLevels) {
    SimdGuard guard;
    const int M = 19, K = 31, N = 37;
    const auto a = make_a(M, K, 5);
    const auto b = make_b(K, N, 6);
    std::vector<std::int32_t> baseline;
    for (core::SimdLevel lvl : available_levels()) {
        ASSERT_EQ(core::set_simd_level(lvl), lvl);
        const auto c = packed_gemm(M, K, N, a, b);  // re-packs per geometry
        if (baseline.empty())
            baseline = c;
        else
            EXPECT_EQ(c, baseline) << core::simd_level_name(lvl);
    }
}

TEST(QGemm, BitwiseInvariantAcrossThreadCounts) {
    ThreadGuard guard;
    const int M = 33, K = 21, N = 65;
    const auto a = make_a(M, K, 7);
    const auto b = make_b(K, N, 8);
    std::vector<std::int32_t> baseline;
    for (int threads : {1, 2, 4}) {
        core::ThreadPool::set_global_threads(threads);
        const auto c = packed_gemm(M, K, N, a, b);
        if (baseline.empty())
            baseline = c;
        else
            EXPECT_EQ(c, baseline) << threads << " threads";
    }
}

TEST(QGemm, Im2colPackedMatchesManualLowering) {
    // 2-channel 5x4 image, 3x3 kernel, stride 1, pad 1, zero-point -3.
    const int C = 2, H = 5, W = 4, k = 3, stride = 1, pad = 1;
    const int OH = 5, OW = 4, K = C * k * k;
    std::vector<std::int32_t> img(static_cast<std::size_t>(C) * H * W);
    for (std::size_t i = 0; i < img.size(); ++i)
        img[i] = static_cast<std::int32_t>(i * 7 % 250) - 3;  // in [lo, lo+255]
    const std::int32_t lo = -3;
    // Manual im2col to row-major u8, then qpack_b.
    std::vector<std::uint8_t> cols(static_cast<std::size_t>(K) * OH * OW, 0);
    for (int c = 0; c < C; ++c)
        for (int kh = 0; kh < k; ++kh)
            for (int kw = 0; kw < k; ++kw) {
                const int row = (c * k + kh) * k + kw;
                for (int oh = 0; oh < OH; ++oh)
                    for (int ow = 0; ow < OW; ++ow) {
                        const int ih = oh * stride - pad + kh;
                        const int iw = ow * stride - pad + kw;
                        const std::int32_t x =
                            (ih < 0 || ih >= H || iw < 0 || iw >= W)
                                ? 0
                                : img[static_cast<std::size_t>(c * H + ih) * W + iw];
                        cols[static_cast<std::size_t>(row) * OH * OW + oh * OW + ow] =
                            static_cast<std::uint8_t>(x - lo);
                    }
            }
    core::QPackedB want, got;
    core::qpack_b(K, OH * OW, cols.data(), want);
    core::qim2col_packed(img.data(), C, H, W, k, stride, pad, OH, OW, lo, got);
    EXPECT_EQ(got.K, want.K);
    EXPECT_EQ(got.N, want.N);
    EXPECT_EQ(got.data, want.data);
}

TEST(QGemm, RejectsMismatchedAndOversizedOperands) {
    const auto a = make_a(2, 4, 1);
    const auto b = make_b(6, 3, 2);
    core::QPackedA pa;
    core::QPackedB pb;
    core::qpack_a(2, 4, a.data(), pa);
    core::qpack_b(6, 3, b.data(), pb);
    std::vector<std::int32_t> c(6, 0);
    EXPECT_THROW(core::qgemm_packed(pa, pb, c.data()), std::invalid_argument);
    core::QPackedA stale = pa;
    stale.mr = pa.mr + 1;  // packed for a different kernel geometry
    core::QPackedB pb4;
    core::qpack_b(4, 3, b.data(), pb4);
    EXPECT_THROW(core::qgemm_packed(stale, pb4, c.data()), std::logic_error);
    EXPECT_GT(core::qgemm_max_k(), 0);
}

// ----------------------------------------------- requantization primitives --

TEST(Requantize, RoundShiftTiesAwayFromZero) {
    using quant::round_shift;
    EXPECT_EQ(round_shift(5, 1), 3);    // 2.5 -> 3
    EXPECT_EQ(round_shift(-5, 1), -3);  // -2.5 -> -3
    EXPECT_EQ(round_shift(4, 1), 2);
    EXPECT_EQ(round_shift(-4, 1), -2);
    EXPECT_EQ(round_shift(3, 2), 1);   // 0.75 -> 1
    EXPECT_EQ(round_shift(-3, 2), -1);
    EXPECT_EQ(round_shift(1, 2), 0);   // 0.25 -> 0
    EXPECT_EQ(round_shift(7, 0), 7);   // no-op
    EXPECT_EQ(round_shift(7, -2), 28);  // negative shift is exact scaling
}

TEST(Requantize, SaturateClampsToWordWidth) {
    using quant::saturate;
    EXPECT_EQ(saturate(130, 8), 127);
    EXPECT_EQ(saturate(-129, 8), -128);
    EXPECT_EQ(saturate(-128, 8), -128);
    EXPECT_EQ(saturate(std::numeric_limits<std::int64_t>::max(), 32),
              std::numeric_limits<std::int32_t>::max());
    EXPECT_EQ(saturate(std::numeric_limits<std::int64_t>::min(), 32),
              std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(saturate(1, 2), 1);
    EXPECT_EQ(saturate(2, 2), 1);
    EXPECT_EQ(saturate(-3, 2), -2);
}

// ------------------------------------------------------ engine-level oracle --

quant::QuantConfig scheme(int fm, int w, quant::QExecution e) {
    return quant::QuantConfig{}.with_bits(fm, w).with_fm_abs_max(8.0f).with_execution(
        e);
}

SkyNetModel folded_model(SkyNetVariant v, std::uint64_t seed) {
    Rng rng(seed);
    SkyNetModel m = build_skynet({v, nn::Act::kReLU6, 2, 0.2f}, rng);
    m.net->set_training(true);
    Rng wr(77);
    for (int i = 0; i < 3; ++i) {
        Tensor x({2, 3, 32, 64});
        x.rand_uniform(wr, 0.0f, 1.0f);
        (void)m.net->forward(x);
    }
    m.net->set_training(false);
    deploy::fold_graph_bn(*m.net);
    return m;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const char* what) {
    ASSERT_EQ(a.shape(), b.shape());
    for (std::int64_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << " @" << i;
}

TEST(QEngineOracle, AutoIsBitTrueToReferenceOnSkyNet) {
    for (SkyNetVariant v : {SkyNetVariant::kA, SkyNetVariant::kC}) {
        SkyNetModel m = folded_model(v, 21);
        quant::QEngine fast(*m.net, scheme(9, 11, quant::QExecution::kAuto));
        quant::QEngine oracle(*m.net, scheme(9, 11, quant::QExecution::kReference));
        ASSERT_GT(fast.report().qgemm_layers, 0) << "plan never took the int8 path";
        EXPECT_EQ(oracle.report().qgemm_layers, 0);
        Tensor x({2, 3, 32, 64});
        Rng xr(22);
        x.rand_uniform(xr, 0.0f, 1.0f);
        expect_bitwise_equal(fast.run(x), oracle.run(x), "skynet auto-vs-ref");
    }
}

TEST(QEngineOracle, NarrowAndWideWeightFormatsStayExact) {
    SkyNetModel m = folded_model(SkyNetVariant::kA, 31);
    for (int wbits : {6, 8, 11, 15}) {
        quant::QEngine fast(*m.net,
                            scheme(9, wbits, quant::QExecution::kAuto));
        quant::QEngine oracle(*m.net,
                              scheme(9, wbits, quant::QExecution::kReference));
        Tensor x({1, 3, 32, 64});
        Rng xr(static_cast<std::uint64_t>(wbits));
        x.rand_uniform(xr, 0.0f, 1.0f);
        expect_bitwise_equal(fast.run(x), oracle.run(x), "wide weights");
    }
}

TEST(QEngineOracle, CustomGraphWithAddRunsBitTrue) {
    // conv(pad) -> relu feeds both an add and the output: exercises the
    // negative zero-point (inputs span [-1, 1]), the consumer-count guard on
    // activation fusion, and the full-range conv after an add.
    Rng rng(3);
    nn::Graph g;
    const int c1 = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, true, rng), 0);
    const int r1 = g.add(std::make_unique<nn::Activation>(nn::Act::kReLU), c1);
    const int c2 = g.add(std::make_unique<nn::Conv2d>(8, 8, 3, 1, 1, false, rng), r1);
    const int a = g.add_add(r1, c2);
    const int c3 = g.add(std::make_unique<nn::Conv2d>(8, 4, 1, 1, 0, true, rng), a);
    g.set_output(c3);
    const quant::QuantConfig base =
        quant::QuantConfig{}.with_bits(9, 11).with_fm_abs_max(8.0f).with_input_range(
            -1.0f, 1.0f);
    quant::QEngine fast(g, base.with_execution(quant::QExecution::kAuto));
    quant::QEngine oracle(g, base.with_execution(quant::QExecution::kReference));
    EXPECT_GT(fast.report().qgemm_layers, 0);
    EXPECT_GT(fast.report().ref_layers, 0);  // conv after add: span too wide
    Tensor x({2, 3, 16, 16});
    Rng xr(4);
    x.rand_uniform(xr, -1.0f, 1.0f);
    expect_bitwise_equal(fast.run(x), oracle.run(x), "custom graph");
}

TEST(QEngineOracle, OutOfDeclaredRangeInputFallsBackBitTrue) {
    SkyNetModel m = folded_model(SkyNetVariant::kA, 41);
    quant::QEngine fast(*m.net, scheme(9, 11, quant::QExecution::kAuto));
    quant::QEngine oracle(*m.net, scheme(9, 11, quant::QExecution::kReference));
    Tensor x({1, 3, 32, 64});
    Rng xr(42);
    x.rand_uniform(xr, -2.0f, 2.0f);  // declared range is [0, 1]
    expect_bitwise_equal(fast.run(x), oracle.run(x), "out-of-range fallback");
}

TEST(QEngineOracle, EngineIsBitwiseInvariantToThreadsAndSimd) {
    SimdGuard sguard;
    ThreadGuard tguard;
    SkyNetModel m = folded_model(SkyNetVariant::kC, 51);
    Tensor x({2, 3, 32, 64});
    Rng xr(52);
    x.rand_uniform(xr, 0.0f, 1.0f);
    Tensor baseline;
    bool have_baseline = false;
    for (core::SimdLevel lvl : available_levels()) {
        ASSERT_EQ(core::set_simd_level(lvl), lvl);
        // Engine weights prepack against the level active at construction.
        quant::QEngine engine(*m.net, scheme(9, 11, quant::QExecution::kAuto));
        for (int threads : {1, 2, 4}) {
            core::ThreadPool::set_global_threads(threads);
            Tensor y = engine.run(x);
            if (!have_baseline) {
                baseline = y;
                have_baseline = true;
            } else {
                expect_bitwise_equal(y, baseline, core::simd_level_name(lvl));
            }
        }
    }
}

TEST(QEngine, StrictInt8ThrowsWhereThePlanCannotHold) {
    SkyNetModel m = folded_model(SkyNetVariant::kA, 61);
    // 16-bit weights exceed the s16 operand bound: strict mode must refuse.
    EXPECT_THROW(
        quant::QEngine(*m.net, scheme(9, 16, quant::QExecution::kInt8)),
        std::invalid_argument);
    // A compilable strict engine still rejects out-of-range inputs at run().
    quant::QEngine strict(*m.net, scheme(9, 11, quant::QExecution::kInt8));
    Tensor bad({1, 3, 32, 64});
    bad.fill(-2.0f);
    EXPECT_THROW((void)strict.run(bad), std::invalid_argument);
    Tensor ok({1, 3, 32, 64});
    ok.fill(0.5f);
    EXPECT_GT(strict.run(ok).size(), 0);
}

TEST(QEngine, Fp32FallbackRunsUnsupportedLayers) {
    Rng rng(5);
    nn::Graph g;
    const int c1 = g.add(std::make_unique<nn::Conv2d>(3, 8, 1, 1, 0, true, rng), 0);
    const int sh = g.add(std::make_unique<nn::ChannelShuffle>(2), c1);
    const int c2 = g.add(std::make_unique<nn::Conv2d>(8, 4, 1, 1, 0, true, rng), sh);
    g.set_output(c2);
    EXPECT_THROW(
        quant::QEngine(g, quant::QuantConfig{}.with_bits(9, 11)),
        std::invalid_argument);
    quant::QEngine engine(
        g, quant::QuantConfig{}.with_bits(9, 11).with_fp32_fallback());
    EXPECT_EQ(engine.report().fp32_layers, 1);
    Tensor x({1, 3, 8, 8});
    Rng xr(6);
    x.rand_uniform(xr, 0.0f, 1.0f);
    const Tensor y = engine.run(x);
    EXPECT_EQ(y.shape().c, 4);
    // Outputs still live on the FM grid (the island requantizes on exit).
    const double step = engine.fm_format().step();
    for (std::int64_t i = 0; i < y.size(); ++i) {
        const double ratio = y[i] / step;
        EXPECT_NEAR(ratio, std::nearbyint(ratio), 1e-3);
    }
}

TEST(QEngine, EnvVarPinsReferenceExecution) {
    ASSERT_EQ(setenv("SKYNET_QENGINE", "ref", 1), 0);
    SkyNetModel m = folded_model(SkyNetVariant::kA, 71);
    quant::QEngine engine(*m.net, scheme(9, 11, quant::QExecution::kAuto));
    unsetenv("SKYNET_QENGINE");
    EXPECT_EQ(engine.execution(), quant::QExecution::kReference);
    EXPECT_EQ(engine.report().qgemm_layers, 0);
}

// ------------------------------------------------------------ detector path --

TEST(Detector, Int8DetectionsStayInTheFp32IoUEnvelope) {
    Rng rng(81);
    Detector fp32({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.2f}, rng);
    Rng rng2(81);
    Detector int8({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.2f}, rng2);
    const quant::QuantReport rep =
        int8.quantize(quant::QuantConfig{}.with_bits(9, 11).with_fm_abs_max(8.0f));
    EXPECT_GT(rep.qgemm_layers, 0);
    EXPECT_EQ(int8.precision(), Precision::kInt8);
    EXPECT_EQ(fp32.precision(), Precision::kFp32);
    // Identical seeds -> identical weights: the quantized detector's raw map
    // must track the float one within a few FM steps, like the QEngine-level
    // scheme-1 bound but measured through the public Detector path.
    Tensor x({4, 3, 32, 64});
    Rng xr(82);
    x.rand_uniform(xr, 0.0f, 1.0f);
    const Tensor mf = fp32.forward(x);
    const Tensor mq = int8.forward(x);
    ASSERT_EQ(mf.shape(), mq.shape());
    double mean_err = 0.0;
    for (std::int64_t i = 0; i < mf.size(); ++i)
        mean_err += std::abs(static_cast<double>(mf[i]) - mq[i]);
    mean_err /= static_cast<double>(mf.size());
    EXPECT_LT(mean_err, 6.0 * rep.fm_format.step());
    // And the decoded boxes overlap: mean IoU across the batch stays high.
    const auto bf = fp32.detect_batch(x);
    const auto bq = int8.detect_batch(x);
    ASSERT_EQ(bf.size(), bq.size());
    double mean_iou = 0.0;
    for (std::size_t i = 0; i < bf.size(); ++i) mean_iou += detect::iou(bf[i], bq[i]);
    mean_iou /= static_cast<double>(bf.size());
    EXPECT_GT(mean_iou, 0.5) << "int8 boxes drifted out of the fp32 envelope";
}

TEST(Detector, QuantizedDetectIsThreadCountInvariant) {
    ThreadGuard guard;
    Rng rng(91);
    Detector det({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.2f}, rng);
    (void)det.quantize(quant::QuantConfig{}.with_bits(9, 11));
    Tensor x({2, 3, 32, 64});
    Rng xr(92);
    x.rand_uniform(xr, 0.0f, 1.0f);
    Tensor baseline;
    bool have = false;
    for (int threads : {1, 2, 4}) {
        core::ThreadPool::set_global_threads(threads);
        Tensor y = det.forward(x);
        if (!have) {
            baseline = y;
            have = true;
        } else {
            expect_bitwise_equal(y, baseline, "detector thread invariance");
        }
    }
}

TEST(Detector, PositionalConfigBracesStillCompile) {
    // QuantConfig's leading fields keep the old QEngineConfig order, so the
    // legacy positional `{9, 11, 8.0f}` spelling aggregate-initialises it.
    Rng rng(101);
    Detector det({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.15f}, rng);
    const quant::QuantReport rep = det.quantize({9, 11, 8.0f});
    EXPECT_EQ(rep.config.fm_bits, 9);
    EXPECT_EQ(rep.config.weight_bits, 11);
    EXPECT_EQ(det.stage(), DetectorStage::kQuantized);
}

}  // namespace
}  // namespace sky
