// Topology export: structural JSON must reflect the network faithfully
// (node counts, edges, kinds) and be syntactically sane.
#include <gtest/gtest.h>

#include "io/export_graph.hpp"
#include "skynet/skynet_model.hpp"

namespace sky::io {
namespace {

int count_occurrences(const std::string& hay, const std::string& needle) {
    int n = 0;
    std::size_t pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

TEST(ExportGraph, LayersJsonListsEveryLeaf) {
    Rng rng(1);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.2f}, rng);
    std::vector<nn::LayerInfo> layers;
    m.net->enumerate({1, 3, 32, 64}, layers);
    const std::string json = export_layers_json(*m.net, {1, 3, 32, 64});
    EXPECT_EQ(count_occurrences(json, "\"name\""), static_cast<int>(layers.size()));
    EXPECT_NE(json.find("\"kind\": \"dwconv\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"reorder\""), std::string::npos);
}

TEST(ExportGraph, GraphJsonHasNodesAndEdges) {
    Rng rng(2);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.2f}, rng);
    const std::string json = export_graph_json(*m.net, {1, 3, 32, 64});
    EXPECT_EQ(count_occurrences(json, "\"id\""),
              static_cast<int>(m.net->node_count()));
    EXPECT_EQ(count_occurrences(json, "\"kind\": \"concat\""), 1);  // the bypass join
    EXPECT_NE(json.find("\"output_node\""), std::string::npos);
    // Balanced braces (cheap well-formedness check).
    EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
    EXPECT_EQ(count_occurrences(json, "["), count_occurrences(json, "]"));
}

TEST(ExportGraph, EscapesQuotesInNames) {
    // No layer names contain quotes today; the escaper must still be sound.
    Rng rng(3);
    SkyNetModel m = build_skynet({SkyNetVariant::kA, nn::Act::kReLU, 2, 0.15f}, rng);
    const std::string json = export_graph_json(*m.net, {1, 3, 16, 16});
    EXPECT_EQ(json.find("\\\""), std::string::npos);
}

}  // namespace
}  // namespace sky::io
