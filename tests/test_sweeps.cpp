// Wide parameterised sweeps over the model zoo: every backbone builds,
// runs forward AND one full training step at several widths; every SkyNet
// variant x activation x width obeys its contracts.  These are the
// "does the whole zoo actually work" tests that catch integration rot.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "backbones/registry.hpp"
#include "detect/yolo_head.hpp"
#include "nn/optimizer.hpp"
#include "skynet/skynet_model.hpp"

namespace sky {
namespace {

using BackboneParam = std::tuple<std::string, float>;

class BackboneSweep : public ::testing::TestWithParam<BackboneParam> {};

TEST_P(BackboneSweep, BuildForwardTrainStep) {
    const auto [name, width] = GetParam();
    Rng rng(11);
    backbones::Backbone bb = backbones::build_by_name(name, width, rng);
    const std::int64_t params_before = bb.param_count();
    EXPECT_GT(params_before, 0);

    nn::ModulePtr det = backbones::make_detector(std::move(bb), 2, rng);
    const Shape in{2, 3, 16, 32};
    EXPECT_EQ(det->out_shape(in), (Shape{2, 10, 2, 4}));

    // Forward in eval mode.
    det->set_training(false);
    Tensor x(in);
    Rng xr(3);
    x.rand_uniform(xr, 0.0f, 1.0f);
    Tensor y = det->forward(x);
    EXPECT_EQ(y.shape(), (Shape{2, 10, 2, 4}));
    for (std::int64_t i = 0; i < y.size(); ++i) ASSERT_TRUE(std::isfinite(y[i]));

    // One full training step must change the parameters and not blow up.
    det->set_training(true);
    std::vector<nn::ParamRef> ps;
    det->collect_params(ps);
    nn::SGD opt(ps, {0.01f, 0.9f, 0.0f, 5.0f});
    const detect::YoloHead head;
    Tensor raw = det->forward(x);
    Tensor grad;
    const float loss = head.loss(raw, {{0.4f, 0.5f, 0.1f, 0.1f}, {0.6f, 0.4f, 0.2f, 0.2f}},
                                 grad);
    EXPECT_TRUE(std::isfinite(loss));
    opt.zero_grad();
    det->backward(grad);
    opt.step();
    det->set_training(false);
    Tensor y2 = det->forward(x);
    bool changed = false;
    for (std::int64_t i = 0; i < y.size() && !changed; ++i)
        changed = std::abs(y2[i] - y[i]) > 1e-7f;
    EXPECT_TRUE(changed) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, BackboneSweep,
    ::testing::Combine(::testing::Values("alexnet", "vgg16", "resnet18", "resnet34",
                                         "resnet50", "mobilenet", "shufflenet",
                                         "squeezenet", "tinyyolo"),
                       ::testing::Values(0.15f, 0.3f)),
    [](const ::testing::TestParamInfo<BackboneParam>& info) {
        return std::get<0>(info.param) + "_w" +
               std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

using SkyNetParam = std::tuple<SkyNetVariant, nn::Act, float>;

class SkyNetSweep : public ::testing::TestWithParam<SkyNetParam> {};

TEST_P(SkyNetSweep, ContractsHold) {
    const auto [variant, act, width] = GetParam();
    Rng rng(13);
    SkyNetModel m = build_skynet({variant, act, 2, width}, rng);
    // 1. Output contract.
    EXPECT_EQ(m.net->out_shape({1, 3, 32, 64}), (Shape{1, 10, 4, 8}));
    // 2. Params positive and monotone in variant (A < B < C at equal width).
    EXPECT_GT(m.param_count(), 0);
    // 3. Eval forward finite; ReLU6 variants bounded pre-head.
    m.net->set_training(false);
    Tensor x({1, 3, 32, 64});
    Rng xr(7);
    x.rand_uniform(xr, 0.0f, 1.0f);
    const Tensor y = m.net->forward(x);
    for (std::int64_t i = 0; i < y.size(); ++i) ASSERT_TRUE(std::isfinite(y[i]));
    // 4. MAC count consistent with enumerate().
    std::vector<nn::LayerInfo> layers;
    m.net->enumerate({1, 3, 32, 64}, layers);
    std::int64_t macs = 0;
    for (const auto& li : layers) macs += li.macs;
    EXPECT_EQ(macs, m.net->macs({1, 3, 32, 64}));
}

INSTANTIATE_TEST_SUITE_P(
    Family, SkyNetSweep,
    ::testing::Combine(::testing::Values(SkyNetVariant::kA, SkyNetVariant::kB,
                                         SkyNetVariant::kC),
                       ::testing::Values(nn::Act::kReLU, nn::Act::kReLU6),
                       ::testing::Values(0.2f, 0.5f)),
    [](const ::testing::TestParamInfo<SkyNetParam>& info) {
        return std::string(variant_name(std::get<0>(info.param))) + "_" +
               nn::act_name(std::get<1>(info.param)) + "_w" +
               std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

TEST(SkyNetOrdering, ParamsMonotoneAcrossVariants) {
    for (float w : {0.25f, 0.5f, 1.0f}) {
        Rng rng(17);
        const auto a = build_skynet({SkyNetVariant::kA, nn::Act::kReLU6, 2, w}, rng);
        const auto b = build_skynet({SkyNetVariant::kB, nn::Act::kReLU6, 2, w}, rng);
        const auto c = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, w}, rng);
        EXPECT_LT(a.param_count(), b.param_count()) << w;
        EXPECT_LT(b.param_count(), c.param_count()) << w;
    }
}

}  // namespace
}  // namespace sky
