// Deployment passes: BN folding (sequential and graph forms) must preserve
// eval-mode outputs exactly (up to float rounding) while removing the BN
// layers; the model-summary report must account MACs/params consistently.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "deploy/fold_bn.hpp"

#include "nn/activations.hpp"
#include "deploy/report.hpp"
#include "detect/nms.hpp"
#include "detect/yolo_head.hpp"
#include "skynet/skynet_model.hpp"

namespace sky::deploy {
namespace {

/// Run random data through the net in eval mode.
Tensor eval_forward(nn::Module& net, const Shape& in_shape, std::uint64_t seed) {
    net.set_training(false);
    Tensor x(in_shape);
    Rng rng(seed);
    x.rand_uniform(rng, 0.0f, 1.0f);
    return net.forward(x);
}

/// Train-mode warmup so BN running stats are meaningful.
void warm_bn(nn::Module& net, const Shape& in_shape) {
    net.set_training(true);
    Rng rng(123);
    for (int i = 0; i < 3; ++i) {
        Tensor x(in_shape);
        x.randn(rng, 0.3f, 0.8f);
        (void)net.forward(x);
    }
}

TEST(FoldBn, SequentialConvBnFoldsExactly) {
    Rng rng(1);
    auto seq = std::make_unique<nn::Sequential>();
    seq->emplace<nn::Conv2d>(3, 8, 3, 1, 1, /*bias=*/false, rng);
    seq->emplace<nn::BatchNorm2d>(8);
    seq->emplace<nn::Activation>(nn::Act::kReLU6);
    seq->emplace<nn::DWConv3>(8, rng);
    seq->emplace<nn::BatchNorm2d>(8);
    seq->emplace<nn::PWConv1>(8, 4, /*bias=*/true, rng);
    seq->emplace<nn::BatchNorm2d>(4);
    warm_bn(*seq, {2, 3, 8, 8});
    const Tensor before = eval_forward(*seq, {1, 3, 8, 8}, 7);

    int folded = 0;
    auto fused = fold_batch_norms(std::move(seq), &folded);
    EXPECT_EQ(folded, 3);
    const Tensor after = eval_forward(*fused, {1, 3, 8, 8}, 7);
    ASSERT_EQ(before.size(), after.size());
    for (std::int64_t i = 0; i < before.size(); ++i)
        EXPECT_NEAR(before[i], after[i], 1e-4f) << i;

    // No BN layers remain.
    std::vector<nn::LayerInfo> layers;
    fused->enumerate({1, 3, 8, 8}, layers);
    for (const auto& li : layers) EXPECT_NE(li.kind, "bn");
}

TEST(FoldBn, NestedSequentialFolds) {
    Rng rng(2);
    auto inner = std::make_unique<nn::Sequential>();
    inner->emplace<nn::PWConv1>(4, 6, false, rng);
    inner->emplace<nn::BatchNorm2d>(6);
    auto outer = std::make_unique<nn::Sequential>();
    outer->emplace<nn::Conv2d>(3, 4, 3, 1, 1, false, rng);
    outer->emplace<nn::BatchNorm2d>(4);
    outer->add(std::move(inner));
    warm_bn(*outer, {2, 3, 6, 6});
    const Tensor before = eval_forward(*outer, {1, 3, 6, 6}, 9);
    int folded = 0;
    auto fused = fold_batch_norms(std::move(outer), &folded);
    EXPECT_EQ(folded, 2);
    const Tensor after = eval_forward(*fused, {1, 3, 6, 6}, 9);
    for (std::int64_t i = 0; i < before.size(); ++i)
        EXPECT_NEAR(before[i], after[i], 1e-4f);
}

TEST(FoldBn, SkyNetGraphFoldsAllBn) {
    Rng rng(3);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.2f}, rng);
    warm_bn(*m.net, {2, 3, 32, 64});
    const Tensor before = eval_forward(*m.net, {1, 3, 32, 64}, 11);

    const int folded = fold_graph_bn(*m.net);
    // Model C has 12 conv layers with BN (6 bundles x 2 convs).
    EXPECT_EQ(folded, 12);
    const Tensor after = eval_forward(*m.net, {1, 3, 32, 64}, 11);
    for (std::int64_t i = 0; i < before.size(); ++i)
        EXPECT_NEAR(before[i], after[i], 2e-4f) << i;
}

TEST(FoldBn, GraphFoldSkipsSharedConvOutputs) {
    // If the conv output feeds both a BN and something else, folding would
    // change the other consumer: the pass must leave it alone.
    Rng rng(4);
    nn::Graph g;
    const int conv = g.add(std::make_unique<nn::PWConv1>(2, 2, false, rng), g.input());
    const int bn = g.add(std::make_unique<nn::BatchNorm2d>(2), conv);
    const int sum = g.add_add(bn, conv);  // second consumer of `conv`
    g.set_output(sum);
    warm_bn(g, {2, 2, 4, 4});
    EXPECT_EQ(fold_graph_bn(g), 0);
}

TEST(FoldBn, ChannelBiasAddsPerChannel) {
    ChannelBias cb({1.0f, -2.0f});
    Tensor x({1, 2, 2, 2}, 0.5f);
    Tensor y = cb.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 1.5f);
    EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -1.5f);
    Tensor bad({1, 3, 2, 2});
    EXPECT_THROW((void)cb.forward(bad), std::invalid_argument);
}

TEST(Report, SummaryTotalsMatchModule) {
    Rng rng(5);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.25f}, rng);
    const Shape in{1, 3, 80, 160};
    const ModelSummary s = summarize(*m.net, in, hwsim::tx2());
    EXPECT_EQ(s.total_macs, m.net->macs(in));
    EXPECT_EQ(s.total_params, m.net->param_count());
    EXPECT_GT(s.rows.size(), 30u);
    // Depthwise layers on a GPU-class roofline are memory-bound.
    for (const auto& r : s.rows)
        if (r.info.kind == "dwconv") EXPECT_FALSE(r.compute_bound);
}

TEST(Report, PrintSummaryWritesTable) {
    Rng rng(6);
    SkyNetModel m = build_skynet({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.15f}, rng);
    const ModelSummary s = summarize(*m.net, {1, 3, 32, 64}, hwsim::ultra96());
    const std::string path = std::string(::testing::TempDir()) + "summary.txt";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    print_summary(s, "test model", f);
    std::fclose(f);
    std::ifstream in(path);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("test model"), std::string::npos);
    EXPECT_NE(all.find("dwconv"), std::string::npos);
    EXPECT_NE(all.find("total:"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Nms, SuppressesOverlapsKeepsBest) {
    std::vector<detect::Detection> dets = {
        {{0.5f, 0.5f, 0.2f, 0.2f}, 0.9f},
        {{0.51f, 0.5f, 0.2f, 0.2f}, 0.8f},  // heavy overlap with #1
        {{0.2f, 0.2f, 0.1f, 0.1f}, 0.7f},
    };
    const auto kept = detect::nms(dets, 0.45f);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_FLOAT_EQ(kept[0].score, 0.9f);
    EXPECT_FLOAT_EQ(kept[1].score, 0.7f);
}

TEST(Nms, ThresholdOneKeepsAll) {
    std::vector<detect::Detection> dets = {
        {{0.5f, 0.5f, 0.2f, 0.2f}, 0.9f},
        {{0.5f, 0.5f, 0.2f, 0.2f}, 0.8f},
    };
    EXPECT_EQ(detect::nms(dets, 1.1f).size(), 2u);
}

TEST(Nms, DecodeAllFindsPlantedObjects) {
    // Plant two confident cells far apart; decode_all must return both.
    detect::YoloHead h;
    Tensor raw({1, 10, 8, 8});
    raw.fill(-10.0f);
    raw.plane(0, 4)[1 * 8 + 1] = 8.0f;  // anchor 0 at (1,1)
    raw.plane(0, 9)[6 * 8 + 6] = 8.0f;  // anchor 1 at (6,6)
    const auto dets = h.decode_all(raw, 0.5f, 0.45f);
    ASSERT_EQ(dets.size(), 1u);
    EXPECT_EQ(dets[0].size(), 2u);
}

}  // namespace
}  // namespace sky::deploy
