// Hardware simulators: device profiles, roofline behaviour, DSP packing
// rule (Fig. 2c), BRAM monotonicity (Fig. 2b), pipeline algebra (Fig. 10),
// and the energy model.
#include <gtest/gtest.h>

#include "hwsim/energy.hpp"
#include "hwsim/fpga_model.hpp"
#include "hwsim/gpu_model.hpp"
#include "hwsim/pipeline.hpp"
#include "skynet/skynet_model.hpp"

namespace sky::hwsim {
namespace {

TEST(Device, ProfilesMatchPaperQuotes) {
    EXPECT_NEAR(tx2().peak_gmacs * 2.0, 665.0, 1.0);      // 665 GFLOPS
    EXPECT_NEAR(ultra96().peak_gmacs * 2.0, 144.0, 1.0);  // 144 GOPS
    EXPECT_NEAR(ultra96().clock_mhz, 200.0, 1e-9);
    EXPECT_TRUE(ultra96().is_fpga());
    EXPECT_FALSE(tx2().is_fpga());
    EXPECT_GT(gtx1080ti().peak_gmacs, 10.0 * tx2().peak_gmacs);
}

TEST(GpuModel, DepthwiseIsLessEfficientThanDense) {
    EXPECT_LT(GpuModel::kind_efficiency("dwconv"), GpuModel::kind_efficiency("conv"));
    EXPECT_LT(GpuModel::kind_efficiency("dwconv"), GpuModel::kind_efficiency("pwconv"));
}

TEST(GpuModel, LatencyScalesWithWork) {
    GpuModel gpu(tx2());
    Rng rng(1);
    SkyNetModel small = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.25f}, rng);
    SkyNetModel big = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f}, rng);
    const Shape in{1, 3, 160, 320};
    const double t_small = gpu.estimate(*small.net, in).latency_ms;
    const double t_big = gpu.estimate(*big.net, in).latency_ms;
    EXPECT_GT(t_big, t_small);
    EXPECT_GT(t_small, 0.0);
}

TEST(GpuModel, Fp16IsFaster) {
    GpuModel gpu(tx2());
    Rng rng(2);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f}, rng);
    const Shape in{1, 3, 160, 320};
    GpuRunConfig fp32{1, false}, fp16{1, true};
    EXPECT_LT(gpu.estimate(*m.net, in, fp16).latency_ms,
              gpu.estimate(*m.net, in, fp32).latency_ms);
}

TEST(GpuModel, BatchingImprovesThroughput) {
    GpuModel gpu(tx2());
    Rng rng(3);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.5f}, rng);
    const Shape in{1, 3, 160, 320};
    const double fps1 = gpu.estimate(*m.net, in, {1, false}).fps;
    const double fps8 = gpu.estimate(*m.net, in, {8, false}).fps;
    EXPECT_GT(fps8, fps1);  // launch overhead amortised
}

TEST(FpgaModel, DspPackingRuleFig2c) {
    // Fig. 2c: at FM16, W15 -> 128 DSPs but W14 -> 64 for a 128-MAC IP.
    EXPECT_EQ(FpgaModel::dsp_count(128, 15, 16), 128);
    EXPECT_EQ(FpgaModel::dsp_count(128, 14, 16), 64);
    // Double-pumping halves again (Table 1, optimisation 6).
    EXPECT_EQ(FpgaModel::dsp_count(128, 15, 16, true), 64);
    // Float32 costs 3 DSPs per MAC.
    EXPECT_EQ(FpgaModel::dsp_count(16, 0, 0), 48);
}

TEST(FpgaModel, BramGrowsWithFmBitsAndResize) {
    // Fig. 2b: BRAM rises with FM bit-width and falls with the resize factor.
    FpgaModel fpga(ultra96());
    Rng rng(4);
    SkyNetModel m = build_skynet({SkyNetVariant::kA, nn::Act::kReLU6, 2, 1.0f}, rng);
    std::vector<nn::LayerInfo> layers;
    m.net->enumerate({1, 3, 160, 320}, layers);

    auto bram_at = [&](int fm_bits, double resize) {
        FpgaBuildConfig cfg;
        cfg.fm_bits = fm_bits;
        cfg.resize_factor = resize;
        cfg.allow_fm_tiling = false;  // capacity study: raw requirement
        return fpga.estimate_layers(layers, cfg).resources.bram18k;
    };
    EXPECT_GE(bram_at(16, 1.0), bram_at(12, 1.0));
    EXPECT_GE(bram_at(14, 1.0), bram_at(14, 0.78));
}

TEST(FpgaModel, ParallelismLimitedByDsp) {
    FpgaModel fpga(ultra96());
    Rng rng(5);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.5f}, rng);
    FpgaBuildConfig cfg;  // 11/9 bits: packing applies
    const FpgaEstimate est = fpga.estimate(*m.net, {1, 3, 80, 160}, cfg);
    EXPECT_TRUE(est.resources.fits);
    EXPECT_LE(est.resources.dsp, ultra96().dsp_total);
    // Packing (w+fm = 20 <= 30) means parallelism can reach 2x DSP count.
    EXPECT_GE(est.parallelism, est.resources.dsp);
}

TEST(FpgaModel, LowerBitsFasterOrEqual) {
    FpgaModel fpga(ultra96());
    Rng rng(6);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f}, rng);
    FpgaBuildConfig q8{8, 8, false, 4, 1.0};
    FpgaBuildConfig q16{16, 16, false, 4, 1.0};
    const double t8 = fpga.estimate(*m.net, {1, 3, 160, 320}, q8).latency_ms;
    const double t16 = fpga.estimate(*m.net, {1, 3, 160, 320}, q16).latency_ms;
    EXPECT_LE(t8, t16);
}

TEST(FpgaModel, Ultra96BeatsPynqZ1) {
    // 2019's Ultra96 should outrun 2018's Pynq-Z1 on the same network.
    Rng rng(7);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 1.0f}, rng);
    const double t96 = FpgaModel(ultra96()).estimate(*m.net, {1, 3, 160, 320}).latency_ms;
    const double tz1 = FpgaModel(pynqz1()).estimate(*m.net, {1, 3, 160, 320}).latency_ms;
    EXPECT_LT(t96, tz1);
}

TEST(Pipeline, SerialEqualsSumPipelinedEqualsBottleneck) {
    const std::vector<PipelineStage> stages = {
        {"fetch", 4.0}, {"pre", 5.0}, {"dnn", 10.0}, {"post", 3.0}};
    const PipelineReport r = simulate_pipeline(stages, 1, 200);
    EXPECT_NEAR(r.serial_ms_per_batch, 22.0, 1e-9);
    EXPECT_NEAR(r.pipelined_ms_per_batch, 10.0, 1e-9);
    EXPECT_NEAR(r.speedup, 2.2, 1e-9);
    // Simulated steady-state throughput approaches 1 batch / bottleneck.
    EXPECT_NEAR(r.pipelined_fps, 100.0, 2.0);
}

TEST(Pipeline, MergeStagesCombinesLatency) {
    std::vector<PipelineStage> stages = {
        {"fetch", 4.0}, {"pre", 5.0}, {"dnn", 10.0}, {"post", 3.0}};
    const auto merged = merge_stages(stages, 0, 2);
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].name, "fetch+pre");
    EXPECT_NEAR(merged[0].latency_ms, 9.0, 1e-9);
}

TEST(Pipeline, BalancedStagesHitMaxSpeedup) {
    // Four equal stages: speedup -> 4 (the upper bound for this depth, and
    // the regime that makes the paper's 3.35x plausible).
    const std::vector<PipelineStage> stages = {
        {"a", 5.0}, {"b", 5.0}, {"c", 5.0}, {"d", 5.0}};
    const PipelineReport r = simulate_pipeline(stages, 1, 100);
    EXPECT_NEAR(r.speedup, 4.0, 1e-9);
}

TEST(Energy, InterpolatesAndDividesByFps) {
    DeviceProfile d = tx2();
    const EnergyEstimate idle = estimate_energy(d, 0.0, 10.0);
    const EnergyEstimate full = estimate_energy(d, 1.0, 10.0);
    EXPECT_NEAR(idle.power_w, d.idle_power_w, 1e-9);
    EXPECT_NEAR(full.power_w, d.peak_power_w, 1e-9);
    EXPECT_NEAR(full.energy_per_image_j, d.peak_power_w / 10.0, 1e-9);
    EXPECT_NEAR(full.total_j(100), 10.0 * d.peak_power_w, 1e-6);
}

}  // namespace
}  // namespace sky::hwsim
