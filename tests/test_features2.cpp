// Second-wave features: multi-object loss, Adam, automated scheme
// selection, ASCII rendering, SiamFC-style tracking mode.
#include <gtest/gtest.h>

#include <cmath>

#include "dacsdc/scheme_select.hpp"
#include "io/ascii_viz.hpp"
#include "nn/optimizer.hpp"
#include "skynet/skynet_model.hpp"
#include "tracking/metrics.hpp"
#include "tracking/tracker.hpp"

namespace sky {
namespace {

TEST(MultiLoss, GradMatchesFiniteDifference) {
    detect::YoloHead h;
    Rng rng(1);
    Tensor raw({2, 10, 4, 6});
    raw.randn(rng, 0.0f, 0.5f);
    std::vector<std::vector<detect::BBox>> gt = {
        {{0.2f, 0.3f, 0.06f, 0.1f}, {0.8f, 0.7f, 0.15f, 0.2f}},
        {{0.5f, 0.5f, 0.1f, 0.1f}},
    };
    Tensor grad;
    (void)h.loss_multi(raw, gt, grad);
    Rng pick(2);
    const float eps = 1e-3f;
    for (int s = 0; s < 20; ++s) {
        const std::int64_t i = pick.uniform_int(0, static_cast<int>(raw.size() - 1));
        Tensor tmp;
        const float orig = raw[i];
        raw[i] = orig + eps;
        const float lp = h.loss_multi(raw, gt, tmp);
        raw[i] = orig - eps;
        const float lm = h.loss_multi(raw, gt, tmp);
        raw[i] = orig;
        const double num = (static_cast<double>(lp) - lm) / (2.0 * eps);
        EXPECT_NEAR(grad[i], num, 2e-2 * std::max(1.0, std::abs(num))) << i;
    }
}

TEST(MultiLoss, SingleBoxAgreesWithSingleObjectLoss) {
    detect::YoloHead h;
    Rng rng(3);
    Tensor raw({1, 10, 4, 4});
    raw.randn(rng, 0.0f, 0.5f);
    const detect::BBox b{0.4f, 0.6f, 0.1f, 0.12f};
    Tensor g1, g2;
    const float l1 = h.loss(raw, {b}, g1);
    const float l2 = h.loss_multi(raw, {{b}}, g2);
    EXPECT_NEAR(l1, l2, 1e-5f);
    for (std::int64_t i = 0; i < g1.size(); ++i) EXPECT_NEAR(g1[i], g2[i], 1e-6f);
}

TEST(MultiLoss, PerfectMultiDecodeRecoversAllBoxes) {
    // Train raw logits directly (no network) until decode_all recovers both
    // planted objects — exercises loss_multi + decode_all end-to-end.
    detect::YoloHead h;
    Rng rng(4);
    Tensor raw({1, 10, 8, 8});
    raw.randn(rng, 0.0f, 0.1f);
    const std::vector<std::vector<detect::BBox>> gt = {
        {{0.2f, 0.2f, 0.08f, 0.1f}, {0.75f, 0.7f, 0.2f, 0.22f}}};
    // Stable step size: the coord term's curvature is coord_weight (=5),
    // so lr must stay below 2/5.
    for (int step = 0; step < 1500; ++step) {
        Tensor grad;
        (void)h.loss_multi(raw, gt, grad);
        raw.axpy(-0.3f, grad);
    }
    const auto dets = h.decode_all(raw, 0.5f, 0.45f);
    ASSERT_EQ(dets[0].size(), 2u);
    // Each GT matched by one detection.
    for (const auto& g : gt[0]) {
        float best = 0.0f;
        for (const auto& d : dets[0]) best = std::max(best, detect::iou(d.box, g));
        EXPECT_GT(best, 0.7f);
    }
}

TEST(Adam, DescendsQuadratic) {
    Tensor w({1, 8, 1, 1}, 3.0f);
    Tensor g({1, 8, 1, 1});
    nn::Adam opt({{&w, &g}}, {0.1f, 0.9f, 0.999f, 1e-8f, 0.0f});
    for (int i = 0; i < 200; ++i) {
        for (int k = 0; k < 8; ++k) g[k] = w[k];
        opt.step();
        opt.zero_grad();
    }
    EXPECT_LT(w.sq_norm(), 0.1);
}

TEST(Adam, StepSizeBoundedByLr) {
    // First Adam step moves each weight by ~lr regardless of grad scale.
    Tensor w({1, 2, 1, 1}, 0.0f);
    Tensor g({1, 2, 1, 1});
    g[0] = 1000.0f;
    g[1] = 0.001f;
    nn::Adam opt({{&w, &g}}, {0.05f, 0.9f, 0.999f, 1e-8f, 0.0f});
    opt.step();
    EXPECT_NEAR(std::abs(w[0]), 0.05f, 5e-3f);
    EXPECT_NEAR(std::abs(w[1]), 0.05f, 5e-3f);
}

TEST(SchemeSelect, RanksByProjectedScore) {
    Rng rng(5);
    SkyNetModel m = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.2f}, rng);
    m.net->set_training(false);
    data::DetectionDataset ds({32, 64, 1, false, 9});
    const data::DetectionBatch val = ds.validation(8);
    hwsim::FpgaModel u96(hwsim::ultra96());
    dacsdc::SchemeSelectConfig cfg;
    cfg.hw_input = {1, 3, 32, 64};
    const auto ranked = dacsdc::select_scheme(*m.net, m.head, val, u96, cfg);
    ASSERT_EQ(ranked.size(), 5u);
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1].total_score, ranked[i].total_score);
    for (const auto& ev : ranked) {
        EXPECT_GT(ev.fps, 0.0);
        EXPECT_GT(ev.power_w, 0.0);
    }
}

TEST(AsciiViz, RendersBoxesAndLuminance) {
    Tensor img({1, 3, 16, 32});
    img.fill(0.0f);
    // Bright square in the middle.
    for (int c = 0; c < 3; ++c)
        for (int y = 6; y < 10; ++y)
            for (int x = 12; x < 20; ++x) img.at(0, c, y, x) = 1.0f;
    const std::string art = io::render_ascii(
        img, 0, {{detect::BBox{0.5f, 0.5f, 0.5f, 0.5f}, '#'}}, 32);
    EXPECT_NE(art.find('#'), std::string::npos);
    EXPECT_NE(art.find('@'), std::string::npos);  // bright region
    EXPECT_NE(art.find(' '), std::string::npos);  // dark region
    // Every line the same width.
    std::size_t pos = 0, prev = 0;
    int lines = 0;
    while ((pos = art.find('\n', prev)) != std::string::npos) {
        if (lines > 0) EXPECT_EQ(pos - prev, 32u);
        prev = pos + 1;
        ++lines;
    }
    EXPECT_GT(lines, 3);
}

TEST(SiamFcMode, TracksWithoutRegression) {
    Rng rng(7);
    SkyNetModel bb = build_skynet_backbone(0.12f, nn::Act::kReLU6, rng);
    tracking::SiameseEmbed embed(std::move(bb.net), bb.feature_channels(), 16, rng);
    tracking::TrackerConfig cfg;
    cfg.crop_size = 32;
    cfg.kernel_cells = 2;
    cfg.use_regression = false;
    tracking::SiamTracker tracker(std::move(embed), cfg, rng);
    data::TrackingDataset ds({48, 48, 8, 0, 0.02f, 0.0f, 21});
    const auto seq = ds.next();
    const auto pred = tracker.track(seq);
    ASSERT_EQ(pred.size(), seq.size());
    // Without regression the box size never changes.
    for (const auto& b : pred) {
        EXPECT_FLOAT_EQ(b.w, pred[0].w);
        EXPECT_FLOAT_EQ(b.h, pred[0].h);
    }
}

}  // namespace
}  // namespace sky
