// sky::verify — static graph/model/quant checking layer.
//
// Each deliberately broken graph must produce the exact catalog code from
// docs/STATIC_ANALYSIS.md, and a pristine SkyNet must pass with zero
// diagnostics; this pins the contract that sky::Detector enforces on build.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/shuffle.hpp"
#include "skynet/check_model.hpp"
#include "skynet/detector.hpp"
#include "skynet/skynet_model.hpp"
#include "verify/check_graph.hpp"
#include "verify/check_qmodel.hpp"

namespace sky {
namespace {

const Shape kIn = verify::default_input_shape();  // {1,3,160,320}

SkyNetConfig small_cfg() {
    SkyNetConfig cfg;
    cfg.variant = SkyNetVariant::kC;
    cfg.width_mult = 0.25f;
    return cfg;
}

// ---------------------------------------------------------------- graphs --

TEST(Verify, PristineSkyNetPassesClean) {
    Rng rng(7);
    SkyNetModel model = build_skynet(small_cfg(), rng);
    const verify::Report rep = verify::check_model(model, kIn);
    EXPECT_EQ(rep.error_count(), 0) << rep.str();
    EXPECT_EQ(rep.warning_count(), 0) << rep.str();
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.str(), "");
}

TEST(Verify, DanglingEdgeIsG001) {
    Rng rng(1);
    nn::Graph g;
    g.add(std::make_unique<nn::DWConv3>(3, rng), 42);  // producer 42 missing
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G001")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, CyclicEdgeIsG002) {
    Rng rng(1);
    nn::Graph g;
    // Node 1 wired to consume node 1: the only way this topological-order
    // representation can encode a cycle is a self/forward edge.
    g.add(std::make_unique<nn::DWConv3>(3, rng), 1);
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G002")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, ConcatSpatialMismatchIsG003) {
    Rng rng(1);
    nn::Graph g;
    // Branch A keeps 160x320; branch B halves it; the join cannot concat.
    const int a = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    const int b = g.add(std::make_unique<nn::MaxPool2>(), 0);
    g.add_concat({a, b});
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G003")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, AddShapeMismatchIsG004) {
    Rng rng(1);
    nn::Graph g;
    const int a = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    const int b = g.add(std::make_unique<nn::Conv2d>(3, 16, 3, 1, 1, false, rng), 0);
    g.add_add(a, b);  // 8 vs 16 channels
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G004")) << rep.str();
}

TEST(Verify, ChannelMismatchIsG005) {
    Rng rng(1);
    nn::Graph g;
    g.add(std::make_unique<nn::DWConv3>(8, rng), 0);  // input has 3 channels
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G005")) << rep.str();
}

TEST(Verify, CollapsedFeatureMapIsG006) {
    Rng rng(1);
    nn::Graph g;
    // 7x7 kernel, no padding, on a 4x4 input: kernel exceeds the map.
    g.add(std::make_unique<nn::Conv2d>(3, 8, 7, 1, 0, false, rng), 0);
    const verify::Report rep = verify::check_graph(g, {1, 3, 4, 4});
    EXPECT_TRUE(rep.has("G006")) << rep.str();
}

TEST(Verify, OddPoolingWarnsG007) {
    nn::Graph g;
    g.add(std::make_unique<nn::MaxPool2>(), 0);
    const verify::Report rep = verify::check_graph(g, {1, 3, 7, 9});
    EXPECT_TRUE(rep.has("G007")) << rep.str();
    EXPECT_TRUE(rep.ok());  // truncation is a warning, not an error
    EXPECT_EQ(rep.warning_count(), 1);
}

TEST(Verify, UnreachableNodeWarnsG008) {
    Rng rng(1);
    nn::Graph g;
    const int keep = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);  // dead
    g.set_output(keep);
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G008")) << rep.str();
    EXPECT_TRUE(rep.ok());
}

TEST(Verify, InvalidOutputNodeIsG009) {
    nn::Graph g;
    g.add(std::make_unique<nn::MaxPool2>(), 0);
    g.set_output(99);
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G009")) << rep.str();
}

TEST(Verify, JoinArityIsG011) {
    Rng rng(1);
    nn::Graph g;
    const int a = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    g.add_concat({a});  // one-input concat is a wiring mistake
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G011")) << rep.str();
}

TEST(Verify, ShuffleDivisibilityIsG012) {
    nn::Graph g;
    g.add(std::make_unique<nn::ChannelShuffle>(5), 0);  // 3 % 5 != 0
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G012")) << rep.str();
}

// ------------------------------------------------------------ model level --

TEST(Verify, FeatureTapOutOfRangeIsM001) {
    Rng rng(7);
    SkyNetModel model = build_skynet(small_cfg(), rng);
    model.set_feature_tap(9999, model.feature_channels());  // broken tap on purpose
    const verify::Report rep = verify::check_model(model, kIn);
    EXPECT_TRUE(rep.has("M001")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, FeatureTapChannelDriftWarnsM002) {
    Rng rng(7);
    SkyNetModel model = build_skynet(small_cfg(), rng);
    model.set_feature_tap(model.feature_node(),
                         model.feature_channels() + 1);  // desync on purpose
    const verify::Report rep = verify::check_model(model, kIn);
    EXPECT_TRUE(rep.has("M002")) << rep.str();
    EXPECT_TRUE(rep.ok());
}

TEST(Verify, MissingNetworkIsM003) {
    SkyNetModel model;
    const verify::Report rep = verify::check_model(model, kIn);
    EXPECT_TRUE(rep.has("M003")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

// ------------------------------------------------------------ quant level --

TEST(Verify, UnfoldedBatchNormIsQ001) {
    Rng rng(1);
    nn::Graph g;
    const int c = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    const int bn = g.add(std::make_unique<nn::BatchNorm2d>(8), c);
    g.add(std::make_unique<nn::Activation>(nn::Act::kReLU), bn);
    const verify::Report rep = verify::check_qmodel(g, quant::QuantConfig{});
    EXPECT_TRUE(rep.has("Q001")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, UnsupportedLayersAreQ002) {
    Rng rng(1);
    nn::Graph g;
    const int s = g.add(std::make_unique<nn::Activation>(nn::Act::kSigmoid), 0);
    g.add(std::make_unique<nn::PWConv1>(8, 8, false, rng, 2), s);  // grouped
    const verify::Report rep = verify::check_qmodel(g, quant::QuantConfig{});
    EXPECT_TRUE(rep.has("Q002")) << rep.str();
    EXPECT_EQ(rep.error_count(), 2);  // one per unsupported layer
}

TEST(Verify, CalibratedRangeOverflowIsQ003) {
    Rng rng(1);
    nn::Graph g;
    g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    verify::QuantCheckOptions opts;
    opts.calibrated_fm_abs_max = 100.0f;  // format saturates near 8
    const verify::Report rep =
        verify::check_qmodel(g, quant::QuantConfig{9, 11, 8.0f}, opts);
    EXPECT_TRUE(rep.has("Q003")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, Relu6ClipSaturationWarnsQ004) {
    nn::Graph g;
    g.add(std::make_unique<nn::Activation>(nn::Act::kReLU6), 0);
    // fm_abs_max=2 -> max representable ~1.99 < 6: the clip never engages.
    const verify::Report rep = verify::check_qmodel(g, quant::QuantConfig{9, 11, 2.0f});
    EXPECT_TRUE(rep.has("Q004")) << rep.str();
    EXPECT_TRUE(rep.ok());
}

TEST(Verify, DegenerateSchemeIsQ005) {
    nn::Graph g;
    const verify::Report bits = verify::check_qmodel(g, quant::QuantConfig{0, 11, 8.0f});
    EXPECT_TRUE(bits.has("Q005")) << bits.str();
    const verify::Report range =
        verify::check_qmodel(g, quant::QuantConfig{9, 11, -1.0f});
    EXPECT_TRUE(range.has("Q005")) << range.str();
}

TEST(Verify, IntegerOnlyGridWarnsQ006) {
    nn::Graph g;
    // 9-bit words asked to span [-500, 500]: zero fractional bits remain.
    const verify::Report rep =
        verify::check_qmodel(g, quant::QuantConfig{9, 11, 500.0f});
    EXPECT_TRUE(rep.has("Q006")) << rep.str();
    EXPECT_TRUE(rep.ok());
}

TEST(Verify, StockSkyNetQuantSchemePasses) {
    Rng rng(7);
    Detector det(small_cfg(), rng);
    det.fold_bn();
    const verify::Report rep =
        verify::check_qmodel(det.net(), quant::QuantConfig{});
    EXPECT_EQ(rep.error_count(), 0) << rep.str();
}

// ----------------------------------------------------------- enforcement --

TEST(Verify, EnforceThrowsWithFullReport) {
    Rng rng(1);
    nn::Graph g;
    g.add(std::make_unique<nn::DWConv3>(8, rng), 0);   // G005
    g.add(std::make_unique<nn::DWConv3>(16, rng), 0);  // G005 again
    const verify::Report rep = verify::check_graph(g, kIn);
    try {
        verify::enforce(rep);
        FAIL() << "enforce() must throw on an error-bearing report";
    } catch (const verify::VerifyError& e) {
        EXPECT_EQ(e.report().error_count(), 2);
        EXPECT_NE(std::string(e.what()).find("G005"), std::string::npos);
    }
}

TEST(Verify, EnforcePassesWarningsThrough) {
    nn::Graph g;
    g.add(std::make_unique<nn::MaxPool2>(), 0);
    const verify::Report rep = verify::check_graph(g, {1, 3, 7, 9});  // G007 warn
    EXPECT_NO_THROW(verify::enforce(rep));
}

TEST(Verify, DetectorRefusesBrokenModel) {
    Rng rng(7);
    SkyNetModel model = build_skynet(small_cfg(), rng);
    // Sabotage: append a depthwise layer whose width disagrees with the
    // head output, and route the output through it.
    model.net->add(std::make_unique<nn::DWConv3>(7, rng), model.net->output_node());
    EXPECT_THROW(Detector det(std::move(model)), verify::VerifyError);
}

TEST(Verify, DetectorBuildsAndReverifiesCleanModel) {
    Rng rng(7);
    Detector det(small_cfg(), rng);
    const verify::Report rep = det.verify();
    EXPECT_TRUE(rep.ok()) << rep.str();
    EXPECT_EQ(rep.warning_count(), 0) << rep.str();
}

TEST(Verify, DetectorQuantizeRejectsDegenerateScheme) {
    Rng rng(7);
    Detector det(small_cfg(), rng);
    EXPECT_THROW(det.quantize(quant::QuantConfig{0, 11, 8.0f}),
                 verify::VerifyError);
}

}  // namespace
}  // namespace sky
