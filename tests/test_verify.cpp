// sky::verify — static graph/model/quant checking layer.
//
// Each deliberately broken graph must produce the exact catalog code from
// docs/STATIC_ANALYSIS.md, and a pristine SkyNet must pass with zero
// diagnostics; this pins the contract that sky::Detector enforces on build.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>

#include <map>
#include <stdexcept>
#include <string>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/dwconv.hpp"
#include "nn/pooling.hpp"
#include "nn/pwconv.hpp"
#include "nn/shuffle.hpp"
#include "skynet/check_model.hpp"
#include "skynet/detector.hpp"
#include "skynet/skynet_model.hpp"
#include "verify/analyze.hpp"
#include "verify/check_graph.hpp"
#include "verify/check_qmodel.hpp"

namespace sky {
namespace {

const Shape kIn = verify::default_input_shape();  // {1,3,160,320}

SkyNetConfig small_cfg() {
    SkyNetConfig cfg;
    cfg.variant = SkyNetVariant::kC;
    cfg.width_mult = 0.25f;
    return cfg;
}

// ---------------------------------------------------------------- graphs --

TEST(Verify, PristineSkyNetPassesClean) {
    Rng rng(7);
    SkyNetModel model = build_skynet(small_cfg(), rng);
    const verify::Report rep = verify::check_model(model, kIn);
    EXPECT_EQ(rep.error_count(), 0) << rep.str();
    EXPECT_EQ(rep.warning_count(), 0) << rep.str();
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.str(), "");
}

TEST(Verify, DanglingEdgeIsG001) {
    Rng rng(1);
    nn::Graph g;
    g.add(std::make_unique<nn::DWConv3>(3, rng), 42);  // producer 42 missing
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G001")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, CyclicEdgeIsG002) {
    Rng rng(1);
    nn::Graph g;
    // Node 1 wired to consume node 1: the only way this topological-order
    // representation can encode a cycle is a self/forward edge.
    g.add(std::make_unique<nn::DWConv3>(3, rng), 1);
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G002")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, ConcatSpatialMismatchIsG003) {
    Rng rng(1);
    nn::Graph g;
    // Branch A keeps 160x320; branch B halves it; the join cannot concat.
    const int a = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    const int b = g.add(std::make_unique<nn::MaxPool2>(), 0);
    g.add_concat({a, b});
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G003")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, AddShapeMismatchIsG004) {
    Rng rng(1);
    nn::Graph g;
    const int a = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    const int b = g.add(std::make_unique<nn::Conv2d>(3, 16, 3, 1, 1, false, rng), 0);
    g.add_add(a, b);  // 8 vs 16 channels
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G004")) << rep.str();
}

TEST(Verify, ChannelMismatchIsG005) {
    Rng rng(1);
    nn::Graph g;
    g.add(std::make_unique<nn::DWConv3>(8, rng), 0);  // input has 3 channels
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G005")) << rep.str();
}

TEST(Verify, CollapsedFeatureMapIsG006) {
    Rng rng(1);
    nn::Graph g;
    // 7x7 kernel, no padding, on a 4x4 input: kernel exceeds the map.
    g.add(std::make_unique<nn::Conv2d>(3, 8, 7, 1, 0, false, rng), 0);
    const verify::Report rep = verify::check_graph(g, {1, 3, 4, 4});
    EXPECT_TRUE(rep.has("G006")) << rep.str();
}

TEST(Verify, OddPoolingWarnsG007) {
    nn::Graph g;
    g.add(std::make_unique<nn::MaxPool2>(), 0);
    const verify::Report rep = verify::check_graph(g, {1, 3, 7, 9});
    EXPECT_TRUE(rep.has("G007")) << rep.str();
    EXPECT_TRUE(rep.ok());  // truncation is a warning, not an error
    EXPECT_EQ(rep.warning_count(), 1);
}

TEST(Verify, UnreachableNodeWarnsG008) {
    Rng rng(1);
    nn::Graph g;
    const int keep = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);  // dead
    g.set_output(keep);
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G008")) << rep.str();
    EXPECT_TRUE(rep.ok());
}

TEST(Verify, InvalidOutputNodeIsG009) {
    nn::Graph g;
    g.add(std::make_unique<nn::MaxPool2>(), 0);
    g.set_output(99);
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G009")) << rep.str();
}

TEST(Verify, JoinArityIsG011) {
    Rng rng(1);
    nn::Graph g;
    const int a = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    g.add_concat({a});  // one-input concat is a wiring mistake
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G011")) << rep.str();
}

TEST(Verify, ShuffleDivisibilityIsG012) {
    nn::Graph g;
    g.add(std::make_unique<nn::ChannelShuffle>(5), 0);  // 3 % 5 != 0
    const verify::Report rep = verify::check_graph(g, kIn);
    EXPECT_TRUE(rep.has("G012")) << rep.str();
}

// ------------------------------------------------------------ model level --

TEST(Verify, FeatureTapOutOfRangeIsM001) {
    Rng rng(7);
    SkyNetModel model = build_skynet(small_cfg(), rng);
    model.set_feature_tap(9999, model.feature_channels());  // broken tap on purpose
    const verify::Report rep = verify::check_model(model, kIn);
    EXPECT_TRUE(rep.has("M001")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, FeatureTapChannelDriftWarnsM002) {
    Rng rng(7);
    SkyNetModel model = build_skynet(small_cfg(), rng);
    model.set_feature_tap(model.feature_node(),
                         model.feature_channels() + 1);  // desync on purpose
    const verify::Report rep = verify::check_model(model, kIn);
    EXPECT_TRUE(rep.has("M002")) << rep.str();
    EXPECT_TRUE(rep.ok());
}

TEST(Verify, MissingNetworkIsM003) {
    SkyNetModel model;
    const verify::Report rep = verify::check_model(model, kIn);
    EXPECT_TRUE(rep.has("M003")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

// ------------------------------------------------------------ quant level --

TEST(Verify, UnfoldedBatchNormIsQ001) {
    Rng rng(1);
    nn::Graph g;
    const int c = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    const int bn = g.add(std::make_unique<nn::BatchNorm2d>(8), c);
    g.add(std::make_unique<nn::Activation>(nn::Act::kReLU), bn);
    const verify::Report rep = verify::check_qmodel(g, quant::QuantConfig{});
    EXPECT_TRUE(rep.has("Q001")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, UnsupportedLayersAreQ002) {
    Rng rng(1);
    nn::Graph g;
    const int s = g.add(std::make_unique<nn::Activation>(nn::Act::kSigmoid), 0);
    g.add(std::make_unique<nn::PWConv1>(8, 8, false, rng, 2), s);  // grouped
    const verify::Report rep = verify::check_qmodel(g, quant::QuantConfig{});
    EXPECT_TRUE(rep.has("Q002")) << rep.str();
    EXPECT_EQ(rep.error_count(), 2);  // one per unsupported layer
}

TEST(Verify, CalibratedRangeOverflowIsQ003) {
    Rng rng(1);
    nn::Graph g;
    g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    verify::QuantCheckOptions opts;
    opts.calibrated_fm_abs_max = 100.0f;  // format saturates near 8
    const verify::Report rep =
        verify::check_qmodel(g, quant::QuantConfig{9, 11, 8.0f}, opts);
    EXPECT_TRUE(rep.has("Q003")) << rep.str();
    EXPECT_FALSE(rep.ok());
}

TEST(Verify, Relu6ClipSaturationWarnsQ004) {
    nn::Graph g;
    g.add(std::make_unique<nn::Activation>(nn::Act::kReLU6), 0);
    // fm_abs_max=2 -> max representable ~1.99 < 6: the clip never engages.
    const verify::Report rep = verify::check_qmodel(g, quant::QuantConfig{9, 11, 2.0f});
    EXPECT_TRUE(rep.has("Q004")) << rep.str();
    EXPECT_TRUE(rep.ok());
}

TEST(Verify, DegenerateSchemeIsQ005) {
    nn::Graph g;
    const verify::Report bits = verify::check_qmodel(g, quant::QuantConfig{0, 11, 8.0f});
    EXPECT_TRUE(bits.has("Q005")) << bits.str();
    const verify::Report range =
        verify::check_qmodel(g, quant::QuantConfig{9, 11, -1.0f});
    EXPECT_TRUE(range.has("Q005")) << range.str();
}

TEST(Verify, IntegerOnlyGridWarnsQ006) {
    nn::Graph g;
    // 9-bit words asked to span [-500, 500]: zero fractional bits remain.
    const verify::Report rep =
        verify::check_qmodel(g, quant::QuantConfig{9, 11, 500.0f});
    EXPECT_TRUE(rep.has("Q006")) << rep.str();
    EXPECT_TRUE(rep.ok());
}

TEST(Verify, StockSkyNetQuantSchemePasses) {
    Rng rng(7);
    Detector det(small_cfg(), rng);
    det.fold_bn();
    const verify::Report rep =
        verify::check_qmodel(det.net(), quant::QuantConfig{});
    EXPECT_EQ(rep.error_count(), 0) << rep.str();
}

// ----------------------------------------------------------- enforcement --

TEST(Verify, EnforceThrowsWithFullReport) {
    Rng rng(1);
    nn::Graph g;
    g.add(std::make_unique<nn::DWConv3>(8, rng), 0);   // G005
    g.add(std::make_unique<nn::DWConv3>(16, rng), 0);  // G005 again
    const verify::Report rep = verify::check_graph(g, kIn);
    try {
        verify::enforce(rep);
        FAIL() << "enforce() must throw on an error-bearing report";
    } catch (const verify::VerifyError& e) {
        EXPECT_EQ(e.report().error_count(), 2);
        EXPECT_NE(std::string(e.what()).find("G005"), std::string::npos);
    }
}

TEST(Verify, EnforcePassesWarningsThrough) {
    nn::Graph g;
    g.add(std::make_unique<nn::MaxPool2>(), 0);
    const verify::Report rep = verify::check_graph(g, {1, 3, 7, 9});  // G007 warn
    EXPECT_NO_THROW(verify::enforce(rep));
}

TEST(Verify, DetectorRefusesBrokenModel) {
    Rng rng(7);
    SkyNetModel model = build_skynet(small_cfg(), rng);
    // Sabotage: append a depthwise layer whose width disagrees with the
    // head output, and route the output through it.
    model.net->add(std::make_unique<nn::DWConv3>(7, rng), model.net->output_node());
    EXPECT_THROW(Detector det(std::move(model)), verify::VerifyError);
}

TEST(Verify, DetectorBuildsAndReverifiesCleanModel) {
    Rng rng(7);
    Detector det(small_cfg(), rng);
    const verify::Report rep = det.verify();
    EXPECT_TRUE(rep.ok()) << rep.str();
    EXPECT_EQ(rep.warning_count(), 0) << rep.str();
}

TEST(Verify, DetectorQuantizeRejectsDegenerateScheme) {
    Rng rng(7);
    Detector det(small_cfg(), rng);
    EXPECT_THROW(det.quantize(quant::QuantConfig{0, 11, 8.0f}),
                 verify::VerifyError);
}

// -------------------------------------------- abstract interpretation (A) --

TEST(Analyze, IntervalBlowupWarnsA001OnlyAtTheTransition) {
    Rng rng(1);
    nn::Graph g;
    const int c1 = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
    const int c2 = g.add(std::make_unique<nn::Conv2d>(8, 8, 3, 1, 1, false, rng), c1);
    g.set_output(c2);
    // 27 taps of 1e38 against inputs in [0, 1] reach 2.7e39 > FLT_MAX.
    dynamic_cast<nn::Conv2d*>(g.node_module(1))->weight().fill(1e38f);
    const verify::Analysis a = verify::analyze(g, kIn);
    EXPECT_TRUE(a.report.has("A001")) << a.report.str();
    int fired = 0;
    for (const verify::Diagnostic& d : a.report.diagnostics)
        if (d.code == "A001") {
            ++fired;
            EXPECT_EQ(d.node, 1);  // downstream nodes must not re-report
        }
    EXPECT_EQ(fired, 1) << a.report.str();
    EXPECT_TRUE(a.report.ok());  // A-codes are warnings
}

TEST(Analyze, DeadClampWarnsA002) {
    nn::Graph g;
    // The graph input is declared [0, 1] by the default scheme: a ReLU on it
    // provably never clamps.
    g.add(std::make_unique<nn::Activation>(nn::Act::kReLU), 0);
    const verify::Analysis a = verify::analyze(g, kIn);
    EXPECT_TRUE(a.report.has("A002")) << a.report.str();
    EXPECT_TRUE(a.report.ok());
}

TEST(Analyze, SaturatedActivationWarnsA003) {
    nn::Graph g;
    g.add(std::make_unique<nn::Activation>(nn::Act::kReLU), 0);
    verify::AnalyzeOptions opts;
    opts.qconfig = quant::QuantConfig{}.with_input_range(-3.0f, -1.0f);
    const verify::Analysis a = verify::analyze(g, kIn, opts);
    EXPECT_TRUE(a.report.has("A003")) << a.report.str();
    EXPECT_FALSE(a.report.has("A002")) << a.report.str();  // saturation wins
}

TEST(Analyze, AccumulatorOverflowWarnsA004) {
    Rng rng(1);
    nn::Graph g;
    // 512 input channels give the second conv K = 4608; with 15-bit weights
    // (|w| up to ~16383) and a ReLU6-tightened input span, the worst-case
    // int32 accumulator K * max|w| * span crosses 2^31.
    const int c1 = g.add(std::make_unique<nn::Conv2d>(3, 512, 3, 1, 1, false, rng), 0);
    const int a1 = g.add(std::make_unique<nn::Activation>(nn::Act::kReLU6), c1);
    const int c2 = g.add(std::make_unique<nn::Conv2d>(512, 8, 3, 1, 1, false, rng), a1);
    g.set_output(c2);
    verify::AnalyzeOptions opts;
    opts.qconfig = quant::QuantConfig{9, 15, 8.0f};
    const verify::Analysis a = verify::analyze(g, kIn, opts);
    EXPECT_TRUE(a.report.has("A004")) << a.report.str();
    for (const verify::Diagnostic& d : a.report.diagnostics)
        if (d.code == "A004") {
            EXPECT_EQ(d.node, 3);
            EXPECT_NE(d.message.find(">= 2^31"), std::string::npos) << d.message;
        }
}

TEST(Analyze, PristineSkyNetAnalyzesClean) {
    Rng rng(7);
    Detector det(small_cfg(), rng);
    det.fold_bn();
    const verify::Analysis a = verify::analyze(det.net(), kIn);
    EXPECT_EQ(a.report.str(), "");
    ASSERT_TRUE(a.has_plan);
    EXPECT_GT(a.plan.peak_bytes, 0);
    EXPECT_GE(a.plan.arena_bytes, a.plan.peak_bytes);
    EXPECT_LE(a.plan.arena_bytes, a.plan.total_bytes);
}

// ------------------------------------------- static plan vs real execution --

TEST(Analyze, PlanPeakBytesMatchInstrumentedExecution) {
    Rng rng(7);
    Detector det(small_cfg(), rng);
    const quant::QuantReport rep = det.quantize(quant::QuantConfig{});
    ASSERT_TRUE(rep.has_activation_plan);
    const deploy::MemoryPlan& plan = rep.activation_plan;
    EXPECT_GT(plan.peak_bytes, 0);
    EXPECT_GT(det.activation_plan_bytes(), 0);

    Rng drng(3);
    Tensor x(kIn);
    for (std::int64_t i = 0; i < x.size(); ++i)
        x.data()[i] = static_cast<float>(drng.uniform(0.0, 1.0));
    (void)det.forward(x);
    ASSERT_NE(det.qengine(), nullptr);
    // The plan is exact, not an estimate: the arena executor's instrumented
    // peak must equal the liveness walk's number, and the pre-sized slots
    // make the whole pass allocation-free from the first run.
    EXPECT_EQ(det.qengine()->measured_peak_bytes(), plan.peak_bytes);
    EXPECT_EQ(det.qengine()->alloc_events(), 0);
    (void)det.forward(x);  // steady state stays allocation-free
    EXPECT_EQ(det.qengine()->measured_peak_bytes(), plan.peak_bytes);
    EXPECT_EQ(det.qengine()->alloc_events(), 0);
}

// ------------------------- fp32 interval domain: soundness by execution --

/// Random conv/act/pool chains: every value a real forward pass produces
/// must lie inside the statically analyzed per-node interval.
TEST(Analyze, ValueIntervalsSoundOnRandomGraphs) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed * 53 + 1);
        std::uint64_t s = seed * 1234567891ULL;
        const auto pick = [&s](std::uint64_t n) {
            s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            return (s >> 33) % n;
        };
        nn::Graph g;
        int last = g.input();
        int ch = 3;
        const int layers = 3 + static_cast<int>(pick(3));
        for (int i = 0; i < layers; ++i) {
            switch (pick(6)) {
                case 0: {
                    const int out = 4 + static_cast<int>(pick(3)) * 2;
                    last = g.add(std::make_unique<nn::Conv2d>(ch, out, 3, 1, 1,
                                                              pick(2) == 0, rng),
                                 last);
                    ch = out;
                    break;
                }
                case 1: {
                    const int out = 4 + static_cast<int>(pick(3)) * 2;
                    last = g.add(
                        std::make_unique<nn::PWConv1>(ch, out, pick(2) == 0, rng),
                        last);
                    ch = out;
                    break;
                }
                case 2:
                    last = g.add(std::make_unique<nn::DWConv3>(ch, rng), last);
                    break;
                case 3:
                    last = g.add(std::make_unique<nn::Activation>(nn::Act::kReLU),
                                 last);
                    break;
                case 4:
                    last = g.add(std::make_unique<nn::Activation>(nn::Act::kReLU6),
                                 last);
                    break;
                default:
                    last = g.add(std::make_unique<nn::Activation>(nn::Act::kSigmoid),
                                 last);
                    break;
            }
        }
        g.set_output(last);
        verify::AnalyzeOptions opts;
        opts.qconfig = quant::QuantConfig{}.with_input_range(-1.0f, 1.0f);
        const verify::Analysis a = verify::analyze(g, {2, 3, 12, 12}, opts);
        ASSERT_EQ(a.value_ranges.size(), g.node_count());

        g.set_training(false);
        Rng xr(seed * 7 + 3);
        for (int trial = 0; trial < 2; ++trial) {
            Tensor x({2, 3, 12, 12});
            x.rand_uniform(xr, -1.0f, 1.0f);
            (void)g.forward(x);
            for (std::size_t i = 0; i < g.node_count(); ++i) {
                const verify::Interval& v = a.value_ranges[i];
                if (!v.known) continue;
                // fp64 interval arithmetic vs fp32 kernel accumulation order.
                const double tol =
                    1e-4 * (1.0 + std::abs(v.lo) + std::abs(v.hi));
                const Tensor& y = g.node_output(static_cast<int>(i));
                for (std::int64_t j = 0; j < y.size(); ++j) {
                    ASSERT_GE(y[j], v.lo - tol) << "seed " << seed << " node " << i;
                    ASSERT_LE(y[j], v.hi + tol) << "seed " << seed << " node " << i;
                }
            }
        }
    }
}

TEST(Analyze, NonFiniteWeightsAreReportedNotPropagatedAsFacts) {
    Rng rng(3);
    nn::Graph g;
    const int c = g.add(std::make_unique<nn::Conv2d>(3, 4, 3, 1, 1, false, rng), 0);
    g.set_output(g.add(std::make_unique<nn::Activation>(nn::Act::kReLU), c));
    dynamic_cast<nn::Conv2d*>(g.node_module(1))->weight()[0] =
        std::numeric_limits<float>::quiet_NaN();
    const verify::Analysis a = verify::analyze(g, kIn);  // must not throw
    ASSERT_EQ(a.value_ranges.size(), g.node_count());
    // Whatever the domain does with NaN (drop to unknown), it must never
    // claim a *finite known* interval for the poisoned conv.
    const verify::Interval& v = a.value_ranges[1];
    EXPECT_FALSE(v.known && std::isfinite(v.lo) && std::isfinite(v.hi));
}

TEST(Analyze, AllZeroWeightConvHasExactPointInterval) {
    Rng rng(4);
    nn::Graph g;
    const int c = g.add(std::make_unique<nn::Conv2d>(3, 4, 3, 1, 1, false, rng), 0);
    g.set_output(c);
    dynamic_cast<nn::Conv2d*>(g.node_module(1))->weight().fill(0.0f);
    verify::AnalyzeOptions opts;
    opts.qconfig = quant::QuantConfig{}.with_input_range(-1.0f, 1.0f);
    const verify::Analysis a = verify::analyze(g, {1, 3, 8, 8}, opts);
    ASSERT_EQ(a.value_ranges.size(), g.node_count());
    const verify::Interval& v = a.value_ranges[static_cast<std::size_t>(c)];
    ASSERT_TRUE(v.known);
    EXPECT_DOUBLE_EQ(v.lo, 0.0);  // a dead channel's interval is exactly {0}
    EXPECT_DOUBLE_EQ(v.hi, 0.0);
}

// ------------------------------------------------- catalog exhaustiveness --

/// A module whose shape inference throws — the only way to seed G010.
struct ThrowingShape : nn::Module {
    Tensor forward(const Tensor& x) override { return x; }
    Tensor backward(const Tensor& g) override { return g; }
    [[nodiscard]] std::string name() const override { return "ThrowingShape"; }
    [[nodiscard]] Shape out_shape(const Shape&) const override {
        throw std::runtime_error("seeded failure");
    }
};

/// One deliberately broken model per catalog code, so the catalog, the
/// checkers, and this test cannot drift: a new code without a seed (or a
/// seed whose code vanished from the catalog) fails here.
std::map<std::string, verify::Report> seeded_defect_reports() {
    std::map<std::string, verify::Report> out;
    Rng rng(1);
    {
        nn::Graph g;
        g.add(std::make_unique<nn::DWConv3>(3, rng), 42);
        out["G001"] = verify::check_graph(g, kIn);
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::DWConv3>(3, rng), 1);
        out["G002"] = verify::check_graph(g, kIn);
    }
    {
        nn::Graph g;
        const int a = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
        const int b = g.add(std::make_unique<nn::MaxPool2>(), 0);
        g.add_concat({a, b});
        out["G003"] = verify::check_graph(g, kIn);
    }
    {
        nn::Graph g;
        const int a = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
        const int b = g.add(std::make_unique<nn::Conv2d>(3, 16, 3, 1, 1, false, rng), 0);
        g.add_add(a, b);
        out["G004"] = verify::check_graph(g, kIn);
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::DWConv3>(8, rng), 0);
        out["G005"] = verify::check_graph(g, kIn);
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::Conv2d>(3, 8, 7, 1, 0, false, rng), 0);
        out["G006"] = verify::check_graph(g, {1, 3, 4, 4});
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::MaxPool2>(), 0);
        out["G007"] = verify::check_graph(g, {1, 3, 7, 9});
    }
    {
        nn::Graph g;
        const int keep = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
        g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
        g.set_output(keep);
        out["G008"] = verify::check_graph(g, kIn);
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::MaxPool2>(), 0);
        g.set_output(99);
        out["G009"] = verify::check_graph(g, kIn);
    }
    {
        nn::Graph g;
        g.add(std::make_unique<ThrowingShape>(), 0);
        out["G010"] = verify::check_graph(g, kIn);
    }
    {
        nn::Graph g;
        const int a = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
        g.add_concat({a});
        out["G011"] = verify::check_graph(g, kIn);
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::ChannelShuffle>(5), 0);
        out["G012"] = verify::check_graph(g, kIn);
    }
    {
        Rng mrng(7);
        SkyNetModel model = build_skynet(small_cfg(), mrng);
        model.set_feature_tap(9999, model.feature_channels());
        out["M001"] = verify::check_model(model, kIn);
    }
    {
        Rng mrng(7);
        SkyNetModel model = build_skynet(small_cfg(), mrng);
        model.set_feature_tap(model.feature_node(), model.feature_channels() + 1);
        out["M002"] = verify::check_model(model, kIn);
    }
    {
        SkyNetModel model;
        out["M003"] = verify::check_model(model, kIn);
    }
    {
        nn::Graph g;
        const int c = g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
        g.add(std::make_unique<nn::BatchNorm2d>(8), c);
        out["Q001"] = verify::check_qmodel(g, quant::QuantConfig{});
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::PWConv1>(8, 8, false, rng, 2), 0);
        out["Q002"] = verify::check_qmodel(g, quant::QuantConfig{});
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
        verify::QuantCheckOptions opts;
        opts.calibrated_fm_abs_max = 100.0f;
        out["Q003"] = verify::check_qmodel(g, quant::QuantConfig{9, 11, 8.0f}, opts);
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::Activation>(nn::Act::kReLU6), 0);
        out["Q004"] = verify::check_qmodel(g, quant::QuantConfig{9, 11, 2.0f});
    }
    {
        nn::Graph g;
        out["Q005"] = verify::check_qmodel(g, quant::QuantConfig{0, 11, 8.0f});
    }
    {
        nn::Graph g;
        out["Q006"] = verify::check_qmodel(g, quant::QuantConfig{9, 11, 500.0f});
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, false, rng), 0);
        dynamic_cast<nn::Conv2d*>(g.node_module(1))->weight().fill(1e38f);
        out["A001"] = verify::analyze(g, kIn).report;
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::Activation>(nn::Act::kReLU), 0);
        out["A002"] = verify::analyze(g, kIn).report;
    }
    {
        nn::Graph g;
        g.add(std::make_unique<nn::Activation>(nn::Act::kReLU), 0);
        verify::AnalyzeOptions opts;
        opts.qconfig = quant::QuantConfig{}.with_input_range(-3.0f, -1.0f);
        out["A003"] = verify::analyze(g, kIn, opts).report;
    }
    {
        nn::Graph g;
        const int c1 = g.add(std::make_unique<nn::Conv2d>(3, 512, 3, 1, 1, false, rng), 0);
        const int a1 = g.add(std::make_unique<nn::Activation>(nn::Act::kReLU6), c1);
        g.set_output(
            g.add(std::make_unique<nn::Conv2d>(512, 8, 3, 1, 1, false, rng), a1));
        verify::AnalyzeOptions opts;
        opts.qconfig = quant::QuantConfig{9, 15, 8.0f};
        out["A004"] = verify::analyze(g, kIn, opts).report;
    }
    {
        // E001/E003/E004: a quantized conv against an impossibly tight
        // budget — the input's half-step alone crosses it, the output bound
        // dominates it, and no feasible fractional-bit count exists.
        nn::Graph g;
        g.set_output(
            g.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, true, rng), 0));
        verify::AnalyzeOptions opts;
        opts.qconfig = quant::QuantConfig{}.with_error_budget(1e-7f);
        const verify::Report rep = verify::analyze(g, kIn, opts).report;
        out["E001"] = rep;
        out["E003"] = rep;
        out["E004"] = rep;
    }
    {
        // E002: a module kind no error transfer function knows, with an
        // unknown value interval — the certified bound is unrecoverable.
        struct OpaqueOp : nn::Module {
            Tensor forward(const Tensor& x) override { return x; }
            Tensor backward(const Tensor& grad) override { return grad; }
            [[nodiscard]] std::string name() const override { return "OpaqueOp"; }
            [[nodiscard]] Shape out_shape(const Shape& in) const override {
                return in;
            }
        };
        nn::Graph g;
        g.set_output(g.add(std::make_unique<OpaqueOp>(), 0));
        out["E002"] = verify::analyze(g, kIn).report;
    }
    return out;
}

TEST(Verify, CatalogIsExhaustiveAndSeverityStable) {
    const std::map<std::string, verify::Report> seeded = seeded_defect_reports();
    const std::vector<verify::CatalogEntry>& cat = verify::catalog();
    ASSERT_FALSE(cat.empty());

    // Every catalogued code has a seeded defect that fires it, at the
    // catalogued severity.
    for (const verify::CatalogEntry& e : cat) {
        const auto it = seeded.find(e.code);
        ASSERT_NE(it, seeded.end()) << "no seeded defect for " << e.code;
        bool fired = false;
        for (const verify::Diagnostic& d : it->second.diagnostics)
            if (d.code == e.code) {
                fired = true;
                EXPECT_EQ(d.severity, e.severity) << e.code;
            }
        EXPECT_TRUE(fired) << e.code << " did not fire: " << it->second.str();
    }

    // Conversely: nothing fires a code the catalog does not list.
    for (const auto& [code, rep] : seeded)
        for (const verify::Diagnostic& d : rep.diagnostics) {
            bool catalogued = false;
            for (const verify::CatalogEntry& e : cat)
                catalogued = catalogued || d.code == e.code;
            EXPECT_TRUE(catalogued) << d.code << " fired but is not catalogued";
        }
}

}  // namespace
}  // namespace sky
