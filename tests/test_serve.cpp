// sky::serve — queue backpressure, dynamic batching, pipeline draining, and
// the determinism contract: results are bitwise independent of how requests
// were coalesced into batches and of the kernel-engine thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "serve/engine.hpp"

#include "core/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "skynet/detector.hpp"

namespace sky::serve {
namespace {

/// Restores the env-resolved pool size when a test that pins threads exits.
struct ThreadGuard {
    ~ThreadGuard() { core::ThreadPool::set_global_threads(0); }
};

Tensor random_image(std::uint64_t seed, int h = 32, int w = 64) {
    Tensor img({1, 3, h, w});
    Rng rng(seed);
    img.rand_uniform(rng, 0.0f, 1.0f);
    return img;
}

Detector small_detector(std::uint64_t seed = 11) {
    Rng rng(seed);
    return Detector({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.15f}, rng);
}

// ---------------------------------------------------------------- queue ---

TEST(BoundedQueue, TryPushRejectsWhenFull) {
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_FALSE(q.try_push(3));  // full: the kReject policy path
    int v = 0;
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(q.try_push(3));  // space again
}

TEST(BoundedQueue, CloseDrainsThenStops) {
    BoundedQueue<int> q(8);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    q.close();
    EXPECT_FALSE(q.try_push(3));  // closed to producers
    int v = 0;
    EXPECT_TRUE(q.pop(v));  // but consumers still drain
    EXPECT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(q.pop(v));  // closed AND empty
}

TEST(BoundedQueue, OfferReturnsItemOnlyWhenClosed) {
    BoundedQueue<std::unique_ptr<int>> q(2);
    EXPECT_FALSE(q.offer(std::make_unique<int>(1)));  // accepted: nullopt
    q.close();
    auto rejected = q.offer(std::make_unique<int>(2));
    ASSERT_TRUE(rejected.has_value());  // handed back, not moved-from
    ASSERT_TRUE(*rejected != nullptr);
    EXPECT_EQ(**rejected, 2);
    std::unique_ptr<int> v;
    EXPECT_TRUE(q.pop(v));  // the accepted item still drains
    EXPECT_EQ(*v, 1);
}

TEST(Batcher, OfferReturnsItemOnlyWhenClosed) {
    Batcher<std::unique_ptr<int>> b(2);
    EXPECT_FALSE(b.offer(std::make_unique<int>(7)));
    b.close();
    auto rejected = b.offer(std::make_unique<int>(8));
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(**rejected, 8);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.try_push(1));
    std::thread consumer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        int v;
        (void)q.pop(v);
    });
    EXPECT_TRUE(q.push(2));  // blocks until the consumer frees a slot
    consumer.join();
    EXPECT_EQ(q.size(), 1u);
}

// -------------------------------------------------------------- batcher ---

TEST(Batcher, CoalescesUpToMaxBatch) {
    Batcher<int> b(32);
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(b.push(int(i)));
    std::vector<int> out;
    // Items are already queued, so max_batch wins long before max_delay.
    ASSERT_TRUE(b.pop_batch(4, 1000.0, out));
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
    ASSERT_TRUE(b.pop_batch(4, 1000.0, out));
    EXPECT_EQ(out, (std::vector<int>{4, 5, 6, 7}));
    b.close();
    ASSERT_TRUE(b.pop_batch(4, 1000.0, out));  // drain mode: no delay wait
    EXPECT_EQ(out, (std::vector<int>{8, 9}));
    EXPECT_FALSE(b.pop_batch(4, 1000.0, out));  // closed and empty
}

TEST(Batcher, MaxDelayFlushesPartialBatch) {
    Batcher<int> b(32);
    ASSERT_TRUE(b.push(1));
    ASSERT_TRUE(b.push(2));
    std::vector<int> out;
    const auto t0 = std::chrono::steady_clock::now();
    ASSERT_TRUE(b.pop_batch(8, 50.0, out));
    const double waited =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(out.size(), 2u);       // partial batch released...
    EXPECT_GE(waited, 40.0);         // ...but only after ~max_delay_ms
    EXPECT_LT(waited, 2000.0);
}

TEST(Batcher, LateArrivalJoinsWithinDelay) {
    Batcher<int> b(32);
    ASSERT_TRUE(b.push(1));
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        (void)b.push(2);
    });
    std::vector<int> out;
    ASSERT_TRUE(b.pop_batch(2, 5000.0, out));  // fills to max_batch and returns
    producer.join();
    EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(Batcher, CompatibilityPredicateBoundsBatch) {
    // Odd/even may not mix: the engine uses the same mechanism to keep
    // mixed input shapes out of a single NCHW tensor.
    Batcher<int> b(32, [](const int& head, const int& cand) {
        return head % 2 == cand % 2;
    });
    for (int v : {2, 4, 7, 9, 6}) ASSERT_TRUE(b.push(int(v)));
    std::vector<int> out;
    ASSERT_TRUE(b.pop_batch(8, 10.0, out));
    EXPECT_EQ(out, (std::vector<int>{2, 4}));  // stops at the first odd item
    ASSERT_TRUE(b.pop_batch(8, 10.0, out));
    EXPECT_EQ(out, (std::vector<int>{7, 9}));
    ASSERT_TRUE(b.pop_batch(8, 10.0, out));
    EXPECT_EQ(out, (std::vector<int>{6}));
}

// --------------------------------------------------------------- engine ---

TEST(Engine, RejectPolicyShedsLoadDeterministically) {
    Detector det = small_detector();
    obs::Registry reg;
    ServeConfig cfg;
    cfg.queue_capacity = 2;
    cfg.overflow = OverflowPolicy::kReject;
    cfg.max_batch = 4;
    cfg.metrics = &reg;
    Engine engine(det, cfg);
    // Not started yet: nothing drains, so the queue bound is exact.
    auto f1 = engine.submit(random_image(1));
    auto f2 = engine.submit(random_image(2));
    EXPECT_THROW((void)engine.submit(random_image(3)), RejectedError);
    EXPECT_EQ(engine.rejected(), 1u);
    EXPECT_EQ(engine.submitted(), 2u);
    EXPECT_EQ(reg.counter("serve.rejected"), 1.0);

    engine.start();  // accepted requests now flow through the pipeline
    const DetectResult r1 = f1.get();
    const DetectResult r2 = f2.get();
    EXPECT_GT(r1.batch_size, 0);
    EXPECT_GT(r2.total_ms, 0.0);
    engine.shutdown();
    EXPECT_EQ(engine.completed(), 2u);
    EXPECT_THROW((void)engine.submit(random_image(4)), RejectedError);
}

TEST(Engine, ShutdownDrainsInflightRequests) {
    Detector det = small_detector();
    ServeConfig cfg;
    cfg.max_batch = 4;
    cfg.max_delay_ms = 1.0;
    cfg.queue_capacity = 32;
    Engine engine(det, cfg);
    engine.start();
    std::vector<std::future<DetectResult>> futures;
    for (int i = 0; i < 12; ++i) futures.push_back(engine.submit(random_image(100 + i)));
    engine.shutdown(/*drain=*/true);  // must complete every accepted request
    for (auto& f : futures) {
        const DetectResult r = f.get();  // throws if any request was dropped
        EXPECT_GE(r.box.w, 0.0f);
        EXPECT_GT(r.total_ms, 0.0);
    }
    EXPECT_EQ(engine.completed(), 12u);
    EXPECT_GE(engine.batches(), 3u);  // 12 requests / max_batch 4
}

TEST(Engine, NonDrainingShutdownFailsOnlyQueuedRequests) {
    Detector det = small_detector();
    ServeConfig cfg;
    cfg.queue_capacity = 16;
    Engine engine(det, cfg);
    std::vector<std::future<DetectResult>> futures;
    for (int i = 0; i < 5; ++i) futures.push_back(engine.submit(random_image(i)));
    engine.shutdown(/*drain=*/false);  // never started: all five still queued
    for (auto& f : futures) EXPECT_THROW((void)f.get(), RejectedError);
}

TEST(Engine, BatchedResultsBitwiseEqualSingleDetectAtAnyThreadCount) {
    ThreadGuard guard;
    constexpr int kImages = 6;

    // Reference: single-image detect() at 1 thread.
    std::vector<detect::BBox> reference;
    {
        core::ThreadPool::set_global_threads(1);
        Detector det = small_detector(42);
        for (int i = 0; i < kImages; ++i)
            reference.push_back(det.detect(random_image(500 + i)));
    }

    for (int threads : {1, 3}) {
        core::ThreadPool::set_global_threads(threads);
        Detector det = small_detector(42);  // same seed -> same weights

        // detect_batch on the full batch.
        Tensor batch({kImages, 3, 32, 64});
        for (int i = 0; i < kImages; ++i) {
            const Tensor img = random_image(500 + i);
            std::copy_n(img.data(), img.size(), batch.plane(i, 0));
        }
        const std::vector<detect::BBox> batched = det.detect_batch(batch);
        ASSERT_EQ(batched.size(), reference.size());
        for (int i = 0; i < kImages; ++i) {
            EXPECT_EQ(batched[i].cx, reference[i].cx) << "threads=" << threads << " i=" << i;
            EXPECT_EQ(batched[i].cy, reference[i].cy);
            EXPECT_EQ(batched[i].w, reference[i].w);
            EXPECT_EQ(batched[i].h, reference[i].h);
        }

        // The async engine with dynamic batching must agree bitwise too,
        // whatever batches its batcher happens to form.
        ServeConfig cfg;
        cfg.max_batch = 4;
        cfg.max_delay_ms = 20.0;
        Engine engine(det, cfg);
        engine.start();
        std::vector<std::future<DetectResult>> futures;
        for (int i = 0; i < kImages; ++i)
            futures.push_back(engine.submit(random_image(500 + i)));
        for (int i = 0; i < kImages; ++i) {
            const DetectResult r = futures[static_cast<std::size_t>(i)].get();
            EXPECT_EQ(r.box.cx, reference[i].cx) << "threads=" << threads << " i=" << i;
            EXPECT_EQ(r.box.cy, reference[i].cy);
            EXPECT_EQ(r.box.w, reference[i].w);
            EXPECT_EQ(r.box.h, reference[i].h);
        }
        engine.shutdown();
    }
}

TEST(Engine, PreprocessResizesToModelInput) {
    Detector det = small_detector();
    ServeConfig cfg;
    cfg.target_h = 32;
    cfg.target_w = 64;
    cfg.max_batch = 2;
    Engine engine(det, cfg);
    engine.start();
    // Submit at 2x the model resolution: preprocess must resize.
    auto fut = engine.submit(random_image(9, 64, 128));
    const DetectResult r = fut.get();
    EXPECT_GE(r.preprocess_ms, 0.0);
    EXPECT_GE(r.box.w, 0.0f);
    engine.shutdown();
}

TEST(Engine, MetricsAndTraceCoverThePipeline) {
    obs::Registry reg;
    obs::TraceSession trace;
    Detector det = small_detector();
    ServeConfig cfg;
    cfg.max_batch = 3;
    cfg.max_delay_ms = 5.0;
    cfg.metrics = &reg;
    {
        obs::TraceGuard tg(trace);
        Engine engine(det, cfg);
        engine.start();
        std::vector<std::future<DetectResult>> futures;
        for (int i = 0; i < 7; ++i) futures.push_back(engine.submit(random_image(i)));
        for (auto& f : futures) (void)f.get();
        engine.shutdown();
    }
    EXPECT_EQ(reg.counter("serve.requests"), 7.0);
    EXPECT_EQ(reg.counter("serve.completed"), 7.0);
    const obs::HistogramSnapshot total = reg.histogram("serve.latency.total_ms");
    EXPECT_EQ(total.count, 7u);
    EXPECT_GT(total.sum, 0.0);
    // Percentile gauges are published on shutdown and must be ordered.
    const double p50 = reg.gauge("serve.latency.total_ms.p50");
    const double p95 = reg.gauge("serve.latency.total_ms.p95");
    const double p99 = reg.gauge("serve.latency.total_ms.p99");
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    const obs::HistogramSnapshot sizes = reg.histogram("serve.batch.size");
    EXPECT_EQ(sizes.count, reg.counter("serve.batches"));
    // Replica precision gauge: this detector serves the float path.
    EXPECT_EQ(reg.gauge("serve.precision_int8"), 0.0);
    // Every pipeline stage shows up in the Chrome trace.
    int pre = 0, infer = 0, post = 0;
    for (const auto& ev : trace.events()) {
        if (ev.name == "serve/preprocess") ++pre;
        if (ev.name == "serve/infer") ++infer;
        if (ev.name == "serve/postprocess") ++post;
    }
    EXPECT_EQ(pre, 7);
    EXPECT_GE(infer, 3);  // 7 requests at max_batch 3 -> >= 3 batches
    EXPECT_EQ(infer, post);
}

// ------------------------------------------------------------- detector ---

TEST(Detector, FoldBnPreservesDetection) {
    Rng rng(5);
    Detector det({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.2f}, rng);
    // Warm BN running stats so folding is non-trivial.
    det.net().set_training(true);
    Rng warm(7);
    for (int i = 0; i < 3; ++i) {
        Tensor x({2, 3, 32, 64});
        x.randn(warm, 0.3f, 0.8f);
        (void)det.net().forward(x);
    }
    const Tensor img = random_image(21);
    const detect::BBox before = det.detect(img);
    EXPECT_EQ(det.stage(), DetectorStage::kFloat);
    EXPECT_GT(det.fold_bn(), 0);
    EXPECT_EQ(det.stage(), DetectorStage::kFolded);
    EXPECT_EQ(det.fold_bn(), 0);  // idempotent
    const detect::BBox after = det.detect(img);
    EXPECT_NEAR(before.cx, after.cx, 1e-3f);
    EXPECT_NEAR(before.cy, after.cy, 1e-3f);
    EXPECT_NEAR(before.w, after.w, 1e-3f);
    EXPECT_NEAR(before.h, after.h, 1e-3f);
}

TEST(Detector, QuantizedPathRunsIntegerEngine) {
    Rng rng(6);
    Detector det({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.15f}, rng);
    const Tensor img = random_image(33);
    const detect::BBox float_box = det.detect(img);
    EXPECT_EQ(det.precision(), Precision::kFp32);
    const quant::QuantReport qrep = det.quantize(
        quant::QuantConfig{}.with_bits(16, 16).with_fm_abs_max(8.0f));
    EXPECT_EQ(det.stage(), DetectorStage::kQuantized);
    EXPECT_EQ(det.precision(), Precision::kInt8);
    EXPECT_GT(qrep.weight_bytes, 0);
    const detect::BBox q_box = det.detect(img);
    EXPECT_NEAR(float_box.cx, q_box.cx, 0.05f);
    EXPECT_NEAR(float_box.cy, q_box.cy, 0.05f);
    EXPECT_THROW(det.quantize(quant::QuantConfig{}.with_bits(8, 8)),
                 std::logic_error);
}

TEST(Engine, PrecisionGaugeDistinguishesQuantizedReplicas) {
    obs::Registry reg;
    Detector det = small_detector(17);
    (void)det.quantize(quant::QuantConfig{}.with_bits(9, 11));
    ServeConfig cfg;
    cfg.metrics = &reg;
    Engine engine(det, cfg);  // gauge is published at construction
    EXPECT_EQ(reg.gauge("serve.precision_int8"), 1.0);
    engine.start();
    (void)engine.submit(random_image(3)).get();
    engine.shutdown();
}

TEST(Detector, RejectsMalformedInputs) {
    Detector det = small_detector();
    EXPECT_THROW((void)det.detect(Tensor({2, 3, 32, 64})), std::invalid_argument);
    EXPECT_THROW((void)det.forward(Tensor({1, 4, 32, 64})), std::invalid_argument);
}

TEST(Detector, DetectNeverIndexesAnEmptyDecode) {
    // Regression: detect() used to do decode(forward(image))[0] with no
    // emptiness check — an empty decode result was undefined behaviour
    // instead of an error.  A valid 1-image input must yield exactly one box
    // through the guarded path, and batch decode of n images must yield n.
    Detector det = small_detector();
    const Tensor img = random_image(44);
    detect::BBox box{};
    ASSERT_NO_THROW(box = det.detect(img));
    EXPECT_GE(box.w, 0.0f);
    EXPECT_GE(box.h, 0.0f);
    const auto batch = det.detect_batch(random_image(45));
    EXPECT_EQ(batch.size(), 1u);
    // DetectorError is a distinct, catchable type for inference-time faults.
    static_assert(std::is_base_of_v<std::runtime_error, DetectorError>);
}

}  // namespace
}  // namespace sky::serve
