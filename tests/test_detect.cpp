// Detection primitives: IoU, box clipping, YOLO head decode/loss coupling,
// and the detection metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "detect/metrics.hpp"
#include "detect/nms.hpp"
#include "detect/yolo_head.hpp"

namespace sky::detect {
namespace {

TEST(BBox, CornerConversions) {
    BBox b{0.5f, 0.5f, 0.2f, 0.4f};
    EXPECT_FLOAT_EQ(b.x1(), 0.4f);
    EXPECT_FLOAT_EQ(b.x2(), 0.6f);
    EXPECT_FLOAT_EQ(b.y1(), 0.3f);
    EXPECT_FLOAT_EQ(b.y2(), 0.7f);
    EXPECT_NEAR(b.area(), 0.08f, 1e-6f);
}

TEST(BBox, IoUIdentityAndDisjoint) {
    BBox a{0.5f, 0.5f, 0.2f, 0.2f};
    EXPECT_FLOAT_EQ(iou(a, a), 1.0f);
    BBox b{0.9f, 0.9f, 0.1f, 0.1f};
    EXPECT_FLOAT_EQ(iou(a, b), 0.0f);
}

TEST(BBox, IoUHalfOverlap) {
    // Two unit-width boxes offset by half a width: inter = 1/2, union = 3/2.
    BBox a{0.5f, 0.5f, 0.2f, 0.2f};
    BBox b{0.6f, 0.5f, 0.2f, 0.2f};
    EXPECT_NEAR(iou(a, b), 1.0f / 3.0f, 1e-5f);
}

TEST(BBox, IoUDegenerateIsZero) {
    BBox a{0.5f, 0.5f, 0.0f, 0.0f};
    BBox b{0.5f, 0.5f, 0.2f, 0.2f};
    EXPECT_FLOAT_EQ(iou(a, b), 0.0f);
}

TEST(BBox, WhIoUSymmetric) {
    EXPECT_NEAR(wh_iou(0.2f, 0.2f, 0.1f, 0.1f), 0.25f, 1e-5f);
    EXPECT_FLOAT_EQ(wh_iou(0.2f, 0.3f, 0.2f, 0.3f), 1.0f);
}

TEST(BBox, ClipUnitKeepsInterior) {
    BBox b{0.05f, 0.5f, 0.3f, 0.2f};  // spills past x=0
    BBox c = clip_unit(b);
    EXPECT_GE(c.x1(), 0.0f);
    EXPECT_NEAR(c.x2(), b.x2(), 1e-5f);
}

TEST(YoloHead, OutChannels) {
    YoloHead h;
    EXPECT_EQ(h.num_anchors(), 2);
    EXPECT_EQ(h.out_channels(), 10);
}

TEST(YoloHead, DecodePicksHighestObjectness) {
    YoloHead h({{0.1f, 0.1f}});
    Tensor raw({1, 5, 4, 4});
    raw.fill(-10.0f);
    // Make cell (1, 2) of the only anchor the confident one, zero offsets.
    raw.plane(0, 4)[1 * 4 + 2] = 10.0f;  // objectness
    raw.plane(0, 0)[1 * 4 + 2] = 0.0f;   // sigmoid(0) = 0.5
    raw.plane(0, 1)[1 * 4 + 2] = 0.0f;
    raw.plane(0, 2)[1 * 4 + 2] = 0.0f;   // w = anchor
    raw.plane(0, 3)[1 * 4 + 2] = 0.0f;
    const auto boxes = h.decode(raw);
    ASSERT_EQ(boxes.size(), 1u);
    EXPECT_NEAR(boxes[0].cx, (2.0f + 0.5f) / 4.0f, 1e-5f);
    EXPECT_NEAR(boxes[0].cy, (1.0f + 0.5f) / 4.0f, 1e-5f);
    EXPECT_NEAR(boxes[0].w, 0.1f, 1e-5f);
}

TEST(YoloHead, LossGradMatchesFiniteDifference) {
    YoloHead h;
    Rng rng(1);
    Tensor raw({2, 10, 4, 6});
    raw.randn(rng, 0.0f, 0.5f);
    std::vector<BBox> gt = {{0.3f, 0.4f, 0.06f, 0.1f}, {0.7f, 0.6f, 0.2f, 0.25f}};
    Tensor grad;
    (void)h.loss(raw, gt, grad);
    Rng pick(2);
    const float eps = 1e-3f;
    for (int s = 0; s < 20; ++s) {
        const std::int64_t i = pick.uniform_int(0, static_cast<int>(raw.size() - 1));
        Tensor tmp;
        const float orig = raw[i];
        raw[i] = orig + eps;
        const float lp = h.loss(raw, gt, tmp);
        raw[i] = orig - eps;
        const float lm = h.loss(raw, gt, tmp);
        raw[i] = orig;
        const double num = (static_cast<double>(lp) - lm) / (2.0 * eps);
        EXPECT_NEAR(grad[i], num, 2e-2 * std::max(1.0, std::abs(num))) << "at " << i;
    }
}

TEST(YoloHead, PerfectLogitsDecodeToGt) {
    // Construct raw outputs that encode the ground truth exactly; decode
    // must recover it (up to sigmoid/exp inversion).
    YoloHead h;
    const BBox gt{0.37f, 0.55f, 0.08f, 0.12f};
    Tensor raw({1, 10, 8, 8});
    raw.fill(-8.0f);
    // Choose anchor 0 (closer in wh-IoU to this box).
    const int gx = static_cast<int>(gt.cx * 8), gy = static_cast<int>(gt.cy * 8);
    const float tx = gt.cx * 8 - gx, ty = gt.cy * 8 - gy;
    auto logit = [](float p) { return std::log(p / (1.0f - p)); };
    raw.plane(0, 0)[gy * 8 + gx] = logit(tx);
    raw.plane(0, 1)[gy * 8 + gx] = logit(ty);
    raw.plane(0, 2)[gy * 8 + gx] = std::log(gt.w / h.anchors()[0].w);
    raw.plane(0, 3)[gy * 8 + gx] = std::log(gt.h / h.anchors()[0].h);
    raw.plane(0, 4)[gy * 8 + gx] = 10.0f;
    const auto boxes = h.decode(raw);
    EXPECT_GT(iou(boxes[0], gt), 0.98f);
}

TEST(Metrics, MeanIoUAndSuccessRate) {
    std::vector<BBox> gt = {{0.5f, 0.5f, 0.2f, 0.2f}, {0.2f, 0.2f, 0.1f, 0.1f}};
    std::vector<BBox> pred = {gt[0], {0.8f, 0.8f, 0.1f, 0.1f}};
    EXPECT_NEAR(mean_iou(pred, gt), 0.5, 1e-6);
    EXPECT_NEAR(success_rate(pred, gt, 0.5), 0.5, 1e-6);
    EXPECT_THROW((void)mean_iou(pred, {}), std::invalid_argument);
}

TEST(Nms, TiedScoresAreDeterministic) {
    // Three well-separated boxes with identical scores, plus two distant ones.
    // With a non-stable sort, which of the equal-score boxes was visited first
    // depended on the platform's sort; the tie-break is now score desc, then
    // area desc, then original index, so the kept set and its order are fixed.
    std::vector<Detection> dets = {
        {{0.20f, 0.20f, 0.10f, 0.10f}, 0.9f},  // area 0.0100
        {{0.50f, 0.50f, 0.12f, 0.12f}, 0.9f},  // area 0.0144  <- largest tie
        {{0.80f, 0.80f, 0.10f, 0.10f}, 0.9f},  // area 0.0100, later index
        {{0.20f, 0.80f, 0.10f, 0.10f}, 0.5f},
        {{0.80f, 0.20f, 0.10f, 0.10f}, 0.95f},
    };
    const auto kept = nms(dets, 0.45f);
    ASSERT_EQ(kept.size(), 5u);
    // Highest score first, then the 0.9 tie ordered area desc / index asc.
    EXPECT_FLOAT_EQ(kept[0].score, 0.95f);
    EXPECT_FLOAT_EQ(kept[1].box.cx, 0.50f);  // the larger-area tie wins
    EXPECT_FLOAT_EQ(kept[2].box.cx, 0.20f);  // equal area: earlier index first
    EXPECT_FLOAT_EQ(kept[3].box.cx, 0.80f);
    EXPECT_FLOAT_EQ(kept[4].score, 0.5f);

    // Identical boxes at identical scores: suppression keeps exactly one,
    // and permuting the input never changes the surviving geometry.
    std::vector<Detection> dup = {
        {{0.5f, 0.5f, 0.2f, 0.2f}, 0.7f},
        {{0.5f, 0.5f, 0.2f, 0.2f}, 0.7f},
        {{0.5f, 0.5f, 0.3f, 0.3f}, 0.7f},
    };
    for (int rot = 0; rot < 3; ++rot) {
        const auto k = nms(dup, 0.4f);  // IoU(0.2-box, 0.3-box) = 4/9 > 0.4
        ASSERT_EQ(k.size(), 1u);
        EXPECT_FLOAT_EQ(k[0].box.w, 0.3f);  // area tie-break picks the largest
        std::rotate(dup.begin(), dup.begin() + 1, dup.end());
    }
}

}  // namespace
}  // namespace sky::detect
