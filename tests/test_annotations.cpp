// core/annotations.hpp + core/mutex.hpp — the thread-safety contract layer.
//
// Three things are pinned here:
//   1. the annotation macros expand to Clang thread-safety attributes under
//      Clang and to *nothing* elsewhere (so GCC/MSVC builds are byte-for-byte
//      unaffected by the rollout);
//   2. the Mutex / MutexLock / CondVar wrappers behave like the std
//      primitives they wrap (lock exclusion, CV wakeups, deadline waits);
//   3. (negative-compile, documented below) a mis-guarded access is a hard
//      error under the CI Clang lane's -Wthread-safety -Werror.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/annotations.hpp"
#include "core/mutex.hpp"

namespace {

using sky::core::CondVar;
using sky::core::Mutex;
using sky::core::MutexLock;

// ------------------------------------------------------- macro expansion --

#define SKY_TEST_STR2(x) #x
#define SKY_TEST_STR(x) SKY_TEST_STR2(x)

TEST(Annotations, MacrosExpandToAttributesOnClangAndNothingElsewhere) {
    const std::string guarded = SKY_TEST_STR(SKY_GUARDED_BY(dummy));
    const std::string requires_cap = SKY_TEST_STR(SKY_REQUIRES(dummy));
    const std::string excludes = SKY_TEST_STR(SKY_EXCLUDES(dummy));
    const std::string capability = SKY_TEST_STR(SKY_CAPABILITY("x"));
#if defined(__clang__)
    EXPECT_NE(guarded.find("guarded_by"), std::string::npos) << guarded;
    EXPECT_NE(requires_cap.find("requires_capability"), std::string::npos);
    EXPECT_NE(excludes.find("locks_excluded"), std::string::npos);
    EXPECT_NE(capability.find("capability"), std::string::npos);
#else
    // On GCC/MSVC the whole annotation layer must vanish: annotated and
    // unannotated builds compile identical code.
    EXPECT_EQ(guarded, "");
    EXPECT_EQ(requires_cap, "");
    EXPECT_EQ(excludes, "");
    EXPECT_EQ(capability, "");
#endif
}

// --------------------------------------------------------- Mutex wrapper --

TEST(Annotations, MutexProvidesExclusion) {
    Mutex mu;
    int counter = 0;
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i) {
                MutexLock lk(mu);
                ++counter;
            }
        });
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(counter, 4000);
}

TEST(Annotations, TryLockReportsContention) {
    Mutex mu;
    ASSERT_TRUE(mu.try_lock());
    std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
    other.join();
    mu.unlock();
}

TEST(Annotations, CondVarWaitSeesNotifiedPredicate) {
    Mutex mu;
    CondVar cv;
    bool ready = false;
    std::thread producer([&] {
        MutexLock lk(mu);
        ready = true;
        cv.notify_one();
    });
    {
        MutexLock lk(mu);
        cv.wait(mu, [&] {
            mu.assert_held();
            return ready;
        });
        EXPECT_TRUE(ready);
    }
    producer.join();
}

TEST(Annotations, CondVarWaitUntilTimesOutWithPredicateValue) {
    Mutex mu;
    CondVar cv;
    const bool never = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
    MutexLock lk(mu);
    const bool result = cv.wait_until(mu, deadline, [&] {
        mu.assert_held();
        return never;
    });
    EXPECT_FALSE(result);  // std contract: returns pred() at timeout
    EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(Annotations, CondVarWaitUntilReturnsEarlyOnceSatisfied) {
    Mutex mu;
    CondVar cv;
    bool done = false;
    std::thread producer([&] {
        MutexLock lk(mu);
        done = true;
        cv.notify_all();
    });
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    MutexLock lk(mu);
    const bool result = cv.wait_until(mu, deadline, [&] {
        mu.assert_held();
        return done;
    });
    EXPECT_TRUE(result);
    producer.join();
}

// --------------------------------------------- negative compile (manual) --
//
// The CI Clang lane builds with -Wthread-safety -Werror=thread-safety, so
// the following struct is rejected there — Clang reports
//
//   error: writing variable 'value_' requires holding mutex 'mu_'
//   error: mutex 'mu_' is still held at the end of function
//
// Flip the 0 to 1 and build with clang++ to watch both fire; it must stay
// disabled in checked-in code precisely because the lane would (correctly)
// fail the build.
#if 0
struct MisGuarded {
    sky::core::Mutex mu_;  // guards value_
    int value_ SKY_GUARDED_BY(mu_) = 0;

    void write_without_lock() { value_ = 1; }          // rejected: no lock held
    void leak_lock() SKY_EXCLUDES(mu_) { mu_.lock(); } // rejected: never released
};
#endif

}  // namespace
