// Weight serialization: round trips, size accounting, and the failure modes
// (wrong file, wrong architecture, truncated payload).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "io/serialize.hpp"
#include "skynet/skynet_model.hpp"

namespace sky::io {
namespace {

std::string temp_path(const char* tag) {
    return std::string(::testing::TempDir()) + "skynet_io_" + tag + ".bin";
}

TEST(Serialize, RoundTripRestoresExactWeights) {
    Rng rng(1);
    SkyNetModel a = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.2f}, rng);
    const std::string path = temp_path("roundtrip");
    save_weights(*a.net, path);

    Rng rng2(999);  // different init
    SkyNetModel b = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.2f}, rng2);
    load_weights(*b.net, path);

    std::vector<nn::ParamRef> pa, pb;
    a.net->collect_params(pa);
    b.net->collect_params(pb);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i)
        for (std::int64_t j = 0; j < pa[i].value->size(); ++j)
            ASSERT_FLOAT_EQ((*pa[i].value)[j], (*pb[i].value)[j]) << i << "," << j;
    std::remove(path.c_str());
}

TEST(Serialize, LoadedModelProducesIdenticalOutput) {
    Rng rng(2);
    SkyNetModel a = build_skynet({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.2f}, rng);
    a.net->set_training(false);
    Tensor x({1, 3, 32, 64});
    Rng xr(3);
    x.rand_uniform(xr, 0.0f, 1.0f);
    const Tensor ya = a.net->forward(x);

    const std::string path = temp_path("identical");
    save_weights(*a.net, path);
    Rng rng2(55);
    SkyNetModel b = build_skynet({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.2f}, rng2);
    load_weights(*b.net, path);
    b.net->set_training(false);
    const Tensor yb = b.net->forward(x);
    ASSERT_EQ(ya.size(), yb.size());
    for (std::int64_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
    std::remove(path.c_str());
}

TEST(Serialize, SizeMatchesPrediction) {
    Rng rng(4);
    SkyNetModel m = build_skynet({SkyNetVariant::kB, nn::Act::kReLU, 2, 0.2f}, rng);
    const std::string path = temp_path("size");
    save_weights(*m.net, path);
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    ASSERT_TRUE(in.good());
    EXPECT_EQ(static_cast<std::int64_t>(in.tellg()), serialized_size(*m.net));
    in.close();
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
    Rng rng(5);
    SkyNetModel m = build_skynet({SkyNetVariant::kA, nn::Act::kReLU, 2, 0.2f}, rng);
    EXPECT_THROW(load_weights(*m.net, "/nonexistent/dir/weights.bin"),
                 std::runtime_error);
}

TEST(Serialize, ArchitectureMismatchThrows) {
    Rng rng(6);
    SkyNetModel a = build_skynet({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.2f}, rng);
    const std::string path = temp_path("mismatch");
    save_weights(*a.net, path);
    SkyNetModel c = build_skynet({SkyNetVariant::kC, nn::Act::kReLU6, 2, 0.2f}, rng);
    EXPECT_THROW(load_weights(*c.net, path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileThrows) {
    Rng rng(7);
    SkyNetModel a = build_skynet({SkyNetVariant::kA, nn::Act::kReLU6, 2, 0.2f}, rng);
    const std::string path = temp_path("trunc");
    save_weights(*a.net, path);
    // Truncate to half.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    const auto full = in.tellg();
    in.seekg(0);
    std::vector<char> buf(static_cast<std::size_t>(full) / 2);
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    out.close();
    EXPECT_THROW(load_weights(*a.net, path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(Serialize, BadMagicThrows) {
    const std::string path = temp_path("magic");
    std::ofstream out(path, std::ios::binary);
    out << "NOPE garbage";
    out.close();
    Rng rng(8);
    SkyNetModel m = build_skynet({SkyNetVariant::kA, nn::Act::kReLU, 2, 0.2f}, rng);
    EXPECT_THROW(load_weights(*m.net, path), std::runtime_error);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace sky::io
