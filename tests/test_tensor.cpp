// Tensor core: shapes, arithmetic, reductions, concat/split, RNG determinism.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.hpp"

namespace sky {
namespace {

TEST(Shape, CountAndEquality) {
    Shape s{2, 3, 4, 5};
    EXPECT_EQ(s.count(), 120);
    EXPECT_EQ(s.per_item(), 60);
    EXPECT_EQ(s, (Shape{2, 3, 4, 5}));
    EXPECT_NE(s, (Shape{2, 3, 4, 6}));
}

TEST(Tensor, ConstructZeroed) {
    Tensor t({2, 3, 4, 4});
    EXPECT_EQ(t.size(), 96);
    EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, FillAndScale) {
    Tensor t({1, 2, 2, 2}, 2.0f);
    t.scale(3.0f);
    EXPECT_FLOAT_EQ(t.sum(), 48.0f);
    t.fill(-1.0f);
    EXPECT_FLOAT_EQ(t.min(), -1.0f);
    EXPECT_FLOAT_EQ(t.max(), -1.0f);
}

TEST(Tensor, AtIndexing) {
    Tensor t({2, 3, 4, 5});
    t.at(1, 2, 3, 4) = 7.5f;
    // NCHW layout: last element of the buffer.
    EXPECT_FLOAT_EQ(t[t.size() - 1], 7.5f);
    t.at(0, 0, 0, 0) = -2.0f;
    EXPECT_FLOAT_EQ(t[0], -2.0f);
}

TEST(Tensor, Axpy) {
    Tensor a({1, 1, 2, 2}, 1.0f);
    Tensor b({1, 1, 2, 2}, 2.0f);
    a.axpy(0.5f, b);
    EXPECT_FLOAT_EQ(a[0], 2.0f);
}

TEST(Tensor, Reductions) {
    Tensor t({1, 1, 1, 4}, std::vector<float>{-3.0f, 1.0f, 2.0f, 0.0f});
    EXPECT_FLOAT_EQ(t.min(), -3.0f);
    EXPECT_FLOAT_EQ(t.max(), 2.0f);
    EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
    EXPECT_DOUBLE_EQ(t.sq_norm(), 14.0);
}

TEST(Tensor, ReshapePreservesData) {
    Tensor t({1, 2, 2, 2});
    for (int i = 0; i < 8; ++i) t[i] = static_cast<float>(i);
    Tensor r = t.reshaped({1, 8, 1, 1});
    EXPECT_EQ(r.shape().c, 8);
    for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
    EXPECT_THROW((void)t.reshaped({1, 3, 1, 1}), std::invalid_argument);
}

TEST(Tensor, ConcatSplitChannelsRoundTrip) {
    Rng rng(1);
    Tensor a({2, 3, 4, 4}), b({2, 5, 4, 4});
    a.randn(rng);
    b.randn(rng);
    Tensor cat = Tensor::concat_channels({&a, &b});
    EXPECT_EQ(cat.shape(), (Shape{2, 8, 4, 4}));
    auto parts = Tensor::split_channels(cat, {3, 5});
    ASSERT_EQ(parts.size(), 2u);
    for (std::int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(parts[0][i], a[i]);
    for (std::int64_t i = 0; i < b.size(); ++i) EXPECT_FLOAT_EQ(parts[1][i], b[i]);
}

TEST(Tensor, ConcatOrderMatchesPlaneLayout) {
    Tensor a({1, 1, 2, 2}, 1.0f), b({1, 2, 2, 2}, 2.0f);
    Tensor cat = Tensor::concat_channels({&a, &b});
    EXPECT_FLOAT_EQ(cat.at(0, 0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(cat.at(0, 1, 0, 0), 2.0f);
    EXPECT_FLOAT_EQ(cat.at(0, 2, 1, 1), 2.0f);
}

TEST(Rng, Deterministic) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.uniform_int(1, 4);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 4);
        saw_lo |= v == 1;
        saw_hi |= v == 4;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsDiffer) {
    Rng a(5);
    Rng b = a.split();
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Tensor, AxpyShapeMismatchThrows) {
    // Release builds used to rely on assert() here — a shape mismatch walked
    // straight off the end of the smaller buffer.
    Tensor a({1, 2, 3, 3});
    Tensor b({1, 2, 3, 4});
    EXPECT_THROW(a.axpy(1.0f, b), std::invalid_argument);
    Tensor c({1, 2, 3, 3});
    EXPECT_NO_THROW(a.axpy(0.5f, c));
}

TEST(Tensor, ConcatChannelsMismatchThrows) {
    Tensor a({2, 3, 4, 4});
    Tensor b({2, 5, 4, 4});
    Tensor wrong_n({1, 3, 4, 4});
    Tensor wrong_hw({2, 3, 4, 5});
    EXPECT_THROW((void)Tensor::concat_channels({}), std::invalid_argument);
    EXPECT_THROW((void)Tensor::concat_channels({&a, &wrong_n}), std::invalid_argument);
    EXPECT_THROW((void)Tensor::concat_channels({&a, &wrong_hw}), std::invalid_argument);
    const Tensor ok = Tensor::concat_channels({&a, &b});
    EXPECT_EQ(ok.shape(), (Shape{2, 8, 4, 4}));
}

TEST(Tensor, KaimingStddev) {
    Rng rng(3);
    Tensor w({64, 32, 3, 3});
    w.kaiming(rng, 32 * 9);
    const double var = w.sq_norm() / static_cast<double>(w.size());
    EXPECT_NEAR(var, 2.0 / (32 * 9), 2.0 / (32 * 9) * 0.2);
}

}  // namespace
}  // namespace sky
